// Domain example: serving a trained model.
//
//   $ ./serving
//
// Walks the full train -> checkpoint -> serve lifecycle: train a small
// ComplEx model with the Hogwild trainer, save it with kge::save_model,
// load it into a serve::InferenceService, and answer link-prediction
// traffic three ways — one interactive query, a deduplicated micro-batch,
// and a skewed stream that shows the query cache and the latency
// histogram doing their jobs.
#include <iostream>
#include <span>
#include <vector>

#include "core/hogwild_trainer.hpp"
#include "kge/serialize.hpp"
#include "kge/synthetic.hpp"
#include "serve/service.hpp"

using namespace dynkge;

int main() {
  // A small movie-database-sized graph and a quick shared-memory train.
  kge::SyntheticSpec spec;
  spec.num_entities = 800;
  spec.num_relations = 40;
  spec.num_triples = 10000;
  spec.seed = 9;
  const kge::Dataset dataset = kge::generate_synthetic(spec);
  std::cout << dataset.summary("dataset") << "\n";

  core::HogwildConfig train_config;
  train_config.model_name = "complex";
  train_config.embedding_rank = 16;
  train_config.num_threads = 2;
  train_config.max_epochs = 30;
  train_config.lr.tolerance = 5;
  const auto report = core::HogwildTrainer(dataset, train_config).train();
  std::cout << "trained " << report.epochs << " epochs, TCA " << report.tca
            << "%\n\n";

  // Checkpoint, then serve the checkpoint — the production split: the
  // trainer and the serving fleet share nothing but this file.
  const std::string checkpoint = "/tmp/dynkge_serving_example.dkge";
  kge::save_model(*report.model, checkpoint);

  serve::ServiceConfig config;
  config.num_threads = 4;
  config.cache_capacity = 512;
  const auto service =
      serve::InferenceService::from_checkpoint(checkpoint, &dataset, config);

  // 1. One interactive query: "what are the most plausible tails for
  //    (e7, r3, ?) that we don't already know?"
  serve::TopKQuery query{serve::Direction::kTail, 7, 3, 5, true};
  std::cout << "top-5 new tails for (e7, r3, ?):\n";
  for (const auto& [entity, score] : *service->topk(query)) {
    std::cout << "  e" << entity << "  score " << score << "\n";
  }

  // 2. A micro-batch, as a request handler would assemble from concurrent
  //    clients. Duplicate queries are scored once.
  std::vector<serve::TopKQuery> batch;
  for (kge::EntityId e = 0; e < 16; ++e) {
    batch.push_back({serve::Direction::kTail, e, 1, 10, false});
  }
  batch.push_back(batch.front());  // a duplicate
  const auto results = service->topk_batch(batch);
  std::cout << "\nbatch of " << batch.size() << " -> " << results.size()
            << " results (duplicate shares the first answer: "
            << (results.front().get() == results.back().get() ? "yes" : "no")
            << ")\n";

  // 3. Skewed repeat traffic: the LRU cache absorbs the popular queries.
  for (int round = 0; round < 50; ++round) {
    for (kge::EntityId e = 0; e < 8; ++e) {
      service->topk({serve::Direction::kTail, e, 2, 10, false});
    }
  }
  const auto snapshot = service->snapshot();
  std::cout << "\nafter the traffic replay:\n  " << snapshot.summary()
            << "\n";
  return 0;
}
