// Domain example: knowledge-base completion on a hand-written movie graph.
//
//   $ ./movie_knowledge_base
//
// Builds a small named knowledge base (people, films, genres), trains
// ComplEx embeddings on a 2-node simulated cluster, and answers
// link-prediction queries ("who directed X?", "what genre is Y?") with
// the trained model — the downstream task the paper's introduction
// motivates.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/trainer.hpp"
#include "kge/graph_builder.hpp"

using namespace dynkge;

int main() {
  kge::GraphBuilder graph;

  // A structured little film world: directors direct films of their
  // signature genre; actors star in films of the genres they work in.
  const std::vector<std::pair<std::string, std::string>> directors = {
      {"lang", "noir"},     {"kurosawa", "samurai"}, {"leone", "western"},
      {"melies", "fantasy"}, {"murnau", "noir"},      {"ford", "western"}};
  const std::vector<std::pair<std::string, std::string>> actors = {
      {"mifune", "samurai"}, {"eastwood", "western"}, {"brooks", "noir"},
      {"wayne", "western"},  {"shimura", "samurai"},  {"lorre", "noir"}};

  int film_counter = 0;
  for (const auto& [director, genre] : directors) {
    for (int i = 0; i < 4; ++i) {
      const std::string film =
          genre + "_film_" + std::to_string(film_counter++);
      graph.fact(director, "directed", film);
      graph.fact(film, "has_genre", genre);
      graph.fact(film, "directed_by", director);
      for (const auto& [actor, actor_genre] : actors) {
        if (actor_genre == genre) {
          graph.fact(actor, "starred_in", film);
          graph.fact(film, "stars", actor);
        }
      }
    }
  }
  for (const auto& [actor, genre] : actors) {
    graph.fact(actor, "works_in", genre);
  }

  const kge::Dataset dataset =
      graph.dataset_with_tail_holdout(/*holdout=*/10);
  std::cout << dataset.summary("movie knowledge base") << "\n\n";

  core::TrainConfig config;
  config.num_nodes = 2;
  config.embedding_rank = 12;
  config.batch_size = 64;
  config.max_epochs = 400;
  config.lr.base_lr = 0.02;
  config.lr.tolerance = 40;
  config.valid_max_triples = 0;
  config.eval_max_triples = 0;
  config.strategy = core::StrategyConfig::rs_1bit_rp_ss(6, 1);

  std::cout << "training " << config.strategy.label()
            << " on 2 simulated nodes...\n";
  const auto report = core::DistributedTrainer(dataset, config).train();
  std::cout << "epochs: " << report.epochs << "  TCA: " << report.tca
            << "%  filtered MRR: " << report.ranking.mrr << "\n\n";

  // Answer queries with the trained model: rank all tails for (h, r),
  // filtering out known facts other than the asked-about ones.
  const auto top_tails = [&](const std::string& head,
                             const std::string& relation, int k) {
    const auto h = graph.entity(head);
    const auto r = graph.relation(relation);
    std::vector<double> scores(dataset.num_entities());
    report.model->score_all_tails(h, r, scores);
    std::vector<kge::EntityId> order(dataset.num_entities());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<kge::EntityId>(i);
    }
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&](kge::EntityId a, kge::EntityId b) {
                        return scores[a] > scores[b];
                      });
    std::cout << "top-" << k << " answers for (" << head << ", " << relation
              << ", ?):\n";
    for (int i = 0; i < k; ++i) {
      std::cout << "  " << graph.entity_name(order[i])
                << (dataset.contains(h, r, order[i]) ? "  [known fact]"
                                                     : "")
                << "\n";
    }
    std::cout << "\n";
  };

  top_tails("kurosawa", "directed", 5);
  top_tails("noir_film_0", "has_genre", 3);
  top_tails("eastwood", "starred_in", 5);
  return 0;
}
