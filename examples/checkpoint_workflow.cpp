// Domain example: incremental retraining from a checkpoint.
//
//   $ ./checkpoint_workflow
//
// Production knowledge bases grow continuously; retraining embeddings
// from scratch on every update is wasteful. This example trains on an
// initial graph, checkpoints the model to disk, then "receives" a batch
// of new facts and compares cold-start retraining against warm-starting
// from the checkpoint — the warm start converges in a fraction of the
// epochs.
#include <iostream>

#include "core/trainer.hpp"
#include "kge/serialize.hpp"
#include "kge/synthetic.hpp"

using namespace dynkge;

namespace {

core::TrainConfig base_config() {
  core::TrainConfig config;
  config.num_nodes = 2;
  config.embedding_rank = 16;
  config.batch_size = 400;
  config.max_epochs = 150;
  config.lr.base_lr = 0.01;
  config.lr.tolerance = 10;
  config.strategy = core::StrategyConfig::rs_1bit(4);
  return config;
}

}  // namespace

int main() {
  // The "initial" and "grown" graphs: same generator, the second one 25%
  // larger (a superset in distribution, not necessarily in facts — the
  // realistic case where new facts also touch existing entities).
  kge::SyntheticSpec spec;
  spec.num_entities = 900;
  spec.num_relations = 72;
  spec.num_triples = 12000;
  spec.seed = 77;
  const kge::Dataset initial = kge::generate_synthetic(spec);

  spec.num_triples = 15000;  // new facts arrived
  const kge::Dataset grown = kge::generate_synthetic(spec);

  std::cout << initial.summary("initial graph") << "\n"
            << grown.summary("grown graph") << "\n\n";

  // Phase 1: train on the initial graph and checkpoint.
  const auto phase1 =
      core::DistributedTrainer(initial, base_config()).train();
  const std::string checkpoint = "/tmp/dynkge_checkpoint.dkge";
  kge::save_model(*phase1.model, checkpoint);
  std::cout << "phase 1: " << phase1.epochs << " epochs, TCA "
            << phase1.tca << "%, checkpoint written to " << checkpoint
            << "\n\n";

  // Phase 2a: cold start on the grown graph.
  const auto cold = core::DistributedTrainer(grown, base_config()).train();

  // Phase 2b: warm start from the checkpoint.
  core::TrainConfig warm_config = base_config();
  warm_config.warm_start = kge::load_model(checkpoint);
  const auto warm = core::DistributedTrainer(grown, warm_config).train();

  std::cout << "retraining on the grown graph:\n"
            << "  cold start: " << cold.epochs << " epochs, TT(sim) "
            << cold.total_sim_seconds << " s, TCA " << cold.tca
            << "%, MRR " << cold.ranking.mrr << "\n"
            << "  warm start: " << warm.epochs << " epochs, TT(sim) "
            << warm.total_sim_seconds << " s, TCA " << warm.tca
            << "%, MRR " << warm.ranking.mrr << "\n"
            << (warm.epochs < cold.epochs
                    ? "warm start converged faster, as expected.\n"
                    : "warm start did not converge faster on this run.\n");
  return 0;
}
