// Quickstart: train ComplEx embeddings on a synthetic knowledge graph
// with the paper's full strategy stack on a simulated 4-node cluster.
//
//   $ ./quickstart [--nodes 4] [--epochs 80]
//
// Walks through the whole public API: dataset generation, strategy
// configuration, distributed training, and evaluation.
#include <iostream>

#include "core/strategy_config.hpp"
#include "core/trainer.hpp"
#include "kge/synthetic.hpp"
#include "util/argparse.hpp"

using namespace dynkge;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const int nodes = static_cast<int>(args.get_int("nodes", 4));

  // 1. A knowledge graph. generate_synthetic() builds a Freebase-like
  //    graph (Zipfian relations, power-law entities, closed world); swap
  //    in kge::load_dataset("<dir>") for real OpenKE/TSV data.
  kge::SyntheticSpec spec;
  spec.num_entities = 1000;
  spec.num_relations = 80;
  spec.num_triples = 15000;
  spec.seed = 7;
  const kge::Dataset dataset = kge::generate_synthetic(spec);
  std::cout << dataset.summary("quickstart graph") << "\n\n";

  // 2. The training configuration. StrategyConfig presets mirror the
  //    paper's method names; drs_1bit_rp_ss is the headline combination:
  //    dynamic all-reduce/all-gather selection + Bernoulli gradient-row
  //    selection + 1-bit quantization + relation partition + hard
  //    negative mining (1 out of 8).
  core::TrainConfig config;
  config.num_nodes = nodes;
  config.embedding_rank = 16;
  config.batch_size = 500;
  config.max_epochs = static_cast<int>(args.get_int("epochs", 150));
  config.lr.base_lr = 0.01;
  config.lr.tolerance = 12;
  config.strategy = core::StrategyConfig::drs_1bit_rp_ss(8, 1);

  // 3. Train. The trainer spawns one thread per simulated node; times in
  //    the report come from the simulated cluster clock (measured compute
  //    + alpha-beta modeled communication).
  std::cout << "training " << config.strategy.label() << " on " << nodes
            << " simulated nodes...\n";
  core::DistributedTrainer trainer(dataset, config);
  const core::TrainReport report = trainer.train();

  // 4. Results.
  std::cout << "\nconverged after " << report.epochs << " epochs ("
            << (report.converged ? "plateau stop" : "epoch cap") << ")\n"
            << "simulated training time: " << report.total_sim_seconds
            << " s (wall: " << report.wall_seconds << " s)\n"
            << "triple classification accuracy: " << report.tca << " %\n"
            << "filtered MRR: " << report.ranking.mrr
            << "   Hits@1/3/10: " << report.ranking.hits1 << " / "
            << report.ranking.hits3 << " / " << report.ranking.hits10 << "\n"
            << "bytes on the modeled wire: "
            << report.comm_stats.total_bytes() / (1 << 20) << " MiB over "
            << report.comm_stats.total_calls() << " collectives\n";
  return 0;
}
