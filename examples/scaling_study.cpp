// Domain example: a strategy/scale study for capacity planning.
//
//   $ ./scaling_study [--nodes 1,2,4,8] [--strategies baseline,full]
//
// Sweeps node counts and strategy stacks on an FB15K-like workload and
// prints the trade-off table an engineering team would use to choose a
// configuration: simulated training time, epochs, communication volume,
// and accuracy. This is the "which knobs should we turn for our cluster"
// workflow the paper's evaluation section encodes.
#include <iostream>

#include "core/trainer.hpp"
#include "kge/synthetic.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"

using namespace dynkge;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  const auto nodes = args.get_int_list("nodes", {1, 2, 4, 8});

  kge::SyntheticSpec spec;
  spec.num_entities = 1200;
  spec.num_relations = 96;
  spec.num_triples = 18000;
  spec.seed = 11;
  const kge::Dataset dataset = kge::generate_synthetic(spec);
  std::cout << dataset.summary("scaling-study graph") << "\n\n";

  struct Choice {
    const char* name;
    core::StrategyConfig strategy;
  };
  const std::vector<Choice> choices = {
      {"baseline (allreduce)", core::StrategyConfig::baseline_allreduce(4)},
      {"sparse (allgather)", core::StrategyConfig::baseline_allgather(4)},
      {"compressed (RS+1-bit)", core::StrategyConfig::rs_1bit(4)},
      {"full stack (DRS+1-bit+RP+SS)",
       core::StrategyConfig::drs_1bit_rp_ss(8, 1)},
  };

  util::Table table({"strategy", "nodes", "TT(sim s)", "epochs",
                     "comm MiB", "TCA %", "MRR"});
  for (const auto& choice : choices) {
    for (const std::int64_t node_count : nodes) {
      core::TrainConfig config;
      config.num_nodes = static_cast<int>(node_count);
      config.embedding_rank = 16;
      config.batch_size = 500;
      config.max_epochs = 120;
      config.lr.base_lr = 0.01;
      config.lr.tolerance = 10;
      config.network = comm::CostModelParams::bench_scale();
      config.strategy = choice.strategy;
      const auto report = core::DistributedTrainer(dataset, config).train();
      table.begin_row()
          .add(choice.name)
          .add(node_count)
          .add(report.total_sim_seconds, 2)
          .add(static_cast<std::int64_t>(report.epochs))
          .add(static_cast<double>(report.comm_stats.total_bytes()) /
                   (1 << 20),
               1)
          .add(report.tca, 1)
          .add(report.ranking.mrr, 3);
      std::cerr << "." << std::flush;
    }
  }
  std::cerr << "\n";
  table.print(std::cout, "Strategy/scale trade-offs:");
  std::cout << "Reading guide: the full stack should give the lowest TT at "
               "every node count\nwith MRR at or above the baseline — the "
               "paper's headline result.\n";
  return 0;
}
