// Domain example: training on your own dataset files.
//
//   $ ./custom_dataset [--data <dir>] [--model complex|distmult|transe]
//
// Without --data, the example writes a small TSV dataset to a temp
// directory first, then loads it back through the same loader you would
// point at real FB15K-style files (train.txt/valid.txt/test.txt, or the
// OpenKE *2id.txt layout), trains, and compares the three bundled KGE
// models on it.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/trainer.hpp"
#include "kge/tsv_loader.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace dynkge;

namespace {

/// Write a demo TSV dataset (capital/located_in/borders facts over a grid
/// of synthetic "countries") and return its directory.
std::string write_demo_tsv() {
  const auto dir = std::filesystem::temp_directory_path() / "dynkge_demo_tsv";
  std::filesystem::create_directories(dir);

  util::Rng rng(2024);
  std::vector<std::string> lines;
  constexpr int kCountries = 60;
  for (int c = 0; c < kCountries; ++c) {
    const std::string country = "country_" + std::to_string(c);
    const std::string capital = "city_" + std::to_string(c) + "_0";
    lines.push_back(capital + "\tcapital_of\t" + country);
    for (int city = 0; city < 5; ++city) {
      lines.push_back("city_" + std::to_string(c) + "_" +
                      std::to_string(city) + "\tlocated_in\t" + country);
    }
    lines.push_back(country + "\tborders\tcountry_" +
                    std::to_string((c + 1) % kCountries));
    lines.push_back(country + "\tborders\tcountry_" +
                    std::to_string((c + 7) % kCountries));
  }
  // Deterministic shuffle, then split 90/5/5.
  for (std::size_t i = lines.size() - 1; i > 0; --i) {
    std::swap(lines[i], lines[rng.next_below(i + 1)]);
  }
  const std::size_t valid_start = lines.size() * 90 / 100;
  const std::size_t test_start = lines.size() * 95 / 100;
  const auto write_split = [&](const char* name, std::size_t begin,
                               std::size_t end) {
    std::ofstream out(dir / name);
    for (std::size_t i = begin; i < end; ++i) out << lines[i] << "\n";
  };
  write_split("train.txt", 0, valid_start);
  write_split("valid.txt", valid_start, test_start);
  write_split("test.txt", test_start, lines.size());
  return dir.string();
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  std::string data_dir = args.get_string("data", "");
  if (data_dir.empty()) {
    data_dir = write_demo_tsv();
    std::cout << "no --data given; wrote a demo TSV dataset to " << data_dir
              << "\n";
  }

  const kge::Dataset dataset = kge::load_dataset(data_dir);
  std::cout << dataset.summary(data_dir) << "\n\n";

  const std::string only_model = args.get_string("model", "");
  util::Table table({"model", "epochs", "TCA %", "MRR", "Hits@10"});
  for (const std::string model :
       {"complex", "distmult", "transe", "rotate"}) {
    if (!only_model.empty() && only_model != model) continue;
    core::TrainConfig config;
    config.model_name = model;
    config.num_nodes = 2;
    config.embedding_rank = 12;
    config.batch_size = 128;
    config.max_epochs = 250;
    config.lr.base_lr = 0.01;
    config.lr.tolerance = 20;
    config.strategy = core::StrategyConfig::rs_1bit(4);
    const auto report = core::DistributedTrainer(dataset, config).train();
    table.begin_row()
        .add(model)
        .add(static_cast<std::int64_t>(report.epochs))
        .add(report.tca, 1)
        .add(report.ranking.mrr, 3)
        .add(report.ranking.hits10, 3);
    std::cerr << "trained " << model << "\n";
  }
  table.print(std::cout, "Model comparison on the custom dataset:");
  return 0;
}
