#include "core/quant_analysis.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dynkge::core {
namespace {

std::vector<float> gaussian_row(int width, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> row(width);
  for (auto& v : row) v = static_cast<float>(rng.next_normal());
  return row;
}

TEST(QuantAnalysis, RawCodecIsPerfect) {
  const RowCodec codec(QuantMode::kNone, OneBitScale::kMax, 64);
  const auto row = gaussian_row(64, 1);
  util::Rng rng(2);
  const auto quality = analyze_quantization(codec, row, rng);
  EXPECT_DOUBLE_EQ(quality.compression_ratio, 1.0);
  EXPECT_DOUBLE_EQ(quality.relative_l2_error, 0.0);
  EXPECT_NEAR(quality.cosine_alignment, 1.0, 1e-12);
  EXPECT_TRUE(quality.contraction);
}

TEST(QuantAnalysis, OneBitCompressionNear32x) {
  const RowCodec codec(QuantMode::kOneBit, OneBitScale::kMax, 256);
  const auto row = gaussian_row(256, 3);
  util::Rng rng(4);
  const auto quality = analyze_quantization(codec, row, rng);
  EXPECT_GT(quality.compression_ratio, 20.0);
}

TEST(QuantAnalysis, MaxScaleIsNotAContraction) {
  // The paper's chosen 1-bit scale inflates every component to max|v|, so
  // the reconstruction error exceeds the signal on gaussian rows — the
  // documented reason error feedback diverges with it.
  const RowCodec codec(QuantMode::kOneBit, OneBitScale::kMax, 128);
  const auto row = gaussian_row(128, 5);
  util::Rng rng(6);
  const auto quality = analyze_quantization(codec, row, rng);
  EXPECT_FALSE(quality.contraction);
  EXPECT_GT(quality.relative_l2_error, 1.0);
  // ...yet it stays directionally faithful: signs are preserved.
  EXPECT_GT(quality.cosine_alignment, 0.5);
}

TEST(QuantAnalysis, MeanScaleIsAContraction) {
  const RowCodec codec(QuantMode::kOneBit, OneBitScale::kMean, 128);
  const auto row = gaussian_row(128, 7);
  util::Rng rng(8);
  const auto quality = analyze_quantization(codec, row, rng);
  EXPECT_TRUE(quality.contraction);
  EXPECT_LT(quality.relative_l2_error, 1.0);
}

TEST(QuantAnalysis, TwoBitNearlyUnbiased) {
  const RowCodec codec(QuantMode::kTwoBit, OneBitScale::kMax, 64);
  // Values below the mean-|v| scale are reconstructed without bias.
  std::vector<float> row(64);
  util::Rng data_rng(9);
  for (auto& v : row) {
    v = static_cast<float>(data_rng.next_double(-0.1, 0.1));
  }
  util::Rng rng(10);
  const auto quality = analyze_quantization(codec, row, rng, 400);
  EXPECT_NEAR(quality.mean_bias, 0.0, 0.02);
}

TEST(QuantAnalysis, AlignmentOrdering) {
  // Mean-scale 1-bit reconstructs gaussian rows better than max-scale.
  const auto row = gaussian_row(200, 11);
  util::Rng rng(12);
  const auto max_quality = analyze_quantization(
      RowCodec(QuantMode::kOneBit, OneBitScale::kMax, 200), row, rng);
  const auto mean_quality = analyze_quantization(
      RowCodec(QuantMode::kOneBit, OneBitScale::kMean, 200), row, rng);
  EXPECT_LT(mean_quality.relative_l2_error, max_quality.relative_l2_error);
}

TEST(QuantAnalysis, ZeroRowIsHarmless) {
  const RowCodec codec(QuantMode::kOneBit, OneBitScale::kMax, 16);
  const std::vector<float> row(16, 0.0f);
  util::Rng rng(13);
  const auto quality = analyze_quantization(codec, row, rng);
  EXPECT_DOUBLE_EQ(quality.relative_l2_error, 0.0);
  EXPECT_DOUBLE_EQ(quality.mean_bias, 0.0);
}

}  // namespace
}  // namespace dynkge::core
