#include "kge/negative_sampler.hpp"

#include <gtest/gtest.h>

#include "kge/synthetic.hpp"

namespace dynkge::kge {
namespace {

Dataset tiny_dataset() {
  SyntheticSpec spec;
  spec.num_entities = 50;
  spec.num_relations = 5;
  spec.num_triples = 400;
  spec.num_latent_types = 4;
  spec.seed = 9;
  return generate_synthetic(spec);
}

TEST(NegativeSampler, CorruptionDiffersFromPositive) {
  const Dataset ds = tiny_dataset();
  const NegativeSampler sampler(ds);
  util::Rng rng(1);
  for (const Triple& pos : ds.train().subspan(0, 50)) {
    const Triple neg = sampler.corrupt(pos, rng);
    EXPECT_NE(neg, pos);
  }
}

TEST(NegativeSampler, CorruptionKeepsRelation) {
  const Dataset ds = tiny_dataset();
  const NegativeSampler sampler(ds);
  util::Rng rng(2);
  for (const Triple& pos : ds.train().subspan(0, 50)) {
    const Triple neg = sampler.corrupt(pos, rng);
    EXPECT_EQ(neg.relation, pos.relation);
  }
}

TEST(NegativeSampler, CorruptionChangesExactlyOneSide) {
  const Dataset ds = tiny_dataset();
  const NegativeSampler sampler(ds);
  util::Rng rng(3);
  for (const Triple& pos : ds.train().subspan(0, 100)) {
    const Triple neg = sampler.corrupt(pos, rng);
    const bool head_changed = neg.head != pos.head;
    const bool tail_changed = neg.tail != pos.tail;
    EXPECT_TRUE(head_changed != tail_changed)
        << "exactly one of head/tail must change";
  }
}

TEST(NegativeSampler, FilteredAvoidsKnownTriples) {
  const Dataset ds = tiny_dataset();
  const NegativeSampler sampler(ds, /*filter_known=*/true);
  util::Rng rng(4);
  int known_hits = 0;
  for (const Triple& pos : ds.train().subspan(0, 200)) {
    known_hits += ds.contains(sampler.corrupt(pos, rng));
  }
  // The bounded-retry fallback can rarely emit a known triple; near-zero.
  EXPECT_LE(known_hits, 2);
}

TEST(NegativeSampler, BothSidesGetCorrupted) {
  const Dataset ds = tiny_dataset();
  const NegativeSampler sampler(ds);
  util::Rng rng(5);
  int heads = 0, tails = 0;
  const Triple pos = ds.train()[0];
  for (int i = 0; i < 200; ++i) {
    const Triple neg = sampler.corrupt(pos, rng);
    heads += neg.head != pos.head;
    tails += neg.tail != pos.tail;
  }
  EXPECT_GT(heads, 50);
  EXPECT_GT(tails, 50);
}

TEST(NegativeSampler, CorruptNAppends) {
  const Dataset ds = tiny_dataset();
  const NegativeSampler sampler(ds);
  util::Rng rng(6);
  TripleList out;
  sampler.corrupt_n(ds.train()[0], 5, rng, out);
  sampler.corrupt_n(ds.train()[1], 3, rng, out);
  EXPECT_EQ(out.size(), 8u);
}

TEST(NegativeSampler, DeterministicGivenSeed) {
  const Dataset ds = tiny_dataset();
  const NegativeSampler sampler(ds);
  util::Rng r1(7), r2(7);
  for (const Triple& pos : ds.train().subspan(0, 20)) {
    EXPECT_EQ(sampler.corrupt(pos, r1), sampler.corrupt(pos, r2));
  }
}

}  // namespace
}  // namespace dynkge::kge
