#!/usr/bin/env python3
"""Kill/restart harness for the dynkge checkpoint layer.

Drives the real CLI binary through the fault-tolerance contract, per
gradient-exchange strategy:

  1. an uninterrupted reference run saving its final model,
  2. a checkpointed run SIGKILLed right after epoch 1's snapshot,
  3. a --resume run that must report the resumed epoch and produce a
     final model byte-identical to the reference,
  4. a run SIGKILLed 100 bytes into a snapshot *write* — the previous
     snapshot must survive (atomic temp+rename) and resume must still
     match the reference byte for byte,
  5. a run with injected transient + straggler faults, which must retry,
     finish, and still match the reference byte for byte,
  6. a run with an injected rank crash, which must exit with the CLI's
     RankFailedError status (3) instead of hanging,
  7. an elastic run SIGKILLed *during* the recovery rebuild itself — a
     plain --resume restart must recover again and still end
     byte-identical to an uninterrupted elastic run,
  8. a run whose disk fills during the final epoch's snapshot write —
     --checkpoint-on-error skip must finish training byte-identical to
     the reference, and a --resume restart must pick the prior good
     snapshot and still match.

Usage: kill_restart.py <dynkge-binary> <data-dir> <work-dir> <strategy>
"""

import pathlib
import shutil
import subprocess
import sys

TIMEOUT_SECONDS = 600  # a hang (deadlocked barrier) becomes a failure
SIGKILL_CODES = (-9, 137)
RANK_FAILED_EXIT = 3


def run(cmd, expect=0):
    """Run a CLI invocation; returncode must be in `expect` (int or tuple)."""
    print("+", " ".join(str(c) for c in cmd), flush=True)
    proc = subprocess.run(
        [str(c) for c in cmd],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        timeout=TIMEOUT_SECONDS,
    )
    text = proc.stdout.decode(errors="replace")
    print(text, flush=True)
    codes = expect if isinstance(expect, tuple) else (expect,)
    if proc.returncode not in codes:
        sys.exit(
            f"FAIL: expected exit in {codes}, got {proc.returncode}: {cmd}"
        )
    return text


def expect_same_bytes(a, b, what):
    if pathlib.Path(a).read_bytes() != pathlib.Path(b).read_bytes():
        sys.exit(f"FAIL: {what}: {a} and {b} differ")
    print(f"ok: {what}: byte-identical", flush=True)


def main():
    if len(sys.argv) != 5:
        sys.exit(__doc__)
    binary, data, work, strategy = sys.argv[1:]
    work = pathlib.Path(work)
    shutil.rmtree(work, ignore_errors=True)
    work.mkdir(parents=True)

    base = [
        binary, "train", "--data", data, "--strategy", strategy,
        "--nodes", "2", "--rank", "8", "--batch", "500",
        "--max-epochs", "4", "--tolerance", "3", "--seed", "7",
    ]

    # 1. Uninterrupted reference.
    reference = work / "reference.dkge"
    run(base + ["--save-model", reference])

    # 2. Kill right after epoch 1's snapshot is durable.
    ckpt = work / "ckpt"
    run(base + ["--checkpoint-dir", ckpt, "--kill-at-epoch", "1"],
        expect=SIGKILL_CODES)
    if not (ckpt / "snapshot.dkgs").exists():
        sys.exit("FAIL: kill run left no snapshot behind")

    # 3. Resume and finish; final model must match the reference exactly.
    resumed = work / "resumed.dkge"
    out = run(base + ["--checkpoint-dir", ckpt, "--resume",
                      "--save-model", resumed])
    if "resumed from epoch 2" not in out:
        sys.exit("FAIL: resume did not continue from epoch 2")
    expect_same_bytes(reference, resumed, f"{strategy} kill/resume")

    # 4. Kill mid-write: 100 bytes into epoch 2's snapshot temp file. The
    # epoch-1 snapshot must be untouched and resume must still match.
    ckpt2 = work / "ckpt_midwrite"
    run(base + ["--checkpoint-dir", ckpt2, "--kill-at-epoch", "2",
                "--kill-mid-write", "100"], expect=SIGKILL_CODES)
    snapshot = ckpt2 / "snapshot.dkgs"
    torn = ckpt2 / "snapshot.dkgs.tmp"
    if not snapshot.exists():
        sys.exit("FAIL: mid-write kill destroyed the previous snapshot")
    if torn.exists() and torn.stat().st_size != 100:
        sys.exit(f"FAIL: torn temp file has {torn.stat().st_size} bytes, "
                 "expected the 100 written before the kill")
    resumed2 = work / "resumed_midwrite.dkge"
    out = run(base + ["--checkpoint-dir", ckpt2, "--resume",
                      "--save-model", resumed2])
    if "resumed from epoch 2" not in out:
        sys.exit("FAIL: mid-write resume did not continue from epoch 2")
    expect_same_bytes(reference, resumed2, f"{strategy} mid-write resume")

    # 5. Recovered transients + a straggler change nothing but the clock.
    faulted = work / "faulted.dkge"
    out = run(base + ["--fault-spec", "transient@1@40@2,straggler@0@10@0.5",
                      "--save-model", faulted])
    if "1 transients" not in out or "1 stragglers" not in out:
        sys.exit("FAIL: fault counters missing from CLI summary")
    expect_same_bytes(reference, faulted, f"{strategy} transient faults")

    # 6. A rank crash must surface as a clean failure, not a hang.
    run(base + ["--fault-spec", "crash@1@40"], expect=RANK_FAILED_EXIT)

    # 7. Elastic recovery is itself restartable. Reference: rank 1 dies at
    # epoch 2, the run shrinks to one node and finishes clean.
    elastic = ["--elastic", "--max-rank-failures", "1",
               "--fault-spec", "crash@1@e2"]
    elastic_ref = work / "elastic_ref.dkge"
    out = run(base + elastic + ["--save-model", elastic_ref])
    if "1 recoveries" not in out:
        sys.exit("FAIL: elastic reference run reported no recovery")

    # SIGKILL in the middle of the recovery rebuild (after the shrink is
    # decided, before the replay starts) ...
    ckpt3 = work / "ckpt_elastic"
    run(base + elastic + ["--checkpoint-dir", ckpt3,
                          "--kill-in-recovery", "1"],
        expect=SIGKILL_CODES)
    if not (ckpt3 / "snapshot.dkgs").exists():
        sys.exit("FAIL: elastic kill run left no snapshot behind")

    # ... then a plain --resume restart rolls back to the same snapshot,
    # eats the same crash again, recovers again, and must match the
    # uninterrupted elastic run byte for byte.
    elastic_resumed = work / "elastic_resumed.dkge"
    out = run(base + elastic + ["--checkpoint-dir", ckpt3, "--resume",
                                "--save-model", elastic_resumed])
    if "1 recoveries" not in out:
        sys.exit("FAIL: restarted elastic run reported no recovery")
    expect_same_bytes(elastic_ref, elastic_resumed,
                      f"{strategy} kill-in-recovery restart")

    # 8. Disk full during the final epoch's snapshot write: under
    # --checkpoint-on-error skip the run must finish (byte-identical to
    # the reference) with the failure logged, leaving epoch 3's snapshot
    # as the resume point.
    ckpt4 = work / "ckpt_diskfault"
    degraded = work / "degraded.dkge"
    out = run(base + ["--checkpoint-dir", ckpt4,
                      "--checkpoint-on-error", "skip",
                      "--disk-fault-at-epoch", "3",
                      "--save-model", degraded])
    if "checkpoint write failed" not in out:
        sys.exit("FAIL: disk-fault run did not log the failed write")
    expect_same_bytes(reference, degraded, f"{strategy} disk-fault skip")

    # A --resume restart picks the prior good snapshot (end of epoch 2),
    # replays epoch 3, and must still match the reference byte for byte.
    disk_resumed = work / "disk_resumed.dkge"
    out = run(base + ["--checkpoint-dir", ckpt4, "--resume",
                      "--save-model", disk_resumed])
    if "resumed from epoch 3" not in out:
        sys.exit("FAIL: disk-fault resume did not continue from epoch 3")
    expect_same_bytes(reference, disk_resumed,
                      f"{strategy} disk-fault resume")

    print(f"PASS: kill/restart contract holds for strategy {strategy}")


if __name__ == "__main__":
    main()
