#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace dynkge::util {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(SplitMix64, KnownVector) {
  // Reference values from the canonical splitmix64 implementation, seed 0.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(s), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(s), 0x06c45d188009454fULL);
}

TEST(DeriveSeed, DistinctForDistinctParts) {
  std::set<std::uint64_t> seeds;
  for (int rank = 0; rank < 16; ++rank) {
    for (int epoch = 0; epoch < 16; ++epoch) {
      seeds.insert(derive_seed(123, rank, epoch));
    }
  }
  EXPECT_EQ(seeds.size(), 16u * 16u);
}

TEST(DeriveSeed, OrderSensitive) {
  EXPECT_NE(derive_seed(1, 2, 3), derive_seed(1, 3, 2));
}

TEST(Rng, Reproducible) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_EQ(equal, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroAndOne) {
  Rng rng(1);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, FloatInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Rng, RangedDouble) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double(-2.5, 7.5);
    EXPECT_GE(d, -2.5);
    EXPECT_LT(d, 7.5);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(6);
  for (const double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) hits += rng.next_bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, p, 0.02);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0 + 1e-9));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  constexpr int kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(9);
  constexpr int kDraws = 100000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_normal(3.0, 0.5);
  EXPECT_NEAR(sum / kDraws, 3.0, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(10);
  Rng child = parent.split();
  // The child stream must not replay the parent stream.
  Rng parent_copy(10);
  parent_copy.split();  // advance identically
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (child.next_u64() == parent_copy.next_u64());
  }
  EXPECT_LT(equal, 5);
}

TEST(ZipfSampler, SkewsTowardSmallIndices) {
  ZipfSampler zipf(100, 1.1);
  Rng rng(11);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfSampler, CoversSupport) {
  ZipfSampler zipf(5, 0.5);
  Rng rng(12);
  std::set<std::size_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(zipf.sample(rng));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(ZipfSampler, ExponentZeroIsUniform) {
  ZipfSampler zipf(4, 0.0);
  Rng rng(13);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c, kDraws / 4, kDraws / 4 * 0.1);
}

}  // namespace
}  // namespace dynkge::util
