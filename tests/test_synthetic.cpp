#include "kge/synthetic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace dynkge::kge {
namespace {

SyntheticSpec small_spec() {
  SyntheticSpec spec;
  spec.num_entities = 300;
  spec.num_relations = 24;
  spec.num_triples = 5000;
  spec.num_latent_types = 6;
  spec.seed = 42;
  return spec;
}

TEST(Synthetic, Deterministic) {
  const Dataset a = generate_synthetic(small_spec());
  const Dataset b = generate_synthetic(small_spec());
  ASSERT_EQ(a.train().size(), b.train().size());
  ASSERT_EQ(a.valid().size(), b.valid().size());
  for (std::size_t i = 0; i < a.train().size(); ++i) {
    EXPECT_EQ(a.train()[i], b.train()[i]);
  }
}

TEST(Synthetic, SeedChangesOutput) {
  SyntheticSpec spec = small_spec();
  const Dataset a = generate_synthetic(spec);
  spec.seed = 43;
  const Dataset b = generate_synthetic(spec);
  bool any_difference = a.train().size() != b.train().size();
  for (std::size_t i = 0;
       !any_difference && i < std::min(a.train().size(), b.train().size());
       ++i) {
    any_difference = !(a.train()[i] == b.train()[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Synthetic, ReachesRequestedScale) {
  const Dataset ds = generate_synthetic(small_spec());
  // Dedup and the attempt cap may fall slightly short; demand 90%.
  EXPECT_GE(ds.num_facts(), small_spec().num_triples * 9 / 10);
  EXPECT_EQ(ds.num_entities(), small_spec().num_entities);
  EXPECT_EQ(ds.num_relations(), small_spec().num_relations);
}

TEST(Synthetic, NoDuplicateFacts) {
  const Dataset ds = generate_synthetic(small_spec());
  std::set<std::uint64_t> keys;
  for (const std::span<const Triple> split :
       {ds.train(), ds.valid(), ds.test()}) {
    for (const Triple& t : split) {
      EXPECT_TRUE(keys.insert(pack_triple(t)).second)
          << "duplicate triple across splits";
    }
  }
}

TEST(Synthetic, ValidTestEntitiesAppearInTrain) {
  const Dataset ds = generate_synthetic(small_spec());
  std::vector<bool> entity_in_train(ds.num_entities(), false);
  std::vector<bool> relation_in_train(ds.num_relations(), false);
  for (const Triple& t : ds.train()) {
    entity_in_train[t.head] = true;
    entity_in_train[t.tail] = true;
    relation_in_train[t.relation] = true;
  }
  for (const std::span<const Triple> split : {ds.valid(), ds.test()}) {
    for (const Triple& t : split) {
      EXPECT_TRUE(entity_in_train[t.head]);
      EXPECT_TRUE(entity_in_train[t.tail]);
      EXPECT_TRUE(relation_in_train[t.relation]);
    }
  }
}

TEST(Synthetic, SplitFractionsRoughlyHonored) {
  const Dataset ds = generate_synthetic(small_spec());
  const auto total = static_cast<double>(ds.num_facts());
  // Forced-to-train first occurrences shrink valid/test somewhat.
  EXPECT_GT(ds.valid().size(), total * 0.005);
  EXPECT_LT(ds.valid().size(), total * 0.04);
  EXPECT_GT(ds.test().size(), total * 0.005);
  EXPECT_LT(ds.test().size(), total * 0.04);
}

TEST(Synthetic, RelationFrequencyIsSkewed) {
  const Dataset ds = generate_synthetic(small_spec());
  std::vector<std::size_t> counts(ds.num_relations(), 0);
  for (const Triple& t : ds.train()) ++counts[t.relation];
  std::sort(counts.rbegin(), counts.rend());
  // Zipf-ish: the busiest relation should dwarf the median one.
  EXPECT_GT(counts.front(), 4 * std::max<std::size_t>(1, counts[counts.size() / 2]));
}

TEST(Synthetic, EntityPopularityIsSkewed) {
  const Dataset ds = generate_synthetic(small_spec());
  std::vector<std::size_t> degree(ds.num_entities(), 0);
  for (const Triple& t : ds.train()) {
    ++degree[t.head];
    ++degree[t.tail];
  }
  std::sort(degree.rbegin(), degree.rend());
  EXPECT_GT(degree.front(), 3 * std::max<std::size_t>(1, degree[degree.size() / 2]));
}

TEST(Synthetic, PresetSpecsAreConsistent) {
  for (const SyntheticSpec& spec :
       {SyntheticSpec::fb15k_mini(), SyntheticSpec::fb250k_mini()}) {
    EXPECT_GT(spec.num_entities, 0);
    EXPECT_GT(spec.num_relations, 0);
    EXPECT_GT(spec.num_triples, 0u);
    EXPECT_LE(spec.num_latent_types, spec.num_entities);
  }
  EXPECT_EQ(SyntheticSpec::fb15k_full().num_entities, 14951);
  EXPECT_EQ(SyntheticSpec::fb15k_full().num_relations, 1345);
  EXPECT_EQ(SyntheticSpec::fb250k_full().num_entities, 240000);
  EXPECT_EQ(SyntheticSpec::fb250k_full().num_relations, 9280);
}

TEST(Synthetic, RejectsBadSpecs) {
  SyntheticSpec spec = small_spec();
  spec.num_triples = 0;
  EXPECT_THROW(generate_synthetic(spec), std::invalid_argument);
  spec = small_spec();
  spec.num_latent_types = 0;
  EXPECT_THROW(generate_synthetic(spec), std::invalid_argument);
  spec = small_spec();
  spec.num_latent_types = spec.num_entities + 1;
  EXPECT_THROW(generate_synthetic(spec), std::invalid_argument);
}

}  // namespace
}  // namespace dynkge::kge
