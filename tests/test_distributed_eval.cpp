#include "core/distributed_eval.hpp"

#include <gtest/gtest.h>

#include "kge/complex_model.hpp"
#include "kge/synthetic.hpp"

namespace dynkge::core {
namespace {

struct Fixture {
  Fixture()
      : dataset(kge::generate_synthetic([] {
          kge::SyntheticSpec spec;
          spec.num_entities = 250;
          spec.num_relations = 16;
          spec.num_triples = 3000;
          spec.num_latent_types = 4;
          spec.seed = 55;
          return spec;
        }())),
        model(dataset.num_entities(), dataset.num_relations(), 8) {
    util::Rng rng(7);
    model.init(rng);
  }

  kge::Dataset dataset;
  kge::ComplExModel model;
};

class DistributedEvalP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, DistributedEvalP,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST_P(DistributedEvalP, MatchesSequentialExactly) {
  Fixture f;
  const kge::Evaluator evaluator(f.dataset);
  const auto sequential = evaluator.link_prediction(f.model, f.dataset.test());
  const auto distributed = distributed_link_prediction(
      f.model, f.dataset, f.dataset.test(), GetParam());
  EXPECT_EQ(distributed.metrics.evaluated, sequential.evaluated);
  EXPECT_NEAR(distributed.metrics.mrr, sequential.mrr, 1e-12);
  EXPECT_NEAR(distributed.metrics.mean_rank, sequential.mean_rank, 1e-9);
  EXPECT_NEAR(distributed.metrics.hits1, sequential.hits1, 1e-12);
  EXPECT_NEAR(distributed.metrics.hits10, sequential.hits10, 1e-12);
  EXPECT_NEAR(distributed.metrics.mrr_head_side, sequential.mrr_head_side,
              1e-12);
  EXPECT_NEAR(distributed.metrics.mrr_tail_side, sequential.mrr_tail_side,
              1e-12);
}

TEST_P(DistributedEvalP, SubsampleMatchesSequential) {
  Fixture f;
  kge::EvalOptions options;
  options.max_triples = 13;
  const kge::Evaluator evaluator(f.dataset);
  const auto sequential =
      evaluator.link_prediction(f.model, f.dataset.test(), options);
  const auto distributed = distributed_link_prediction(
      f.model, f.dataset, f.dataset.test(), GetParam(), options);
  EXPECT_EQ(distributed.metrics.evaluated, sequential.evaluated);
  EXPECT_NEAR(distributed.metrics.mrr, sequential.mrr, 1e-12);
}

TEST(DistributedEval, SimTimeShrinksWithRanks) {
  Fixture f;
  const auto one =
      distributed_link_prediction(f.model, f.dataset, f.dataset.test(), 1);
  const auto four =
      distributed_link_prediction(f.model, f.dataset, f.dataset.test(), 4);
  EXPECT_GT(one.sim_seconds, 0.0);
  EXPECT_LT(four.sim_seconds, one.sim_seconds);
}

TEST(DistributedEval, RejectsBadRankCount) {
  Fixture f;
  EXPECT_THROW(
      distributed_link_prediction(f.model, f.dataset, f.dataset.test(), 0),
      std::invalid_argument);
}

TEST(DistributedEval, EmptyTriples) {
  Fixture f;
  const auto result =
      distributed_link_prediction(f.model, f.dataset, {}, 4);
  EXPECT_EQ(result.metrics.evaluated, 0u);
  EXPECT_DOUBLE_EQ(result.metrics.mrr, 0.0);
}

TEST(DistributedEval, MoreRanksThanTriples) {
  Fixture f;
  const auto shard = f.dataset.test().subspan(0, 3);
  const auto result = distributed_link_prediction(f.model, f.dataset, shard, 8);
  const kge::Evaluator evaluator(f.dataset);
  const auto sequential = evaluator.link_prediction(f.model, shard);
  EXPECT_EQ(result.metrics.evaluated, sequential.evaluated);
  EXPECT_NEAR(result.metrics.mrr, sequential.mrr, 1e-12);
}

}  // namespace
}  // namespace dynkge::core
