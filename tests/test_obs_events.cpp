// EventLog + the trainer's per-epoch event stream: JSONL schema, one event
// per (epoch, rank), probe tagging that replays the DRS decision, and the
// zero-cost guarantee — telemetry must not change training results by a
// single bit.
#include "obs/events.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/trainer.hpp"
#include "json_lint.hpp"
#include "kge/synthetic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dynkge::obs {
namespace {

using dynkge::testing::JsonValue;
using dynkge::testing::parse_json;

const kge::Dataset& tiny_dataset() {
  static const kge::Dataset dataset = kge::generate_synthetic([] {
    kge::SyntheticSpec spec;
    spec.num_entities = 200;
    spec.num_relations = 16;
    spec.num_triples = 2000;
    spec.num_latent_types = 4;
    spec.seed = 7;
    return spec;
  }());
  return dataset;
}

core::TrainConfig fast_config(int nodes) {
  core::TrainConfig config;
  config.embedding_rank = 8;
  config.num_nodes = nodes;
  config.batch_size = 200;
  config.max_epochs = 5;
  config.compute_final_metrics = false;
  config.seed = 4242;
  config.strategy = core::StrategyConfig::drs_1bit(2);
  config.strategy.dynamic_probe_interval = 2;
  return config;
}

std::vector<JsonValue> read_jsonl(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<JsonValue> events;
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_FALSE(line.empty());
    events.push_back(parse_json(line));  // throws on malformed lines
  }
  return events;
}

TEST(EventLog, WritesOneLinePerEvent) {
  const std::string path = ::testing::TempDir() + "event_log_test.jsonl";
  {
    EventLog log(path);
    log.write_line("{\"a\":1}");
    log.write_line("{\"b\":2}");
    EXPECT_EQ(log.lines_written(), 2u);
    log.flush();
  }
  const auto events = read_jsonl(path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("a").number, 1.0);
  EXPECT_EQ(events[1].at("b").number, 2.0);
  std::remove(path.c_str());
}

TEST(EventLog, ThrowsWhenPathUnwritable) {
  EXPECT_THROW(EventLog("/nonexistent-dir/events.jsonl"),
               std::runtime_error);
}

TEST(EventStream, OneSchemaValidEventPerEpochAndRank) {
  const std::string path = ::testing::TempDir() + "train_events.jsonl";
  core::TrainConfig config = fast_config(2);
  {
    EventLog events(path);
    config.telemetry.events = &events;
    const auto report =
        core::DistributedTrainer(tiny_dataset(), config).train();
    EXPECT_EQ(events.lines_written(),
              static_cast<std::uint64_t>(report.epochs) * 2);
  }

  const auto events = read_jsonl(path);
  ASSERT_EQ(events.size(), 10u);  // 5 epochs x 2 ranks

  const char* const required_keys[] = {
      "epoch",      "rank",         "comm_mode",
      "transport",  "probe",        "switched_to_allgather",
      "selection",  "keep_rate",    "quant",
      "bytes_on_wire", "ss_candidates_scored", "ss_candidates_kept",
      "loss",       "lr",           "val_accuracy",
      "sim_seconds", "comm_seconds"};

  std::set<std::pair<int, int>> seen;
  for (const auto& event : events) {
    for (const char* key : required_keys) {
      EXPECT_TRUE(event.has(key)) << "missing key: " << key;
    }
    const int epoch = static_cast<int>(event.at("epoch").number);
    const int rank = static_cast<int>(event.at("rank").number);
    EXPECT_TRUE(seen.emplace(epoch, rank).second)
        << "duplicate event for epoch " << epoch << " rank " << rank;

    EXPECT_EQ(event.at("comm_mode").string, "dynamic");
    EXPECT_EQ(event.at("quant").string, "1-bit");
    EXPECT_EQ(event.at("selection").string, "random-selection");
    EXPECT_GE(event.at("keep_rate").number, 0.0);
    EXPECT_LE(event.at("keep_rate").number, 1.0);
    EXPECT_GT(event.at("bytes_on_wire").number, 0.0);
    EXPECT_GE(event.at("sim_seconds").number,
              event.at("comm_seconds").number);

    // A probe epoch is precisely a dynamic-mode all-gather epoch before
    // the permanent switch; after the switch all-gather keeps running
    // with probe=false. All-reduce epochs are never probes.
    const bool probe = event.at("probe").boolean;
    const bool allgather = event.at("transport").string == "allgather";
    if (probe) EXPECT_TRUE(allgather);
    if (!allgather) EXPECT_FALSE(probe);
  }
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (int rank = 0; rank < 2; ++rank) {
      EXPECT_TRUE(seen.count({epoch, rank}))
          << "no event for epoch " << epoch << " rank " << rank;
    }
  }

  // With probe interval 2, epoch 2 is the first probe; both ranks must
  // report the identical decision (they feed identical allreduced times).
  std::set<bool> probe_at_2;
  for (const auto& event : events) {
    if (static_cast<int>(event.at("epoch").number) == 2) {
      EXPECT_TRUE(event.at("probe").boolean);
      probe_at_2.insert(event.at("switched_to_allgather").boolean);
    }
  }
  EXPECT_EQ(probe_at_2.size(), 1u);
  std::remove(path.c_str());
}

TEST(EventStream, SampleSelectionCountsAppearWhenActive) {
  const std::string path = ::testing::TempDir() + "train_events_ss.jsonl";
  core::TrainConfig config = fast_config(2);
  config.max_epochs = 2;
  config.strategy = core::StrategyConfig::rs_1bit_rp_ss(4, 1);
  {
    EventLog events(path);
    config.telemetry.events = &events;
    core::DistributedTrainer(tiny_dataset(), config).train();
  }
  for (const auto& event : read_jsonl(path)) {
    // 4 candidates scored per positive, 1 kept: scored = 4 * kept.
    const double scored = event.at("ss_candidates_scored").number;
    const double kept = event.at("ss_candidates_kept").number;
    EXPECT_GT(kept, 0.0);
    EXPECT_EQ(scored, 4.0 * kept);
  }
  std::remove(path.c_str());
}

// The observability contract: enabling every sink changes nothing about
// the training result — embeddings are byte-identical, epoch counts and
// losses equal. Telemetry only reads state and never touches the RNGs.
TEST(EventStream, TelemetryDoesNotChangeResults) {
  const std::string path = ::testing::TempDir() + "train_events_det.jsonl";

  core::TrainConfig plain = fast_config(2);
  plain.strategy = core::StrategyConfig::drs_1bit_rp_ss(4, 1);
  plain.strategy.dynamic_probe_interval = 2;
  const auto baseline =
      core::DistributedTrainer(tiny_dataset(), plain).train();

  MetricsRegistry metrics;
  TraceWriter trace;
  core::TrainConfig instrumented = plain;
  {
    EventLog events(path);
    instrumented.telemetry.metrics = &metrics;
    instrumented.telemetry.trace = &trace;
    instrumented.telemetry.events = &events;
    const auto traced =
        core::DistributedTrainer(tiny_dataset(), instrumented).train();

    // sim_seconds is part-measured (per-thread compute) and varies run to
    // run with or without telemetry, so it is not compared; everything
    // derived from the model, the RNGs, or the modeled comm clock must
    // match exactly.
    EXPECT_EQ(baseline.epochs, traced.epochs);
    ASSERT_EQ(baseline.epoch_log.size(), traced.epoch_log.size());
    for (std::size_t i = 0; i < baseline.epoch_log.size(); ++i) {
      EXPECT_EQ(baseline.epoch_log[i].mean_loss,
                traced.epoch_log[i].mean_loss);
      EXPECT_EQ(baseline.epoch_log[i].val_accuracy,
                traced.epoch_log[i].val_accuracy);
      EXPECT_EQ(baseline.epoch_log[i].comm_seconds,
                traced.epoch_log[i].comm_seconds);
      EXPECT_EQ(baseline.epoch_log[i].used_allgather,
                traced.epoch_log[i].used_allgather);
    }

    const auto flat_a = baseline.model->entities().flat();
    const auto flat_b = traced.model->entities().flat();
    ASSERT_EQ(flat_a.size(), flat_b.size());
    EXPECT_EQ(std::memcmp(flat_a.data(), flat_b.data(),
                          flat_a.size_bytes()),
              0)
        << "telemetry changed the trained embeddings";
    const auto rel_a = baseline.model->relations().flat();
    const auto rel_b = traced.model->relations().flat();
    EXPECT_EQ(std::memcmp(rel_a.data(), rel_b.data(), rel_a.size_bytes()),
              0);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dynkge::obs
