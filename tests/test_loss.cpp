#include "kge/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dynkge::kge {
namespace {

TEST(LogisticLoss, ZeroScoreIsLog2) {
  EXPECT_NEAR(logistic_loss(0.0, +1).loss, std::log(2.0), 1e-12);
  EXPECT_NEAR(logistic_loss(0.0, -1).loss, std::log(2.0), 1e-12);
}

TEST(LogisticLoss, ConfidentCorrectIsCheap) {
  EXPECT_LT(logistic_loss(10.0, +1).loss, 1e-4);
  EXPECT_LT(logistic_loss(-10.0, -1).loss, 1e-4);
}

TEST(LogisticLoss, ConfidentWrongIsExpensive) {
  EXPECT_GT(logistic_loss(-10.0, +1).loss, 9.0);
  EXPECT_GT(logistic_loss(10.0, -1).loss, 9.0);
}

TEST(LogisticLoss, GradientSign) {
  // Positive label: loss decreases as score increases -> dscore < 0.
  EXPECT_LT(logistic_loss(0.0, +1).dscore, 0.0);
  // Negative label: loss increases as score increases -> dscore > 0.
  EXPECT_GT(logistic_loss(0.0, -1).dscore, 0.0);
}

TEST(LogisticLoss, GradientMatchesFiniteDifference) {
  for (const int label : {+1, -1}) {
    for (const double score : {-3.0, -0.7, 0.0, 0.7, 3.0}) {
      const double h = 1e-6;
      const double numeric =
          (logistic_loss(score + h, label).loss -
           logistic_loss(score - h, label).loss) /
          (2.0 * h);
      EXPECT_NEAR(logistic_loss(score, label).dscore, numeric, 1e-6);
    }
  }
}

TEST(LogisticLoss, GradientBounded) {
  // |dscore| = sigmoid(-y*phi) is always in (0, 1).
  for (const double score : {-100.0, -1.0, 0.0, 1.0, 100.0}) {
    for (const int label : {+1, -1}) {
      const double g = logistic_loss(score, label).dscore;
      EXPECT_LE(std::fabs(g), 1.0);
    }
  }
}

TEST(LogisticLoss, ExtremeScoresStayFinite) {
  EXPECT_TRUE(std::isfinite(logistic_loss(1e8, -1).loss));
  EXPECT_TRUE(std::isfinite(logistic_loss(-1e8, +1).loss));
  EXPECT_TRUE(std::isfinite(logistic_loss(1e8, -1).dscore));
}

}  // namespace
}  // namespace dynkge::kge
