#include "core/hard_negatives.hpp"

#include <gtest/gtest.h>

#include "kge/complex_model.hpp"
#include "kge/synthetic.hpp"

namespace dynkge::core {
namespace {

struct Fixture {
  Fixture()
      : dataset(kge::generate_synthetic([] {
          kge::SyntheticSpec spec;
          spec.num_entities = 200;
          spec.num_relations = 12;
          spec.num_triples = 2500;
          spec.num_latent_types = 4;
          spec.seed = 77;
          return spec;
        }())),
        model(dataset.num_entities(), dataset.num_relations(), 8),
        sampler(dataset) {
    util::Rng rng(3);
    model.init(rng);
  }

  kge::Dataset dataset;
  kge::ComplExModel model;
  kge::NegativeSampler sampler;
};

TEST(HardNegatives, BaselinePathSkipsScoring) {
  Fixture f;
  util::Rng rng(1);
  kge::TripleList out;
  const int scored = select_hard_negatives(f.model, f.sampler,
                                           f.dataset.train()[0], 5, 5, rng,
                                           out);
  EXPECT_EQ(scored, 0);
  EXPECT_EQ(out.size(), 5u);
}

TEST(HardNegatives, SelectionPathScoresAllCandidates) {
  Fixture f;
  util::Rng rng(1);
  kge::TripleList out;
  const int scored = select_hard_negatives(f.model, f.sampler,
                                           f.dataset.train()[0], 10, 1, rng,
                                           out);
  EXPECT_EQ(scored, 10);
  EXPECT_EQ(out.size(), 1u);
}

TEST(HardNegatives, PicksTheHighestScoringCandidate) {
  Fixture f;
  const kge::Triple positive = f.dataset.train()[0];
  // Reproduce the candidate set with an identical rng stream, then verify
  // the selected one scores at least as high as every candidate.
  util::Rng selection_rng(42);
  kge::TripleList out;
  select_hard_negatives(f.model, f.sampler, positive, 8, 1, selection_rng,
                        out);
  ASSERT_EQ(out.size(), 1u);
  const double chosen =
      f.model.score(out[0].head, out[0].relation, out[0].tail);

  util::Rng replay_rng(42);
  for (int i = 0; i < 8; ++i) {
    const kge::Triple candidate = f.sampler.corrupt(positive, replay_rng);
    EXPECT_GE(chosen + 1e-9,
              f.model.score(candidate.head, candidate.relation,
                            candidate.tail));
  }
}

TEST(HardNegatives, MOutOfNReturnsSortedHardest) {
  Fixture f;
  util::Rng rng(9);
  kge::TripleList out;
  select_hard_negatives(f.model, f.sampler, f.dataset.train()[1], 12, 3, rng,
                        out);
  ASSERT_EQ(out.size(), 3u);
  const auto score = [&](const kge::Triple& t) {
    return f.model.score(t.head, t.relation, t.tail);
  };
  EXPECT_GE(score(out[0]) + 1e-9, score(out[1]));
  EXPECT_GE(score(out[1]) + 1e-9, score(out[2]));
}

TEST(HardNegatives, AppendsWithoutClearing) {
  Fixture f;
  util::Rng rng(2);
  kge::TripleList out;
  select_hard_negatives(f.model, f.sampler, f.dataset.train()[0], 4, 1, rng,
                        out);
  select_hard_negatives(f.model, f.sampler, f.dataset.train()[1], 4, 2, rng,
                        out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(HardNegatives, AllNegativesShareTheRelation) {
  Fixture f;
  util::Rng rng(5);
  const kge::Triple positive = f.dataset.train()[2];
  kge::TripleList out;
  select_hard_negatives(f.model, f.sampler, positive, 10, 2, rng, out);
  for (const kge::Triple& negative : out) {
    EXPECT_EQ(negative.relation, positive.relation);
    EXPECT_NE(negative, positive);
  }
}

TEST(HardNegatives, RejectsBadCounts) {
  Fixture f;
  util::Rng rng(1);
  kge::TripleList out;
  EXPECT_THROW(select_hard_negatives(f.model, f.sampler, f.dataset.train()[0],
                                     0, 1, rng, out),
               std::invalid_argument);
  EXPECT_THROW(select_hard_negatives(f.model, f.sampler, f.dataset.train()[0],
                                     5, 0, rng, out),
               std::invalid_argument);
}

TEST(HardNegatives, DeterministicGivenSeed) {
  Fixture f;
  util::Rng r1(11), r2(11);
  kge::TripleList a, b;
  select_hard_negatives(f.model, f.sampler, f.dataset.train()[3], 10, 2, r1,
                        a);
  select_hard_negatives(f.model, f.sampler, f.dataset.train()[3], 10, 2, r2,
                        b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace dynkge::core
