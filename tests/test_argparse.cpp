#include "util/argparse.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>

#include "comm/federated.hpp"
#include "core/trainer.hpp"
#include "kge/synthetic.hpp"

namespace dynkge::util {
namespace {

ArgParser make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, Defaults) {
  const auto args = make({});
  EXPECT_EQ(args.get_int("nodes", 4), 4);
  EXPECT_EQ(args.get_string("scale", "mini"), "mini");
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.001), 0.001);
  EXPECT_FALSE(args.has_flag("verbose"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  const auto args = make({"--nodes", "8", "--scale", "full"});
  EXPECT_EQ(args.get_int("nodes", 0), 8);
  EXPECT_EQ(args.get_string("scale", ""), "full");
}

TEST(ArgParser, EqualsSeparatedValues) {
  const auto args = make({"--nodes=16", "--lr=0.01"});
  EXPECT_EQ(args.get_int("nodes", 0), 16);
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.01);
}

TEST(ArgParser, BareFlags) {
  const auto args = make({"--verbose", "--nodes", "2"});
  EXPECT_TRUE(args.has_flag("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("nodes", 0), 2);
}

TEST(ArgParser, BareFlagAtEnd) {
  const auto args = make({"--nodes", "2", "--csv"});
  EXPECT_TRUE(args.has_flag("csv"));
  EXPECT_EQ(args.get_int("nodes", 0), 2);
}

TEST(ArgParser, BoolValues) {
  const auto args = make({"--a=true", "--b=false", "--c=1", "--d=off"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(ArgParser, IntList) {
  const auto args = make({"--nodes", "1,2,4,8,16"});
  const auto list = args.get_int_list("nodes", {});
  ASSERT_EQ(list.size(), 5u);
  EXPECT_EQ(list[0], 1);
  EXPECT_EQ(list[4], 16);
}

TEST(ArgParser, IntListFallback) {
  const auto args = make({});
  const auto list = args.get_int_list("nodes", {1, 2});
  ASSERT_EQ(list.size(), 2u);
}

TEST(ArgParser, RejectsPositional) {
  EXPECT_THROW(make({"oops"}), std::invalid_argument);
}

TEST(ArgParser, NegativeNumbersAsValues) {
  // A negative numeric value must not be mistaken for a flag.
  const auto args = make({"--offset", "-3"});
  EXPECT_EQ(args.get_int("offset", 0), -3);
}

// ---- selection / federated flag surface ------------------------------
//
// The CLI forwards these straight into TrainConfig / FederatedPolicy, so
// the parse shapes and the config-time rejection messages are one
// contract: a bad value must come back as std::invalid_argument naming
// the flag the user typed (the probe_interval precedent in trainer.cpp).

TEST(ArgParser, SelectionAndFederatedFlagShapes) {
  const auto args = make({"--select", "topk", "--topk-k", "514",
                          "--drs-topk-arm", "--trainer", "federated",
                          "--clients", "4", "--local-epochs=2",
                          "--rounds", "10"});
  EXPECT_EQ(args.get_string("select", ""), "topk");
  EXPECT_EQ(args.get_int("topk-k", 0), 514);
  EXPECT_TRUE(args.get_bool("drs-topk-arm", false));
  EXPECT_EQ(args.get_string("trainer", "distributed"), "federated");
  EXPECT_EQ(args.get_int("clients", 2), 4);
  EXPECT_EQ(args.get_int("local-epochs", 1), 2);
  EXPECT_EQ(args.get_int("rounds", 0), 10);
}

const kge::Dataset& flag_dataset() {
  static const kge::Dataset dataset = kge::generate_synthetic([] {
    kge::SyntheticSpec spec;
    spec.num_entities = 50;
    spec.num_relations = 4;
    spec.num_triples = 400;
    spec.seed = 5;
    return spec;
  }());
  return dataset;
}

void expect_message_names_flag(const std::function<void()>& build,
                               const std::string& flag) {
  try {
    build();
    FAIL() << "expected invalid_argument naming " << flag;
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(flag), std::string::npos)
        << error.what();
  }
}

TEST(FlagValidation, TopKRejectedByFlagName) {
  core::TrainConfig config;
  config.strategy = core::StrategyConfig::topk(1);

  config.strategy.topk_k = 0;
  expect_message_names_flag(
      [&] { core::DistributedTrainer trainer(flag_dataset(), config); },
      "--topk-k");

  config.strategy.topk_k = flag_dataset().num_entities() + 1;
  expect_message_names_flag(
      [&] { core::DistributedTrainer trainer(flag_dataset(), config); },
      "--topk-k");

  // The dynamic Top-K arm only exists under a dynamic comm mode.
  config = core::TrainConfig{};
  config.strategy = core::StrategyConfig::rs();
  config.strategy.dynamic_topk_arm = true;
  config.strategy.topk_k = 8;
  expect_message_names_flag(
      [&] { core::DistributedTrainer trainer(flag_dataset(), config); },
      "--drs-topk-arm");
}

TEST(FlagValidation, RobustnessKnobsRejectedByFlagName) {
  core::TrainConfig config;
  config.collective_deadline = -0.5;
  expect_message_names_flag(
      [&] { core::DistributedTrainer trainer(flag_dataset(), config); },
      "--collective-deadline");

  config = core::TrainConfig{};
  config.checkpoint.keep = 0;
  expect_message_names_flag(
      [&] { core::DistributedTrainer trainer(flag_dataset(), config); },
      "--checkpoint-keep");

  config = core::TrainConfig{};
  config.checkpoint.on_error = "ignore";
  expect_message_names_flag(
      [&] { core::DistributedTrainer trainer(flag_dataset(), config); },
      "--checkpoint-on-error");

  // The three valid policies construct cleanly.
  for (const char* policy : {"fail", "skip", "retry"}) {
    config = core::TrainConfig{};
    config.checkpoint.on_error = policy;
    core::DistributedTrainer trainer(flag_dataset(), config);
  }
}

TEST(FlagValidation, FederatedPolicyRejectedByFlagName) {
  comm::FederatedPolicy policy;

  policy.num_clients = 0;
  expect_message_names_flag(
      [&] { comm::validate_federated_policy(policy); }, "--clients");

  policy = comm::FederatedPolicy{};
  policy.local_epochs = 0;
  expect_message_names_flag(
      [&] { comm::validate_federated_policy(policy); }, "--local-epochs");

  policy = comm::FederatedPolicy{};
  policy.rounds = 0;
  expect_message_names_flag(
      [&] { comm::validate_federated_policy(policy); }, "--rounds");

  policy = comm::FederatedPolicy{};
  policy.elastic.enabled = true;
  policy.elastic.max_rank_failures = -1;
  expect_message_names_flag(
      [&] { comm::validate_federated_policy(policy); },
      "--max-rank-failures");
}

}  // namespace
}  // namespace dynkge::util
