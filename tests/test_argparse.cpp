#include "util/argparse.hpp"

#include <gtest/gtest.h>

namespace dynkge::util {
namespace {

ArgParser make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, Defaults) {
  const auto args = make({});
  EXPECT_EQ(args.get_int("nodes", 4), 4);
  EXPECT_EQ(args.get_string("scale", "mini"), "mini");
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.001), 0.001);
  EXPECT_FALSE(args.has_flag("verbose"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  const auto args = make({"--nodes", "8", "--scale", "full"});
  EXPECT_EQ(args.get_int("nodes", 0), 8);
  EXPECT_EQ(args.get_string("scale", ""), "full");
}

TEST(ArgParser, EqualsSeparatedValues) {
  const auto args = make({"--nodes=16", "--lr=0.01"});
  EXPECT_EQ(args.get_int("nodes", 0), 16);
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.01);
}

TEST(ArgParser, BareFlags) {
  const auto args = make({"--verbose", "--nodes", "2"});
  EXPECT_TRUE(args.has_flag("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("nodes", 0), 2);
}

TEST(ArgParser, BareFlagAtEnd) {
  const auto args = make({"--nodes", "2", "--csv"});
  EXPECT_TRUE(args.has_flag("csv"));
  EXPECT_EQ(args.get_int("nodes", 0), 2);
}

TEST(ArgParser, BoolValues) {
  const auto args = make({"--a=true", "--b=false", "--c=1", "--d=off"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(ArgParser, IntList) {
  const auto args = make({"--nodes", "1,2,4,8,16"});
  const auto list = args.get_int_list("nodes", {});
  ASSERT_EQ(list.size(), 5u);
  EXPECT_EQ(list[0], 1);
  EXPECT_EQ(list[4], 16);
}

TEST(ArgParser, IntListFallback) {
  const auto args = make({});
  const auto list = args.get_int_list("nodes", {1, 2});
  ASSERT_EQ(list.size(), 2u);
}

TEST(ArgParser, RejectsPositional) {
  EXPECT_THROW(make({"oops"}), std::invalid_argument);
}

TEST(ArgParser, NegativeNumbersAsValues) {
  // A negative numeric value must not be mistaken for a flag.
  const auto args = make({"--offset", "-3"});
  EXPECT_EQ(args.get_int("offset", 0), -3);
}

}  // namespace
}  // namespace dynkge::util
