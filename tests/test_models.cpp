// Model correctness: analytic gradients are checked against central finite
// differences for every model — the single most important test in the kge
// substrate, since every strategy downstream consumes these gradients.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "kge/complex_model.hpp"
#include "kge/distmult_model.hpp"
#include "kge/model_factory.hpp"
#include "kge/rotate_model.hpp"
#include "kge/transe_model.hpp"

namespace dynkge::kge {
namespace {

constexpr std::int32_t kEntities = 7;
constexpr std::int32_t kRelations = 4;
constexpr std::int32_t kRank = 6;

std::unique_ptr<KgeModel> build(const std::string& name) {
  auto model = make_model(name, kEntities, kRelations, kRank);
  util::Rng rng(2024);
  model->init(rng);
  return model;
}

class ModelP : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(AllModels, ModelP,
                         ::testing::Values("complex", "distmult", "transe",
                                           "rotate"));

TEST_P(ModelP, InitIsDeterministic) {
  auto a = build(GetParam());
  auto b = build(GetParam());
  EXPECT_NEAR(a->score(0, 0, 1), b->score(0, 0, 1), 0.0);
  EXPECT_NEAR(a->score(3, 2, 5), b->score(3, 2, 5), 0.0);
}

TEST_P(ModelP, GradientMatchesFiniteDifferences) {
  auto model = build(GetParam());
  const EntityId h = 1;
  const RelationId r = 2;
  const EntityId t = 4;
  const float coeff = 1.7f;

  ModelGrads grads = model->make_grads();
  model->accumulate_gradients(h, r, t, coeff, grads);

  const double eps = 1e-3;
  const auto check_param = [&](EmbeddingMatrix& matrix, std::int32_t row,
                               const SparseGrad& grad_store) {
    const auto analytic = grad_store.row(row);
    for (std::int32_t i = 0; i < matrix.width(); ++i) {
      float& p = matrix.row(row)[i];
      const float saved = p;
      p = saved + static_cast<float>(eps);
      const double up = model->score(h, r, t);
      p = saved - static_cast<float>(eps);
      const double down = model->score(h, r, t);
      p = saved;
      const double numeric = coeff * (up - down) / (2.0 * eps);
      EXPECT_NEAR(analytic[i], numeric, 5e-2)
          << "row " << row << " component " << i;
    }
  };

  check_param(model->entities(), h, grads.entity);
  check_param(model->entities(), t, grads.entity);
  check_param(model->relations(), r, grads.relation);
}

TEST_P(ModelP, GradientAccumulatesAcrossTriples) {
  auto model = build(GetParam());
  ModelGrads once = model->make_grads();
  model->accumulate_gradients(1, 0, 2, 1.0f, once);
  ModelGrads twice = model->make_grads();
  model->accumulate_gradients(1, 0, 2, 0.5f, twice);
  model->accumulate_gradients(1, 0, 2, 0.5f, twice);
  const auto a = once.entity.row(1);
  const auto b = twice.entity.row(1);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-5);
}

TEST_P(ModelP, SelfLoopTripleAccumulatesBothSides) {
  // h == t: gradient row must receive both the head and tail contributions.
  auto model = build(GetParam());
  ModelGrads grads = model->make_grads();
  model->accumulate_gradients(3, 1, 3, 1.0f, grads);
  EXPECT_EQ(grads.entity.num_rows(), 1u);

  // Finite-difference the self-loop score with respect to row 3.
  const double eps = 1e-3;
  const auto analytic = grads.entity.row(3);
  for (std::int32_t i = 0; i < model->entities().width(); ++i) {
    float& p = model->entities().row(3)[i];
    const float saved = p;
    p = saved + static_cast<float>(eps);
    const double up = model->score(3, 1, 3);
    p = saved - static_cast<float>(eps);
    const double down = model->score(3, 1, 3);
    p = saved;
    EXPECT_NEAR(analytic[i], (up - down) / (2.0 * eps), 5e-2);
  }
}

TEST_P(ModelP, ScoreAllTailsMatchesScore) {
  auto model = build(GetParam());
  std::vector<double> scores(kEntities);
  model->score_all_tails(2, 1, scores);
  for (EntityId e = 0; e < kEntities; ++e) {
    // The batched path composes h*r in float; allow float rounding.
    EXPECT_NEAR(scores[e], model->score(2, 1, e), 1e-4);
  }
}

TEST_P(ModelP, ScoreAllHeadsMatchesScore) {
  auto model = build(GetParam());
  std::vector<double> scores(kEntities);
  model->score_all_heads(3, 5, scores);
  for (EntityId e = 0; e < kEntities; ++e) {
    EXPECT_NEAR(scores[e], model->score(e, 3, 5), 1e-4);
  }
}

TEST(ComplExModel, MatchesPaperEquationOne) {
  // Verify the score against an explicit evaluation of paper eq. (1):
  // phi = <Re r, Re h, Re t> + <Re r, Im h, Im t>
  //     + <Im r, Re h, Im t> - <Im r, Im h, Re t>.
  ComplExModel model(3, 2, 4);
  util::Rng rng(5);
  model.init(rng);
  const auto eh = model.entities().row(0);
  const auto er = model.relations().row(1);
  const auto et = model.entities().row(2);
  double expected = 0.0;
  for (int i = 0; i < 4; ++i) {
    const double h_re = eh[i], h_im = eh[4 + i];
    const double r_re = er[i], r_im = er[4 + i];
    const double t_re = et[i], t_im = et[4 + i];
    expected += r_re * h_re * t_re + r_re * h_im * t_im + r_im * h_re * t_im -
                r_im * h_im * t_re;
  }
  EXPECT_NEAR(model.score(0, 1, 2), expected, 1e-9);
}

TEST(ComplExModel, WidthIsTwiceRank) {
  ComplExModel model(3, 2, 5);
  EXPECT_EQ(model.entities().width(), 10);
  EXPECT_EQ(model.relations().width(), 10);
  EXPECT_EQ(model.rank(), 5);
}

TEST(ComplExModel, AsymmetricRelationsScoreDifferently) {
  // ComplEx's raison d'etre: phi(h,r,t) != phi(t,r,h) in general.
  ComplExModel model(4, 2, 8);
  util::Rng rng(11);
  model.init(rng);
  EXPECT_NE(model.score(0, 1, 2), model.score(2, 1, 0));
}

TEST(DistMultModel, IsSymmetric) {
  DistMultModel model(4, 2, 8);
  util::Rng rng(11);
  model.init(rng);
  EXPECT_NEAR(model.score(0, 1, 2), model.score(2, 1, 0), 1e-9);
}

TEST(TransEModel, PerfectTranslationScoresGamma) {
  TransEModel model(3, 1, 4, /*gamma=*/10.0f);
  util::Rng rng(3);
  model.init(rng);
  // Force E_t = E_h + R_r so the distance is zero.
  for (int i = 0; i < 4; ++i) {
    model.entities().row(2)[i] =
        model.entities().row(0)[i] + model.relations().row(0)[i];
  }
  EXPECT_NEAR(model.score(0, 0, 2), 10.0, 1e-5);
}

TEST(TransEModel, FartherTranslationScoresLower) {
  TransEModel model(3, 1, 4);
  util::Rng rng(3);
  model.init(rng);
  for (int i = 0; i < 4; ++i) {
    model.entities().row(2)[i] =
        model.entities().row(0)[i] + model.relations().row(0)[i];
    model.entities().row(1)[i] = model.entities().row(2)[i] + 5.0f;
  }
  EXPECT_GT(model.score(0, 0, 2), model.score(0, 0, 1));
}

TEST(RotatEModel, ZeroRotationIsTranslationFreeDistance) {
  // With all phases zero, phi = gamma - sum_k |h_k - t_k| (complex L1).
  RotatEModel model(3, 1, 4, /*gamma=*/10.0f);
  util::Rng rng(3);
  model.init(rng);
  for (auto& theta : model.relations().row(0)) theta = 0.0f;
  // t == h -> distance ~ 0 -> score ~ gamma.
  for (int i = 0; i < 8; ++i) {
    model.entities().row(2)[i] = model.entities().row(0)[i];
  }
  EXPECT_NEAR(model.score(0, 0, 2), 10.0, 1e-4);
}

TEST(RotatEModel, RotationMatchesComplexArithmetic) {
  RotatEModel model(3, 1, 1, /*gamma=*/0.0f);
  // h = 1 + 0i, theta = pi/2 -> rotated h = i; t = 0 + 1i -> distance 0.
  model.entities().row(0)[0] = 1.0f;
  model.entities().row(0)[1] = 0.0f;
  model.relations().row(0)[0] = 1.5707963f;
  model.entities().row(1)[0] = 0.0f;
  model.entities().row(1)[1] = 1.0f;
  EXPECT_NEAR(model.score(0, 0, 1), 0.0, 1e-5);
}

TEST(RotatEModel, RelationWidthIsRankNotTwiceRank) {
  RotatEModel model(3, 2, 6);
  EXPECT_EQ(model.entities().width(), 12);
  EXPECT_EQ(model.relations().width(), 6);
}

TEST(RotatEModel, CanRepresentAsymmetry) {
  RotatEModel model(4, 2, 8);
  util::Rng rng(11);
  model.init(rng);
  EXPECT_NE(model.score(0, 1, 2), model.score(2, 1, 0));
}

TEST(ModelFactory, RejectsUnknownName) {
  EXPECT_THROW(make_model("rotatE", 3, 2, 4), std::invalid_argument);
}

TEST(ModelFactory, ProducesNamedModels) {
  EXPECT_EQ(make_model("complex", 3, 2, 4)->name(), "ComplEx");
  EXPECT_EQ(make_model("distmult", 3, 2, 4)->name(), "DistMult");
  EXPECT_EQ(make_model("transe", 3, 2, 4)->name(), "TransE");
  EXPECT_EQ(make_model("rotate", 3, 2, 4)->name(), "RotatE");
}

}  // namespace
}  // namespace dynkge::kge
