#include "kge/embedding.hpp"

#include <gtest/gtest.h>

namespace dynkge::kge {
namespace {

TEST(EmbeddingMatrix, ShapeAndZeroInit) {
  EmbeddingMatrix m(5, 4);
  EXPECT_EQ(m.rows(), 5);
  EXPECT_EQ(m.width(), 4);
  EXPECT_EQ(m.size_bytes(), 5u * 4u * sizeof(float));
  for (int r = 0; r < 5; ++r) {
    for (const float v : m.row(r)) EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(EmbeddingMatrix, RowsAreDisjoint) {
  EmbeddingMatrix m(3, 2);
  m.row(1)[0] = 7.0f;
  EXPECT_FLOAT_EQ(m.row(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(m.row(1)[0], 7.0f);
  EXPECT_FLOAT_EQ(m.row(2)[0], 0.0f);
}

TEST(EmbeddingMatrix, RejectsBadShape) {
  EXPECT_THROW(EmbeddingMatrix(0, 4), std::invalid_argument);
  EXPECT_THROW(EmbeddingMatrix(4, 0), std::invalid_argument);
}

TEST(EmbeddingMatrix, UniformInitWithinBounds) {
  EmbeddingMatrix m(10, 8);
  util::Rng rng(1);
  m.init_uniform(rng, 0.5f);
  bool any_nonzero = false;
  for (const float v : m.flat()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LE(v, 0.5f);
    any_nonzero |= (v != 0.0f);
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(EmbeddingMatrix, NormalInitIsDeterministic) {
  EmbeddingMatrix a(4, 4), b(4, 4);
  util::Rng ra(9), rb(9);
  a.init_normal(ra, 1.0f);
  b.init_normal(rb, 1.0f);
  for (std::size_t i = 0; i < a.flat().size(); ++i) {
    EXPECT_FLOAT_EQ(a.flat()[i], b.flat()[i]);
  }
}

TEST(SparseGrad, CreatesRowsZeroFilled) {
  SparseGrad g(3);
  EXPECT_TRUE(g.empty());
  auto row = g.accumulate(7);
  EXPECT_EQ(row.size(), 3u);
  for (const float v : row) EXPECT_FLOAT_EQ(v, 0.0f);
  EXPECT_EQ(g.num_rows(), 1u);
  EXPECT_TRUE(g.has(7));
  EXPECT_FALSE(g.has(8));
}

TEST(SparseGrad, AccumulateReturnsSameRow) {
  SparseGrad g(2);
  g.accumulate(3)[0] = 1.0f;
  g.accumulate(3)[0] += 2.0f;
  EXPECT_FLOAT_EQ(g.row(3)[0], 3.0f);
  EXPECT_EQ(g.num_rows(), 1u);
}

TEST(SparseGrad, SortedIdsAscending) {
  SparseGrad g(1);
  for (const int id : {42, 7, 100, 3}) g.accumulate(id);
  const auto& ids = g.sorted_ids();
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], 3);
  EXPECT_EQ(ids[1], 7);
  EXPECT_EQ(ids[2], 42);
  EXPECT_EQ(ids[3], 100);
}

TEST(SparseGrad, SortedIdsRefreshAfterNewRows) {
  SparseGrad g(1);
  g.accumulate(5);
  EXPECT_EQ(g.sorted_ids().size(), 1u);
  g.accumulate(2);
  const auto& ids = g.sorted_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 2);
}

TEST(SparseGrad, EraseRemovesRow) {
  SparseGrad g(2);
  g.accumulate(1)[0] = 1.0f;
  g.accumulate(2)[0] = 2.0f;
  g.erase(1);
  EXPECT_FALSE(g.has(1));
  EXPECT_TRUE(g.has(2));
  EXPECT_EQ(g.num_rows(), 1u);
  EXPECT_EQ(g.sorted_ids().size(), 1u);
  EXPECT_THROW(g.row(1), std::out_of_range);
  g.erase(99);  // erasing an absent row is a no-op
  EXPECT_EQ(g.num_rows(), 1u);
}

TEST(SparseGrad, ClearResets) {
  SparseGrad g(2);
  g.accumulate(1);
  g.clear();
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.sorted_ids().size(), 0u);
  // Reusable after clear.
  g.accumulate(9)[1] = 4.0f;
  EXPECT_FLOAT_EQ(g.row(9)[1], 4.0f);
}

TEST(SparseGrad, ManyRowsSurviveArenaGrowth) {
  SparseGrad g(8);
  for (int id = 0; id < 500; ++id) {
    auto row = g.accumulate(id);
    row[0] = static_cast<float>(id);
  }
  for (int id = 0; id < 500; ++id) {
    EXPECT_FLOAT_EQ(g.row(id)[0], static_cast<float>(id));
  }
}

TEST(SparseGrad, RejectsBadWidth) {
  EXPECT_THROW(SparseGrad(0), std::invalid_argument);
  EXPECT_THROW(SparseGrad(-3), std::invalid_argument);
}

TEST(SparseGrad, RowThrowsForMissing) {
  SparseGrad g(2);
  EXPECT_THROW(g.row(5), std::out_of_range);
  const SparseGrad& cg = g;
  EXPECT_THROW(cg.row(5), std::out_of_range);
}

}  // namespace
}  // namespace dynkge::kge
