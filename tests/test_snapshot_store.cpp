#include "stream/snapshot_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "kge/model_factory.hpp"

namespace dynkge::stream {
namespace {

constexpr std::int32_t kEntities = 20;
constexpr std::int32_t kRelations = 3;

std::unique_ptr<kge::KgeModel> make_model(std::uint64_t seed = 7,
                                          std::int32_t entities = kEntities) {
  auto model = kge::make_model("distmult", entities, kRelations, 4);
  util::Rng rng(seed);
  model->init(rng);
  return model;
}

TEST(SnapshotStore, InitInstallsVersionOne) {
  SnapshotStore store;
  EXPECT_EQ(store.current_version(), 0u);
  EXPECT_EQ(store.init(std::shared_ptr<const kge::KgeModel>(make_model())),
            1u);
  EXPECT_EQ(store.current_version(), 1u);
  const PinnedModel pin = store.acquire();
  ASSERT_TRUE(pin);
  EXPECT_EQ(pin.version, 1u);
  EXPECT_EQ(pin->num_entities(), kEntities);
}

TEST(SnapshotStore, NonOwningInitAliasesCallerModel) {
  const auto model = make_model();
  SnapshotStore store;
  store.init(*model);
  const PinnedModel pin = store.acquire();
  EXPECT_EQ(pin.model.get(), model.get());  // same object, not a copy
}

TEST(SnapshotStore, InitAndPublishValidate) {
  SnapshotStore store;
  EXPECT_THROW(store.init(std::shared_ptr<const kge::KgeModel>()),
               std::invalid_argument);
  EXPECT_THROW(store.publish(make_model()), std::logic_error);  // before init
  store.init(std::shared_ptr<const kge::KgeModel>(make_model()));
  EXPECT_THROW(store.init(std::shared_ptr<const kge::KgeModel>(make_model())),
               std::logic_error);  // double init
  EXPECT_THROW(store.publish(std::shared_ptr<const kge::KgeModel>()),
               std::invalid_argument);
  // A snapshot with a different entity universe is a retrain artifact that
  // must not be hot-swapped under queries built for the old universe.
  EXPECT_THROW(store.publish(make_model(7, kEntities + 1)),
               std::invalid_argument);
  EXPECT_EQ(store.current_version(), 1u);  // failed publishes change nothing
}

TEST(SnapshotStore, PublishAdvancesVersionAndSwapsModel) {
  SnapshotStore store;
  store.init(std::shared_ptr<const kge::KgeModel>(make_model(1)));
  auto second = make_model(2);
  const kge::KgeModel* second_raw = second.get();
  EXPECT_EQ(store.publish(std::move(second)), 2u);
  EXPECT_EQ(store.current_version(), 2u);
  EXPECT_EQ(store.publishes(), 1u);
  const PinnedModel pin = store.acquire();
  EXPECT_EQ(pin.version, 2u);
  EXPECT_EQ(pin.model.get(), second_raw);
}

TEST(SnapshotStore, PinnedVersionSurvivesRingWraparound) {
  SnapshotStore store;
  store.init(std::shared_ptr<const kge::KgeModel>(make_model(1)));
  const PinnedModel pin = store.acquire();
  const float first_value = pin->entities().flat()[0];

  // Push the pinned version all the way out of the ring.
  for (std::uint64_t i = 0; i < SnapshotStore::kRingSlots + 2; ++i) {
    store.publish(make_model(100 + i));
  }
  EXPECT_EQ(store.current_version(), 1u + SnapshotStore::kRingSlots + 2);

  // The pin still reads its own version's bytes: the shared_ptr refcount
  // keeps the evicted snapshot alive for as long as the request runs.
  EXPECT_EQ(pin.version, 1u);
  EXPECT_EQ(pin->entities().flat()[0], first_value);
}

TEST(SnapshotStore, ObserversSeeVersionAndTouchedEntities) {
  SnapshotStore store;
  store.init(std::shared_ptr<const kge::KgeModel>(make_model()));
  std::vector<std::uint64_t> versions;
  std::vector<std::size_t> touched_sizes;
  store.add_publish_observer(
      [&](std::uint64_t version, const std::vector<kge::EntityId>& touched) {
        versions.push_back(version);
        touched_sizes.push_back(touched.size());
      });
  store.publish(make_model(2));                        // full swap
  store.publish(make_model(3), {1, 4, 9});             // delta refresh
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0], 2u);
  EXPECT_EQ(versions[1], 3u);
  EXPECT_EQ(touched_sizes[0], 0u);
  EXPECT_EQ(touched_sizes[1], 3u);
}

// The zero-downtime core claim, aimed at the TSan job: readers acquire and
// score continuously while a publisher hot-swaps versions as fast as it
// can. Every acquire must return a coherent (model, version) pair — a
// model whose bytes belong to exactly one version — and no read may fail.
TEST(SnapshotStore, ConcurrentReadersSurviveContinuousPublishes) {
  // Each version v fills its embeddings with the constant v, so a torn
  // read (bytes from two versions) is detectable from any two elements.
  const auto constant_model = [](float value) {
    auto model = kge::make_model("distmult", kEntities, kRelations, 4);
    for (auto& x : model->entities().flat()) x = value;
    for (auto& x : model->relations().flat()) x = value;
    return model;
  };

  SnapshotStore store;
  store.init(
      std::shared_ptr<const kge::KgeModel>(constant_model(1.0f)));

  constexpr int kPublishes = 200;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<int> torn{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      // Minimum iteration count: under a loaded scheduler the publisher
      // can finish before a reader thread even starts.
      for (int i = 0; i < 200 || !done.load(std::memory_order_acquire);
           ++i) {
        const PinnedModel pin = store.acquire();
        if (!pin) {
          ++torn;
          continue;
        }
        // Versions move forward only.
        if (pin.version < last_version) ++torn;
        last_version = pin.version;
        // All bytes belong to one version: constant fill value matching
        // the version number.
        const auto flat = pin->entities().flat();
        const float expected = static_cast<float>(pin.version);
        if (flat.front() != expected || flat.back() != expected) ++torn;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 2; i <= kPublishes + 1; ++i) {
    store.publish(constant_model(static_cast<float>(i)));
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(store.current_version(), static_cast<std::uint64_t>(kPublishes + 1));
}

}  // namespace
}  // namespace dynkge::stream
