#include "kge/serialize.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "kge/complex_model.hpp"
#include "kge/distmult_model.hpp"
#include "kge/model_factory.hpp"
#include "kge/transe_model.hpp"

namespace dynkge::kge {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dynkge_serialize_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(SerializeTest, ComplExRoundTrip) {
  ComplExModel model(17, 5, 6);
  util::Rng rng(3);
  model.init(rng);
  save_model(model, path("m.dkge"));
  const auto loaded = load_model(path("m.dkge"));
  ASSERT_EQ(loaded->name(), "ComplEx");
  EXPECT_EQ(loaded->num_entities(), 17);
  EXPECT_EQ(loaded->num_relations(), 5);
  // Bit-exact parameters -> identical scores.
  for (EntityId h = 0; h < 17; ++h) {
    EXPECT_DOUBLE_EQ(loaded->score(h, h % 5, (h + 3) % 17),
                     model.score(h, h % 5, (h + 3) % 17));
  }
}

TEST_F(SerializeTest, DistMultRoundTrip) {
  DistMultModel model(9, 4, 8);
  util::Rng rng(5);
  model.init(rng);
  save_model(model, path("dm.dkge"));
  const auto loaded = load_model(path("dm.dkge"));
  EXPECT_EQ(loaded->name(), "DistMult");
  EXPECT_DOUBLE_EQ(loaded->score(1, 2, 3), model.score(1, 2, 3));
}

TEST_F(SerializeTest, TransEKeepsGamma) {
  TransEModel model(9, 4, 8, /*gamma=*/7.5f);
  util::Rng rng(5);
  model.init(rng);
  save_model(model, path("te.dkge"));
  const auto loaded = load_model(path("te.dkge"));
  ASSERT_EQ(loaded->name(), "TransE");
  const auto* transe = dynamic_cast<const TransEModel*>(loaded.get());
  ASSERT_NE(transe, nullptr);
  EXPECT_FLOAT_EQ(transe->gamma(), 7.5f);
  EXPECT_DOUBLE_EQ(loaded->score(0, 1, 2), model.score(0, 1, 2));
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_model(path("absent.dkge")), std::runtime_error);
}

TEST_F(SerializeTest, BadMagicThrows) {
  std::ofstream out(path("junk.dkge"), std::ios::binary);
  out << "NOPEnope this is not a model file";
  out.close();
  EXPECT_THROW(load_model(path("junk.dkge")), std::runtime_error);
}

TEST_F(SerializeTest, TruncationThrows) {
  ComplExModel model(8, 3, 4);
  util::Rng rng(1);
  model.init(rng);
  save_model(model, path("full.dkge"));
  // Copy all but the last 16 bytes.
  std::ifstream in(path("full.dkge"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::ofstream out(path("cut.dkge"), std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 16));
  out.close();
  EXPECT_THROW(load_model(path("cut.dkge")), std::runtime_error);
}

TEST_F(SerializeTest, CorruptionFailsChecksum) {
  ComplExModel model(8, 3, 4);
  util::Rng rng(1);
  model.init(rng);
  save_model(model, path("ok.dkge"));
  std::ifstream in(path("ok.dkge"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes[bytes.size() / 2] ^= 0x40;  // flip a payload bit
  std::ofstream out(path("bad.dkge"), std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_THROW(load_model(path("bad.dkge")), std::runtime_error);
}

TEST_F(SerializeTest, OverwriteIsClean) {
  ComplExModel small(4, 2, 2);
  util::Rng rng(1);
  small.init(rng);
  ComplExModel big(50, 9, 16);
  big.init(rng);
  save_model(big, path("m.dkge"));
  save_model(small, path("m.dkge"));  // overwrite larger with smaller
  const auto loaded = load_model(path("m.dkge"));
  EXPECT_EQ(loaded->num_entities(), 4);
}

TEST_F(SerializeTest, FactoryModelsRoundTrip) {
  for (const char* name : {"complex", "distmult", "transe", "rotate"}) {
    auto model = make_model(name, 12, 3, 5);
    util::Rng rng(9);
    model->init(rng);
    const std::string file = path(std::string(name) + ".dkge");
    save_model(*model, file);
    const auto loaded = load_model(file);
    EXPECT_DOUBLE_EQ(loaded->score(2, 1, 7), model->score(2, 1, 7)) << name;
  }
}

}  // namespace
}  // namespace dynkge::kge
