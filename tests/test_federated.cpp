// Federated multi-client training: aggregation byte-determinism across
// client counts, selection modes, and host-pool sizes; client-crash
// recovery through comm/recovery.*; and the out-of-budget fail-fast
// contract. "Byte-identical" is memcmp over the raw float storage.
#include "core/federated.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "comm/fault.hpp"
#include "kge/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace dynkge::core {
namespace {

const kge::Dataset& tiny_dataset() {
  static const kge::Dataset dataset = kge::generate_synthetic([] {
    kge::SyntheticSpec spec;
    spec.num_entities = 200;
    spec.num_relations = 16;
    spec.num_triples = 2400;
    spec.num_latent_types = 4;
    spec.seed = 71;
    return spec;
  }());
  return dataset;
}

FederatedConfig base_config(int clients, SelectionMode selection) {
  FederatedConfig config;
  config.model_name = "complex";
  config.embedding_rank = 8;
  config.negatives = 2;
  config.lr.base_lr = 0.05;
  config.lr.tolerance = 15;  // no plateau stop inside these short runs
  config.seed = 4242;
  config.policy.num_clients = clients;
  config.policy.local_epochs = 2;
  config.policy.rounds = 4;
  config.strategy.selection = selection;
  config.strategy.selection_residual = selection != SelectionMode::kNone;
  if (selection == SelectionMode::kTopK) config.strategy.topk_k = 40;
  config.valid_max_triples = 100;
  config.compute_final_metrics = false;
  config.host_threads = 1;
  return config;
}

bool same_bytes(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size_bytes()) == 0;
}

void expect_identical_models(const FederatedReport& a,
                             const FederatedReport& b) {
  ASSERT_NE(a.model, nullptr);
  ASSERT_NE(b.model, nullptr);
  EXPECT_TRUE(same_bytes(a.model->entities().flat(),
                         b.model->entities().flat()));
  EXPECT_TRUE(same_bytes(a.model->relations().flat(),
                         b.model->relations().flat()));
}

// ---- aggregation byte-determinism ------------------------------------

struct DeterminismCase {
  int clients;
  SelectionMode selection;
};

std::string determinism_name(
    const testing::TestParamInfo<DeterminismCase>& info) {
  return std::to_string(info.param.clients) + "clients_" +
         (info.param.selection == SelectionMode::kTopK ? "topk" : "rs");
}

class FederatedDeterminism : public testing::TestWithParam<DeterminismCase> {
};

TEST_P(FederatedDeterminism, ByteIdenticalAcrossHostPoolSizes) {
  const DeterminismCase& param = GetParam();
  FederatedConfig config = base_config(param.clients, param.selection);
  config.host_threads = 1;
  const auto serial = FederatedTrainer(tiny_dataset(), config).train();
  config.host_threads = 4;
  const auto pooled = FederatedTrainer(tiny_dataset(), config).train();

  EXPECT_EQ(serial.rounds, config.policy.rounds);
  EXPECT_TRUE(serial.replicas_consistent);
  EXPECT_TRUE(pooled.replicas_consistent);
  EXPECT_EQ(serial.final_val_accuracy, pooled.final_val_accuracy);
  expect_identical_models(serial, pooled);
}

TEST_P(FederatedDeterminism, RoundLogRecordsSelection) {
  const DeterminismCase& param = GetParam();
  const FederatedConfig config = base_config(param.clients, param.selection);
  const auto report = FederatedTrainer(tiny_dataset(), config).train();
  ASSERT_EQ(report.round_log.size(),
            static_cast<std::size_t>(config.policy.rounds));
  for (const auto& record : report.round_log) {
    EXPECT_EQ(record.selection, to_string(param.selection));
    EXPECT_EQ(record.active_clients, param.clients);
    EXPECT_GT(record.bytes_on_wire, 0u);
    if (param.selection == SelectionMode::kTopK) {
      EXPECT_LT(record.keep_rate, 1.0);  // K below the touched-row count
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ClientsBySelection, FederatedDeterminism,
    testing::ValuesIn(std::vector<DeterminismCase>{
        {2, SelectionMode::kTopK},
        {2, SelectionMode::kBernoulli},
        {4, SelectionMode::kTopK},
        {4, SelectionMode::kBernoulli},
    }),
    determinism_name);

// ---- snapshot/resume --------------------------------------------------

TEST(Federated, ResumeMatchesUninterruptedRun) {
  FederatedConfig config = base_config(4, SelectionMode::kTopK);
  const auto continuous = FederatedTrainer(tiny_dataset(), config).train();

  FederatedConfig head = config;
  head.policy.rounds = 2;
  const auto first_half = FederatedTrainer(tiny_dataset(), head).train();
  ASSERT_NE(first_half.final_state, nullptr);
  EXPECT_EQ(first_half.final_state->next_round, 2);

  FederatedConfig tail = config;
  tail.resume = first_half.final_state;
  const auto resumed = FederatedTrainer(tiny_dataset(), tail).train();

  EXPECT_EQ(resumed.rounds, continuous.rounds);
  EXPECT_EQ(resumed.final_val_accuracy, continuous.final_val_accuracy);
  expect_identical_models(resumed, continuous);
}

// ---- client-crash recovery -------------------------------------------

std::unique_ptr<comm::FaultInjector> crash_injector(const std::string& spec) {
  return std::make_unique<comm::FaultInjector>(
      comm::FaultInjector::parse_spec(spec), comm::RetryPolicy{});
}

TEST(Federated, ClientCrashShrinksRosterAndCompletes) {
  FederatedConfig config = base_config(4, SelectionMode::kTopK);
  config.policy.elastic.enabled = true;
  config.policy.elastic.max_rank_failures = 1;
  const auto faults = crash_injector("crash@1@e2");
  config.fault_injector = faults.get();

  const auto report = FederatedTrainer(tiny_dataset(), config).train();
  EXPECT_EQ(report.rounds, config.policy.rounds);
  EXPECT_EQ(report.client_failures, 1);
  EXPECT_EQ(report.recoveries, 1);
  EXPECT_EQ(report.num_clients, 4);
  EXPECT_EQ(report.active_clients, 3);
  EXPECT_TRUE(report.replicas_consistent);
}

TEST(Federated, CrashRecoveryByteIdenticalToFreshShrunkRun) {
  // Crashed run: client 1 dies in round 2; survivors {0, 2, 3} roll back
  // to the round-1 snapshot and replay.
  FederatedConfig crashed = base_config(4, SelectionMode::kTopK);
  crashed.policy.elastic.enabled = true;
  crashed.policy.elastic.max_rank_failures = 1;
  const auto faults = crash_injector("crash@1@e2");
  crashed.fault_injector = faults.get();
  const auto recovered = FederatedTrainer(tiny_dataset(), crashed).train();
  ASSERT_EQ(recovered.recoveries, 1);

  // Fresh shrunk-world reference: the same two clean rounds on the full
  // roster, then a brand-new run on the survivors resumed from that
  // snapshot. Byte-identity here is the whole determinism contract: the
  // crash path may not leave any state behind that a fresh process
  // wouldn't reconstruct.
  FederatedConfig head = base_config(4, SelectionMode::kTopK);
  head.policy.rounds = 2;
  const auto first_half = FederatedTrainer(tiny_dataset(), head).train();
  ASSERT_NE(first_half.final_state, nullptr);

  FederatedConfig shrunk = base_config(4, SelectionMode::kTopK);
  shrunk.active_clients = {0, 2, 3};
  shrunk.resume = first_half.final_state;
  const auto fresh = FederatedTrainer(tiny_dataset(), shrunk).train();

  EXPECT_EQ(recovered.final_val_accuracy, fresh.final_val_accuracy);
  expect_identical_models(recovered, fresh);
}

TEST(Federated, OutOfBudgetCrashFailsFast) {
  // No elastic budget: the crash must propagate as RankFailedError (the
  // CLI maps it to exit 3).
  FederatedConfig config = base_config(4, SelectionMode::kBernoulli);
  const auto faults = crash_injector("crash@1@e1");
  config.fault_injector = faults.get();
  EXPECT_THROW(FederatedTrainer(tiny_dataset(), config).train(),
               comm::RankFailedError);
}

TEST(Federated, BudgetExhaustionFailsFastOnSecondCrash) {
  FederatedConfig config = base_config(4, SelectionMode::kBernoulli);
  config.policy.elastic.enabled = true;
  config.policy.elastic.max_rank_failures = 1;
  const auto faults = crash_injector("crash@1@e1,crash@2@e2");
  config.fault_injector = faults.get();
  EXPECT_THROW(FederatedTrainer(tiny_dataset(), config).train(),
               comm::RankFailedError);
}

// ---- config validation ------------------------------------------------

TEST(Federated, RejectsBadPolicyByFlagName) {
  const auto expect_rejected = [](FederatedConfig config,
                                  const std::string& needle) {
    try {
      FederatedTrainer trainer(tiny_dataset(), config);
      FAIL() << "expected invalid_argument mentioning " << needle;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
          << error.what();
    }
  };

  auto config = base_config(2, SelectionMode::kBernoulli);
  config.policy.num_clients = 0;
  expect_rejected(config, "--clients");

  config = base_config(2, SelectionMode::kBernoulli);
  config.policy.local_epochs = 0;
  expect_rejected(config, "--local-epochs");

  config = base_config(2, SelectionMode::kBernoulli);
  config.policy.rounds = 0;
  expect_rejected(config, "--rounds");

  config = base_config(2, SelectionMode::kTopK);
  config.strategy.topk_k = 0;
  expect_rejected(config, "--topk-k");

  config = base_config(2, SelectionMode::kTopK);
  config.strategy.topk_k = tiny_dataset().num_entities() + 1;
  expect_rejected(config, "--topk-k");

  config = base_config(2, SelectionMode::kBernoulli);
  config.strategy.dynamic_topk_arm = true;
  expect_rejected(config, "--drs-topk-arm");

  config = base_config(2, SelectionMode::kBernoulli);
  config.active_clients = {0, 5};
  expect_rejected(config, "outside");

  config = base_config(2, SelectionMode::kBernoulli);
  config.active_clients = {1, 0};
  expect_rejected(config, "ascending");
}

TEST(Federated, RejectsResumeWithUnknownClient) {
  FederatedConfig head = base_config(4, SelectionMode::kBernoulli);
  head.policy.rounds = 1;
  head.active_clients = {0, 1, 2};
  const auto first = FederatedTrainer(tiny_dataset(), head).train();
  ASSERT_NE(first.final_state, nullptr);

  FederatedConfig tail = base_config(4, SelectionMode::kBernoulli);
  tail.active_clients = {0, 1, 3};  // client 3 has no state in the snapshot
  tail.resume = first.final_state;
  EXPECT_THROW(FederatedTrainer(tiny_dataset(), tail).train(),
               std::invalid_argument);
}

}  // namespace
}  // namespace dynkge::core
