#include "comm/cost_model.hpp"

#include <gtest/gtest.h>

namespace dynkge::comm {
namespace {

TEST(CostModel, SingleRankIsFree) {
  const CostModel m;
  EXPECT_DOUBLE_EQ(m.barrier_time(1), 0.0);
  EXPECT_DOUBLE_EQ(m.broadcast_time(1, 1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(m.allreduce_time(1, 1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(m.allgatherv_time(1, 1 << 20, 1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(m.scatterv_time(1, 1 << 20, 1 << 20), 0.0);
}

TEST(CostModel, AllReduceClosedForm) {
  const CostModelParams p{1e-6, 1e-9, 1e-10};
  const CostModel m(p);
  const int ranks = 4;
  const std::size_t bytes = 1000;
  const double expected = 2.0 * 3.0 * 1e-6 + 2.0 * 1000 * 0.75 * 1e-9 +
                          1000 * 0.75 * 1e-10;
  EXPECT_NEAR(m.allreduce_time(ranks, bytes), expected, 1e-15);
}

TEST(CostModel, AllGatherClosedForm) {
  const CostModelParams p{1e-6, 1e-9, 1e-10};
  const CostModel m(p);
  // total 4000 bytes, self 1000 -> receives 3000 bytes over 3 stages.
  const double expected = 3.0 * 1e-6 + 3000.0 * 1e-9;
  EXPECT_NEAR(m.allgatherv_time(4, 4000, 1000), expected, 1e-15);
}

TEST(CostModel, BroadcastLogStages) {
  const CostModelParams p{1e-6, 0.0, 0.0};
  const CostModel m(p);
  EXPECT_NEAR(m.broadcast_time(2, 0), 1e-6, 1e-15);
  EXPECT_NEAR(m.broadcast_time(4, 0), 2e-6, 1e-15);
  EXPECT_NEAR(m.broadcast_time(5, 0), 3e-6, 1e-15);
  EXPECT_NEAR(m.broadcast_time(8, 0), 3e-6, 1e-15);
}

TEST(CostModel, BarrierLogStages) {
  const CostModelParams p{2e-6, 0.0, 0.0};
  const CostModel m(p);
  EXPECT_NEAR(m.barrier_time(16), 4 * 2e-6, 1e-15);
}

TEST(CostModel, AllReduceSaturatesWithRanks) {
  // Ring allreduce bandwidth term approaches 2*S*beta: time grows with P
  // but is bounded; the allgather of a full matrix grows without bound.
  const CostModel m(CostModelParams{0.0, 1e-9, 0.0});
  const std::size_t bytes = 1 << 20;
  const double t4 = m.allreduce_time(4, bytes);
  const double t16 = m.allreduce_time(16, bytes);
  EXPECT_LT(t4, t16);
  EXPECT_LT(t16, 2.0 * bytes * 1e-9 * 1.01);
}

TEST(CostModel, CrossoverAllGatherVsAllReduce) {
  // The premise of strategy 1: with per-rank sparse contributions of size s,
  // allgather beats allreduce of the dense matrix M when P*s << 2M, and
  // loses once the gathered volume approaches the dense volume.
  const CostModel m;
  const std::size_t dense = 64u << 20;      // 64 MiB dense gradient matrix
  const std::size_t per_rank = 12u << 20;   // 12 MiB of non-zero rows
  const auto gather_total = [&](int p) { return per_rank * p; };

  const int small_p = 2;
  EXPECT_LT(m.allgatherv_time(small_p, gather_total(small_p), per_rank),
            m.allreduce_time(small_p, dense));

  const int large_p = 16;
  EXPECT_GT(m.allgatherv_time(large_p, gather_total(large_p), per_rank),
            m.allreduce_time(large_p, dense));
}

TEST(CostModel, QuantizationShrinksAllGatherCost) {
  const CostModel m;
  const std::size_t full = 32u << 20;
  const std::size_t quantized = full / 32;
  EXPECT_LT(m.allgatherv_time(8, quantized * 8, quantized),
            m.allgatherv_time(8, full * 8, full) / 16.0);
}

TEST(CostModel, TimeForDispatch) {
  const CostModel m;
  EXPECT_DOUBLE_EQ(m.time_for(CollectiveKind::kAllReduce, 4, 1000, 0),
                   m.allreduce_time(4, 1000));
  EXPECT_DOUBLE_EQ(m.time_for(CollectiveKind::kAllGatherV, 4, 1000, 250),
                   m.allgatherv_time(4, 1000, 250));
  EXPECT_DOUBLE_EQ(m.time_for(CollectiveKind::kBarrier, 4, 0, 0),
                   m.barrier_time(4));
}

TEST(CostModel, KindNames) {
  EXPECT_STREQ(to_string(CollectiveKind::kAllReduce), "allreduce");
  EXPECT_STREQ(to_string(CollectiveKind::kAllGatherV), "allgatherv");
  EXPECT_STREQ(to_string(CollectiveKind::kBarrier), "barrier");
}

TEST(CommStats, RecordAndTotals) {
  CommStats stats;
  stats.record(CollectiveKind::kAllReduce, 100, 0.5);
  stats.record(CollectiveKind::kAllReduce, 200, 0.5);
  stats.record(CollectiveKind::kAllGatherV, 50, 0.25);
  EXPECT_EQ(stats.of(CollectiveKind::kAllReduce).calls, 2u);
  EXPECT_EQ(stats.of(CollectiveKind::kAllReduce).bytes, 300u);
  EXPECT_EQ(stats.total_bytes(), 350u);
  EXPECT_EQ(stats.total_calls(), 3u);
  EXPECT_DOUBLE_EQ(stats.total_modeled_seconds(), 1.25);
}

TEST(CommStats, MergeAndReset) {
  CommStats a, b;
  a.record(CollectiveKind::kBroadcast, 10, 0.1);
  b.record(CollectiveKind::kBroadcast, 20, 0.2);
  a.merge(b);
  EXPECT_EQ(a.of(CollectiveKind::kBroadcast).bytes, 30u);
  EXPECT_EQ(a.of(CollectiveKind::kBroadcast).calls, 2u);
  a.reset();
  EXPECT_EQ(a.total_bytes(), 0u);
}

TEST(CostModel, EthernetSlowerThanAries) {
  const CostModel aries{CostModelParams::aries()};
  const CostModel eth{CostModelParams::ethernet()};
  EXPECT_GT(eth.allreduce_time(8, 1 << 20), aries.allreduce_time(8, 1 << 20));
}

}  // namespace
}  // namespace dynkge::comm
