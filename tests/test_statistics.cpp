#include "kge/statistics.hpp"

#include <gtest/gtest.h>

#include "kge/synthetic.hpp"

namespace dynkge::kge {
namespace {

TEST(Statistics, CountsBasics) {
  const Dataset ds(6, 2, {{0, 0, 1}, {1, 0, 2}, {2, 1, 3}}, {{3, 0, 4}},
                   {{4, 1, 5}});
  const DatasetStats stats = compute_statistics(ds);
  EXPECT_EQ(stats.train_triples, 3u);
  EXPECT_EQ(stats.valid_triples, 1u);
  EXPECT_EQ(stats.test_triples, 1u);
  // Entities 0..3 appear in train (4 used); relations 0 and 1 both used.
  EXPECT_EQ(stats.entities_used, 4u);
  EXPECT_EQ(stats.relations_used, 2u);
}

TEST(Statistics, DegreeComputation) {
  // Entity 1 appears in 2 train triples (degree 2), others once.
  const Dataset ds(4, 1, {{0, 0, 1}, {1, 0, 2}}, {}, {});
  const DatasetStats stats = compute_statistics(ds);
  EXPECT_EQ(stats.max_entity_degree, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_entity_degree, 4.0 / 3.0);
}

TEST(Statistics, CardinalityOneToOne) {
  // Each head maps to exactly one tail and vice versa.
  const Dataset ds(8, 1, {{0, 0, 1}, {2, 0, 3}, {4, 0, 5}}, {}, {});
  const DatasetStats stats = compute_statistics(ds);
  EXPECT_EQ(stats.cardinality_counts[static_cast<int>(
                RelationCardinality::kOneToOne)],
            1u);
}

TEST(Statistics, CardinalityOneToMany) {
  // One head, four tails: tails-per-head 4, heads-per-tail 1.
  const Dataset ds(8, 1, {{0, 0, 1}, {0, 0, 2}, {0, 0, 3}, {0, 0, 4}}, {},
                   {});
  const DatasetStats stats = compute_statistics(ds);
  EXPECT_EQ(stats.cardinality_counts[static_cast<int>(
                RelationCardinality::kOneToMany)],
            1u);
}

TEST(Statistics, CardinalityManyToOne) {
  const Dataset ds(8, 1, {{1, 0, 0}, {2, 0, 0}, {3, 0, 0}, {4, 0, 0}}, {},
                   {});
  const DatasetStats stats = compute_statistics(ds);
  EXPECT_EQ(stats.cardinality_counts[static_cast<int>(
                RelationCardinality::kManyToOne)],
            1u);
}

TEST(Statistics, CardinalityManyToMany) {
  const Dataset ds(6, 1,
                   {{0, 0, 2}, {0, 0, 3}, {1, 0, 2}, {1, 0, 3},
                    {0, 0, 4}, {1, 0, 4}},
                   {}, {});
  const DatasetStats stats = compute_statistics(ds);
  EXPECT_EQ(stats.cardinality_counts[static_cast<int>(
                RelationCardinality::kManyToMany)],
            1u);
}

TEST(Statistics, GiniZeroForUniform) {
  // Two relations with identical counts.
  const Dataset ds(8, 2, {{0, 0, 1}, {2, 0, 3}, {4, 1, 5}, {6, 1, 7}}, {},
                   {});
  const DatasetStats stats = compute_statistics(ds);
  EXPECT_NEAR(stats.relation_gini, 0.0, 1e-12);
}

TEST(Statistics, GiniHighForSkewed) {
  TripleList train;
  // Relation 0: 50 triples; relations 1..4: one each.
  for (int i = 0; i < 50; ++i) {
    train.push_back({static_cast<EntityId>(i % 10), 0,
                     static_cast<EntityId>((i + 1) % 10)});
  }
  for (RelationId r = 1; r < 5; ++r) train.push_back({0, r, 1});
  const Dataset ds(10, 5, std::move(train), {}, {});
  const DatasetStats stats = compute_statistics(ds);
  EXPECT_GT(stats.relation_gini, 0.5);
}

TEST(Statistics, SyntheticGraphsAreSkewed) {
  // The generator must reproduce the skew structure the strategies rely on.
  SyntheticSpec spec;
  spec.num_entities = 500;
  spec.num_relations = 50;
  spec.num_triples = 8000;
  spec.num_latent_types = 8;
  spec.seed = 3;
  const DatasetStats stats = compute_statistics(generate_synthetic(spec));
  EXPECT_GT(stats.relation_gini, 0.3);
  EXPECT_GT(stats.entity_gini, 0.2);
  EXPECT_GT(stats.max_relation_count, 10 * stats.mean_relation_count / 2);
}

TEST(Statistics, EmptyTrainSplit) {
  const Dataset ds(4, 2, {}, {{0, 0, 1}}, {{1, 1, 2}});
  const DatasetStats stats = compute_statistics(ds);
  EXPECT_EQ(stats.train_triples, 0u);
  EXPECT_EQ(stats.entities_used, 0u);
  EXPECT_EQ(stats.relations_used, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_entity_degree, 0.0);
  EXPECT_DOUBLE_EQ(stats.relation_gini, 0.0);
}

TEST(Statistics, SelfLoopCountsDegreeTwice) {
  const Dataset ds(3, 1, {{1, 0, 1}}, {}, {});
  const DatasetStats stats = compute_statistics(ds);
  EXPECT_EQ(stats.max_entity_degree, 2u);
  EXPECT_EQ(stats.entities_used, 1u);
}

TEST(Statistics, UnusedVocabularyNotCounted) {
  // 100 entities declared, only 3 used.
  const Dataset ds(100, 10, {{0, 0, 1}, {1, 0, 2}}, {}, {});
  const DatasetStats stats = compute_statistics(ds);
  EXPECT_EQ(stats.entities_used, 3u);
  EXPECT_EQ(stats.relations_used, 1u);
}

TEST(Statistics, SummaryMentionsKeyNumbers) {
  const Dataset ds(4, 1, {{0, 0, 1}}, {}, {});
  const std::string text = compute_statistics(ds).summary();
  EXPECT_NE(text.find("1 train"), std::string::npos);
  EXPECT_NE(text.find("relation cardinality"), std::string::npos);
}

TEST(Statistics, CardinalityNames) {
  EXPECT_STREQ(to_string(RelationCardinality::kOneToOne), "1-1");
  EXPECT_STREQ(to_string(RelationCardinality::kOneToMany), "1-N");
  EXPECT_STREQ(to_string(RelationCardinality::kManyToOne), "N-1");
  EXPECT_STREQ(to_string(RelationCardinality::kManyToMany), "N-N");
}

}  // namespace
}  // namespace dynkge::kge
