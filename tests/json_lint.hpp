// Thin alias: the JSON parser the tests originally carried now lives in
// src/util/json.hpp so runtime code (`dynkge analyze`) can use it too.
// Kept so existing tests keep including "json_lint.hpp" unchanged.
#pragma once

#include "util/json.hpp"

namespace dynkge::testing {

using dynkge::util::JsonParser;
using dynkge::util::JsonValue;
using dynkge::util::parse_json;

}  // namespace dynkge::testing
