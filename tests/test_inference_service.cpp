#include "serve/service.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "kge/model_factory.hpp"
#include "kge/serialize.hpp"

namespace dynkge::serve {
namespace {

using kge::Dataset;
using kge::EntityId;
using kge::RelationId;
using kge::Triple;

constexpr std::int32_t kEntities = 40;
constexpr std::int32_t kRelations = 3;

Dataset make_dataset() {
  util::Rng rng(23);
  const auto triple = [&] {
    return Triple{static_cast<EntityId>(rng.next_below(kEntities)),
                  static_cast<RelationId>(rng.next_below(kRelations)),
                  static_cast<EntityId>(rng.next_below(kEntities))};
  };
  kge::TripleList train, valid, test;
  for (int i = 0; i < 80; ++i) train.push_back(triple());
  for (int i = 0; i < 10; ++i) valid.push_back(triple());
  for (int i = 0; i < 10; ++i) test.push_back(triple());
  return Dataset(kEntities, kRelations, train, valid, test);
}

std::unique_ptr<kge::KgeModel> make_initialized(const std::string& name) {
  auto model = kge::make_model(name, kEntities, kRelations, 4);
  util::Rng rng(31);
  model->init(rng);
  return model;
}

class InferenceServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dynkge_serve_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(InferenceServiceTest, AnswersMatchDirectScorer) {
  const auto model = make_initialized("complex");
  const Dataset dataset = make_dataset();
  const TopKScorer reference(&dataset);
  InferenceService service(*model, &dataset);

  const TopKQuery q{Direction::kTail, 2, 1, 5, false};
  const auto served = service.topk(q);
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(*served, reference.topk(q, *model));
}

TEST_F(InferenceServiceTest, CacheHitReturnsSameResultObject) {
  const auto model = make_initialized("complex");
  InferenceService service(*model, nullptr);
  const TopKQuery q{Direction::kTail, 1, 0, 8, false};
  const auto first = service.topk(q);
  const auto second = service.topk(q);
  EXPECT_EQ(first.get(), second.get());  // shared, not recomputed

  const auto snapshot = service.snapshot();
  EXPECT_EQ(snapshot.queries, 2u);
  EXPECT_EQ(snapshot.cache.hits, 1u);
  EXPECT_EQ(snapshot.cache.misses, 1u);
}

TEST_F(InferenceServiceTest, SwapInvalidatesCacheAndBumpsVersion) {
  const auto model = make_initialized("complex");
  InferenceService service(*model, nullptr);
  EXPECT_EQ(service.current_version(), 1u);
  const TopKQuery q{Direction::kTail, 1, 0, 8, false};
  const auto first = service.topk(q);
  // Swapping in a byte-identical clone must clear the cache (a swap
  // promises nothing about what changed) and advance the version...
  EXPECT_EQ(service.swap_model(kge::clone_model(*model)), 2u);
  EXPECT_EQ(service.current_version(), 2u);
  const auto second = service.topk(q);
  EXPECT_NE(first.get(), second.get());  // recomputed, not cached
  EXPECT_EQ(*first, *second);            // same weights -> same answer
  const auto snapshot = service.snapshot();
  EXPECT_EQ(snapshot.cache.invalidations, 1u);
  EXPECT_EQ(snapshot.cache.invalidated_entries, 1u);
}

TEST_F(InferenceServiceTest, ReloadCheckpointSwapsServedWeights) {
  const auto a = make_initialized("complex");
  auto b = make_initialized("complex");
  {
    // Perturb one embedding row so the two checkpoints rank differently.
    util::Rng rng(99);
    b->init(rng);
  }
  const std::string file_b = path("b.dkge");
  kge::save_model(*b, file_b);

  InferenceService service(kge::clone_model(*a), nullptr);
  const TopKQuery q{Direction::kTail, 3, 1, 8, false};
  const TopKScorer reference;
  ASSERT_NE(service.topk(q), nullptr);
  EXPECT_EQ(*service.topk(q), reference.topk(q, *a));

  EXPECT_EQ(service.reload_checkpoint(file_b), 2u);
  const auto after = service.topk(q);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(*after, reference.topk(q, *b));
}

TEST_F(InferenceServiceTest, AdmissionShedsBeyondInflightLimit) {
  const auto model = make_initialized("complex");
  ServiceConfig config;
  config.max_inflight = 1;
  InferenceService service(*model, nullptr, config);
  // Saturate the admission window from the outside, then observe a shed.
  ASSERT_TRUE(service.admission().try_enter_read(1));
  EXPECT_EQ(service.topk({Direction::kTail, 1, 0, 4, false}), nullptr);
  service.admission().exit_read(1);
  EXPECT_NE(service.topk({Direction::kTail, 1, 0, 4, false}), nullptr);
  const auto snapshot = service.snapshot();
  EXPECT_EQ(snapshot.shed, 1u);
  EXPECT_EQ(snapshot.queries, 1u);
}

TEST_F(InferenceServiceTest, BatchMatchesSingleQueries) {
  const auto model = make_initialized("complex");
  const Dataset dataset = make_dataset();
  const TopKScorer reference(&dataset);
  InferenceService service(*model, &dataset);

  std::vector<TopKQuery> batch;
  for (EntityId e = 0; e < 12; ++e) {
    batch.push_back({e % 2 == 0 ? Direction::kTail : Direction::kHead, e,
                     static_cast<RelationId>(e % kRelations), 6, e % 3 == 0});
  }
  // Duplicates inside the batch must be deduplicated, not recomputed.
  batch.push_back(batch[0]);
  batch.push_back(batch[3]);

  const auto results = service.topk_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_NE(results[i], nullptr) << i;
    EXPECT_EQ(*results[i], reference.topk(batch[i], *model)) << i;
  }
  EXPECT_EQ(results[0].get(), results[batch.size() - 2].get());
  EXPECT_EQ(results[3].get(), results[batch.size() - 1].get());
  EXPECT_EQ(service.snapshot().queries, batch.size());
}

TEST_F(InferenceServiceTest, ConcurrentClientsGetConsistentAnswers) {
  const auto model = make_initialized("complex");
  InferenceService service(*model, nullptr, ServiceConfig{2, 64, 4, 16});
  const TopKScorer reference;

  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&service, &reference, &model, c] {
      for (int i = 0; i < 25; ++i) {
        const TopKQuery q{Direction::kTail,
                          static_cast<EntityId>((c * 25 + i) % kEntities),
                          static_cast<RelationId>(i % kRelations), 5, false};
        const auto result = service.topk(q);
        if (result == nullptr) {
          ADD_FAILURE() << "null result";
          continue;
        }
        EXPECT_EQ(*result, reference.topk(q, *model));
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(service.snapshot().queries, 100u);
}

TEST_F(InferenceServiceTest, SnapshotTracksLatencyAndSummary) {
  const auto model = make_initialized("complex");
  InferenceService service(*model, nullptr);
  for (int i = 0; i < 20; ++i) {
    service.topk({Direction::kTail, static_cast<EntityId>(i % kEntities),
                  0, 4, false});
  }
  const auto snapshot = service.snapshot();
  EXPECT_EQ(snapshot.queries, 20u);
  EXPECT_GT(snapshot.mean_latency_seconds, 0.0);
  EXPECT_GE(snapshot.p99_seconds, snapshot.p50_seconds);
  EXPECT_NE(snapshot.summary().find("p95"), std::string::npos);

  service.reset_metrics();
  EXPECT_EQ(service.snapshot().queries, 0u);
}

/// Checkpoint -> serve round trip for every model type the serializer
/// understands: results served from a loaded checkpoint must be identical
/// to scoring the in-memory model that produced it.
TEST_F(InferenceServiceTest, CheckpointRoundTripServesIdenticalTopK) {
  const Dataset dataset = make_dataset();
  for (const char* name : {"complex", "distmult", "transe", "rotate"}) {
    const auto model = make_initialized(name);
    const std::string file = path(std::string(name) + ".dkge");
    kge::save_model(*model, file);

    const auto service =
        InferenceService::from_checkpoint(file, &dataset);
    ASSERT_NE(service, nullptr) << name;
    const TopKScorer reference(&dataset);
    for (const auto direction : {Direction::kTail, Direction::kHead}) {
      for (EntityId e = 0; e < 6; ++e) {
        const TopKQuery q{direction, e,
                          static_cast<RelationId>(e % kRelations), 7,
                          e % 2 == 0};
        const auto served = service->topk(q);
        ASSERT_NE(served, nullptr) << name;
        EXPECT_EQ(*served, reference.topk(q, *model)) << name;
      }
    }
  }
}

TEST_F(InferenceServiceTest, FromCheckpointMissingFileThrows) {
  EXPECT_THROW(InferenceService::from_checkpoint(path("absent.dkge")),
               std::runtime_error);
}

}  // namespace
}  // namespace dynkge::serve
