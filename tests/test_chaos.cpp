// Chaos soak: composed fault storms over multi-epoch elastic training.
// The end-to-end robustness contracts under test:
//
//  * zero silent corruption — every bit-flipped publish is caught by the
//    wire checksums (corrupted_payloads == corruptions_detected, always);
//  * recoverable faults preserve determinism — a run through corruption,
//    transients, and stragglers ends byte-identical to a fault-free run
//    wherever the contract promises it (recovered faults charge nothing);
//  * armed checksums are free — an empty-schedule injector (the CLI's
//    --wire-checksums) changes nothing about the results;
//  * hangs degrade, not deadlock — the deadline watchdog turns a hung
//    collective into a rank failure that elastic shrink-world absorbs;
//  * a failing disk degrades, not kills — --checkpoint-on-error skip
//    finishes training and --resume picks the prior good snapshot.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "core/trainer.hpp"
#include "kge/synthetic.hpp"

namespace dynkge::core {
namespace {

const kge::Dataset& chaos_dataset() {
  static const kge::Dataset dataset = kge::generate_synthetic([] {
    kge::SyntheticSpec spec;
    spec.num_entities = 300;
    spec.num_relations = 24;
    spec.num_triples = 4000;
    spec.num_latent_types = 6;
    spec.seed = 99;
    return spec;
  }());
  return dataset;
}

TrainConfig fast_config(int num_nodes) {
  TrainConfig config;
  config.embedding_rank = 8;
  config.num_nodes = num_nodes;
  config.batch_size = 200;
  config.max_epochs = 4;
  config.lr.base_lr = 0.01;
  config.lr.tolerance = 6;
  config.compute_final_metrics = false;
  config.seed = 4242;
  return config;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "dynkge_chaos_" +
                          std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

bool same_floats(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void expect_same_model(const TrainReport& a, const TrainReport& b,
                       const char* label) {
  ASSERT_NE(a.model, nullptr) << label;
  ASSERT_NE(b.model, nullptr) << label;
  EXPECT_TRUE(same_floats(a.model->entities().flat(),
                          b.model->entities().flat()))
      << label << ": entity embeddings differ";
  EXPECT_TRUE(same_floats(a.model->relations().flat(),
                          b.model->relations().flat()))
      << label << ": relation embeddings differ";
}

/// The deterministic half of the timing contract. total_sim_seconds mixes
/// *measured* per-thread CPU time into the simulated clock, so it is never
/// equal across two runs; what the integrity layer promises is that the
/// *modeled* communication seconds — the input to every DRS decision — and
/// the transport decisions themselves are untouched.
void expect_same_modeled_timeline(const TrainReport& a, const TrainReport& b,
                                  const char* label) {
  ASSERT_EQ(a.epoch_log.size(), b.epoch_log.size()) << label;
  for (std::size_t i = 0; i < a.epoch_log.size(); ++i) {
    EXPECT_EQ(a.epoch_log[i].comm_seconds, b.epoch_log[i].comm_seconds)
        << label << ": modeled comm time diverged at epoch " << i;
    EXPECT_EQ(a.epoch_log[i].used_allgather, b.epoch_log[i].used_allgather)
        << label << ": DRS transport decision flipped at epoch " << i;
  }
}

comm::FaultEvent event(comm::FaultKind kind, int rank, int epoch,
                       int failures = 1, double delay = 0.1) {
  comm::FaultEvent e;
  e.kind = kind;
  e.rank = rank;
  e.epoch = epoch;
  e.failures = failures;
  e.delay_seconds = delay;
  return e;
}

/// Machine-checked invariant of the whole suite: nothing slips past the
/// checksums, and the books balance.
void expect_zero_silent_corruption(const comm::FaultInjector& injector) {
  const comm::FaultCounters c = injector.counters();
  EXPECT_EQ(c.corrupted_payloads, c.corruptions_detected)
      << "silent corruption: " << c.corrupted_payloads
      << " payloads corrupted but only " << c.corruptions_detected
      << " detected";
}

TEST(ChaosSoak, ArmedChecksumsAloneChangeNothing) {
  TrainConfig config = fast_config(4);
  config.strategy = StrategyConfig::drs(2);
  const TrainReport plain = DistributedTrainer(chaos_dataset(), config).train();

  comm::FaultInjector checksums(std::vector<comm::FaultEvent>{});
  config.fault_injector = &checksums;
  const TrainReport armed = DistributedTrainer(chaos_dataset(), config).train();

  expect_same_model(plain, armed, "wire-checksums");
  expect_same_modeled_timeline(plain, armed, "wire-checksums");
  expect_zero_silent_corruption(checksums);
}

TEST(ChaosSoak, RecoverableFaultStormIsByteIdenticalToCleanRun) {
  TrainConfig config = fast_config(4);
  config.strategy = StrategyConfig::drs(2);
  const TrainReport clean = DistributedTrainer(chaos_dataset(), config).train();

  // Corruption + transients + sub-deadline stragglers across epochs and
  // ranks: all recoverable, so the contract promises byte-identity (the
  // straggler moves the simulated clock identically to a clean run with
  // the same schedule — but DRS decisions are epoch-scoped, and a 1e-6 s
  // stall is far below any decision threshold on this workload).
  comm::FaultInjector storm(
      {event(comm::FaultKind::kCorrupt, 0, /*epoch=*/1, /*failures=*/2),
       event(comm::FaultKind::kCorrupt, 3, /*epoch=*/2, /*failures=*/1),
       event(comm::FaultKind::kTransient, 1, /*epoch=*/1, /*failures=*/2),
       event(comm::FaultKind::kTransient, 2, /*epoch=*/3, /*failures=*/1)},
      comm::RetryPolicy{},
      /*collective_deadline=*/10.0);
  config.fault_injector = &storm;
  const TrainReport stormy =
      DistributedTrainer(chaos_dataset(), config).train();

  expect_same_model(clean, stormy, "fault storm");
  expect_same_modeled_timeline(clean, stormy, "fault storm");
  const comm::FaultCounters c = storm.counters();
  EXPECT_EQ(c.corrupted_payloads, 3u);
  EXPECT_EQ(c.transients, 2u);
  EXPECT_EQ(c.watchdog_trips, 0u);
  expect_zero_silent_corruption(storm);
}

TEST(ChaosSoak, HangUnderDeadlineIsAbsorbedByElasticRecovery) {
  TrainConfig config = fast_config(4);
  config.strategy = StrategyConfig::drs(2);
  config.elastic.enabled = true;
  config.elastic.max_rank_failures = 2;

  // A hang in epoch 1 and a straggler stalled past the deadline in epoch
  // 2: both become deterministic rank failures; the world shrinks twice.
  comm::FaultInjector chaos(
      {event(comm::FaultKind::kHang, 2, /*epoch=*/1),
       event(comm::FaultKind::kStraggler, 0, /*epoch=*/2, /*failures=*/1,
             /*delay=*/50.0)},
      comm::RetryPolicy{},
      /*collective_deadline=*/5.0);
  config.fault_injector = &chaos;
  const TrainReport report =
      DistributedTrainer(chaos_dataset(), config).train();

  EXPECT_EQ(report.recoveries, 2);
  EXPECT_EQ(report.num_nodes, 2);
  EXPECT_EQ(chaos.counters().watchdog_trips, 2u);
  expect_zero_silent_corruption(chaos);
  ASSERT_NE(report.model, nullptr);
}

TEST(ChaosSoak, ComposedStormWithElasticCheckpointsAndDiskFaults) {
  // The full soak: corruption, a transient, a hang (fatal -> shrink), and
  // a disk fault under --checkpoint-on-error skip, in one 4-rank run.
  TrainConfig config = fast_config(4);
  config.strategy = StrategyConfig::drs(2);
  config.elastic.enabled = true;
  config.elastic.max_rank_failures = 1;
  config.checkpoint.dir = fresh_dir("soak");
  config.checkpoint.on_error = "skip";
  config.checkpoint.keep = 3;
  config.checkpoint.test_disk_fault_at_epoch = 2;
  config.checkpoint.test_disk_fault_attempts = 1;

  comm::FaultInjector storm(
      {event(comm::FaultKind::kCorrupt, 1, /*epoch=*/0, /*failures=*/1),
       event(comm::FaultKind::kTransient, 2, /*epoch=*/1, /*failures=*/1),
       event(comm::FaultKind::kHang, 3, /*epoch=*/2)},
      comm::RetryPolicy{},
      /*collective_deadline=*/5.0);
  config.fault_injector = &storm;
  const TrainReport report =
      DistributedTrainer(chaos_dataset(), config).train();

  EXPECT_EQ(report.recoveries, 1);
  EXPECT_EQ(report.num_nodes, 3);
  expect_zero_silent_corruption(storm);
  const comm::FaultCounters c = storm.counters();
  EXPECT_GE(c.corrupted_payloads, 1u);
  EXPECT_EQ(c.watchdog_trips, 1u);

  // The run survived the disk fault and left a resumable directory.
  ASSERT_NE(report.model, nullptr);
  TrainConfig resumed_config = fast_config(3);
  resumed_config.strategy = StrategyConfig::drs(2);
  resumed_config.checkpoint.dir = config.checkpoint.dir;
  resumed_config.checkpoint.resume = true;
  const TrainReport resumed =
      DistributedTrainer(chaos_dataset(), resumed_config).train();
  EXPECT_EQ(resumed.start_epoch, 4);  // complete: nothing left to replay
  expect_same_model(report, resumed, "resume after soak");
  std::filesystem::remove_all(config.checkpoint.dir);
}

TEST(ChaosSoak, DiskFaultUnderSkipFinishesAndResumesFromPriorGood) {
  TrainConfig config = fast_config(2);
  config.strategy = StrategyConfig::drs(2);
  const TrainReport reference =
      DistributedTrainer(chaos_dataset(), config).train();

  // Fail the final epoch's snapshot write; skip keeps training alive and
  // the epoch-2 snapshot stays the resume point.
  config.checkpoint.dir = fresh_dir("disk");
  config.checkpoint.on_error = "skip";
  config.checkpoint.test_disk_fault_at_epoch = 3;
  const TrainReport degraded =
      DistributedTrainer(chaos_dataset(), config).train();
  expect_same_model(reference, degraded, "skip policy");
  EXPECT_EQ(degraded.checkpoints_written, 3);  // epoch 3's write failed

  // Resume replays epoch 3 from the prior good snapshot and converges to
  // the same final embeddings.
  TrainConfig resumed_config = config;
  resumed_config.fault_injector = nullptr;
  resumed_config.checkpoint.resume = true;
  resumed_config.checkpoint.test_disk_fault_at_epoch = -1;
  const TrainReport resumed =
      DistributedTrainer(chaos_dataset(), resumed_config).train();
  EXPECT_EQ(resumed.start_epoch, 3);
  expect_same_model(reference, resumed, "resume after disk fault");
  std::filesystem::remove_all(config.checkpoint.dir);
}

TEST(ChaosSoak, RetryPolicyOutlastsTransientDiskFault) {
  TrainConfig config = fast_config(2);
  config.strategy = StrategyConfig::drs(2);
  config.checkpoint.dir = fresh_dir("retry");
  config.checkpoint.on_error = "retry";
  config.checkpoint.test_disk_fault_at_epoch = 1;
  config.checkpoint.test_disk_fault_attempts = 2;  // < fault_retry_limit

  const TrainReport report =
      DistributedTrainer(chaos_dataset(), config).train();
  // Every epoch's snapshot landed despite two failed attempts.
  EXPECT_EQ(report.checkpoints_written, 4);
  std::filesystem::remove_all(config.checkpoint.dir);
}

}  // namespace
}  // namespace dynkge::core
