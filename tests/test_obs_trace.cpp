// TraceWriter/TraceSpan: event recording, disabled no-op, JSON
// well-formedness, and proper nesting of the spans a real training run
// emits on every rank's track.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "json_lint.hpp"
#include "kge/synthetic.hpp"

namespace dynkge::obs {
namespace {

using dynkge::testing::JsonValue;
using dynkge::testing::parse_json;

TEST(TraceSpan, NullWriterIsANoOp) {
  // The disabled path must be safe to leave on every hot path.
  for (int i = 0; i < 1000; ++i) {
    const TraceSpan span(nullptr, "noop", 0);
  }
  SUCCEED();
}

TEST(TraceSpan, RecordsOneCompleteEventPerScope) {
  TraceWriter writer;
  {
    const TraceSpan outer(&writer, "outer", 3);
    const TraceSpan inner(&writer, "inner", 3);
  }
  EXPECT_EQ(writer.size(), 2u);

  const auto root = parse_json(writer.to_json());
  const auto& events = root.at("traceEvents").array;
  ASSERT_EQ(events.size(), 2u);
  // Spans close in reverse scope order: inner lands first.
  EXPECT_EQ(events[0].at("name").string, "inner");
  EXPECT_EQ(events[1].at("name").string, "outer");
  for (const auto& event : events) {
    EXPECT_EQ(event.at("ph").string, "X");
    EXPECT_EQ(event.at("pid").number, 0.0);
    EXPECT_EQ(event.at("tid").number, 3.0);
    EXPECT_GE(event.at("ts").number, 0.0);
    EXPECT_GE(event.at("dur").number, 0.0);
  }
  // inner nests inside outer.
  const auto& inner = events[0];
  const auto& outer = events[1];
  EXPECT_GE(inner.at("ts").number, outer.at("ts").number);
  EXPECT_LE(inner.at("ts").number + inner.at("dur").number,
            outer.at("ts").number + outer.at("dur").number);
}

TEST(TraceWriter, ThreadNamesBecomeMetadataEvents) {
  TraceWriter writer;
  writer.set_thread_name(0, "rank 0");
  writer.set_thread_name(7, "host");
  { const TraceSpan span(&writer, "work", 0); }

  const auto root = parse_json(writer.to_json());
  std::map<double, std::string> names;
  for (const auto& event : root.at("traceEvents").array) {
    if (event.at("ph").string == "M") {
      EXPECT_EQ(event.at("name").string, "thread_name");
      names[event.at("tid").number] = event.at("args").at("name").string;
    }
  }
  EXPECT_EQ(names[0], "rank 0");
  EXPECT_EQ(names[7], "host");
}

/// Check that the complete events on each track are properly nested: a
/// span either finishes before the next one starts or fully contains it.
/// Each tid is one sequential rank program reading one monotonic clock,
/// so RAII scoping guarantees this — a violation means broken span
/// plumbing (e.g. two ranks writing the same tid).
void expect_properly_nested(const std::vector<JsonValue>& events) {
  std::map<double, std::vector<const JsonValue*>> per_tid;
  for (const auto& event : events) {
    if (event.at("ph").string == "X") {
      per_tid[event.at("tid").number].push_back(&event);
    }
  }
  EXPECT_FALSE(per_tid.empty());
  for (auto& [tid, spans] : per_tid) {
    std::sort(spans.begin(), spans.end(),
              [](const JsonValue* a, const JsonValue* b) {
                if (a->at("ts").number != b->at("ts").number) {
                  return a->at("ts").number < b->at("ts").number;
                }
                return a->at("dur").number > b->at("dur").number;
              });
    std::vector<double> open_ends;  // stack of enclosing span end times
    for (const JsonValue* span : spans) {
      const double ts = span->at("ts").number;
      const double end = ts + span->at("dur").number;
      while (!open_ends.empty() && open_ends.back() <= ts) {
        open_ends.pop_back();
      }
      if (!open_ends.empty()) {
        EXPECT_LE(end, open_ends.back())
            << "span " << span->at("name").string << " on tid " << tid
            << " partially overlaps its predecessor";
      }
      open_ends.push_back(end);
    }
  }
}

TEST(TraceWriter, TrainingRunEmitsWellFormedNestedSpans) {
  const kge::Dataset dataset = kge::generate_synthetic([] {
    kge::SyntheticSpec spec;
    spec.num_entities = 200;
    spec.num_relations = 16;
    spec.num_triples = 2000;
    spec.num_latent_types = 4;
    spec.seed = 7;
    return spec;
  }());

  TraceWriter trace;
  core::TrainConfig config;
  config.embedding_rank = 8;
  config.num_nodes = 2;
  config.batch_size = 200;
  config.max_epochs = 3;
  config.compute_final_metrics = false;
  config.seed = 4242;
  // The full stack exercises every instrumented site: hard negatives,
  // selection, quantize encode/decode, both transports via the dynamic
  // probe, relation-partition setup, validation.
  config.strategy = core::StrategyConfig::drs_1bit_rp_ss(4, 1);
  config.strategy.dynamic_probe_interval = 2;
  config.telemetry.trace = &trace;
  const auto report = core::DistributedTrainer(dataset, config).train();
  ASSERT_EQ(report.epochs, 3);
  ASSERT_GT(trace.size(), 0u);

  const auto root = parse_json(trace.to_json());
  const auto& events = root.at("traceEvents").array;

  std::set<std::string> names;
  for (const auto& event : events) {
    if (event.at("ph").string == "X") {
      names.insert(event.at("name").string);
      // Only rank tracks (0, 1) and the host track (2) exist.
      EXPECT_GE(event.at("tid").number, 0.0);
      EXPECT_LE(event.at("tid").number, 2.0);
    }
  }
  for (const char* expected :
       {"epoch", "hard_negatives", "forward_backward", "grad_select",
        "adam_update", "validation", "quantize.encode", "quantize.decode",
        "relation_partition.setup"}) {
    EXPECT_TRUE(names.count(expected) == 1) << "missing span: " << expected;
  }
  // Epoch 2 is the all-gather probe, epochs 0-1 run all-reduce.
  EXPECT_EQ(names.count("exchange.allreduce"), 1u);
  EXPECT_EQ(names.count("exchange.allgather"), 1u);

  expect_properly_nested(events);
}

}  // namespace
}  // namespace dynkge::obs
