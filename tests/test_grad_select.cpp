#include "core/grad_select.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <unordered_map>
#include <vector>

namespace dynkge::core {
namespace {

/// Build a gradient with rows of controlled 2-norms.
kge::SparseGrad make_grad(const std::vector<float>& norms) {
  kge::SparseGrad grad(4);
  for (std::size_t i = 0; i < norms.size(); ++i) {
    auto row = grad.accumulate(static_cast<std::int32_t>(i));
    row[0] = norms[i];  // one non-zero component -> 2-norm == norms[i]
  }
  return grad;
}

TEST(GradSelect, NoneKeepsEverything) {
  auto grad = make_grad({1.0f, 2.0f, 3.0f});
  util::Rng rng(1);
  const auto stats = select_gradient_rows(grad, SelectionMode::kNone, rng);
  EXPECT_EQ(stats.rows_before, 3u);
  EXPECT_EQ(stats.rows_after, 3u);
  EXPECT_EQ(grad.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(stats.sparsity(), 0.0);
}

TEST(GradSelect, AverageThresholdDropsWeakRows) {
  // Norms 1, 1, 10 -> mean 4: only the 10-row survives.
  auto grad = make_grad({1.0f, 1.0f, 10.0f});
  util::Rng rng(1);
  const auto stats =
      select_gradient_rows(grad, SelectionMode::kAverageThreshold, rng);
  EXPECT_EQ(stats.rows_after, 1u);
  EXPECT_TRUE(grad.has(2));
  EXPECT_FALSE(grad.has(0));
  EXPECT_FALSE(grad.has(1));
}

TEST(GradSelect, AverageTenthIsMorePermissive) {
  // Mean 4, tenth-threshold 0.4: rows with norm 1 survive.
  auto grad = make_grad({1.0f, 1.0f, 10.0f});
  util::Rng rng(1);
  const auto stats =
      select_gradient_rows(grad, SelectionMode::kAverageTenth, rng);
  EXPECT_EQ(stats.rows_after, 3u);
}

TEST(GradSelect, BernoulliAlwaysKeepsAboveAverageRows) {
  // P(keep) = min(1, norm/mean) == 1 for rows at or above the mean.
  for (int seed = 0; seed < 20; ++seed) {
    auto grad = make_grad({1.0f, 1.0f, 10.0f});
    util::Rng rng(seed);
    select_gradient_rows(grad, SelectionMode::kBernoulli, rng);
    EXPECT_TRUE(grad.has(2)) << "seed " << seed;
  }
}

TEST(GradSelect, BernoulliKeepRateMatchesNormRatio) {
  // Row norm 1 with mean 2 -> keep probability 0.5.
  int kept = 0;
  constexpr int kTrials = 4000;
  util::Rng rng(42);
  for (int trial = 0; trial < kTrials; ++trial) {
    auto grad = make_grad({1.0f, 3.0f});  // mean 2
    select_gradient_rows(grad, SelectionMode::kBernoulli, rng);
    kept += grad.has(0);
    EXPECT_TRUE(grad.has(1));  // 3/2 > 1 -> always kept
  }
  EXPECT_NEAR(static_cast<double>(kept) / kTrials, 0.5, 0.05);
}

TEST(GradSelect, UniformNormsSurviveBernoulli) {
  // All rows at the mean: P(keep) = 1 for every row.
  auto grad = make_grad({2.0f, 2.0f, 2.0f, 2.0f});
  util::Rng rng(3);
  const auto stats =
      select_gradient_rows(grad, SelectionMode::kBernoulli, rng);
  EXPECT_EQ(stats.rows_after, 4u);
}

TEST(GradSelect, EmptyGradientIsNoop) {
  kge::SparseGrad grad(4);
  util::Rng rng(1);
  const auto stats =
      select_gradient_rows(grad, SelectionMode::kBernoulli, rng);
  EXPECT_EQ(stats.rows_before, 0u);
  EXPECT_EQ(stats.rows_after, 0u);
}

TEST(GradSelect, AllZeroRowsAreKept) {
  // Zero mean norm: selection cannot rank rows, so nothing is dropped.
  kge::SparseGrad grad(4);
  grad.accumulate(0);
  grad.accumulate(1);
  util::Rng rng(1);
  const auto stats =
      select_gradient_rows(grad, SelectionMode::kBernoulli, rng);
  EXPECT_EQ(stats.rows_after, 2u);
}

TEST(GradSelect, SparsityComputation) {
  SelectionStats stats;
  stats.rows_before = 10;
  stats.rows_after = 4;
  EXPECT_DOUBLE_EQ(stats.sparsity(), 0.6);
  stats.rows_before = 0;
  EXPECT_DOUBLE_EQ(stats.sparsity(), 0.0);
}

TEST(GradSelect, SurvivingValuesUntouched) {
  auto grad = make_grad({1.0f, 1.0f, 10.0f});
  util::Rng rng(1);
  select_gradient_rows(grad, SelectionMode::kAverageThreshold, rng);
  EXPECT_FLOAT_EQ(grad.row(2)[0], 10.0f);
}

TEST(GradSelector, WithoutResidualsMatchesFreeFunction) {
  auto a = make_grad({1.0f, 1.0f, 10.0f});
  auto b = make_grad({1.0f, 1.0f, 10.0f});
  util::Rng ra(5), rb(5);
  GradSelector selector(SelectionMode::kAverageThreshold, false);
  const auto sa = selector.apply(a, ra);
  const auto sb =
      select_gradient_rows(b, SelectionMode::kAverageThreshold, rb);
  EXPECT_EQ(sa.rows_after, sb.rows_after);
  EXPECT_EQ(a.sorted_ids(), b.sorted_ids());
  EXPECT_EQ(selector.pending_rows(), 0u);
}

TEST(GradSelector, ParksDroppedRowsAsResiduals) {
  GradSelector selector(SelectionMode::kAverageThreshold, true);
  auto grad = make_grad({1.0f, 1.0f, 10.0f});
  util::Rng rng(1);
  selector.apply(grad, rng);
  EXPECT_EQ(selector.pending_rows(), 2u);  // rows 0 and 1 dropped
  EXPECT_FALSE(grad.has(0));
}

TEST(GradSelector, ResidualRedeliveredOnNextAppearance) {
  GradSelector selector(SelectionMode::kAverageThreshold, true);
  util::Rng rng(1);
  // Step 1: row 0 (norm 1) dropped against row 2 (norm 10); parked.
  auto step1 = make_grad({1.0f, 0.0f, 10.0f});
  selector.apply(step1, rng);
  ASSERT_EQ(selector.pending_rows(), 2u);
  // Step 2: row 0 appears with a big gradient; with the parked residual
  // folded in, its norm is 9 + 1 = 10, so it survives with the residual
  // included — the Aji & Heafield guarantee.
  kge::SparseGrad step2(4);
  step2.accumulate(0)[0] = 9.0f;
  step2.accumulate(2)[0] = 10.0f;
  selector.apply(step2, rng);
  ASSERT_TRUE(step2.has(0));
  EXPECT_FLOAT_EQ(step2.row(0)[0], 10.0f);  // 9 current + 1 residual
  EXPECT_EQ(selector.pending_rows(), 1u);   // only row 1 still parked
}

TEST(GradSelector, AccumulatedDeliveryApproachesTruth) {
  // A persistently weak row under Bernoulli selection: with residuals the
  // delivered total tracks the true total; without, a fraction is lost.
  const auto delivered_total = [](bool residuals) {
    GradSelector selector(SelectionMode::kBernoulli, residuals);
    util::Rng rng(33);
    double delivered = 0.0;
    for (int step = 0; step < 400; ++step) {
      kge::SparseGrad grad(4);
      grad.accumulate(0)[0] = 0.1f;   // weak row: P(keep) ~ 0.1/mean
      grad.accumulate(1)[0] = 2.0f;   // strong row, always kept
      selector.apply(grad, rng);
      if (grad.has(0)) delivered += grad.row(0)[0];
    }
    return delivered;
  };
  const double with_residuals = delivered_total(true);
  const double without = delivered_total(false);
  const double truth = 400 * 0.1;
  EXPECT_NEAR(with_residuals, truth, truth * 0.15);
  EXPECT_LT(without, truth * 0.5);
}

TEST(GradSelect, DeterministicGivenSeed) {
  auto a = make_grad({0.5f, 1.0f, 1.5f, 2.0f, 2.5f, 3.0f});
  auto b = make_grad({0.5f, 1.0f, 1.5f, 2.0f, 2.5f, 3.0f});
  util::Rng ra(99), rb(99);
  select_gradient_rows(a, SelectionMode::kBernoulli, ra);
  select_gradient_rows(b, SelectionMode::kBernoulli, rb);
  EXPECT_EQ(a.sorted_ids(), b.sorted_ids());
}

// ---- Top-K ----------------------------------------------------------------

TEST(GradSelect, TopKKeepsExactlyKLargest) {
  auto grad = make_grad({0.5f, 3.0f, 1.0f, 2.0f, 0.1f});
  util::Rng rng(1);
  const auto stats =
      select_gradient_rows(grad, SelectionMode::kTopK, rng, /*topk_k=*/2);
  EXPECT_EQ(stats.rows_before, 5u);
  EXPECT_EQ(stats.rows_after, 2u);
  EXPECT_TRUE(grad.has(1));  // norm 3.0
  EXPECT_TRUE(grad.has(3));  // norm 2.0
  EXPECT_EQ(grad.num_rows(), 2u);
}

TEST(GradSelect, TopKTieBreaksTowardSmallerIds) {
  // Adversarial all-equal-norm rows: the ranking carries no information,
  // so the deterministic tie-break (smaller entity id wins) must decide.
  auto grad = make_grad({2.0f, 2.0f, 2.0f, 2.0f, 2.0f});
  util::Rng rng(7);
  select_gradient_rows(grad, SelectionMode::kTopK, rng, /*topk_k=*/3);
  EXPECT_EQ(grad.sorted_ids(), (std::vector<std::int32_t>{0, 1, 2}));
}

TEST(GradSelect, TopKKeepsAllWhenKExceedsRows) {
  auto grad = make_grad({1.0f, 2.0f});
  util::Rng rng(1);
  const auto stats =
      select_gradient_rows(grad, SelectionMode::kTopK, rng, /*topk_k=*/10);
  EXPECT_EQ(stats.rows_after, 2u);
}

TEST(GradSelect, TopKWorksOnAllZeroGradient) {
  // Unlike the mean-norm modes (which keep everything when the mean is
  // zero), Top-K still enforces its cardinality bound; ties resolve by id.
  kge::SparseGrad grad(4);
  for (std::int32_t id : {4, 1, 7}) grad.accumulate(id);
  util::Rng rng(1);
  const auto stats =
      select_gradient_rows(grad, SelectionMode::kTopK, rng, /*topk_k=*/2);
  EXPECT_EQ(stats.rows_after, 2u);
  EXPECT_EQ(grad.sorted_ids(), (std::vector<std::int32_t>{1, 4}));
}

TEST(GradSelect, TopKDeterministicAcrossRuns) {
  for (int trial = 0; trial < 10; ++trial) {
    util::Rng gen(1000 + trial);
    std::vector<float> norms(20);
    for (auto& n : norms) {
      n = static_cast<float>(gen.next_below(4));  // many ties
    }
    auto a = make_grad(norms);
    auto b = make_grad(norms);
    util::Rng ra(5), rb(99);  // Top-K must not consume randomness
    select_gradient_rows(a, SelectionMode::kTopK, ra, 7);
    select_gradient_rows(b, SelectionMode::kTopK, rb, 7);
    EXPECT_EQ(a.sorted_ids(), b.sorted_ids()) << "trial " << trial;
  }
}

// ---- residual conservation (property/fuzz) --------------------------------

/// Mirror of the selector's residual bookkeeping, reproducing the exact
/// float operations: folding a parked residual into a fresh row is
/// element-wise float addition, and a dropped row parks its folded value.
using ShadowResiduals =
    std::unordered_map<std::int32_t, std::vector<float>>;

/// Conservation invariant, checked exactly (no tolerance): after apply(),
/// every id delivers its folded value either through the gradient (kept)
/// or the residual map (dropped) — never both, never a third value.
void check_conservation(const kge::SparseGrad& grad,
                        const GradSelector& selector,
                        const ShadowResiduals& expected_folded) {
  for (const auto& [id, folded] : expected_folded) {
    const bool kept = grad.has(id);
    const auto it = selector.residuals().find(id);
    const bool parked = it != selector.residuals().end();
    ASSERT_NE(kept, parked) << "id " << id
                            << " must be delivered XOR parked";
    const auto actual =
        kept ? grad.row(id)
             : std::span<const float>(it->second.data(), it->second.size());
    ASSERT_EQ(actual.size(), folded.size());
    for (std::size_t i = 0; i < folded.size(); ++i) {
      // Exact: promoted to double, no rounding slack.
      ASSERT_EQ(static_cast<double>(actual[i]),
                static_cast<double>(folded[i]))
          << "id " << id << " lane " << i;
    }
  }
}

TEST(GradSelector, ResidualConservationFuzzAllModes) {
  constexpr std::int32_t kWidth = 6;
  constexpr std::int32_t kIds = 40;
  const SelectionMode modes[] = {SelectionMode::kBernoulli,
                                 SelectionMode::kTopK,
                                 SelectionMode::kAverageThreshold,
                                 SelectionMode::kAverageTenth};
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Rng gen(0xF022u + seed);
    const auto topk_k = static_cast<std::size_t>(1 + gen.next_below(8));
    GradSelector selector(SelectionMode::kTopK, /*residuals=*/true, topk_k);
    ShadowResiduals shadow;  // what we expect parked between steps
    util::Rng select_rng(0x5EEDu + seed);

    for (int step = 0; step < 60; ++step) {
      const SelectionMode mode = modes[gen.next_below(4)];
      kge::SparseGrad grad(kWidth);
      const std::size_t rows = 1 + gen.next_below(kIds);
      for (std::size_t r = 0; r < rows; ++r) {
        const auto id = static_cast<std::int32_t>(gen.next_below(kIds));
        auto row = grad.accumulate(id);
        for (auto& v : row) {
          // Mix of zero, tied, and random magnitudes (adversarial ties).
          const auto kind = gen.next_below(3);
          v = kind == 0 ? 0.0f
              : kind == 1
                  ? 1.0f
                  : static_cast<float>(gen.next_double(-2.0, 2.0));
        }
      }

      // Predict the folded values with the same float ops the selector
      // performs, then let it select.
      ShadowResiduals folded;
      for (const std::int32_t id : grad.sorted_ids()) {
        const auto row = grad.row(id);
        std::vector<float> value(row.begin(), row.end());
        const auto it = shadow.find(id);
        if (it != shadow.end()) {
          for (std::size_t i = 0; i < value.size(); ++i) {
            value[i] += it->second[i];
          }
        }
        folded.emplace(id, std::move(value));
      }

      selector.apply(grad, select_rng, mode);
      check_conservation(grad, selector, folded);

      // Roll the shadow forward: parked-and-untouched rows persist,
      // touched rows either delivered (gone) or re-parked (folded value).
      for (auto& [id, value] : folded) {
        if (grad.has(id)) {
          shadow.erase(id);
        } else {
          shadow[id] = value;
        }
      }
      ASSERT_EQ(selector.pending_rows(), shadow.size());
    }
  }
}

TEST(GradSelector, ModeSwitchSharesOneResidualMap) {
  // The dynamic Top-K arm switches selection per epoch on ONE selector;
  // mass parked by one mode must be redelivered by the next.
  GradSelector selector(SelectionMode::kTopK, /*residuals=*/true,
                        /*topk_k=*/1);
  util::Rng rng(3);
  auto step1 = make_grad({1.0f, 5.0f});
  selector.apply(step1, rng, SelectionMode::kTopK);
  ASSERT_FALSE(step1.has(0));  // parked under Top-K
  ASSERT_EQ(selector.pending_rows(), 1u);

  kge::SparseGrad step2(4);
  step2.accumulate(0)[0] = 1.0f;
  selector.apply(step2, rng, SelectionMode::kAverageThreshold);
  ASSERT_TRUE(step2.has(0));
  EXPECT_FLOAT_EQ(step2.row(0)[0], 2.0f);  // 1 fresh + 1 residual
  EXPECT_EQ(selector.pending_rows(), 0u);
}

TEST(GradSelector, TopKResidualsRotateStarvedRows) {
  // All-equal fresh gradients with k=1: error feedback grows the parked
  // rows' norms until each one wins in turn — no row is starved forever.
  GradSelector selector(SelectionMode::kTopK, /*residuals=*/true,
                        /*topk_k=*/1);
  util::Rng rng(4);
  std::vector<bool> delivered(3, false);
  for (int step = 0; step < 6; ++step) {
    auto grad = make_grad({1.0f, 1.0f, 1.0f});
    selector.apply(grad, rng);
    for (std::int32_t id = 0; id < 3; ++id) {
      if (grad.has(id)) delivered[static_cast<std::size_t>(id)] = true;
    }
  }
  EXPECT_TRUE(delivered[0]);
  EXPECT_TRUE(delivered[1]);
  EXPECT_TRUE(delivered[2]);
}

}  // namespace
}  // namespace dynkge::core
