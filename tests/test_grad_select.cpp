#include "core/grad_select.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dynkge::core {
namespace {

/// Build a gradient with rows of controlled 2-norms.
kge::SparseGrad make_grad(const std::vector<float>& norms) {
  kge::SparseGrad grad(4);
  for (std::size_t i = 0; i < norms.size(); ++i) {
    auto row = grad.accumulate(static_cast<std::int32_t>(i));
    row[0] = norms[i];  // one non-zero component -> 2-norm == norms[i]
  }
  return grad;
}

TEST(GradSelect, NoneKeepsEverything) {
  auto grad = make_grad({1.0f, 2.0f, 3.0f});
  util::Rng rng(1);
  const auto stats = select_gradient_rows(grad, SelectionMode::kNone, rng);
  EXPECT_EQ(stats.rows_before, 3u);
  EXPECT_EQ(stats.rows_after, 3u);
  EXPECT_EQ(grad.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(stats.sparsity(), 0.0);
}

TEST(GradSelect, AverageThresholdDropsWeakRows) {
  // Norms 1, 1, 10 -> mean 4: only the 10-row survives.
  auto grad = make_grad({1.0f, 1.0f, 10.0f});
  util::Rng rng(1);
  const auto stats =
      select_gradient_rows(grad, SelectionMode::kAverageThreshold, rng);
  EXPECT_EQ(stats.rows_after, 1u);
  EXPECT_TRUE(grad.has(2));
  EXPECT_FALSE(grad.has(0));
  EXPECT_FALSE(grad.has(1));
}

TEST(GradSelect, AverageTenthIsMorePermissive) {
  // Mean 4, tenth-threshold 0.4: rows with norm 1 survive.
  auto grad = make_grad({1.0f, 1.0f, 10.0f});
  util::Rng rng(1);
  const auto stats =
      select_gradient_rows(grad, SelectionMode::kAverageTenth, rng);
  EXPECT_EQ(stats.rows_after, 3u);
}

TEST(GradSelect, BernoulliAlwaysKeepsAboveAverageRows) {
  // P(keep) = min(1, norm/mean) == 1 for rows at or above the mean.
  for (int seed = 0; seed < 20; ++seed) {
    auto grad = make_grad({1.0f, 1.0f, 10.0f});
    util::Rng rng(seed);
    select_gradient_rows(grad, SelectionMode::kBernoulli, rng);
    EXPECT_TRUE(grad.has(2)) << "seed " << seed;
  }
}

TEST(GradSelect, BernoulliKeepRateMatchesNormRatio) {
  // Row norm 1 with mean 2 -> keep probability 0.5.
  int kept = 0;
  constexpr int kTrials = 4000;
  util::Rng rng(42);
  for (int trial = 0; trial < kTrials; ++trial) {
    auto grad = make_grad({1.0f, 3.0f});  // mean 2
    select_gradient_rows(grad, SelectionMode::kBernoulli, rng);
    kept += grad.has(0);
    EXPECT_TRUE(grad.has(1));  // 3/2 > 1 -> always kept
  }
  EXPECT_NEAR(static_cast<double>(kept) / kTrials, 0.5, 0.05);
}

TEST(GradSelect, UniformNormsSurviveBernoulli) {
  // All rows at the mean: P(keep) = 1 for every row.
  auto grad = make_grad({2.0f, 2.0f, 2.0f, 2.0f});
  util::Rng rng(3);
  const auto stats =
      select_gradient_rows(grad, SelectionMode::kBernoulli, rng);
  EXPECT_EQ(stats.rows_after, 4u);
}

TEST(GradSelect, EmptyGradientIsNoop) {
  kge::SparseGrad grad(4);
  util::Rng rng(1);
  const auto stats =
      select_gradient_rows(grad, SelectionMode::kBernoulli, rng);
  EXPECT_EQ(stats.rows_before, 0u);
  EXPECT_EQ(stats.rows_after, 0u);
}

TEST(GradSelect, AllZeroRowsAreKept) {
  // Zero mean norm: selection cannot rank rows, so nothing is dropped.
  kge::SparseGrad grad(4);
  grad.accumulate(0);
  grad.accumulate(1);
  util::Rng rng(1);
  const auto stats =
      select_gradient_rows(grad, SelectionMode::kBernoulli, rng);
  EXPECT_EQ(stats.rows_after, 2u);
}

TEST(GradSelect, SparsityComputation) {
  SelectionStats stats;
  stats.rows_before = 10;
  stats.rows_after = 4;
  EXPECT_DOUBLE_EQ(stats.sparsity(), 0.6);
  stats.rows_before = 0;
  EXPECT_DOUBLE_EQ(stats.sparsity(), 0.0);
}

TEST(GradSelect, SurvivingValuesUntouched) {
  auto grad = make_grad({1.0f, 1.0f, 10.0f});
  util::Rng rng(1);
  select_gradient_rows(grad, SelectionMode::kAverageThreshold, rng);
  EXPECT_FLOAT_EQ(grad.row(2)[0], 10.0f);
}

TEST(GradSelector, WithoutResidualsMatchesFreeFunction) {
  auto a = make_grad({1.0f, 1.0f, 10.0f});
  auto b = make_grad({1.0f, 1.0f, 10.0f});
  util::Rng ra(5), rb(5);
  GradSelector selector(SelectionMode::kAverageThreshold, false);
  const auto sa = selector.apply(a, ra);
  const auto sb =
      select_gradient_rows(b, SelectionMode::kAverageThreshold, rb);
  EXPECT_EQ(sa.rows_after, sb.rows_after);
  EXPECT_EQ(a.sorted_ids(), b.sorted_ids());
  EXPECT_EQ(selector.pending_rows(), 0u);
}

TEST(GradSelector, ParksDroppedRowsAsResiduals) {
  GradSelector selector(SelectionMode::kAverageThreshold, true);
  auto grad = make_grad({1.0f, 1.0f, 10.0f});
  util::Rng rng(1);
  selector.apply(grad, rng);
  EXPECT_EQ(selector.pending_rows(), 2u);  // rows 0 and 1 dropped
  EXPECT_FALSE(grad.has(0));
}

TEST(GradSelector, ResidualRedeliveredOnNextAppearance) {
  GradSelector selector(SelectionMode::kAverageThreshold, true);
  util::Rng rng(1);
  // Step 1: row 0 (norm 1) dropped against row 2 (norm 10); parked.
  auto step1 = make_grad({1.0f, 0.0f, 10.0f});
  selector.apply(step1, rng);
  ASSERT_EQ(selector.pending_rows(), 2u);
  // Step 2: row 0 appears with a big gradient; with the parked residual
  // folded in, its norm is 9 + 1 = 10, so it survives with the residual
  // included — the Aji & Heafield guarantee.
  kge::SparseGrad step2(4);
  step2.accumulate(0)[0] = 9.0f;
  step2.accumulate(2)[0] = 10.0f;
  selector.apply(step2, rng);
  ASSERT_TRUE(step2.has(0));
  EXPECT_FLOAT_EQ(step2.row(0)[0], 10.0f);  // 9 current + 1 residual
  EXPECT_EQ(selector.pending_rows(), 1u);   // only row 1 still parked
}

TEST(GradSelector, AccumulatedDeliveryApproachesTruth) {
  // A persistently weak row under Bernoulli selection: with residuals the
  // delivered total tracks the true total; without, a fraction is lost.
  const auto delivered_total = [](bool residuals) {
    GradSelector selector(SelectionMode::kBernoulli, residuals);
    util::Rng rng(33);
    double delivered = 0.0;
    for (int step = 0; step < 400; ++step) {
      kge::SparseGrad grad(4);
      grad.accumulate(0)[0] = 0.1f;   // weak row: P(keep) ~ 0.1/mean
      grad.accumulate(1)[0] = 2.0f;   // strong row, always kept
      selector.apply(grad, rng);
      if (grad.has(0)) delivered += grad.row(0)[0];
    }
    return delivered;
  };
  const double with_residuals = delivered_total(true);
  const double without = delivered_total(false);
  const double truth = 400 * 0.1;
  EXPECT_NEAR(with_residuals, truth, truth * 0.15);
  EXPECT_LT(without, truth * 0.5);
}

TEST(GradSelect, DeterministicGivenSeed) {
  auto a = make_grad({0.5f, 1.0f, 1.5f, 2.0f, 2.5f, 3.0f});
  auto b = make_grad({0.5f, 1.0f, 1.5f, 2.0f, 2.5f, 3.0f});
  util::Rng ra(99), rb(99);
  select_gradient_rows(a, SelectionMode::kBernoulli, ra);
  select_gradient_rows(b, SelectionMode::kBernoulli, rb);
  EXPECT_EQ(a.sorted_ids(), b.sorted_ids());
}

}  // namespace
}  // namespace dynkge::core
