// End-to-end streaming serving: InferenceService on a SnapshotStore with
// a DeltaIngestor publishing incremental refreshes — zero-downtime swaps
// under concurrent read load, entity-keyed cache invalidation, admission
// shedding, and version pinning. The TSan CI job runs this file.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "kge/model_factory.hpp"
#include "serve/service.hpp"
#include "stream/delta_ingestor.hpp"

namespace dynkge::serve {
namespace {

using kge::EntityId;
using kge::RelationId;
using kge::Triple;

constexpr std::int32_t kEntities = 40;
constexpr std::int32_t kRelations = 3;

std::unique_ptr<kge::KgeModel> make_model(std::uint64_t seed = 31) {
  auto model = kge::make_model("complex", kEntities, kRelations, 4);
  util::Rng rng(seed);
  model->init(rng);
  return model;
}

TopKQuery query(EntityId entity, RelationId relation = 0,
                std::int32_t k = 5) {
  return TopKQuery{Direction::kTail, entity, relation, k, false};
}

stream::DeltaIngestor make_ingestor(InferenceService& service,
                                    std::size_t batch_size = 4) {
  stream::IngestConfig config;
  config.batch_size = batch_size;
  config.admission = &service.admission();
  return stream::DeltaIngestor(service.store(), config);
}

// The tentpole claim: no request fails while versions are hot-swapped at
// full speed. Readers hammer topk()/topk_batch() with no admission limit
// (so a null result can only mean a broken swap) while one thread streams
// deltas through the ingestor and another does full model swaps.
TEST(StreamService, ZeroFailedRequestsUnderContinuousChurn) {
  const auto base = make_model();
  InferenceService service(kge::clone_model(*base), nullptr);
  auto ingestor = make_ingestor(service);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> failed{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(t));
      std::vector<TopKQuery> batch(8);
      while (!done.load(std::memory_order_acquire)) {
        const auto q = query(
            static_cast<EntityId>(rng.next_below(kEntities)),
            static_cast<RelationId>(rng.next_below(kRelations)));
        if (service.topk(q) != nullptr) {
          answered.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        for (auto& b : batch) {
          b = query(static_cast<EntityId>(rng.next_below(kEntities)));
        }
        for (const auto& result : service.topk_batch(batch)) {
          if (result != nullptr) {
            answered.fetch_add(1, std::memory_order_relaxed);
          } else {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  std::thread updater([&] {
    util::Rng rng(7);
    for (int i = 0; i < 120; ++i) {
      ingestor.submit(
          {static_cast<EntityId>(rng.next_below(kEntities)),
           static_cast<RelationId>(rng.next_below(kRelations)),
           static_cast<EntityId>(rng.next_below(kEntities))});
    }
    ingestor.flush();
  });
  std::thread swapper([&] {
    for (int i = 0; i < 10; ++i) {
      service.swap_model(kge::clone_model(*base));
    }
  });
  updater.join();
  swapper.join();
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(failed.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
  // 120 deltas / batch 4 = 30 refreshes + 10 swaps, serialized publishes.
  EXPECT_EQ(service.current_version(), 41u);
  EXPECT_EQ(service.snapshot().shed, 0u);
}

// Entity-keyed invalidation end to end: a delta refresh drops exactly the
// cached results that depend on touched entities. The untouched control
// query is chosen *after* scoring so none of its result entities collide
// with the entities the delta touches.
TEST(StreamService, DeltaRefreshInvalidatesTouchedQueriesOnly) {
  InferenceService service(make_model(), nullptr);
  auto ingestor = make_ingestor(service, /*batch_size=*/16);

  const TopKQuery control = query(0, 0, 3);
  const auto control_result = service.topk(control);
  ASSERT_NE(control_result, nullptr);

  // Pick a touched entity disjoint from the control's dependency set
  // (its query entity and every entity in its top-k).
  std::vector<EntityId> used{0};
  for (const auto& scored : *control_result) used.push_back(scored.entity);
  EntityId touched = 0;
  for (EntityId e = kEntities - 1; e > 0; --e) {
    if (std::find(used.begin(), used.end(), e) == used.end()) {
      touched = e;
      break;
    }
  }
  ASSERT_NE(touched, 0);

  const TopKQuery dependent = query(touched, 1, 3);
  const auto dependent_result = service.topk(dependent);
  ASSERT_NE(dependent_result, nullptr);

  ingestor.submit({touched, 0, touched});
  ASSERT_EQ(ingestor.flush(), 2u);  // returns the newly published version
  ASSERT_EQ(service.current_version(), 2u);

  // Dependent: recomputed (its query entity's row changed).
  const auto dependent_after = service.topk(dependent);
  ASSERT_NE(dependent_after, nullptr);
  EXPECT_NE(dependent_after.get(), dependent_result.get());
  // Control: still served from cache — the same shared result object.
  const auto control_after = service.topk(control);
  ASSERT_NE(control_after, nullptr);
  EXPECT_EQ(control_after.get(), control_result.get());

  const auto snapshot = service.snapshot();
  EXPECT_EQ(snapshot.cache.invalidations, 1u);
  EXPECT_GE(snapshot.cache.invalidated_entries, 1u);
}

// Stale reads are bounded to the pinned version: a pin taken before a
// swap keeps reading its own version's bytes, never a mix.
TEST(StreamService, PinnedReaderSeesItsVersionAcrossSwaps) {
  const auto base = make_model();
  InferenceService service(kge::clone_model(*base), nullptr);

  const auto pin = service.store().acquire();
  EXPECT_EQ(pin.version, 1u);
  service.swap_model(make_model(77));
  EXPECT_EQ(service.current_version(), 2u);
  EXPECT_EQ(pin.version, 1u);
  const auto base_flat = base->entities().flat();
  const auto pinned_flat = pin->entities().flat();
  for (std::size_t i = 0; i < base_flat.size(); ++i) {
    ASSERT_EQ(pinned_flat[i], base_flat[i]) << "element " << i;
  }
}

TEST(StreamService, CacheVersionLagForcesRescoreAfterManyPublishes) {
  const auto base = make_model();
  ServiceConfig config;
  config.cache_max_version_lag = 2;
  InferenceService service(kge::clone_model(*base), nullptr, config);

  const TopKQuery control = query(0, 0, 3);
  const auto first = service.topk(control);
  ASSERT_NE(first, nullptr);

  // Publishes whose touched sets avoid the control's dependency footprint
  // leave its entry in the cache... until the lag bound ages it out.
  std::vector<EntityId> touched_far{kEntities - 1};
  service.store().publish(kge::clone_model(*base), touched_far);
  const auto second = service.topk(control);
  EXPECT_EQ(second.get(), first.get());  // within the bound: still cached

  service.store().publish(kge::clone_model(*base), touched_far);
  service.store().publish(kge::clone_model(*base), touched_far);
  const auto third = service.topk(control);
  ASSERT_NE(third, nullptr);
  EXPECT_NE(third.get(), first.get());  // aged out: rescored
  EXPECT_EQ(*third, *first);            // same weights -> same answer
}

TEST(StreamService, UpdateDeferralYieldsToSaturatedReads) {
  stream::AdmissionConfig admission;
  admission.defer_updates_above = 1;
  admission.max_update_defer_rounds = 3;
  stream::AdmissionController controller(admission);
  ASSERT_TRUE(controller.try_enter_read(2));  // saturate reads
  EXPECT_EQ(controller.defer_update(), 3);    // bounded, never starves
  controller.exit_read(2);
  EXPECT_EQ(controller.defer_update(), 0);    // no pressure, no wait
  EXPECT_EQ(controller.update_deferrals(), 1u);
}

}  // namespace
}  // namespace dynkge::serve
