#include "stream/refresh.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <unistd.h>

#include "kge/model_factory.hpp"
#include "stream/delta.hpp"
#include "stream/delta_ingestor.hpp"
#include "stream/snapshot_store.hpp"

namespace dynkge::stream {
namespace {

using kge::EntityId;
using kge::Triple;
using kge::TripleList;

constexpr std::int32_t kEntities = 30;
constexpr std::int32_t kRelations = 4;

std::unique_ptr<kge::KgeModel> make_base(std::uint64_t seed = 17) {
  auto model = kge::make_model("complex", kEntities, kRelations, 4);
  util::Rng rng(seed);
  model->init(rng);
  return model;
}

kge::Dataset make_dataset() {
  util::Rng rng(5);
  const auto triple = [&] {
    return Triple{static_cast<EntityId>(rng.next_below(kEntities)),
                  static_cast<kge::RelationId>(rng.next_below(kRelations)),
                  static_cast<EntityId>(rng.next_below(kEntities))};
  };
  TripleList train, valid, test;
  for (int i = 0; i < 60; ++i) train.push_back(triple());
  for (int i = 0; i < 8; ++i) valid.push_back(triple());
  for (int i = 0; i < 8; ++i) test.push_back(triple());
  return kge::Dataset(kEntities, kRelations, train, valid, test);
}

const TripleList kDeltas = {
    {2, 1, 7}, {7, 0, 9}, {2, 3, 11}, {11, 2, 2},
};

TEST(IncrementalRefresh, OnlyTouchedEntityRowsChange) {
  const auto base = make_base();
  auto refreshed = kge::clone_model(*base);
  const RefreshResult result =
      incremental_refresh(*refreshed, kDeltas, /*version=*/2, {});

  // Touched = exactly the heads and tails of the batch, sorted unique.
  const std::set<EntityId> expected{2, 7, 9, 11};
  EXPECT_EQ(std::set<EntityId>(result.touched.begin(), result.touched.end()),
            expected);
  EXPECT_TRUE(
      std::is_sorted(result.touched.begin(), result.touched.end()));
  EXPECT_GT(result.row_updates, 0u);
  EXPECT_GT(result.drift, 0.0);

  // The frozen-base contract, byte for byte.
  for (EntityId e = 0; e < kEntities; ++e) {
    const auto before = base->entities().row(e);
    const auto after = refreshed->entities().row(e);
    const bool touched = expected.count(e) != 0;
    bool identical = true;
    for (std::size_t i = 0; i < before.size(); ++i) {
      identical = identical && before[i] == after[i];
    }
    EXPECT_EQ(identical, !touched) << "entity " << e;
  }
  // Relations are never written.
  const auto rel_before = base->relations().flat();
  const auto rel_after = refreshed->relations().flat();
  for (std::size_t i = 0; i < rel_before.size(); ++i) {
    ASSERT_EQ(rel_before[i], rel_after[i]) << "relation element " << i;
  }
}

TEST(IncrementalRefresh, ByteReproducibleForSameSeedVersionAndOrder) {
  const auto base = make_base();
  auto a = kge::clone_model(*base);
  auto b = kge::clone_model(*base);
  RefreshParams params;
  params.seed = 99;
  incremental_refresh(*a, kDeltas, /*version=*/5, params);
  incremental_refresh(*b, kDeltas, /*version=*/5, params);
  const auto fa = a->entities().flat();
  const auto fb = b->entities().flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    ASSERT_EQ(fa[i], fb[i]) << "element " << i;
  }
}

TEST(IncrementalRefresh, DifferentVersionsDecorrelateTheRngStream) {
  const auto base = make_base();
  auto a = kge::clone_model(*base);
  auto b = kge::clone_model(*base);
  incremental_refresh(*a, kDeltas, /*version=*/2, {});
  incremental_refresh(*b, kDeltas, /*version=*/3, {});
  const auto fa = a->entities().flat();
  const auto fb = b->entities().flat();
  bool any_difference = false;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    any_difference = any_difference || fa[i] != fb[i];
  }
  EXPECT_TRUE(any_difference);
}

TEST(IncrementalRefresh, HardNegativeMiningPathIsDeterministicToo) {
  const auto base = make_base();
  const kge::Dataset dataset = make_dataset();
  RefreshParams params;
  params.negatives_sampled = 6;
  params.negatives_used = 2;  // < sampled -> strategy-5 hard mining
  auto a = kge::clone_model(*base);
  auto b = kge::clone_model(*base);
  incremental_refresh(*a, kDeltas, 2, params, &dataset);
  incremental_refresh(*b, kDeltas, 2, params, &dataset);
  const auto fa = a->entities().flat();
  const auto fb = b->entities().flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    ASSERT_EQ(fa[i], fb[i]) << "element " << i;
  }
}

TEST(IncrementalRefresh, EmptyBatchIsANoop) {
  const auto base = make_base();
  auto refreshed = kge::clone_model(*base);
  const RefreshResult result = incremental_refresh(*refreshed, {}, 2, {});
  EXPECT_TRUE(result.touched.empty());
  EXPECT_EQ(result.row_updates, 0u);
  const auto before = base->entities().flat();
  const auto after = refreshed->entities().flat();
  for (std::size_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(before[i], after[i]);
  }
}

class DeltaFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("dynkge_delta_" + std::to_string(::getpid()) + ".txt");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(DeltaFileTest, ParsesSkipsAndCounts) {
  {
    std::ofstream out(path_);
    out << "# comment\n"
        << "\n"
        << "1 0 2\n"
        << "3 2 4\n"
        << "999 0 1\n"      // head out of range
        << "1 99 2\n"       // relation out of range
        << "not numbers\n"  // malformed
        << "5 1 6\n";
  }
  const DeltaFile file = load_delta_file(path_.string(), kEntities,
                                         kRelations);
  ASSERT_EQ(file.triples.size(), 3u);
  EXPECT_EQ(file.triples[0].head, 1);
  EXPECT_EQ(file.triples[1].relation, 2);
  EXPECT_EQ(file.triples[2].tail, 6);
  EXPECT_EQ(file.skipped, 3u);
  EXPECT_EQ(file.lines, 6u);
}

TEST_F(DeltaFileTest, MissingFileThrows) {
  EXPECT_THROW(load_delta_file(path_.string() + ".absent", kEntities,
                               kRelations),
               std::runtime_error);
}

TEST(DeltaIngestor, AutoFlushesAtBatchSizeAndTracksStats) {
  SnapshotStore store;
  store.init(std::shared_ptr<const kge::KgeModel>(make_base()));
  IngestConfig config;
  config.batch_size = 3;
  DeltaIngestor ingestor(store, config);

  EXPECT_TRUE(ingestor.submit({1, 0, 2}));
  EXPECT_TRUE(ingestor.submit({3, 1, 4}));
  EXPECT_EQ(store.current_version(), 1u);  // below threshold: nothing yet
  EXPECT_EQ(ingestor.pending(), 2u);
  EXPECT_TRUE(ingestor.submit({5, 2, 6}));  // third delta -> inline flush
  EXPECT_EQ(store.current_version(), 2u);
  EXPECT_EQ(ingestor.pending(), 0u);

  EXPECT_TRUE(ingestor.submit({7, 0, 8}));
  EXPECT_EQ(ingestor.flush(), 3u);  // partial batch flushes on demand
  EXPECT_EQ(ingestor.flush(), 0u);  // nothing pending

  const IngestStats stats = ingestor.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_GT(stats.touched_rows, 0u);
}

TEST(DeltaIngestor, ShedsBeyondMaxPending) {
  SnapshotStore store;
  store.init(std::shared_ptr<const kge::KgeModel>(make_base()));
  IngestConfig config;
  config.batch_size = 100;  // never auto-flush in this test
  config.max_pending = 2;
  DeltaIngestor ingestor(store, config);
  EXPECT_TRUE(ingestor.submit({1, 0, 2}));
  EXPECT_TRUE(ingestor.submit({3, 1, 4}));
  EXPECT_FALSE(ingestor.submit({5, 2, 6}));  // queue full -> shed
  EXPECT_EQ(ingestor.stats().shed, 1u);
  EXPECT_EQ(ingestor.stats().submitted, 2u);
}

TEST(DeltaIngestor, RequiresInitializedStoreAndPositiveBatch) {
  SnapshotStore uninitialized;
  EXPECT_THROW(DeltaIngestor(uninitialized, {}), std::logic_error);
  SnapshotStore store;
  store.init(std::shared_ptr<const kge::KgeModel>(make_base()));
  IngestConfig bad;
  bad.batch_size = 0;
  EXPECT_THROW(DeltaIngestor(store, bad), std::invalid_argument);
}

// The end-to-end determinism contract from the ISSUE: the same delta
// stream applied to the same base version produces byte-identical
// snapshot bytes on every replay (same seed, same delta order).
TEST(DeltaIngestor, ReplayedStreamProducesByteIdenticalSnapshots) {
  const auto base = make_base();
  const auto run = [&](SnapshotStore& store) {
    store.init(kge::clone_model(*base));
    IngestConfig config;
    config.batch_size = 3;
    config.refresh.seed = 2024;
    DeltaIngestor ingestor(store, config);
    util::Rng rng(404);
    for (int i = 0; i < 10; ++i) {
      ingestor.submit(
          {static_cast<EntityId>(rng.next_below(kEntities)),
           static_cast<kge::RelationId>(rng.next_below(kRelations)),
           static_cast<EntityId>(rng.next_below(kEntities))});
    }
    ingestor.flush();
  };
  SnapshotStore first, second;
  run(first);
  run(second);
  ASSERT_EQ(first.current_version(), second.current_version());
  EXPECT_GT(first.current_version(), 1u);
  const auto fa = first.acquire()->entities().flat();
  const auto fb = second.acquire()->entities().flat();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    ASSERT_EQ(fa[i], fb[i]) << "element " << i;
  }
}

}  // namespace
}  // namespace dynkge::stream
