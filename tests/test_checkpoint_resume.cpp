// Kill/restart determinism, in process: a run checkpointed at epoch k and
// resumed must end with embeddings byte-identical to one uninterrupted
// run, for every gradient-exchange strategy (the snapshot has to capture
// optimizer moments, scheduler/selector state, residuals, and RNG
// streams for that to hold).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <span>
#include <string>

#include "core/trainer.hpp"
#include "kge/synthetic.hpp"

namespace dynkge::core {
namespace {

const kge::Dataset& tiny_dataset() {
  static const kge::Dataset dataset = kge::generate_synthetic([] {
    kge::SyntheticSpec spec;
    spec.num_entities = 300;
    spec.num_relations = 24;
    spec.num_triples = 4000;
    spec.num_latent_types = 6;
    spec.seed = 99;
    return spec;
  }());
  return dataset;
}

TrainConfig fast_config() {
  TrainConfig config;
  config.embedding_rank = 8;
  config.num_nodes = 2;
  config.batch_size = 200;
  config.max_epochs = 8;
  config.lr.base_lr = 0.01;
  config.lr.tolerance = 6;
  config.compute_final_metrics = false;
  config.seed = 4242;
  return config;
}

std::string fresh_dir(const std::string& name) {
  return ::testing::TempDir() + "dynkge_ckpt_" + std::to_string(::getpid()) +
         "_" + name;
}

bool same_floats(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void expect_same_model(const TrainReport& a, const TrainReport& b,
                       const char* label) {
  ASSERT_NE(a.model, nullptr) << label;
  ASSERT_NE(b.model, nullptr) << label;
  EXPECT_TRUE(same_floats(a.model->entities().flat(),
                          b.model->entities().flat()))
      << label << ": entity embeddings differ";
  EXPECT_TRUE(same_floats(a.model->relations().flat(),
                          b.model->relations().flat()))
      << label << ": relation embeddings differ";
}

StrategyConfig strategy_by_name(const std::string& name) {
  if (name == "allreduce") return StrategyConfig::baseline_allreduce(2);
  if (name == "allgather") return StrategyConfig::baseline_allgather(2);
  if (name == "drs_1bit") return StrategyConfig::drs_1bit(2);
  return StrategyConfig::drs_1bit_rp_ss(5, 1);  // "full": relation partition
}

class CheckpointResumeP : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Strategies, CheckpointResumeP,
                         ::testing::Values("allreduce", "allgather",
                                           "drs_1bit", "full"));

TEST_P(CheckpointResumeP, ResumedRunIsByteIdenticalToUninterrupted) {
  const std::string strategy = GetParam();
  TrainConfig config = fast_config();
  config.strategy = strategy_by_name(strategy);

  // A: uninterrupted reference, no checkpointing at all.
  const auto uninterrupted = DistributedTrainer(tiny_dataset(), config).train();

  // B: "crashes" after epoch 3 (modeled by the max_epochs cap — the CLI
  // kill/restart harness covers the real SIGKILL path).
  TrainConfig first_leg = config;
  first_leg.checkpoint.dir = fresh_dir(strategy);
  first_leg.max_epochs = 3;
  const auto partial = DistributedTrainer(tiny_dataset(), first_leg).train();
  EXPECT_GT(partial.checkpoints_written, 0);

  // C: restart from the snapshot and run to the full epoch budget.
  TrainConfig second_leg = config;
  second_leg.checkpoint.dir = first_leg.checkpoint.dir;
  second_leg.checkpoint.resume = true;
  const auto resumed = DistributedTrainer(tiny_dataset(), second_leg).train();

  EXPECT_EQ(resumed.start_epoch, partial.epochs);
  EXPECT_EQ(resumed.epochs, uninterrupted.epochs);
  EXPECT_TRUE(resumed.replicas_consistent);
  expect_same_model(uninterrupted, resumed, strategy.c_str());
}

TEST(CheckpointResume, CheckpointingItselfDoesNotPerturbTraining) {
  TrainConfig config = fast_config();
  config.strategy = StrategyConfig::drs_1bit(2);
  const auto plain = DistributedTrainer(tiny_dataset(), config).train();

  config.checkpoint.dir = fresh_dir("noperturb");
  const auto checkpointed = DistributedTrainer(tiny_dataset(), config).train();
  ASSERT_EQ(plain.epochs, checkpointed.epochs);
  for (int e = 0; e < plain.epochs; ++e) {
    // sim_seconds is part-measured (thread CPU time) and so varies run to
    // run; the numerics and the selector's transport decisions must not.
    EXPECT_DOUBLE_EQ(plain.epoch_log[e].mean_loss,
                     checkpointed.epoch_log[e].mean_loss);
    EXPECT_DOUBLE_EQ(plain.epoch_log[e].val_accuracy,
                     checkpointed.epoch_log[e].val_accuracy);
    EXPECT_EQ(plain.epoch_log[e].used_allgather,
              checkpointed.epoch_log[e].used_allgather);
  }
  expect_same_model(plain, checkpointed, "checkpointing on vs off");
}

TEST(CheckpointResume, EveryNWritesAtBoundariesAndEnd) {
  TrainConfig config = fast_config();
  config.strategy = StrategyConfig::baseline_allreduce(2);
  config.max_epochs = 5;
  config.lr.tolerance = 20;  // keep the plateau stop out of the way
  config.checkpoint.dir = fresh_dir("every");
  config.checkpoint.every = 2;
  const auto report = DistributedTrainer(tiny_dataset(), config).train();
  // Epoch boundaries 2 and 4, plus the final epoch 5.
  EXPECT_EQ(report.checkpoints_written, 3);
}

TEST(CheckpointResume, ResumeFromFinishedSnapshotIsANoOpRun) {
  TrainConfig config = fast_config();
  config.strategy = StrategyConfig::baseline_allreduce(2);
  config.max_epochs = 4;
  config.checkpoint.dir = fresh_dir("finished");
  const auto first = DistributedTrainer(tiny_dataset(), config).train();

  config.checkpoint.resume = true;
  const auto again = DistributedTrainer(tiny_dataset(), config).train();
  EXPECT_EQ(again.start_epoch, first.epochs);
  EXPECT_EQ(again.epochs, first.epochs);
  EXPECT_EQ(again.checkpoints_written, 0);
  EXPECT_DOUBLE_EQ(again.total_sim_seconds, first.total_sim_seconds);
  expect_same_model(first, again, "resume after completion");
}

TEST(CheckpointResume, ResumeWithEmptyDirStartsFresh) {
  // The crash may have predated the first checkpoint; --resume must then
  // behave exactly like a cold start.
  TrainConfig config = fast_config();
  config.strategy = StrategyConfig::baseline_allreduce(2);
  config.max_epochs = 4;
  const auto cold = DistributedTrainer(tiny_dataset(), config).train();

  config.checkpoint.dir = fresh_dir("empty");
  config.checkpoint.resume = true;
  const auto resumed = DistributedTrainer(tiny_dataset(), config).train();
  EXPECT_EQ(resumed.start_epoch, 0);
  expect_same_model(cold, resumed, "resume with no snapshot");
}

TEST(CheckpointResume, MismatchedConfigIsRejectedWithFieldName) {
  TrainConfig config = fast_config();
  config.strategy = StrategyConfig::baseline_allreduce(2);
  config.max_epochs = 2;
  config.checkpoint.dir = fresh_dir("mismatch");
  DistributedTrainer(tiny_dataset(), config).train();

  config.checkpoint.resume = true;
  config.seed = 999;  // a different RNG universe: resuming would be silent
                      // corruption, so it must throw
  try {
    DistributedTrainer(tiny_dataset(), config).train();
    FAIL() << "seed mismatch accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("seed"), std::string::npos)
        << error.what();
  }

  config.seed = 4242;
  config.model_name = "distmult";
  EXPECT_THROW(DistributedTrainer(tiny_dataset(), config).train(),
               std::invalid_argument);

  config.model_name = "complex";
  config.strategy = StrategyConfig::baseline_allgather(2);
  EXPECT_THROW(DistributedTrainer(tiny_dataset(), config).train(),
               std::invalid_argument);
}

TEST(CheckpointResume, RejectsNonPositiveEvery) {
  TrainConfig config = fast_config();
  config.checkpoint.dir = fresh_dir("badevery");
  config.checkpoint.every = 0;
  EXPECT_THROW(DistributedTrainer(tiny_dataset(), config).train(),
               std::invalid_argument);
}

}  // namespace
}  // namespace dynkge::core
