// Randomized stress tests for the collectives: arbitrary payload sizes
// (including empty), mixed operation sequences, and reference-checked
// results. Guards the exact invariants the trainer depends on.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "comm/communicator.hpp"
#include "util/rng.hpp"

namespace dynkge::comm {
namespace {

using util::Rng;

class CommFuzzP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, CommFuzzP, ::testing::Values(2, 3, 5, 8));

TEST_P(CommFuzzP, AllReduceRandomSizes) {
  const int ranks = GetParam();
  Cluster cluster(ranks);
  for (int round = 0; round < 10; ++round) {
    Rng size_rng(util::derive_seed(101, round));
    const std::size_t elems = 1 + size_rng.next_below(2000);
    cluster.run([&](Communicator& comm) {
      Rng rng(util::derive_seed(7, comm.rank(), round));
      std::vector<float> in(elems);
      for (auto& v : in) v = static_cast<float>(rng.next_below(100));
      std::vector<float> out(elems);
      comm.allreduce_sum(in, out);

      // Reference: regenerate every rank's payload deterministically.
      for (std::size_t i = 0; i < std::min<std::size_t>(elems, 16); ++i) {
        float expected = 0.0f;
        for (int r = 0; r < ranks; ++r) {
          Rng replay(util::derive_seed(7, r, round));
          std::vector<float> payload(elems);
          for (auto& v : payload) {
            v = static_cast<float>(replay.next_below(100));
          }
          expected += payload[i];
        }
        EXPECT_FLOAT_EQ(out[i], expected);
      }
    });
  }
}

TEST_P(CommFuzzP, AllGatherVRandomUnevenSizes) {
  const int ranks = GetParam();
  Cluster cluster(ranks);
  for (int round = 0; round < 10; ++round) {
    cluster.run([&](Communicator& comm) {
      Rng rng(util::derive_seed(13, comm.rank(), round));
      const std::size_t mine = rng.next_below(64);  // may be zero
      std::vector<std::uint32_t> local(mine);
      for (std::size_t i = 0; i < mine; ++i) {
        local[i] = static_cast<std::uint32_t>(comm.rank() * 1000 + i);
      }
      std::vector<std::uint32_t> out;
      std::vector<std::size_t> counts;
      comm.allgatherv(std::span<const std::uint32_t>(local), out, counts);

      // Every rank's segment carries its rank signature in order.
      std::size_t offset = 0;
      for (int r = 0; r < ranks; ++r) {
        for (std::size_t i = 0; i < counts[r]; ++i) {
          EXPECT_EQ(out[offset + i],
                    static_cast<std::uint32_t>(r * 1000 + i));
        }
        offset += counts[r];
      }
      EXPECT_EQ(offset, out.size());
    });
  }
}

TEST_P(CommFuzzP, MixedOperationSequence) {
  // Interleave every collective repeatedly; any slot-reuse bug shows up
  // as cross-talk between operations.
  const int ranks = GetParam();
  Cluster cluster(ranks);
  cluster.run([&](Communicator& comm) {
    Rng rng(util::derive_seed(17, comm.rank()));
    for (int round = 0; round < 30; ++round) {
      // broadcast
      std::vector<float> b(8, comm.rank() == round % ranks ? 3.5f : 0.0f);
      comm.broadcast(std::span<float>(b), round % ranks);
      EXPECT_FLOAT_EQ(b[0], 3.5f);
      // scalar reduction
      EXPECT_DOUBLE_EQ(
          comm.allreduce_scalar(1.0, ScalarOp::kSum),
          static_cast<double>(ranks));
      // allreduce
      std::vector<float> v(5, 2.0f);
      comm.allreduce_sum_inplace(v);
      EXPECT_FLOAT_EQ(v[4], 2.0f * ranks);
      // gatherv
      std::vector<int> mine{comm.rank()};
      std::vector<int> gathered;
      std::vector<std::size_t> counts;
      comm.gatherv(std::span<const int>(mine), 0, gathered, counts);
      if (comm.is_root()) {
        ASSERT_EQ(gathered.size(), static_cast<std::size_t>(ranks));
        for (int r = 0; r < ranks; ++r) EXPECT_EQ(gathered[r], r);
      }
      // barrier
      comm.barrier();
    }
  });
}

TEST_P(CommFuzzP, SimClockIsMonotone) {
  const int ranks = GetParam();
  Cluster cluster(ranks);
  cluster.run([&](Communicator& comm) {
    // Per-rank stream for compute jitter; shared stream for payload sizes
    // (all ranks must agree on the allreduce length).
    Rng jitter(util::derive_seed(23, comm.rank()));
    Rng sizes(util::derive_seed(29));
    double last = comm.sim_now();
    for (int round = 0; round < 50; ++round) {
      comm.sim_add_compute(jitter.next_double() * 1e-3);
      std::vector<float> v(1 + sizes.next_below(100), 1.0f);
      comm.allreduce_sum_inplace(v);
      EXPECT_GE(comm.sim_now(), last);
      last = comm.sim_now();
    }
  });
}

TEST_P(CommFuzzP, MismatchedAllReduceSizesAreRejected) {
  // Ranks disagreeing on the payload length is a programming error the
  // communicator must surface, not silently corrupt.
  const int ranks = GetParam();
  Cluster cluster(ranks);
  EXPECT_THROW(cluster.run([&](Communicator& comm) {
                 std::vector<float> v(comm.rank() + 1, 1.0f);
                 comm.allreduce_sum_inplace(v);
               }),
               std::invalid_argument);
}

TEST_P(CommFuzzP, StatsBytesMatchPayloads) {
  const int ranks = GetParam();
  Cluster cluster(ranks);
  cluster.run([&](Communicator& comm) {
    std::vector<float> v(100, 1.0f);
    comm.allreduce_sum_inplace(v);
    std::vector<std::byte> raw(64, std::byte{7});
    std::vector<std::byte> out;
    std::vector<std::size_t> counts;
    comm.allgatherv_bytes(raw, out, counts);
    EXPECT_EQ(comm.stats().of(CollectiveKind::kAllReduce).bytes,
              100 * sizeof(float));
    EXPECT_EQ(comm.stats().of(CollectiveKind::kAllGatherV).bytes, 64u);
  });
}

}  // namespace
}  // namespace dynkge::comm
