#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dynkge::util {
namespace {

TEST(Table, TextLayout) {
  Table t({"nodes", "TT", "MRR"});
  t.begin_row().add(1).add(3.26, 2).add(0.59, 2);
  t.begin_row().add(2).add(1.27, 2).add(0.57, 2);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("nodes"), std::string::npos);
  EXPECT_NE(text.find("3.26"), std::string::npos);
  EXPECT_NE(text.find("0.57"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, CsvLayout) {
  Table t({"a", "b"});
  t.begin_row().add(std::string("x")).add(std::int64_t{42});
  EXPECT_EQ(t.to_csv(), "a,b\nx,42\n");
}

TEST(Table, NumRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.begin_row().add(1);
  t.begin_row().add(2);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, AddWithoutBeginRowStartsRow) {
  Table t({"a"});
  t.add(std::string("v"));
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Table, PrintIncludesCaption) {
  Table t({"a"});
  t.begin_row().add(7);
  std::ostringstream os;
  t.print(os, "Table 1: demo");
  EXPECT_NE(os.str().find("Table 1: demo"), std::string::npos);
  EXPECT_NE(os.str().find("7"), std::string::npos);
}

TEST(Table, RaggedRowsRenderSafely) {
  Table t({"a", "b", "c"});
  t.begin_row().add(1);  // fewer cells than headers
  const std::string text = t.to_text();
  EXPECT_NE(text.find("1"), std::string::npos);
}

}  // namespace
}  // namespace dynkge::util
