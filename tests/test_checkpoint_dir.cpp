// Checkpoint-directory policies (kge/checkpoint_dir.hpp): newest-first
// candidate enumeration, fault-tolerant resume that falls back past
// corrupt snapshots (and fails loudly naming every candidate when all are
// damaged), retention that never deletes the last known-good snapshot,
// and the disk-fault write hooks (ENOSPC / EIO / short writes) behind
// --checkpoint-on-error.
#include "kge/checkpoint_dir.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "kge/model_factory.hpp"
#include "kge/serialize.hpp"
#include "util/rng.hpp"

namespace dynkge::kge {
namespace {

class CheckpointDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dynkge_ckptdir_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    set_write_syscall_hook_for_testing(nullptr);
    std::filesystem::remove_all(dir_);
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

/// A minimal structurally-valid snapshot; `next_epoch` tags which file a
/// scan ended up loading.
TrainingSnapshot tiny_snapshot(std::int32_t next_epoch) {
  util::Rng rng(7);
  TrainingSnapshot snap;
  snap.model = make_model("distmult", 6, 2, 4);
  snap.model->init(rng);
  for (OptimizerSnapshot* opt : {&snap.entity_opt, &snap.relation_opt}) {
    const auto rows = opt == &snap.entity_opt ? 6 : 2;
    const auto width = opt == &snap.entity_opt
                           ? snap.model->entities().width()
                           : snap.model->relations().width();
    opt->m = EmbeddingMatrix(rows, width);
    opt->v = EmbeddingMatrix(rows, width);
  }
  snap.trainer.next_epoch = next_epoch;
  snap.trainer.model_name = "distmult";
  snap.trainer.embedding_rank = 4;
  snap.trainer.strategy_label = "full";
  snap.rank_rng_seeds = {1};
  snap.rank_residuals = {""};
  return snap;
}

void corrupt_file(const std::string& path) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(24);
  const char garbage[4] = {'X', 'X', 'X', 'X'};
  file.write(garbage, 4);
}

TEST_F(CheckpointDirTest, CandidatesAreNewestFirstAndStrictlyMatched) {
  save_snapshot(tiny_snapshot(1), path("snapshot-e0.dkgs"));
  save_snapshot(tiny_snapshot(11), path("snapshot-e10.dkgs"));
  save_snapshot(tiny_snapshot(3), path("snapshot-e2.dkgs"));
  save_snapshot(tiny_snapshot(12), path("snapshot.dkgs"));
  // Stray files must never join the resume order.
  std::ofstream(path("snapshot-ex.dkgs")) << "not a snapshot";
  std::ofstream(path("notes.txt")) << "hello";

  const auto candidates = list_snapshot_candidates(dir_.string());
  ASSERT_EQ(candidates.size(), 4u);
  EXPECT_EQ(candidates[0], path("snapshot.dkgs"));
  EXPECT_EQ(candidates[1], path("snapshot-e10.dkgs"));
  EXPECT_EQ(candidates[2], path("snapshot-e2.dkgs"));
  EXPECT_EQ(candidates[3], path("snapshot-e0.dkgs"));
}

TEST_F(CheckpointDirTest, EmptyDirectoryIsACleanColdStart) {
  const ResumeScan scan = load_newest_valid_snapshot(dir_.string());
  EXPECT_FALSE(scan.found);
  EXPECT_TRUE(scan.rejected.empty());
}

TEST_F(CheckpointDirTest, CorruptNewestFallsBackToOlderValidSnapshot) {
  save_snapshot(tiny_snapshot(2), path("snapshot-e1.dkgs"));
  save_snapshot(tiny_snapshot(4), path("snapshot-e3.dkgs"));
  save_snapshot(tiny_snapshot(5), path("snapshot.dkgs"));
  corrupt_file(path("snapshot.dkgs"));
  corrupt_file(path("snapshot-e3.dkgs"));

  const ResumeScan scan = load_newest_valid_snapshot(dir_.string());
  ASSERT_TRUE(scan.found);
  EXPECT_EQ(scan.path, path("snapshot-e1.dkgs"));
  EXPECT_EQ(scan.snapshot.trainer.next_epoch, 2);
  // Both newer, corrupt candidates are reported with the loader's error.
  ASSERT_EQ(scan.rejected.size(), 2u);
  EXPECT_EQ(scan.rejected[0].path, path("snapshot.dkgs"));
  EXPECT_EQ(scan.rejected[1].path, path("snapshot-e3.dkgs"));
  for (const RejectedSnapshot& r : scan.rejected) {
    EXPECT_FALSE(r.error.empty());
  }
}

TEST_F(CheckpointDirTest, AllCandidatesCorruptFailsLoudlyNamingEveryOne) {
  save_snapshot(tiny_snapshot(1), path("snapshot-e0.dkgs"));
  save_snapshot(tiny_snapshot(2), path("snapshot.dkgs"));
  corrupt_file(path("snapshot-e0.dkgs"));
  corrupt_file(path("snapshot.dkgs"));

  try {
    load_newest_valid_snapshot(dir_.string());
    FAIL() << "all-corrupt directory did not fail";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path("snapshot.dkgs")), std::string::npos) << what;
    EXPECT_NE(what.find(path("snapshot-e0.dkgs")), std::string::npos)
        << what;
    EXPECT_NE(what.find("every candidate failed"), std::string::npos);
  }
}

TEST_F(CheckpointDirTest, PruneKeepsBudgetNewestAndProtected) {
  for (int e = 0; e < 5; ++e) {
    save_snapshot(tiny_snapshot(e + 1),
                  path("snapshot-e" + std::to_string(e) + ".dkgs"));
  }
  save_snapshot(tiny_snapshot(6), path("snapshot.dkgs"));

  // keep=3 = primary + 2 history slots; the protected e0 survives despite
  // its age and consumes one of them, so only the newest other copy stays.
  prune_snapshots(dir_.string(), 3, path("snapshot-e0.dkgs"));

  EXPECT_TRUE(std::filesystem::exists(path("snapshot.dkgs")));
  EXPECT_TRUE(std::filesystem::exists(path("snapshot-e0.dkgs")));  // protect
  EXPECT_TRUE(std::filesystem::exists(path("snapshot-e4.dkgs")));
  EXPECT_FALSE(std::filesystem::exists(path("snapshot-e1.dkgs")));
  EXPECT_FALSE(std::filesystem::exists(path("snapshot-e2.dkgs")));
  EXPECT_FALSE(std::filesystem::exists(path("snapshot-e3.dkgs")));

  // Without a protect target keep=2 leaves the primary + the newest copy.
  prune_snapshots(dir_.string(), 2);
  EXPECT_TRUE(std::filesystem::exists(path("snapshot.dkgs")));
  EXPECT_TRUE(std::filesystem::exists(path("snapshot-e4.dkgs")));
  EXPECT_FALSE(std::filesystem::exists(path("snapshot-e0.dkgs")));
}

TEST_F(CheckpointDirTest, PruneRejectsBadKeepNamingFlag) {
  try {
    prune_snapshots(dir_.string(), 0);
    FAIL() << "keep=0 was accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--checkpoint-keep"),
              std::string::npos);
  }
}

// ---- disk-fault write hooks ------------------------------------------

TEST_F(CheckpointDirTest, EnospcFailsWriteAndPreservesPreviousSnapshot) {
  const std::string file = path("snapshot.dkgs");
  save_snapshot(tiny_snapshot(3), file);
  const auto good_size = std::filesystem::file_size(file);

  SnapshotWriteOptions options;
  options.test_write_errno = ENOSPC;
  try {
    save_snapshot(tiny_snapshot(9), file, options);
    FAIL() << "ENOSPC write did not fail";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("write failed"),
              std::string::npos);
  }
  // The torn temp file is unlinked and the previous snapshot untouched.
  EXPECT_FALSE(std::filesystem::exists(file + ".tmp"));
  EXPECT_EQ(std::filesystem::file_size(file), good_size);
  EXPECT_EQ(load_snapshot(file).trainer.next_epoch, 3);
}

namespace hook_state {
int eio_budget = 0;
}  // namespace hook_state

ssize_t eio_then_real(const std::string&, int fd, const void* buf,
                      std::size_t count) {
  if (hook_state::eio_budget > 0) {
    --hook_state::eio_budget;
    errno = EIO;
    return -1;
  }
  return ::write(fd, buf, count);
}

ssize_t trickle_write(const std::string&, int fd, const void* buf,
                      std::size_t count) {
  // A nearly-full or slow device: one byte per write(2).
  return ::write(fd, buf, count == 0 ? 0 : 1);
}

TEST_F(CheckpointDirTest, EioThroughSyscallHookFailsAndUnlinksTemp) {
  const std::string file = path("snapshot.dkgs");
  save_snapshot(tiny_snapshot(5), file);

  hook_state::eio_budget = 1;
  set_write_syscall_hook_for_testing(&eio_then_real);
  EXPECT_THROW(save_snapshot(tiny_snapshot(8), file), std::runtime_error);
  set_write_syscall_hook_for_testing(nullptr);

  EXPECT_FALSE(std::filesystem::exists(file + ".tmp"));
  EXPECT_EQ(load_snapshot(file).trainer.next_epoch, 5);
}

TEST_F(CheckpointDirTest, ShortWritesAreRetriedToACompleteSnapshot) {
  const std::string file = path("snapshot.dkgs");
  set_write_syscall_hook_for_testing(&trickle_write);
  save_snapshot(tiny_snapshot(4), file);
  set_write_syscall_hook_for_testing(nullptr);

  EXPECT_EQ(load_snapshot(file).trainer.next_epoch, 4);
}

}  // namespace
}  // namespace dynkge::kge
