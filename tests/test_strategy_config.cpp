#include "core/strategy_config.hpp"

#include <gtest/gtest.h>

namespace dynkge::core {
namespace {

TEST(StrategyConfig, DefaultIsPlainAllReduce) {
  const StrategyConfig config;
  EXPECT_EQ(config.comm, CommMode::kAllReduce);
  EXPECT_EQ(config.selection, SelectionMode::kNone);
  EXPECT_EQ(config.quant, QuantMode::kNone);
  EXPECT_FALSE(config.relation_partition);
  EXPECT_FALSE(config.sample_selection_active());
}

TEST(StrategyConfig, PresetBaselines) {
  const auto ar = StrategyConfig::baseline_allreduce(10);
  EXPECT_EQ(ar.comm, CommMode::kAllReduce);
  EXPECT_EQ(ar.negatives_sampled, 10);
  EXPECT_EQ(ar.negatives_used, 10);
  EXPECT_FALSE(ar.sample_selection_active());

  const auto ag = StrategyConfig::baseline_allgather(1);
  EXPECT_EQ(ag.comm, CommMode::kAllGather);
}

TEST(StrategyConfig, RsPresetsUseBernoulliSelection) {
  EXPECT_EQ(StrategyConfig::rs().selection, SelectionMode::kBernoulli);
  EXPECT_EQ(StrategyConfig::rs().comm, CommMode::kAllGather);
  EXPECT_EQ(StrategyConfig::drs().comm, CommMode::kDynamic);
  EXPECT_EQ(StrategyConfig::rs_1bit().quant, QuantMode::kOneBit);
  EXPECT_EQ(StrategyConfig::drs_1bit().quant, QuantMode::kOneBit);
}

TEST(StrategyConfig, CombinedPresetEnablesEverything) {
  const auto full = StrategyConfig::drs_1bit_rp_ss(10, 1);
  EXPECT_EQ(full.comm, CommMode::kDynamic);
  EXPECT_EQ(full.selection, SelectionMode::kBernoulli);
  EXPECT_EQ(full.quant, QuantMode::kOneBit);
  EXPECT_TRUE(full.relation_partition);
  EXPECT_EQ(full.negatives_sampled, 10);
  EXPECT_EQ(full.negatives_used, 1);
  EXPECT_TRUE(full.sample_selection_active());
}

TEST(StrategyConfig, TopKPresetsShareTheRsTransportAndForceFeedback) {
  const auto topk = StrategyConfig::topk(128);
  EXPECT_EQ(topk.selection, SelectionMode::kTopK);
  EXPECT_EQ(topk.comm, CommMode::kAllGather);
  EXPECT_EQ(topk.topk_k, 128);
  // Top-K without residuals would simply drop the (rows - k) tail, so
  // the preset always turns error feedback on.
  EXPECT_TRUE(topk.selection_residual);

  const auto drs_topk = StrategyConfig::drs_topk(64);
  EXPECT_EQ(drs_topk.comm, CommMode::kDynamic);
  EXPECT_TRUE(drs_topk.dynamic_topk_arm);
  EXPECT_TRUE(drs_topk.selection_residual);
  EXPECT_EQ(drs_topk.topk_k, 64);
}

TEST(StrategyConfig, LabelsMatchPaperNomenclature) {
  EXPECT_EQ(StrategyConfig::baseline_allreduce().label(), "allreduce");
  EXPECT_EQ(StrategyConfig::baseline_allgather().label(), "allgather");
  EXPECT_EQ(StrategyConfig::rs().label(), "RS");
  EXPECT_EQ(StrategyConfig::drs().label(), "DRS");
  EXPECT_EQ(StrategyConfig::rs_1bit().label(), "RS+1-bit");
  EXPECT_EQ(StrategyConfig::drs_1bit().label(), "DRS+1-bit");
  EXPECT_EQ(StrategyConfig::rs_1bit_rp_ss(10).label(), "RS+1-bit+RP+SS");
  EXPECT_EQ(StrategyConfig::drs_1bit_rp_ss(5).label(), "DRS+1-bit+RP+SS");
  EXPECT_EQ(StrategyConfig::topk(64).label(), "TopK");
  EXPECT_EQ(StrategyConfig::drs_topk(64).label(), "DRS+TopK-arm");
}

TEST(StrategyConfig, EnumNames) {
  EXPECT_STREQ(to_string(CommMode::kDynamic), "dynamic");
  EXPECT_STREQ(to_string(SelectionMode::kBernoulli), "random-selection");
  EXPECT_STREQ(to_string(SelectionMode::kAverageTenth), "averagex0.1");
  EXPECT_STREQ(to_string(SelectionMode::kTopK), "topk");
  EXPECT_STREQ(to_string(QuantMode::kOneBit), "1-bit");
  EXPECT_STREQ(to_string(OneBitScale::kMax), "max");
  EXPECT_STREQ(to_string(OneBitScale::kNegMean), "negavg");
}

}  // namespace
}  // namespace dynkge::core
