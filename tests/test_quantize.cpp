#include "core/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/span_math.hpp"

namespace dynkge::core {
namespace {

std::vector<float> test_row() {
  return {0.5f, -1.5f, 2.0f, -0.25f, 0.0f, 3.5f, -2.75f, 1.0f};
}

TEST(RowCodec, SizesMatchSpec) {
  EXPECT_EQ(RowCodec(QuantMode::kNone, OneBitScale::kMax, 8).bytes_per_row(),
            4u + 8u * 4u);
  EXPECT_EQ(RowCodec(QuantMode::kOneBit, OneBitScale::kMax, 8).bytes_per_row(),
            4u + 4u + 1u);
  EXPECT_EQ(RowCodec(QuantMode::kTwoBit, OneBitScale::kMax, 8).bytes_per_row(),
            4u + 4u + 2u);
  // Non-multiple widths round bits up to whole bytes.
  EXPECT_EQ(
      RowCodec(QuantMode::kOneBit, OneBitScale::kMax, 9).bytes_per_row(),
      4u + 4u + 2u);
  EXPECT_EQ(
      RowCodec(QuantMode::kTwoBit, OneBitScale::kMax, 5).bytes_per_row(),
      4u + 4u + 2u);
}

TEST(RowCodec, OneBitShrinks32x) {
  // The headline claim: 1 bit per value instead of 32.
  const RowCodec raw(QuantMode::kNone, OneBitScale::kMax, 256);
  const RowCodec onebit(QuantMode::kOneBit, OneBitScale::kMax, 256);
  const double payload_raw = 256.0 * 4.0;
  const double payload_1bit = 256.0 / 8.0;
  EXPECT_DOUBLE_EQ(payload_raw / payload_1bit, 32.0);
  EXPECT_LT(onebit.bytes_per_row(), raw.bytes_per_row() / 16u);
}

TEST(RowCodec, RejectsBadWidth) {
  EXPECT_THROW(RowCodec(QuantMode::kNone, OneBitScale::kMax, 0),
               std::invalid_argument);
}

TEST(RowCodec, RawRoundTripIsExact) {
  const RowCodec codec(QuantMode::kNone, OneBitScale::kMax, 8);
  const auto row = test_row();
  util::Rng rng(1);
  std::vector<std::byte> buffer;
  codec.encode(42, row, buffer, rng);
  ASSERT_EQ(buffer.size(), codec.bytes_per_row());
  std::vector<float> decoded(8);
  EXPECT_EQ(codec.decode(buffer, decoded), 42);
  for (std::size_t i = 0; i < row.size(); ++i) {
    EXPECT_FLOAT_EQ(decoded[i], row[i]);
  }
}

TEST(RowCodec, OneBitMaxDecodesToSignTimesMax) {
  const RowCodec codec(QuantMode::kOneBit, OneBitScale::kMax, 8);
  const auto row = test_row();  // max |v| = 3.5
  util::Rng rng(1);
  std::vector<std::byte> buffer;
  codec.encode(7, row, buffer, rng);
  std::vector<float> decoded(8);
  EXPECT_EQ(codec.decode(buffer, decoded), 7);
  for (std::size_t i = 0; i < row.size(); ++i) {
    EXPECT_FLOAT_EQ(std::fabs(decoded[i]), 3.5f);
    if (row[i] > 0.0f) EXPECT_GT(decoded[i], 0.0f);
    if (row[i] < 0.0f) EXPECT_LT(decoded[i], 0.0f);
  }
}

TEST(RowCodec, OneBitMeanUsesMeanAbs) {
  const RowCodec codec(QuantMode::kOneBit, OneBitScale::kMean, 4);
  const std::vector<float> row{1.0f, -2.0f, 3.0f, -2.0f};  // mean|v| = 2
  util::Rng rng(1);
  std::vector<std::byte> buffer;
  codec.encode(0, row, buffer, rng);
  std::vector<float> decoded(4);
  codec.decode(buffer, decoded);
  EXPECT_FLOAT_EQ(decoded[0], 2.0f);
  EXPECT_FLOAT_EQ(decoded[1], -2.0f);
}

TEST(RowCodec, OneSidedScaleVariants) {
  const std::vector<float> row{1.0f, -4.0f, 2.0f, -1.0f};
  util::Rng rng(1);
  std::vector<float> decoded(4);
  std::vector<std::byte> buffer;

  // negmax: scale from |negatives| = max(4, 1) = 4.
  RowCodec negmax(QuantMode::kOneBit, OneBitScale::kNegMax, 4);
  negmax.encode(0, row, buffer, rng);
  negmax.decode(buffer, decoded);
  EXPECT_FLOAT_EQ(decoded[0], 4.0f);

  // posmax: scale from positives = max(1, 2) = 2.
  buffer.clear();
  RowCodec posmax(QuantMode::kOneBit, OneBitScale::kPosMax, 4);
  posmax.encode(0, row, buffer, rng);
  posmax.decode(buffer, decoded);
  EXPECT_FLOAT_EQ(decoded[0], 2.0f);

  // negavg: mean(4, 1) = 2.5; posavg: mean(1, 2) = 1.5.
  buffer.clear();
  RowCodec negavg(QuantMode::kOneBit, OneBitScale::kNegMean, 4);
  negavg.encode(0, row, buffer, rng);
  negavg.decode(buffer, decoded);
  EXPECT_FLOAT_EQ(decoded[0], 2.5f);

  buffer.clear();
  RowCodec posavg(QuantMode::kOneBit, OneBitScale::kPosMean, 4);
  posavg.encode(0, row, buffer, rng);
  posavg.decode(buffer, decoded);
  EXPECT_FLOAT_EQ(decoded[0], 1.5f);
}

TEST(RowCodec, OneSidedFallsBackWhenSideEmpty) {
  // All-positive row with a negatives-based scale: falls back to max|v|.
  const std::vector<float> row{1.0f, 2.0f, 3.0f, 0.5f};
  util::Rng rng(1);
  std::vector<std::byte> buffer;
  RowCodec negmax(QuantMode::kOneBit, OneBitScale::kNegMax, 4);
  negmax.encode(0, row, buffer, rng);
  std::vector<float> decoded(4);
  negmax.decode(buffer, decoded);
  EXPECT_FLOAT_EQ(decoded[0], 3.0f);
}

TEST(RowCodec, AllZeroRowSurvives) {
  for (const QuantMode mode :
       {QuantMode::kNone, QuantMode::kOneBit, QuantMode::kTwoBit}) {
    const RowCodec codec(mode, OneBitScale::kMax, 4);
    const std::vector<float> row(4, 0.0f);
    util::Rng rng(1);
    std::vector<std::byte> buffer;
    codec.encode(3, row, buffer, rng);
    std::vector<float> decoded(4, 99.0f);
    EXPECT_EQ(codec.decode(buffer, decoded), 3);
    for (const float v : decoded) EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(RowCodec, TwoBitValuesAreTernary) {
  const RowCodec codec(QuantMode::kTwoBit, OneBitScale::kMax, 8);
  const auto row = test_row();
  const float scale = util::amean(row);
  util::Rng rng(1);
  std::vector<std::byte> buffer;
  codec.encode(0, row, buffer, rng);
  std::vector<float> decoded(8);
  codec.decode(buffer, decoded);
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    const bool ternary = decoded[i] == 0.0f ||
                         std::fabs(std::fabs(decoded[i]) - scale) < 1e-6f;
    EXPECT_TRUE(ternary) << "component " << i << " = " << decoded[i];
    // Sign can only match or be zero.
    if (decoded[i] != 0.0f && row[i] != 0.0f) {
      EXPECT_GT(decoded[i] * row[i], 0.0f);
    }
  }
}

TEST(RowCodec, TwoBitAlwaysKeepsComponentsAtOrAboveScale) {
  // Regression for the sampling-probability clamp: components with
  // |v| >= scale (scale is the row *mean*, so every row that isn't
  // constant has some) must be kept with probability exactly 1 — a
  // nonzero code of the right sign under every RNG stream, never a
  // stochastic drop.
  const RowCodec codec(QuantMode::kTwoBit, OneBitScale::kMax, 4);
  const std::vector<float> row{4.0f, -6.0f, 0.5f, -0.25f};
  const float scale = util::amean(row);  // 2.6875; |row[0]|, |row[1]| above
  std::vector<std::byte> buffer;
  std::vector<float> decoded(4);
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    util::Rng rng(seed);
    buffer.clear();
    codec.encode(0, row, buffer, rng);
    codec.decode(buffer, decoded);
    EXPECT_FLOAT_EQ(decoded[0], scale) << "seed " << seed;
    EXPECT_FLOAT_EQ(decoded[1], -scale) << "seed " << seed;
  }
}

TEST(RowCodec, TwoBitIsUnbiasedInExpectation) {
  // E[decoded_i] = sign * scale * min(1, |v_i|/scale) = v_i (for
  // |v_i| <= scale). Average many stochastic encodings.
  const RowCodec codec(QuantMode::kTwoBit, OneBitScale::kMax, 2);
  const std::vector<float> row{0.5f, -1.5f};  // scale = mean|v| = 1.0
  util::Rng rng(7);
  double sum0 = 0.0, sum1 = 0.0;
  constexpr int kTrials = 20000;
  std::vector<std::byte> buffer;
  std::vector<float> decoded(2);
  for (int trial = 0; trial < kTrials; ++trial) {
    buffer.clear();
    codec.encode(0, row, buffer, rng);
    codec.decode(buffer, decoded);
    sum0 += decoded[0];
    sum1 += decoded[1];
  }
  EXPECT_NEAR(sum0 / kTrials, 0.5, 0.02);
  // |v| > scale saturates at -scale (bias is expected there).
  EXPECT_NEAR(sum1 / kTrials, -1.0, 0.02);
}

TEST(RowCodec, EncodeGradSortedAndSized) {
  const RowCodec codec(QuantMode::kOneBit, OneBitScale::kMax, 4);
  kge::SparseGrad grad(4);
  grad.accumulate(9)[0] = 1.0f;
  grad.accumulate(2)[1] = -2.0f;
  grad.accumulate(5)[2] = 3.0f;
  util::Rng rng(1);
  std::vector<std::byte> buffer;
  codec.encode_grad(grad, buffer, rng);
  ASSERT_EQ(buffer.size(), 3 * codec.bytes_per_row());
  std::vector<float> values(4);
  EXPECT_EQ(codec.decode({buffer.data(), codec.bytes_per_row()}, values), 2);
  EXPECT_EQ(codec.decode({buffer.data() + codec.bytes_per_row(),
                          codec.bytes_per_row()},
                         values),
            5);
}

TEST(RowCodec, DecodeAccumulateSums) {
  const RowCodec codec(QuantMode::kNone, OneBitScale::kMax, 2);
  kge::SparseGrad a(2), b(2);
  a.accumulate(1)[0] = 1.0f;
  b.accumulate(1)[0] = 2.0f;
  b.accumulate(3)[1] = 5.0f;
  util::Rng rng(1);
  std::vector<std::byte> buf_a, buf_b;
  codec.encode_grad(a, buf_a, rng);
  codec.encode_grad(b, buf_b, rng);
  // Concatenate as an allgather would.
  std::vector<std::byte> gathered = buf_a;
  gathered.insert(gathered.end(), buf_b.begin(), buf_b.end());
  kge::SparseGrad merged(2);
  codec.decode_accumulate(gathered, merged);
  EXPECT_EQ(merged.num_rows(), 2u);
  EXPECT_FLOAT_EQ(merged.row(1)[0], 3.0f);
  EXPECT_FLOAT_EQ(merged.row(3)[1], 5.0f);
}

TEST(RowCodec, DecodeAccumulateRejectsRaggedBuffer) {
  const RowCodec codec(QuantMode::kNone, OneBitScale::kMax, 2);
  kge::SparseGrad merged(2);
  std::vector<std::byte> bogus(codec.bytes_per_row() + 1);
  EXPECT_THROW(codec.decode_accumulate(bogus, merged),
               std::invalid_argument);
}

TEST(RowCodec, EncodeRejectsWrongWidth) {
  const RowCodec codec(QuantMode::kNone, OneBitScale::kMax, 4);
  std::vector<float> row(5);
  std::vector<std::byte> buffer;
  util::Rng rng(1);
  EXPECT_THROW(codec.encode(0, row, buffer, rng), std::invalid_argument);
}

TEST(RowCodec, QuantizedValuesMatchesEncodeDecode) {
  const RowCodec codec(QuantMode::kOneBit, OneBitScale::kMax, 8);
  const auto row = test_row();
  util::Rng rng(1);
  std::vector<float> via_helper(8);
  std::vector<std::byte> scratch;
  codec.quantized_values(row, via_helper, scratch, rng);
  std::vector<std::byte> buffer;
  util::Rng rng2(1);
  codec.encode(0, row, buffer, rng2);
  std::vector<float> via_wire(8);
  codec.decode(buffer, via_wire);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(via_helper[i], via_wire[i]);
  }
}

TEST(RowCodec, WidePayloadRoundTrip) {
  // Width 200 matches the paper's "up to 200 dimensions" remark.
  const RowCodec codec(QuantMode::kOneBit, OneBitScale::kMax, 200);
  std::vector<float> row(200);
  util::Rng rng(5);
  for (auto& v : row) v = static_cast<float>(rng.next_double(-1, 1));
  std::vector<std::byte> buffer;
  codec.encode(123, row, buffer, rng);
  ASSERT_EQ(buffer.size(), codec.bytes_per_row());
  std::vector<float> decoded(200);
  EXPECT_EQ(codec.decode(buffer, decoded), 123);
  for (std::size_t i = 0; i < 200; ++i) {
    if (row[i] != 0.0f) EXPECT_GT(decoded[i] * row[i], 0.0f);
  }
}

}  // namespace
}  // namespace dynkge::core
