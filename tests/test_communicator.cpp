#include "comm/communicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dynkge::comm {
namespace {

class CommunicatorP : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Ranks, CommunicatorP,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST_P(CommunicatorP, BarrierCompletes) {
  Cluster cluster(GetParam());
  std::atomic<int> arrivals{0};
  cluster.run([&](Communicator& comm) {
    for (int i = 0; i < 10; ++i) comm.barrier();
    arrivals.fetch_add(1);
  });
  EXPECT_EQ(arrivals.load(), GetParam());
}

TEST_P(CommunicatorP, BroadcastFromEveryRoot) {
  const int p = GetParam();
  Cluster cluster(p);
  cluster.run([&](Communicator& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<float> data(16, comm.rank() == root ? 7.5f : 0.0f);
      comm.broadcast(std::span<float>(data), root);
      for (const float v : data) EXPECT_FLOAT_EQ(v, 7.5f);
    }
  });
}

TEST_P(CommunicatorP, AllReduceSumMatchesSequentialReference) {
  const int p = GetParam();
  Cluster cluster(p);
  const std::size_t n = 100;
  cluster.run([&](Communicator& comm) {
    std::vector<float> in(n), out(n);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = static_cast<float>(comm.rank() + 1) * static_cast<float>(i);
    }
    comm.allreduce_sum(in, out);
    const float rank_sum = p * (p + 1) / 2.0f;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_FLOAT_EQ(out[i], rank_sum * static_cast<float>(i));
    }
  });
}

TEST_P(CommunicatorP, AllReduceInPlace) {
  const int p = GetParam();
  Cluster cluster(p);
  cluster.run([&](Communicator& comm) {
    std::vector<float> data(8, 1.0f);
    comm.allreduce_sum_inplace(data);
    for (const float v : data) EXPECT_FLOAT_EQ(v, static_cast<float>(p));
  });
}

TEST_P(CommunicatorP, AllReduceDeterministicAcrossRanks) {
  // All ranks must compute bit-identical sums (rank-ordered accumulation).
  const int p = GetParam();
  Cluster cluster(p);
  std::vector<std::vector<float>> results(p);
  cluster.run([&](Communicator& comm) {
    std::vector<float> in(64);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = 0.1f * static_cast<float>(comm.rank()) + 1e-3f * i;
    }
    std::vector<float> out(in.size());
    comm.allreduce_sum(in, out);
    results[comm.rank()] = out;
  });
  for (int r = 1; r < p; ++r) EXPECT_EQ(results[r], results[0]);
}

TEST_P(CommunicatorP, ScalarReductions) {
  const int p = GetParam();
  Cluster cluster(p);
  cluster.run([&](Communicator& comm) {
    const double mine = comm.rank() + 1.0;
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(mine, ScalarOp::kSum),
                     p * (p + 1) / 2.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(mine, ScalarOp::kMin), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(mine, ScalarOp::kMax),
                     static_cast<double>(p));
  });
}

TEST_P(CommunicatorP, AllGatherVConcatenatesInRankOrder) {
  const int p = GetParam();
  Cluster cluster(p);
  cluster.run([&](Communicator& comm) {
    // Rank r contributes r+1 ints with value r.
    std::vector<int> local(comm.rank() + 1, comm.rank());
    std::vector<int> out;
    std::vector<std::size_t> counts;
    comm.allgatherv(std::span<const int>(local), out, counts);
    ASSERT_EQ(counts.size(), static_cast<std::size_t>(p));
    std::size_t expected_total = 0;
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(counts[r], static_cast<std::size_t>(r + 1));
      expected_total += r + 1;
    }
    ASSERT_EQ(out.size(), expected_total);
    std::size_t idx = 0;
    for (int r = 0; r < p; ++r) {
      for (int k = 0; k <= r; ++k) EXPECT_EQ(out[idx++], r);
    }
  });
}

TEST_P(CommunicatorP, AllGatherVEmptyContributions) {
  const int p = GetParam();
  Cluster cluster(p);
  cluster.run([&](Communicator& comm) {
    // Odd ranks contribute nothing.
    std::vector<double> local;
    if (comm.rank() % 2 == 0) local.assign(2, comm.rank() * 1.0);
    std::vector<double> out;
    std::vector<std::size_t> counts;
    comm.allgatherv(std::span<const double>(local), out, counts);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(counts[r], r % 2 == 0 ? 2u : 0u);
    }
  });
}

TEST_P(CommunicatorP, ScattervDistributesSlices) {
  const int p = GetParam();
  Cluster cluster(p);
  cluster.run([&](Communicator& comm) {
    std::vector<std::size_t> counts(p);
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      counts[r] = r + 2;
      total += counts[r];
    }
    std::vector<int> all;
    if (comm.rank() == 0) {
      all.resize(total);
      std::iota(all.begin(), all.end(), 0);
    }
    std::vector<int> mine;
    comm.scatterv(std::span<const int>(all), counts, 0, mine);
    ASSERT_EQ(mine.size(), counts[comm.rank()]);
    std::size_t offset = 0;
    for (int r = 0; r < comm.rank(); ++r) offset += counts[r];
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(mine[i], static_cast<int>(offset + i));
    }
  });
}

TEST_P(CommunicatorP, GathervCollectsAtRoot) {
  const int p = GetParam();
  Cluster cluster(p);
  cluster.run([&](Communicator& comm) {
    std::vector<int> local{comm.rank(), comm.rank() * 10};
    std::vector<int> out;
    std::vector<std::size_t> counts;
    comm.gatherv(std::span<const int>(local), 0, out, counts);
    if (comm.rank() == 0) {
      ASSERT_EQ(out.size(), static_cast<std::size_t>(2 * p));
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(out[2 * r], r);
        EXPECT_EQ(out[2 * r + 1], r * 10);
      }
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST_P(CommunicatorP, SimClockAdvancesWithCollectives) {
  const int p = GetParam();
  Cluster cluster(p);
  cluster.run([&](Communicator& comm) {
    EXPECT_DOUBLE_EQ(comm.sim_now(), 0.0);
    comm.sim_add_compute(1.0);
    std::vector<float> data(1024, 1.0f);
    comm.allreduce_sum_inplace(data);
    if (p > 1) {
      EXPECT_GT(comm.sim_now(), 1.0);
    } else {
      EXPECT_DOUBLE_EQ(comm.sim_now(), 1.0);
    }
  });
}

TEST_P(CommunicatorP, SimClockAlignsToSlowestRank) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  Cluster cluster(p);
  cluster.run([&](Communicator& comm) {
    // Rank p-1 is the straggler: everyone must align to its clock.
    comm.sim_add_compute(comm.rank() == p - 1 ? 5.0 : 0.5);
    comm.barrier();
    EXPECT_GE(comm.sim_now(), 5.0);
  });
}

TEST_P(CommunicatorP, StatsAccumulate) {
  const int p = GetParam();
  Cluster cluster(p);
  cluster.run([&](Communicator& comm) {
    std::vector<float> data(256, 1.0f);
    comm.allreduce_sum_inplace(data);
    comm.allreduce_sum_inplace(data);
    const auto& ar = comm.stats().of(CollectiveKind::kAllReduce);
    EXPECT_EQ(ar.calls, 2u);
    EXPECT_EQ(ar.bytes, 2 * 256 * sizeof(float));
  });
}

TEST_P(CommunicatorP, ChargeAddsModeledTimeWithoutSync) {
  const int p = GetParam();
  Cluster cluster(p);
  cluster.run([&](Communicator& comm) {
    const double before = comm.sim_now();
    comm.charge(CollectiveKind::kAllReduce, 1 << 20, 0);
    if (p > 1) {
      EXPECT_GT(comm.sim_now(), before);
    }
    EXPECT_EQ(comm.stats().of(CollectiveKind::kAllReduce).calls, 1u);
  });
}

TEST_P(CommunicatorP, UnchargedAllGatherMovesDataButNoCost) {
  const int p = GetParam();
  Cluster cluster(p);
  cluster.run([&](Communicator& comm) {
    std::vector<std::byte> local(4, std::byte{0xAB});
    std::vector<std::byte> out;
    std::vector<std::size_t> counts;
    comm.allgatherv_bytes(local, out, counts, /*charge_cost=*/false);
    EXPECT_EQ(out.size(), 4u * p);
    EXPECT_EQ(comm.stats().of(CollectiveKind::kAllGatherV).calls, 0u);
  });
}

TEST_P(CommunicatorP, TraceDisabledByDefault) {
  Cluster cluster(GetParam());
  cluster.run([](Communicator& comm) {
    comm.barrier();
    std::vector<float> v(4, 1.0f);
    comm.allreduce_sum_inplace(v);
    EXPECT_TRUE(comm.trace().empty());
  });
}

TEST_P(CommunicatorP, TraceRecordsOrderedTimeline) {
  Cluster cluster(GetParam());
  cluster.run([&](Communicator& comm) {
    comm.enable_trace();
    comm.sim_add_compute(0.5);
    std::vector<float> v(256, 1.0f);
    comm.allreduce_sum_inplace(v);
    comm.barrier();
    std::vector<std::byte> raw(16, std::byte{1});
    std::vector<std::byte> out;
    std::vector<std::size_t> counts;
    comm.allgatherv_bytes(raw, out, counts);

    const auto& trace = comm.trace();
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0].kind, CollectiveKind::kAllReduce);
    EXPECT_EQ(trace[0].bytes, 256 * sizeof(float));
    EXPECT_EQ(trace[1].kind, CollectiveKind::kBarrier);
    EXPECT_EQ(trace[2].kind, CollectiveKind::kAllGatherV);
    // Timeline is ordered and starts after the compute segment.
    EXPECT_GE(trace[0].sim_start, 0.5);
    for (const auto& event : trace) {
      EXPECT_LE(event.sim_start, event.sim_end);
    }
    for (std::size_t i = 1; i < trace.size(); ++i) {
      EXPECT_GE(trace[i].sim_start, trace[i - 1].sim_end);
    }
  });
}

TEST(Cluster, RejectsZeroRanks) {
  EXPECT_THROW(Cluster(0), std::invalid_argument);
}

TEST(Cluster, PropagatesRankException) {
  Cluster cluster(4);
  EXPECT_THROW(
      cluster.run([](Communicator& comm) {
        if (comm.rank() == 2) throw std::runtime_error("rank 2 failed");
        // Other ranks block on a collective and must be released by abort.
        comm.barrier();
        comm.barrier();
      }),
      std::runtime_error);
}

TEST(Cluster, ReusableForMultipleRuns) {
  Cluster cluster(3);
  for (int iteration = 0; iteration < 3; ++iteration) {
    cluster.run([&](Communicator& comm) {
      std::vector<float> v(4, 1.0f);
      comm.allreduce_sum_inplace(v);
      EXPECT_FLOAT_EQ(v[0], 3.0f);
    });
  }
}

TEST(Cluster, ManySmallCollectivesStress) {
  Cluster cluster(4);
  cluster.run([](Communicator& comm) {
    for (int i = 0; i < 500; ++i) {
      std::vector<float> v(8, static_cast<float>(comm.rank()));
      comm.allreduce_sum_inplace(v);
      EXPECT_FLOAT_EQ(v[0], 6.0f);  // 0+1+2+3
    }
  });
}

}  // namespace
}  // namespace dynkge::comm
