#include "core/grad_exchange.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dynkge::core {
namespace {

constexpr std::int32_t kEntities = 100;
constexpr std::int32_t kRelations = 20;
constexpr std::int32_t kWidth = 8;

/// Deterministic per-rank gradient: rank r touches entity rows
/// {r, r+1, 10} and relation row {r % kRelations}.
kge::ModelGrads rank_grads(int rank) {
  kge::ModelGrads grads(kWidth, kWidth);
  for (const std::int32_t id :
       {rank, rank + 1, std::int32_t{10}}) {
    auto row = grads.entity.accumulate(id);
    for (std::int32_t i = 0; i < kWidth; ++i) {
      row[i] = static_cast<float>(rank + 1) * 0.125f * (i + 1);
    }
  }
  auto rel = grads.relation.accumulate(rank % kRelations);
  for (std::int32_t i = 0; i < kWidth; ++i) rel[i] = 1.0f;
  return grads;
}

class GradExchangeP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, GradExchangeP, ::testing::Values(1, 2, 4, 8));

TEST_P(GradExchangeP, AllGatherMergeMatchesManualSum) {
  const int ranks = GetParam();
  comm::Cluster cluster(ranks);
  cluster.run([&](comm::Communicator& comm) {
    const StrategyConfig strategy = StrategyConfig::baseline_allgather();
    GradExchange exchange(comm, strategy, kEntities, kWidth, kRelations,
                          kWidth);
    kge::ModelGrads local = rank_grads(comm.rank());
    kge::ModelGrads merged(kWidth, kWidth);
    ExchangePlan plan;
    plan.transport = Transport::kAllGather;
    util::Rng rng(1);
    exchange.exchange(local, merged, plan, rng);

    // Row 10 is touched by every rank: expected value is the average of
    // all ranks' contributions.
    float expected = 0.0f;
    for (int r = 0; r < ranks; ++r) expected += (r + 1) * 0.125f;
    expected /= static_cast<float>(ranks);
    ASSERT_TRUE(merged.entity.has(10));
    EXPECT_NEAR(merged.entity.row(10)[0], expected, 1e-6);

    // Rank-exclusive rows survive scaled by 1/ranks.
    if (ranks > 2) {
      ASSERT_TRUE(merged.entity.has(0));
      EXPECT_NEAR(merged.entity.row(0)[0], 0.125f / ranks, 1e-6);
    }
  });
}

TEST_P(GradExchangeP, AllReduceAndAllGatherAgreeNumerically) {
  const int ranks = GetParam();
  comm::Cluster cluster(ranks);
  cluster.run([&](comm::Communicator& comm) {
    const StrategyConfig strategy = StrategyConfig::baseline_allreduce();
    GradExchange exchange(comm, strategy, kEntities, kWidth, kRelations,
                          kWidth);
    util::Rng rng(1);

    kge::ModelGrads local_a = rank_grads(comm.rank());
    kge::ModelGrads merged_a(kWidth, kWidth);
    ExchangePlan reduce_plan;
    reduce_plan.transport = Transport::kAllReduce;
    exchange.exchange(local_a, merged_a, reduce_plan, rng);

    kge::ModelGrads local_b = rank_grads(comm.rank());
    kge::ModelGrads merged_b(kWidth, kWidth);
    ExchangePlan gather_plan;
    gather_plan.transport = Transport::kAllGather;
    exchange.exchange(local_b, merged_b, gather_plan, rng);

    ASSERT_EQ(merged_a.entity.sorted_ids(), merged_b.entity.sorted_ids());
    for (const std::int32_t id : merged_a.entity.sorted_ids()) {
      const auto a = merged_a.entity.row(id);
      const auto b = merged_b.entity.row(id);
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_FLOAT_EQ(a[i], b[i]);
      }
    }
  });
}

TEST_P(GradExchangeP, MergedResultIdenticalOnAllRanks) {
  const int ranks = GetParam();
  comm::Cluster cluster(ranks);
  std::vector<std::vector<float>> row10(ranks);
  cluster.run([&](comm::Communicator& comm) {
    StrategyConfig strategy = StrategyConfig::rs_1bit();
    GradExchange exchange(comm, strategy, kEntities, kWidth, kRelations,
                          kWidth);
    kge::ModelGrads local = rank_grads(comm.rank());
    kge::ModelGrads merged(kWidth, kWidth);
    ExchangePlan plan;
    plan.transport = Transport::kAllGather;
    util::Rng rng(comm.rank() + 1);  // rank-distinct randomness
    exchange.exchange(local, merged, plan, rng);
    const auto row = merged.entity.row(10);
    row10[comm.rank()].assign(row.begin(), row.end());
  });
  for (int r = 1; r < ranks; ++r) EXPECT_EQ(row10[r], row10[0]);
}

TEST_P(GradExchangeP, AllReduceChargesDenseCost) {
  const int ranks = GetParam();
  if (ranks < 2) GTEST_SKIP();
  comm::Cluster cluster(ranks);
  cluster.run([&](comm::Communicator& comm) {
    const StrategyConfig strategy = StrategyConfig::baseline_allreduce();
    GradExchange exchange(comm, strategy, kEntities, kWidth, kRelations,
                          kWidth);
    kge::ModelGrads local = rank_grads(comm.rank());
    kge::ModelGrads merged(kWidth, kWidth);
    ExchangePlan plan;
    plan.transport = Transport::kAllReduce;
    util::Rng rng(1);
    const auto result = exchange.exchange(local, merged, plan, rng);

    // Dense bytes: full entity matrix + full relation matrix.
    const std::size_t expected =
        static_cast<std::size_t>(kEntities) * kWidth * sizeof(float) +
        static_cast<std::size_t>(kRelations) * kWidth * sizeof(float);
    EXPECT_EQ(result.bytes_on_wire, expected);
    EXPECT_GT(result.comm_seconds, 0.0);
    EXPECT_EQ(comm.stats().of(comm::CollectiveKind::kAllReduce).calls, 2u);
  });
}

TEST_P(GradExchangeP, QuantizationShrinksGatherBytes) {
  const int ranks = GetParam();
  comm::Cluster cluster(ranks);
  cluster.run([&](comm::Communicator& comm) {
    util::Rng rng(1);
    ExchangePlan plan;
    plan.transport = Transport::kAllGather;

    StrategyConfig raw = StrategyConfig::baseline_allgather();
    GradExchange raw_exchange(comm, raw, kEntities, kWidth, kRelations,
                              kWidth);
    kge::ModelGrads local_a = rank_grads(comm.rank());
    kge::ModelGrads merged(kWidth, kWidth);
    const auto raw_result =
        raw_exchange.exchange(local_a, merged, plan, rng);

    StrategyConfig quant = StrategyConfig::baseline_allgather();
    quant.quant = QuantMode::kOneBit;
    GradExchange quant_exchange(comm, quant, kEntities, kWidth, kRelations,
                                kWidth);
    kge::ModelGrads local_b = rank_grads(comm.rank());
    const auto quant_result =
        quant_exchange.exchange(local_b, merged, plan, rng);

    EXPECT_LT(quant_result.bytes_on_wire, raw_result.bytes_on_wire / 2);
  });
}

TEST_P(GradExchangeP, SkippingRelationsMovesFewerBytes) {
  const int ranks = GetParam();
  comm::Cluster cluster(ranks);
  cluster.run([&](comm::Communicator& comm) {
    const StrategyConfig strategy = StrategyConfig::baseline_allgather();
    GradExchange exchange(comm, strategy, kEntities, kWidth, kRelations,
                          kWidth);
    util::Rng rng(1);
    ExchangePlan with_relations;
    with_relations.transport = Transport::kAllGather;
    with_relations.exchange_relations = true;
    kge::ModelGrads local_a = rank_grads(comm.rank());
    kge::ModelGrads merged(kWidth, kWidth);
    const auto with = exchange.exchange(local_a, merged, with_relations, rng);

    ExchangePlan without;
    without.transport = Transport::kAllGather;
    without.exchange_relations = false;
    kge::ModelGrads local_b = rank_grads(comm.rank());
    const auto skip = exchange.exchange(local_b, merged, without, rng);

    EXPECT_LT(skip.bytes_on_wire, with.bytes_on_wire);
    EXPECT_TRUE(merged.relation.empty());
  });
}

TEST_P(GradExchangeP, ParameterServerAgreesWithAllReduceNumerically) {
  // All three transports are different *timings* of the same merge: the
  // resulting averaged gradient must be bit-identical.
  const int ranks = GetParam();
  comm::Cluster cluster(ranks);
  cluster.run([&](comm::Communicator& comm) {
    const StrategyConfig strategy =
        StrategyConfig::baseline_parameter_server();
    GradExchange exchange(comm, strategy, kEntities, kWidth, kRelations,
                          kWidth);
    util::Rng rng(1);

    kge::ModelGrads local_a = rank_grads(comm.rank());
    kge::ModelGrads merged_a(kWidth, kWidth);
    ExchangePlan ps_plan;
    ps_plan.transport = Transport::kParameterServer;
    exchange.exchange(local_a, merged_a, ps_plan, rng);

    kge::ModelGrads local_b = rank_grads(comm.rank());
    kge::ModelGrads merged_b(kWidth, kWidth);
    ExchangePlan reduce_plan;
    reduce_plan.transport = Transport::kAllReduce;
    exchange.exchange(local_b, merged_b, reduce_plan, rng);

    ASSERT_EQ(merged_a.entity.sorted_ids(), merged_b.entity.sorted_ids());
    for (const std::int32_t id : merged_a.entity.sorted_ids()) {
      const auto a = merged_a.entity.row(id);
      const auto b = merged_b.entity.row(id);
      for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
    }
  });
}

TEST_P(GradExchangeP, ParameterServerChargesGatherPlusBroadcast) {
  const int ranks = GetParam();
  comm::Cluster cluster(ranks);
  cluster.run([&](comm::Communicator& comm) {
    const StrategyConfig strategy =
        StrategyConfig::baseline_parameter_server();
    GradExchange exchange(comm, strategy, kEntities, kWidth, kRelations,
                          kWidth);
    kge::ModelGrads local = rank_grads(comm.rank());
    kge::ModelGrads merged(kWidth, kWidth);
    ExchangePlan plan;
    plan.transport = Transport::kParameterServer;
    util::Rng rng(1);
    exchange.exchange(local, merged, plan, rng);
    // One gatherv + one broadcast per exchanged matrix (entity, relation).
    EXPECT_EQ(comm.stats().of(comm::CollectiveKind::kGatherV).calls, 2u);
    EXPECT_EQ(comm.stats().of(comm::CollectiveKind::kBroadcast).calls, 2u);
    EXPECT_EQ(comm.stats().of(comm::CollectiveKind::kAllReduce).calls, 0u);
  });
}

TEST(GradExchange, ParameterServerCostGrowsLinearlyWithRanks) {
  // The paper's motivation for synchronous collectives: the server link
  // carries every worker's traffic, so modeled time grows ~linearly in
  // the number of workers (ring all-reduce saturates instead).
  const auto ps_time = [](int ranks) {
    double seconds = 0.0;
    comm::Cluster cluster(ranks);
    cluster.run([&](comm::Communicator& comm) {
      const StrategyConfig strategy =
          StrategyConfig::baseline_parameter_server();
      GradExchange exchange(comm, strategy, kEntities, kWidth, kRelations,
                            kWidth);
      kge::ModelGrads local = rank_grads(comm.rank());
      kge::ModelGrads merged(kWidth, kWidth);
      ExchangePlan plan;
      plan.transport = Transport::kParameterServer;
      util::Rng rng(1);
      const auto result = exchange.exchange(local, merged, plan, rng);
      if (comm.rank() == 0) seconds = result.comm_seconds;
    });
    return seconds;
  };
  const double t2 = ps_time(2);
  const double t8 = ps_time(8);
  EXPECT_GT(t8, 2.5 * t2);
}

TEST(GradExchange, ErrorFeedbackCompensatesQuantization) {
  // With mean-scale 1-bit quantization (a contraction), error feedback
  // makes the *accumulated* transmitted gradient track the accumulated
  // true gradient: residuals stay bounded while the no-feedback variant
  // keeps losing the same per-step error.
  comm::Cluster cluster(1);
  cluster.run([&](comm::Communicator& comm) {
    StrategyConfig strategy = StrategyConfig::baseline_allgather();
    strategy.quant = QuantMode::kOneBit;
    strategy.one_bit_scale = OneBitScale::kMean;
    strategy.error_feedback = true;
    GradExchange exchange(comm, strategy, kEntities, kWidth, kRelations,
                          kWidth);
    util::Rng rng(3);

    // Constant true gradient, many steps.
    std::vector<double> transmitted(kWidth, 0.0);
    const int kSteps = 400;
    for (int step = 0; step < kSteps; ++step) {
      kge::ModelGrads local(kWidth, kWidth);
      auto row = local.entity.accumulate(5);
      for (std::int32_t i = 0; i < kWidth; ++i) {
        row[i] = 0.01f * static_cast<float>(i + 1);
      }
      kge::ModelGrads merged(kWidth, kWidth);
      ExchangePlan plan;
      plan.transport = Transport::kAllGather;
      exchange.exchange(local, merged, plan, rng);
      const auto out = merged.entity.row(5);
      for (std::int32_t i = 0; i < kWidth; ++i) transmitted[i] += out[i];
    }
    // Accumulated transmission approximates accumulated truth within a
    // bounded residual (<= one quantization step per component).
    for (std::int32_t i = 0; i < kWidth; ++i) {
      const double truth = 0.01 * (i + 1) * kSteps;
      EXPECT_NEAR(transmitted[i] / truth, 1.0, 0.1) << "component " << i;
    }
  });
}

TEST(GradExchange, EmptyGradientsExchangeCleanly) {
  comm::Cluster cluster(4);
  cluster.run([&](comm::Communicator& comm) {
    const StrategyConfig strategy = StrategyConfig::baseline_allgather();
    GradExchange exchange(comm, strategy, kEntities, kWidth, kRelations,
                          kWidth);
    kge::ModelGrads local(kWidth, kWidth);  // nothing touched
    kge::ModelGrads merged(kWidth, kWidth);
    ExchangePlan plan;
    plan.transport = Transport::kAllGather;
    util::Rng rng(1);
    const auto result = exchange.exchange(local, merged, plan, rng);
    EXPECT_EQ(result.entity_rows_merged, 0u);
    EXPECT_TRUE(merged.entity.empty());
  });
}

}  // namespace
}  // namespace dynkge::core
