#include "util/span_math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dynkge::util {
namespace {

TEST(SpanMath, Dot) {
  const std::vector<float> x{1.0f, 2.0f, 3.0f};
  const std::vector<float> y{4.0f, -5.0f, 6.0f};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(SpanMath, DotEmpty) {
  const std::vector<float> x, y;
  EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
}

TEST(SpanMath, Axpy) {
  const std::vector<float> x{1.0f, 2.0f};
  std::vector<float> y{10.0f, 20.0f};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
}

TEST(SpanMath, Scale) {
  std::vector<float> x{1.0f, -2.0f, 4.0f};
  scale(0.5f, x);
  EXPECT_FLOAT_EQ(x[0], 0.5f);
  EXPECT_FLOAT_EQ(x[1], -1.0f);
  EXPECT_FLOAT_EQ(x[2], 2.0f);
}

TEST(SpanMath, Nrm2) {
  const std::vector<float> x{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
  EXPECT_DOUBLE_EQ(nrm2_squared(x), 25.0);
}

TEST(SpanMath, Nrm2Empty) {
  const std::vector<float> x;
  EXPECT_DOUBLE_EQ(nrm2(x), 0.0);
}

TEST(SpanMath, Asum) {
  const std::vector<float> x{-1.0f, 2.0f, -3.0f};
  EXPECT_DOUBLE_EQ(asum(x), 6.0);
}

TEST(SpanMath, AmaxAndAmean) {
  const std::vector<float> x{-7.0f, 2.0f, 5.0f};
  EXPECT_FLOAT_EQ(amax(x), 7.0f);
  EXPECT_NEAR(amean(x), 14.0f / 3.0f, 1e-6);
}

TEST(SpanMath, AmaxEmpty) {
  const std::vector<float> x;
  EXPECT_FLOAT_EQ(amax(x), 0.0f);
  EXPECT_FLOAT_EQ(amean(x), 0.0f);
}

TEST(SpanMath, CopyAndZero) {
  const std::vector<float> x{1.0f, 2.0f, 3.0f};
  std::vector<float> y(3, 0.0f);
  copy(x, y);
  EXPECT_EQ(y, x);
  set_zero(y);
  for (const float v : y) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(SpanMath, SoftplusAccuracy) {
  EXPECT_NEAR(softplus(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(softplus(1.0), std::log1p(std::exp(1.0)), 1e-12);
  EXPECT_NEAR(softplus(-1.0), std::log1p(std::exp(-1.0)), 1e-12);
}

TEST(SpanMath, SoftplusExtremesDoNotOverflow) {
  EXPECT_DOUBLE_EQ(softplus(1000.0), 1000.0);
  EXPECT_NEAR(softplus(-1000.0), 0.0, 1e-12);
  EXPECT_TRUE(std::isfinite(softplus(700.0)));
  EXPECT_TRUE(std::isfinite(softplus(-700.0)));
}

TEST(SpanMath, SigmoidBasics) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-100.0), 0.0, 1e-12);
}

TEST(SpanMath, SigmoidSymmetry) {
  for (const double z : {0.1, 0.5, 2.0, 10.0}) {
    EXPECT_NEAR(sigmoid(z) + sigmoid(-z), 1.0, 1e-12);
  }
}

TEST(SpanMath, SigmoidIsSoftplusDerivative) {
  // d/dz softplus(z) == sigmoid(z); check by central differences.
  for (const double z : {-3.0, -0.5, 0.0, 0.5, 3.0}) {
    const double h = 1e-6;
    const double numeric = (softplus(z + h) - softplus(z - h)) / (2 * h);
    EXPECT_NEAR(numeric, sigmoid(z), 1e-6);
  }
}

}  // namespace
}  // namespace dynkge::util
