#include "core/hogwild_trainer.hpp"

#include <gtest/gtest.h>

#include "kge/synthetic.hpp"

namespace dynkge::core {
namespace {

const kge::Dataset& tiny_dataset() {
  static const kge::Dataset dataset = kge::generate_synthetic([] {
    kge::SyntheticSpec spec;
    spec.num_entities = 300;
    spec.num_relations = 24;
    spec.num_triples = 4000;
    spec.num_latent_types = 6;
    spec.seed = 99;
    return spec;
  }());
  return dataset;
}

HogwildConfig fast_config(int threads) {
  HogwildConfig config;
  config.embedding_rank = 8;
  config.num_threads = threads;
  config.negatives = 2;
  config.max_epochs = 12;
  config.lr.base_lr = 0.05;  // plain SGD needs a larger step than Adam
  config.lr.max_scale = 1;   // ...but diverges under linear thread scaling
  config.lr.tolerance = 6;
  config.compute_final_metrics = false;
  config.seed = 4242;
  return config;
}

TEST(Hogwild, RejectsBadConfig) {
  HogwildConfig config = fast_config(1);
  config.num_threads = 0;
  EXPECT_THROW(HogwildTrainer(tiny_dataset(), config),
               std::invalid_argument);
  config = fast_config(1);
  config.negatives = 0;
  EXPECT_THROW(HogwildTrainer(tiny_dataset(), config),
               std::invalid_argument);
  config = fast_config(1);
  config.max_epochs = 0;
  EXPECT_THROW(HogwildTrainer(tiny_dataset(), config),
               std::invalid_argument);
}

class HogwildThreadsP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Threads, HogwildThreadsP,
                         ::testing::Values(1, 2, 4));

TEST_P(HogwildThreadsP, LossDecreases) {
  const auto report =
      HogwildTrainer(tiny_dataset(), fast_config(GetParam())).train();
  ASSERT_GE(report.epochs, 2);
  EXPECT_LT(report.epoch_log.back().mean_loss,
            report.epoch_log.front().mean_loss);
  EXPECT_EQ(report.num_threads, GetParam());
}

TEST_P(HogwildThreadsP, ReportIsConsistent) {
  const auto report =
      HogwildTrainer(tiny_dataset(), fast_config(GetParam())).train();
  EXPECT_EQ(report.epoch_log.size(), static_cast<std::size_t>(report.epochs));
  EXPECT_GT(report.total_cpu_seconds, 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  for (const auto& record : report.epoch_log) {
    EXPECT_GT(record.lr, 0.0);
    EXPECT_GE(record.cpu_seconds, 0.0);
  }
}

TEST(Hogwild, ConvergesToUsableAccuracy) {
  HogwildConfig config = fast_config(2);
  config.max_epochs = 120;
  config.lr.tolerance = 15;
  config.compute_final_metrics = true;
  const auto report = HogwildTrainer(tiny_dataset(), config).train();
  EXPECT_GT(report.tca, 80.0);
  EXPECT_GT(report.ranking.mrr, 0.3);
  EXPECT_NE(report.model, nullptr);
}

TEST(Hogwild, SingleThreadMatchesSequentialSemantics) {
  // With one thread there are no races: two runs are identical.
  const auto a = HogwildTrainer(tiny_dataset(), fast_config(1)).train();
  const auto b = HogwildTrainer(tiny_dataset(), fast_config(1)).train();
  ASSERT_EQ(a.epochs, b.epochs);
  for (int e = 0; e < a.epochs; ++e) {
    EXPECT_DOUBLE_EQ(a.epoch_log[e].mean_loss, b.epoch_log[e].mean_loss);
  }
}

TEST(Hogwild, OtherModelsRun) {
  for (const char* model : {"distmult", "transe"}) {
    HogwildConfig config = fast_config(2);
    config.model_name = model;
    config.max_epochs = 8;
    const auto report = HogwildTrainer(tiny_dataset(), config).train();
    EXPECT_LT(report.epoch_log.back().mean_loss,
              report.epoch_log.front().mean_loss)
        << model;
  }
}

}  // namespace
}  // namespace dynkge::core
