#include "core/relation_partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "kge/synthetic.hpp"

namespace dynkge::core {
namespace {

using kge::Triple;
using kge::TripleList;

TripleList paper_example() {
  // Table 3 of the paper: 5 triples, relations {1, 1, 2, 3, 3} (0-based
  // here: {0, 0, 1, 2, 2}).
  return {{1, 0, 2}, {2, 0, 10}, {3, 1, 5}, {6, 2, 9}, {7, 2, 8}};
}

TEST(RelationPartition, PaperTable3Example) {
  // Two processors: triples 1-2 (relation 0) on one, the rest on the other
  // — exactly the paper's illustration.
  const auto partition = partition_by_relation(paper_example(), 2, 3);
  ASSERT_EQ(partition.shards.size(), 2u);
  EXPECT_EQ(partition.shards[0].size(), 2u);
  EXPECT_EQ(partition.shards[1].size(), 3u);
  EXPECT_TRUE(partition.relations_disjoint(3));
}

TEST(RelationPartition, SingleRankGetsEverything) {
  const auto partition = partition_by_relation(paper_example(), 1, 3);
  EXPECT_EQ(partition.shards[0].size(), 5u);
  EXPECT_EQ(partition.relation_range[0].first, 0);
  EXPECT_EQ(partition.relation_range[0].second, 3);
}

TEST(RelationPartition, NoTripleLost) {
  const kge::Dataset ds = kge::generate_synthetic(
      [] {
        kge::SyntheticSpec spec;
        spec.num_entities = 400;
        spec.num_relations = 37;
        spec.num_triples = 6000;
        spec.num_latent_types = 5;
        spec.seed = 17;
        return spec;
      }());
  for (const int ranks : {1, 2, 3, 4, 8, 16}) {
    const auto partition =
        partition_by_relation(ds.train(), ranks, ds.num_relations());
    std::size_t total = 0;
    for (const auto& shard : partition.shards) total += shard.size();
    EXPECT_EQ(total, ds.train().size()) << ranks << " ranks";
  }
}

class RelationPartitionP : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, RelationPartitionP,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST_P(RelationPartitionP, DisjointAndOrdered) {
  const kge::Dataset ds = kge::generate_synthetic(
      [] {
        kge::SyntheticSpec spec;
        spec.num_entities = 300;
        spec.num_relations = 29;
        spec.num_triples = 5000;
        spec.num_latent_types = 4;
        spec.seed = 23;
        return spec;
      }());
  const int ranks = GetParam();
  const auto partition =
      partition_by_relation(ds.train(), ranks, ds.num_relations());

  EXPECT_TRUE(partition.relations_disjoint(ds.num_relations()));

  // Ranges tile [0, num_relations) in ascending rank order.
  kge::RelationId cursor = 0;
  for (const auto& [lo, hi] : partition.relation_range) {
    EXPECT_EQ(lo, cursor);
    EXPECT_LE(lo, hi);
    cursor = hi;
  }
  EXPECT_EQ(cursor, ds.num_relations());

  // Every triple lives in the shard owning its relation.
  for (std::size_t rank = 0; rank < partition.shards.size(); ++rank) {
    for (const Triple& t : partition.shards[rank]) {
      EXPECT_EQ(partition.owner_of(t.relation), static_cast<int>(rank));
    }
  }
}

TEST_P(RelationPartitionP, ReasonablyBalanced) {
  // With Zipf-skewed relations a perfect balance is impossible (a single
  // hot relation cannot be split), but the partition must stay within the
  // bound set by the largest relation.
  const kge::Dataset ds = kge::generate_synthetic(
      [] {
        kge::SyntheticSpec spec;
        spec.num_entities = 500;
        spec.num_relations = 64;
        spec.num_triples = 12000;
        spec.num_latent_types = 8;
        spec.seed = 29;
        return spec;
      }());
  const int ranks = GetParam();
  const auto partition =
      partition_by_relation(ds.train(), ranks, ds.num_relations());

  std::vector<std::size_t> relation_count(ds.num_relations(), 0);
  for (const Triple& t : ds.train()) ++relation_count[t.relation];
  const std::size_t biggest_relation =
      *std::max_element(relation_count.begin(), relation_count.end());
  const std::size_t mean_shard = ds.train().size() / ranks;

  EXPECT_LE(partition.max_shard_size(), mean_shard + biggest_relation)
      << "quantile split must not overshoot by more than one relation";
}

TEST(RelationPartition, MoreRanksThanRelations) {
  // 3 relations over 8 ranks: some shards must be empty, none invalid.
  TripleList triples = paper_example();
  const auto partition = partition_by_relation(triples, 8, 3);
  EXPECT_TRUE(partition.relations_disjoint(3));
  std::size_t total = 0;
  for (const auto& shard : partition.shards) total += shard.size();
  EXPECT_EQ(total, triples.size());
}

TEST(RelationPartition, RejectsBadArguments) {
  EXPECT_THROW(partition_by_relation(paper_example(), 0, 3),
               std::invalid_argument);
  EXPECT_THROW(partition_by_relation(paper_example(), 2, 0),
               std::invalid_argument);
  EXPECT_THROW(partition_uniform(paper_example(), 0), std::invalid_argument);
}

TEST(RelationPartition, EmptyTripleList) {
  const auto partition = partition_by_relation({}, 4, 10);
  EXPECT_EQ(partition.shards.size(), 4u);
  for (const auto& shard : partition.shards) EXPECT_TRUE(shard.empty());
}

TEST(PartitionUniform, EvenSplit) {
  TripleList triples(10, Triple{0, 0, 1});
  const auto shards = partition_uniform(triples, 4);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards[0].size(), 3u);
  EXPECT_EQ(shards[1].size(), 3u);
  EXPECT_EQ(shards[2].size(), 2u);
  EXPECT_EQ(shards[3].size(), 2u);
}

TEST(PartitionUniform, PreservesOrderAndContent) {
  TripleList triples;
  for (int i = 0; i < 7; ++i) triples.push_back({i, 0, i + 1});
  const auto shards = partition_uniform(triples, 3);
  std::size_t idx = 0;
  for (const auto& shard : shards) {
    for (const Triple& t : shard) {
      EXPECT_EQ(t, triples[idx++]);
    }
  }
  EXPECT_EQ(idx, triples.size());
}

TEST(PartitionUniform, MoreRanksThanTriples) {
  TripleList triples(2, Triple{0, 0, 1});
  const auto shards = partition_uniform(triples, 5);
  EXPECT_EQ(shards[0].size(), 1u);
  EXPECT_EQ(shards[1].size(), 1u);
  EXPECT_EQ(shards[2].size(), 0u);
}

TEST(RelationPartition, ImbalanceMetric) {
  RelationPartition partition;
  partition.shards = {TripleList(6, Triple{}), TripleList(2, Triple{})};
  EXPECT_DOUBLE_EQ(partition.imbalance(), 6.0 / 4.0);
  EXPECT_EQ(partition.max_shard_size(), 6u);
  EXPECT_EQ(partition.min_shard_size(), 2u);
}

}  // namespace
}  // namespace dynkge::core
