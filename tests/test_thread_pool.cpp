#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

// The serving layer keeps its historical spelling of the shared pool type.
#include "serve/thread_pool.hpp"
static_assert(std::is_same_v<dynkge::serve::ThreadPool,
                             dynkge::util::ThreadPool>,
              "serve::ThreadPool must alias the shared util::ThreadPool");

namespace dynkge::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto future =
      pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      // Slow first task so the rest are still queued at destruction.
      pool.submit([&counter, i] {
        if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ++counter;
      });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(touched.size(), [&](std::size_t begin, std::size_t end) {
    EXPECT_LE(begin, end);
    for (std::size_t i = begin; i < end; ++i) ++touched[i];
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForSmallRange) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 3);
  // Empty range: fn never runs.
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ADD_FAILURE(); });
}

TEST(ThreadPool, ParallelForUsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  pool.parallel_for(4000, [&](std::size_t begin, std::size_t end) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::lock_guard<std::mutex> lock(mutex);
    ids.insert(std::this_thread::get_id());
    (void)begin;
    (void)end;
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t, std::size_t) {
                                   throw std::runtime_error("chunk failed");
                                 }),
               std::runtime_error);
}

// --- run_cohort: the primitive comm::Cluster runs its rank programs on ---

TEST(ThreadPool, RunCohortCoSchedulesBeyondPoolSize) {
  // All 8 bodies rendezvous before any may finish. A FIFO pool with only 2
  // workers would run 2 bodies, block them forever, and deadlock — the
  // cohort must therefore be genuinely co-scheduled.
  ThreadPool pool(2);
  constexpr std::size_t kRanks = 8;
  std::mutex mu;
  std::condition_variable cv;
  std::size_t arrived = 0;
  pool.run_cohort(kRanks, [&](std::size_t) {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived == kRanks; });
  });
  EXPECT_EQ(arrived, kRanks);
}

TEST(ThreadPool, RunCohortRunsEachRankExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> runs(16);
  pool.run_cohort(runs.size(), [&](std::size_t rank) { ++runs[rank]; });
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(ThreadPool, RunCohortZeroRanksIsANoop) {
  ThreadPool pool(2);
  pool.run_cohort(0, [](std::size_t) { ADD_FAILURE(); });
}

TEST(ThreadPool, RunCohortPropagatesRankBodyException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.run_cohort(6, [&](std::size_t rank) {
      if (rank == 3) throw std::runtime_error("rank 3 failed");
      ++completed;
    });
    FAIL() << "expected the rank body's exception to propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "rank 3 failed");
  }
  // Sibling ranks are not torn down by one rank's failure.
  EXPECT_EQ(completed.load(), 5);
}

TEST(ThreadPool, RunCohortRethrowsLowestRankError) {
  // Every rank fails; the caller must deterministically see rank 0's
  // error, not whichever thread happened to throw first.
  ThreadPool pool(4);
  try {
    pool.run_cohort(4, [](std::size_t rank) {
      throw std::runtime_error("rank " + std::to_string(rank));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "rank 0");
  }
}

TEST(ThreadPool, RunCohortWhilePoolIsBusy) {
  // Workers are pinned by slow foreign tasks; the cohort must still make
  // progress (overflow threads) and the foreign tasks still complete.
  ThreadPool pool(2);
  std::atomic<int> foreign{0};
  std::vector<std::future<void>> pending;
  for (int i = 0; i < 2; ++i) {
    pending.push_back(pool.submit([&foreign] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      ++foreign;
    }));
  }
  std::atomic<int> ranks_run{0};
  pool.run_cohort(4, [&](std::size_t) { ++ranks_run; });
  for (auto& f : pending) f.get();
  EXPECT_EQ(ranks_run.load(), 4);
  EXPECT_EQ(foreign.load(), 2);
}

}  // namespace
}  // namespace dynkge::util
