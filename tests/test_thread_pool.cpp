#include "serve/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dynkge::serve {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto future =
      pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      // Slow first task so the rest are still queued at destruction.
      pool.submit([&counter, i] {
        if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ++counter;
      });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(touched.size(), [&](std::size_t begin, std::size_t end) {
    EXPECT_LE(begin, end);
    for (std::size_t i = begin; i < end; ++i) ++touched[i];
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForSmallRange) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 3);
  // Empty range: fn never runs.
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ADD_FAILURE(); });
}

TEST(ThreadPool, ParallelForUsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  pool.parallel_for(4000, [&](std::size_t begin, std::size_t end) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::lock_guard<std::mutex> lock(mutex);
    ids.insert(std::this_thread::get_id());
    (void)begin;
    (void)end;
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t, std::size_t) {
                                   throw std::runtime_error("chunk failed");
                                 }),
               std::runtime_error);
}

}  // namespace
}  // namespace dynkge::serve
