// Blocked-kernel equivalence: the batched score/gradient/Adam kernels
// must be byte-identical to the scalar reference path — per kernel on
// adversarial inputs (h == t aliasing, non-multiple-of-4 block sizes) and
// end to end through the trainer across models, quantization modes, and
// selection strategies. "Byte-identical" is meant literally: every
// comparison below is memcmp over the raw float/double storage, not an
// epsilon check.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "kge/model.hpp"
#include "kge/model_factory.hpp"
#include "kge/adam.hpp"
#include "kge/synthetic.hpp"
#include "util/rng.hpp"

namespace dynkge::core {
namespace {

using kge::EmbeddingMatrix;
using kge::GradWork;
using kge::KgeModel;
using kge::ModelGrads;
using kge::Triple;

constexpr const char* kModels[] = {"complex", "distmult", "transe", "rotate"};

std::unique_ptr<KgeModel> seeded_model(const std::string& name) {
  auto model = kge::make_model(name, 60, 12, 12);
  util::Rng rng(7);
  model->init(rng);
  return model;
}

/// A triple list that exercises the block kernels' edge cases: size 21 is
/// not a multiple of 4 (tail handled by the scalar fallback loop), and
/// several triples have h == t (the aliased-gradient fallback).
std::vector<Triple> adversarial_triples() {
  std::vector<Triple> triples;
  util::Rng rng(11);
  for (int i = 0; i < 21; ++i) {
    Triple triple;
    triple.head = static_cast<kge::EntityId>(rng.next_below(60));
    triple.relation = static_cast<kge::RelationId>(rng.next_below(12));
    triple.tail = (i % 5 == 0)
                      ? triple.head  // h == t: self-loop
                      : static_cast<kge::EntityId>(rng.next_below(60));
    triples.push_back(triple);
  }
  return triples;
}

bool same_bytes(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size_bytes()) == 0;
}

// ---- direct kernel equivalence ---------------------------------------

TEST(BlockKernels, AllModelsAdvertiseBlockKernels) {
  for (const char* name : kModels) {
    EXPECT_TRUE(seeded_model(name)->has_block_kernels()) << name;
  }
}

TEST(BlockKernels, ScoreBlockBitIdenticalToScalar) {
  const auto triples = adversarial_triples();
  for (const char* name : kModels) {
    const auto model = seeded_model(name);
    std::vector<double> blocked(triples.size());
    model->score_triples_block(triples, blocked);
    for (std::size_t i = 0; i < triples.size(); ++i) {
      const double scalar = model->score(triples[i].head,
                                         triples[i].relation,
                                         triples[i].tail);
      // memcmp, not ==: catches a sign-of-zero or NaN-payload divergence
      // that double equality would wave through.
      EXPECT_EQ(std::memcmp(&scalar, &blocked[i], sizeof(double)), 0)
          << name << " triple " << i << ": scalar " << scalar << " blocked "
          << blocked[i];
    }
  }
}

TEST(BlockKernels, GradBlockBitIdenticalToScalar) {
  const auto triples = adversarial_triples();
  for (const char* name : kModels) {
    const auto model = seeded_model(name);

    // Scalar reference: one virtual call per work item, in order.
    ModelGrads scalar_grads = model->make_grads();
    float coeff = 0.05f;
    for (const Triple& triple : triples) {
      model->accumulate_gradients(triple.head, triple.relation, triple.tail,
                                  coeff, scalar_grads);
      coeff = -coeff * 0.9f;  // vary magnitude and sign across items
    }

    // Blocked path: create rows first (the offsets survive arena growth),
    // resolve pointers once, then hand the whole block to the model.
    ModelGrads blocked_grads = model->make_grads();
    std::vector<GradWork> work;
    std::vector<std::array<std::size_t, 3>> offsets;
    coeff = 0.05f;
    for (const Triple& triple : triples) {
      work.push_back({triple.head, triple.relation, triple.tail, coeff});
      offsets.push_back(
          {blocked_grads.entity.accumulate_offset(triple.head),
           blocked_grads.entity.accumulate_offset(triple.tail),
           blocked_grads.relation.accumulate_offset(triple.relation)});
      coeff = -coeff * 0.9f;
    }
    for (std::size_t w = 0; w < work.size(); ++w) {
      work[w].gh = blocked_grads.entity.row_at(offsets[w][0]).data();
      work[w].gt = blocked_grads.entity.row_at(offsets[w][1]).data();
      work[w].gr = blocked_grads.relation.row_at(offsets[w][2]).data();
    }
    model->accumulate_gradients_block(work, blocked_grads);

    ASSERT_EQ(scalar_grads.entity.num_rows(), blocked_grads.entity.num_rows())
        << name;
    ASSERT_EQ(scalar_grads.relation.num_rows(),
              blocked_grads.relation.num_rows())
        << name;
    for (const auto& slot : scalar_grads.entity.sorted_slots()) {
      EXPECT_TRUE(same_bytes(scalar_grads.entity.row(slot.id),
                             blocked_grads.entity.row(slot.id)))
          << name << " entity row " << slot.id;
    }
    for (const auto& slot : scalar_grads.relation.sorted_slots()) {
      EXPECT_TRUE(same_bytes(scalar_grads.relation.row(slot.id),
                             blocked_grads.relation.row(slot.id)))
          << name << " relation row " << slot.id;
    }
  }
}

// ---- blocked Adam ----------------------------------------------------

kge::SparseGrad make_test_grads(std::int32_t width) {
  kge::SparseGrad grads(width);
  util::Rng rng(23);
  for (std::int32_t id : {17, 3, 41, 0, 29}) {  // deliberately unsorted
    auto row = grads.accumulate(id);
    for (float& x : row) {
      x = static_cast<float>(rng.next_double() * 2.0 - 1.0);
    }
  }
  return grads;
}

TEST(BlockKernels, AdamUpdateRowsMatchesPerRowUpdates) {
  kge::AdamConfig config;
  config.learning_rate = 0.01;
  config.weight_decay = 1e-4;
  EmbeddingMatrix params_scalar(48, 12);
  util::Rng rng(31);
  for (float& x : params_scalar.flat()) {
    x = static_cast<float>(rng.next_double());
  }
  EmbeddingMatrix params_blocked = params_scalar;

  kge::RowAdam scalar_opt(48, 12, config);
  kge::RowAdam blocked_opt(48, 12, config);
  const kge::SparseGrad grads = make_test_grads(12);
  // Two steps so the second one exercises carried moment state too.
  for (int step = 0; step < 2; ++step) {
    scalar_opt.begin_step();
    blocked_opt.begin_step();
    for (const auto& slot : grads.sorted_slots()) {
      scalar_opt.update_row(slot.id, grads.row(slot.id), params_scalar);
    }
    blocked_opt.update_rows(grads, params_blocked);
    EXPECT_TRUE(same_bytes(params_scalar.flat(), params_blocked.flat()))
        << "step " << step;
  }
}

TEST(BlockKernels, AdamUpdateRowsScaledMatchesScaleThenUpdate) {
  kge::AdamConfig config;
  config.learning_rate = 0.02;
  EmbeddingMatrix params_scalar(48, 12);
  util::Rng rng(37);
  for (float& x : params_scalar.flat()) {
    x = static_cast<float>(rng.next_double());
  }
  EmbeddingMatrix params_blocked = params_scalar;
  const float scale = 1.0f / 3.0f;

  kge::RowAdam scalar_opt(48, 12, config);
  kge::RowAdam blocked_opt(48, 12, config);
  kge::SparseGrad grads_scalar = make_test_grads(12);
  kge::SparseGrad grads_blocked = make_test_grads(12);
  scalar_opt.begin_step();
  blocked_opt.begin_step();
  // Scalar relation-partition shape: scale the row, then update it.
  for (const auto& slot : grads_scalar.sorted_slots()) {
    auto row = grads_scalar.row(slot.id);
    for (float& x : row) x *= scale;
    scalar_opt.update_row(slot.id, row, params_scalar);
  }
  blocked_opt.update_rows_scaled(grads_blocked, scale, params_blocked);
  EXPECT_TRUE(same_bytes(params_scalar.flat(), params_blocked.flat()));
}

// ---- end-to-end trainer equivalence ----------------------------------

const kge::Dataset& tiny_dataset() {
  static const kge::Dataset dataset = kge::generate_synthetic([] {
    kge::SyntheticSpec spec;
    spec.num_entities = 300;
    spec.num_relations = 24;
    spec.num_triples = 4000;
    spec.num_latent_types = 6;
    spec.seed = 99;
    return spec;
  }());
  return dataset;
}

struct TrainerCase {
  const char* model;
  QuantMode quant;
  SelectionMode selection;
};

std::string case_name(const testing::TestParamInfo<TrainerCase>& info) {
  std::string name = info.param.model;
  name += info.param.quant == QuantMode::kNone     ? "_raw"
          : info.param.quant == QuantMode::kOneBit ? "_1bit"
                                                   : "_2bit";
  name += info.param.selection == SelectionMode::kNone       ? "_dense"
          : info.param.selection == SelectionMode::kBernoulli ? "_rs"
                                                              : "_topk";
  return name;
}

class TrainerBlockEquivalence : public testing::TestWithParam<TrainerCase> {};

TEST_P(TrainerBlockEquivalence, BlockedPathIsByteIdentical) {
  const TrainerCase& param = GetParam();
  TrainConfig config;
  config.model_name = param.model;
  config.embedding_rank = 8;
  config.num_nodes = 2;
  config.batch_size = 200;
  config.max_epochs = 5;
  config.lr.base_lr = 0.01;
  config.lr.tolerance = 6;
  config.compute_final_metrics = false;
  config.seed = 4242;
  // All-gather so quantization and selection are actually on the wire;
  // sample selection (4 sampled, 1 used) drives the blocked hard-negative
  // scoring path as well.
  config.strategy.comm = CommMode::kAllGather;
  config.strategy.quant = param.quant;
  config.strategy.selection = param.selection;
  if (param.selection == SelectionMode::kTopK) {
    // Tight enough to actually drop rows at batch 200, with error
    // feedback so the dropped mass flows through later steps too.
    config.strategy.topk_k = 24;
    config.strategy.selection_residual = true;
  }
  config.strategy.negatives_sampled = 4;
  config.strategy.negatives_used = 1;

  config.block_kernels = false;
  const auto scalar = DistributedTrainer(tiny_dataset(), config).train();
  config.block_kernels = true;
  const auto blocked = DistributedTrainer(tiny_dataset(), config).train();

  ASSERT_EQ(scalar.epochs, blocked.epochs);
  EXPECT_TRUE(same_bytes(scalar.model->entities().flat(),
                         blocked.model->entities().flat()));
  EXPECT_TRUE(same_bytes(scalar.model->relations().flat(),
                         blocked.model->relations().flat()));
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsQuantSelection, TrainerBlockEquivalence,
    testing::ValuesIn([] {
      std::vector<TrainerCase> cases;
      for (const char* model : kModels) {
        for (const QuantMode quant :
             {QuantMode::kNone, QuantMode::kOneBit, QuantMode::kTwoBit}) {
          for (const SelectionMode selection :
               {SelectionMode::kNone, SelectionMode::kBernoulli,
                SelectionMode::kTopK}) {
            cases.push_back({model, quant, selection});
          }
        }
      }
      return cases;
    }()),
    case_name);

}  // namespace
}  // namespace dynkge::core
