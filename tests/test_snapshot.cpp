// Property-based tests for the training-snapshot format ("DKGS" v3):
// random snapshots must round-trip byte-exactly, and corrupted inputs —
// truncations, bit flips, tag tampering, version skew — must fail loudly
// with an error naming the file and what was expected, never read garbage.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "kge/model_factory.hpp"
#include "kge/serialize.hpp"
#include "util/rng.hpp"

namespace dynkge::kge {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dynkge_snapshot_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// Recompute the trailing FNV-1a so tampered payload bytes survive the
/// checksum gate and exercise the section-level parse errors.
void reseal(std::string& file) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i + 8 < file.size(); ++i) {
    hash ^= static_cast<unsigned char>(file[i]);
    hash *= 0x100000001b3ULL;
  }
  std::memcpy(file.data() + file.size() - 8, &hash, 8);
}

void fill_random(EmbeddingMatrix& matrix, util::Rng& rng) {
  for (float& v : matrix.flat()) {
    v = static_cast<float>(rng.next_double(-2.0, 2.0));
  }
}

/// A structurally valid snapshot with every field randomized.
TrainingSnapshot random_snapshot(std::uint64_t seed) {
  util::Rng rng(seed);
  static const char* kNames[] = {"complex", "distmult", "transe", "rotate"};
  const std::string name = kNames[rng.next_below(4)];
  const auto entities = static_cast<std::int32_t>(4 + rng.next_below(40));
  const auto relations = static_cast<std::int32_t>(2 + rng.next_below(12));
  const auto rank = static_cast<std::int32_t>(2 + rng.next_below(8));
  const int num_ranks = static_cast<int>(1 + rng.next_below(4));

  TrainingSnapshot snap;
  snap.model = make_model(name, entities, relations, rank);
  snap.model->init(rng);

  for (OptimizerSnapshot* opt : {&snap.entity_opt, &snap.relation_opt}) {
    const auto rows = opt == &snap.entity_opt ? entities : relations;
    const auto width = opt == &snap.entity_opt
                           ? snap.model->entities().width()
                           : snap.model->relations().width();
    opt->step = static_cast<std::int64_t>(rng.next_below(100000));
    opt->m = EmbeddingMatrix(rows, width);
    opt->v = EmbeddingMatrix(rows, width);
    fill_random(opt->m, rng);
    fill_random(opt->v, rng);
  }

  snap.trainer.next_epoch = static_cast<std::int32_t>(rng.next_below(500));
  snap.trainer.num_nodes = num_ranks;
  snap.trainer.seed = rng.next_u64();
  snap.trainer.model_name = name;
  snap.trainer.embedding_rank = rank;
  snap.trainer.strategy_label = "drs+1bit";
  snap.trainer.total_sim_seconds = rng.next_double(0.0, 1e4);
  snap.trainer.final_val_accuracy = rng.next_double(0.0, 100.0);
  snap.trainer.checkpoints_written = static_cast<std::int32_t>(
      rng.next_below(50));

  snap.scheduler.lr = rng.next_double(1e-5, 0.1);
  snap.scheduler.best_metric = rng.next_double(0.0, 100.0);
  snap.scheduler.stale_epochs = static_cast<std::int32_t>(rng.next_below(20));
  snap.scheduler.stopped = rng.next_bernoulli(0.3);

  snap.comm_selector.switched = rng.next_bernoulli(0.5);
  snap.comm_selector.last_allreduce_time = rng.next_double(0.0, 10.0);
  snap.comm_selector.epochs_recorded =
      static_cast<std::int32_t>(rng.next_below(200));
  snap.comm_selector.allreduce_epochs =
      static_cast<std::int32_t>(rng.next_below(200));

  for (int r = 0; r < num_ranks; ++r) {
    snap.rank_rng_seeds.push_back(rng.next_u64());
    std::string blob;
    const std::size_t blob_size = rng.next_below(256);
    blob.reserve(blob_size);
    for (std::size_t i = 0; i < blob_size; ++i) {
      blob.push_back(static_cast<char>(rng.next_below(256)));
    }
    snap.rank_residuals.push_back(std::move(blob));
  }
  return snap;
}

void expect_equal(const TrainingSnapshot& a, const TrainingSnapshot& b) {
  ASSERT_NE(b.model, nullptr);
  ASSERT_EQ(a.model->name(), b.model->name());
  const auto ae = a.model->entities().flat();
  const auto be = b.model->entities().flat();
  ASSERT_EQ(ae.size(), be.size());
  EXPECT_EQ(0, std::memcmp(ae.data(), be.data(), ae.size_bytes()));
  const auto ar = a.model->relations().flat();
  const auto br = b.model->relations().flat();
  ASSERT_EQ(ar.size(), br.size());
  EXPECT_EQ(0, std::memcmp(ar.data(), br.data(), ar.size_bytes()));

  EXPECT_EQ(a.entity_opt.step, b.entity_opt.step);
  EXPECT_EQ(0, std::memcmp(a.entity_opt.m.flat().data(),
                           b.entity_opt.m.flat().data(),
                           a.entity_opt.m.flat().size_bytes()));
  EXPECT_EQ(0, std::memcmp(a.entity_opt.v.flat().data(),
                           b.entity_opt.v.flat().data(),
                           a.entity_opt.v.flat().size_bytes()));
  EXPECT_EQ(a.relation_opt.step, b.relation_opt.step);
  EXPECT_EQ(0, std::memcmp(a.relation_opt.m.flat().data(),
                           b.relation_opt.m.flat().data(),
                           a.relation_opt.m.flat().size_bytes()));
  EXPECT_EQ(0, std::memcmp(a.relation_opt.v.flat().data(),
                           b.relation_opt.v.flat().data(),
                           a.relation_opt.v.flat().size_bytes()));

  EXPECT_EQ(a.trainer.next_epoch, b.trainer.next_epoch);
  EXPECT_EQ(a.trainer.num_nodes, b.trainer.num_nodes);
  EXPECT_EQ(a.trainer.seed, b.trainer.seed);
  EXPECT_EQ(a.trainer.model_name, b.trainer.model_name);
  EXPECT_EQ(a.trainer.embedding_rank, b.trainer.embedding_rank);
  EXPECT_EQ(a.trainer.strategy_label, b.trainer.strategy_label);
  EXPECT_DOUBLE_EQ(a.trainer.total_sim_seconds, b.trainer.total_sim_seconds);
  EXPECT_DOUBLE_EQ(a.trainer.final_val_accuracy,
                   b.trainer.final_val_accuracy);
  EXPECT_EQ(a.trainer.checkpoints_written, b.trainer.checkpoints_written);

  EXPECT_DOUBLE_EQ(a.scheduler.lr, b.scheduler.lr);
  EXPECT_DOUBLE_EQ(a.scheduler.best_metric, b.scheduler.best_metric);
  EXPECT_EQ(a.scheduler.stale_epochs, b.scheduler.stale_epochs);
  EXPECT_EQ(a.scheduler.stopped, b.scheduler.stopped);

  EXPECT_EQ(a.comm_selector.switched, b.comm_selector.switched);
  EXPECT_DOUBLE_EQ(a.comm_selector.last_allreduce_time,
                   b.comm_selector.last_allreduce_time);
  EXPECT_EQ(a.comm_selector.epochs_recorded,
            b.comm_selector.epochs_recorded);
  EXPECT_EQ(a.comm_selector.allreduce_epochs,
            b.comm_selector.allreduce_epochs);

  EXPECT_EQ(a.rank_rng_seeds, b.rank_rng_seeds);
  EXPECT_EQ(a.rank_residuals, b.rank_residuals);
}

TEST_F(SnapshotTest, RandomSnapshotsRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const TrainingSnapshot snap = random_snapshot(seed);
    const std::string file = path("s" + std::to_string(seed) + ".dkgs");
    save_snapshot(snap, file);
    const TrainingSnapshot loaded = load_snapshot(file);
    expect_equal(snap, loaded);
  }
}

TEST_F(SnapshotTest, SaveIsByteDeterministic) {
  const TrainingSnapshot snap = random_snapshot(77);
  save_snapshot(snap, path("x.dkgs"));
  save_snapshot(snap, path("y.dkgs"));
  EXPECT_EQ(read_file(path("x.dkgs")), read_file(path("y.dkgs")));
}

TEST_F(SnapshotTest, InMemoryCodecMatchesTheFileCodecByteForByte) {
  // serialize/deserialize (the elastic-recovery path) must be the exact
  // codec save/load use — same sealed bytes, same state back.
  const TrainingSnapshot snap = random_snapshot(31);
  const std::string sealed = serialize_snapshot(snap);
  save_snapshot(snap, path("disk.dkgs"));
  EXPECT_EQ(sealed, read_file(path("disk.dkgs")));

  const TrainingSnapshot decoded =
      deserialize_snapshot(sealed, "in-memory snapshot");
  expect_equal(snap, decoded);

  write_snapshot_bytes(sealed, path("bytes.dkgs"));
  EXPECT_EQ(read_file(path("bytes.dkgs")), sealed);
}

TEST_F(SnapshotTest, DeserializeNamesTheSourceOnCorruption) {
  std::string sealed = serialize_snapshot(random_snapshot(32));
  sealed[sealed.size() / 2] ^= 0x01;
  try {
    deserialize_snapshot(sealed, "elastic recovery snapshot");
    FAIL() << "corrupted bytes accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("elastic recovery snapshot"),
              std::string::npos)
        << error.what();
  }
}

TEST_F(SnapshotTest, TruncationAtAnyPointFailsLoudly) {
  const TrainingSnapshot snap = random_snapshot(3);
  save_snapshot(snap, path("t.dkgs"));
  const std::string full = read_file(path("t.dkgs"));
  util::Rng rng(11);
  for (int i = 0; i < 24; ++i) {
    const std::size_t cut = rng.next_below(full.size());
    write_file(path("cut.dkgs"), full.substr(0, cut));
    EXPECT_THROW(load_snapshot(path("cut.dkgs")), std::runtime_error)
        << "truncation at byte " << cut << " was accepted";
  }
  // The empty file too.
  write_file(path("cut.dkgs"), "");
  EXPECT_THROW(load_snapshot(path("cut.dkgs")), std::runtime_error);
}

TEST_F(SnapshotTest, BitFlipsAnywhereFailLoudly) {
  const TrainingSnapshot snap = random_snapshot(5);
  save_snapshot(snap, path("b.dkgs"));
  const std::string full = read_file(path("b.dkgs"));
  util::Rng rng(13);
  for (int i = 0; i < 48; ++i) {
    std::string corrupt = full;
    const std::size_t byte = rng.next_below(corrupt.size());
    corrupt[byte] = static_cast<char>(
        static_cast<unsigned char>(corrupt[byte]) ^
        (1u << rng.next_below(8)));
    write_file(path("flip.dkgs"), corrupt);
    EXPECT_THROW(load_snapshot(path("flip.dkgs")), std::runtime_error)
        << "bit flip in byte " << byte << " was accepted";
  }
}

TEST_F(SnapshotTest, VersionMismatchNamesExpectedAndFound) {
  const TrainingSnapshot snap = random_snapshot(9);
  save_snapshot(snap, path("v.dkgs"));
  std::string file = read_file(path("v.dkgs"));
  file[4] = 9;  // version field (u32 little-endian after the magic)
  write_file(path("v.dkgs"), file);
  try {
    load_snapshot(path("v.dkgs"));
    FAIL() << "wrong version was accepted";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("expected 3"), std::string::npos) << what;
    EXPECT_NE(what.find("found 9"), std::string::npos) << what;
    EXPECT_NE(what.find("v.dkgs"), std::string::npos) << what;
  }
}

TEST_F(SnapshotTest, WrongMagicNamesBothMagics) {
  const TrainingSnapshot snap = random_snapshot(15);
  save_snapshot(snap, path("m.dkgs"));
  // A snapshot is not a model file and vice versa.
  try {
    load_model(path("m.dkgs"));
    FAIL() << "load_model accepted a snapshot file";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("DKGE"), std::string::npos) << what;
    EXPECT_NE(what.find("DKGS"), std::string::npos) << what;
  }
}

TEST_F(SnapshotTest, TamperedSectionTagNamesTheSection) {
  const TrainingSnapshot snap = random_snapshot(21);
  save_snapshot(snap, path("tag.dkgs"));
  std::string file = read_file(path("tag.dkgs"));
  // First section tag sits right after magic + version; reseal so the
  // checksum gate passes and the section parser sees the bad tag.
  std::memcpy(file.data() + 8, "XXXX", 4);
  reseal(file);
  write_file(path("tag.dkgs"), file);
  try {
    load_snapshot(path("tag.dkgs"));
    FAIL() << "tampered section tag was accepted";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("MODL"), std::string::npos) << what;
    EXPECT_NE(what.find("XXXX"), std::string::npos) << what;
  }
}

TEST_F(SnapshotTest, ModelFileVersionErrorNamesExpectedAndFound) {
  const TrainingSnapshot snap = random_snapshot(25);
  save_model(*snap.model, path("m.dkge"));
  std::string file = read_file(path("m.dkge"));
  file[4] = 7;
  write_file(path("m.dkge"), file);
  try {
    load_model(path("m.dkge"));
    FAIL() << "wrong model version was accepted";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("expected 1"), std::string::npos) << what;
    EXPECT_NE(what.find("found 7"), std::string::npos) << what;
  }
}

TEST_F(SnapshotTest, MissingFileNamesThePath) {
  try {
    load_snapshot(path("absent.dkgs"));
    FAIL() << "missing snapshot was accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("absent.dkgs"),
              std::string::npos);
  }
}

TEST_F(SnapshotTest, SaveRejectsInconsistentRankSections) {
  TrainingSnapshot snap = random_snapshot(31);
  snap.rank_residuals.pop_back();
  snap.rank_rng_seeds.push_back(1);  // now definitely mismatched
  EXPECT_THROW(save_snapshot(snap, path("bad.dkgs")), std::runtime_error);
}

TEST_F(SnapshotTest, AtomicWriteLeavesNoTornFile) {
  // Write A, then overwrite with B: the rename is atomic, so a reader at
  // any point sees a complete snapshot. Also the temp file of a normal
  // write must not linger.
  const TrainingSnapshot a = random_snapshot(41);
  const TrainingSnapshot b = random_snapshot(42);
  save_snapshot(a, path("w.dkgs"));
  save_snapshot(b, path("w.dkgs"));
  const TrainingSnapshot loaded = load_snapshot(path("w.dkgs"));
  expect_equal(b, loaded);
  EXPECT_FALSE(std::filesystem::exists(path("w.dkgs.tmp")));
}

}  // namespace
}  // namespace dynkge::kge
