#include "kge/graph_builder.hpp"

#include <gtest/gtest.h>

namespace dynkge::kge {
namespace {

GraphBuilder small_graph() {
  GraphBuilder graph;
  graph.fact("delhi", "capital_of", "india");
  graph.fact("paris", "capital_of", "france");
  graph.fact("delhi", "located_in", "india");
  graph.fact("paris", "located_in", "france");
  graph.fact("india", "borders", "china");
  return graph;
}

TEST(GraphBuilder, InternsNamesOnce) {
  GraphBuilder graph = small_graph();
  EXPECT_EQ(graph.num_entities(), 5u);   // delhi india paris france china
  EXPECT_EQ(graph.num_relations(), 3u);  // capital_of located_in borders
  EXPECT_EQ(graph.num_facts(), 5u);
  EXPECT_EQ(graph.entity("delhi"), graph.entity("delhi"));
  EXPECT_NE(graph.entity("delhi"), graph.entity("paris"));
}

TEST(GraphBuilder, NamesRoundTrip) {
  GraphBuilder graph = small_graph();
  EXPECT_EQ(graph.entity_name(graph.entity("india")), "india");
  EXPECT_EQ(graph.relation_name(graph.relation("borders")), "borders");
}

TEST(GraphBuilder, TailHoldoutSplit) {
  GraphBuilder graph = small_graph();
  const Dataset ds = graph.dataset_with_tail_holdout(2);
  EXPECT_EQ(ds.train().size(), 3u);
  EXPECT_EQ(ds.test().size(), 2u);
  EXPECT_EQ(ds.valid().size(), 2u);
  // Last recorded fact lands in test.
  EXPECT_TRUE(ds.contains(graph.entity("india"), graph.relation("borders"),
                          graph.entity("china")));
}

TEST(GraphBuilder, TailHoldoutRejectsTooLarge) {
  GraphBuilder graph = small_graph();
  EXPECT_THROW(graph.dataset_with_tail_holdout(5), std::invalid_argument);
  EXPECT_THROW(graph.dataset_with_tail_holdout(99), std::invalid_argument);
}

TEST(GraphBuilder, RandomSplitCoversAllFacts) {
  GraphBuilder graph;
  for (int i = 0; i < 200; ++i) {
    graph.fact("e" + std::to_string(i % 40), "r" + std::to_string(i % 5),
               "e" + std::to_string((i + 7) % 40));
  }
  const Dataset ds = graph.dataset_with_random_split(0.1, 0.1, 42);
  EXPECT_EQ(ds.num_facts(), graph.num_facts());
  EXPECT_GT(ds.test().size(), 0u);
  EXPECT_GT(ds.valid().size(), 0u);
}

TEST(GraphBuilder, RandomSplitKeepsVocabInTrain) {
  GraphBuilder graph;
  for (int i = 0; i < 300; ++i) {
    graph.fact("e" + std::to_string(i % 30), "r" + std::to_string(i % 6),
               "e" + std::to_string((i + 11) % 30));
  }
  const Dataset ds = graph.dataset_with_random_split(0.15, 0.15, 7);
  std::vector<bool> entity_in_train(ds.num_entities(), false);
  std::vector<bool> relation_in_train(ds.num_relations(), false);
  for (const Triple& t : ds.train()) {
    entity_in_train[t.head] = true;
    entity_in_train[t.tail] = true;
    relation_in_train[t.relation] = true;
  }
  for (const std::span<const Triple> split : {ds.valid(), ds.test()}) {
    for (const Triple& t : split) {
      EXPECT_TRUE(entity_in_train[t.head]);
      EXPECT_TRUE(entity_in_train[t.tail]);
      EXPECT_TRUE(relation_in_train[t.relation]);
    }
  }
}

TEST(GraphBuilder, RandomSplitDeterministic) {
  GraphBuilder a = small_graph();
  GraphBuilder b = small_graph();
  const Dataset da = a.dataset_with_random_split(0.2, 0.2, 3);
  const Dataset db = b.dataset_with_random_split(0.2, 0.2, 3);
  ASSERT_EQ(da.train().size(), db.train().size());
  for (std::size_t i = 0; i < da.train().size(); ++i) {
    EXPECT_EQ(da.train()[i], db.train()[i]);
  }
}

TEST(GraphBuilder, EmptyGraphRejected) {
  GraphBuilder graph;
  EXPECT_THROW(graph.dataset_with_random_split(0.1, 0.1, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace dynkge::kge
