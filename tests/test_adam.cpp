#include "kge/adam.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dynkge::kge {
namespace {

TEST(RowAdam, RequiresBeginStep) {
  RowAdam adam(2, 3);
  EmbeddingMatrix params(2, 3);
  const std::vector<float> grad(3, 1.0f);
  EXPECT_THROW(adam.update_row(0, grad, params), std::logic_error);
}

TEST(RowAdam, RejectsWidthMismatch) {
  RowAdam adam(2, 3);
  EmbeddingMatrix params(2, 3);
  adam.begin_step();
  const std::vector<float> grad(4, 1.0f);
  EXPECT_THROW(adam.update_row(0, grad, params), std::invalid_argument);
}

TEST(RowAdam, FirstStepMovesByLearningRate) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  AdamConfig config;
  config.learning_rate = 0.1;
  RowAdam adam(1, 2, config);
  EmbeddingMatrix params(1, 2);
  adam.begin_step();
  const std::vector<float> grad{1.0f, -2.0f};
  adam.update_row(0, grad, params);
  EXPECT_NEAR(params.row(0)[0], -0.1f, 1e-5);
  EXPECT_NEAR(params.row(0)[1], 0.1f, 1e-5);
}

TEST(RowAdam, ConvergesOnQuadratic) {
  // Minimize f(x) = ||x - target||^2 via its gradient 2(x - target).
  AdamConfig config;
  config.learning_rate = 0.05;
  RowAdam adam(1, 4, config);
  EmbeddingMatrix params(1, 4);
  const std::vector<float> target{1.0f, -2.0f, 0.5f, 3.0f};
  for (int step = 0; step < 2000; ++step) {
    adam.begin_step();
    std::vector<float> grad(4);
    for (int i = 0; i < 4; ++i) {
      grad[i] = 2.0f * (params.row(0)[i] - target[i]);
    }
    adam.update_row(0, grad, params);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(params.row(0)[i], target[i], 1e-2);
  }
}

TEST(RowAdam, WeightDecayShrinksParameters) {
  AdamConfig config;
  config.learning_rate = 0.01;
  config.weight_decay = 0.1;
  RowAdam adam(1, 2, config);
  EmbeddingMatrix params(1, 2);
  params.row(0)[0] = 5.0f;
  params.row(0)[1] = -5.0f;
  const std::vector<float> zero_grad(2, 0.0f);
  for (int step = 0; step < 2000; ++step) {
    adam.begin_step();
    adam.update_row(0, zero_grad, params);
  }
  EXPECT_LT(std::fabs(params.row(0)[0]), 1.0f);
  EXPECT_LT(std::fabs(params.row(0)[1]), 1.0f);
}

TEST(RowAdam, LazyRowsKeepIndependentMoments) {
  // Updating row 0 must not disturb row 1's moments or parameters.
  RowAdam adam(2, 2);
  EmbeddingMatrix params(2, 2);
  params.row(1)[0] = 3.0f;
  const std::vector<float> grad{1.0f, 1.0f};
  adam.begin_step();
  adam.update_row(0, grad, params);
  EXPECT_FLOAT_EQ(params.row(1)[0], 3.0f);
}

TEST(RowAdam, DeterministicAcrossInstances) {
  // Two optimizers fed identical steps produce identical parameters — the
  // replica-consistency primitive for distributed training.
  RowAdam a(3, 4), b(3, 4);
  EmbeddingMatrix pa(3, 4), pb(3, 4);
  util::Rng rng(77);
  for (int step = 0; step < 50; ++step) {
    a.begin_step();
    b.begin_step();
    std::vector<float> grad(4);
    for (auto& g : grad) g = static_cast<float>(rng.next_double(-1, 1));
    const auto row = static_cast<std::int32_t>(rng.next_below(3));
    a.update_row(row, grad, pa);
    b.update_row(row, grad, pb);
  }
  for (std::size_t i = 0; i < pa.flat().size(); ++i) {
    EXPECT_EQ(pa.flat()[i], pb.flat()[i]);
  }
}

TEST(RowAdam, LearningRateIsMutable) {
  RowAdam adam(1, 1);
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.001);
  adam.set_learning_rate(0.004);
  EXPECT_DOUBLE_EQ(adam.learning_rate(), 0.004);
}

TEST(RowAdam, StepCounterAdvances) {
  RowAdam adam(1, 1);
  EXPECT_EQ(adam.step(), 0);
  adam.begin_step();
  adam.begin_step();
  EXPECT_EQ(adam.step(), 2);
}

TEST(RowAdam, SecondMomentDampensLargeGradients) {
  // A giant gradient must still move parameters by roughly lr (Adam's
  // normalization), not by the raw gradient magnitude.
  AdamConfig config;
  config.learning_rate = 0.01;
  RowAdam adam(1, 1, config);
  EmbeddingMatrix params(1, 1);
  adam.begin_step();
  const std::vector<float> grad{1e6f};
  adam.update_row(0, grad, params);
  EXPECT_NEAR(params.row(0)[0], -0.01f, 1e-4);
}

}  // namespace
}  // namespace dynkge::kge
