#include "serve/query_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace dynkge::serve {
namespace {

TopKQuery query(kge::EntityId entity, kge::RelationId relation = 0,
                std::int32_t k = 10,
                Direction direction = Direction::kTail,
                bool filter = false) {
  return TopKQuery{direction, entity, relation, k, filter};
}

QueryCache::ResultPtr result_of(double score) {
  return std::make_shared<const TopKResult>(
      TopKResult{ScoredEntity{1, score}});
}

TEST(PackQuery, DistinguishesEveryField) {
  const TopKQuery base = query(3, 5, 10);
  EXPECT_NE(pack_query(base), pack_query(query(4, 5, 10)));
  EXPECT_NE(pack_query(base), pack_query(query(3, 6, 10)));
  EXPECT_NE(pack_query(base), pack_query(query(3, 5, 11)));
  EXPECT_NE(pack_query(base),
            pack_query(query(3, 5, 10, Direction::kHead)));
  EXPECT_NE(pack_query(base),
            pack_query(query(3, 5, 10, Direction::kTail, true)));
  EXPECT_EQ(pack_query(base), pack_query(query(3, 5, 10)));
}

TEST(QueryCache, MissThenHit) {
  QueryCache cache(16, 2);
  EXPECT_EQ(cache.get(query(1)), nullptr);
  cache.put(query(1), result_of(2.5));
  const auto hit = cache.get(query(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ((*hit)[0].score, 2.5);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(QueryCache, EvictsLeastRecentlyUsed) {
  // One shard so the LRU order is global and deterministic.
  QueryCache cache(2, 1);
  cache.put(query(1), result_of(1));
  cache.put(query(2), result_of(2));
  ASSERT_NE(cache.get(query(1)), nullptr);  // 1 is now most-recent
  cache.put(query(3), result_of(3));        // evicts 2
  EXPECT_NE(cache.get(query(1)), nullptr);
  EXPECT_EQ(cache.get(query(2)), nullptr);
  EXPECT_NE(cache.get(query(3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(QueryCache, PutRefreshesExistingKey) {
  QueryCache cache(4, 1);
  cache.put(query(1), result_of(1.0));
  cache.put(query(1), result_of(9.0));
  const auto hit = cache.get(query(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ((*hit)[0].score, 9.0);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(QueryCache, ZeroCapacityDisables) {
  QueryCache cache(0);
  cache.put(query(1), result_of(1.0));
  EXPECT_EQ(cache.get(query(1)), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(QueryCache, ClearDropsEntriesKeepsCounters) {
  QueryCache cache(8, 2);
  cache.put(query(1), result_of(1.0));
  ASSERT_NE(cache.get(query(1)), nullptr);
  cache.clear();
  EXPECT_EQ(cache.get(query(1)), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(QueryCache, EvictedResultStaysAliveForHolders) {
  QueryCache cache(1, 1);
  cache.put(query(1), result_of(4.0));
  const auto held = cache.get(query(1));
  cache.put(query(2), result_of(5.0));  // evicts query(1)'s entry
  ASSERT_NE(held, nullptr);
  EXPECT_DOUBLE_EQ((*held)[0].score, 4.0);
}

QueryCache::ResultPtr result_with(std::vector<kge::EntityId> entities) {
  TopKResult result;
  for (const auto e : entities) {
    result.push_back({e, static_cast<double>(e)});
  }
  return std::make_shared<const TopKResult>(std::move(result));
}

TEST(QueryCache, InvalidateEntitiesDropsQuerySideDependents) {
  QueryCache cache(16, 2);
  cache.put(query(7), result_of(1.0));
  cache.put(query(8), result_of(2.0));
  const std::vector<kge::EntityId> touched{7};
  EXPECT_EQ(cache.invalidate_entities(touched), 1u);
  EXPECT_EQ(cache.get(query(7)), nullptr);   // its query entity was touched
  EXPECT_NE(cache.get(query(8)), nullptr);   // unrelated entry still hits
}

TEST(QueryCache, InvalidateEntitiesDropsResultSideDependents) {
  QueryCache cache(16, 2);
  cache.put(query(1), result_with({10, 11, 12}));
  cache.put(query(2), result_with({20, 21}));
  cache.put(query(3), result_with({30}));
  const std::vector<kge::EntityId> touched{11, 30};
  EXPECT_EQ(cache.invalidate_entities(touched), 2u);
  EXPECT_EQ(cache.get(query(1)), nullptr);  // 11 in its top-k
  EXPECT_NE(cache.get(query(2)), nullptr);  // untouched
  EXPECT_EQ(cache.get(query(3)), nullptr);  // 30 in its top-k
}

TEST(QueryCache, InvalidationCountersAccumulate) {
  QueryCache cache(16, 2);
  // Result lists must not alias entity 1, or the keyed invalidation
  // would drop both entries through the result-side dependency.
  cache.put(query(1), result_with({10}));
  cache.put(query(2), result_with({20}));
  const std::vector<kge::EntityId> touched{1};
  cache.invalidate_entities(touched);
  EXPECT_EQ(cache.clear(), 1u);  // query(2) remained
  const auto stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_EQ(stats.invalidated_entries, 2u);
}

TEST(QueryCache, VersionLagExpiresStaleEntries) {
  QueryCache cache(16, 2);
  cache.set_max_version_lag(2);
  cache.put(query(1), result_of(1.0), /*version=*/5);
  // Within the lag bound: versions 5..7 still serve the entry.
  EXPECT_NE(cache.get(query(1), 5), nullptr);
  EXPECT_NE(cache.get(query(1), 7), nullptr);
  // Past the bound: treated as a miss and erased.
  EXPECT_EQ(cache.get(query(1), 8), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  // Version 0 (unversioned caller) never expires anything.
  cache.put(query(2), result_of(2.0), /*version=*/1);
  EXPECT_NE(cache.get(query(2), 0), nullptr);
}

TEST(QueryCache, ZeroLagNeverExpires) {
  QueryCache cache(16, 2);
  cache.put(query(1), result_of(1.0), /*version=*/1);
  EXPECT_NE(cache.get(query(1), 1000), nullptr);
}

// Readers hammer get() while another thread runs entity-keyed
// invalidations and a third publishes puts — the TSan job runs this to
// prove invalidate_entities cannot race the lookup path.
TEST(QueryCache, ConcurrentInvalidateAndGetIsSafe) {
  QueryCache cache(128, 8);
  constexpr int kEntities = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 4000; ++i) {
        const auto e = static_cast<kge::EntityId>((t * 13 + i) % kEntities);
        if (auto hit = cache.get(query(e))) {
          EXPECT_FALSE(hit->empty());
        } else {
          cache.put(query(e), result_with({e, (e + 1) % kEntities}));
        }
      }
    });
  }
  threads.emplace_back([&cache] {
    for (int i = 0; i < 2000; ++i) {
      const std::vector<kge::EntityId> touched{
          static_cast<kge::EntityId>(i % kEntities),
          static_cast<kge::EntityId>((i * 7) % kEntities)};
      cache.invalidate_entities(touched);
    }
  });
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4u * 4000u);
  EXPECT_EQ(stats.invalidations, 2000u);
}

TEST(QueryCache, ConcurrentMixedTrafficIsSafe) {
  QueryCache cache(64, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 2000; ++i) {
        const auto q = query(static_cast<kge::EntityId>((t * 7 + i) % 200));
        if (auto hit = cache.get(q)) {
          EXPECT_FALSE(hit->empty());
        } else {
          cache.put(q, result_of(static_cast<double>(i)));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 8u * 2000u);
  EXPECT_LE(stats.entries, 64u);
}

}  // namespace
}  // namespace dynkge::serve
