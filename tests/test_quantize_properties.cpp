// Property-style sweeps over the codec space: every (mode, scale, width)
// combination must satisfy the same invariants for arbitrary payloads.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/quantize.hpp"
#include "util/span_math.hpp"

namespace dynkge::core {
namespace {

using Param = std::tuple<QuantMode, OneBitScale, int>;

class CodecPropertyP : public ::testing::TestWithParam<Param> {};

INSTANTIATE_TEST_SUITE_P(
    Codecs, CodecPropertyP,
    ::testing::Combine(
        ::testing::Values(QuantMode::kNone, QuantMode::kOneBit,
                          QuantMode::kTwoBit),
        ::testing::Values(OneBitScale::kMax, OneBitScale::kMean,
                          OneBitScale::kNegMax, OneBitScale::kPosMax,
                          OneBitScale::kNegMean, OneBitScale::kPosMean),
        ::testing::Values(1, 7, 8, 9, 32, 200)));

std::vector<float> random_row(int width, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> row(width);
  for (auto& v : row) v = static_cast<float>(rng.next_normal(0.0, 2.0));
  return row;
}

TEST_P(CodecPropertyP, EncodedSizeIsExact) {
  const auto [mode, scale, width] = GetParam();
  const RowCodec codec(mode, scale, width);
  const auto row = random_row(width, 1);
  util::Rng rng(2);
  std::vector<std::byte> out;
  codec.encode(5, row, out, rng);
  EXPECT_EQ(out.size(), codec.bytes_per_row());
}

TEST_P(CodecPropertyP, IdRoundTrips) {
  const auto [mode, scale, width] = GetParam();
  const RowCodec codec(mode, scale, width);
  const auto row = random_row(width, 3);
  util::Rng rng(4);
  std::vector<std::byte> out;
  for (const std::int32_t id : {0, 1, 123456, (1 << 20)}) {
    out.clear();
    codec.encode(id, row, out, rng);
    std::vector<float> decoded(width);
    EXPECT_EQ(codec.decode(out, decoded), id);
  }
}

TEST_P(CodecPropertyP, DecodedMagnitudeBounded) {
  // No codec may inflate a value beyond the row's max absolute value.
  const auto [mode, scale, width] = GetParam();
  const RowCodec codec(mode, scale, width);
  const auto row = random_row(width, 5);
  const float bound = util::amax(row) * (1.0f + 1e-5f);
  util::Rng rng(6);
  std::vector<std::byte> out;
  codec.encode(0, row, out, rng);
  std::vector<float> decoded(width);
  codec.decode(out, decoded);
  for (const float v : decoded) {
    EXPECT_LE(std::fabs(v), bound);
  }
}

TEST_P(CodecPropertyP, SignsNeverFlip) {
  // A decoded non-zero component always carries the input's sign.
  const auto [mode, scale, width] = GetParam();
  const RowCodec codec(mode, scale, width);
  const auto row = random_row(width, 7);
  util::Rng rng(8);
  std::vector<std::byte> out;
  codec.encode(0, row, out, rng);
  std::vector<float> decoded(width);
  codec.decode(out, decoded);
  for (int i = 0; i < width; ++i) {
    if (decoded[i] != 0.0f && row[i] != 0.0f) {
      EXPECT_GT(decoded[i] * row[i], 0.0f) << "component " << i;
    }
  }
}

TEST_P(CodecPropertyP, GradEncodeDecodeAccumulateConsistent) {
  // decode_accumulate(encode_grad(g)) into an empty accumulator produces
  // the same rows as decoding row by row.
  const auto [mode, scale, width] = GetParam();
  if (mode == QuantMode::kTwoBit) {
    GTEST_SKIP() << "2-bit is stochastic; per-call streams differ";
  }
  const RowCodec codec(mode, scale, width);
  kge::SparseGrad grad(width);
  util::Rng data_rng(9);
  for (const std::int32_t id : {4, 17, 99}) {
    auto row = grad.accumulate(id);
    for (auto& v : row) {
      v = static_cast<float>(data_rng.next_double(-1, 1));
    }
  }
  util::Rng rng_a(10), rng_b(10);
  std::vector<std::byte> wire;
  codec.encode_grad(grad, wire, rng_a);
  kge::SparseGrad merged(width);
  codec.decode_accumulate(wire, merged);

  ASSERT_EQ(merged.sorted_ids(), grad.sorted_ids());
  std::vector<float> reference(width);
  std::size_t offset = 0;
  for (const std::int32_t id : grad.sorted_ids()) {
    std::vector<std::byte> single;
    codec.encode(id, grad.row(id), single, rng_b);
    codec.decode(single, reference);
    const auto merged_row = merged.row(id);
    for (int i = 0; i < width; ++i) {
      EXPECT_FLOAT_EQ(merged_row[i], reference[i]);
    }
    offset += codec.bytes_per_row();
  }
}

TEST_P(CodecPropertyP, CompressionNeverExpandsBeyondRaw) {
  // For width 1 the per-row scale header dominates and quantization can
  // legitimately cost a byte more than raw; from width 2 up it never
  // expands, and the win grows linearly with width.
  const auto [mode, scale, width] = GetParam();
  if (width < 2) GTEST_SKIP() << "scale header dominates at width 1";
  const RowCodec codec(mode, scale, width);
  const RowCodec raw(QuantMode::kNone, scale, width);
  EXPECT_LE(codec.bytes_per_row(), raw.bytes_per_row());
}

TEST_P(CodecPropertyP, SameSignRowSurvivesOneSidedScales) {
  // Rows whose values all share one sign must still round-trip under the
  // one-sided scale variants (fallback path).
  const auto [mode, scale, width] = GetParam();
  const RowCodec codec(mode, scale, width);
  std::vector<float> row(width, -0.5f);
  util::Rng rng(11);
  std::vector<std::byte> out;
  codec.encode(0, row, out, rng);
  std::vector<float> decoded(width);
  codec.decode(out, decoded);
  for (const float v : decoded) {
    EXPECT_LE(v, 0.0f);  // sign preserved (or zero for 2-bit)
    EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace dynkge::core
