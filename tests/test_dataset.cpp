#include "kge/dataset.hpp"

#include <gtest/gtest.h>

#include "kge/triple.hpp"

namespace dynkge::kge {
namespace {

TEST(PackTriple, RoundTripDistinct) {
  const auto a = pack_triple(1, 2, 3);
  const auto b = pack_triple(3, 2, 1);
  const auto c = pack_triple(1, 3, 2);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(PackTriple, LargeIdsStayDistinct) {
  const auto a = pack_triple(240000, 9279, 239999);
  const auto b = pack_triple(240000, 9279, 239998);
  const auto c = pack_triple(239999, 9279, 240000);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(TripleEquality, DefaultComparison) {
  const Triple a{1, 2, 3};
  const Triple b{1, 2, 3};
  const Triple c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TripleHash, ConsistentWithEquality) {
  const TripleHash hash;
  EXPECT_EQ(hash(Triple{1, 2, 3}), hash(Triple{1, 2, 3}));
}

TEST(Dataset, BasicAccessors) {
  const Dataset ds(10, 3, {{0, 0, 1}, {1, 1, 2}}, {{2, 2, 3}}, {{3, 0, 4}});
  EXPECT_EQ(ds.num_entities(), 10);
  EXPECT_EQ(ds.num_relations(), 3);
  EXPECT_EQ(ds.train().size(), 2u);
  EXPECT_EQ(ds.valid().size(), 1u);
  EXPECT_EQ(ds.test().size(), 1u);
  EXPECT_EQ(ds.num_facts(), 4u);
}

TEST(Dataset, ContainsSeesAllSplits) {
  const Dataset ds(10, 3, {{0, 0, 1}}, {{2, 2, 3}}, {{3, 0, 4}});
  EXPECT_TRUE(ds.contains(0, 0, 1));   // train
  EXPECT_TRUE(ds.contains(2, 2, 3));   // valid
  EXPECT_TRUE(ds.contains(3, 0, 4));   // test
  EXPECT_FALSE(ds.contains(0, 0, 2));
  EXPECT_FALSE(ds.contains(Triple{1, 0, 0}));
}

TEST(Dataset, RejectsOutOfRangeEntity) {
  EXPECT_THROW(Dataset(2, 1, {{0, 0, 5}}, {}, {}), std::invalid_argument);
  EXPECT_THROW(Dataset(2, 1, {{-1, 0, 0}}, {}, {}), std::invalid_argument);
}

TEST(Dataset, RejectsOutOfRangeRelation) {
  EXPECT_THROW(Dataset(2, 1, {}, {{0, 1, 1}}, {}), std::invalid_argument);
}

TEST(Dataset, RejectsEmptyVocabulary) {
  EXPECT_THROW(Dataset(0, 1, {}, {}, {}), std::invalid_argument);
  EXPECT_THROW(Dataset(1, 0, {}, {}, {}), std::invalid_argument);
}

TEST(Dataset, RejectsIdsBeyondPacking) {
  EXPECT_THROW(Dataset(1 << 21, 1, {}, {}, {}), std::invalid_argument);
}

TEST(Dataset, SummaryMentionsCounts) {
  const Dataset ds(10, 3, {{0, 0, 1}}, {}, {});
  const std::string s = ds.summary("demo");
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("10 entities"), std::string::npos);
  EXPECT_NE(s.find("3 relations"), std::string::npos);
}

}  // namespace
}  // namespace dynkge::kge
