#include "kge/evaluator.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "kge/complex_model.hpp"
#include "kge/synthetic.hpp"

namespace dynkge::kge {
namespace {

/// A stub model whose scores are read from a lookup we control exactly.
class StubModel final : public KgeModel {
 public:
  StubModel(std::int32_t num_entities, std::int32_t num_relations)
      : KgeModel(num_entities, num_relations, 1, 1) {}

  std::string name() const override { return "Stub"; }
  void init(util::Rng&) override {}

  void set_score(EntityId h, RelationId r, EntityId t, double s) {
    scores_[pack_triple(h, r, t)] = s;
  }

  double score(EntityId h, RelationId r, EntityId t) const override {
    const auto it = scores_.find(pack_triple(h, r, t));
    return it != scores_.end() ? it->second : -100.0;
  }

  void accumulate_gradients(EntityId, RelationId, EntityId, float,
                            ModelGrads&) const override {}

 private:
  std::unordered_map<std::uint64_t, double> scores_;
};

TEST(Evaluator, PerfectRankGivesMrrOne) {
  // 4 entities, 1 relation; the true triple outranks all corruptions.
  const Dataset ds(4, 1, {{0, 0, 1}}, {{0, 0, 2}}, {{0, 0, 3}});
  StubModel model(4, 1);
  model.set_score(0, 0, 3, 10.0);  // test triple: best score everywhere
  const Evaluator eval(ds);
  const auto metrics = eval.link_prediction(model, ds.test());
  EXPECT_DOUBLE_EQ(metrics.mrr, 1.0);
  EXPECT_DOUBLE_EQ(metrics.hits1, 1.0);
  EXPECT_DOUBLE_EQ(metrics.mean_rank, 1.0);
  EXPECT_EQ(metrics.evaluated, 2u);  // head side + tail side
}

TEST(Evaluator, KnownRankComputedExactly) {
  // Tail ranking for (0,0,3): give entities 1 and 2 higher scores than the
  // true tail 3 -> raw rank 3.
  const Dataset ds(5, 1, {{4, 0, 0}}, {}, {{0, 0, 3}});
  StubModel model(5, 1);
  model.set_score(0, 0, 3, 5.0);
  model.set_score(0, 0, 1, 7.0);
  model.set_score(0, 0, 2, 6.0);
  const Evaluator eval(ds);
  EvalOptions opts;
  opts.filtered = false;
  const auto metrics = eval.link_prediction(model, ds.test(), opts);
  // Head side: (e,0,3) all score -100 except the true head 0 -> rank 1.
  // Tail side: rank 3. MRR = (1 + 1/3) / 2.
  EXPECT_NEAR(metrics.mrr, (1.0 + 1.0 / 3.0) / 2.0, 1e-12);
  EXPECT_NEAR(metrics.mean_rank, 2.0, 1e-12);
}

TEST(Evaluator, FilteringSkipsKnownTriples) {
  // Entity 1 outranks the true tail, but (0,0,1) is a known train triple,
  // so the filtered rank ignores it.
  const Dataset ds(5, 1, {{0, 0, 1}}, {}, {{0, 0, 3}});
  StubModel model(5, 1);
  model.set_score(0, 0, 3, 5.0);
  model.set_score(0, 0, 1, 7.0);
  const Evaluator eval(ds);

  EvalOptions raw;
  raw.filtered = false;
  EvalOptions filtered;
  filtered.filtered = true;

  const auto raw_metrics = eval.link_prediction(model, ds.test(), raw);
  const auto filtered_metrics =
      eval.link_prediction(model, ds.test(), filtered);
  EXPECT_GT(filtered_metrics.mrr, raw_metrics.mrr);
  EXPECT_NEAR(filtered_metrics.mrr, 1.0, 1e-12);  // both sides rank 1
}

TEST(Evaluator, MaxTriplesSubsamples) {
  TripleList test;
  for (int i = 0; i < 20; ++i) test.push_back({0, 0, 1});
  const Dataset ds(4, 1, {{2, 0, 3}}, {}, std::move(test));
  StubModel model(4, 1);
  const Evaluator eval(ds);
  EvalOptions opts;
  opts.max_triples = 5;
  const auto metrics = eval.link_prediction(model, ds.test(), opts);
  EXPECT_LE(metrics.evaluated, 2u * 5u);
  EXPECT_GT(metrics.evaluated, 0u);
}

TEST(Evaluator, EmptyTestSetYieldsZeroMetrics) {
  const Dataset ds(4, 1, {{0, 0, 1}}, {}, {});
  StubModel model(4, 1);
  const Evaluator eval(ds);
  const auto metrics = eval.link_prediction(model, ds.test());
  EXPECT_EQ(metrics.evaluated, 0u);
  EXPECT_DOUBLE_EQ(metrics.mrr, 0.0);
}

TEST(Evaluator, HitsAtKAreMonotone) {
  SyntheticSpec spec;
  spec.num_entities = 120;
  spec.num_relations = 8;
  spec.num_triples = 2000;
  spec.num_latent_types = 4;
  spec.seed = 31;
  const Dataset ds = generate_synthetic(spec);
  ComplExModel model(ds.num_entities(), ds.num_relations(), 8);
  util::Rng rng(1);
  model.init(rng);
  const Evaluator eval(ds);
  const auto metrics = eval.link_prediction(model, ds.test());
  EXPECT_LE(metrics.hits1, metrics.hits3);
  EXPECT_LE(metrics.hits3, metrics.hits10);
  EXPECT_LE(metrics.hits10, 1.0);
  EXPECT_GT(metrics.mrr, 0.0);
  EXPECT_LE(metrics.mrr, 1.0);
}

TEST(Evaluator, SideBreakdownAveragesToOverallMrr) {
  SyntheticSpec spec;
  spec.num_entities = 100;
  spec.num_relations = 6;
  spec.num_triples = 1500;
  spec.num_latent_types = 4;
  spec.seed = 36;
  const Dataset ds = generate_synthetic(spec);
  ComplExModel model(ds.num_entities(), ds.num_relations(), 8);
  util::Rng rng(4);
  model.init(rng);
  const Evaluator eval(ds);
  const auto metrics = eval.link_prediction(model, ds.test());
  EXPECT_NEAR((metrics.mrr_head_side + metrics.mrr_tail_side) / 2.0,
              metrics.mrr, 1e-12);
  EXPECT_GT(metrics.mrr_head_side, 0.0);
  EXPECT_GT(metrics.mrr_tail_side, 0.0);
}

TEST(Evaluator, SideBreakdownSeparatesAsymmetricDifficulty) {
  // One head fans out to many tails: predicting the unique head (head
  // side is easy for the model below) vs predicting one-of-many tails.
  TripleList train;
  for (EntityId t = 1; t <= 8; ++t) train.push_back({0, 0, t});
  const Dataset ds(10, 1, std::move(train), {}, {{0, 0, 9}});
  StubModel model(10, 1);
  // The model scores every (0, 0, *) highly, everything else low.
  for (EntityId t = 0; t < 10; ++t) model.set_score(0, 0, t, 5.0);
  const Evaluator eval(ds);
  EvalOptions raw;
  raw.filtered = false;
  const auto metrics = eval.link_prediction(model, ds.test(), raw);
  // Head side: only entity 0 scores high -> rank 1. Tail side: all ten
  // candidates tie at 5.0 -> strict-greater ranking gives rank 1 too,
  // but filtered=false keeps the 8 known true tails as competitors.
  EXPECT_GE(metrics.mrr_head_side, metrics.mrr_tail_side);
}

TEST(Evaluator, PerfectClassifierScoresNearHundred) {
  // Stub: known triples score +10, everything else (negatives) -100, so
  // the fitted thresholds separate them perfectly.
  SyntheticSpec spec;
  spec.num_entities = 100;
  spec.num_relations = 6;
  spec.num_triples = 1500;
  spec.num_latent_types = 4;
  spec.seed = 33;
  const Dataset ds = generate_synthetic(spec);
  StubModel model(ds.num_entities(), ds.num_relations());
  for (const std::span<const Triple> split :
       {ds.train(), ds.valid(), ds.test()}) {
    for (const Triple& t : split) {
      model.set_score(t.head, t.relation, t.tail, 10.0);
    }
  }
  const Evaluator eval(ds);
  EXPECT_GT(eval.triple_classification_accuracy(model), 99.0);
  EXPECT_GT(eval.validation_accuracy(model), 99.0);
}

TEST(Evaluator, RandomModelClassifiesNearChance) {
  SyntheticSpec spec;
  spec.num_entities = 100;
  spec.num_relations = 6;
  spec.num_triples = 1500;
  spec.num_latent_types = 4;
  spec.seed = 34;
  const Dataset ds = generate_synthetic(spec);
  ComplExModel model(ds.num_entities(), ds.num_relations(), 8);
  util::Rng rng(2);
  model.init(rng);
  const Evaluator eval(ds);
  const double tca = eval.triple_classification_accuracy(model);
  // Untrained scores carry little signal; the per-relation threshold fit
  // gives a modest edge over 50% but nothing like a trained model.
  EXPECT_GT(tca, 40.0);
  EXPECT_LT(tca, 75.0);
}

TEST(Evaluator, DeterministicGivenSeed) {
  SyntheticSpec spec;
  spec.num_entities = 80;
  spec.num_relations = 5;
  spec.num_triples = 1000;
  spec.num_latent_types = 4;
  spec.seed = 35;
  const Dataset ds = generate_synthetic(spec);
  ComplExModel model(ds.num_entities(), ds.num_relations(), 4);
  util::Rng rng(3);
  model.init(rng);
  const Evaluator eval(ds);
  EXPECT_DOUBLE_EQ(eval.triple_classification_accuracy(model, 5),
                   eval.triple_classification_accuracy(model, 5));
}

}  // namespace
}  // namespace dynkge::kge
