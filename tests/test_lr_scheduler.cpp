#include "core/lr_scheduler.hpp"

#include <gtest/gtest.h>

namespace dynkge::core {
namespace {

TEST(PlateauScheduler, LinearScalingIsCappedAtFour) {
  // Paper section 3.4: lr = lr0 * min(4, nodes).
  PlateauConfig config;
  config.base_lr = 0.001;
  EXPECT_DOUBLE_EQ(PlateauScheduler(config, 1).lr(), 0.001);
  EXPECT_DOUBLE_EQ(PlateauScheduler(config, 2).lr(), 0.002);
  EXPECT_DOUBLE_EQ(PlateauScheduler(config, 4).lr(), 0.004);
  EXPECT_DOUBLE_EQ(PlateauScheduler(config, 8).lr(), 0.004);
  EXPECT_DOUBLE_EQ(PlateauScheduler(config, 16).lr(), 0.004);
}

TEST(PlateauScheduler, ZeroNodesTreatedAsOne) {
  PlateauConfig config;
  config.base_lr = 0.001;
  EXPECT_DOUBLE_EQ(PlateauScheduler(config, 0).lr(), 0.001);
}

TEST(PlateauScheduler, ImprovementResetsPatience) {
  PlateauConfig config;
  config.tolerance = 3;
  PlateauScheduler scheduler(config, 1);
  const double lr0 = scheduler.lr();
  for (int epoch = 0; epoch < 20; ++epoch) {
    scheduler.observe(50.0 + epoch);  // always improving
  }
  EXPECT_DOUBLE_EQ(scheduler.lr(), lr0);
  EXPECT_FALSE(scheduler.should_stop());
}

TEST(PlateauScheduler, ReducesAfterToleranceEpochs) {
  PlateauConfig config;
  config.tolerance = 5;
  config.factor = 0.1;
  PlateauScheduler scheduler(config, 1);
  const double lr0 = scheduler.lr();
  scheduler.observe(80.0);
  bool reduced = false;
  for (int epoch = 0; epoch < 5; ++epoch) {
    reduced = scheduler.observe(80.0);  // no improvement
  }
  EXPECT_TRUE(reduced);
  EXPECT_DOUBLE_EQ(scheduler.lr(), lr0 * 0.1);
}

TEST(PlateauScheduler, TinyWobbleDoesNotCountAsImprovement) {
  PlateauConfig config;
  config.tolerance = 3;
  config.min_improvement = 0.5;
  PlateauScheduler scheduler(config, 1);
  scheduler.observe(80.0);
  const double lr0 = scheduler.lr();
  scheduler.observe(80.1);
  scheduler.observe(80.2);
  scheduler.observe(80.3);  // all within min_improvement of the best
  EXPECT_LT(scheduler.lr(), lr0);
}

TEST(PlateauScheduler, StopsAtMinLrAfterSecondPlateau) {
  PlateauConfig config;
  config.base_lr = 0.001;
  config.tolerance = 2;
  config.factor = 0.1;
  config.min_lr = 1e-4;
  PlateauScheduler scheduler(config, 1);
  scheduler.observe(80.0);
  // First plateau: 0.001 -> 1e-4.
  scheduler.observe(80.0);
  scheduler.observe(80.0);
  EXPECT_DOUBLE_EQ(scheduler.lr(), 1e-4);
  EXPECT_FALSE(scheduler.should_stop());
  // Second plateau at the floor: stop.
  scheduler.observe(80.0);
  scheduler.observe(80.0);
  EXPECT_TRUE(scheduler.should_stop());
}

TEST(PlateauScheduler, LrNeverBelowMinLr) {
  PlateauConfig config;
  config.base_lr = 0.001;
  config.tolerance = 1;
  config.factor = 0.1;
  config.min_lr = 5e-4;  // one reduction saturates
  PlateauScheduler scheduler(config, 1);
  scheduler.observe(80.0);
  scheduler.observe(80.0);
  EXPECT_DOUBLE_EQ(scheduler.lr(), 5e-4);
}

TEST(PlateauScheduler, RecoveryAfterReduction) {
  PlateauConfig config;
  config.tolerance = 2;
  PlateauScheduler scheduler(config, 1);
  scheduler.observe(80.0);
  scheduler.observe(80.0);
  scheduler.observe(80.0);  // reduction
  const double lr_after = scheduler.lr();
  scheduler.observe(85.0);  // new best: patience resets
  scheduler.observe(84.0);
  EXPECT_DOUBLE_EQ(scheduler.lr(), lr_after);
  EXPECT_FALSE(scheduler.should_stop());
}

TEST(PlateauScheduler, TracksBestMetric) {
  PlateauScheduler scheduler({}, 1);
  scheduler.observe(70.0);
  scheduler.observe(75.0);
  scheduler.observe(72.0);
  EXPECT_DOUBLE_EQ(scheduler.best_metric(), 75.0);
}

TEST(PlateauScheduler, RejectsBadConfig) {
  PlateauConfig config;
  config.tolerance = 0;
  EXPECT_THROW(PlateauScheduler(config, 1), std::invalid_argument);
  config = {};
  config.factor = 1.5;
  EXPECT_THROW(PlateauScheduler(config, 1), std::invalid_argument);
}

}  // namespace
}  // namespace dynkge::core
