// MetricsRegistry: find-or-create semantics, concurrent recording,
// histogram quantile edge cases, and both snapshot formats.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_lint.hpp"

namespace dynkge::obs {
namespace {

using dynkge::testing::parse_json;

TEST(MetricsRegistry, FindOrCreateReturnsStableInstances) {
  MetricsRegistry registry;
  Counter& a = registry.counter("train.steps");
  Counter& b = registry.counter("train.steps");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  Gauge& g = registry.gauge("train.loss");
  g.set(0.25);
  EXPECT_DOUBLE_EQ(registry.gauge("train.loss").value(), 0.25);

  LatencyHistogram& h = registry.histogram("serve.latency_seconds");
  h.record(1e-3);
  EXPECT_EQ(&h, &registry.histogram("serve.latency_seconds"));
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x"), std::invalid_argument);
  registry.gauge("y");
  EXPECT_THROW(registry.counter("y"), std::invalid_argument);
}

TEST(MetricsRegistry, ConcurrentCountersSumExactly) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Hammer registration and recording from every thread: the name
      // resolves to one shared counter and no increment may be lost.
      for (int i = 0; i < kAddsPerThread; ++i) {
        registry.counter("shared").add(1);
        registry.histogram("lat").record(1e-4);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(registry.histogram("lat").count(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(LatencyHistogram, QuantileEdgeCases) {
  LatencyHistogram h;
  // Empty histogram: all quantiles are zero, not NaN.
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.mean_seconds(), 0.0);

  // A single observation lands in one bucket; every quantile must fall
  // inside that bucket's range.
  h.record(3e-3);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    const double v = h.quantile_seconds(q);
    EXPECT_GE(v, LatencyHistogram::bucket_floor_seconds(0));
    EXPECT_LE(v, 8e-3) << "q=" << q;
  }
  EXPECT_NEAR(h.mean_seconds(), 3e-3, 1e-9);

  // Out-of-range q clamps instead of reading out of bounds.
  EXPECT_GE(h.quantile_seconds(-1.0), 0.0);
  EXPECT_LE(h.quantile_seconds(2.0), 8e-3);

  // Monotone in q with a spread of observations.
  LatencyHistogram spread;
  for (int i = 0; i < 1000; ++i) spread.record(1e-5 * (i + 1));
  double last = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = spread.quantile_seconds(q);
    EXPECT_GE(v, last);
    last = v;
  }
}

TEST(LatencyHistogram, ExtremesClampToOuterBuckets) {
  LatencyHistogram h;
  h.record(0.0);      // below the first bucket floor
  h.record(1e9);      // far beyond the last bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
}

TEST(MetricsRegistry, JsonSnapshotParsesAndMatches) {
  MetricsRegistry registry;
  registry.counter("train.steps").add(42);
  registry.gauge("train.loss").set(0.5);
  registry.histogram("serve.latency_seconds").record(2e-3);

  const auto root = parse_json(registry.to_json());
  ASSERT_TRUE(root.is_object());
  EXPECT_DOUBLE_EQ(root.at("counters").at("train.steps").number, 42.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("train.loss").number, 0.5);
  const auto& hist = root.at("histograms").at("serve.latency_seconds");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 1.0);
  EXPECT_NEAR(hist.at("mean_seconds").number, 2e-3, 1e-9);
  ASSERT_TRUE(hist.at("buckets").is_array());
  ASSERT_EQ(hist.at("buckets").array.size(), 1u);  // only non-zero buckets
}

TEST(MetricsRegistry, EmptyRegistrySnapshotIsValidJson) {
  MetricsRegistry registry;
  const auto root = parse_json(registry.to_json());
  EXPECT_TRUE(root.at("counters").object.empty());
  EXPECT_TRUE(root.at("gauges").object.empty());
  EXPECT_TRUE(root.at("histograms").object.empty());
}

TEST(MetricsRegistry, PrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("train.bytes-on-wire").add(7);
  registry.gauge("train.lr").set(0.01);
  auto& h = registry.histogram("serve.latency_seconds");
  h.record(1e-3);
  h.record(5e-3);

  const std::string text = registry.to_prometheus();
  // Names are prefixed and sanitized ('.'/'-' -> '_').
  EXPECT_NE(text.find("# TYPE dynkge_train_bytes_on_wire counter"),
            std::string::npos);
  EXPECT_NE(text.find("dynkge_train_bytes_on_wire 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dynkge_train_lr gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dynkge_serve_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("dynkge_serve_latency_seconds_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);

  // Bucket series are cumulative: each count >= the previous one.
  std::istringstream lines(text);
  std::string line;
  long previous = -1;
  int buckets = 0;
  while (std::getline(lines, line)) {
    const auto le = line.find("_bucket{le=");
    if (le == std::string::npos) continue;
    const long count = std::stol(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(count, previous) << line;
    previous = count;
    ++buckets;
  }
  EXPECT_EQ(buckets, LatencyHistogram::kBuckets);
}

TEST(MetricsRegistry, WriteMetricsPicksFormatByExtension) {
  MetricsRegistry registry;
  registry.counter("c").add(1);

  const std::string json_path = ::testing::TempDir() + "metrics_test.json";
  const std::string prom_path = ::testing::TempDir() + "metrics_test.prom";
  write_metrics(registry, json_path);
  write_metrics(registry, prom_path);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };
  EXPECT_NO_THROW(parse_json(slurp(json_path)));
  EXPECT_NE(slurp(prom_path).find("# TYPE dynkge_c counter"),
            std::string::npos);
  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());

  EXPECT_THROW(write_metrics(registry, "/nonexistent-dir/x.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace dynkge::obs
