// obs/analysis: span-interval math on overlapping/nested spans, the
// critical-path join, the strategy audit's contradiction flagging, and the
// golden-file contract — a recorded 4-rank trace+events pair must analyze
// to byte-identical JSON forever (the report is diffed across runs).
#include "obs/analysis.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dynkge::obs {
namespace {

std::string data_path(const std::string& name) {
  return std::string(DYNKGE_TEST_DATA_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(IntervalUnion, EmptyAndSingle) {
  EXPECT_EQ(interval_union({}, 0.0, 100.0), 0.0);
  EXPECT_EQ(interval_union({{10.0, 30.0}}, 0.0, 100.0), 20.0);
}

TEST(IntervalUnion, DisjointSum) {
  EXPECT_EQ(interval_union({{0.0, 10.0}, {20.0, 25.0}}, 0.0, 100.0), 15.0);
}

TEST(IntervalUnion, OverlappingCountsOnce) {
  // [0,10) and [5,15) overlap on [5,10): union is 15, not 20.
  EXPECT_EQ(interval_union({{0.0, 10.0}, {5.0, 15.0}}, 0.0, 100.0), 15.0);
}

TEST(IntervalUnion, NestedCountsOnce) {
  // A span fully inside another (exchange span nested in an epoch span
  // nested in a recovery span) adds nothing.
  EXPECT_EQ(interval_union({{0.0, 50.0}, {10.0, 20.0}, {12.0, 14.0}}, 0.0,
                           100.0),
            50.0);
}

TEST(IntervalUnion, UnsortedInput) {
  // [20,30) u [25,40) merge to [20,40); plus the disjoint [0,10).
  EXPECT_EQ(interval_union({{20.0, 30.0}, {0.0, 10.0}, {25.0, 40.0}}, 0.0,
                           100.0),
            30.0);
}

TEST(IntervalUnion, ClipsToWindow) {
  // Only the part inside [lo, hi) counts: spans from a neighbouring epoch
  // that merely touch the window must not inflate its comm time.
  EXPECT_EQ(interval_union({{-10.0, 5.0}, {95.0, 120.0}}, 0.0, 100.0),
            10.0);
  EXPECT_EQ(interval_union({{0.0, 100.0}}, 40.0, 60.0), 20.0);
  // Entirely outside.
  EXPECT_EQ(interval_union({{200.0, 300.0}}, 0.0, 100.0), 0.0);
}

// -- analyze() on hand-built inputs ----------------------------------------

EpochEvent make_event(int epoch, int rank, const std::string& transport,
                      double comm_seconds) {
  EpochEvent event;
  event.epoch = epoch;
  event.rank = rank;
  event.comm_mode = "dynamic";
  event.transport = transport;
  event.comm_seconds = comm_seconds;
  event.sim_seconds = comm_seconds * 2.0;
  return event;
}

SpanRecord make_span(const std::string& name, int tid, double ts_us,
                     double dur_us) {
  return SpanRecord{name, tid, ts_us, dur_us};
}

TEST(Analyze, CriticalPathPicksSlowestRankAndItsCollective) {
  // Two ranks, one epoch. Rank 1's epoch span is longer and dominated by
  // all-reduce time; rank 0 is mostly compute.
  const std::vector<SpanRecord> spans = {
      make_span("epoch", 0, 0.0, 100.0),
      make_span("exchange.allreduce", 0, 10.0, 20.0),
      make_span("epoch", 1, 0.0, 160.0),
      make_span("exchange.allreduce", 1, 10.0, 60.0),
      make_span("exchange.allgather", 1, 80.0, 10.0),
  };
  const std::vector<EpochEvent> events = {
      make_event(0, 0, "allreduce", 1e-3),
      make_event(0, 1, "allreduce", 1e-3),
  };
  const AnalysisReport report = analyze(spans, events);
  ASSERT_EQ(report.epochs.size(), 1u);
  const EpochAnalysis& epoch = report.epochs[0];
  EXPECT_EQ(epoch.critical_rank, 1);
  EXPECT_DOUBLE_EQ(epoch.critical_seconds, 160.0 / 1e6);
  EXPECT_EQ(epoch.blocking_collective, "exchange.allreduce");
  EXPECT_DOUBLE_EQ(epoch.blocking_seconds, 60.0 / 1e6);
  // skew = max / mean = 160 / 130.
  EXPECT_DOUBLE_EQ(epoch.straggler_skew, 160.0 / 130.0);
  ASSERT_EQ(epoch.ranks.size(), 2u);
  EXPECT_DOUBLE_EQ(epoch.ranks[0].comm_fraction, 20.0 / 100.0);
  EXPECT_DOUBLE_EQ(epoch.ranks[1].comm_fraction, 70.0 / 160.0);
}

TEST(Analyze, SecondEpochSpansPairByOrder) {
  // Per rank, the i-th "epoch" span belongs to the i-th event: collective
  // spans attribute to the epoch whose interval contains them.
  const std::vector<SpanRecord> spans = {
      make_span("epoch", 0, 0.0, 100.0),
      make_span("exchange.allreduce", 0, 0.0, 50.0),
      make_span("epoch", 0, 100.0, 100.0),
      make_span("exchange.allgather", 0, 150.0, 25.0),
  };
  const std::vector<EpochEvent> events = {
      make_event(0, 0, "allreduce", 1e-3),
      make_event(1, 0, "allgather", 1e-3),
  };
  const AnalysisReport report = analyze(spans, events);
  ASSERT_EQ(report.epochs.size(), 2u);
  EXPECT_EQ(report.epochs[0].blocking_collective, "exchange.allreduce");
  EXPECT_EQ(report.epochs[1].blocking_collective, "exchange.allgather");
  EXPECT_DOUBLE_EQ(report.epochs[1].comm_fraction_mean, 0.25);
}

TEST(Analyze, TruncatedTraceSkipsEpochButAuditSurvives) {
  // Only epoch 0 has spans; epoch 1 (the probe) is missing from the
  // trace. The epochs table shrinks, the audit still runs on the events.
  const std::vector<SpanRecord> spans = {
      make_span("epoch", 0, 0.0, 100.0),
  };
  std::vector<EpochEvent> events = {
      make_event(0, 0, "allreduce", 4e-3),
      make_event(1, 0, "allgather", 1e-3),
  };
  events[1].probe = true;
  events[1].probe_baseline_seconds = 4e-3;
  events[1].switched_to_allgather = true;
  const AnalysisReport report = analyze(spans, events);
  EXPECT_EQ(report.num_epochs, 2);
  EXPECT_EQ(report.epochs.size(), 1u);
  ASSERT_EQ(report.audit.size(), 1u);
  EXPECT_TRUE(report.audit[0].expected_switch);
  EXPECT_FALSE(report.audit[0].contradicted);
  EXPECT_EQ(report.contradicted_decisions, 0);
}

TEST(Analyze, FlagsDecisionContradictedByMeasurements) {
  // The log claims the selector switched although the probe was SLOWER
  // than its baseline — the audit must flag it.
  std::vector<EpochEvent> events = {
      make_event(0, 0, "allreduce", 1e-3),
      make_event(1, 0, "allgather", 5e-3),
  };
  events[1].probe = true;
  events[1].probe_baseline_seconds = 1e-3;
  events[1].switched_to_allgather = true;  // contradicts the costs
  const AnalysisReport report = analyze({}, events);
  ASSERT_EQ(report.audit.size(), 1u);
  EXPECT_FALSE(report.audit[0].expected_switch);
  EXPECT_TRUE(report.audit[0].switched);
  EXPECT_TRUE(report.audit[0].contradicted);
  EXPECT_EQ(report.contradicted_decisions, 1);
}

TEST(Analyze, BaselineRecoveredFromOlderLogsWithoutField) {
  // Logs written before probe_baseline_seconds existed: the audit falls
  // back to the last all-reduce epoch's comm_seconds.
  std::vector<EpochEvent> events = {
      make_event(0, 0, "allreduce", 3e-3),
      make_event(1, 0, "allreduce", 2e-3),
      make_event(2, 0, "allgather", 1e-3),
  };
  events[2].probe = true;  // probe_baseline_seconds stays at the -1 default
  events[2].switched_to_allgather = true;
  const AnalysisReport report = analyze({}, events);
  ASSERT_EQ(report.audit.size(), 1u);
  EXPECT_DOUBLE_EQ(report.audit[0].baseline_comm_seconds, 2e-3);
  EXPECT_TRUE(report.audit[0].expected_switch);
  EXPECT_FALSE(report.audit[0].contradicted);
}

// -- loaders + golden file -------------------------------------------------

TEST(AnalyzeLoaders, RejectsMalformedInputs) {
  EXPECT_THROW(load_trace_spans("/nonexistent/trace.json"),
               std::runtime_error);
  EXPECT_THROW(load_events("/nonexistent/events.jsonl"),
               std::runtime_error);

  const std::string bad_trace = ::testing::TempDir() + "bad_trace.json";
  std::ofstream(bad_trace) << "{\"traceEvents\":[],\"schema_version\":99}";
  EXPECT_THROW(load_trace_spans(bad_trace), std::runtime_error);

  const std::string bad_events = ::testing::TempDir() + "bad_events.jsonl";
  std::ofstream(bad_events) << "{\"epoch\":0}\n";  // missing required keys
  EXPECT_THROW(load_events(bad_events), std::runtime_error);
}

TEST(AnalyzeGolden, RecordedFourRankRunReproducesByteForByte) {
  const auto spans = load_trace_spans(data_path("analyze_trace.json"));
  const auto events = load_events(data_path("analyze_events.jsonl"));
  ASSERT_FALSE(spans.empty());
  ASSERT_EQ(events.size(), 16u);  // 4 epochs x 4 ranks

  const AnalysisReport report = analyze(spans, events);
  EXPECT_EQ(report.num_ranks, 4);
  EXPECT_EQ(report.num_epochs, 4);
  EXPECT_EQ(report.contradicted_decisions, 0);

  // `dynkge analyze --json --out` writes to_json() + '\n'; the golden
  // file was recorded through exactly that path.
  const std::string golden = slurp(data_path("analyze_golden.json"));
  EXPECT_EQ(report.to_json() + "\n", golden)
      << "analysis output drifted from the recorded golden report";
}

}  // namespace
}  // namespace dynkge::obs
