#include "kge/tsv_loader.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

namespace dynkge::kge {
namespace {

class TsvLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dynkge_loader_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void write(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ / name);
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(TsvLoaderTest, LoadsOpenKeFormat) {
  write("entity2id.txt", "4\n/m/a\t0\n/m/b\t1\n/m/c\t2\n/m/d\t3\n");
  write("relation2id.txt", "2\nr0\t0\nr1\t1\n");
  // OpenKE triple order: head tail relation.
  write("train2id.txt", "2\n0 1 0\n1 2 1\n");
  write("valid2id.txt", "1\n2 3 0\n");
  write("test2id.txt", "1\n3 0 1\n");

  const Dataset ds = load_openke(dir_.string());
  EXPECT_EQ(ds.num_entities(), 4);
  EXPECT_EQ(ds.num_relations(), 2);
  ASSERT_EQ(ds.train().size(), 2u);
  EXPECT_EQ(ds.train()[0], (Triple{0, 0, 1}));
  EXPECT_EQ(ds.train()[1], (Triple{1, 1, 2}));
  EXPECT_EQ(ds.valid()[0], (Triple{2, 0, 3}));
  EXPECT_EQ(ds.test()[0], (Triple{3, 1, 0}));
}

TEST_F(TsvLoaderTest, LoadsPlainTsv) {
  write("train.txt", "delhi\tcapital_of\tindia\nparis\tcapital_of\tfrance\n");
  write("valid.txt", "rome\tcapital_of\titaly\n");
  write("test.txt", "delhi\tlocated_in\tindia\n");

  const Dataset ds = load_tsv(dir_.string());
  EXPECT_EQ(ds.num_entities(), 6);
  EXPECT_EQ(ds.num_relations(), 2);
  EXPECT_EQ(ds.train().size(), 2u);
  EXPECT_EQ(ds.valid().size(), 1u);
  EXPECT_EQ(ds.test().size(), 1u);
  // delhi (id 0) appears in train and test with consistent ids.
  EXPECT_EQ(ds.train()[0].head, ds.test()[0].head);
}

TEST_F(TsvLoaderTest, AutoDetectPrefersOpenKe) {
  write("entity2id.txt", "2\na\t0\nb\t1\n");
  write("relation2id.txt", "1\nr\t0\n");
  write("train2id.txt", "1\n0 1 0\n");
  write("valid2id.txt", "1\n1 0 0\n");
  write("test2id.txt", "1\n0 0 0\n");
  const Dataset ds = load_dataset(dir_.string());
  EXPECT_EQ(ds.num_entities(), 2);
}

TEST_F(TsvLoaderTest, AutoDetectFallsBackToTsv) {
  write("train.txt", "a\tr\tb\n");
  write("valid.txt", "b\tr\ta\n");
  write("test.txt", "a\tr\ta\n");
  const Dataset ds = load_dataset(dir_.string());
  EXPECT_EQ(ds.num_entities(), 2);
  EXPECT_EQ(ds.num_relations(), 1);
}

TEST_F(TsvLoaderTest, MissingDirectoryThrows) {
  EXPECT_THROW(load_dataset((dir_ / "nope").string()), std::runtime_error);
}

TEST_F(TsvLoaderTest, TruncatedOpenKeFileThrows) {
  write("entity2id.txt", "2\na\t0\nb\t1\n");
  write("relation2id.txt", "1\nr\t0\n");
  write("train2id.txt", "3\n0 1 0\n");  // claims 3 triples, has 1
  write("valid2id.txt", "0\n");
  write("test2id.txt", "0\n");
  EXPECT_THROW(load_openke(dir_.string()), std::runtime_error);
}

TEST_F(TsvLoaderTest, MalformedTsvLineThrows) {
  write("train.txt", "only_two\tfields\n");
  write("valid.txt", "");
  write("test.txt", "");
  EXPECT_THROW(load_tsv(dir_.string()), std::runtime_error);
}

TEST_F(TsvLoaderTest, SaveOpenKeRoundTrip) {
  const Dataset original(5, 2, {{0, 0, 1}, {1, 1, 2}, {3, 0, 4}},
                         {{2, 1, 0}}, {{4, 0, 3}});
  const std::string out_dir = (dir_ / "exported").string();
  save_openke(original, out_dir);
  const Dataset loaded = load_dataset(out_dir);
  EXPECT_EQ(loaded.num_entities(), 5);
  EXPECT_EQ(loaded.num_relations(), 2);
  ASSERT_EQ(loaded.train().size(), 3u);
  for (std::size_t i = 0; i < loaded.train().size(); ++i) {
    EXPECT_EQ(loaded.train()[i], original.train()[i]);
  }
  EXPECT_EQ(loaded.valid()[0], original.valid()[0]);
  EXPECT_EQ(loaded.test()[0], original.test()[0]);
}

TEST_F(TsvLoaderTest, SaveOpenKeCreatesDirectory) {
  const Dataset ds(2, 1, {{0, 0, 1}}, {{1, 0, 0}}, {{0, 0, 0}});
  const std::string nested = (dir_ / "a" / "b").string();
  save_openke(ds, nested);
  EXPECT_TRUE(std::filesystem::exists(nested + "/train2id.txt"));
}

TEST_F(TsvLoaderTest, OutOfRangeIdsRejectedByDataset) {
  write("entity2id.txt", "2\na\t0\nb\t1\n");
  write("relation2id.txt", "1\nr\t0\n");
  write("train2id.txt", "1\n0 9 0\n");  // tail 9 >= 2 entities
  write("valid2id.txt", "0\n");
  write("test2id.txt", "0\n");
  EXPECT_THROW(load_openke(dir_.string()), std::invalid_argument);
}

}  // namespace
}  // namespace dynkge::kge
