// Elastic recovery protocol, below the trainer: plan_recovery policy
// decisions, multi-failure aggregation through Cluster::run, epoch-scoped
// fault addressing, and the injector's one-shot guarantee that makes
// shrink-world replay safe.
#include "comm/recovery.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/fault.hpp"

namespace dynkge::comm {
namespace {

RankFailedError one_failure(int rank) {
  return RankFailedError(rank, "injected fault: rank crash");
}

TEST(PlanRecovery, DefaultPolicyFailsFast) {
  const RecoveryPlan plan =
      plan_recovery(one_failure(1), /*world_size=*/4, ElasticPolicy{},
                    /*failures_so_far=*/0);
  EXPECT_EQ(plan.action, RecoveryAction::kFailFast);
  EXPECT_EQ(plan.failed_ranks, std::vector<int>{1});
  EXPECT_EQ(plan.old_world, 4);
}

TEST(PlanRecovery, ShrinksWithinBudget) {
  ElasticPolicy policy{/*enabled=*/true, /*max_rank_failures=*/2};
  const RecoveryPlan plan =
      plan_recovery(one_failure(2), 4, policy, /*failures_so_far=*/1);
  EXPECT_EQ(plan.action, RecoveryAction::kShrink);
  EXPECT_EQ(plan.new_world, 3);
  EXPECT_EQ(plan.failures_before, 1);
  EXPECT_NE(plan.describe().find("shrink 4 -> 3"), std::string::npos);
}

TEST(PlanRecovery, CumulativeBudgetExhaustionFailsFast) {
  ElasticPolicy policy{/*enabled=*/true, /*max_rank_failures=*/1};
  EXPECT_EQ(plan_recovery(one_failure(0), 4, policy, 0).action,
            RecoveryAction::kShrink);
  // The second death exceeds the cumulative budget even though each event
  // alone would fit.
  EXPECT_EQ(plan_recovery(one_failure(0), 3, policy, 1).action,
            RecoveryAction::kFailFast);
}

TEST(PlanRecovery, SimultaneousDeathsCountAgainstBudgetTogether) {
  const RankFailedError error(std::vector<RankFailedError::Failure>{
      {2, "crash"}, {1, "crash"}});
  ElasticPolicy one{/*enabled=*/true, /*max_rank_failures=*/1};
  EXPECT_EQ(plan_recovery(error, 4, one, 0).action,
            RecoveryAction::kFailFast);
  ElasticPolicy two{/*enabled=*/true, /*max_rank_failures=*/2};
  const RecoveryPlan plan = plan_recovery(error, 4, two, 0);
  EXPECT_EQ(plan.action, RecoveryAction::kShrink);
  EXPECT_EQ(plan.new_world, 2);
  EXPECT_EQ(plan.failed_ranks, (std::vector<int>{1, 2}));
}

TEST(PlanRecovery, NeverShrinksToZeroRanks) {
  ElasticPolicy policy{/*enabled=*/true, /*max_rank_failures=*/8};
  EXPECT_EQ(plan_recovery(one_failure(0), 1, policy, 0).action,
            RecoveryAction::kFailFast);
}

TEST(RankFailedErrorTest, SingleFailureKeepsLegacyMessageShape) {
  const RankFailedError error(3, "injected fault: rank crash");
  EXPECT_EQ(error.rank(), 3);
  EXPECT_EQ(std::string(error.what()),
            "rank 3 failed: injected fault: rank crash");
  ASSERT_EQ(error.failures().size(), 1u);
  EXPECT_EQ(error.ranks(), std::vector<int>{3});
}

TEST(RankFailedErrorTest, MultiFailureSortsAndListsEveryRank) {
  const RankFailedError error(std::vector<RankFailedError::Failure>{
      {2, "crash at epoch 1"}, {0, "crash at epoch 1"}});
  EXPECT_EQ(error.ranks(), (std::vector<int>{0, 2}));
  EXPECT_EQ(error.rank(), 0);  // lowest rank first
  const std::string what = error.what();
  EXPECT_NE(what.find("ranks 0,2 failed"), std::string::npos);
  EXPECT_NE(what.find("[rank 0]"), std::string::npos);
  EXPECT_NE(what.find("[rank 2]"), std::string::npos);
}

/// A rank program of `steps` allreduces, reporting its epoch to the
/// injector as step / 10 (so epoch-scoped events have something to bind
/// to).
double epoch_loop(Communicator& comm, int steps) {
  double value = static_cast<double>(comm.rank() + 1);
  for (int step = 0; step < steps; ++step) {
    comm.set_fault_epoch(step / 10);
    value = comm.allreduce_scalar(value, ScalarOp::kSum) /
            static_cast<double>(comm.size());
  }
  comm.set_fault_epoch(-1);
  return value;
}

TEST(MultiFailure, SimultaneousCrashesAggregateThroughClusterRun) {
  FaultInjector injector(
      {FaultEvent{FaultKind::kRankCrash, /*rank=*/1, /*collective_index=*/9},
       FaultEvent{FaultKind::kRankCrash, /*rank=*/3,
                  /*collective_index=*/9}});
  Cluster cluster(4);
  cluster.set_fault_injector(&injector);
  try {
    cluster.run([&](Communicator& comm) { epoch_loop(comm, 40); });
    FAIL() << "crashes did not propagate";
  } catch (const RankFailedError& error) {
    EXPECT_EQ(error.ranks(), (std::vector<int>{1, 3}));
    ASSERT_EQ(error.failures().size(), 2u);
  }
  EXPECT_EQ(injector.counters().crashes, 2u);
}

TEST(EpochScopedFaults, ParseSpecAcceptsEpochAddresses) {
  const auto events = FaultInjector::parse_spec("crash@1@e2,transient@0@7@2");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FaultKind::kRankCrash);
  EXPECT_EQ(events[0].rank, 1);
  EXPECT_EQ(events[0].epoch, 2);
  EXPECT_EQ(events[1].epoch, -1);  // index-addressed stays index-addressed
  EXPECT_EQ(events[1].collective_index, 7u);
  EXPECT_THROW(FaultInjector::parse_spec("crash@1@e"),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse_spec("crash@1@e-2"),
               std::invalid_argument);
}

TEST(EpochScopedFaults, FireOnFirstCollectiveOfTheEpoch) {
  FaultEvent event;
  event.kind = FaultKind::kRankCrash;
  event.rank = 1;
  event.epoch = 2;
  FaultInjector injector({event});
  Cluster cluster(2);
  cluster.set_fault_injector(&injector);
  // epoch_loop maps step -> epoch as step / 10, so epoch 2 starts at the
  // rank's 20th collective.
  try {
    cluster.run([&](Communicator& comm) { epoch_loop(comm, 40); });
    FAIL() << "epoch-scoped crash did not propagate";
  } catch (const RankFailedError& error) {
    EXPECT_EQ(error.rank(), 1);
    EXPECT_NE(std::string(error.what()).find("epoch 2"), std::string::npos);
  }
  EXPECT_EQ(injector.counters().crashes, 1u);
}

TEST(EpochScopedFaults, NeverFireOutsideAnEpoch) {
  FaultEvent event;
  event.kind = FaultKind::kRankCrash;
  event.rank = 0;
  event.epoch = 0;
  FaultInjector injector({event});
  Cluster cluster(2);
  cluster.set_fault_injector(&injector);
  // fault_epoch stays at its -1 default: the epoch-scoped event has no
  // epoch to bind to and the run completes.
  cluster.run([&](Communicator& comm) {
    double value = 1.0;
    for (int step = 0; step < 10; ++step) {
      value = comm.allreduce_scalar(value, ScalarOp::kSum);
    }
  });
  EXPECT_EQ(injector.counters().crashes, 0u);
}

TEST(OneShotEvents, ConsumedCrashDoesNotKillTheInheritingRank) {
  FaultEvent event;
  event.kind = FaultKind::kRankCrash;
  event.rank = 1;
  event.epoch = 1;
  FaultInjector injector({event});
  {
    Cluster cluster(3);
    cluster.set_fault_injector(&injector);
    EXPECT_THROW(
        cluster.run([&](Communicator& comm) { epoch_loop(comm, 40); }),
        RankFailedError);
  }
  // The shrunk world re-runs the same epochs with the same injector. A
  // surviving rank now holds rank id 1 and replays epoch 1's collectives,
  // but the consumed event must not fire again.
  {
    Cluster cluster(2);
    cluster.set_fault_injector(&injector);
    cluster.run([&](Communicator& comm) { epoch_loop(comm, 40); });
  }
  EXPECT_EQ(injector.counters().crashes, 1u);
}

TEST(OneShotEvents, IndexAddressedEventsAreOneShotToo) {
  FaultInjector injector({FaultEvent{FaultKind::kStraggler, /*rank=*/0,
                                     /*collective_index=*/3, /*failures=*/1,
                                     /*delay_seconds=*/0.5}});
  for (int round = 0; round < 2; ++round) {
    Cluster cluster(2);
    cluster.set_fault_injector(&injector);
    cluster.run([&](Communicator& comm) { epoch_loop(comm, 10); });
  }
  EXPECT_EQ(injector.counters().stragglers, 1u);
}

}  // namespace
}  // namespace dynkge::comm
