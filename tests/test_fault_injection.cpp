// Fault-injection matrix over the simulated cluster: every fault kind ×
// cluster size must terminate (no deadlock), propagate RankFailedError
// with the failing rank, and — for recovered transients — leave results
// identical to a clean run.
#include "comm/fault.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"

namespace dynkge::comm {
namespace {

/// A rank program that runs `steps` allreduces with a barrier sprinkled
/// in, returning the final reduced value (identical on every rank of a
/// clean run).
double collective_loop(Communicator& comm, int steps) {
  double value = static_cast<double>(comm.rank() + 1);
  for (int step = 0; step < steps; ++step) {
    value = comm.allreduce_scalar(value, ScalarOp::kSum) /
            static_cast<double>(comm.size());
    if (step % 7 == 3) comm.barrier();
  }
  return value;
}

class FaultMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultMatrixTest, CrashPropagatesRankFailedWithoutDeadlock) {
  const int num_ranks = GetParam();
  const int victim = num_ranks - 1;
  FaultInjector injector(
      {FaultEvent{FaultKind::kRankCrash, victim, /*collective_index=*/9}});
  Cluster cluster(num_ranks);
  cluster.set_fault_injector(&injector);
  try {
    cluster.run([&](Communicator& comm) { collective_loop(comm, 40); });
    FAIL() << "crash did not propagate";
  } catch (const RankFailedError& error) {
    EXPECT_EQ(error.rank(), victim);
    EXPECT_NE(std::string(error.what()).find("rank " +
                                             std::to_string(victim)),
              std::string::npos);
  }
  EXPECT_EQ(injector.counters().crashes, 1u);
}

TEST_P(FaultMatrixTest, TransientIsRetriedAndResultsUnchanged) {
  const int num_ranks = GetParam();

  std::vector<double> clean(num_ranks, 0.0);
  Cluster reference(num_ranks);
  reference.run([&](Communicator& comm) {
    clean[comm.rank()] = collective_loop(comm, 40);
  });

  FaultInjector injector({FaultEvent{FaultKind::kTransient, /*rank=*/0,
                                     /*collective_index=*/12,
                                     /*failures=*/2}});
  std::vector<double> faulted(num_ranks, 0.0);
  Cluster cluster(num_ranks);
  cluster.set_fault_injector(&injector);
  cluster.run([&](Communicator& comm) {
    faulted[comm.rank()] = collective_loop(comm, 40);
  });

  EXPECT_EQ(clean, faulted);  // bit-identical despite the injected fault
  const FaultCounters counters = injector.counters();
  EXPECT_EQ(counters.transients, 1u);
  EXPECT_EQ(counters.retries, 2u);
  EXPECT_GT(counters.backoff_seconds, 0.0);
  EXPECT_EQ(counters.crashes, 0u);
  EXPECT_EQ(counters.exhausted, 0u);
}

TEST_P(FaultMatrixTest, StragglerDelaysEveryRanksClock) {
  const int num_ranks = GetParam();
  const double delay = 0.25;

  std::vector<double> clean_clock(num_ranks, 0.0);
  Cluster reference(num_ranks);
  reference.run([&](Communicator& comm) {
    collective_loop(comm, 40);
    clean_clock[comm.rank()] = comm.sim_now();
  });

  FaultInjector injector({FaultEvent{FaultKind::kStraggler, /*rank=*/0,
                                     /*collective_index=*/5, /*failures=*/1,
                                     delay}});
  std::vector<double> slow_clock(num_ranks, 0.0);
  Cluster cluster(num_ranks);
  cluster.set_fault_injector(&injector);
  cluster.run([&](Communicator& comm) {
    collective_loop(comm, 40);
    slow_clock[comm.rank()] = comm.sim_now();
  });

  EXPECT_EQ(injector.counters().stragglers, 1u);
  // The clock alignment at the next collective spreads the stall to every
  // rank — exactly what a straggler does to a synchronous cluster.
  for (int r = 0; r < num_ranks; ++r) {
    EXPECT_GE(slow_clock[r], clean_clock[r] + delay - 1e-12)
        << "rank " << r << " did not feel the straggler";
  }
}

TEST_P(FaultMatrixTest, ExhaustedRetriesEscalateToRankFailed) {
  const int num_ranks = GetParam();
  RetryPolicy policy;
  policy.max_attempts = 3;
  FaultInjector injector({FaultEvent{FaultKind::kTransient, /*rank=*/1,
                                     /*collective_index=*/4,
                                     /*failures=*/3}},
                         policy);
  Cluster cluster(num_ranks);
  cluster.set_fault_injector(&injector);
  EXPECT_THROW(
      cluster.run([&](Communicator& comm) { collective_loop(comm, 40); }),
      RankFailedError);
  EXPECT_EQ(injector.counters().exhausted, 1u);
}

INSTANTIATE_TEST_SUITE_P(Clusters, FaultMatrixTest, ::testing::Values(2, 4));

TEST(FaultInjector, ParseSpecRoundTrip) {
  const auto events = FaultInjector::parse_spec(
      "crash@1@40,transient@0@12@2,straggler@2@30@0.5");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FaultKind::kRankCrash);
  EXPECT_EQ(events[0].rank, 1);
  EXPECT_EQ(events[0].collective_index, 40u);
  EXPECT_EQ(events[1].kind, FaultKind::kTransient);
  EXPECT_EQ(events[1].failures, 2);
  EXPECT_EQ(events[2].kind, FaultKind::kStraggler);
  EXPECT_DOUBLE_EQ(events[2].delay_seconds, 0.5);
}

TEST(FaultInjector, ParseSpecRejectsMalformedInput) {
  EXPECT_THROW(FaultInjector::parse_spec("explode@0@1"),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse_spec("crash@0"), std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse_spec("crash@x@1"),
               std::invalid_argument);
  // An empty spec is a valid empty schedule (the CLI's default).
  EXPECT_TRUE(FaultInjector::parse_spec("").empty());
}

TEST(FaultInjector, RandomScheduleIsDeterministicInSeed) {
  // Two injectors from the same seed must fire the exact same faults when
  // driven through identical cluster runs (no crashes in the mix so the
  // runs complete).
  auto a = FaultInjector::random(123, 2, 400, 0.0, 0.05, 0.05);
  auto b = FaultInjector::random(123, 2, 400, 0.0, 0.05, 0.05);
  EXPECT_EQ(a.scheduled_events(), b.scheduled_events());
  EXPECT_GT(a.scheduled_events(), 0u);
  for (FaultInjector* injector : {&a, &b}) {
    Cluster cluster(2);
    cluster.set_fault_injector(injector);
    cluster.run([&](Communicator& comm) { collective_loop(comm, 100); });
  }
  EXPECT_EQ(a.counters().transients, b.counters().transients);
  EXPECT_EQ(a.counters().stragglers, b.counters().stragglers);
  EXPECT_EQ(a.counters().retries, b.counters().retries);
  EXPECT_GT(a.counters().transients + a.counters().stragglers, 0u);
}

// ---- wire integrity & deadline watchdog ------------------------------

/// A rank program exercising the payload (byte-checksummed) path: float
/// allreduces whose result feeds the next step.
std::vector<float> payload_loop(Communicator& comm, int steps) {
  std::vector<float> data(8, static_cast<float>(comm.rank() + 1));
  for (int step = 0; step < steps; ++step) {
    comm.allreduce_sum_inplace(data);
    for (float& v : data) v /= static_cast<float>(comm.size() + 1);
  }
  return data;
}

TEST_P(FaultMatrixTest, CorruptPayloadIsRetransmittedAndResultsUnchanged) {
  const int num_ranks = GetParam();

  std::vector<std::vector<float>> clean(num_ranks);
  Cluster reference(num_ranks);
  reference.run([&](Communicator& comm) {
    clean[comm.rank()] = payload_loop(comm, 20);
  });

  FaultInjector injector({FaultEvent{FaultKind::kCorrupt, /*rank=*/0,
                                     /*collective_index=*/6,
                                     /*failures=*/2}});
  std::vector<std::vector<float>> faulted(num_ranks);
  Cluster cluster(num_ranks);
  cluster.set_fault_injector(&injector);
  cluster.run([&](Communicator& comm) {
    faulted[comm.rank()] = payload_loop(comm, 20);
  });

  EXPECT_EQ(clean, faulted);  // bit-identical despite the corruption
  const FaultCounters counters = injector.counters();
  EXPECT_EQ(counters.corrupted_payloads, 2u);
  // Zero silent corruption: every corrupted publish was caught.
  EXPECT_EQ(counters.corruptions_detected, counters.corrupted_payloads);
  EXPECT_EQ(counters.retransmits, 2u);
  EXPECT_EQ(counters.exhausted, 0u);
}

TEST_P(FaultMatrixTest, CorruptScalarCollectiveIsCoveredByChecksums) {
  // Zero-byte collectives (allreduce_scalar) are covered too: the digest
  // extends over the publishing rank's scalar slot.
  const int num_ranks = GetParam();

  std::vector<double> clean(num_ranks, 0.0);
  Cluster reference(num_ranks);
  reference.run([&](Communicator& comm) {
    clean[comm.rank()] = collective_loop(comm, 40);
  });

  FaultInjector injector({FaultEvent{FaultKind::kCorrupt, /*rank=*/1,
                                     /*collective_index=*/12,
                                     /*failures=*/1}});
  std::vector<double> faulted(num_ranks, 0.0);
  Cluster cluster(num_ranks);
  cluster.set_fault_injector(&injector);
  cluster.run([&](Communicator& comm) {
    faulted[comm.rank()] = collective_loop(comm, 40);
  });

  EXPECT_EQ(clean, faulted);
  const FaultCounters counters = injector.counters();
  EXPECT_EQ(counters.corrupted_payloads, 1u);
  EXPECT_EQ(counters.corruptions_detected, 1u);
}

TEST_P(FaultMatrixTest, CorruptEscalatesToRankFailedWhenBudgetExhausted) {
  const int num_ranks = GetParam();
  RetryPolicy policy;
  policy.max_attempts = 3;
  FaultInjector injector({FaultEvent{FaultKind::kCorrupt, /*rank=*/1,
                                     /*collective_index=*/4,
                                     /*failures=*/5}},
                         policy);
  Cluster cluster(num_ranks);
  cluster.set_fault_injector(&injector);
  try {
    cluster.run([&](Communicator& comm) { payload_loop(comm, 20); });
    FAIL() << "persistent corruption did not escalate";
  } catch (const RankFailedError& error) {
    EXPECT_EQ(error.rank(), 1);
    EXPECT_NE(std::string(error.what()).find("corrupted payload"),
              std::string::npos);
  }
  const FaultCounters counters = injector.counters();
  EXPECT_EQ(counters.corrupted_payloads, 3u);  // one per attempt
  EXPECT_EQ(counters.corruptions_detected, counters.corrupted_payloads);
  EXPECT_EQ(counters.exhausted, 1u);
}

TEST_P(FaultMatrixTest, HangTripsWatchdogIntoRankFailed) {
  const int num_ranks = GetParam();
  FaultInjector injector({FaultEvent{FaultKind::kHang, /*rank=*/0,
                                     /*collective_index=*/9}},
                         RetryPolicy{},
                         /*collective_deadline=*/2.0);
  Cluster cluster(num_ranks);
  cluster.set_fault_injector(&injector);
  try {
    cluster.run([&](Communicator& comm) { collective_loop(comm, 40); });
    FAIL() << "hang did not trip the watchdog";
  } catch (const RankFailedError& error) {
    EXPECT_EQ(error.rank(), 0);
    EXPECT_NE(std::string(error.what()).find("watchdog"),
              std::string::npos);
  }
  EXPECT_EQ(injector.counters().watchdog_trips, 1u);
}

TEST(FaultInjector, StragglerPastDeadlineTripsWatchdog) {
  FaultInjector injector({FaultEvent{FaultKind::kStraggler, /*rank=*/1,
                                     /*collective_index=*/5, /*failures=*/1,
                                     /*delay_seconds=*/3.0}},
                         RetryPolicy{},
                         /*collective_deadline=*/1.0);
  Cluster cluster(2);
  cluster.set_fault_injector(&injector);
  EXPECT_THROW(
      cluster.run([&](Communicator& comm) { collective_loop(comm, 40); }),
      RankFailedError);
  EXPECT_EQ(injector.counters().watchdog_trips, 1u);
  EXPECT_EQ(injector.counters().stragglers, 0u);  // escalated, not applied
}

TEST(FaultInjector, StragglerWithinDeadlineIsNotEscalated) {
  FaultInjector injector({FaultEvent{FaultKind::kStraggler, /*rank=*/1,
                                     /*collective_index=*/5, /*failures=*/1,
                                     /*delay_seconds=*/0.5}},
                         RetryPolicy{},
                         /*collective_deadline=*/1.0);
  Cluster cluster(2);
  cluster.set_fault_injector(&injector);
  cluster.run([&](Communicator& comm) { collective_loop(comm, 40); });
  EXPECT_EQ(injector.counters().stragglers, 1u);
  EXPECT_EQ(injector.counters().watchdog_trips, 0u);
}

TEST(FaultInjector, HangScheduleRequiresDeadlineNamedByFlag) {
  // A hang with no watchdog would be undetectable; the injector rejects
  // the schedule at construction, naming the CLI flag.
  try {
    FaultInjector injector(
        {FaultEvent{FaultKind::kHang, /*rank=*/0, /*collective_index=*/1}});
    FAIL() << "hang without a deadline was accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--collective-deadline"),
              std::string::npos);
  }
}

TEST(FaultInjector, NegativeDeadlineIsRejectedNamedByFlag) {
  try {
    FaultInjector injector(std::vector<FaultEvent>{}, RetryPolicy{},
                           /*collective_deadline=*/-1.0);
    FAIL() << "negative deadline was accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--collective-deadline"),
              std::string::npos);
  }
}

TEST(FaultInjector, ParseSpecCorruptAndHangRoundTrip) {
  const auto events =
      FaultInjector::parse_spec("corrupt@1@40@3,hang@0@e2,corrupt@2@e1");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FaultKind::kCorrupt);
  EXPECT_EQ(events[0].rank, 1);
  EXPECT_EQ(events[0].collective_index, 40u);
  EXPECT_EQ(events[0].failures, 3);
  EXPECT_EQ(events[1].kind, FaultKind::kHang);
  EXPECT_EQ(events[1].epoch, 2);
  EXPECT_EQ(events[2].kind, FaultKind::kCorrupt);
  EXPECT_EQ(events[2].epoch, 1);
  EXPECT_EQ(events[2].failures, 1);  // default
}

TEST(FaultInjector, ParseSpecRejectsMalformedCorruptAndHang) {
  // hang takes no trailing parameter.
  EXPECT_THROW(FaultInjector::parse_spec("hang@0@1@2"),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse_spec("corrupt@0"),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector::parse_spec("corrupt@0@1@x"),
               std::invalid_argument);
}

TEST(FaultInjector, NoFaultsMeansNoOverhead) {
  FaultInjector injector(std::vector<FaultEvent>{});
  Cluster cluster(2);
  cluster.set_fault_injector(&injector);
  std::vector<double> out(2, 0.0);
  cluster.run([&](Communicator& comm) {
    out[comm.rank()] = collective_loop(comm, 10);
  });
  EXPECT_EQ(out[0], out[1]);
  const FaultCounters counters = injector.counters();
  EXPECT_EQ(counters.crashes + counters.transients + counters.stragglers,
            0u);
}

}  // namespace
}  // namespace dynkge::comm
