#include "core/comm_selector.hpp"

#include <gtest/gtest.h>

#include "core/trainer.hpp"

namespace dynkge::core {
namespace {

TEST(CommModeSelector, StaticAllReduceNeverGathers) {
  CommModeSelector selector(CommMode::kAllReduce, 10);
  for (int epoch = 0; epoch < 50; ++epoch) {
    EXPECT_FALSE(selector.use_allgather(epoch));
    selector.record_epoch(epoch, 1.0);
  }
  EXPECT_DOUBLE_EQ(selector.allreduce_fraction(), 1.0);
}

TEST(CommModeSelector, StaticAllGatherAlwaysGathers) {
  CommModeSelector selector(CommMode::kAllGather, 10);
  for (int epoch = 0; epoch < 50; ++epoch) {
    EXPECT_TRUE(selector.use_allgather(epoch));
    selector.record_epoch(epoch, 1.0);
  }
  EXPECT_DOUBLE_EQ(selector.allreduce_fraction(), 0.0);
}

TEST(CommModeSelector, DynamicStartsWithAllReduce) {
  CommModeSelector selector(CommMode::kDynamic, 10);
  EXPECT_FALSE(selector.use_allgather(0));
  for (int epoch = 1; epoch < 10; ++epoch) {
    EXPECT_FALSE(selector.use_allgather(epoch)) << "epoch " << epoch;
  }
}

TEST(CommModeSelector, DynamicProbesEveryKthEpoch) {
  CommModeSelector selector(CommMode::kDynamic, 10);
  EXPECT_TRUE(selector.use_allgather(10));
  EXPECT_TRUE(selector.use_allgather(20));
  EXPECT_FALSE(selector.use_allgather(11));
}

TEST(CommModeSelector, SwitchesWhenProbeIsFaster) {
  CommModeSelector selector(CommMode::kDynamic, 5);
  // Epochs 0-4: all-reduce at 1.0s.
  for (int epoch = 0; epoch < 5; ++epoch) {
    EXPECT_FALSE(selector.use_allgather(epoch));
    selector.record_epoch(epoch, 1.0);
  }
  // Probe at epoch 5 comes back faster -> permanent switch.
  EXPECT_TRUE(selector.use_allgather(5));
  selector.record_epoch(5, 0.4);
  EXPECT_TRUE(selector.switched_to_allgather());
  for (int epoch = 6; epoch < 30; ++epoch) {
    EXPECT_TRUE(selector.use_allgather(epoch));
    selector.record_epoch(epoch, 0.4);
  }
}

TEST(CommModeSelector, StaysOnAllReduceWhenProbeIsSlower) {
  CommModeSelector selector(CommMode::kDynamic, 5);
  for (int epoch = 0; epoch < 5; ++epoch) {
    selector.record_epoch(epoch, 1.0);
  }
  selector.record_epoch(5, 2.0);  // probe slower
  EXPECT_FALSE(selector.switched_to_allgather());
  EXPECT_FALSE(selector.use_allgather(6));
  // It keeps probing: a later faster probe still switches.
  for (int epoch = 6; epoch < 10; ++epoch) selector.record_epoch(epoch, 1.0);
  EXPECT_TRUE(selector.use_allgather(10));
  selector.record_epoch(10, 0.5);
  EXPECT_TRUE(selector.switched_to_allgather());
}

TEST(CommModeSelector, AllReduceFractionDropsAfterSwitch) {
  // The paper observes ~60% fewer all-reduce epochs once quantization
  // shrinks the gather volume; the fraction statistic captures that.
  CommModeSelector selector(CommMode::kDynamic, 10);
  for (int epoch = 0; epoch < 10; ++epoch) selector.record_epoch(epoch, 1.0);
  selector.record_epoch(10, 0.1);  // switch here
  for (int epoch = 11; epoch < 40; ++epoch) {
    selector.record_epoch(epoch, 0.1);
  }
  EXPECT_NEAR(selector.allreduce_fraction(), 10.0 / 40.0, 1e-9);
}

TEST(CommModeSelector, ParameterServerIsStatic) {
  CommModeSelector selector(CommMode::kParameterServer, 10);
  for (int epoch = 0; epoch < 30; ++epoch) {
    EXPECT_EQ(selector.transport_for(epoch), Transport::kParameterServer);
    EXPECT_FALSE(selector.use_allgather(epoch));
    selector.record_epoch(epoch, 1.0);
  }
  // PS epochs are not all-reduce epochs.
  EXPECT_DOUBLE_EQ(selector.allreduce_fraction(), 0.0);
}

TEST(CommModeSelector, TransportForMatchesUseAllGather) {
  CommModeSelector selector(CommMode::kDynamic, 5);
  for (int epoch = 0; epoch < 12; ++epoch) {
    EXPECT_EQ(selector.use_allgather(epoch),
              selector.transport_for(epoch) == Transport::kAllGather);
    selector.record_epoch(epoch, 1.0);
  }
}

TEST(CommModeSelector, EmptyHistoryFraction) {
  const CommModeSelector selector(CommMode::kDynamic, 10);
  EXPECT_DOUBLE_EQ(selector.allreduce_fraction(), 0.0);
  // One convention for "no epochs recorded": the selector and a
  // default-constructed TrainReport must agree.
  EXPECT_DOUBLE_EQ(TrainReport{}.allreduce_fraction,
                   selector.allreduce_fraction());
}

TEST(CommModeSelector, RejectsBadProbeInterval) {
  EXPECT_THROW(CommModeSelector(CommMode::kDynamic, 0),
               std::invalid_argument);
  // interval 1 makes every epoch after 0 a probe, so the all-reduce
  // baseline recorded at epoch 0 would never refresh — rejected.
  EXPECT_THROW(CommModeSelector(CommMode::kDynamic, 1),
               std::invalid_argument);
  // Static modes ignore the interval entirely.
  EXPECT_NO_THROW(CommModeSelector(CommMode::kAllReduce, 0));
  EXPECT_NO_THROW(CommModeSelector(CommMode::kAllGather, 1));
}

TEST(CommModeSelector, SelectionPassesThroughWithoutTopKArm) {
  // Historical behavior: static modes and plain DRS never rewrite the
  // strategy's base selection, on probe epochs or otherwise.
  CommModeSelector statics(CommMode::kAllGather, 10);
  CommModeSelector dynamic(CommMode::kDynamic, 5);
  for (int epoch = 0; epoch < 12; ++epoch) {
    EXPECT_EQ(statics.selection_for(epoch, SelectionMode::kBernoulli),
              SelectionMode::kBernoulli);
    EXPECT_EQ(dynamic.selection_for(epoch, SelectionMode::kBernoulli),
              SelectionMode::kBernoulli);
    dynamic.record_epoch(epoch, 1.0);
  }
}

TEST(CommModeSelector, TopKArmAlternatesProbesAndGoesDenseOnBaseline) {
  CommModeSelector selector(CommMode::kDynamic, 5, /*topk_arm=*/true);
  for (int epoch = 0; epoch < 21; ++epoch) {
    const SelectionMode mode =
        selector.selection_for(epoch, SelectionMode::kBernoulli);
    if (epoch == 5 || epoch == 15) {
      // Odd probe ordinals run the base arm.
      EXPECT_EQ(mode, SelectionMode::kBernoulli) << "epoch " << epoch;
    } else if (epoch == 10 || epoch == 20) {
      // Even probe ordinals run the Top-K arm.
      EXPECT_EQ(mode, SelectionMode::kTopK) << "epoch " << epoch;
    } else {
      // All-reduce baseline epochs go dense so the probes compete
      // against the genuine unsparsified cost.
      EXPECT_EQ(mode, SelectionMode::kNone) << "epoch " << epoch;
    }
    selector.record_epoch(epoch, 1.0);  // never faster -> never switches
  }
  EXPECT_FALSE(selector.switched_to_allgather());
}

TEST(CommModeSelector, CommitsToTopKArmWhenItsProbeIsFastest) {
  CommModeSelector selector(CommMode::kDynamic, 5, /*topk_arm=*/true);
  for (int epoch = 0; epoch < 5; ++epoch) selector.record_epoch(epoch, 1.0);
  selector.record_epoch(5, 0.8);  // base arm probe: faster, but not best
  // No switch yet on the base probe alone? It did beat the baseline, so
  // the selector commits immediately — to the only arm measured so far.
  EXPECT_TRUE(selector.switched_to_allgather());
  EXPECT_EQ(selector.committed_arm(), CommModeSelector::kArmBase);

  // Fresh selector where the base probe loses and the Top-K probe wins:
  // the switch fires on the Top-K probe and commits to the Top-K arm.
  CommModeSelector topk(CommMode::kDynamic, 5, /*topk_arm=*/true);
  for (int epoch = 0; epoch < 5; ++epoch) topk.record_epoch(epoch, 1.0);
  topk.record_epoch(5, 1.5);  // base arm probe: slower, no switch
  EXPECT_FALSE(topk.switched_to_allgather());
  for (int epoch = 6; epoch < 10; ++epoch) topk.record_epoch(epoch, 1.0);
  topk.record_epoch(10, 0.3);  // Top-K arm probe: wins
  EXPECT_TRUE(topk.switched_to_allgather());
  EXPECT_EQ(topk.committed_arm(), CommModeSelector::kArmTopK);
  // Post-switch epochs all run the committed arm over all-gather.
  for (int epoch = 11; epoch < 15; ++epoch) {
    EXPECT_TRUE(topk.use_allgather(epoch));
    EXPECT_EQ(topk.selection_for(epoch, SelectionMode::kBernoulli),
              SelectionMode::kTopK);
    topk.record_epoch(epoch, 0.3);
  }
}

TEST(CommModeSelector, ProbeComparesAgainstFreshBaseline) {
  // Regression: the baseline must come from the most recent all-reduce
  // epoch, not a stale earlier one. Epoch 0 is slow (1.0s), epoch 1 is
  // fast (0.2s); the probe at epoch 2 (0.5s) beats the stale epoch-0 time
  // but not the fresh epoch-1 baseline, so the selector must not switch.
  CommModeSelector selector(CommMode::kDynamic, 2);
  selector.record_epoch(0, 1.0);
  selector.record_epoch(1, 0.2);
  ASSERT_TRUE(selector.use_allgather(2));
  selector.record_epoch(2, 0.5);
  EXPECT_FALSE(selector.switched_to_allgather());
  // A later probe that beats its fresh baseline still switches.
  selector.record_epoch(3, 1.0);
  ASSERT_TRUE(selector.use_allgather(4));
  selector.record_epoch(4, 0.5);
  EXPECT_TRUE(selector.switched_to_allgather());
}

}  // namespace
}  // namespace dynkge::core
