#include "core/comm_selector.hpp"

#include <gtest/gtest.h>

namespace dynkge::core {
namespace {

TEST(CommModeSelector, StaticAllReduceNeverGathers) {
  CommModeSelector selector(CommMode::kAllReduce, 10);
  for (int epoch = 0; epoch < 50; ++epoch) {
    EXPECT_FALSE(selector.use_allgather(epoch));
    selector.record_epoch(epoch, 1.0);
  }
  EXPECT_DOUBLE_EQ(selector.allreduce_fraction(), 1.0);
}

TEST(CommModeSelector, StaticAllGatherAlwaysGathers) {
  CommModeSelector selector(CommMode::kAllGather, 10);
  for (int epoch = 0; epoch < 50; ++epoch) {
    EXPECT_TRUE(selector.use_allgather(epoch));
    selector.record_epoch(epoch, 1.0);
  }
  EXPECT_DOUBLE_EQ(selector.allreduce_fraction(), 0.0);
}

TEST(CommModeSelector, DynamicStartsWithAllReduce) {
  CommModeSelector selector(CommMode::kDynamic, 10);
  EXPECT_FALSE(selector.use_allgather(0));
  for (int epoch = 1; epoch < 10; ++epoch) {
    EXPECT_FALSE(selector.use_allgather(epoch)) << "epoch " << epoch;
  }
}

TEST(CommModeSelector, DynamicProbesEveryKthEpoch) {
  CommModeSelector selector(CommMode::kDynamic, 10);
  EXPECT_TRUE(selector.use_allgather(10));
  EXPECT_TRUE(selector.use_allgather(20));
  EXPECT_FALSE(selector.use_allgather(11));
}

TEST(CommModeSelector, SwitchesWhenProbeIsFaster) {
  CommModeSelector selector(CommMode::kDynamic, 5);
  // Epochs 0-4: all-reduce at 1.0s.
  for (int epoch = 0; epoch < 5; ++epoch) {
    EXPECT_FALSE(selector.use_allgather(epoch));
    selector.record_epoch(epoch, 1.0);
  }
  // Probe at epoch 5 comes back faster -> permanent switch.
  EXPECT_TRUE(selector.use_allgather(5));
  selector.record_epoch(5, 0.4);
  EXPECT_TRUE(selector.switched_to_allgather());
  for (int epoch = 6; epoch < 30; ++epoch) {
    EXPECT_TRUE(selector.use_allgather(epoch));
    selector.record_epoch(epoch, 0.4);
  }
}

TEST(CommModeSelector, StaysOnAllReduceWhenProbeIsSlower) {
  CommModeSelector selector(CommMode::kDynamic, 5);
  for (int epoch = 0; epoch < 5; ++epoch) {
    selector.record_epoch(epoch, 1.0);
  }
  selector.record_epoch(5, 2.0);  // probe slower
  EXPECT_FALSE(selector.switched_to_allgather());
  EXPECT_FALSE(selector.use_allgather(6));
  // It keeps probing: a later faster probe still switches.
  for (int epoch = 6; epoch < 10; ++epoch) selector.record_epoch(epoch, 1.0);
  EXPECT_TRUE(selector.use_allgather(10));
  selector.record_epoch(10, 0.5);
  EXPECT_TRUE(selector.switched_to_allgather());
}

TEST(CommModeSelector, AllReduceFractionDropsAfterSwitch) {
  // The paper observes ~60% fewer all-reduce epochs once quantization
  // shrinks the gather volume; the fraction statistic captures that.
  CommModeSelector selector(CommMode::kDynamic, 10);
  for (int epoch = 0; epoch < 10; ++epoch) selector.record_epoch(epoch, 1.0);
  selector.record_epoch(10, 0.1);  // switch here
  for (int epoch = 11; epoch < 40; ++epoch) {
    selector.record_epoch(epoch, 0.1);
  }
  EXPECT_NEAR(selector.allreduce_fraction(), 10.0 / 40.0, 1e-9);
}

TEST(CommModeSelector, ParameterServerIsStatic) {
  CommModeSelector selector(CommMode::kParameterServer, 10);
  for (int epoch = 0; epoch < 30; ++epoch) {
    EXPECT_EQ(selector.transport_for(epoch), Transport::kParameterServer);
    EXPECT_FALSE(selector.use_allgather(epoch));
    selector.record_epoch(epoch, 1.0);
  }
  // PS epochs are not all-reduce epochs.
  EXPECT_DOUBLE_EQ(selector.allreduce_fraction(), 0.0);
}

TEST(CommModeSelector, TransportForMatchesUseAllGather) {
  CommModeSelector selector(CommMode::kDynamic, 5);
  for (int epoch = 0; epoch < 12; ++epoch) {
    EXPECT_EQ(selector.use_allgather(epoch),
              selector.transport_for(epoch) == Transport::kAllGather);
    selector.record_epoch(epoch, 1.0);
  }
}

TEST(CommModeSelector, EmptyHistoryFraction) {
  const CommModeSelector selector(CommMode::kDynamic, 10);
  EXPECT_DOUBLE_EQ(selector.allreduce_fraction(), 0.0);
}

TEST(CommModeSelector, RejectsBadProbeInterval) {
  EXPECT_THROW(CommModeSelector(CommMode::kDynamic, 0),
               std::invalid_argument);
  // Static modes ignore the interval entirely.
  EXPECT_NO_THROW(CommModeSelector(CommMode::kAllReduce, 0));
}

}  // namespace
}  // namespace dynkge::core
