// Integration tests for the DistributedTrainer: every strategy combination
// must run end to end, converge on a learnable graph, stay deterministic,
// and keep replicas numerically consistent.
#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "kge/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace dynkge::core {
namespace {

const kge::Dataset& tiny_dataset() {
  static const kge::Dataset dataset = kge::generate_synthetic([] {
    kge::SyntheticSpec spec;
    spec.num_entities = 300;
    spec.num_relations = 24;
    spec.num_triples = 4000;
    spec.num_latent_types = 6;
    spec.seed = 99;
    return spec;
  }());
  return dataset;
}

TrainConfig fast_config(int nodes) {
  TrainConfig config;
  config.embedding_rank = 8;
  config.num_nodes = nodes;
  config.batch_size = 200;
  config.max_epochs = 12;
  config.lr.base_lr = 0.01;
  config.lr.tolerance = 6;
  config.compute_final_metrics = false;
  config.seed = 4242;
  return config;
}

TEST(Trainer, RejectsBadConfig) {
  TrainConfig config = fast_config(1);
  config.num_nodes = 0;
  EXPECT_THROW(DistributedTrainer(tiny_dataset(), config),
               std::invalid_argument);
  config = fast_config(1);
  config.batch_size = 0;
  EXPECT_THROW(DistributedTrainer(tiny_dataset(), config),
               std::invalid_argument);
  config = fast_config(1);
  config.strategy.negatives_used = 5;
  config.strategy.negatives_sampled = 2;
  EXPECT_THROW(DistributedTrainer(tiny_dataset(), config),
               std::invalid_argument);
  config = fast_config(1);
  config.host_threads = -1;
  EXPECT_THROW(DistributedTrainer(tiny_dataset(), config),
               std::invalid_argument);
  // Dynamic mode with probe_interval 1 would never refresh its all-reduce
  // baseline; the trainer rejects it up front rather than at epoch time.
  config = fast_config(2);
  config.strategy = StrategyConfig::drs_1bit(2);
  config.strategy.dynamic_probe_interval = 1;
  EXPECT_THROW(DistributedTrainer(tiny_dataset(), config),
               std::invalid_argument);
}

TEST(Trainer, ReportBasicsFilled) {
  TrainConfig config = fast_config(2);
  config.strategy = StrategyConfig::baseline_allreduce(2);
  const auto report = DistributedTrainer(tiny_dataset(), config).train();
  EXPECT_EQ(report.num_nodes, 2);
  EXPECT_EQ(report.strategy_label, "allreduce");
  EXPECT_EQ(report.model_name, "complex");
  EXPECT_GT(report.epochs, 0);
  EXPECT_LE(report.epochs, config.max_epochs);
  EXPECT_EQ(report.epoch_log.size(), static_cast<std::size_t>(report.epochs));
  EXPECT_GT(report.total_sim_seconds, 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.allreduce_fraction, 1.0);
}

TEST(Trainer, EpochLogIsInternallyConsistent) {
  TrainConfig config = fast_config(2);
  config.strategy = StrategyConfig::baseline_allgather(2);
  const auto report = DistributedTrainer(tiny_dataset(), config).train();
  double sim_sum = 0.0;
  for (const auto& record : report.epoch_log) {
    EXPECT_GE(record.sim_seconds, 0.0);
    EXPECT_GE(record.comm_seconds, 0.0);
    EXPECT_LE(record.comm_seconds, record.sim_seconds + 1e-9);
    EXPECT_TRUE(record.used_allgather);
    EXPECT_GT(record.lr, 0.0);
    sim_sum += record.sim_seconds;
  }
  EXPECT_NEAR(sim_sum, report.total_sim_seconds, 1e-9);
}

TEST(Trainer, DeterministicAcrossRuns) {
  TrainConfig config = fast_config(2);
  config.strategy = StrategyConfig::rs_1bit(2);
  const auto a = DistributedTrainer(tiny_dataset(), config).train();
  const auto b = DistributedTrainer(tiny_dataset(), config).train();
  ASSERT_EQ(a.epochs, b.epochs);
  for (int e = 0; e < a.epochs; ++e) {
    EXPECT_DOUBLE_EQ(a.epoch_log[e].mean_loss, b.epoch_log[e].mean_loss);
    EXPECT_DOUBLE_EQ(a.epoch_log[e].val_accuracy,
                     b.epoch_log[e].val_accuracy);
  }
}

TEST(Trainer, SeedChangesTrajectory) {
  TrainConfig config = fast_config(2);
  config.strategy = StrategyConfig::baseline_allreduce(2);
  const auto a = DistributedTrainer(tiny_dataset(), config).train();
  config.seed = 777;
  const auto b = DistributedTrainer(tiny_dataset(), config).train();
  EXPECT_NE(a.epoch_log[0].mean_loss, b.epoch_log[0].mean_loss);
}

class TrainerStrategyP
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    NodesByStrategy, TrainerStrategyP,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(0, 1, 2, 3, 4, 5, 6)));

StrategyConfig strategy_by_index(int index) {
  switch (index) {
    case 0:
      return StrategyConfig::baseline_allreduce(2);
    case 1:
      return StrategyConfig::baseline_allgather(2);
    case 2:
      return StrategyConfig::rs(2);
    case 3:
      return StrategyConfig::rs_1bit(2);
    case 4:
      return StrategyConfig::drs_1bit(2);
    case 5:
      return StrategyConfig::baseline_parameter_server(2);
    default:
      return StrategyConfig::drs_1bit_rp_ss(5, 1);
  }
}

TEST_P(TrainerStrategyP, RunsAndReducesLoss) {
  const auto [nodes, strategy_index] = GetParam();
  TrainConfig config = fast_config(nodes);
  config.strategy = strategy_by_index(strategy_index);
  const auto report = DistributedTrainer(tiny_dataset(), config).train();
  ASSERT_GE(report.epochs, 2);
  EXPECT_LT(report.epoch_log.back().mean_loss,
            report.epoch_log.front().mean_loss)
      << report.strategy_label << " on " << nodes << " nodes";
  // The central invariant of synchronous data-parallel training: all
  // replicas end bit-identical, under every strategy combination.
  EXPECT_TRUE(report.replicas_consistent)
      << report.strategy_label << " on " << nodes << " nodes";
}

TEST(Trainer, ConvergesToHighAccuracy) {
  TrainConfig config = fast_config(2);
  config.max_epochs = 120;
  config.lr.tolerance = 15;
  config.compute_final_metrics = true;
  config.strategy = StrategyConfig::baseline_allreduce(2);
  const auto report = DistributedTrainer(tiny_dataset(), config).train();
  EXPECT_GT(report.tca, 85.0);
  EXPECT_GT(report.ranking.mrr, 0.5);
  EXPECT_GT(report.final_val_accuracy, 85.0);
}

TEST(Trainer, CombinedStrategyConvergesToo) {
  TrainConfig config = fast_config(2);
  config.max_epochs = 200;
  config.lr.tolerance = 15;
  config.compute_final_metrics = true;
  config.strategy = StrategyConfig::drs_1bit_rp_ss(5, 1);
  const auto report = DistributedTrainer(tiny_dataset(), config).train();
  EXPECT_GT(report.tca, 85.0);
  EXPECT_GT(report.ranking.mrr, 0.5);
}

TEST(Trainer, RelationPartitionMovesFewerRelationBytes) {
  TrainConfig config = fast_config(4);
  config.strategy = StrategyConfig::baseline_allgather(2);
  const auto without = DistributedTrainer(tiny_dataset(), config).train();
  config.strategy.relation_partition = true;
  const auto with = DistributedTrainer(tiny_dataset(), config).train();
  // Same epochs are not guaranteed; compare per-epoch traffic instead.
  const double bytes_without =
      static_cast<double>(without.comm_stats.total_bytes()) / without.epochs;
  const double bytes_with =
      static_cast<double>(with.comm_stats.total_bytes()) / with.epochs;
  EXPECT_LT(bytes_with, bytes_without);
}

TEST(Trainer, QuantizationReducesGatherTraffic) {
  TrainConfig config = fast_config(4);
  config.strategy = StrategyConfig::rs(2);
  const auto raw = DistributedTrainer(tiny_dataset(), config).train();
  config.strategy = StrategyConfig::rs_1bit(2);
  const auto quant = DistributedTrainer(tiny_dataset(), config).train();
  const auto gather_bytes = [](const TrainReport& r) {
    return static_cast<double>(
               r.comm_stats.of(comm::CollectiveKind::kAllGatherV).bytes) /
           r.epochs;
  };
  EXPECT_LT(gather_bytes(quant), gather_bytes(raw) / 4.0);
}

TEST(Trainer, DynamicSelectorEventuallyGathers) {
  TrainConfig config = fast_config(4);
  config.max_epochs = 25;
  config.lr.tolerance = 25;  // keep training alive for the probes
  config.strategy = StrategyConfig::drs_1bit(2);
  config.strategy.dynamic_probe_interval = 5;
  const auto report = DistributedTrainer(tiny_dataset(), config).train();
  // With 1-bit gather volume, the probe at epoch 5 must win.
  EXPECT_LT(report.allreduce_fraction, 0.5);
  bool gathered_late = false;
  for (const auto& record : report.epoch_log) {
    if (record.epoch > 10) gathered_late |= record.used_allgather;
  }
  EXPECT_TRUE(gathered_late);
}

TEST(Trainer, NodeScalingShrinksEpochTime) {
  TrainConfig config = fast_config(1);
  config.max_epochs = 8;
  config.strategy = StrategyConfig::baseline_allreduce(2);
  const auto one = DistributedTrainer(tiny_dataset(), config).train();
  config.num_nodes = 4;
  const auto four = DistributedTrainer(tiny_dataset(), config).train();
  EXPECT_LT(four.epoch_log.back().sim_seconds,
            one.epoch_log.back().sim_seconds);
}

TEST(Trainer, SampleSelectionKeepsClassBalance) {
  // 1-out-of-5: exactly one negative per positive is trained on, so the
  // per-epoch example count matches the 1:1 baseline, not the 5:1 one.
  TrainConfig config = fast_config(1);
  config.max_epochs = 3;
  config.strategy = StrategyConfig::baseline_allreduce(5);
  config.strategy.negatives_used = 1;
  const auto ss = DistributedTrainer(tiny_dataset(), config).train();
  config.strategy = StrategyConfig::baseline_allreduce(1);
  const auto one = DistributedTrainer(tiny_dataset(), config).train();
  config.strategy = StrategyConfig::baseline_allreduce(5);
  const auto five = DistributedTrainer(tiny_dataset(), config).train();
  // Rows touched per step reflect examples trained: SS(5->1) ~ baseline(1).
  EXPECT_NEAR(ss.epoch_log[0].rows_before_selection,
              one.epoch_log[0].rows_before_selection,
              one.epoch_log[0].rows_before_selection * 0.2);
  EXPECT_LT(ss.epoch_log[0].rows_before_selection,
            five.epoch_log[0].rows_before_selection);
}

TEST(Trainer, OtherModelsTrainToo) {
  for (const char* model : {"distmult", "transe"}) {
    TrainConfig config = fast_config(2);
    config.model_name = model;
    config.max_epochs = 10;
    config.strategy = StrategyConfig::baseline_allreduce(2);
    const auto report = DistributedTrainer(tiny_dataset(), config).train();
    EXPECT_LT(report.epoch_log.back().mean_loss,
              report.epoch_log.front().mean_loss)
        << model;
  }
}

TEST(Trainer, ParameterServerMatchesAllReduceTrajectory) {
  // Identical numerics through a different modeled transport: the loss
  // trajectories must match exactly.
  TrainConfig config = fast_config(2);
  config.max_epochs = 6;
  config.strategy = StrategyConfig::baseline_allreduce(2);
  const auto reduce = DistributedTrainer(tiny_dataset(), config).train();
  config.strategy = StrategyConfig::baseline_parameter_server(2);
  const auto ps = DistributedTrainer(tiny_dataset(), config).train();
  ASSERT_EQ(reduce.epochs, ps.epochs);
  for (int e = 0; e < reduce.epochs; ++e) {
    EXPECT_DOUBLE_EQ(reduce.epoch_log[e].mean_loss,
                     ps.epoch_log[e].mean_loss);
  }
  EXPECT_EQ(ps.strategy_label, "param-server");
}

TEST(Trainer, CommTraceCapturedWhenRequested) {
  TrainConfig config = fast_config(2);
  config.max_epochs = 3;
  config.trace_communication = true;
  config.strategy = StrategyConfig::baseline_allgather(2);
  const auto report = DistributedTrainer(tiny_dataset(), config).train();
  ASSERT_FALSE(report.comm_trace.empty());
  // The timeline ends near the total simulated time and never regresses.
  for (std::size_t i = 1; i < report.comm_trace.size(); ++i) {
    EXPECT_GE(report.comm_trace[i].sim_start,
              report.comm_trace[i - 1].sim_start);
  }
  // Off by default.
  config.trace_communication = false;
  const auto quiet = DistributedTrainer(tiny_dataset(), config).train();
  EXPECT_TRUE(quiet.comm_trace.empty());
}

TEST(Trainer, WarmStartResumesFromGivenParameters) {
  TrainConfig config = fast_config(2);
  config.max_epochs = 8;
  config.strategy = StrategyConfig::baseline_allreduce(2);
  const auto first = DistributedTrainer(tiny_dataset(), config).train();

  config.warm_start = first.model;
  const auto resumed = DistributedTrainer(tiny_dataset(), config).train();
  // A warm start begins where the cold run ended: its first-epoch loss is
  // near the cold run's last-epoch loss, far below the cold first epoch.
  EXPECT_LT(resumed.epoch_log.front().mean_loss,
            0.5 * first.epoch_log.front().mean_loss);
}

TEST(Trainer, WarmStartRejectsShapeMismatch) {
  TrainConfig config = fast_config(1);
  config.max_epochs = 2;
  config.compute_final_metrics = false;
  config.strategy = StrategyConfig::baseline_allreduce(1);
  const auto report = DistributedTrainer(tiny_dataset(), config).train();

  config.embedding_rank = 16;  // different width than the checkpoint
  config.warm_start = report.model;
  EXPECT_THROW(DistributedTrainer(tiny_dataset(), config).train(),
               std::invalid_argument);
}

// --- Host parallelism: wall-time knob only, never a numerics knob ---

bool same_floats(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(Trainer, HostThreadCountIsBitDeterministic) {
  // The simulated cluster must produce byte-identical models and epoch
  // logs no matter how many host threads co-schedule the ranks: fewer
  // workers than ranks, matching, and more than ranks.
  TrainConfig config = fast_config(4);
  config.strategy = StrategyConfig::rs_1bit(2);
  std::vector<TrainReport> reports;
  for (const int host_threads : {1, 2, 8}) {
    config.host_threads = host_threads;
    reports.push_back(DistributedTrainer(tiny_dataset(), config).train());
    EXPECT_EQ(reports.back().host_threads, host_threads);
  }
  const TrainReport& base = reports.front();
  ASSERT_NE(base.model, nullptr);
  for (std::size_t i = 1; i < reports.size(); ++i) {
    const TrainReport& other = reports[i];
    EXPECT_TRUE(other.replicas_consistent);
    ASSERT_EQ(base.epochs, other.epochs) << "host_threads run " << i;
    for (int e = 0; e < base.epochs; ++e) {
      EXPECT_DOUBLE_EQ(base.epoch_log[e].mean_loss,
                       other.epoch_log[e].mean_loss);
      EXPECT_DOUBLE_EQ(base.epoch_log[e].val_accuracy,
                       other.epoch_log[e].val_accuracy);
      EXPECT_DOUBLE_EQ(base.epoch_log[e].lr, other.epoch_log[e].lr);
      EXPECT_EQ(base.epoch_log[e].used_allgather,
                other.epoch_log[e].used_allgather);
      EXPECT_EQ(base.epoch_log[e].rows_sent, other.epoch_log[e].rows_sent);
      EXPECT_EQ(base.epoch_log[e].rows_before_selection,
                other.epoch_log[e].rows_before_selection);
    }
    ASSERT_NE(other.model, nullptr);
    EXPECT_TRUE(same_floats(base.model->entities().flat(),
                            other.model->entities().flat()))
        << "entity embeddings diverged at host_threads run " << i;
    EXPECT_TRUE(same_floats(base.model->relations().flat(),
                            other.model->relations().flat()))
        << "relation embeddings diverged at host_threads run " << i;
  }
}

TEST(Trainer, HostTelemetryFilled) {
  TrainConfig config = fast_config(2);
  config.max_epochs = 4;
  config.host_threads = 2;
  config.strategy = StrategyConfig::baseline_allreduce(2);
  const auto report = DistributedTrainer(tiny_dataset(), config).train();
  EXPECT_EQ(report.host_threads, 2);
  EXPECT_GT(report.compute_cpu_seconds, 0.0);
  EXPECT_GT(report.host_speedup(), 0.0);
}

TEST(Trainer, SharedHostPoolMatchesPrivatePool) {
  // A caller-owned pool (e.g. one shared with the serving layer) must not
  // change the trajectory, and must be reusable across trainings.
  TrainConfig config = fast_config(2);
  config.max_epochs = 5;
  config.strategy = StrategyConfig::rs(2);
  const auto solo = DistributedTrainer(tiny_dataset(), config).train();

  auto pool = std::make_shared<util::ThreadPool>(2);
  config.host_pool = pool;
  const auto first = DistributedTrainer(tiny_dataset(), config).train();
  const auto second = DistributedTrainer(tiny_dataset(), config).train();
  EXPECT_EQ(first.host_threads, 2);
  ASSERT_EQ(solo.epochs, first.epochs);
  ASSERT_EQ(solo.epochs, second.epochs);
  for (int e = 0; e < solo.epochs; ++e) {
    EXPECT_DOUBLE_EQ(solo.epoch_log[e].mean_loss,
                     first.epoch_log[e].mean_loss);
    EXPECT_DOUBLE_EQ(solo.epoch_log[e].mean_loss,
                     second.epoch_log[e].mean_loss);
  }
}

TEST(Trainer, SelectionIntroducesSparsity) {
  TrainConfig config = fast_config(2);
  config.max_epochs = 5;
  config.strategy = StrategyConfig::rs(2);
  const auto report = DistributedTrainer(tiny_dataset(), config).train();
  const auto& last = report.epoch_log.back();
  EXPECT_LT(last.rows_sent, last.rows_before_selection);
}

}  // namespace
}  // namespace dynkge::core
