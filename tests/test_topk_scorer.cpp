#include "serve/scorer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "kge/complex_model.hpp"
#include "kge/evaluator.hpp"
#include "kge/model_factory.hpp"

namespace dynkge::serve {
namespace {

using kge::Dataset;
using kge::EntityId;
using kge::RelationId;
using kge::Triple;

constexpr std::int32_t kEntities = 60;
constexpr std::int32_t kRelations = 4;

/// A small dataset with deterministic pseudo-random splits.
Dataset make_dataset() {
  util::Rng rng(11);
  const auto triple = [&] {
    return Triple{static_cast<EntityId>(rng.next_below(kEntities)),
                  static_cast<RelationId>(rng.next_below(kRelations)),
                  static_cast<EntityId>(rng.next_below(kEntities))};
  };
  kge::TripleList train, valid, test;
  for (int i = 0; i < 120; ++i) train.push_back(triple());
  for (int i = 0; i < 20; ++i) valid.push_back(triple());
  for (int i = 0; i < 20; ++i) test.push_back(triple());
  return Dataset(kEntities, kRelations, train, valid, test);
}

std::unique_ptr<kge::KgeModel> make_trained_like_model() {
  auto model = kge::make_model("complex", kEntities, kRelations, 4);
  util::Rng rng(7);
  model->init(rng);
  return model;
}

/// Reference ordering: all entities sorted by (score desc, id asc).
TopKResult brute_force(const kge::KgeModel& model, const TopKQuery& q) {
  std::vector<double> scores(model.num_entities());
  if (q.direction == Direction::kTail) {
    model.score_all_tails(q.entity, q.relation, scores);
  } else {
    model.score_all_heads(q.relation, q.entity, scores);
  }
  TopKResult all;
  for (EntityId e = 0; e < model.num_entities(); ++e) {
    all.push_back({e, scores[e]});
  }
  std::sort(all.begin(), all.end(),
            [](const ScoredEntity& a, const ScoredEntity& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.entity < b.entity;
            });
  return all;
}

TEST(TopKScorer, MatchesBruteForceOrdering) {
  const auto model = make_trained_like_model();
  const TopKScorer scorer;
  for (const auto direction : {Direction::kTail, Direction::kHead}) {
    const TopKQuery q{direction, 3, 1, 10, false};
    const auto expected = brute_force(*model, q);
    const auto got = scorer.topk(q, *model);
    ASSERT_EQ(got.size(), 10u);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].entity, expected[i].entity) << "position " << i;
      EXPECT_DOUBLE_EQ(got[i].score, expected[i].score);
    }
  }
}

TEST(TopKScorer, ScoresAreModelScores) {
  const auto model = make_trained_like_model();
  const TopKScorer scorer;
  std::vector<double> tail_scores(kEntities), head_scores(kEntities);
  model->score_all_tails(5, 2, tail_scores);
  model->score_all_heads(2, 5, head_scores);

  const auto tails = scorer.topk({Direction::kTail, 5, 2, 5, false}, *model);
  for (const auto& [entity, score] : tails) {
    // Bit-exact vs the blocked scan the evaluator uses; within float
    // rounding of the per-triple score() (which composes in double).
    EXPECT_DOUBLE_EQ(score, tail_scores[entity]);
    EXPECT_NEAR(score, model->score(5, 2, entity),
                1e-5 * (1.0 + std::abs(score)));
  }
  const auto heads = scorer.topk({Direction::kHead, 5, 2, 5, false}, *model);
  for (const auto& [entity, score] : heads) {
    EXPECT_DOUBLE_EQ(score, head_scores[entity]);
    EXPECT_NEAR(score, model->score(entity, 2, 5),
                1e-5 * (1.0 + std::abs(score)));
  }
}

TEST(TopKScorer, ParallelMatchesSerial) {
  const auto model = make_trained_like_model();
  // Tiny blocks force many chunks; results must not depend on the split.
  const TopKScorer scorer(nullptr, /*block_size=*/7);
  for (const std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    for (EntityId e = 0; e < 8; ++e) {
      const TopKQuery q{Direction::kTail, e, e % kRelations, 12, false};
      EXPECT_EQ(scorer.topk(q, *model, pool), scorer.topk(q, *model))
          << "threads " << threads;
    }
  }
}

TEST(TopKScorer, FilterExcludesKnownTriples) {
  const auto model = make_trained_like_model();
  const Dataset dataset = make_dataset();
  const TopKScorer scorer(&dataset);
  const Triple probe = dataset.train()[0];
  const auto result = scorer.topk(
      {Direction::kTail, probe.head, probe.relation,
       static_cast<std::int32_t>(kEntities), true},
      *model);
  for (const auto& [entity, score] : result) {
    EXPECT_FALSE(dataset.contains(probe.head, probe.relation, entity));
  }
  // The known tail is present without the filter.
  const auto unfiltered = scorer.topk(
      {Direction::kTail, probe.head, probe.relation,
       static_cast<std::int32_t>(kEntities), false},
      *model);
  EXPECT_TRUE(std::any_of(unfiltered.begin(), unfiltered.end(),
                          [&](const ScoredEntity& s) {
                            return s.entity == probe.tail;
                          }));
}

/// The correctness anchor: ranks derived from TopKScorer results must
/// equal the ranks Evaluator::link_prediction computes, filtered and raw,
/// on both prediction sides, for every test triple.
TEST(TopKScorer, RankParityWithEvaluator) {
  const auto model = make_trained_like_model();
  const Dataset dataset = make_dataset();
  const kge::Evaluator evaluator(dataset);
  const TopKScorer scorer(&dataset);

  for (const bool filtered : {false, true}) {
    kge::EvalOptions options;
    options.filtered = filtered;
    for (const Triple& t : dataset.test()) {
      // Evaluator's rank for one triple, one side at a time:
      // mrr_{head,tail}_side of a single-triple evaluation is 1/rank.
      const auto metrics =
          evaluator.link_prediction(*model, std::span(&t, 1), options);
      const auto expected_head_rank =
          static_cast<std::size_t>(std::llround(1.0 / metrics.mrr_head_side));
      const auto expected_tail_rank =
          static_cast<std::size_t>(std::llround(1.0 / metrics.mrr_tail_side));

      // Scorer-derived rank: 1 + number of candidates that outscore the
      // true entity. With filtering the scorer drops known triples
      // entirely (including the true one) — exactly the candidates the
      // evaluator skips.
      const auto rank_from_scorer = [&](Direction direction) {
        const EntityId fixed =
            direction == Direction::kTail ? t.head : t.tail;
        const EntityId truth =
            direction == Direction::kTail ? t.tail : t.head;
        // True score exactly as the evaluator reads it: out of the
        // blocked scan, not the per-triple score() (float precompose
        // differs in the last bits).
        std::vector<double> all(kEntities);
        if (direction == Direction::kTail) {
          model->score_all_tails(t.head, t.relation, all);
        } else {
          model->score_all_heads(t.relation, t.tail, all);
        }
        const double true_score = all[truth];
        const auto result = scorer.topk(
            {direction, fixed, t.relation,
             static_cast<std::int32_t>(kEntities), filtered},
            *model);
        std::size_t rank = 1;
        for (const auto& [entity, score] : result) {
          rank += entity != truth && score > true_score;
        }
        return rank;
      };
      EXPECT_EQ(rank_from_scorer(Direction::kTail), expected_tail_rank);
      EXPECT_EQ(rank_from_scorer(Direction::kHead), expected_head_rank);
    }
  }
}

TEST(TopKScorer, TruncatesToK) {
  const auto model = make_trained_like_model();
  const TopKScorer scorer;
  EXPECT_EQ(scorer.topk({Direction::kTail, 0, 0, 3, false}, *model).size(), 3u);
  EXPECT_EQ(scorer.topk({Direction::kTail, 0, 0, 1000, false}, *model).size(),
            static_cast<std::size_t>(kEntities));
}

TEST(TopKScorer, RejectsBadQueries) {
  const auto model = make_trained_like_model();
  const TopKScorer scorer;
  EXPECT_THROW(scorer.topk({Direction::kTail, 0, 0, 0, false}, *model),
               std::invalid_argument);
  EXPECT_THROW(scorer.topk({Direction::kTail, kEntities, 0, 5, false}, *model),
               std::out_of_range);
  EXPECT_THROW(scorer.topk({Direction::kTail, 0, kRelations, 5, false}, *model),
               std::out_of_range);
  ThreadPool pool(2);
  EXPECT_THROW(scorer.topk({Direction::kTail, -1, 0, 5, false}, *model, pool),
               std::out_of_range);
}

}  // namespace
}  // namespace dynkge::serve
