// Elastic training determinism: a run that loses a rank mid-flight and
// shrinks to the survivors must end byte-identical to a fresh run at the
// smaller world size resumed from the same snapshot — for every paper
// strategy, including relation partition (whose owner-only relation rows
// must be re-gathered and re-partitioned over the survivors).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <span>
#include <string>

#include "comm/fault.hpp"
#include "core/trainer.hpp"
#include "kge/synthetic.hpp"

namespace dynkge::core {
namespace {

const kge::Dataset& tiny_dataset() {
  static const kge::Dataset dataset = kge::generate_synthetic([] {
    kge::SyntheticSpec spec;
    spec.num_entities = 300;
    spec.num_relations = 24;
    spec.num_triples = 4000;
    spec.num_latent_types = 6;
    spec.seed = 99;
    return spec;
  }());
  return dataset;
}

TrainConfig fast_config(int num_nodes) {
  TrainConfig config;
  config.embedding_rank = 8;
  config.num_nodes = num_nodes;
  config.batch_size = 200;
  config.max_epochs = 4;
  config.lr.base_lr = 0.01;
  config.lr.tolerance = 6;
  config.compute_final_metrics = false;
  config.seed = 4242;
  return config;
}

std::string fresh_dir(const std::string& name) {
  return ::testing::TempDir() + "dynkge_elastic_" +
         std::to_string(::getpid()) + "_" + name;
}

bool same_floats(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void expect_same_model(const TrainReport& a, const TrainReport& b,
                       const char* label) {
  ASSERT_NE(a.model, nullptr) << label;
  ASSERT_NE(b.model, nullptr) << label;
  EXPECT_TRUE(same_floats(a.model->entities().flat(),
                          b.model->entities().flat()))
      << label << ": entity embeddings differ";
  EXPECT_TRUE(same_floats(a.model->relations().flat(),
                          b.model->relations().flat()))
      << label << ": relation embeddings differ";
}

StrategyConfig strategy_by_name(const std::string& name) {
  if (name == "allreduce") return StrategyConfig::baseline_allreduce(2);
  if (name == "drs") return StrategyConfig::drs(2);
  if (name == "rs") return StrategyConfig::rs(2);
  if (name == "rs_1bit") return StrategyConfig::rs_1bit(2);
  return StrategyConfig::drs_1bit_rp_ss(5, 1);  // "full": relation partition
}

comm::FaultInjector crash_at_epoch(int rank, int epoch) {
  comm::FaultEvent event;
  event.kind = comm::FaultKind::kRankCrash;
  event.rank = rank;
  event.epoch = epoch;
  return comm::FaultInjector({event});
}

/// Reference for a shrink at `crash_epoch`: run the big world to the
/// snapshot the recovery will roll back to (end of crash_epoch - 1), then
/// resume a fresh run at the shrunk world from that snapshot.
TrainReport shrink_reference(const std::string& strategy, int big_world,
                             int small_world, int crash_epoch,
                             const std::string& dir_tag) {
  TrainConfig first_leg = fast_config(big_world);
  first_leg.strategy = strategy_by_name(strategy);
  first_leg.checkpoint.dir = fresh_dir(dir_tag);
  first_leg.max_epochs = crash_epoch;
  DistributedTrainer(tiny_dataset(), first_leg).train();

  TrainConfig second_leg = fast_config(small_world);
  second_leg.strategy = strategy_by_name(strategy);
  second_leg.checkpoint.dir = first_leg.checkpoint.dir;
  second_leg.checkpoint.resume = true;
  second_leg.elastic.enabled = true;  // permits the shrink-resume
  return DistributedTrainer(tiny_dataset(), second_leg).train();
}

class ElasticStrategyP : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Strategies, ElasticStrategyP,
                         ::testing::Values("allreduce", "drs", "rs",
                                           "rs_1bit", "full"));

TEST_P(ElasticStrategyP, RecoveryMatchesFreshShrunkRunByteForByte) {
  const std::string strategy = GetParam();

  // Elastic run: 3 ranks, rank 2 dies at its first epoch-1 collective,
  // the survivors replay epoch 1 onward at world size 2.
  auto injector = crash_at_epoch(/*rank=*/2, /*epoch=*/1);
  TrainConfig config = fast_config(3);
  config.strategy = strategy_by_name(strategy);
  config.fault_injector = &injector;
  config.elastic.enabled = true;
  config.elastic.max_rank_failures = 1;
  const auto recovered = DistributedTrainer(tiny_dataset(), config).train();

  EXPECT_EQ(recovered.recoveries, 1);
  EXPECT_EQ(recovered.rank_failures, 1);
  EXPECT_EQ(recovered.num_nodes, 2);
  EXPECT_TRUE(recovered.replicas_consistent);
  EXPECT_EQ(injector.counters().crashes, 1u);

  const auto reference = shrink_reference(strategy, /*big_world=*/3,
                                          /*small_world=*/2,
                                          /*crash_epoch=*/1, strategy);
  EXPECT_EQ(recovered.epochs, reference.epochs);
  expect_same_model(recovered, reference, strategy.c_str());
}

TEST(Elastic, SimultaneousTwoRankCrashShrinksByTwo) {
  comm::FaultEvent a;
  a.kind = comm::FaultKind::kRankCrash;
  a.rank = 1;
  a.epoch = 1;
  comm::FaultEvent b = a;
  b.rank = 2;
  comm::FaultInjector injector({a, b});

  TrainConfig config = fast_config(4);
  config.strategy = strategy_by_name("drs");
  config.fault_injector = &injector;
  config.elastic.enabled = true;
  config.elastic.max_rank_failures = 2;
  const auto recovered = DistributedTrainer(tiny_dataset(), config).train();

  EXPECT_EQ(recovered.recoveries, 1);   // one recovery absorbed both deaths
  EXPECT_EQ(recovered.rank_failures, 2);
  EXPECT_EQ(recovered.num_nodes, 2);
  EXPECT_EQ(injector.counters().crashes, 2u);

  const auto reference = shrink_reference("drs", /*big_world=*/4,
                                          /*small_world=*/2,
                                          /*crash_epoch=*/1, "two_crash");
  expect_same_model(recovered, reference, "simultaneous two-rank crash");
}

TEST(Elastic, SequentialCrashesEachGetTheirOwnRecovery) {
  comm::FaultEvent one;
  one.kind = comm::FaultKind::kRankCrash;
  one.rank = 2;
  one.epoch = 1;
  comm::FaultEvent two;
  two.kind = comm::FaultKind::kRankCrash;
  two.rank = 1;
  two.epoch = 2;
  comm::FaultInjector injector({one, two});

  TrainConfig config = fast_config(3);
  config.strategy = strategy_by_name("allreduce");
  config.fault_injector = &injector;
  config.elastic.enabled = true;
  config.elastic.max_rank_failures = 2;
  const auto recovered = DistributedTrainer(tiny_dataset(), config).train();
  EXPECT_EQ(recovered.recoveries, 2);
  EXPECT_EQ(recovered.rank_failures, 2);
  EXPECT_EQ(recovered.num_nodes, 1);
  EXPECT_EQ(injector.counters().crashes, 2u);
}

TEST(Elastic, BudgetExhaustionFailsFastWithRankFailedError) {
  comm::FaultEvent one;
  one.kind = comm::FaultKind::kRankCrash;
  one.rank = 1;
  one.epoch = 1;
  comm::FaultEvent two = one;
  two.rank = 2;
  two.epoch = 2;
  comm::FaultInjector injector({one, two});

  TrainConfig config = fast_config(4);
  config.strategy = strategy_by_name("allreduce");
  config.fault_injector = &injector;
  config.elastic.enabled = true;
  config.elastic.max_rank_failures = 1;  // second death exceeds the budget
  EXPECT_THROW(DistributedTrainer(tiny_dataset(), config).train(),
               comm::RankFailedError);
}

TEST(Elastic, OffByDefaultFailsFastWithAllFailuresRecorded) {
  comm::FaultEvent a;
  a.kind = comm::FaultKind::kRankCrash;
  a.rank = 0;
  a.epoch = 1;
  comm::FaultEvent b = a;
  b.rank = 3;
  comm::FaultInjector injector({a, b});

  TrainConfig config = fast_config(4);
  config.strategy = strategy_by_name("allreduce");
  config.fault_injector = &injector;
  try {
    DistributedTrainer(tiny_dataset(), config).train();
    FAIL() << "crash did not propagate with elastic off";
  } catch (const comm::RankFailedError& error) {
    EXPECT_EQ(error.ranks(), (std::vector<int>{0, 3}));
  }
}

TEST(Elastic, ElasticModeItselfDoesNotPerturbFaultFreeTraining) {
  TrainConfig config = fast_config(2);
  config.strategy = strategy_by_name("drs");
  const auto plain = DistributedTrainer(tiny_dataset(), config).train();

  config.elastic.enabled = true;
  config.elastic.max_rank_failures = 1;
  const auto elastic = DistributedTrainer(tiny_dataset(), config).train();
  EXPECT_EQ(elastic.recoveries, 0);
  EXPECT_EQ(elastic.rank_failures, 0);
  ASSERT_EQ(plain.epochs, elastic.epochs);
  expect_same_model(plain, elastic, "elastic on vs off, no faults");
}

TEST(Elastic, RetryPolicyKnobsAreValidatedWithFlagNames) {
  TrainConfig config = fast_config(2);
  config.fault_retry_limit = 0;
  try {
    DistributedTrainer trainer(tiny_dataset(), config);
    FAIL() << "retry limit 0 accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--fault-retry-limit"),
              std::string::npos)
        << error.what();
  }

  config = fast_config(2);
  config.fault_backoff_base = 0.0;
  try {
    DistributedTrainer trainer(tiny_dataset(), config);
    FAIL() << "backoff base 0 accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--fault-backoff-base"),
              std::string::npos)
        << error.what();
  }

  config = fast_config(2);
  config.elastic.max_rank_failures = -1;
  try {
    DistributedTrainer trainer(tiny_dataset(), config);
    FAIL() << "negative failure budget accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--max-rank-failures"),
              std::string::npos)
        << error.what();
  }
}

TEST(Elastic, NonElasticResumeStillRejectsWorldSizeMismatch) {
  TrainConfig config = fast_config(3);
  config.strategy = strategy_by_name("allreduce");
  config.checkpoint.dir = fresh_dir("world_mismatch");
  config.max_epochs = 1;
  DistributedTrainer(tiny_dataset(), config).train();

  TrainConfig shrunk = fast_config(2);
  shrunk.strategy = strategy_by_name("allreduce");
  shrunk.checkpoint.dir = config.checkpoint.dir;
  shrunk.checkpoint.resume = true;
  try {
    DistributedTrainer(tiny_dataset(), shrunk).train();
    FAIL() << "world-size mismatch accepted without --elastic";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("num_nodes"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace dynkge::core
