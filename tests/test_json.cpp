#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/report_json.hpp"
#include "kge/synthetic.hpp"
#include "util/json_writer.hpp"

namespace dynkge {
namespace {

using util::JsonWriter;

TEST(JsonWriter, EmptyObjectAndArray) {
  JsonWriter a;
  a.begin_object().end_object();
  EXPECT_EQ(a.str(), "{}");
  JsonWriter b;
  b.begin_array().end_array();
  EXPECT_EQ(b.str(), "[]");
}

TEST(JsonWriter, KeyValuePairs) {
  JsonWriter json;
  json.begin_object();
  json.kv("name", std::string("dynkge"));
  json.kv("nodes", 16);
  json.kv("mrr", 0.5);
  json.kv("converged", true);
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"name\":\"dynkge\",\"nodes\":16,\"mrr\":0.5,"
            "\"converged\":true}");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter json;
  json.begin_object();
  json.key("list").begin_array();
  json.value(1);
  json.value(2);
  json.begin_object().kv("x", 3).end_object();
  json.end_array();
  json.kv("after", false);
  json.end_object();
  EXPECT_EQ(json.str(), "{\"list\":[1,2,{\"x\":3}],\"after\":false}");
}

TEST(JsonWriter, StringEscaping) {
  JsonWriter json;
  json.begin_object();
  json.kv("text", std::string("a\"b\\c\nd\te"));
  json.end_object();
  EXPECT_EQ(json.str(), "{\"text\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, ControlCharactersEscaped) {
  JsonWriter json;
  json.begin_object();
  json.kv("bell", std::string("\x07"));
  json.end_object();
  EXPECT_EQ(json.str(), "{\"bell\":\"\\u0007\"}");
}

TEST(JsonWriter, NumbersRoundTrip) {
  JsonWriter json;
  json.begin_array();
  json.value(0.1);
  json.value(std::int64_t{-42});
  json.value(1e-9);
  json.end_array();
  const std::string text = json.str();
  EXPECT_NE(text.find("0.1"), std::string::npos);
  EXPECT_NE(text.find("-42"), std::string::npos);
  EXPECT_NE(text.find("1e-09"), std::string::npos);
}

TEST(JsonWriter, RawSplicesPreSerializedJson) {
  JsonWriter json;
  json.begin_object();
  json.kv("before", 1);
  json.key("spliced").raw("{\"inner\":[1,2]}");
  json.kv("after", 2);
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"before\":1,\"spliced\":{\"inner\":[1,2]},\"after\":2}");

  JsonWriter array;
  array.begin_array();
  array.raw("true");
  array.raw("{}");
  array.end_array();
  EXPECT_EQ(array.str(), "[true,{}]");
}

TEST(ReportJson, EmbedsMetricsSnapshotWhenGiven) {
  core::TrainReport report;
  report.strategy_label = "allreduce";
  obs::MetricsRegistry metrics;
  metrics.counter("train.steps").add(9);

  const std::string with = core::report_to_json(report, &metrics);
  EXPECT_NE(with.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(with.find("\"train.steps\":9"), std::string::npos);
  EXPECT_EQ(std::count(with.begin(), with.end(), '{'),
            std::count(with.begin(), with.end(), '}'));

  // Absent without a registry (default argument).
  EXPECT_EQ(core::report_to_json(report).find("\"metrics\""),
            std::string::npos);
}

TEST(ReportJson, ContainsAllSections) {
  // A tiny real training run, exported.
  kge::SyntheticSpec spec;
  spec.num_entities = 120;
  spec.num_relations = 10;
  spec.num_triples = 1500;
  spec.num_latent_types = 4;
  spec.seed = 8;
  const kge::Dataset dataset = kge::generate_synthetic(spec);
  core::TrainConfig config;
  config.embedding_rank = 6;
  config.num_nodes = 2;
  config.batch_size = 100;
  config.max_epochs = 4;
  config.compute_final_metrics = false;
  const auto report = core::DistributedTrainer(dataset, config).train();

  const std::string json = core::report_to_json(report);
  for (const char* field :
       {"\"strategy\"", "\"num_nodes\":2", "\"epochs\":4", "\"ranking\"",
        "\"comm\"", "\"per_kind\"", "\"epoch_log\"", "\"mean_loss\"",
        "\"allreduce_fraction\"", "\"total_sim_seconds\"",
        "\"host_threads\"", "\"compute_cpu_seconds\"", "\"host_speedup\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  // Structurally balanced.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // Four epoch entries.
  std::size_t occurrences = 0, pos = 0;
  while ((pos = json.find("\"epoch\":", pos)) != std::string::npos) {
    ++occurrences;
    pos += 8;
  }
  EXPECT_EQ(occurrences, 4u);
}

TEST(ReportJson, IncludesCommTraceWhenPresent) {
  core::TrainReport report;
  report.strategy_label = "allgather";
  report.comm_trace.push_back(
      comm::CommEvent{comm::CollectiveKind::kAllGatherV, 128, 0.5, 0.7});
  const std::string json = core::report_to_json(report);
  EXPECT_NE(json.find("\"comm_trace\""), std::string::npos);
  EXPECT_NE(json.find("\"allgatherv\""), std::string::npos);
  // Absent when empty.
  core::TrainReport quiet;
  EXPECT_EQ(core::report_to_json(quiet).find("comm_trace"),
            std::string::npos);
}

TEST(ReportJson, WriteToFile) {
  core::TrainReport report;
  report.strategy_label = "allreduce";
  report.model_name = "complex";
  const std::string path = "/tmp/dynkge_report_test.json";
  core::write_report_json(report, path);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"allreduce\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportJson, WriteFailureThrows) {
  core::TrainReport report;
  EXPECT_THROW(core::write_report_json(report, "/nonexistent-dir/x.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace dynkge
