// Fault injection for the simulated cluster.
//
// On a real cluster the dominant failure modes are a rank dying mid-run, a
// collective failing transiently (link flap, timeout), and a straggler rank
// stalling everyone at the next synchronization point. The FaultInjector
// reproduces all three deterministically: a seeded schedule maps
// (rank, rank-local collective index) -> fault event, and every
// Communicator consults the injector at the entry of every collective.
//
// Semantics per kind:
//
//  * kRankCrash  — the rank throws RankFailedError *before* publishing its
//    payload. Cluster::run catches it, aborts the shared barrier so the
//    surviving ranks unwind with AbortedError instead of deadlocking, and
//    rethrows the RankFailedError to the caller.
//
//  * kTransient  — the collective "fails" for the first `failures`
//    attempts and is retried with exponential backoff (RetryPolicy). The
//    retries are accounted (counters + modeled backoff seconds) but do not
//    touch the simulated training clock, so an injected-and-recovered
//    transient fault leaves training results byte-identical to a clean
//    run. Exhausting the retry budget escalates to RankFailedError.
//
//  * kStraggler  — the rank's simulated clock is advanced by
//    `delay_seconds` before the collective, so the cluster-max clock
//    alignment stalls every sibling — exactly what a slow rank does to a
//    synchronous collective. With a collective deadline configured, a
//    straggler whose delay exceeds the deadline trips the watchdog and
//    escalates to RankFailedError instead.
//
//  * kCorrupt    — the rank publishes a bit-flipped payload for its first
//    `failures` attempts at the collective. Attaching any injector arms
//    per-collective FNV-1a payload checksums in the Communicator; every
//    rank verifies every published slot against its checksum (identical
//    shared state, so the verdict is deterministic), the corrupter
//    retransmits under the RetryPolicy, and exhausting the budget
//    escalates to RankFailedError. Detection/retransmit accounting lives
//    on the injector, not the training clock, so a recovered corruption
//    leaves results byte-identical to a clean run.
//
//  * kHang       — the collective never completes on that rank. A hang is
//    only meaningful with a collective deadline (the injector refuses the
//    schedule otherwise, naming --collective-deadline): the deadline
//    watchdog converts the hang into a deterministic RankFailedError at
//    the verdict phase, so elastic recovery can absorb it — the simulated
//    cluster never actually blocks.
//
// Thread safety: before_collective is called concurrently from all rank
// threads; the schedule is immutable after construction and the counters
// are atomics, so the injector is safe to share across one cluster run.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace dynkge::comm {

/// Thrown when one or more ranks die (injected crash, or a transient
/// fault that exhausted its retry budget). Cluster::run aggregates the
/// failures of a single run — two ranks crashing at the same collective
/// both appear — aborts the surviving ranks at their next barrier, and
/// rethrows one error carrying the full set, so elastic recovery can
/// shrink the world by more than one rank at a time.
class RankFailedError : public std::runtime_error {
 public:
  struct Failure {
    int rank = 0;
    std::string what;
  };

  RankFailedError(int rank, const std::string& what)
      : std::runtime_error("rank " + std::to_string(rank) + " failed: " +
                           what),
        failures_{{rank, what}} {}

  /// Aggregate constructor; failures are sorted by rank.
  explicit RankFailedError(std::vector<Failure> failures)
      : RankFailedError(Sorted{}, sort_by_rank(std::move(failures))) {}

  /// Lowest failed rank (single-failure callers see the only rank).
  int rank() const { return failures_.front().rank; }

  /// Every failed rank with its per-rank reason, ascending by rank.
  const std::vector<Failure>& failures() const { return failures_; }

  /// Just the failed rank ids, ascending.
  std::vector<int> ranks() const {
    std::vector<int> out;
    out.reserve(failures_.size());
    for (const Failure& f : failures_) out.push_back(f.rank);
    return out;
  }

 private:
  struct Sorted {};
  RankFailedError(Sorted, std::vector<Failure> failures)
      : std::runtime_error(describe(failures)),
        failures_(std::move(failures)) {}

  static std::vector<Failure> sort_by_rank(std::vector<Failure> failures);
  static std::string describe(const std::vector<Failure>& failures);

  std::vector<Failure> failures_;
};

enum class FaultKind : std::uint8_t {
  kRankCrash,   ///< rank dies at the collective; siblings unwind via abort
  kTransient,   ///< collective fails `failures` times, then succeeds
  kStraggler,   ///< rank stalls `delay_seconds` of simulated time
  kCorrupt,     ///< rank bit-flips its payload for `failures` attempts
  kHang,        ///< collective never completes; needs a deadline watchdog
};

const char* to_string(FaultKind kind);

/// What the fault schedule asks of one rank at one collective (the
/// non-fatal outcomes of before_collective; fatal ones throw).
struct CollectiveFault {
  double straggler_seconds = 0.0;  ///< simulated stall to apply
  int corrupt_sends = 0;  ///< attempts publishing a bit-flipped payload
};

/// One scheduled fault: fires on `rank` at its `collective_index`-th
/// collective (rank-local, 0-based — deterministic regardless of host
/// thread scheduling). With `epoch >= 0` the event is epoch-scoped
/// instead: it fires at the rank's first collective inside that training
/// epoch, which keeps fault schedules aligned across resume/restart and
/// elastic shrink (epoch e is still epoch e after either).
///
/// Every event fires at most once per injector lifetime: after elastic
/// recovery the rank-local collective indices restart from zero, and a
/// consumed crash must not kill the survivor that inherited the victim's
/// rank id.
struct FaultEvent {
  FaultKind kind = FaultKind::kTransient;
  int rank = 0;
  std::uint64_t collective_index = 0;
  int failures = 1;            ///< transient/corrupt: failed attempts
  double delay_seconds = 0.1;  ///< straggler: simulated stall
  int epoch = -1;              ///< >= 0: fire on the first collective of
                               ///< this epoch instead of by index
};

/// Bounded retry with exponential backoff for transient collective faults.
struct RetryPolicy {
  int max_attempts = 4;            ///< total attempts per collective
  double backoff_seconds = 1e-3;   ///< modeled pause before the 1st retry
  double backoff_multiplier = 2.0; ///< growth per further retry
};

/// Point-in-time copy of the injector's accounting.
struct FaultCounters {
  std::uint64_t crashes = 0;     ///< rank-crash events fired
  std::uint64_t transients = 0;  ///< transient events recovered by retry
  std::uint64_t stragglers = 0;  ///< straggler delays applied
  std::uint64_t retries = 0;     ///< individual retry attempts
  std::uint64_t exhausted = 0;   ///< faults escalated to RankFailed
  double backoff_seconds = 0.0;  ///< total modeled backoff spent
  // Wire-integrity accounting (recorded by the Communicator's checksum
  // verify loop). Zero silent corruption is the machine-checked invariant
  // corrupted_payloads == corruptions_detected.
  std::uint64_t corrupted_payloads = 0;    ///< bit-flipped publishes
  std::uint64_t corruptions_detected = 0;  ///< checksum mismatches caught
  std::uint64_t retransmits = 0;           ///< re-publishes after detection
  std::uint64_t watchdog_trips = 0;        ///< hangs/stragglers past the
                                           ///< collective deadline
};

class FaultInjector {
 public:
  /// `collective_deadline` (simulated seconds, 0 = no watchdog) is the
  /// per-collective budget the deadline watchdog enforces: a kHang event
  /// or a kStraggler whose delay exceeds it becomes a deterministic
  /// RankFailedError. A schedule containing kHang with no deadline is
  /// rejected (the hang would otherwise be undetectable).
  explicit FaultInjector(std::vector<FaultEvent> schedule,
                         RetryPolicy policy = {},
                         double collective_deadline = 0.0);

  /// A seeded random schedule over `num_ranks` ranks and the first
  /// `horizon` collectives of each: every (rank, index) slot independently
  /// draws crash/transient/straggler with the given probabilities.
  /// Deterministic in (seed, num_ranks, horizon, probabilities).
  static FaultInjector random(std::uint64_t seed, int num_ranks,
                              std::uint64_t horizon, double crash_prob,
                              double transient_prob, double straggler_prob,
                              RetryPolicy policy = {});

  /// Parse a comma-separated CLI spec into a schedule. Each event is
  ///   crash@RANK@INDEX
  ///   transient@RANK@INDEX[@FAILURES]
  ///   straggler@RANK@INDEX[@DELAY_SECONDS]
  ///   corrupt@RANK@INDEX[@FAILURES]
  ///   hang@RANK@INDEX
  /// where INDEX is either a rank-local collective index ("40") or an
  /// epoch address ("e2": first collective of epoch 2 — stable across
  /// restarts and elastic shrink). e.g. "transient@1@40@2,crash@1@e2".
  /// Throws std::invalid_argument on malformed specs.
  static std::vector<FaultEvent> parse_spec(const std::string& spec);

  /// Called by a rank at the entry of its `index`-th collective; `epoch`
  /// is the caller's current training epoch (-1 outside an epoch — epoch-
  /// scoped events then cannot fire). Returns the non-fatal fault to apply
  /// (straggler seconds for the simulated clock, corrupt publish rounds
  /// for the checksum loop; all-zero for no fault). Throws RankFailedError
  /// for crash events, transient events whose `failures` meets or exceeds
  /// the retry budget, hangs, and stragglers past the collective deadline.
  /// Each scheduled event fires at most once per injector lifetime.
  CollectiveFault before_collective(int rank, std::uint64_t index,
                                    int epoch = -1);

  const RetryPolicy& policy() const { return policy_; }
  double collective_deadline() const { return collective_deadline_; }
  FaultCounters counters() const;
  std::size_t scheduled_events() const { return num_events_; }

  // --- wire-integrity accounting -------------------------------------
  // Called by the Communicator's checksum loop, on the corrupting rank
  // only, so corrupted_payloads == corruptions_detected is exact (every
  // corruption is global-deterministically detected by all ranks, but
  // recorded once).
  void record_corrupted_payload();
  void record_corruption_detected();
  /// One re-publish after a detected corruption; the backoff is modeled
  /// on the injector (like transient retries), never the training clock.
  void record_retransmit(double backoff_seconds);
  void record_retransmit_exhausted();

  /// Optional observability: counters mirrored into `metrics` under
  /// comm.fault.* as they fire. Set before the cluster runs.
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  /// Key = rank * kRankStride + collective_index (or epoch, for the
  /// epoch-scoped map).
  static std::uint64_t key(int rank, std::uint64_t index) {
    return static_cast<std::uint64_t>(rank) * kRankStride + index;
  }
  static constexpr std::uint64_t kRankStride = 1ULL << 48;

  /// A schedule entry plus its slot in the fired_ one-shot bitmap.
  struct Scheduled {
    FaultEvent event;
    std::size_t slot = 0;
  };

  CollectiveFault fire(const Scheduled& scheduled, int rank);

  RetryPolicy policy_;
  double collective_deadline_ = 0.0;
  std::unordered_map<std::uint64_t, Scheduled> events_;        // by index
  std::unordered_map<std::uint64_t, Scheduled> epoch_events_;  // by epoch
  std::unique_ptr<std::atomic<bool>[]> fired_;
  std::size_t num_events_ = 0;

  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> transients_{0};
  std::atomic<std::uint64_t> stragglers_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> exhausted_{0};
  std::atomic<double> backoff_seconds_{0.0};
  std::atomic<std::uint64_t> corrupted_payloads_{0};
  std::atomic<std::uint64_t> corruptions_detected_{0};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> watchdog_trips_{0};

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_crashes_ = nullptr;
  obs::Counter* m_transients_ = nullptr;
  obs::Counter* m_stragglers_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_exhausted_ = nullptr;
  obs::Counter* m_corrupted_ = nullptr;
  obs::Counter* m_detected_ = nullptr;
  obs::Counter* m_retransmits_ = nullptr;
  obs::Counter* m_watchdog_ = nullptr;
};

}  // namespace dynkge::comm
