// Elastic recovery protocol: turn a rank death into a shrink-world plan.
//
// A permanent rank failure surfaces from Cluster::run as RankFailedError
// (possibly carrying several simultaneous deaths — see fault.hpp). The
// supervision loop in DistributedTrainer::train asks plan_recovery()
// what to do with it: fail fast (rethrow, CLI exits 3) or shrink the
// world to the survivors and replay the poisoned epoch from the last
// in-run snapshot. The plan is pure bookkeeping — the actual rebuild
// (new cluster at p-k ranks, shard/relation re-partition, state restore)
// lives in the trainer, which owns the training state.
//
// RecoveryObserver funnels every recovery decision into the optional
// telemetry sinks: comm.recovery.* metrics, a "recovery" JSONL event
// record, and (from the trainer) a recovery.rebuild trace span.
#pragma once

#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "obs/telemetry.hpp"

namespace dynkge::comm {

/// How much failure a run is allowed to absorb. Default: none — a rank
/// death aborts the run exactly as before elastic training existed.
struct ElasticPolicy {
  bool enabled = false;        ///< --elastic
  int max_rank_failures = 0;   ///< --max-rank-failures: cumulative budget
};

enum class RecoveryAction {
  kFailFast,  ///< rethrow; the run is unrecoverable under the policy
  kShrink,    ///< rebuild at old_world - failed_ranks.size() and replay
};

/// One recovery decision, derived from a RankFailedError and the policy.
struct RecoveryPlan {
  RecoveryAction action = RecoveryAction::kFailFast;
  std::vector<int> failed_ranks;     ///< ascending
  std::vector<std::string> reasons;  ///< per-rank what(), same order
  int old_world = 0;
  int new_world = 0;          ///< old_world - failed_ranks.size()
  int failures_before = 0;    ///< cumulative failures before this event

  /// Human-readable one-liner, e.g.
  /// "shrink 4 -> 2 (ranks 1,2 failed; budget 2/2)".
  std::string describe() const;
};

/// Decide what to do about `error`, thrown out of a world of size
/// `world_size`, given that `failures_so_far` ranks already died in this
/// run. Shrinks iff the policy allows it, the cumulative failure count
/// stays within max_rank_failures, and at least one rank survives.
RecoveryPlan plan_recovery(const RankFailedError& error, int world_size,
                           const ElasticPolicy& policy, int failures_so_far);

/// Emits recovery observability into the (all-optional) telemetry sinks.
class RecoveryObserver {
 public:
  explicit RecoveryObserver(const obs::TelemetrySinks& sinks)
      : sinks_(sinks) {}

  /// Called for every failure event, recoverable or not.
  void on_failure(const RecoveryPlan& plan);

  /// Called after a successful rebuild; `resume_epoch` is the epoch the
  /// shrunk world replays from.
  void on_recovered(const RecoveryPlan& plan, double rebuild_seconds,
                    int resume_epoch);

 private:
  obs::TelemetrySinks sinks_;
};

}  // namespace dynkge::comm
