// Analytic communication cost model for the simulated cluster.
//
// The paper ran on a Cray XC40 (Aries interconnect) with MPI collectives via
// Horovod. We reproduce the *timing structure* of those collectives with the
// standard alpha-beta-gamma model over ring algorithms:
//
//   allreduce (ring, Rabenseifner-style):
//       T = 2 (P-1) alpha + 2 S (P-1)/P beta + S (P-1)/P gamma
//   allgatherv (ring):
//       T = (P-1) alpha + (S_total - S_self) beta
//   broadcast (binomial tree):
//       T = ceil(log2 P) (alpha + S beta)
//   scatterv (linear from root):
//       T = (P-1) alpha + (S_total - S_root) beta
//   barrier (dissemination):
//       T = ceil(log2 P) alpha
//
// where S is the per-rank message size in bytes, S_total the sum over ranks,
// alpha the per-stage latency, beta seconds/byte of bandwidth, gamma
// seconds/byte of local reduction arithmetic.
//
// Why this substitution is sound for this paper: every effect the paper
// measures — the allgather/allreduce crossover in P, the 32x volume drop
// from 1-bit quantization, the removal of the relation-matrix collective —
// is a function of message volume and P, which these formulas capture
// exactly. See DESIGN.md section 2.
#pragma once

#include <cstddef>

namespace dynkge::comm {

/// Which collective a cost or statistic refers to.
enum class CollectiveKind : int {
  kBarrier = 0,
  kBroadcast,
  kAllReduce,
  kAllGatherV,
  kScatterV,
  kGatherV,
  kCount,  // number of kinds; keep last
};

const char* to_string(CollectiveKind kind);

/// Network/arithmetic constants of the modeled machine.
struct CostModelParams {
  double alpha = 1.5e-6;   ///< per-message-stage latency (seconds)
  double beta = 1.0e-10;   ///< seconds per byte (~10 GB/s effective link)
  double gamma = 2.5e-11;  ///< seconds per byte of local reduction math

  /// Aries-like defaults (the paper's Cray XC40 interconnect class).
  static CostModelParams aries() { return CostModelParams{}; }

  /// A slower commodity-Ethernet-like profile, used in ablation benches to
  /// show how the allreduce/allgather crossover moves with the network.
  static CostModelParams ethernet() {
    return CostModelParams{25.0e-6, 8.0e-10, 2.5e-11};
  }

  /// Calibrated for the scaled-down bench workloads: the bench graphs are
  /// ~100-200x smaller than FB15K/FB250K, so on Aries constants the
  /// communication share of an epoch would be ~0.1% instead of the
  /// paper's regime where collectives dominate at scale. This profile
  /// slows the modeled network so the comm/compute ratio of a bench run
  /// matches the paper's full-scale runs (see EXPERIMENTS.md). Full-scale
  /// runs (--scale full) use aries().
  static CostModelParams bench_scale() {
    return CostModelParams{2.0e-5, 4.0e-9, 1.0e-10};
  }
};

/// Stateless evaluator of the collective formulas above.
class CostModel {
 public:
  explicit CostModel(CostModelParams params = CostModelParams::aries())
      : params_(params) {}

  const CostModelParams& params() const { return params_; }

  double barrier_time(int num_ranks) const;
  double broadcast_time(int num_ranks, std::size_t bytes) const;
  double allreduce_time(int num_ranks, std::size_t bytes) const;
  /// total_bytes = sum over ranks of contributed bytes; self_bytes = this
  /// rank's contribution (already local, not received over the network).
  double allgatherv_time(int num_ranks, std::size_t total_bytes,
                         std::size_t self_bytes) const;
  double scatterv_time(int num_ranks, std::size_t total_bytes,
                       std::size_t root_bytes) const;
  double gatherv_time(int num_ranks, std::size_t total_bytes,
                      std::size_t self_bytes) const;

  /// Dispatch by kind (used by Communicator::charge).
  double time_for(CollectiveKind kind, int num_ranks, std::size_t total_bytes,
                  std::size_t self_bytes) const;

 private:
  CostModelParams params_;
};

/// Per-rank accounting of what was communicated and what the model says it
/// cost. Aggregated by the trainer into per-epoch and per-run reports.
struct CommStats {
  struct PerKind {
    std::size_t calls = 0;
    std::size_t bytes = 0;        ///< bytes this rank moved over the network
    double modeled_seconds = 0.0;
  };

  PerKind per_kind[static_cast<int>(CollectiveKind::kCount)];

  void record(CollectiveKind kind, std::size_t bytes, double seconds) {
    auto& pk = per_kind[static_cast<int>(kind)];
    pk.calls += 1;
    pk.bytes += bytes;
    pk.modeled_seconds += seconds;
  }

  const PerKind& of(CollectiveKind kind) const {
    return per_kind[static_cast<int>(kind)];
  }

  std::size_t total_bytes() const {
    std::size_t s = 0;
    for (const auto& pk : per_kind) s += pk.bytes;
    return s;
  }

  double total_modeled_seconds() const {
    double s = 0;
    for (const auto& pk : per_kind) s += pk.modeled_seconds;
    return s;
  }

  std::size_t total_calls() const {
    std::size_t s = 0;
    for (const auto& pk : per_kind) s += pk.calls;
    return s;
  }

  void merge(const CommStats& other) {
    for (int i = 0; i < static_cast<int>(CollectiveKind::kCount); ++i) {
      per_kind[i].calls += other.per_kind[i].calls;
      per_kind[i].bytes += other.per_kind[i].bytes;
      per_kind[i].modeled_seconds += other.per_kind[i].modeled_seconds;
    }
  }

  void reset() { *this = CommStats{}; }
};

}  // namespace dynkge::comm
