#include "comm/federated.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/json_writer.hpp"

namespace dynkge::comm {

void validate_federated_policy(const FederatedPolicy& policy) {
  if (policy.num_clients < 1) {
    throw std::invalid_argument(
        "FederatedPolicy: num_clients must be >= 1 (--clients)");
  }
  if (policy.local_epochs < 1) {
    throw std::invalid_argument(
        "FederatedPolicy: local_epochs must be >= 1 (--local-epochs)");
  }
  if (policy.rounds < 1) {
    throw std::invalid_argument(
        "FederatedPolicy: rounds must be >= 1 (--rounds)");
  }
  if (policy.elastic.max_rank_failures < 0) {
    throw std::invalid_argument(
        "FederatedPolicy: max rank failures must be >= 0 "
        "(--max-rank-failures)");
  }
}

std::vector<int> apply_failures(const std::vector<int>& active_clients,
                                const std::vector<int>& failed_ranks) {
  std::vector<int> survivors;
  survivors.reserve(active_clients.size());
  for (std::size_t i = 0; i < active_clients.size(); ++i) {
    const bool failed =
        std::binary_search(failed_ranks.begin(), failed_ranks.end(),
                           static_cast<int>(i));
    if (!failed) survivors.push_back(active_clients[i]);
  }
  return survivors;
}

void FederatedObserver::on_round(const FederatedRoundStats& stats) {
  if (sinks_.events != nullptr) {
    util::JsonWriter json;
    json.begin_object()
        .kv("event", "federated_round")
        .kv("round", stats.round)
        .kv("client", stats.client)
        .kv("active_clients", stats.active_clients)
        .kv("local_epochs", stats.local_epochs)
        .kv("selection", stats.selection)
        .kv("keep_rate", stats.keep_rate)
        .kv("bytes_on_wire", stats.bytes_on_wire)
        .kv("loss", stats.mean_loss)
        .kv("lr", stats.lr)
        .kv("val_accuracy", stats.val_accuracy)
        .kv("sim_seconds", stats.sim_seconds)
        .kv("comm_seconds", stats.comm_seconds)
        .end_object();
    sinks_.events->write_line(json.str());
  }
  if (sinks_.metrics != nullptr && stats.root) {
    sinks_.metrics->counter("federated.rounds").add(1);
    sinks_.metrics->counter("federated.bytes_on_wire")
        .add(stats.bytes_on_wire);
    sinks_.metrics->gauge("federated.active_clients")
        .set(static_cast<double>(stats.active_clients));
    sinks_.metrics->gauge("federated.val_accuracy").set(stats.val_accuracy);
    sinks_.metrics->gauge("federated.loss").set(stats.mean_loss);
    sinks_.metrics->histogram("federated.round_sim_seconds")
        .record(stats.sim_seconds);
  }
}

}  // namespace dynkge::comm
