#include "comm/recovery.hpp"

#include "util/json_writer.hpp"

namespace dynkge::comm {
namespace {

std::string join_ranks(const std::vector<int>& ranks) {
  std::string out;
  for (int rank : ranks) {
    if (!out.empty()) out += ",";
    out += std::to_string(rank);
  }
  return out;
}

}  // namespace

std::string RecoveryPlan::describe() const {
  const std::string who =
      (failed_ranks.size() == 1 ? "rank " : "ranks ") +
      join_ranks(failed_ranks) + " failed";
  const int total =
      failures_before + static_cast<int>(failed_ranks.size());
  if (action == RecoveryAction::kShrink) {
    return "shrink " + std::to_string(old_world) + " -> " +
           std::to_string(new_world) + " (" + who + "; cumulative failures " +
           std::to_string(total) + ")";
  }
  return "fail fast (" + who + "; cumulative failures " +
         std::to_string(total) + ")";
}

RecoveryPlan plan_recovery(const RankFailedError& error, int world_size,
                           const ElasticPolicy& policy, int failures_so_far) {
  RecoveryPlan plan;
  plan.old_world = world_size;
  plan.failures_before = failures_so_far;
  for (const auto& failure : error.failures()) {
    plan.failed_ranks.push_back(failure.rank);
    plan.reasons.push_back(failure.what);
  }
  plan.new_world = world_size - static_cast<int>(plan.failed_ranks.size());
  const int cumulative =
      failures_so_far + static_cast<int>(plan.failed_ranks.size());
  const bool within_budget = cumulative <= policy.max_rank_failures;
  if (policy.enabled && within_budget && plan.new_world >= 1) {
    plan.action = RecoveryAction::kShrink;
  } else {
    plan.action = RecoveryAction::kFailFast;
  }
  return plan;
}

void RecoveryObserver::on_failure(const RecoveryPlan& plan) {
  if (sinks_.metrics != nullptr) {
    sinks_.metrics->counter("comm.recovery.rank_failures")
        .add(plan.failed_ranks.size());
    if (plan.action == RecoveryAction::kFailFast) {
      sinks_.metrics->counter("comm.recovery.failfast").add(1);
    }
  }
}

void RecoveryObserver::on_recovered(const RecoveryPlan& plan,
                                    double rebuild_seconds,
                                    int resume_epoch) {
  if (sinks_.metrics != nullptr) {
    sinks_.metrics->counter("comm.recovery.recoveries").add(1);
    sinks_.metrics->gauge("comm.recovery.world_size")
        .set(static_cast<double>(plan.new_world));
    sinks_.metrics->histogram("comm.recovery.rebuild_seconds")
        .record(rebuild_seconds);
  }
  if (sinks_.events != nullptr) {
    util::JsonWriter json;
    json.begin_object().kv("event", "recovery").key("failed_ranks");
    json.begin_array();
    for (int rank : plan.failed_ranks) json.value(rank);
    json.end_array();
    json.kv("old_world", plan.old_world)
        .kv("new_world", plan.new_world)
        .kv("resume_epoch", resume_epoch)
        .kv("rebuild_seconds", rebuild_seconds)
        .end_object();
    sinks_.events->write_line(json.str());
  }
}

}  // namespace dynkge::comm
