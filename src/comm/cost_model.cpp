#include "comm/cost_model.hpp"

#include <cmath>

namespace dynkge::comm {
namespace {

int ceil_log2(int n) {
  int stages = 0;
  int reach = 1;
  while (reach < n) {
    reach *= 2;
    ++stages;
  }
  return stages;
}

}  // namespace

const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kBarrier:
      return "barrier";
    case CollectiveKind::kBroadcast:
      return "broadcast";
    case CollectiveKind::kAllReduce:
      return "allreduce";
    case CollectiveKind::kAllGatherV:
      return "allgatherv";
    case CollectiveKind::kScatterV:
      return "scatterv";
    case CollectiveKind::kGatherV:
      return "gatherv";
    case CollectiveKind::kCount:
      break;
  }
  return "unknown";
}

double CostModel::barrier_time(int num_ranks) const {
  if (num_ranks <= 1) return 0.0;
  return ceil_log2(num_ranks) * params_.alpha;
}

double CostModel::broadcast_time(int num_ranks, std::size_t bytes) const {
  if (num_ranks <= 1) return 0.0;
  const double stages = ceil_log2(num_ranks);
  return stages * (params_.alpha + static_cast<double>(bytes) * params_.beta);
}

double CostModel::allreduce_time(int num_ranks, std::size_t bytes) const {
  if (num_ranks <= 1) return 0.0;
  const double p = num_ranks;
  const double s = static_cast<double>(bytes);
  return 2.0 * (p - 1.0) * params_.alpha +
         2.0 * s * (p - 1.0) / p * params_.beta +
         s * (p - 1.0) / p * params_.gamma;
}

double CostModel::allgatherv_time(int num_ranks, std::size_t total_bytes,
                                  std::size_t self_bytes) const {
  if (num_ranks <= 1) return 0.0;
  const double p = num_ranks;
  const double received =
      static_cast<double>(total_bytes) - static_cast<double>(self_bytes);
  return (p - 1.0) * params_.alpha + received * params_.beta;
}

double CostModel::scatterv_time(int num_ranks, std::size_t total_bytes,
                                std::size_t root_bytes) const {
  if (num_ranks <= 1) return 0.0;
  const double p = num_ranks;
  const double sent =
      static_cast<double>(total_bytes) - static_cast<double>(root_bytes);
  return (p - 1.0) * params_.alpha + sent * params_.beta;
}

double CostModel::gatherv_time(int num_ranks, std::size_t total_bytes,
                               std::size_t self_bytes) const {
  // Same traffic pattern as scatterv, reversed.
  return scatterv_time(num_ranks, total_bytes, self_bytes);
}

double CostModel::time_for(CollectiveKind kind, int num_ranks,
                           std::size_t total_bytes,
                           std::size_t self_bytes) const {
  switch (kind) {
    case CollectiveKind::kBarrier:
      return barrier_time(num_ranks);
    case CollectiveKind::kBroadcast:
      return broadcast_time(num_ranks, total_bytes);
    case CollectiveKind::kAllReduce:
      return allreduce_time(num_ranks, total_bytes);
    case CollectiveKind::kAllGatherV:
      return allgatherv_time(num_ranks, total_bytes, self_bytes);
    case CollectiveKind::kScatterV:
      return scatterv_time(num_ranks, total_bytes, self_bytes);
    case CollectiveKind::kGatherV:
      return gatherv_time(num_ranks, total_bytes, self_bytes);
    case CollectiveKind::kCount:
      break;
  }
  return 0.0;
}

}  // namespace dynkge::comm
