// Federated round protocol: policy, client roster bookkeeping, and the
// observability funnel for multi-client training.
//
// The federated scenario (FedS, arXiv 2406.13225; DGL-KE's multi-tenant
// motivation) runs M simulated clients, each holding a private triple
// shard, for R aggregation rounds of E local epochs; a server merges the
// clients' sparsified entity-row deltas over the parameter-server exchange
// path. This header owns the pieces that are pure cluster bookkeeping —
// the round/client policy, the survivor roster after a recovery plan, and
// the telemetry funnel — so they stay reusable below the training stack
// (dynkge_comm links only obs + util). The trainer itself lives in
// src/core/federated.*, which owns the model state.
//
// Client crashes reuse the elastic recovery machinery unchanged: a death
// surfaces from Cluster::run as RankFailedError, plan_recovery() decides
// shrink-vs-fail-fast against the same ElasticPolicy budget, and
// apply_failures() maps the plan's rank indices back to the original
// client ids so shard ownership and RNG streams survive the shrink.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "comm/recovery.hpp"
#include "obs/telemetry.hpp"

namespace dynkge::comm {

/// Shape of a federated run: M clients x R rounds x E local epochs, plus
/// how much client failure the run absorbs before failing fast.
struct FederatedPolicy {
  int num_clients = 2;   ///< --clients: simulated clients (M)
  int local_epochs = 1;  ///< --local-epochs: local passes per round (E)
  int rounds = 10;       ///< --rounds: aggregation rounds (R)
  ElasticPolicy elastic; ///< --elastic / --max-rank-failures, unchanged
};

/// Validate by field, naming the CLI flag in the message (the
/// TrainConfig::validate precedent). Throws std::invalid_argument.
void validate_federated_policy(const FederatedPolicy& policy);

/// Map a recovery plan's failed rank *indices* (positions within the
/// currently active roster, ascending) back to the surviving original
/// client ids. Keying everything on original client ids is what keeps a
/// post-crash replay byte-identical to a fresh run on the shrunk roster.
std::vector<int> apply_failures(const std::vector<int>& active_clients,
                                const std::vector<int>& failed_ranks);

/// Per-round observability record (one per client per round).
struct FederatedRoundStats {
  int round = 0;
  int client = 0;          ///< original client id
  bool root = false;       ///< true on the roster's rank-0 client
  int active_clients = 0;
  int local_epochs = 0;
  std::string selection;   ///< selection mode label for the round
  double keep_rate = 1.0;  ///< delta rows kept / rows before selection
  std::size_t bytes_on_wire = 0;
  double mean_loss = 0.0;
  double lr = 0.0;
  double val_accuracy = 0.0;
  double sim_seconds = 0.0;
  double comm_seconds = 0.0;
};

/// Funnels federated rounds into the optional telemetry sinks: one
/// "federated_round" JSONL event per (round, client), and federated.*
/// metrics recorded once per round (by the root client).
class FederatedObserver {
 public:
  explicit FederatedObserver(const obs::TelemetrySinks& sinks)
      : sinks_(sinks) {}

  void on_round(const FederatedRoundStats& stats);

 private:
  obs::TelemetrySinks sinks_;
};

}  // namespace dynkge::comm
