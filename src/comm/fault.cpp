#include "comm/fault.hpp"

#include <algorithm>
#include <sstream>

#include "util/rng.hpp"

namespace dynkge::comm {
namespace {

/// fetch_add for atomic<double> without relying on C++20 FP atomics.
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

FaultKind kind_by_name(const std::string& name) {
  if (name == "crash") return FaultKind::kRankCrash;
  if (name == "transient") return FaultKind::kTransient;
  if (name == "straggler") return FaultKind::kStraggler;
  if (name == "corrupt") return FaultKind::kCorrupt;
  if (name == "hang") return FaultKind::kHang;
  throw std::invalid_argument(
      "FaultInjector: unknown fault kind '" + name +
      "' (expected crash|transient|straggler|corrupt|hang)");
}

/// Where an event fires, for error messages: "collective #12" or
/// "epoch 3".
std::string site_of(const FaultEvent& event) {
  if (event.epoch >= 0) return "epoch " + std::to_string(event.epoch);
  return "collective #" + std::to_string(event.collective_index);
}

}  // namespace

std::vector<RankFailedError::Failure> RankFailedError::sort_by_rank(
    std::vector<Failure> failures) {
  if (failures.empty()) {
    throw std::logic_error("RankFailedError: empty failure set");
  }
  std::sort(failures.begin(), failures.end(),
            [](const Failure& a, const Failure& b) { return a.rank < b.rank; });
  return failures;
}

std::string RankFailedError::describe(const std::vector<Failure>& failures) {
  if (failures.size() == 1) {
    return "rank " + std::to_string(failures.front().rank) + " failed: " +
           failures.front().what;
  }
  std::string ranks;
  for (const Failure& f : failures) {
    if (!ranks.empty()) ranks += ",";
    ranks += std::to_string(f.rank);
  }
  std::string message = "ranks " + ranks + " failed:";
  for (const Failure& f : failures) {
    message += " [rank " + std::to_string(f.rank) + "] " + f.what + ";";
  }
  message.pop_back();
  return message;
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRankCrash:
      return "crash";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kStraggler:
      return "straggler";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kHang:
      return "hang";
  }
  return "?";
}

FaultInjector::FaultInjector(std::vector<FaultEvent> schedule,
                             RetryPolicy policy, double collective_deadline)
    : policy_(policy), collective_deadline_(collective_deadline) {
  if (policy_.max_attempts < 1) {
    throw std::invalid_argument(
        "FaultInjector: RetryPolicy::max_attempts must be >= 1");
  }
  if (collective_deadline_ < 0.0) {
    throw std::invalid_argument(
        "FaultInjector: collective deadline must be >= 0 "
        "(--collective-deadline)");
  }
  for (const FaultEvent& event : schedule) {
    if (event.rank < 0) {
      throw std::invalid_argument("FaultInjector: negative rank");
    }
    if (event.collective_index >= kRankStride) {
      throw std::invalid_argument("FaultInjector: collective index too large");
    }
    if (event.kind == FaultKind::kHang && collective_deadline_ <= 0.0) {
      // Without a deadline a hang would never terminate on a real cluster;
      // the simulation refuses to schedule one it cannot detect.
      throw std::invalid_argument(
          "FaultInjector: a hang fault needs a deadline watchdog "
          "(--collective-deadline)");
    }
    if (event.epoch >= 0) {
      epoch_events_[key(event.rank,
                        static_cast<std::uint64_t>(event.epoch))] = {event, 0};
    } else {
      events_[key(event.rank, event.collective_index)] = {event, 0};
    }
  }
  // Assign one-shot slots after dedup (the maps keep only the last event
  // per address, matching the pre-elastic behavior).
  std::size_t slot = 0;
  for (auto& [address, scheduled] : events_) scheduled.slot = slot++;
  for (auto& [address, scheduled] : epoch_events_) scheduled.slot = slot++;
  num_events_ = slot;
  fired_ = std::make_unique<std::atomic<bool>[]>(slot > 0 ? slot : 1);
}

FaultInjector FaultInjector::random(std::uint64_t seed, int num_ranks,
                                    std::uint64_t horizon, double crash_prob,
                                    double transient_prob,
                                    double straggler_prob,
                                    RetryPolicy policy) {
  std::vector<FaultEvent> schedule;
  for (int rank = 0; rank < num_ranks; ++rank) {
    // One stream per rank so the schedule is stable under horizon changes.
    util::Rng rng(util::derive_seed(seed, rank, 0xFA017u));
    for (std::uint64_t index = 0; index < horizon; ++index) {
      const double draw = rng.next_double();
      FaultEvent event;
      event.rank = rank;
      event.collective_index = index;
      if (draw < crash_prob) {
        event.kind = FaultKind::kRankCrash;
      } else if (draw < crash_prob + transient_prob) {
        event.kind = FaultKind::kTransient;
        event.failures = 1 + static_cast<int>(rng.next_below(2));
      } else if (draw < crash_prob + transient_prob + straggler_prob) {
        event.kind = FaultKind::kStraggler;
        event.delay_seconds = rng.next_double(0.01, 0.5);
      } else {
        continue;
      }
      schedule.push_back(event);
    }
  }
  return FaultInjector(std::move(schedule), policy);
}

std::vector<FaultEvent> FaultInjector::parse_spec(const std::string& spec) {
  std::vector<FaultEvent> schedule;
  std::stringstream events(spec);
  std::string item;
  while (std::getline(events, item, ',')) {
    if (item.empty()) continue;
    std::vector<std::string> parts;
    std::stringstream fields(item);
    std::string field;
    while (std::getline(fields, field, '@')) parts.push_back(field);
    if (parts.size() < 3 || parts.size() > 4) {
      throw std::invalid_argument(
          "FaultInjector: bad fault spec '" + item +
          "' (expected kind@rank@index[@param])");
    }
    FaultEvent event;
    try {
      event.kind = kind_by_name(parts[0]);
      event.rank = std::stoi(parts[1]);
      if (!parts[2].empty() && parts[2][0] == 'e') {
        // Epoch-scoped address: "e2" = first collective of epoch 2.
        event.epoch = std::stoi(parts[2].substr(1));
        if (event.epoch < 0) {
          throw std::invalid_argument("negative epoch");
        }
      } else {
        event.collective_index = std::stoull(parts[2]);
      }
      if (parts.size() == 4) {
        if (event.kind == FaultKind::kHang) {
          // A hang has no parameter — it either completes or it doesn't.
          throw std::invalid_argument("hang takes no parameter");
        }
        if (event.kind == FaultKind::kStraggler) {
          event.delay_seconds = std::stod(parts[3]);
        } else {
          event.failures = std::stoi(parts[3]);
        }
      }
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("FaultInjector: bad fault spec '" + item +
                                  "'");
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("FaultInjector: bad fault spec '" + item +
                                  "'");
    }
    schedule.push_back(event);
  }
  return schedule;
}

CollectiveFault FaultInjector::before_collective(int rank,
                                                std::uint64_t index,
                                                int epoch) {
  const Scheduled* hit = nullptr;
  if (!events_.empty()) {
    const auto it = events_.find(key(rank, index));
    if (it != events_.end()) hit = &it->second;
  }
  if (hit == nullptr && epoch >= 0 && !epoch_events_.empty()) {
    const auto it =
        epoch_events_.find(key(rank, static_cast<std::uint64_t>(epoch)));
    if (it != epoch_events_.end()) hit = &it->second;
  }
  if (hit == nullptr) return {};
  // One-shot: after elastic recovery the rank-local indices restart, and a
  // consumed event must not fire again on the rank that inherits the id.
  if (fired_[hit->slot].exchange(true, std::memory_order_relaxed)) {
    return {};
  }
  return fire(*hit, rank);
}

CollectiveFault FaultInjector::fire(const Scheduled& scheduled, int rank) {
  const FaultEvent& event = scheduled.event;
  switch (event.kind) {
    case FaultKind::kRankCrash: {
      crashes_.fetch_add(1, std::memory_order_relaxed);
      if (m_crashes_ != nullptr) m_crashes_->add(1);
      throw RankFailedError(rank, "injected crash at " + site_of(event));
    }
    case FaultKind::kTransient: {
      // The collective fails `failures` times; each failure costs one
      // backoff pause. The backoff is accounted against the injector, not
      // the training clock: a recovered transient fault must leave the
      // run's results (including modeled timings) byte-identical.
      if (event.failures >= policy_.max_attempts) {
        exhausted_.fetch_add(1, std::memory_order_relaxed);
        if (m_exhausted_ != nullptr) m_exhausted_->add(1);
        throw RankFailedError(
            rank, "transient fault at " + site_of(event) +
                      " persisted through " +
                      std::to_string(policy_.max_attempts) + " attempts");
      }
      double pause = policy_.backoff_seconds;
      double total = 0.0;
      for (int attempt = 0; attempt < event.failures; ++attempt) {
        total += pause;
        pause *= policy_.backoff_multiplier;
      }
      transients_.fetch_add(1, std::memory_order_relaxed);
      retries_.fetch_add(static_cast<std::uint64_t>(event.failures),
                         std::memory_order_relaxed);
      atomic_add(backoff_seconds_, total);
      if (m_transients_ != nullptr) m_transients_->add(1);
      if (m_retries_ != nullptr) {
        m_retries_->add(static_cast<std::uint64_t>(event.failures));
      }
      return {};
    }
    case FaultKind::kStraggler: {
      if (collective_deadline_ > 0.0 &&
          event.delay_seconds > collective_deadline_) {
        // Pathological straggler: past the per-collective budget it is
        // indistinguishable from a hang, so the watchdog converts it into
        // a deterministic rank death instead of stalling the cluster.
        watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
        if (m_watchdog_ != nullptr) m_watchdog_->add(1);
        throw RankFailedError(
            rank, "watchdog: straggler at " + site_of(event) + " stalled " +
                      std::to_string(event.delay_seconds) +
                      " s, past the collective deadline of " +
                      std::to_string(collective_deadline_) + " s");
      }
      stragglers_.fetch_add(1, std::memory_order_relaxed);
      if (m_stragglers_ != nullptr) m_stragglers_->add(1);
      return {event.delay_seconds, 0};
    }
    case FaultKind::kCorrupt: {
      // The Communicator's checksum loop does the flipping, detection and
      // retransmit accounting; here we only hand it the round count.
      return {0.0, event.failures};
    }
    case FaultKind::kHang: {
      watchdog_trips_.fetch_add(1, std::memory_order_relaxed);
      if (m_watchdog_ != nullptr) m_watchdog_->add(1);
      throw RankFailedError(
          rank, "watchdog: collective hung at " + site_of(event) +
                    " past the collective deadline of " +
                    std::to_string(collective_deadline_) + " s");
    }
  }
  return {};
}

void FaultInjector::record_corrupted_payload() {
  corrupted_payloads_.fetch_add(1, std::memory_order_relaxed);
  if (m_corrupted_ != nullptr) m_corrupted_->add(1);
}

void FaultInjector::record_corruption_detected() {
  corruptions_detected_.fetch_add(1, std::memory_order_relaxed);
  if (m_detected_ != nullptr) m_detected_->add(1);
}

void FaultInjector::record_retransmit(double backoff_seconds) {
  retransmits_.fetch_add(1, std::memory_order_relaxed);
  retries_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(backoff_seconds_, backoff_seconds);
  if (m_retransmits_ != nullptr) m_retransmits_->add(1);
  if (m_retries_ != nullptr) m_retries_->add(1);
}

void FaultInjector::record_retransmit_exhausted() {
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  if (m_exhausted_ != nullptr) m_exhausted_->add(1);
}

FaultCounters FaultInjector::counters() const {
  FaultCounters counters;
  counters.crashes = crashes_.load(std::memory_order_relaxed);
  counters.transients = transients_.load(std::memory_order_relaxed);
  counters.stragglers = stragglers_.load(std::memory_order_relaxed);
  counters.retries = retries_.load(std::memory_order_relaxed);
  counters.exhausted = exhausted_.load(std::memory_order_relaxed);
  counters.backoff_seconds = backoff_seconds_.load(std::memory_order_relaxed);
  counters.corrupted_payloads =
      corrupted_payloads_.load(std::memory_order_relaxed);
  counters.corruptions_detected =
      corruptions_detected_.load(std::memory_order_relaxed);
  counters.retransmits = retransmits_.load(std::memory_order_relaxed);
  counters.watchdog_trips = watchdog_trips_.load(std::memory_order_relaxed);
  return counters;
}

void FaultInjector::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics == nullptr) {
    m_crashes_ = m_transients_ = m_stragglers_ = m_retries_ = m_exhausted_ =
        m_corrupted_ = m_detected_ = m_retransmits_ = m_watchdog_ = nullptr;
    return;
  }
  m_crashes_ = &metrics->counter("comm.fault.crashes");
  m_transients_ = &metrics->counter("comm.fault.transients");
  m_stragglers_ = &metrics->counter("comm.fault.stragglers");
  m_retries_ = &metrics->counter("comm.fault.retries");
  m_exhausted_ = &metrics->counter("comm.fault.retry_exhausted");
  m_corrupted_ = &metrics->counter("comm.integrity.corrupted_payloads");
  m_detected_ = &metrics->counter("comm.integrity.corruptions_detected");
  m_retransmits_ = &metrics->counter("comm.integrity.retransmits");
  m_watchdog_ = &metrics->counter("comm.integrity.watchdog_trips");
}

}  // namespace dynkge::comm
