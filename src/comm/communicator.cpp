#include "comm/communicator.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <thread>

namespace dynkge::comm {
namespace {

/// FNV-1a over a payload, extended over the publishing rank's scalar slot
/// so zero-byte collectives (barrier, allreduce_scalar) are covered by the
/// same digest. Zero simulated seconds are charged for this — see
/// DESIGN.md §13 for why that keeps checksummed runs byte-identical.
std::uint64_t integrity_hash(const std::byte* data, std::size_t bytes,
                             double scalar) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= static_cast<std::uint64_t>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  std::uint64_t scalar_bits = 0;
  std::memcpy(&scalar_bits, &scalar, sizeof(scalar_bits));
  for (int i = 0; i < 8; ++i) {
    hash ^= (scalar_bits >> (8 * i)) & 0xFFu;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Flip the low bit of a double's mantissa (the corruption a flaky link
/// would inflict on a scalar payload).
double flip_low_bit(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  bits ^= 1ULL;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  if (aborted_.load(std::memory_order_acquire)) throw AbortedError{};
  const std::uint64_t my_generation = generation_;
  if (++waiting_ == num_ranks_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] {
    return generation_ != my_generation ||
           aborted_.load(std::memory_order_acquire);
  });
  // A completed generation releases normally even when an abort raced in
  // after the last arrival — the fault check's verdict protocol
  // (Communicator::check_faults) depends on every released rank getting to
  // act on the verdict slots. Only a wait whose generation never completed
  // turns into AbortedError; the abort still poisons all future entries
  // via the check above.
  if (generation_ == my_generation) throw AbortedError{};
}

void Barrier::abort() {
  std::lock_guard<std::mutex> lock(mu_);
  aborted_.store(true, std::memory_order_release);
  cv_.notify_all();
}

void Communicator::publish_and_sync(const std::byte* data, std::size_t bytes) {
  state_.clock[rank_] = sim_now_;
  if (injector_ == nullptr) {
    state_.ptr[rank_] = data;
    state_.size[rank_] = bytes;
    state_.barrier.arrive_and_wait();
    return;
  }

  // Wire-integrity path (armed by attaching any injector, even an empty
  // schedule — the CLI's --wire-checksums). The digest is computed over
  // the payload this rank *intends* to send plus its scalar slot, before
  // any corruption; a scheduled kCorrupt fault publishes a bit-flipped
  // copy instead for its first rounds. After the publish barrier, every
  // rank verifies every slot against its checksum over identical shared
  // state, so all ranks reach the same verdict: clean -> proceed,
  // corrupt -> a separator barrier (re-publishing must not race ranks
  // still verifying) and another round, budget exhausted -> the
  // corrupting rank dies with RankFailedError and the rest unwind with
  // AbortedError (aggregated by Cluster::run like any rank death).
  const int corrupt_sends = pending_corrupt_sends_;
  pending_corrupt_sends_ = 0;
  const double clean_scalar = state_.scalar[rank_];
  const std::uint64_t clean_hash = integrity_hash(data, bytes, clean_scalar);
  const RetryPolicy& policy = injector_->policy();
  double backoff = policy.backoff_seconds;
  int round = 0;
  while (true) {
    const bool corrupt_now = round < corrupt_sends;
    if (corrupt_now) {
      injector_->record_corrupted_payload();
      if (bytes > 0) {
        corrupt_scratch_.assign(data, data + bytes);
        corrupt_scratch_[0] ^= std::byte{0x01};
        state_.ptr[rank_] = corrupt_scratch_.data();
      } else {
        // Zero-byte payload (barrier / scalar collective): corrupt the
        // scalar slot instead, restored on retransmit.
        state_.ptr[rank_] = data;
        state_.scalar[rank_] = flip_low_bit(clean_scalar);
      }
    } else {
      state_.ptr[rank_] = data;
      state_.scalar[rank_] = clean_scalar;
    }
    state_.size[rank_] = bytes;
    state_.checksum[rank_] = clean_hash;
    state_.barrier.arrive_and_wait();

    bool any_bad = false;
    bool self_bad = false;
    for (int r = 0; r < num_ranks_; ++r) {
      const std::uint64_t got =
          integrity_hash(state_.ptr[r], state_.size[r], state_.scalar[r]);
      if (got != state_.checksum[r]) {
        any_bad = true;
        if (r == rank_) self_bad = true;
      }
    }
    if (!any_bad) return;

    // Corruption caught. The corrupting rank records detection (once, so
    // corrupted == detected stays exact) and either retransmits or dies.
    if (self_bad) injector_->record_corruption_detected();
    if (round + 1 >= policy.max_attempts) {
      if (self_bad) {
        injector_->record_retransmit_exhausted();
        throw RankFailedError(
            rank_, "corrupted payload at collective #" +
                       std::to_string(collective_index_ - 1) +
                       " persisted through " +
                       std::to_string(policy.max_attempts) + " attempts");
      }
      throw AbortedError{};
    }
    if (self_bad) injector_->record_retransmit(backoff);
    backoff *= policy.backoff_multiplier;
    // Separator: nobody re-publishes until everyone finished verifying.
    state_.barrier.arrive_and_wait();
    ++round;
  }
}

void Communicator::align_clock() {
  double max_clock = sim_now_;
  for (int r = 0; r < num_ranks_; ++r) {
    max_clock = std::max(max_clock, state_.clock[r]);
  }
  sim_now_ = max_clock;
}

void Communicator::barrier() {
  check_faults();
  publish_and_sync(nullptr, 0);
  align_clock();
  const double t = model_.barrier_time(num_ranks_);
  apply_cost(CollectiveKind::kBarrier, 0, t);
  release();
}

void Communicator::allreduce_sum(std::span<const float> in,
                                 std::span<float> out) {
  if (in.size() != out.size()) {
    throw std::invalid_argument("allreduce_sum: size mismatch");
  }
  check_faults();
  publish_and_sync(reinterpret_cast<const std::byte*>(in.data()),
                   in.size_bytes());
  align_clock();
  // Every rank computes the same sum in the same rank order, into a private
  // temp so in-place callers do not race with siblings still reading `in`.
  std::vector<float> tmp(in.size(), 0.0f);
  for (int r = 0; r < num_ranks_; ++r) {
    if (state_.size[r] != in.size_bytes()) {
      state_.barrier.abort();
      throw std::invalid_argument("allreduce_sum: rank size mismatch");
    }
    const auto* p = reinterpret_cast<const float*>(state_.ptr[r]);
    for (std::size_t i = 0; i < tmp.size(); ++i) tmp[i] += p[i];
  }
  const double t = model_.allreduce_time(num_ranks_, in.size_bytes());
  apply_cost(CollectiveKind::kAllReduce, in.size_bytes(), t);
  release();
  std::copy(tmp.begin(), tmp.end(), out.begin());
}

void Communicator::allreduce_sum_inplace(std::span<float> data) {
  allreduce_sum(data, data);
}

double Communicator::allreduce_scalar(double value, ScalarOp op) {
  check_faults();
  state_.scalar[rank_] = value;
  publish_and_sync(nullptr, 0);
  align_clock();
  double result = state_.scalar[0];
  for (int r = 1; r < num_ranks_; ++r) {
    const double v = state_.scalar[r];
    switch (op) {
      case ScalarOp::kSum:
        result += v;
        break;
      case ScalarOp::kMin:
        result = std::min(result, v);
        break;
      case ScalarOp::kMax:
        result = std::max(result, v);
        break;
    }
  }
  const double t = model_.allreduce_time(num_ranks_, sizeof(double));
  apply_cost(CollectiveKind::kAllReduce, sizeof(double), t);
  release();
  return result;
}

void Communicator::allgatherv_bytes(std::span<const std::byte> local,
                                    std::vector<std::byte>& out,
                                    std::vector<std::size_t>& counts,
                                    bool charge_cost) {
  check_faults();
  publish_and_sync(local.data(), local.size());
  align_clock();
  counts.assign(num_ranks_, 0);
  std::size_t total = 0;
  for (int r = 0; r < num_ranks_; ++r) {
    counts[r] = state_.size[r];
    total += state_.size[r];
  }
  out.resize(total);
  std::size_t offset = 0;
  for (int r = 0; r < num_ranks_; ++r) {
    if (counts[r] != 0) {
      std::memcpy(out.data() + offset, state_.ptr[r], counts[r]);
    }
    offset += counts[r];
  }
  if (charge_cost) {
    const double t =
        model_.allgatherv_time(num_ranks_, total, local.size());
    apply_cost(CollectiveKind::kAllGatherV, local.size(), t);
  }
  release();
}

void Communicator::charge(CollectiveKind kind, std::size_t total_bytes,
                          std::size_t self_bytes) {
  const double t = model_.time_for(kind, num_ranks_, total_bytes, self_bytes);
  apply_cost(kind, self_bytes, t);
}

Cluster::Cluster(int num_ranks, CostModelParams params)
    : num_ranks_(num_ranks), model_(params) {
  if (num_ranks < 1) {
    throw std::invalid_argument("Cluster: num_ranks must be >= 1");
  }
}

void Cluster::run(const std::function<void(Communicator&)>& fn,
                  util::ThreadPool& pool) {
  SharedState state(num_ranks_);
  std::vector<std::exception_ptr> errors(num_ranks_);

  pool.run_cohort(static_cast<std::size_t>(num_ranks_), [&](std::size_t r) {
    Communicator communicator(static_cast<int>(r), num_ranks_, state, model_);
    communicator.set_fault_injector(injector_);
    try {
      fn(communicator);
    } catch (const AbortedError&) {
      // Secondary failure caused by a sibling's abort; ignore.
    } catch (...) {
      errors[r] = std::current_exception();
      state.barrier.abort();
    }
  });

  // Aggregate rank deaths: surface every RankFailedError as one error
  // carrying the full set. Simultaneous crashes are deterministic — the
  // fault check's verdict barrier (Communicator::check_faults) guarantees
  // every victim reaches its own check before any rank unwinds. Any
  // non-rank-death error takes precedence, lowest rank first.
  std::vector<RankFailedError::Failure> failures;
  for (int r = 0; r < num_ranks_; ++r) {
    if (!errors[r]) continue;
    try {
      std::rethrow_exception(errors[r]);
    } catch (const RankFailedError& error) {
      for (const auto& failure : error.failures()) {
        failures.push_back(failure);
      }
    } catch (...) {
      std::rethrow_exception(errors[r]);
    }
  }
  if (!failures.empty()) throw RankFailedError(std::move(failures));
}

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  util::ThreadPool pool(static_cast<std::size_t>(num_ranks_));
  run(fn, pool);
}

}  // namespace dynkge::comm
