// Threads-as-ranks message-passing runtime.
//
// This module stands in for MPI/Horovod on the paper's Cray XC40 (see
// DESIGN.md section 2). Each simulated node is a rank program with
// rank-private state, co-scheduled on a host thread pool
// (util::ThreadPool::run_cohort) so all P ranks execute concurrently;
// collectives have MPI semantics (synchronous, in rank order,
// deterministic) and exchange data through a shared staging area guarded
// by a generation-counted barrier.
//
// Timing: physical thread time spent inside collectives is *not* what the
// experiments report. Instead every Communicator carries a simulated clock:
// compute segments advance it by measured thread-CPU seconds (see
// util/thread_clock.hpp), and each collective (a) aligns all ranks' clocks
// to the maximum — the synchronization a real collective imposes — and
// (b) adds the alpha-beta-gamma modeled cost of the operation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/fault.hpp"
#include "util/thread_pool.hpp"

namespace dynkge::comm {

/// Thrown out of a pending collective when a sibling rank failed; lets the
/// remaining ranks unwind instead of deadlocking at the barrier.
class AbortedError : public std::runtime_error {
 public:
  AbortedError() : std::runtime_error("dynkge cluster aborted") {}
};

/// Generation-counted barrier with abort support.
class Barrier {
 public:
  explicit Barrier(int num_ranks) : num_ranks_(num_ranks) {}

  /// Block until all ranks arrive. Throws AbortedError after abort().
  void arrive_and_wait();

  /// Wake every waiter and make all current/future waits throw.
  void abort();

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

 private:
  const int num_ranks_;
  std::mutex mu_;
  std::condition_variable cv_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  std::atomic<bool> aborted_{false};
};

/// Scalar reduction operators for allreduce_scalar.
enum class ScalarOp { kSum, kMin, kMax };

/// One traced collective on a rank's simulated timeline (tracing is off
/// by default; see Communicator::enable_trace).
struct CommEvent {
  CollectiveKind kind = CollectiveKind::kBarrier;
  std::size_t bytes = 0;      ///< this rank's modeled traffic
  double sim_start = 0.0;     ///< simulated time the collective began
  double sim_end = 0.0;       ///< simulated time it completed
};

/// Staging area shared by all ranks of one cluster. Slots are valid between
/// the publish barrier and the release barrier of a single collective.
struct SharedState {
  explicit SharedState(int num_ranks)
      : barrier(num_ranks),
        ptr(num_ranks, nullptr),
        size(num_ranks, 0),
        clock(num_ranks, 0.0),
        scalar(num_ranks, 0.0),
        checksum(num_ranks, 0),
        fault(num_ranks) {}

  Barrier barrier;
  std::vector<const std::byte*> ptr;
  std::vector<std::size_t> size;
  std::vector<double> clock;
  std::vector<double> scalar;
  /// FNV-1a digest of the rank's *intended* payload (+ scalar slot),
  /// published alongside it when a fault injector arms wire integrity.
  /// Receivers verify every slot against it — see
  /// Communicator::publish_and_sync.
  std::vector<std::uint64_t> checksum;
  /// Per-rank fatal-fault verdicts for the current collective's entry
  /// phase (see Communicator::check_faults). Each rank writes only its own
  /// slot before the verdict barrier and reads the others after it.
  std::vector<std::exception_ptr> fault;
};

/// One rank's handle to the cluster: identity, collectives, cost accounting
/// and the simulated clock. Not thread safe across ranks by design — each
/// rank owns exactly one Communicator.
class Communicator {
 public:
  Communicator(int rank, int num_ranks, SharedState& state,
               const CostModel& model)
      : rank_(rank), num_ranks_(num_ranks), state_(state), model_(model) {}

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int rank() const { return rank_; }
  int size() const { return num_ranks_; }
  bool is_root() const { return rank_ == 0; }

  /// Synchronize all ranks (and charge the modeled barrier latency).
  void barrier();

  /// Root's `data` is copied into every other rank's `data`.
  template <typename T>
  void broadcast(std::span<T> data, int root);

  /// Element-wise sum across ranks; every rank receives the full result.
  /// `in` and `out` must have equal size and may alias.
  void allreduce_sum(std::span<const float> in, std::span<float> out);
  void allreduce_sum_inplace(std::span<float> data);

  /// Reduce one double across ranks; every rank receives the result.
  double allreduce_scalar(double value, ScalarOp op);

  /// Concatenate the byte payloads of all ranks in rank order. `counts[r]`
  /// receives rank r's contribution size. When `charge_cost` is false the
  /// clocks are still aligned (it is a synchronization point) but no
  /// modeled time or bytes are recorded — the caller accounts via charge().
  void allgatherv_bytes(std::span<const std::byte> local,
                        std::vector<std::byte>& out,
                        std::vector<std::size_t>& counts,
                        bool charge_cost = true);

  /// Typed convenience wrapper over allgatherv_bytes. counts are in
  /// elements, not bytes.
  template <typename T>
  void allgatherv(std::span<const T> local, std::vector<T>& out,
                  std::vector<std::size_t>& counts);

  /// Root holds `all` partitioned by `counts` (elements per rank, summing
  /// to all.size()); each rank receives its slice in `out`.
  template <typename T>
  void scatterv(std::span<const T> all, std::span<const std::size_t> counts,
                int root, std::vector<T>& out);

  /// Gather every rank's payload at root (rank order). Non-root ranks get
  /// empty `out`.
  template <typename T>
  void gatherv(std::span<const T> local, int root, std::vector<T>& out,
               std::vector<std::size_t>& counts);

  /// Record the modeled cost of a collective that was *logically* performed
  /// even though the in-process transport did something cheaper (e.g. a
  /// dense allreduce realized as a sparse in-memory merge). Advances the
  /// simulated clock; does not synchronize.
  void charge(CollectiveKind kind, std::size_t total_bytes,
              std::size_t self_bytes);

  // --- simulated clock -----------------------------------------------
  void sim_add_compute(double seconds) { sim_now_ += seconds; }
  double sim_now() const { return sim_now_; }
  void sim_reset() { sim_now_ = 0.0; }

  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }
  const CostModel& cost_model() const { return model_; }

  /// Start recording every collective as a CommEvent on this rank's
  /// simulated timeline (profiling aid; adds one vector push per op).
  void enable_trace() { tracing_ = true; }
  const std::vector<CommEvent>& trace() const { return trace_; }

  /// Attach a fault injector (shared by all ranks of the cluster; usually
  /// set through Cluster::set_fault_injector). Every collective then
  /// consults it before publishing — see comm/fault.hpp for semantics.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Rank-local count of collectives entered so far (the index the fault
  /// schedule keys on).
  std::uint64_t collectives_entered() const { return collective_index_; }

  /// Tell the injector which training epoch this rank is in, so
  /// epoch-scoped fault events ("crash@1@e2") can fire. -1 (the default)
  /// means "outside any epoch". Set at the top of each epoch by the
  /// trainer; purely rank-local.
  void set_fault_epoch(int epoch) { fault_epoch_ = epoch; }
  int fault_epoch() const { return fault_epoch_; }

 private:
  /// Account one collective: statistics, optional trace entry, and the
  /// simulated-clock advance. Single funnel for every cost in this class.
  void apply_cost(CollectiveKind kind, std::size_t bytes, double seconds) {
    stats_.record(kind, bytes, seconds);
    if (tracing_) {
      trace_.push_back(CommEvent{kind, bytes, sim_now_, sim_now_ + seconds});
    }
    sim_now_ += seconds;
  }
  /// Fault-injection hook, called at the entry of every collective before
  /// this rank publishes. Two phases so that simultaneous rank deaths at
  /// the same collective are deterministic: every rank first evaluates its
  /// own fault and publishes the verdict, then a barrier, then victims
  /// throw RankFailedError while survivors unwind with AbortedError. The
  /// barrier guarantees no rank can be torn out of the collective before
  /// reaching its own fault check, so Cluster::run always observes the
  /// complete set of deaths regardless of host thread timing. Straggler
  /// delays advance the simulated clock; recovered transients cost
  /// nothing. Without an injector this is index bookkeeping only.
  void check_faults() {
    const std::uint64_t index = collective_index_++;
    if (injector_ == nullptr) return;
    std::exception_ptr my_fault;
    CollectiveFault fault;
    try {
      fault = injector_->before_collective(rank_, index, fault_epoch_);
    } catch (const RankFailedError&) {
      my_fault = std::current_exception();
    }
    state_.fault[rank_] = my_fault;
    state_.barrier.arrive_and_wait();
    if (my_fault != nullptr) std::rethrow_exception(my_fault);
    for (int r = 0; r < num_ranks_; ++r) {
      if (state_.fault[r] != nullptr) throw AbortedError{};
    }
    if (fault.straggler_seconds > 0.0) {
      sim_add_compute(fault.straggler_seconds);
    }
    // Consumed by the integrity loop of this collective's publish.
    pending_corrupt_sends_ = fault.corrupt_sends;
  }

  /// Publish this rank's payload + clock, wait for siblings, and return.
  /// After this returns, all ranks' slots are readable.
  ///
  /// With a fault injector attached, wire integrity is armed: every
  /// publish carries an FNV-1a checksum of the intended payload (extended
  /// over the rank's scalar slot, so scalar collectives are covered too),
  /// a scheduled kCorrupt fault makes this rank publish a bit-flipped
  /// copy instead, and after the publish barrier every rank verifies
  /// every slot against its checksum. All ranks verify identical shared
  /// state, so the verdict is deterministic: on a mismatch the corrupter
  /// retransmits (a further publish round under the RetryPolicy, backoff
  /// modeled on the injector — the simulated clock is never charged, so
  /// recovered corruption keeps results byte-identical), and once the
  /// retry budget is exhausted the corrupting rank throws RankFailedError
  /// while the others unwind with AbortedError.
  void publish_and_sync(const std::byte* data, std::size_t bytes);

  /// Align the simulated clock to the cluster max (slots must be synced).
  void align_clock();

  /// Release barrier: siblings may re-publish after this.
  void release() { state_.barrier.arrive_and_wait(); }

  int rank_;
  int num_ranks_;
  SharedState& state_;
  const CostModel& model_;
  CommStats stats_;
  std::vector<CommEvent> trace_;
  bool tracing_ = false;
  double sim_now_ = 0.0;
  FaultInjector* injector_ = nullptr;
  std::uint64_t collective_index_ = 0;
  int fault_epoch_ = -1;
  /// Rounds the next publish bit-flips its payload (set by check_faults
  /// from a kCorrupt event, consumed by publish_and_sync).
  int pending_corrupt_sends_ = 0;
  /// Scratch for the corrupted copy (the caller's buffer is const and
  /// must be retransmittable untouched).
  std::vector<std::byte> corrupt_scratch_;
};

/// Owns the simulated cluster: executes one rank program per rank on a
/// host thread pool (util::ThreadPool::run_cohort, which co-schedules all
/// ranks so the barrier protocol cannot starve), hands each a
/// Communicator, propagates the first failure, and waits for everything.
class Cluster {
 public:
  explicit Cluster(int num_ranks,
                   CostModelParams params = CostModelParams::aries());

  int num_ranks() const { return num_ranks_; }
  const CostModel& cost_model() const { return model_; }

  /// Run fn on every rank of `pool`; blocks until all ranks finish. If
  /// ranks throw, the others are aborted; when every recorded failure is a
  /// RankFailedError (rank deaths) one aggregated RankFailedError carrying
  /// the full set is thrown — so elastic recovery and fail-fast reporting
  /// see simultaneous multi-rank crashes — otherwise the lowest-rank
  /// exception is rethrown. The pool may be shared (across train() calls,
  /// or with the serving layer); ranks beyond its free capacity run on
  /// transient overflow threads, so any pool size is safe.
  void run(const std::function<void(Communicator&)>& fn,
           util::ThreadPool& pool);

  /// Convenience overload for one-shot callers: runs on a pool scoped to
  /// this call, sized one worker per rank.
  void run(const std::function<void(Communicator&)>& fn);

  /// Inject faults into every collective of subsequent run() calls (see
  /// comm/fault.hpp). Non-owning; pass nullptr to disable. A rank killed
  /// by an injected crash surfaces as RankFailedError from run(), with the
  /// surviving ranks stopped at their next barrier — never a deadlock.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  int num_ranks_;
  CostModel model_;
  FaultInjector* injector_ = nullptr;
};

// ----------------------------------------------------------------------
// Template implementations.

template <typename T>
void Communicator::broadcast(std::span<T> data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  check_faults();
  const std::size_t bytes = data.size_bytes();
  publish_and_sync(reinterpret_cast<const std::byte*>(data.data()), bytes);
  align_clock();
  if (rank_ != root) {
    std::memcpy(data.data(), state_.ptr[root], state_.size[root]);
  }
  const double t = model_.broadcast_time(num_ranks_, bytes);
  apply_cost(CollectiveKind::kBroadcast, rank_ == root ? bytes : 0, t);
  release();
}

template <typename T>
void Communicator::allgatherv(std::span<const T> local, std::vector<T>& out,
                              std::vector<std::size_t>& counts) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> raw;
  std::vector<std::size_t> byte_counts;
  allgatherv_bytes(std::as_bytes(local), raw, byte_counts);
  out.resize(raw.size() / sizeof(T));
  if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
  counts.resize(byte_counts.size());
  for (std::size_t r = 0; r < byte_counts.size(); ++r) {
    counts[r] = byte_counts[r] / sizeof(T);
  }
}

template <typename T>
void Communicator::scatterv(std::span<const T> all,
                            std::span<const std::size_t> counts, int root,
                            std::vector<T>& out) {
  static_assert(std::is_trivially_copyable_v<T>);
  check_faults();
  // Root publishes the full buffer; every rank copies its own slice.
  publish_and_sync(reinterpret_cast<const std::byte*>(all.data()),
                   all.size_bytes());
  align_clock();
  const auto* root_data = reinterpret_cast<const T*>(state_.ptr[root]);
  const std::size_t total_elems = state_.size[root] / sizeof(T);

  std::size_t offset = 0;
  for (int r = 0; r < rank_; ++r) offset += counts[r];
  const std::size_t mine = counts[rank_];
  if (offset + mine > total_elems) {
    throw std::invalid_argument("scatterv: counts exceed payload");
  }
  out.assign(root_data + offset, root_data + offset + mine);

  const std::size_t total_bytes = total_elems * sizeof(T);
  const std::size_t root_bytes = counts[root] * sizeof(T);
  const double t = model_.scatterv_time(num_ranks_, total_bytes, root_bytes);
  apply_cost(CollectiveKind::kScatterV,
             rank_ == root ? total_bytes - root_bytes : 0, t);
  release();
}

template <typename T>
void Communicator::gatherv(std::span<const T> local, int root,
                           std::vector<T>& out,
                           std::vector<std::size_t>& counts) {
  static_assert(std::is_trivially_copyable_v<T>);
  check_faults();
  publish_and_sync(reinterpret_cast<const std::byte*>(local.data()),
                   local.size_bytes());
  align_clock();
  counts.assign(num_ranks_, 0);
  std::size_t total_bytes = 0;
  for (int r = 0; r < num_ranks_; ++r) {
    counts[r] = state_.size[r] / sizeof(T);
    total_bytes += state_.size[r];
  }
  out.clear();
  if (rank_ == root) {
    out.reserve(total_bytes / sizeof(T));
    for (int r = 0; r < num_ranks_; ++r) {
      const auto* p = reinterpret_cast<const T*>(state_.ptr[r]);
      out.insert(out.end(), p, p + counts[r]);
    }
  }
  const double t = model_.gatherv_time(num_ranks_, total_bytes,
                                       local.size_bytes());
  apply_cost(CollectiveKind::kGatherV,
             rank_ == root ? 0 : local.size_bytes(), t);
  release();
}

}  // namespace dynkge::comm
