// AdmissionController — queue-depth load-shedding for the serving layer.
//
// Two pressures meet in a streaming serving system: client reads and
// delta-update work. Without admission control an update burst can queue
// unbounded refresh work behind reads (or vice versa) until every request
// times out. The controller keeps one number — the count of in-flight
// read queries — and applies two policies to it:
//
//   * Read shedding: when `max_read_inflight` is set and the depth is at
//     the limit, new reads are rejected immediately (fail fast beats
//     queueing into a latency cliff). The InferenceService returns a null
//     result for shed queries and counts them.
//
//   * Update deferral: when `defer_updates_above` is set, the delta
//     ingestor delays publishing a refresh while read depth exceeds the
//     threshold, up to `max_update_defer_rounds` yields — updates yield to
//     reads under load, but are never starved forever.
//
// All counters are relaxed atomics; admission is wait-free on the read
// path (one CAS loop bounded by contention on a single cache line).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace dynkge::stream {

struct AdmissionConfig {
  /// Reads allowed in flight at once; 0 = unlimited (never shed).
  std::size_t max_read_inflight = 0;
  /// Defer update publishes while read depth exceeds this; 0 = never
  /// defer.
  std::size_t defer_updates_above = 0;
  /// Yield at most this many times while deferring one update.
  int max_update_defer_rounds = 1000;
};

class AdmissionController {
 public:
  AdmissionController() = default;
  explicit AdmissionController(const AdmissionConfig& config)
      : config_(config) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Try to admit `n` read queries. On success the caller owes a matching
  /// exit_read(n); on failure (queue full) the queries were shed.
  bool try_enter_read(std::size_t n = 1) {
    if (config_.max_read_inflight == 0) {
      inflight_.fetch_add(n, std::memory_order_relaxed);
      return true;
    }
    std::size_t depth = inflight_.load(std::memory_order_relaxed);
    for (;;) {
      if (depth + n > config_.max_read_inflight) {
        shed_.fetch_add(n, std::memory_order_relaxed);
        return false;
      }
      if (inflight_.compare_exchange_weak(depth, depth + n,
                                          std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  void exit_read(std::size_t n = 1) {
    inflight_.fetch_sub(n, std::memory_order_relaxed);
  }

  /// Block (bounded) while reads are saturated; called by the ingestor
  /// before publishing a refresh. Returns the number of yield rounds the
  /// update waited.
  int defer_update() {
    if (config_.defer_updates_above == 0) return 0;
    int rounds = 0;
    while (inflight_.load(std::memory_order_relaxed) >
               config_.defer_updates_above &&
           rounds < config_.max_update_defer_rounds) {
      std::this_thread::yield();
      ++rounds;
    }
    if (rounds > 0) deferrals_.fetch_add(1, std::memory_order_relaxed);
    return rounds;
  }

  std::size_t inflight_reads() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed_reads() const {
    return shed_.load(std::memory_order_relaxed);
  }
  std::uint64_t update_deferrals() const {
    return deferrals_.load(std::memory_order_relaxed);
  }
  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deferrals_{0};
};

/// RAII read ticket: admitted() tells whether the read may proceed; the
/// destructor releases the slot(s) iff admitted.
class ReadTicket {
 public:
  ReadTicket(AdmissionController* controller, std::size_t n)
      : controller_(controller),
        n_(n),
        admitted_(controller == nullptr || controller->try_enter_read(n)) {}
  ~ReadTicket() {
    if (admitted_ && controller_ != nullptr) controller_->exit_read(n_);
  }
  ReadTicket(const ReadTicket&) = delete;
  ReadTicket& operator=(const ReadTicket&) = delete;

  bool admitted() const { return admitted_; }

 private:
  AdmissionController* controller_;
  std::size_t n_;
  bool admitted_;
};

}  // namespace dynkge::stream
