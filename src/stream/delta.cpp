#include "stream/delta.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dynkge::stream {

DeltaFile load_delta_file(const std::string& path, std::int32_t num_entities,
                          std::int32_t num_relations) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_delta_file: cannot open '" + path + "'");
  }
  DeltaFile out;
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    ++out.lines;
    std::istringstream fields(line);
    long long h = -1, r = -1, t = -1;
    if (!(fields >> h >> r >> t) || h < 0 || r < 0 || t < 0 ||
        h >= num_entities || t >= num_entities || r >= num_relations) {
      ++out.skipped;
      continue;
    }
    out.triples.push_back(kge::Triple{static_cast<kge::EntityId>(h),
                                      static_cast<kge::RelationId>(r),
                                      static_cast<kge::EntityId>(t)});
  }
  return out;
}

}  // namespace dynkge::stream
