#include "stream/snapshot_store.hpp"

#include <stdexcept>
#include <thread>
#include <utility>

namespace dynkge::stream {

std::uint64_t SnapshotStore::init(
    std::shared_ptr<const kge::KgeModel> model) {
  if (model == nullptr) {
    throw std::invalid_argument("SnapshotStore::init: null model");
  }
  std::lock_guard<std::mutex> lock(publish_mu_);
  if (version_.load(std::memory_order_relaxed) != 0) {
    throw std::logic_error("SnapshotStore::init: already initialized");
  }
  slots_[0].model = std::move(model);
  slots_[0].version = 1;
  current_.store(0, std::memory_order_release);
  version_.store(1, std::memory_order_release);
  return 1;
}

std::uint64_t SnapshotStore::init(const kge::KgeModel& model) {
  // Aliasing shared_ptr: shares no ownership, never deletes. The caller
  // guarantees `model` outlives the store.
  return init(std::shared_ptr<const kge::KgeModel>(
      std::shared_ptr<const kge::KgeModel>(), &model));
}

std::uint64_t SnapshotStore::publish(
    std::shared_ptr<const kge::KgeModel> model,
    std::vector<kge::EntityId> touched) {
  if (model == nullptr) {
    throw std::invalid_argument("SnapshotStore::publish: null model");
  }
  std::lock_guard<std::mutex> lock(publish_mu_);
  if (version_.load(std::memory_order_relaxed) == 0) {
    throw std::logic_error("SnapshotStore::publish: init() first");
  }
  return publish_locked(std::move(model), std::move(touched));
}

std::uint64_t SnapshotStore::publish(std::unique_ptr<kge::KgeModel> model,
                                     std::vector<kge::EntityId> touched) {
  return publish(std::shared_ptr<const kge::KgeModel>(std::move(model)),
                 std::move(touched));
}

std::uint64_t SnapshotStore::publish_locked(
    std::shared_ptr<const kge::KgeModel> model,
    std::vector<kge::EntityId>&& touched) {
  const obs::TraceSpan span(sinks_.trace, "stream.swap", 0);

  const std::size_t cur = current_.load(std::memory_order_relaxed);
  const Slot& cur_slot = slots_[cur];
  if (model->num_entities() != cur_slot.model->num_entities() ||
      model->num_relations() != cur_slot.model->num_relations()) {
    throw std::invalid_argument(
        "SnapshotStore::publish: entity/relation universe mismatch "
        "(expected " +
        std::to_string(cur_slot.model->num_entities()) + " entities, " +
        std::to_string(cur_slot.model->num_relations()) + " relations; got " +
        std::to_string(model->num_entities()) + ", " +
        std::to_string(model->num_relations()) + ")");
  }

  const std::size_t next = (cur + 1) % kRingSlots;
  Slot& slot = slots_[next];
  // Drain the brief acquire() windows still pinning this slot (it stopped
  // being current kRingSlots publishes ago; pins last a few instructions).
  while (slot.readers.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  slot.model = std::move(model);  // frees the version evicted from the ring
  slot.version = slots_[cur].version + 1;
  current_.store(next, std::memory_order_release);
  version_.store(slot.version, std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);

  if (sinks_.metrics != nullptr) {
    sinks_.metrics->counter("stream.snapshots_published").add(1);
    sinks_.metrics->gauge("stream.version")
        .set(static_cast<double>(slot.version));
  }
  for (const auto& observer : observers_) observer(slot.version, touched);
  return slot.version;
}

PinnedModel SnapshotStore::acquire() const {
  for (;;) {
    const std::size_t idx = current_.load(std::memory_order_acquire);
    const Slot& slot = slots_[idx];
    slot.readers.fetch_add(1, std::memory_order_acq_rel);
    if (current_.load(std::memory_order_acquire) == idx) {
      // The epoch pointer still names this slot, so no publisher can be
      // mutating it (publishers drain readers before reuse, and only
      // advance the pointer after the slot is fully written).
      PinnedModel pinned{slot.model, slot.version};
      slot.readers.fetch_sub(1, std::memory_order_release);
      return pinned;
    }
    // The pointer moved between the load and the pin; retry on the new
    // current slot. The stale count must be dropped so a wrapped-around
    // publisher's drain loop terminates.
    slot.readers.fetch_sub(1, std::memory_order_release);
  }
}

void SnapshotStore::add_publish_observer(PublishObserver observer) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  observers_.push_back(std::move(observer));
}

}  // namespace dynkge::stream
