#include "stream/refresh.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_set>
#include <utility>

#include "core/hard_negatives.hpp"
#include "kge/adam.hpp"
#include "kge/loss.hpp"
#include "kge/negative_sampler.hpp"
#include "util/rng.hpp"

namespace dynkge::stream {
namespace {

/// Uniform head-or-tail corruption for the dataset-less path (a streamed
/// triple may involve entities with no dataset history to filter against).
kge::Triple corrupt_uniform(const kge::Triple& positive,
                            std::int32_t num_entities, util::Rng& rng) {
  kge::Triple negative = positive;
  const auto replacement = static_cast<kge::EntityId>(
      rng.next_below(static_cast<std::uint64_t>(num_entities)));
  if (rng.next_bernoulli(0.5)) {
    negative.head = replacement;
  } else {
    negative.tail = replacement;
  }
  return negative;
}

void accumulate_triple(const kge::KgeModel& model, const kge::Triple& triple,
                       int label, kge::ModelGrads& grads, double& loss_sum,
                       std::size_t& loss_count) {
  const double score = model.score(triple.head, triple.relation, triple.tail);
  const auto lg = kge::logistic_loss(score, label);
  loss_sum += lg.loss;
  ++loss_count;
  model.accumulate_gradients(triple.head, triple.relation, triple.tail,
                             static_cast<float>(lg.dscore), grads);
}

}  // namespace

RefreshResult incremental_refresh(kge::KgeModel& model,
                                  std::span<const kge::Triple> deltas,
                                  std::uint64_t version,
                                  const RefreshParams& params,
                                  const kge::Dataset* dataset) {
  RefreshResult result;
  if (deltas.empty() || params.steps <= 0) return result;

  // The frozen-base contract: only rows named by the batch may change.
  std::unordered_set<kge::EntityId> touched;
  touched.reserve(deltas.size() * 2);
  for (const kge::Triple& t : deltas) {
    touched.insert(t.head);
    touched.insert(t.tail);
  }
  result.touched.assign(touched.begin(), touched.end());
  std::sort(result.touched.begin(), result.touched.end());

  // Base rows, kept to report the drift this refresh introduces.
  std::vector<float> base_rows;
  const auto width = static_cast<std::size_t>(model.entities().width());
  base_rows.reserve(result.touched.size() * width);
  for (const kge::EntityId id : result.touched) {
    const auto row = model.entities().row(id);
    base_rows.insert(base_rows.end(), row.begin(), row.end());
  }

  // One RNG stream per (seed, version): replaying the same delta batch
  // into the same version is byte-reproducible, and successive versions
  // are decorrelated.
  util::Rng rng(util::derive_seed(params.seed, version, 0x5712EA11ULL));

  kge::AdamConfig adam;
  adam.learning_rate = params.learning_rate;
  adam.weight_decay = params.weight_decay;
  kge::RowAdam entity_opt(model.num_entities(), model.entities().width(),
                          adam);

  const bool hard_mining = dataset != nullptr &&
                           params.negatives_used < params.negatives_sampled &&
                           params.negatives_used > 0;
  std::optional<kge::NegativeSampler> sampler;
  if (dataset != nullptr) sampler.emplace(*dataset, true);
  kge::ModelGrads grads = model.make_grads();
  kge::TripleList negatives;

  for (int step = 0; step < params.steps; ++step) {
    grads.clear();
    double loss_sum = 0.0;
    std::size_t loss_count = 0;
    for (const kge::Triple& positive : deltas) {
      accumulate_triple(model, positive, +1, grads, loss_sum, loss_count);
      negatives.clear();
      if (hard_mining) {
        // Strategy-5 reuse: score `sampled` corruptions, train on the
        // hardest `used` (core/hard_negatives.hpp).
        core::select_hard_negatives(model, *sampler, positive,
                                    params.negatives_sampled,
                                    params.negatives_used, rng, negatives);
      } else {
        for (int i = 0; i < params.negatives_sampled; ++i) {
          negatives.push_back(sampler.has_value()
                                  ? sampler->corrupt(positive, rng)
                                  : corrupt_uniform(positive,
                                                    model.num_entities(), rng));
        }
      }
      for (const kge::Triple& negative : negatives) {
        accumulate_triple(model, negative, -1, grads, loss_sum, loss_count);
      }
    }

    // Apply Adam only to rows inside the frozen-base contract, in sorted
    // id order (the determinism contract shared with the trainer).
    // Gradient rows for corruption entities outside the batch are
    // dropped; relation gradients are dropped entirely.
    entity_opt.begin_step();
    for (const std::int32_t id : grads.entity.sorted_ids()) {
      if (touched.count(id) == 0) continue;
      entity_opt.update_row(id, grads.entity.row(id), model.entities());
      ++result.row_updates;
    }
    if (loss_count > 0) {
      result.mean_loss = loss_sum / static_cast<double>(loss_count);
    }
  }

  double drift_sq = 0.0;
  for (std::size_t i = 0; i < result.touched.size(); ++i) {
    const auto now = model.entities().row(result.touched[i]);
    const float* base = base_rows.data() + i * width;
    for (std::size_t j = 0; j < width; ++j) {
      const double d = static_cast<double>(now[j]) - base[j];
      drift_sq += d * d;
    }
  }
  result.drift = std::sqrt(drift_sq);
  return result;
}

}  // namespace dynkge::stream
