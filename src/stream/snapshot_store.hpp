// SnapshotStore — immutable, versioned embedding snapshots with atomic
// zero-downtime hot-swap.
//
// The serving layer must keep answering queries while new model versions
// arrive (full retrains or incremental delta refreshes). The store holds a
// small ring of the most recent versions; each slot owns one immutable
// model (shared_ptr<const KgeModel>) plus a reader count. The score path
// takes no lock:
//
//   * acquire() — load the current slot index (the epoch pointer), bump
//     that slot's reader count, re-check the pointer, copy the slot's
//     shared_ptr out, and drop the count. The returned PinnedModel keeps
//     its version alive via refcount for as long as the request runs, so
//     a reader never observes a torn swap and every read is served
//     entirely from one version ("stale reads are bounded to the pinned
//     version").
//
//   * publish() — serialized by a writer mutex. The publisher prepares the
//     next ring slot: it waits for that slot's readers to drain (they are
//     only pinned for the few instructions of the shared_ptr copy — the
//     slot became unreachable kRingSlots publishes ago), installs the new
//     model, then advances the epoch pointer with a release store. Readers
//     switch to the new version on their next acquire(); in-flight reads
//     drain on the old version undisturbed.
//
// Publish observers (registered once at wiring time) run on the publisher
// thread after the swap — the serving layer uses them for entity-keyed
// cache invalidation, metrics and JSONL events.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "kge/model.hpp"
#include "kge/triple.hpp"
#include "obs/telemetry.hpp"

namespace dynkge::stream {

/// One immutable model version. Copyable and cheap: the model lives for at
/// least as long as any PinnedModel that references it.
struct PinnedModel {
  std::shared_ptr<const kge::KgeModel> model;
  std::uint64_t version = 0;

  const kge::KgeModel& operator*() const { return *model; }
  const kge::KgeModel* operator->() const { return model.get(); }
  explicit operator bool() const { return model != nullptr; }
};

/// Called after a version becomes current: (version, entities whose rows
/// changed relative to the previous version; empty = treat everything as
/// changed, e.g. a full model swap).
using PublishObserver =
    std::function<void(std::uint64_t version,
                       const std::vector<kge::EntityId>& touched)>;

class SnapshotStore {
 public:
  /// Versions retained (and the bound on how far a long-lived PinnedModel
  /// may lag before publishers stop having to wait for it).
  static constexpr std::size_t kRingSlots = 4;

  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Install the first version (version 1). Must be called exactly once,
  /// before any acquire(); publishes after the first must use publish().
  /// The non-owning overload aliases `model` without taking ownership —
  /// the caller keeps it alive for the store's lifetime.
  std::uint64_t init(std::shared_ptr<const kge::KgeModel> model);
  std::uint64_t init(const kge::KgeModel& model);

  /// Atomically make `model` the current version and return its number.
  /// `touched` lists the entity rows that differ from the previous
  /// version (empty = full swap, everything may have changed); it is
  /// forwarded verbatim to publish observers. The new model must have the
  /// same entity/relation universe as the current one. Thread-safe
  /// against readers; concurrent publishers are serialized.
  std::uint64_t publish(std::shared_ptr<const kge::KgeModel> model,
                        std::vector<kge::EntityId> touched = {});
  std::uint64_t publish(std::unique_ptr<kge::KgeModel> model,
                        std::vector<kge::EntityId> touched = {});

  /// Pin the current version. Lock-free: two atomic RMWs plus one
  /// shared_ptr copy; never blocks on a publisher.
  PinnedModel acquire() const;

  /// Version of the current snapshot (0 before init()).
  std::uint64_t current_version() const {
    return version_.load(std::memory_order_acquire);
  }

  std::uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }

  /// Register a publish observer (called on the publisher thread, after
  /// the swap). Not thread-safe against concurrent publish(): register
  /// during wiring, before updates start flowing.
  void add_publish_observer(PublishObserver observer);

  /// Optional telemetry: stream.swap trace spans, stream.snapshots /
  /// stream.version metrics. Set during wiring.
  void set_telemetry(const obs::TelemetrySinks& sinks) { sinks_ = sinks; }

 private:
  struct Slot {
    /// Readers currently copying this slot's shared_ptr (not the number
    /// of outstanding PinnedModels — those hold refcounts instead).
    mutable std::atomic<std::uint64_t> readers{0};
    std::shared_ptr<const kge::KgeModel> model;  ///< epoch-protected
    std::uint64_t version = 0;                   ///< epoch-protected
  };

  std::uint64_t publish_locked(std::shared_ptr<const kge::KgeModel> model,
                               std::vector<kge::EntityId>&& touched);

  std::array<Slot, kRingSlots> slots_;
  std::atomic<std::size_t> current_{0};   ///< the epoch pointer
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::uint64_t> publishes_{0};

  std::mutex publish_mu_;  ///< one publisher at a time
  std::vector<PublishObserver> observers_;
  obs::TelemetrySinks sinks_;
};

}  // namespace dynkge::stream
