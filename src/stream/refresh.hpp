// Incremental embedding refresh: absorb a batch of streamed triples by
// updating only the entity rows those triples touch, against an otherwise
// frozen base model.
//
// Rationale (Procrustes line of work, PAPERS.md): embeddings trained
// incrementally on new facts stay compatible with a frozen base as long
// as the update is small and the shared coordinate frame is preserved.
// We keep the frame fixed by construction — relation rows and all
// untouched entity rows are never written, so the refreshed model lives
// in exactly the base model's space and cached/ranked results for
// untouched entities remain comparable across versions. The refresher
// reports the row drift it introduced so callers can alarm on frame-
// breaking updates instead of silently publishing them.
//
// Determinism: given the same base model bytes, the same delta batch in
// the same order, the same params and the same (seed, version) pair, the
// refreshed model is byte-identical — the RNG stream is derived from
// (seed, version), triples are visited in batch order, and touched rows
// are updated in sorted-id order (the same contract the distributed
// trainer keeps). Tests assert this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kge/dataset.hpp"
#include "kge/model.hpp"
#include "kge/triple.hpp"

namespace dynkge::stream {

struct RefreshParams {
  int steps = 2;                ///< optimization passes over the batch
  int negatives_sampled = 4;    ///< uniform corruptions drawn per positive
  int negatives_used = 4;       ///< hardest kept (< sampled = hard mining)
  double learning_rate = 0.05;
  double weight_decay = 0.0;
  std::uint64_t seed = 1234;    ///< stream seed; mixed with the version
};

struct RefreshResult {
  std::vector<kge::EntityId> touched;  ///< sorted, unique entity rows updated
  double mean_loss = 0.0;              ///< logistic loss, final pass
  double drift = 0.0;                  ///< L2 norm of (new - base) touched rows
  std::size_t row_updates = 0;         ///< Adam row updates applied
};

/// Refresh `model` in place for `deltas`, updating only the entity rows
/// that appear in the batch (relations and all other entities stay
/// byte-identical). `version` is the snapshot version being produced —
/// it salts the RNG stream so every publish is independent yet
/// reproducible. `dataset` (optional) enables hard-negative mining
/// (core::select_hard_negatives) when negatives_used < negatives_sampled;
/// without it, all sampled corruptions are used.
RefreshResult incremental_refresh(kge::KgeModel& model,
                                  std::span<const kge::Triple> deltas,
                                  std::uint64_t version,
                                  const RefreshParams& params,
                                  const kge::Dataset* dataset = nullptr);

}  // namespace dynkge::stream
