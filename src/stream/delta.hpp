// Streamed knowledge-graph deltas.
//
// A delta is one new fact (a triple) arriving after the base model was
// trained — the unit of change a living KG serving system must absorb
// without a full retrain. Deltas arrive in a total order (the stream
// order); the refresh pipeline preserves that order so a replayed stream
// is byte-reproducible.
//
// Wire format (load_delta_file): one triple per line, "head relation
// tail" as whitespace-separated integer ids. Blank lines and lines
// starting with '#' are skipped; out-of-universe ids are counted and
// dropped (a streamed fact about an unknown entity cannot be refreshed
// into a fixed-shape embedding table — growing the universe is a model
// swap, not a delta).
#pragma once

#include <cstddef>
#include <string>

#include "kge/triple.hpp"

namespace dynkge::stream {

struct DeltaFile {
  kge::TripleList triples;     ///< in-range deltas, in file order
  std::size_t skipped = 0;     ///< out-of-range or malformed lines dropped
  std::size_t lines = 0;       ///< non-comment, non-blank lines seen
};

/// Parse a delta stream file. `num_entities` / `num_relations` bound the
/// id universe. Throws std::runtime_error if the file cannot be opened.
DeltaFile load_delta_file(const std::string& path, std::int32_t num_entities,
                          std::int32_t num_relations);

}  // namespace dynkge::stream
