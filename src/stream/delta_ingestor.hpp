// DeltaIngestor — accepts streamed triples, batches them, runs the
// incremental refresh against the current snapshot, and publishes the
// result as a new version in the SnapshotStore.
//
// The ingest path is: submit() enqueues (bounded — deltas beyond
// `max_pending` are shed and counted, the ingest-side admission valve);
// flush() drains the pending batch, clones the current model
// (kge::clone_model), refreshes only the touched entity rows
// (stream/refresh.hpp) and publishes. Publishing defers to read traffic
// via the shared AdmissionController, so an update burst cannot starve
// the score path.
//
// Determinism: versions are produced in flush order, each refresh is
// seeded by (seed, version), and batches preserve submission order — so
// a fixed delta stream applied to version N yields byte-identical
// snapshot bytes on every replay (asserted by tests).
//
// Thread-safety: any number of producers may submit() concurrently;
// flush() may run concurrently with submits but flushes themselves are
// serialized (second caller waits).
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "kge/dataset.hpp"
#include "kge/triple.hpp"
#include "obs/telemetry.hpp"
#include "stream/admission.hpp"
#include "stream/refresh.hpp"
#include "stream/snapshot_store.hpp"

namespace dynkge::stream {

struct IngestConfig {
  std::size_t batch_size = 256;   ///< auto-flush threshold for submit()
  std::size_t max_pending = 65536;  ///< pending bound; beyond = shed
  RefreshParams refresh;
  /// Optional shared admission controller: publishes defer while reads
  /// are saturated. Must outlive the ingestor.
  AdmissionController* admission = nullptr;
  /// Optional known-triple source for filtered / hard-negative sampling
  /// during refresh. Must outlive the ingestor.
  const kge::Dataset* dataset = nullptr;
  /// Optional stream.* metrics, stream.refresh trace spans and per-batch
  /// "delta_batch" JSONL events.
  obs::TelemetrySinks telemetry;
};

struct IngestStats {
  std::uint64_t submitted = 0;   ///< deltas accepted into the queue
  std::uint64_t shed = 0;        ///< deltas rejected (queue full)
  std::uint64_t batches = 0;     ///< refreshes published
  std::uint64_t touched_rows = 0;  ///< entity rows updated, cumulative
  double last_drift = 0.0;
  double last_mean_loss = 0.0;
};

class DeltaIngestor {
 public:
  /// `store` must be initialized (init() called) and outlive the
  /// ingestor.
  DeltaIngestor(SnapshotStore& store, const IngestConfig& config);

  DeltaIngestor(const DeltaIngestor&) = delete;
  DeltaIngestor& operator=(const DeltaIngestor&) = delete;

  /// Queue one delta. Returns false (and counts a shed) when the pending
  /// queue is full. When the pending batch reaches batch_size it is
  /// flushed inline on the calling thread.
  bool submit(const kge::Triple& delta);

  /// Queue many deltas; returns how many were accepted.
  std::size_t submit_batch(std::span<const kge::Triple> deltas);

  /// Refresh + publish everything pending. Returns the new version, or 0
  /// if nothing was pending. Safe to call concurrently with submits.
  std::uint64_t flush();

  std::size_t pending() const;
  IngestStats stats() const;

 private:
  std::uint64_t flush_batch(std::vector<kge::Triple>&& batch);

  SnapshotStore& store_;
  IngestConfig config_;

  mutable std::mutex pending_mu_;
  std::vector<kge::Triple> pending_;

  std::mutex flush_mu_;  ///< serializes refresh+publish

  mutable std::mutex stats_mu_;
  IngestStats stats_;
};

}  // namespace dynkge::stream
