#include "stream/delta_ingestor.hpp"

#include <stdexcept>
#include <utility>

#include "kge/model_factory.hpp"
#include "util/json_writer.hpp"
#include "util/stopwatch.hpp"

namespace dynkge::stream {

DeltaIngestor::DeltaIngestor(SnapshotStore& store, const IngestConfig& config)
    : store_(store), config_(config) {
  if (config_.batch_size == 0) {
    throw std::invalid_argument("DeltaIngestor: batch_size must be >= 1");
  }
  if (store_.current_version() == 0) {
    throw std::logic_error(
        "DeltaIngestor: SnapshotStore has no initial version (call init())");
  }
  pending_.reserve(config_.batch_size);
}

bool DeltaIngestor::submit(const kge::Triple& delta) {
  std::vector<kge::Triple> to_flush;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (pending_.size() >= config_.max_pending) {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.shed;
      if (config_.telemetry.metrics != nullptr) {
        config_.telemetry.metrics->counter("stream.deltas_shed").add(1);
      }
      return false;
    }
    pending_.push_back(delta);
    if (pending_.size() >= config_.batch_size) {
      to_flush.swap(pending_);
      pending_.reserve(config_.batch_size);
    }
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.submitted;
  }
  if (config_.telemetry.metrics != nullptr) {
    config_.telemetry.metrics->counter("stream.deltas_ingested").add(1);
  }
  if (!to_flush.empty()) flush_batch(std::move(to_flush));
  return true;
}

std::size_t DeltaIngestor::submit_batch(std::span<const kge::Triple> deltas) {
  std::size_t accepted = 0;
  for (const kge::Triple& delta : deltas) {
    if (submit(delta)) ++accepted;
  }
  return accepted;
}

std::uint64_t DeltaIngestor::flush() {
  std::vector<kge::Triple> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    if (pending_.empty()) return 0;
    batch.swap(pending_);
    pending_.reserve(config_.batch_size);
  }
  return flush_batch(std::move(batch));
}

std::uint64_t DeltaIngestor::flush_batch(std::vector<kge::Triple>&& batch) {
  // One refresh at a time: versions are produced in flush order, so the
  // (seed, version) RNG derivation is stable across replays.
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  const obs::TraceSpan span(config_.telemetry.trace, "stream.refresh", 0);
  const util::Stopwatch clock;

  const PinnedModel base = store_.acquire();
  const std::uint64_t next_version = base.version + 1;

  std::unique_ptr<kge::KgeModel> refreshed = kge::clone_model(*base.model);
  RefreshResult result = incremental_refresh(
      *refreshed, batch, next_version, config_.refresh, config_.dataset);

  // Updates yield to saturated read traffic (bounded), then swap in.
  if (config_.admission != nullptr) config_.admission->defer_update();
  std::vector<kge::EntityId> touched = result.touched;
  const std::uint64_t version =
      store_.publish(std::move(refreshed), std::move(touched));

  const double seconds = clock.seconds();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.batches;
    stats_.touched_rows += result.touched.size();
    stats_.last_drift = result.drift;
    stats_.last_mean_loss = result.mean_loss;
  }
  if (config_.telemetry.metrics != nullptr) {
    auto& m = *config_.telemetry.metrics;
    m.counter("stream.batches").add(1);
    m.counter("stream.touched_entities").add(result.touched.size());
    m.histogram("stream.refresh_seconds").record(seconds);
    m.gauge("stream.refresh.drift").set(result.drift);
  }
  if (config_.telemetry.events != nullptr) {
    util::JsonWriter json;
    json.begin_object()
        .kv("event", "delta_batch")
        .kv("version", static_cast<std::int64_t>(version))
        .kv("deltas", batch.size())
        .kv("touched_entities", result.touched.size())
        .kv("row_updates", result.row_updates)
        .kv("mean_loss", result.mean_loss)
        .kv("drift", result.drift)
        .kv("refresh_seconds", seconds)
        .end_object();
    config_.telemetry.events->write_line(json.str());
  }
  return version;
}

std::size_t DeltaIngestor::pending() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_.size();
}

IngestStats DeltaIngestor::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace dynkge::stream
