// Strategy 3 — gradient quantization (paper section 4.3).
//
// RowCodec serializes sparse gradient rows into the wire format used by
// the all-gather exchange. Three modes:
//
//   kNone   : [int32 id][width x float32]                (4 + 4w bytes)
//   kOneBit : [int32 id][float32 scale][w sign bits]     (8 + ceil(w/8))
//             decoded value = sign(v_i) * scale
//             scale = max|v| (paper's choice) or one of the section-4.3
//             variants (avg / negmax / posmax / negavg / posavg)
//   kTwoBit : [int32 id][float32 scale][w 2-bit codes]   (8 + ceil(w/4))
//             TernGrad-style: code in {0, +1, -1}, scale = mean|v|,
//             P(code_i != 0) = min(1, |v_i| / scale)   (stochastic,
//             unbiased in expectation)
//
// The 1-bit scheme cuts the per-value payload 32x, which is what shifts
// the all-reduce/all-gather crossover and lets the dynamic selector pick
// all-gather ~60% more often (paper section 4.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/strategy_config.hpp"
#include "kge/embedding.hpp"
#include "util/rng.hpp"

namespace dynkge::core {

class RowCodec {
 public:
  RowCodec(QuantMode mode, OneBitScale scale_variant, std::int32_t width);

  QuantMode mode() const { return mode_; }
  std::int32_t width() const { return width_; }

  /// Fixed serialized size of one row.
  std::size_t bytes_per_row() const { return bytes_per_row_; }

  /// Append the serialized row to `out`. `rng` drives the 2-bit stochastic
  /// zeroing and is unused by the other modes.
  void encode(std::int32_t id, std::span<const float> row,
              std::vector<std::byte>& out, util::Rng& rng) const;

  /// Parse one serialized row (exactly bytes_per_row() bytes): fills
  /// `values` (size width()) and returns the row id.
  std::int32_t decode(std::span<const std::byte> in,
                      std::span<float> values) const;

  /// Serialize a whole gradient (rows in ascending id order).
  void encode_grad(const kge::SparseGrad& grad, std::vector<std::byte>& out,
                   util::Rng& rng) const;

  /// Parse a buffer of serialized rows, *adding* each row's values into
  /// the accumulator (the merge step of the sparse exchange).
  void decode_accumulate(std::span<const std::byte> in,
                         kge::SparseGrad& accumulator) const;

  /// out = decode(encode(in)) without serialization overhead; used to
  /// compute the quantization residual for error feedback. `scratch` is a
  /// caller-provided reusable buffer (this runs once per gradient row per
  /// step — a per-call allocation here was a measurable hot-path cost).
  void quantized_values(std::span<const float> in, std::span<float> out,
                        std::vector<std::byte>& scratch,
                        util::Rng& rng) const;

 private:
  float compute_scale(std::span<const float> row) const;

  QuantMode mode_;
  OneBitScale scale_variant_;
  std::int32_t width_;
  std::size_t bytes_per_row_;
};

}  // namespace dynkge::core
