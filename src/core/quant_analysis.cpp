#include "core/quant_analysis.hpp"

#include <cmath>
#include <vector>

#include "util/span_math.hpp"

namespace dynkge::core {

QuantizationQuality analyze_quantization(const RowCodec& codec,
                                         std::span<const float> row,
                                         util::Rng& rng, int trials) {
  QuantizationQuality quality;
  const RowCodec raw(QuantMode::kNone, OneBitScale::kMax, codec.width());
  quality.compression_ratio =
      static_cast<double>(raw.bytes_per_row()) /
      static_cast<double>(codec.bytes_per_row());

  const double norm = util::nrm2(row);
  std::vector<float> decoded(row.size());
  std::vector<std::byte> scratch;
  double error_sq_sum = 0.0, dot_sum = 0.0, decoded_norm_sum = 0.0,
         bias_sum = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    codec.quantized_values(row, decoded, scratch, rng);
    double error_sq = 0.0, dot = 0.0, decoded_sq = 0.0, bias = 0.0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      const double e = static_cast<double>(decoded[i]) - row[i];
      error_sq += e * e;
      dot += static_cast<double>(row[i]) * decoded[i];
      decoded_sq += static_cast<double>(decoded[i]) * decoded[i];
      bias += e;
    }
    error_sq_sum += error_sq;
    dot_sum += dot;
    decoded_norm_sum += std::sqrt(decoded_sq);
    bias_sum += bias / static_cast<double>(row.size());
  }
  const double mean_error = std::sqrt(error_sq_sum / trials);
  const double mean_decoded_norm = decoded_norm_sum / trials;
  quality.relative_l2_error = norm > 0.0 ? mean_error / norm : 0.0;
  quality.cosine_alignment =
      (norm > 0.0 && mean_decoded_norm > 0.0)
          ? (dot_sum / trials) / (norm * mean_decoded_norm)
          : 1.0;
  quality.mean_bias = bias_sum / trials;
  quality.contraction = quality.relative_l2_error < 1.0;
  return quality;
}

}  // namespace dynkge::core
