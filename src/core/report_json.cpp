#include "core/report_json.hpp"

#include <fstream>
#include <stdexcept>

#include "util/json_writer.hpp"

namespace dynkge::core {

std::string report_to_json(const TrainReport& report,
                           const obs::MetricsRegistry* metrics) {
  util::JsonWriter json;
  json.begin_object();
  json.kv("strategy", report.strategy_label);
  json.kv("model", report.model_name);
  json.kv("num_nodes", report.num_nodes);
  json.kv("epochs", report.epochs);
  json.kv("converged", report.converged);
  json.kv("total_sim_seconds", report.total_sim_seconds);
  json.kv("mean_epoch_seconds", report.mean_epoch_seconds());
  json.kv("wall_seconds", report.wall_seconds);
  json.kv("host_threads", report.host_threads);
  json.kv("compute_cpu_seconds", report.compute_cpu_seconds);
  json.kv("host_speedup", report.host_speedup());
  json.kv("final_val_accuracy", report.final_val_accuracy);
  json.kv("tca", report.tca);
  json.key("ranking").begin_object();
  json.kv("mrr", report.ranking.mrr);
  json.kv("mean_rank", report.ranking.mean_rank);
  json.kv("hits1", report.ranking.hits1);
  json.kv("hits3", report.ranking.hits3);
  json.kv("hits10", report.ranking.hits10);
  json.kv("evaluated", report.ranking.evaluated);
  json.end_object();
  json.kv("allreduce_fraction", report.allreduce_fraction);
  json.kv("rank_failures", report.rank_failures);
  json.kv("recoveries", report.recoveries);
  json.kv("recovery_seconds", report.recovery_seconds);

  json.key("comm").begin_object();
  json.kv("total_bytes", report.comm_stats.total_bytes());
  json.kv("total_calls", report.comm_stats.total_calls());
  json.kv("total_modeled_seconds",
          report.comm_stats.total_modeled_seconds());
  json.key("per_kind").begin_array();
  for (int kind = 0; kind < static_cast<int>(comm::CollectiveKind::kCount);
       ++kind) {
    const auto& per_kind =
        report.comm_stats.of(static_cast<comm::CollectiveKind>(kind));
    if (per_kind.calls == 0) continue;
    json.begin_object();
    json.kv("kind",
            comm::to_string(static_cast<comm::CollectiveKind>(kind)));
    json.kv("calls", per_kind.calls);
    json.kv("bytes", per_kind.bytes);
    json.kv("modeled_seconds", per_kind.modeled_seconds);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  if (!report.comm_trace.empty()) {
    json.key("comm_trace").begin_array();
    for (const comm::CommEvent& event : report.comm_trace) {
      json.begin_object();
      json.kv("kind", comm::to_string(event.kind));
      json.kv("bytes", event.bytes);
      json.kv("sim_start", event.sim_start);
      json.kv("sim_end", event.sim_end);
      json.end_object();
    }
    json.end_array();
  }

  json.key("epoch_log").begin_array();
  for (const EpochRecord& record : report.epoch_log) {
    json.begin_object();
    json.kv("epoch", record.epoch);
    json.kv("used_allgather", record.used_allgather);
    json.kv("sim_seconds", record.sim_seconds);
    json.kv("comm_seconds", record.comm_seconds);
    json.kv("val_accuracy", record.val_accuracy);
    json.kv("mean_loss", record.mean_loss);
    json.kv("lr", record.lr);
    json.kv("nonzero_entity_rows", record.nonzero_entity_rows);
    json.kv("rows_before_selection", record.rows_before_selection);
    json.kv("rows_sent", record.rows_sent);
    json.end_object();
  }
  json.end_array();
  if (metrics != nullptr) {
    json.key("metrics").raw(metrics->to_json());
  }
  json.end_object();
  return json.str();
}

void write_report_json(const TrainReport& report, const std::string& path,
                       const obs::MetricsRegistry* metrics) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_report_json: cannot open " + path);
  }
  out << report_to_json(report, metrics) << '\n';
  if (!out) {
    throw std::runtime_error("write_report_json: write failed for " + path);
  }
}

}  // namespace dynkge::core
