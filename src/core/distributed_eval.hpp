// Distributed link-prediction evaluation.
//
// Ranking-based evaluation is the expensive part of a KGE pipeline:
// O(|test| x |entities| x dim). On the cluster it parallelizes trivially —
// every rank holds a full replica, so the test triples are sharded round
// robin, each rank ranks its shard, and the partial sums are combined
// with scalar all-reduces. The simulated-time accounting shows the near
// linear speedup a real deployment would get.
#pragma once

#include <span>

#include "comm/cost_model.hpp"
#include "kge/dataset.hpp"
#include "kge/evaluator.hpp"
#include "kge/model.hpp"

namespace dynkge::core {

struct DistributedEvalResult {
  kge::RankingMetrics metrics;
  /// Simulated wall time of the parallel evaluation (cluster max of
  /// measured per-rank compute plus the combining collectives).
  double sim_seconds = 0.0;
};

/// Evaluate `triples` against `model` on a simulated cluster of
/// `num_ranks` ranks. Numerically identical to
/// kge::Evaluator::link_prediction (the shard partials are exact sums).
/// The model must be fully assembled (run after training, when relation
/// partition has been reassembled).
DistributedEvalResult distributed_link_prediction(
    const kge::KgeModel& model, const kge::Dataset& dataset,
    std::span<const kge::Triple> triples, int num_ranks,
    const kge::EvalOptions& options = {},
    comm::CostModelParams network = comm::CostModelParams::aries());

}  // namespace dynkge::core
