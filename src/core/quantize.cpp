#include "core/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/span_math.hpp"

namespace dynkge::core {
namespace {

void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t n) {
  const auto* p = static_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + n);
}

template <typename T>
T read_as(const std::byte* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

}  // namespace

RowCodec::RowCodec(QuantMode mode, OneBitScale scale_variant,
                   std::int32_t width)
    : mode_(mode), scale_variant_(scale_variant), width_(width) {
  if (width <= 0) throw std::invalid_argument("RowCodec: width must be > 0");
  const auto w = static_cast<std::size_t>(width);
  switch (mode_) {
    case QuantMode::kNone:
      bytes_per_row_ = sizeof(std::int32_t) + w * sizeof(float);
      break;
    case QuantMode::kOneBit:
      bytes_per_row_ = sizeof(std::int32_t) + sizeof(float) + (w + 7) / 8;
      break;
    case QuantMode::kTwoBit:
      bytes_per_row_ = sizeof(std::int32_t) + sizeof(float) + (w + 3) / 4;
      break;
  }
}

float RowCodec::compute_scale(std::span<const float> row) const {
  // One-sided statistics fall back to max|v| when that side is empty (or
  // contributes a zero scale), so a same-signed row still round-trips.
  double sum = 0.0;
  float best = 0.0f;
  std::size_t count = 0;
  const bool negatives = scale_variant_ == OneBitScale::kNegMax ||
                         scale_variant_ == OneBitScale::kNegMean;
  const bool positives = scale_variant_ == OneBitScale::kPosMax ||
                         scale_variant_ == OneBitScale::kPosMean;
  for (const float v : row) {
    const float a = std::fabs(v);
    if (negatives && v >= 0.0f) continue;
    if (positives && v <= 0.0f) continue;
    best = std::max(best, a);
    sum += a;
    ++count;
  }
  switch (scale_variant_) {
    case OneBitScale::kMax:
    case OneBitScale::kNegMax:
    case OneBitScale::kPosMax:
      break;  // `best` already holds the max
    case OneBitScale::kMean:
    case OneBitScale::kNegMean:
    case OneBitScale::kPosMean:
      best = count == 0 ? 0.0f : static_cast<float>(sum / count);
      break;
  }
  if (best == 0.0f) best = util::amax(row);
  return best;
}

void RowCodec::encode(std::int32_t id, std::span<const float> row,
                      std::vector<std::byte>& out, util::Rng& rng) const {
  if (row.size() != static_cast<std::size_t>(width_)) {
    throw std::invalid_argument("RowCodec::encode: width mismatch");
  }
  append_bytes(out, &id, sizeof(id));
  switch (mode_) {
    case QuantMode::kNone: {
      append_bytes(out, row.data(), row.size_bytes());
      return;
    }
    case QuantMode::kOneBit: {
      const float scale = compute_scale(row);
      append_bytes(out, &scale, sizeof(scale));
      std::uint8_t bits = 0;
      int filled = 0;
      for (std::int32_t i = 0; i < width_; ++i) {
        bits |= static_cast<std::uint8_t>(row[i] >= 0.0f) << filled;
        if (++filled == 8) {
          out.push_back(static_cast<std::byte>(bits));
          bits = 0;
          filled = 0;
        }
      }
      if (filled != 0) out.push_back(static_cast<std::byte>(bits));
      return;
    }
    case QuantMode::kTwoBit: {
      // TernGrad with the paper's modification: mean|v| as the scale.
      const float scale = util::amean(row);
      append_bytes(out, &scale, sizeof(scale));
      std::uint8_t codes = 0;
      int filled = 0;
      for (std::int32_t i = 0; i < width_; ++i) {
        std::uint8_t code = 0;  // zero
        if (scale > 0.0f) {
          // Explicit clamp: elements with |v| >= scale (common — scale is
          // the row *mean*) must keep with probability exactly 1. The
          // clamp is byte-identical to passing the raw ratio because
          // next_bernoulli(p) is next_double() < p with next_double() in
          // [0, 1), but an out-of-range probability is a latent bug if
          // the Bernoulli implementation ever changes.
          const double p =
              std::min(1.0, static_cast<double>(std::fabs(row[i]) / scale));
          if (rng.next_bernoulli(p)) code = row[i] >= 0.0f ? 1 : 2;
        }
        codes |= static_cast<std::uint8_t>(code << (2 * filled));
        if (++filled == 4) {
          out.push_back(static_cast<std::byte>(codes));
          codes = 0;
          filled = 0;
        }
      }
      if (filled != 0) out.push_back(static_cast<std::byte>(codes));
      return;
    }
  }
}

std::int32_t RowCodec::decode(std::span<const std::byte> in,
                              std::span<float> values) const {
  if (in.size() != bytes_per_row_ ||
      values.size() != static_cast<std::size_t>(width_)) {
    throw std::invalid_argument("RowCodec::decode: size mismatch");
  }
  const std::byte* p = in.data();
  const auto id = read_as<std::int32_t>(p);
  p += sizeof(std::int32_t);
  switch (mode_) {
    case QuantMode::kNone: {
      std::memcpy(values.data(), p, values.size_bytes());
      return id;
    }
    case QuantMode::kOneBit: {
      const auto scale = read_as<float>(p);
      p += sizeof(float);
      for (std::int32_t i = 0; i < width_; ++i) {
        const auto bits = static_cast<std::uint8_t>(p[i / 8]);
        const bool positive = (bits >> (i % 8)) & 1u;
        values[i] = positive ? scale : -scale;
      }
      return id;
    }
    case QuantMode::kTwoBit: {
      const auto scale = read_as<float>(p);
      p += sizeof(float);
      for (std::int32_t i = 0; i < width_; ++i) {
        const auto codes = static_cast<std::uint8_t>(p[i / 4]);
        const std::uint8_t code = (codes >> (2 * (i % 4))) & 3u;
        values[i] = code == 0 ? 0.0f : (code == 1 ? scale : -scale);
      }
      return id;
    }
  }
  // Exhaustive switch above — reaching here means mode_ holds a value
  // outside the enum (memory corruption or an unhandled new mode). The
  // previous fallthrough silently returned the id with `values` untouched,
  // which would poison the gradient merge; fail loudly instead.
  std::fprintf(stderr, "RowCodec::decode: unhandled QuantMode %d\n",
               static_cast<int>(mode_));
  std::abort();
}

void RowCodec::encode_grad(const kge::SparseGrad& grad,
                           std::vector<std::byte>& out,
                           util::Rng& rng) const {
  if (grad.width() != width_) {
    throw std::invalid_argument("RowCodec::encode_grad: width mismatch");
  }
  // Block form: one pre-sized buffer, rows resolved through sorted_slots()
  // (one arena access each) instead of sorted_ids() + row(id) (one hash
  // lookup each). Iteration order — and therefore the 2-bit mode's RNG
  // draw order — is unchanged: ascending id.
  out.clear();
  out.reserve(grad.num_rows() * bytes_per_row_);
  for (const kge::SparseGrad::SlotRef& slot : grad.sorted_slots()) {
    encode(slot.id, grad.row_at(slot.offset), out, rng);
  }
}

void RowCodec::decode_accumulate(std::span<const std::byte> in,
                                 kge::SparseGrad& accumulator) const {
  if (in.size() % bytes_per_row_ != 0) {
    throw std::invalid_argument(
        "RowCodec::decode_accumulate: buffer is not a whole number of rows");
  }
  // Decode straight into the accumulator rows — no per-call temp vector
  // and no separate add pass. Each element adds the exact value decode()
  // would have produced (including +0.0f for a 2-bit zero code, so a
  // -0.0f accumulator element is still normalized the way the two-pass
  // path did it).
  for (std::size_t offset = 0; offset < in.size();
       offset += bytes_per_row_) {
    const std::byte* p = in.data() + offset;
    const auto id = read_as<std::int32_t>(p);
    p += sizeof(std::int32_t);
    auto row = accumulator.accumulate(id);
    switch (mode_) {
      case QuantMode::kNone: {
        for (std::int32_t i = 0; i < width_; ++i) {
          row[i] += read_as<float>(p + static_cast<std::size_t>(i) *
                                           sizeof(float));
        }
        break;
      }
      case QuantMode::kOneBit: {
        const auto scale = read_as<float>(p);
        p += sizeof(float);
        for (std::int32_t i = 0; i < width_; ++i) {
          const auto bits = static_cast<std::uint8_t>(p[i / 8]);
          const bool positive = (bits >> (i % 8)) & 1u;
          row[i] += positive ? scale : -scale;
        }
        break;
      }
      case QuantMode::kTwoBit: {
        const auto scale = read_as<float>(p);
        p += sizeof(float);
        for (std::int32_t i = 0; i < width_; ++i) {
          const auto codes = static_cast<std::uint8_t>(p[i / 4]);
          const std::uint8_t code = (codes >> (2 * (i % 4))) & 3u;
          row[i] += code == 0 ? 0.0f : (code == 1 ? scale : -scale);
        }
        break;
      }
    }
  }
}

void RowCodec::quantized_values(std::span<const float> in,
                                std::span<float> out,
                                std::vector<std::byte>& scratch,
                                util::Rng& rng) const {
  // `scratch` is caller-owned so the error-feedback loop (one call per
  // gradient row per step) stops heap-allocating: after the first call
  // the buffer's capacity is bytes_per_row() and clear() is free.
  scratch.clear();
  encode(0, in, scratch, rng);
  decode(scratch, out);
}

}  // namespace dynkge::core
