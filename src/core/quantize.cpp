#include "core/quantize.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/span_math.hpp"

namespace dynkge::core {
namespace {

void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t n) {
  const auto* p = static_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + n);
}

template <typename T>
T read_as(const std::byte* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

}  // namespace

RowCodec::RowCodec(QuantMode mode, OneBitScale scale_variant,
                   std::int32_t width)
    : mode_(mode), scale_variant_(scale_variant), width_(width) {
  if (width <= 0) throw std::invalid_argument("RowCodec: width must be > 0");
  const auto w = static_cast<std::size_t>(width);
  switch (mode_) {
    case QuantMode::kNone:
      bytes_per_row_ = sizeof(std::int32_t) + w * sizeof(float);
      break;
    case QuantMode::kOneBit:
      bytes_per_row_ = sizeof(std::int32_t) + sizeof(float) + (w + 7) / 8;
      break;
    case QuantMode::kTwoBit:
      bytes_per_row_ = sizeof(std::int32_t) + sizeof(float) + (w + 3) / 4;
      break;
  }
}

float RowCodec::compute_scale(std::span<const float> row) const {
  // One-sided statistics fall back to max|v| when that side is empty (or
  // contributes a zero scale), so a same-signed row still round-trips.
  double sum = 0.0;
  float best = 0.0f;
  std::size_t count = 0;
  const bool negatives = scale_variant_ == OneBitScale::kNegMax ||
                         scale_variant_ == OneBitScale::kNegMean;
  const bool positives = scale_variant_ == OneBitScale::kPosMax ||
                         scale_variant_ == OneBitScale::kPosMean;
  for (const float v : row) {
    const float a = std::fabs(v);
    if (negatives && v >= 0.0f) continue;
    if (positives && v <= 0.0f) continue;
    best = std::max(best, a);
    sum += a;
    ++count;
  }
  switch (scale_variant_) {
    case OneBitScale::kMax:
    case OneBitScale::kNegMax:
    case OneBitScale::kPosMax:
      break;  // `best` already holds the max
    case OneBitScale::kMean:
    case OneBitScale::kNegMean:
    case OneBitScale::kPosMean:
      best = count == 0 ? 0.0f : static_cast<float>(sum / count);
      break;
  }
  if (best == 0.0f) best = util::amax(row);
  return best;
}

void RowCodec::encode(std::int32_t id, std::span<const float> row,
                      std::vector<std::byte>& out, util::Rng& rng) const {
  if (row.size() != static_cast<std::size_t>(width_)) {
    throw std::invalid_argument("RowCodec::encode: width mismatch");
  }
  append_bytes(out, &id, sizeof(id));
  switch (mode_) {
    case QuantMode::kNone: {
      append_bytes(out, row.data(), row.size_bytes());
      return;
    }
    case QuantMode::kOneBit: {
      const float scale = compute_scale(row);
      append_bytes(out, &scale, sizeof(scale));
      std::uint8_t bits = 0;
      int filled = 0;
      for (std::int32_t i = 0; i < width_; ++i) {
        bits |= static_cast<std::uint8_t>(row[i] >= 0.0f) << filled;
        if (++filled == 8) {
          out.push_back(static_cast<std::byte>(bits));
          bits = 0;
          filled = 0;
        }
      }
      if (filled != 0) out.push_back(static_cast<std::byte>(bits));
      return;
    }
    case QuantMode::kTwoBit: {
      // TernGrad with the paper's modification: mean|v| as the scale.
      const float scale = util::amean(row);
      append_bytes(out, &scale, sizeof(scale));
      std::uint8_t codes = 0;
      int filled = 0;
      for (std::int32_t i = 0; i < width_; ++i) {
        std::uint8_t code = 0;  // zero
        if (scale > 0.0f) {
          const double p = std::fabs(row[i]) / scale;  // min(1, .) implicit
          if (rng.next_bernoulli(p)) code = row[i] >= 0.0f ? 1 : 2;
        }
        codes |= static_cast<std::uint8_t>(code << (2 * filled));
        if (++filled == 4) {
          out.push_back(static_cast<std::byte>(codes));
          codes = 0;
          filled = 0;
        }
      }
      if (filled != 0) out.push_back(static_cast<std::byte>(codes));
      return;
    }
  }
}

std::int32_t RowCodec::decode(std::span<const std::byte> in,
                              std::span<float> values) const {
  if (in.size() != bytes_per_row_ ||
      values.size() != static_cast<std::size_t>(width_)) {
    throw std::invalid_argument("RowCodec::decode: size mismatch");
  }
  const std::byte* p = in.data();
  const auto id = read_as<std::int32_t>(p);
  p += sizeof(std::int32_t);
  switch (mode_) {
    case QuantMode::kNone: {
      std::memcpy(values.data(), p, values.size_bytes());
      return id;
    }
    case QuantMode::kOneBit: {
      const auto scale = read_as<float>(p);
      p += sizeof(float);
      for (std::int32_t i = 0; i < width_; ++i) {
        const auto bits = static_cast<std::uint8_t>(p[i / 8]);
        const bool positive = (bits >> (i % 8)) & 1u;
        values[i] = positive ? scale : -scale;
      }
      return id;
    }
    case QuantMode::kTwoBit: {
      const auto scale = read_as<float>(p);
      p += sizeof(float);
      for (std::int32_t i = 0; i < width_; ++i) {
        const auto codes = static_cast<std::uint8_t>(p[i / 4]);
        const std::uint8_t code = (codes >> (2 * (i % 4))) & 3u;
        values[i] = code == 0 ? 0.0f : (code == 1 ? scale : -scale);
      }
      return id;
    }
  }
  return id;
}

void RowCodec::encode_grad(const kge::SparseGrad& grad,
                           std::vector<std::byte>& out,
                           util::Rng& rng) const {
  if (grad.width() != width_) {
    throw std::invalid_argument("RowCodec::encode_grad: width mismatch");
  }
  out.clear();
  out.reserve(grad.num_rows() * bytes_per_row_);
  for (const std::int32_t id : grad.sorted_ids()) {
    encode(id, grad.row(id), out, rng);
  }
}

void RowCodec::decode_accumulate(std::span<const std::byte> in,
                                 kge::SparseGrad& accumulator) const {
  if (in.size() % bytes_per_row_ != 0) {
    throw std::invalid_argument(
        "RowCodec::decode_accumulate: buffer is not a whole number of rows");
  }
  std::vector<float> values(static_cast<std::size_t>(width_));
  for (std::size_t offset = 0; offset < in.size();
       offset += bytes_per_row_) {
    const std::int32_t id =
        decode(in.subspan(offset, bytes_per_row_), values);
    auto row = accumulator.accumulate(id);
    for (std::size_t i = 0; i < values.size(); ++i) row[i] += values[i];
  }
}

void RowCodec::quantized_values(std::span<const float> in,
                                std::span<float> out, util::Rng& rng) const {
  std::vector<std::byte> buffer;
  buffer.reserve(bytes_per_row_);
  encode(0, in, buffer, rng);
  decode(buffer, out);
}

}  // namespace dynkge::core
