// FederatedTrainer — multi-client training with server-side delta
// aggregation (the FedS-style scenario on top of the paper's stack).
//
// M simulated clients each hold a private shard of the training triples.
// One aggregation round is: every client copies the shared global model,
// runs E local epochs of plain SGD on its shard, computes the sparse
// entity/relation row *deltas* (local - global for touched rows), pushes
// them through the strategy's selection (Top-K or RS, with error-feedback
// residuals parked per client across rounds) and quantization, and the
// server merges them over the parameter-server exchange path
// (gatherv + broadcast in the cost model). Every client applies the same
// merged average delta, so all replicas stay bit-identical — verified at
// the end of every run.
//
// Determinism contract (DESIGN.md section 12): results are byte-identical
// for a fixed (seed, client roster) across host-pool sizes, because every
// RNG stream is derived from (seed, original client id, round, epoch),
// shards are partitioned once for the *original* client count, each round
// re-shuffles from the shard's canonical order, and all reductions
// consume client contributions in fixed rank order.
//
// Client crashes reuse comm/recovery.* unchanged: within the elastic
// budget the roster shrinks to the survivors and the poisoned round
// replays from the previous round's in-memory snapshot — byte-identical
// to a fresh run on the shrunk roster resumed from the same snapshot.
// A dead client's shard simply drops out (its data is private).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/federated.hpp"
#include "core/lr_scheduler.hpp"
#include "core/strategy_config.hpp"
#include "kge/dataset.hpp"
#include "kge/evaluator.hpp"
#include "obs/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace dynkge::core {

/// Everything needed to resume a federated run at a round boundary. Kept
/// in memory for elastic recovery (like the distributed trainer's live
/// snapshots) and surfaced on the report for determinism tests.
struct FederatedSnapshot {
  int next_round = 0;
  /// Global model parameters (identical on every client).
  std::vector<float> entity_params;
  std::vector<float> relation_params;
  /// Scheduler state (PlateauScheduler::State fields).
  double scheduler_lr = 0.0;
  double scheduler_best_metric = -1e300;
  std::int32_t scheduler_stale_epochs = 0;
  bool scheduler_stopped = false;
  /// The roster the snapshot was taken with (original client ids,
  /// ascending) and each client's residual blob (4 maps, encoded by
  /// kge::encode_residual_maps), parallel to `clients`.
  std::vector<int> clients;
  std::vector<std::string> client_residuals;
};

struct FederatedConfig {
  std::string model_name = "complex";
  std::int32_t embedding_rank = 32;
  float init_scale = 0.1f;

  int negatives = 1;           ///< uniform corruptions per positive
  double weight_decay = 1e-6;

  PlateauConfig lr;
  std::uint64_t seed = 1234;

  /// Selection / quantization for the delta exchange. The transport is
  /// always parameter-server (the comm field is ignored); Top-K requires
  /// topk_k as in TrainConfig.
  StrategyConfig strategy;

  comm::FederatedPolicy policy;  ///< clients / local epochs / rounds / elastic

  int host_threads = 0;
  std::shared_ptr<util::ThreadPool> host_pool;

  comm::FaultInjector* fault_injector = nullptr;
  obs::TelemetrySinks telemetry;

  std::size_t valid_max_triples = 500;
  std::size_t eval_max_triples = 250;
  bool compute_final_metrics = true;

  comm::CostModelParams network = comm::CostModelParams::aries();

  /// Test hooks: start from a subset of the original roster (empty = all
  /// clients 0..M-1), optionally resuming from a snapshot — exactly what
  /// a crash recovery does internally, so determinism tests can compare a
  /// recovered run against a fresh shrunk-roster run.
  std::vector<int> active_clients;
  std::shared_ptr<const FederatedSnapshot> resume;
};

struct FederatedRoundRecord {
  int round = 0;
  int active_clients = 0;
  double mean_loss = 0.0;
  double val_accuracy = 0.0;
  double lr = 0.0;
  std::string selection;          ///< selection applied this round
  double keep_rate = 1.0;
  std::size_t bytes_on_wire = 0;  ///< rank-0 client's modeled traffic
  double sim_seconds = 0.0;
  double comm_seconds = 0.0;
};

struct FederatedReport {
  std::string strategy_label;
  std::string model_name;
  int num_clients = 0;      ///< original roster size (M)
  int active_clients = 0;   ///< survivors at the end
  int rounds = 0;           ///< aggregation rounds completed (incl. resumed)
  bool converged = false;   ///< plateau stop before the round cap

  double final_val_accuracy = 0.0;
  double tca = 0.0;
  kge::RankingMetrics ranking;

  double total_sim_seconds = 0.0;
  double wall_seconds = 0.0;

  int client_failures = 0;
  int recoveries = 0;
  double recovery_seconds = 0.0;

  /// Every client ended the run with bit-identical global parameters.
  bool replicas_consistent = false;

  std::vector<FederatedRoundRecord> round_log;

  /// The final global model (shared by all clients).
  std::shared_ptr<kge::KgeModel> model;

  /// Snapshot taken after the last completed round — lets tests chain
  /// byte-identity checks (recovered run vs fresh shrunk-roster resume).
  std::shared_ptr<const FederatedSnapshot> final_state;
};

class FederatedTrainer {
 public:
  FederatedTrainer(const kge::Dataset& dataset, FederatedConfig config);

  /// Run the federated job. Client deaths within the elastic budget
  /// shrink the roster and replay the poisoned round; beyond the budget
  /// comm::RankFailedError propagates (the CLI exits 3).
  FederatedReport train();

  const FederatedConfig& config() const { return config_; }

 private:
  /// One cluster attempt on `active` (original client ids, ascending).
  /// `resume` may be null; `live` receives the newest round snapshot.
  FederatedReport run_attempt(const std::vector<int>& active,
                              const FederatedSnapshot* resume,
                              util::ThreadPool& pool,
                              std::shared_ptr<FederatedSnapshot>* live);

  void validate_resume(const FederatedSnapshot& snapshot,
                       const std::vector<int>& active) const;

  const kge::Dataset& dataset_;
  FederatedConfig config_;
};

}  // namespace dynkge::core
