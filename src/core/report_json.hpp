// JSON export of training reports — the machine-readable companion to the
// bench tables, for plotting the paper figures from fresh runs.
#pragma once

#include <string>

#include "core/trainer.hpp"
#include "obs/metrics.hpp"

namespace dynkge::core {

/// Serialize the full report (summary + per-epoch log + traffic stats).
/// When `metrics` is non-null its snapshot is embedded under a "metrics"
/// key, so one report file carries the run's whole registry.
std::string report_to_json(const TrainReport& report,
                           const obs::MetricsRegistry* metrics = nullptr);

/// Write report_to_json(report, metrics) to `path`. Throws on I/O failure.
void write_report_json(const TrainReport& report, const std::string& path,
                       const obs::MetricsRegistry* metrics = nullptr);

}  // namespace dynkge::core
