// JSON export of training reports — the machine-readable companion to the
// bench tables, for plotting the paper figures from fresh runs.
#pragma once

#include <string>

#include "core/trainer.hpp"

namespace dynkge::core {

/// Serialize the full report (summary + per-epoch log + traffic stats).
std::string report_to_json(const TrainReport& report);

/// Write report_to_json(report) to `path`. Throws on I/O failure.
void write_report_json(const TrainReport& report, const std::string& path);

}  // namespace dynkge::core
