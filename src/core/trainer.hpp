// DistributedTrainer — the paper's full training pipeline.
//
// One call to train() runs synchronous data-parallel KGE training on the
// simulated cluster: the training triples are partitioned over P ranks
// (uniformly, or by relation when strategy 4 is active), each rank holds a
// full model replica, and every optimizer step merges the ranks' sparse
// gradients through the configured strategy stack:
//
//   batch -> (5) hard negative selection -> gradients
//         -> (2) gradient-row selection  -> (3) quantization
//         -> (1) all-reduce / all-gather / dynamic transport
//         -> (4) relation rows skipped under relation partition
//         -> sparse Adam on every replica
//
// Convergence is decided by the paper's plateau LR schedule on validation
// accuracy, which yields the per-method epoch counts N; epoch durations
// come from the simulated clock (measured per-thread compute + modeled
// communication), which yields the training times TT. See DESIGN.md.
//
// Host execution model: the P rank programs run concurrently, co-scheduled
// on a host thread pool (util::ThreadPool, shared with the serving layer's
// pool implementation; sized by TrainConfig::host_threads, with transient
// overflow threads when P exceeds the pool). Wall time therefore scales
// with min(P, host cores), while the reported sim_seconds/comm_seconds
// stay the paper-faithful simulated Cray numbers. Results are
// bit-identical for every host_threads value: all floating-point
// reductions consume per-rank contributions in fixed rank order, and
// per-rank RNGs are derived from (seed, rank, epoch) alone.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "core/lr_scheduler.hpp"
#include "core/strategy_config.hpp"
#include "kge/dataset.hpp"
#include "kge/evaluator.hpp"
#include "obs/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace dynkge::kge {
struct TrainingSnapshot;  // kge/serialize.hpp
}  // namespace dynkge::kge

namespace dynkge::core {

struct TrainConfig {
  std::string model_name = "complex";  ///< complex | distmult | transe
  std::int32_t embedding_rank = 32;    ///< complex components per embedding
  float init_scale = 0.1f;  ///< multiplier on the model's default init
                            ///< scale; small values start scores near zero,
                            ///< which stabilizes hard-negative mining

  int num_nodes = 1;
  std::size_t batch_size = 1000;  ///< positives per rank per step

  /// Host threads the simulated cluster's rank programs run on. 0 means
  /// hardware concurrency. Purely a wall-time knob: results are
  /// bit-identical for every value (rank-ordered reductions, per-rank
  /// RNGs), and sim_seconds/comm_seconds are unaffected. When
  /// host_threads < num_nodes the pool co-schedules the excess ranks on
  /// transient overflow threads (barrier programs need all P ranks live).
  int host_threads = 0;

  /// Optional externally owned pool to run on (e.g. one pool shared by
  /// several train() calls). When set, host_threads is ignored.
  std::shared_ptr<util::ThreadPool> host_pool;

  PlateauConfig lr;            ///< plateau schedule (paper defaults inside)
  double weight_decay = 1e-6;  ///< 2*lambda of the L2 penalty
  int max_epochs = 200;        ///< hard cap on top of the plateau stop

  StrategyConfig strategy;

  /// Run the training hot path on the blocked kernels (batched scoring,
  /// GradWork gradient blocks, blocked Adam, block quantize). The scalar
  /// per-triple path is kept as the reference implementation; both produce
  /// byte-identical embeddings under every strategy (the block-kernel
  /// equivalence tests assert this), so this is purely a throughput knob —
  /// false exists for the equivalence tests and the bench_kernels
  /// baseline.
  bool block_kernels = true;

  std::uint64_t seed = 1234;

  /// Periodic full-state snapshots + resume (see kge/serialize.hpp and the
  /// "Fault tolerance" section of the README). A killed run restarted with
  /// `resume = true` continues from the last complete snapshot and produces
  /// final embeddings byte-identical to an uninterrupted run.
  struct CheckpointConfig {
    std::string dir;  ///< empty = checkpointing off
    int every = 1;    ///< write a snapshot every N epochs (and at the end)
    /// Scan `dir` for the newest valid snapshot before training and
    /// continue from its epoch. A corrupt newest snapshot falls back to
    /// the next-older valid one (see kge/checkpoint_dir.hpp); only when
    /// every candidate is damaged does resume fail. If the directory holds
    /// no snapshot the run starts from scratch (the crash may have
    /// predated the first checkpoint).
    bool resume = false;

    /// What a failed snapshot write does to the run (--checkpoint-on-error):
    ///   "fail"  — rethrow; a full disk kills training (default).
    ///   "skip"  — log, bump train.checkpoint_write_failures, keep
    ///             training; the previous snapshot stays the resume point.
    ///   "retry" — try the write again (fresh temp file) up to the fault
    ///             budget, then degrade to skip.
    std::string on_error = "fail";

    /// Total snapshots retained (--checkpoint-keep): the primary
    /// snapshot.dkgs plus keep-1 epoch-stamped history copies
    /// (snapshot-e<epoch>.dkgs) of the same sealed bytes. 1 = primary
    /// only (no history). Retention never deletes the last snapshot that
    /// verified good.
    int keep = 1;

    /// Test hooks for the kill/restart harness. `test_kill_at_epoch`
    /// raises SIGKILL right after that epoch's snapshot write;
    /// `test_kill_mid_write` additionally dies after that many bytes of
    /// the snapshot temp file instead (proving the atomic-rename
    /// guarantee). Negative = disabled.
    int test_kill_at_epoch = -1;
    std::int64_t test_kill_mid_write = -1;

    /// Disk-fault hooks for the degradation harness: starting at epoch
    /// `test_disk_fault_at_epoch`, the next `test_disk_fault_attempts`
    /// snapshot writes fail with ENOSPC (exercising `on_error`). -1 =
    /// disabled.
    int test_disk_fault_at_epoch = -1;
    int test_disk_fault_attempts = 1;
  };
  CheckpointConfig checkpoint;

  /// Optional fault injection (non-owning): forwarded to the simulated
  /// cluster so every collective consults it. See comm/fault.hpp. An
  /// injected rank crash surfaces as comm::RankFailedError from train()
  /// unless elastic recovery (below) absorbs it.
  comm::FaultInjector* fault_injector = nullptr;

  /// Transient-retry policy knobs mirrored from the CLI's FaultInjector
  /// (--fault-retry-limit / --fault-backoff-base). Validated here so a bad
  /// flag is reported with its name; the injector consumes the same values
  /// through its RetryPolicy.
  int fault_retry_limit = 4;
  double fault_backoff_base = 1e-3;

  /// Watchdog budget in simulated seconds per collective
  /// (--collective-deadline): a collective that hangs, or a straggler
  /// whose injected delay exceeds the budget, is converted into a
  /// deterministic RankFailedError the elastic layer can absorb. 0 =
  /// watchdog off. Validated here so the CLI flag is reported by name;
  /// enforced by the FaultInjector (comm/fault.hpp).
  double collective_deadline = 0.0;

  /// Elastic training: survive permanent rank crashes by shrinking the
  /// world to the survivors and replaying the poisoned epoch from the last
  /// in-run snapshot (kept in memory; no checkpoint dir required). See
  /// comm/recovery.hpp and DESIGN.md section 8.
  struct ElasticConfig {
    bool enabled = false;       ///< --elastic
    int max_rank_failures = 0;  ///< --max-rank-failures: cumulative budget
                                ///< across the whole run; exceeding it
                                ///< fails fast (RankFailedError)
    /// Test hook for the kill/restart harness: raise SIGKILL in the middle
    /// of the N-th recovery rebuild (1-based). <= 0 = disabled.
    int test_kill_in_recovery = -1;
  };
  ElasticConfig elastic;

  /// Optional warm start: every replica copies this model's parameters
  /// instead of random-initializing (shapes must match the dataset and
  /// model_name/rank). Enables incremental retraining from a checkpoint.
  std::shared_ptr<const kge::KgeModel> warm_start;

  std::size_t valid_max_triples = 500;  ///< per-epoch validation subsample
  std::size_t eval_max_triples = 250;   ///< final MRR ranking subsample
  bool compute_final_metrics = true;    ///< TCA + MRR after training
  bool trace_communication = false;     ///< record rank 0's collective
                                        ///< timeline into the report

  /// Observability sinks (src/obs/): metrics registry, Chrome trace-event
  /// writer, per-epoch JSONL event stream. All non-owning and default-off;
  /// null members cost a few pointer checks per step. Telemetry only reads
  /// training state — results are bit-identical with any sink enabled.
  obs::TelemetrySinks telemetry;

  comm::CostModelParams network = comm::CostModelParams::aries();
};

/// One epoch's worth of telemetry (rank-0 view; cluster maxima for times).
struct EpochRecord {
  int epoch = 0;
  bool used_allgather = false;
  double sim_seconds = 0.0;   ///< simulated epoch duration
  double comm_seconds = 0.0;  ///< modeled communication part
  double val_accuracy = 0.0;  ///< validation TCA in percent
  double mean_loss = 0.0;     ///< cluster-mean training loss
  double lr = 0.0;
  /// Mean unique non-zero entity gradient rows per step after the merge
  /// (figure 2's series).
  double nonzero_entity_rows = 0.0;
  /// Mean rows this rank communicated per step, before/after selection.
  double rows_before_selection = 0.0;
  double rows_sent = 0.0;
};

struct TrainReport {
  std::string strategy_label;
  std::string model_name;
  int num_nodes = 1;

  int epochs = 0;                  ///< the paper's N (includes pre-resume)
  bool converged = false;          ///< plateau stop (vs max_epochs cap)
  int start_epoch = 0;             ///< first epoch this run executed
                                   ///< (non-zero after --resume)
  int checkpoints_written = 0;     ///< snapshots written by this run
  double total_sim_seconds = 0.0;  ///< the paper's TT (simulated)
  double total_sim_hours() const { return total_sim_seconds / 3600.0; }
  double mean_epoch_seconds() const {
    return epochs == 0 ? 0.0 : total_sim_seconds / epochs;
  }

  double final_val_accuracy = 0.0;
  double tca = 0.0;                ///< the paper's TCA (percent)
  kge::RankingMetrics ranking;     ///< .mrr is the paper's MRR

  /// Host threads the rank programs ran on (the pool's worker count).
  int host_threads = 1;
  /// Sum over ranks of measured thread-CPU compute seconds (deterministic
  /// rank-ordered reduction of the per-rank slots; the value itself is a
  /// timing measurement and varies run to run, like wall_seconds).
  double compute_cpu_seconds = 0.0;
  /// Effective host parallelism: how many seconds of rank compute were
  /// retired per wall second. ~min(P, cores) when the host overlaps the
  /// ranks; ~1 when they serialize. This is the wall-time speedup over
  /// executing the measured compute sequentially.
  double host_speedup() const {
    return wall_seconds > 0.0 ? compute_cpu_seconds / wall_seconds : 0.0;
  }

  std::vector<EpochRecord> epoch_log;
  comm::CommStats comm_stats;      ///< rank 0 totals
  /// Share of recorded epochs run with all-reduce. 0.0 when no epochs ran
  /// — the same empty-history convention as
  /// CommModeSelector::allreduce_fraction().
  double allreduce_fraction = 0.0;
  double wall_seconds = 0.0;       ///< host wall time (diagnostic only)

  /// Elastic recovery accounting (see TrainConfig::elastic): ranks lost,
  /// successful shrink-world recoveries, and host wall seconds spent in
  /// recovery rebuilds. All zero for a fault-free or fail-fast run.
  int rank_failures = 0;
  int recoveries = 0;
  double recovery_seconds = 0.0;

  /// Verified at the end of training: every rank holds bit-identical
  /// entity embeddings (and, without relation partition, relation
  /// embeddings). Synchronous data-parallel training guarantees this; a
  /// false value indicates a gradient-exchange bug.
  bool replicas_consistent = false;

  /// Rank 0's trained replica (relation rows reassembled when relation
  /// partition was active). Use it for downstream inference: scoring,
  /// link-prediction queries, further evaluation.
  std::shared_ptr<kge::KgeModel> model;

  /// Rank 0's collective timeline (only when trace_communication is on).
  std::vector<comm::CommEvent> comm_trace;
};

class DistributedTrainer {
 public:
  DistributedTrainer(const kge::Dataset& dataset, TrainConfig config);

  /// Run the full training job on a fresh simulated cluster. With
  /// TrainConfig::elastic enabled this is a supervision loop: a permanent
  /// rank failure shrinks the world to the survivors, restores state from
  /// the last in-run snapshot, and replays the poisoned epoch — the
  /// post-recovery run is byte-identical to a fresh run at the smaller
  /// world size resumed from the same snapshot. Failures beyond the
  /// elastic budget rethrow comm::RankFailedError.
  TrainReport train();

  const TrainConfig& config() const { return config_; }

 private:
  /// One cluster attempt at `world_size` ranks. `resume` (may be null)
  /// is the snapshot state to continue from; `live_snapshot` (may be
  /// null) receives the sealed DKGS bytes of the newest per-epoch
  /// snapshot, kept for elastic recovery.
  TrainReport run_attempt(int world_size, const kge::TrainingSnapshot* resume,
                          util::ThreadPool& pool,
                          std::string* live_snapshot);

  /// Validate that a loaded snapshot belongs to this run (model, strategy,
  /// seed, shapes, RNG derivation). `world_size` is the world it will be
  /// resumed at — a larger snapshot world is accepted only in elastic mode
  /// (shrink-resume).
  void validate_resume_snapshot(const kge::TrainingSnapshot& snapshot,
                                int world_size) const;

  const kge::Dataset& dataset_;
  TrainConfig config_;
};

}  // namespace dynkge::core
