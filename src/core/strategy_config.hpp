// Configuration of the paper's five training strategies (section 4).
//
// Every experiment in the evaluation is a point in this configuration
// space; the named presets at the bottom are the method rows that appear
// in the paper's tables and figure legends (Table 5 nomenclature).
#pragma once

#include <string>

namespace dynkge::core {

/// Strategy 1 — how gradient matrices are synchronized across ranks.
enum class CommMode {
  kAllReduce,  ///< dense all-reduce of the full gradient matrix (baseline)
  kAllGather,  ///< sparse all-gather of non-zero rows (baseline)
  kDynamic,    ///< start with all-reduce, probe all-gather every k epochs,
               ///< switch permanently when the probe is faster (DRS)
  kParameterServer,  ///< workers push sparse rows to a server rank which
                     ///< merges and broadcasts — the approach the paper's
                     ///< introduction rejects for its server bottleneck;
                     ///< implemented as a comparison baseline
};

/// The transport actually used for one epoch (the dynamic mode resolves
/// to one of the static transports per epoch).
enum class Transport {
  kAllReduce,
  kAllGather,
  kParameterServer,
};

/// Strategy 2 — which gradient rows are communicated at all.
enum class SelectionMode {
  kNone,              ///< every non-zero row is communicated
  kAverageThreshold,  ///< drop rows with ||g||2 below the mean norm (fig 3 "average")
  kAverageTenth,      ///< threshold = 0.1 * mean norm (fig 3 "averagex0.1")
  kBernoulli,         ///< keep with P = min(1, ||g||2 / mean norm) — the
                      ///< paper's chosen "random selection" (RS)
  kTopK,              ///< entity-wise Top-K by accumulated row norm with
                      ///< error feedback (FedS-style); ties break toward
                      ///< the smaller entity id
};

/// Strategy 3 — gradient value quantization for communicated rows.
enum class QuantMode {
  kNone,    ///< full 32-bit values
  kOneBit,  ///< sign bit + one scale per row (chosen: 32x volume cut)
  kTwoBit,  ///< TernGrad-style {-1, 0, +1} with stochastic zeroing
};

/// Scale statistic for the 1-bit scheme. The paper compared max / average
/// and the one-sided variants and chose max (section 4.3). One-sided
/// variants compute the scale from only the negative (or positive) values;
/// when that side is empty the codec falls back to max|v|.
enum class OneBitScale {
  kMax,      ///< max of |v| (the paper's choice)
  kMean,     ///< mean of |v|
  kNegMax,   ///< max over |negative values|
  kPosMax,   ///< max over positive values
  kNegMean,  ///< mean over |negative values|
  kPosMean,  ///< mean over positive values
};

const char* to_string(CommMode mode);
const char* to_string(Transport transport);
const char* to_string(SelectionMode mode);
const char* to_string(QuantMode mode);
const char* to_string(OneBitScale scale);

struct StrategyConfig {
  CommMode comm = CommMode::kAllReduce;
  int dynamic_probe_interval = 10;  ///< the paper's k

  SelectionMode selection = SelectionMode::kNone;
  /// Park dropped rows as residuals and redeliver them when the row next
  /// appears (Aji & Heafield 2017; extension, off in the paper's runs).
  bool selection_residual = false;

  /// Rows kept per step by SelectionMode::kTopK (entity-wise Top-K).
  /// Required >= 1 when that mode (or the dynamic Top-K arm) is active.
  int topk_k = 0;
  /// Give the dynamic selector a third arm: probe epochs alternate between
  /// the base selection (RS) and Top-K, and the switch commits to the
  /// fastest probed arm that beat the all-reduce baseline.
  bool dynamic_topk_arm = false;

  QuantMode quant = QuantMode::kNone;
  OneBitScale one_bit_scale = OneBitScale::kMax;
  bool error_feedback = false;  ///< Karimireddy-style residual accumulation
                                ///< (extension; off in the paper's runs)

  bool relation_partition = false;  ///< strategy 4

  /// Strategy 5 — negative sampling: draw `negatives_sampled` (n) uniform
  /// corruptions per positive triple and train on the `negatives_used` (m)
  /// hardest. m == n disables selection (baseline "n out of n").
  int negatives_sampled = 1;
  int negatives_used = 1;

  bool sample_selection_active() const {
    return negatives_used < negatives_sampled;
  }

  /// Short label matching the paper's legends ("DRS+1-bit+RP+SS" etc).
  std::string label() const;

  // --- Named presets (paper Table 5) -----------------------------------

  static StrategyConfig baseline_allreduce(int negatives = 1);
  static StrategyConfig baseline_allgather(int negatives = 1);
  /// Parameter-server comparison baseline (paper section 1).
  static StrategyConfig baseline_parameter_server(int negatives = 1);
  /// RS: Bernoulli random selection of gradient rows.
  static StrategyConfig rs(int negatives = 1);
  /// DRS: dynamic all-gather/all-reduce + RS.
  static StrategyConfig drs(int negatives = 1);
  /// RS + 1-bit quantization.
  static StrategyConfig rs_1bit(int negatives = 1);
  /// DRS + 1-bit quantization.
  static StrategyConfig drs_1bit(int negatives = 1);
  /// RS + 1-bit + relation partition + sample selection (m out of n).
  static StrategyConfig rs_1bit_rp_ss(int sampled, int used = 1);
  /// DRS + 1-bit + relation partition + sample selection (m out of n).
  static StrategyConfig drs_1bit_rp_ss(int sampled, int used = 1);
  /// TopK: entity-wise Top-K selection with error feedback (extension).
  static StrategyConfig topk(int k, int negatives = 1);
  /// DRS with the Top-K third arm: {dense all-reduce, RS, Top-K}.
  static StrategyConfig drs_topk(int k, int negatives = 1);
};

}  // namespace dynkge::core
