// Strategy 4 — relation partition (paper section 4.4).
//
// Triples are distributed so that no two ranks ever hold triples with the
// same relation: sort by relation, build the per-relation count array,
// prefix-sum it, and binary-search the p-quantile split points on relation
// boundaries. Each rank then owns a contiguous relation range [lo, hi) and
// every triple whose relation falls in it.
//
// Consequence exploited by the trainer: the relation-gradient matrix never
// needs to be communicated (each rank is the only writer of its rows), and
// its updates stay full precision even when entity gradients are
// quantized — which is where the accuracy win comes from.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kge/triple.hpp"

namespace dynkge::core {

struct RelationPartition {
  /// shards[r] = the triples assigned to rank r.
  std::vector<kge::TripleList> shards;
  /// relation_range[r] = [first, last) relation ids owned by rank r.
  std::vector<std::pair<kge::RelationId, kge::RelationId>> relation_range;

  std::size_t max_shard_size() const;
  std::size_t min_shard_size() const;
  /// max/mean shard size; 1.0 = perfectly balanced.
  double imbalance() const;
  /// True iff no relation id occurs in two shards (the core invariant).
  bool relations_disjoint(std::int32_t num_relations) const;
  /// The rank owning relation `r`.
  int owner_of(kge::RelationId relation) const;
};

/// Partition `triples` over `num_ranks` ranks on relation boundaries,
/// balancing triple counts via prefix-sum + binary search.
RelationPartition partition_by_relation(std::span<const kge::Triple> triples,
                                        int num_ranks,
                                        std::int32_t num_relations);

/// Baseline partition: contiguous equal-count chunks of `triples` (callers
/// shuffle first). Relations overlap freely across ranks.
std::vector<kge::TripleList> partition_uniform(
    std::span<const kge::Triple> triples, int num_ranks);

}  // namespace dynkge::core
