// Strategy 2 — selecting the gradient vectors (paper section 4.2).
//
// The 2-norm of a gradient row is used as a proxy for its contribution to
// the loss decrease. Rows are dropped from communication either by a hard
// threshold on the norm (the "average" and "averagex0.1" baselines of
// figure 3) or — the paper's choice — by a Bernoulli draw per row:
//
//   P(keep row i) = min(1, ||g_i||_2 / C),   C = mean row 2-norm,
//
// so weak rows still occasionally get through instead of being starved.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/strategy_config.hpp"
#include "kge/embedding.hpp"
#include "util/rng.hpp"

namespace dynkge::core {

struct SelectionStats {
  std::size_t rows_before = 0;
  std::size_t rows_after = 0;

  /// Fraction of rows dropped (the "sparsity" series of figure 3b).
  double sparsity() const {
    return rows_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(rows_after) /
                           static_cast<double>(rows_before);
  }
};

/// Drop rows of `grad` in place according to `mode`. `rng` is only used by
/// the Bernoulli mode; `topk_k` only by SelectionMode::kTopK (the number of
/// rows to keep, ties broken toward the smaller entity id). Returns
/// before/after row counts.
SelectionStats select_gradient_rows(kge::SparseGrad& grad, SelectionMode mode,
                                    util::Rng& rng, std::size_t topk_k = 0);

/// Stateful selector with optional residual accumulation (Aji & Heafield
/// 2017, cited in the paper's related work): the values of dropped rows
/// are remembered and folded back into the gradient the next time the row
/// appears, so repeatedly-weak rows eventually deliver their full
/// contribution instead of being starved forever.
class GradSelector {
 public:
  GradSelector(SelectionMode mode, bool accumulate_residuals,
               std::size_t topk_k = 0)
      : mode_(mode),
        accumulate_residuals_(accumulate_residuals),
        topk_k_(topk_k) {}

  /// Fold residuals in, select rows, store new residuals for dropped
  /// rows. Mutates `grad` in place.
  SelectionStats apply(kge::SparseGrad& grad, util::Rng& rng);

  /// Like apply(), but with the mode overridden for this call. The dynamic
  /// Top-K arm uses this so one selector (and one residual map) serves
  /// whatever selection the probe schedule picked for the epoch — the
  /// residual mass parked by one arm is redelivered by the next.
  SelectionStats apply(kge::SparseGrad& grad, util::Rng& rng,
                       SelectionMode mode);

  /// Number of rows currently parked as residuals.
  std::size_t pending_rows() const { return residual_.size(); }

  /// Checkpoint access: the parked residual rows are part of the training
  /// state (dropping them on resume would change which gradient mass the
  /// next epochs deliver).
  const std::unordered_map<std::int32_t, std::vector<float>>& residuals()
      const {
    return residual_;
  }
  void restore_residuals(
      std::unordered_map<std::int32_t, std::vector<float>> residuals) {
    residual_ = std::move(residuals);
  }

 private:
  SelectionMode mode_;
  bool accumulate_residuals_;
  std::size_t topk_k_;
  std::unordered_map<std::int32_t, std::vector<float>> residual_;
};

}  // namespace dynkge::core
