// Strategy 5 — negative sample selection (paper section 4.5).
//
// For each positive triple, draw n uniform corruptions, score them with a
// forward pass (cheap — no gradients), and train only on the m that the
// model finds hardest to classify: the ones with the *highest* (least
// negative) scores. "1 out of n" keeps class balance at 1:1 while still
// mining informative negatives; "n out of n" recovers the baseline.
#pragma once

#include <vector>

#include "core/strategy_config.hpp"
#include "kge/model.hpp"
#include "kge/negative_sampler.hpp"

namespace dynkge::core {

/// Append to `out` the `used` hardest of `sampled` uniform corruptions of
/// `positive`. When used >= sampled, all corruptions are appended without
/// any scoring pass (baseline behaviour, zero overhead).
/// Returns the number of forward-pass scores computed (0 or `sampled`),
/// which the trainer charges to the simulated compute clock.
int select_hard_negatives(const kge::KgeModel& model,
                          const kge::NegativeSampler& sampler,
                          const kge::Triple& positive, int sampled, int used,
                          util::Rng& rng, kge::TripleList& out);

}  // namespace dynkge::core
