// Strategy 5 — negative sample selection (paper section 4.5).
//
// For each positive triple, draw n uniform corruptions, score them with a
// forward pass (cheap — no gradients), and train only on the m that the
// model finds hardest to classify: the ones with the *highest* (least
// negative) scores. "1 out of n" keeps class balance at 1:1 while still
// mining informative negatives; "n out of n" recovers the baseline.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/strategy_config.hpp"
#include "kge/model.hpp"
#include "kge/negative_sampler.hpp"

namespace dynkge::core {

/// Append to `out` the `used` hardest of `sampled` uniform corruptions of
/// `positive`. When used >= sampled, all corruptions are appended without
/// any scoring pass (baseline behaviour, zero overhead).
/// Returns the number of forward-pass scores computed (0 or `sampled`),
/// which the trainer charges to the simulated compute clock.
int select_hard_negatives(const kge::KgeModel& model,
                          const kge::NegativeSampler& sampler,
                          const kge::Triple& positive, int sampled, int used,
                          util::Rng& rng, kge::TripleList& out);

/// Reusable buffers for select_hard_negatives_block (one per rank; reused
/// across steps so the hot path allocates only while a batch grows past
/// every previous batch).
struct HardNegativeScratch {
  kge::TripleList candidates;
  std::vector<double> scores;
  std::vector<std::pair<double, kge::Triple>> scored;
};

/// Blocked form of select_hard_negatives over a whole batch of positives:
/// per positive the same corruption draws in the same RNG order, but the
/// forward passes for all candidates of the batch run through one
/// score_triples_block call. Appends the selected negatives to `out` and
/// pushes each positive's end offset into `offsets` (whose existing
/// contents are kept, matching the trainer's `negative_offsets` shape).
/// Byte-identical selection to calling select_hard_negatives per positive.
/// Returns the total number of forward-pass scores computed.
std::size_t select_hard_negatives_block(
    const kge::KgeModel& model, const kge::NegativeSampler& sampler,
    std::span<const kge::Triple> positives, int sampled, int used,
    util::Rng& rng, kge::TripleList& out, std::vector<std::size_t>& offsets,
    HardNegativeScratch& scratch);

}  // namespace dynkge::core
