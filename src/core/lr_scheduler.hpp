// The paper's learning-rate schedule (section 3.3/3.4):
//
//   initial lr = base_lr * min(max_scale, num_nodes)     (capped linear
//                                                          scaling rule)
//   reduce-on-plateau: if validation accuracy has not improved for
//   `tolerance` epochs, multiply lr by `factor`; once lr would fall below
//   `min_lr` and another tolerance window passes, training has converged.
//
// The convergence signal from this scheduler is what produces the paper's
// per-method epoch counts N.
#pragma once

#include <algorithm>
#include <stdexcept>

namespace dynkge::core {

struct PlateauConfig {
  double base_lr = 0.001;  ///< paper's initial learning rate
  int max_scale = 4;       ///< cap on the linear scaling rule
  int tolerance = 15;      ///< epochs without improvement before reduction
  double factor = 0.1;     ///< multiplicative reduction
  double min_lr = 1e-5;    ///< floor; plateauing here stops training
  double min_improvement = 1e-4;  ///< accuracy delta that counts as progress
};

class PlateauScheduler {
 public:
  PlateauScheduler(PlateauConfig config, int num_nodes)
      : config_(config),
        lr_(config.base_lr *
            std::min(config.max_scale, std::max(1, num_nodes))) {
    if (config.tolerance < 1) {
      throw std::invalid_argument("PlateauScheduler: tolerance must be >= 1");
    }
    if (config.factor <= 0.0 || config.factor >= 1.0) {
      throw std::invalid_argument("PlateauScheduler: factor must be in (0,1)");
    }
  }

  double lr() const { return lr_; }
  bool should_stop() const { return stopped_; }
  double best_metric() const { return best_; }
  int epochs_since_improvement() const { return stale_epochs_; }

  /// Mutable state for checkpoint/resume (the config is rebuilt from the
  /// run's flags, only the observation history needs persisting).
  struct State {
    double lr = 0.0;
    double best_metric = -1e300;
    int stale_epochs = 0;
    bool stopped = false;
  };
  State state() const { return {lr_, best_, stale_epochs_, stopped_}; }
  void restore(const State& s) {
    lr_ = s.lr;
    best_ = s.best_metric;
    stale_epochs_ = s.stale_epochs;
    stopped_ = s.stopped;
  }

  /// Feed one epoch's validation accuracy. Returns true if the learning
  /// rate was reduced by this observation.
  bool observe(double validation_metric) {
    if (validation_metric > best_ + config_.min_improvement) {
      best_ = validation_metric;
      stale_epochs_ = 0;
      return false;
    }
    if (++stale_epochs_ < config_.tolerance) return false;
    stale_epochs_ = 0;
    if (lr_ <= config_.min_lr) {
      stopped_ = true;
      return false;
    }
    lr_ = std::max(lr_ * config_.factor, config_.min_lr);
    return true;
  }

 private:
  PlateauConfig config_;
  double lr_;
  double best_ = -1e300;
  int stale_epochs_ = 0;
  bool stopped_ = false;
};

}  // namespace dynkge::core
