#include "core/distributed_eval.hpp"

#include <stdexcept>

#include "comm/communicator.hpp"
#include "util/thread_clock.hpp"

namespace dynkge::core {

DistributedEvalResult distributed_link_prediction(
    const kge::KgeModel& model, const kge::Dataset& dataset,
    std::span<const kge::Triple> triples, int num_ranks,
    const kge::EvalOptions& options, comm::CostModelParams network) {
  if (num_ranks < 1) {
    throw std::invalid_argument(
        "distributed_link_prediction: num_ranks must be >= 1");
  }

  // Apply any subsample cap once, globally, so the sharded evaluation
  // covers exactly the triples a sequential run would.
  const std::size_t stride =
      (options.max_triples != 0 && triples.size() > options.max_triples)
          ? (triples.size() + options.max_triples - 1) / options.max_triples
          : 1;
  kge::TripleList selected;
  for (std::size_t i = 0; i < triples.size(); i += stride) {
    selected.push_back(triples[i]);
  }

  DistributedEvalResult result;
  comm::Cluster cluster(num_ranks, network);
  cluster.run([&](comm::Communicator& comm) {
    // Round-robin shard: rank r ranks triples r, r+P, r+2P, ...
    kge::TripleList shard;
    for (std::size_t i = comm.rank(); i < selected.size();
         i += static_cast<std::size_t>(num_ranks)) {
      shard.push_back(selected[i]);
    }

    kge::RankingMetrics partial;
    double compute_seconds = 0.0;
    {
      util::ThreadCpuTimer timer(compute_seconds);
      const kge::Evaluator evaluator(dataset);
      kge::EvalOptions shard_options = options;
      shard_options.max_triples = 0;  // cap already applied globally
      partial = evaluator.link_prediction(model, shard, shard_options);
    }
    comm.sim_add_compute(compute_seconds);

    // Convert shard means back to sums, combine exactly, re-normalize.
    const auto count = static_cast<double>(partial.evaluated);
    const double total =
        comm.allreduce_scalar(count, comm::ScalarOp::kSum);
    const double mrr_sum =
        comm.allreduce_scalar(partial.mrr * count, comm::ScalarOp::kSum);
    const double rank_sum = comm.allreduce_scalar(partial.mean_rank * count,
                                                  comm::ScalarOp::kSum);
    const double hits1_sum =
        comm.allreduce_scalar(partial.hits1 * count, comm::ScalarOp::kSum);
    const double hits3_sum =
        comm.allreduce_scalar(partial.hits3 * count, comm::ScalarOp::kSum);
    const double hits10_sum =
        comm.allreduce_scalar(partial.hits10 * count, comm::ScalarOp::kSum);
    // Side means are normalized by half the pair count on each shard.
    const double head_sum = comm.allreduce_scalar(
        partial.mrr_head_side * count / 2.0, comm::ScalarOp::kSum);
    const double tail_sum = comm.allreduce_scalar(
        partial.mrr_tail_side * count / 2.0, comm::ScalarOp::kSum);
    const double sim_end =
        comm.allreduce_scalar(comm.sim_now(), comm::ScalarOp::kMax);

    if (comm.is_root()) {
      kge::RankingMetrics combined;
      combined.evaluated = static_cast<std::size_t>(total);
      if (total > 0) {
        combined.mrr = mrr_sum / total;
        combined.mean_rank = rank_sum / total;
        combined.hits1 = hits1_sum / total;
        combined.hits3 = hits3_sum / total;
        combined.hits10 = hits10_sum / total;
        combined.mrr_head_side = head_sum / (total / 2.0);
        combined.mrr_tail_side = tail_sum / (total / 2.0);
      }
      result.metrics = combined;
      result.sim_seconds = sim_end;
    }
  });
  return result;
}

}  // namespace dynkge::core
