#include "core/relation_partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace dynkge::core {

std::size_t RelationPartition::max_shard_size() const {
  std::size_t m = 0;
  for (const auto& s : shards) m = std::max(m, s.size());
  return m;
}

std::size_t RelationPartition::min_shard_size() const {
  if (shards.empty()) return 0;
  std::size_t m = shards.front().size();
  for (const auto& s : shards) m = std::min(m, s.size());
  return m;
}

double RelationPartition::imbalance() const {
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  if (total == 0 || shards.empty()) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shards.size());
  return static_cast<double>(max_shard_size()) / mean;
}

bool RelationPartition::relations_disjoint(std::int32_t num_relations) const {
  std::vector<int> owner(num_relations, -1);
  for (std::size_t rank = 0; rank < shards.size(); ++rank) {
    for (const kge::Triple& t : shards[rank]) {
      if (owner[t.relation] != -1 &&
          owner[t.relation] != static_cast<int>(rank)) {
        return false;
      }
      owner[t.relation] = static_cast<int>(rank);
    }
  }
  return true;
}

int RelationPartition::owner_of(kge::RelationId relation) const {
  for (std::size_t rank = 0; rank < relation_range.size(); ++rank) {
    const auto& [lo, hi] = relation_range[rank];
    if (relation >= lo && relation < hi) return static_cast<int>(rank);
  }
  return -1;
}

RelationPartition partition_by_relation(std::span<const kge::Triple> triples,
                                        int num_ranks,
                                        std::int32_t num_relations) {
  if (num_ranks < 1) {
    throw std::invalid_argument("partition_by_relation: num_ranks < 1");
  }
  if (num_relations < 1) {
    throw std::invalid_argument("partition_by_relation: num_relations < 1");
  }

  // Count triples per relation, then prefix-sum (paper's construction).
  std::vector<std::size_t> prefix(static_cast<std::size_t>(num_relations) + 1,
                                  0);
  for (const kge::Triple& t : triples) ++prefix[t.relation + 1];
  for (std::size_t r = 1; r < prefix.size(); ++r) prefix[r] += prefix[r - 1];
  const std::size_t total = prefix.back();

  RelationPartition partition;
  partition.shards.resize(num_ranks);
  partition.relation_range.resize(num_ranks);

  // Binary-search each quantile target in the prefix array to find the
  // relation boundary closest to an even split.
  kge::RelationId boundary = 0;
  for (int rank = 0; rank < num_ranks; ++rank) {
    const kge::RelationId lo = boundary;
    kge::RelationId hi;
    if (rank == num_ranks - 1) {
      hi = num_relations;
    } else {
      const std::size_t target =
          total * static_cast<std::size_t>(rank + 1) /
          static_cast<std::size_t>(num_ranks);
      // First relation boundary whose prefix reaches the target.
      const auto it =
          std::lower_bound(prefix.begin() + lo + 1, prefix.end(), target);
      hi = static_cast<kge::RelationId>(it - prefix.begin());
      hi = std::min<kge::RelationId>(hi, num_relations);
    }
    partition.relation_range[rank] = {lo, hi};
    boundary = hi;
  }

  // Scatter triples into their owning shard.
  for (const kge::Triple& t : triples) {
    for (int rank = 0; rank < num_ranks; ++rank) {
      const auto& [lo, hi] = partition.relation_range[rank];
      if (t.relation >= lo && t.relation < hi) {
        partition.shards[rank].push_back(t);
        break;
      }
    }
  }
  return partition;
}

std::vector<kge::TripleList> partition_uniform(
    std::span<const kge::Triple> triples, int num_ranks) {
  if (num_ranks < 1) {
    throw std::invalid_argument("partition_uniform: num_ranks < 1");
  }
  std::vector<kge::TripleList> shards(num_ranks);
  const std::size_t base = triples.size() / num_ranks;
  const std::size_t extra = triples.size() % num_ranks;
  std::size_t offset = 0;
  for (int rank = 0; rank < num_ranks; ++rank) {
    const std::size_t count = base + (static_cast<std::size_t>(rank) < extra);
    shards[rank].assign(triples.begin() + offset,
                        triples.begin() + offset + count);
    offset += count;
  }
  return shards;
}

}  // namespace dynkge::core
