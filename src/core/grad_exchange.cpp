#include "core/grad_exchange.hpp"

namespace dynkge::core {

GradExchange::GradExchange(comm::Communicator& comm,
                           const StrategyConfig& strategy,
                           std::int32_t num_entities,
                           std::int32_t entity_width,
                           std::int32_t num_relations,
                           std::int32_t relation_width,
                           obs::TraceWriter* trace, int trace_tid)
    : comm_(comm),
      strategy_(strategy),
      trace_(trace),
      trace_tid_(trace_tid),
      entity_codec_(strategy.quant, strategy.one_bit_scale, entity_width),
      relation_codec_(strategy.quant, strategy.one_bit_scale, relation_width),
      raw_entity_codec_(QuantMode::kNone, strategy.one_bit_scale,
                        entity_width),
      raw_relation_codec_(QuantMode::kNone, strategy.one_bit_scale,
                          relation_width),
      entity_dense_bytes_(static_cast<std::size_t>(num_entities) *
                          static_cast<std::size_t>(entity_width) *
                          sizeof(float)),
      relation_dense_bytes_(static_cast<std::size_t>(num_relations) *
                            static_cast<std::size_t>(relation_width) *
                            sizeof(float)) {}

void GradExchange::apply_error_feedback(
    kge::SparseGrad& local,
    std::unordered_map<std::int32_t, std::vector<float>>& residual,
    const RowCodec& codec, util::Rng& rng) {
  // Fold stored residuals into this step's gradient, then store the new
  // quantization error. Residuals for rows not touched this step stay
  // put and flow in whenever the row next appears. No rows are created or
  // erased inside the loop, so the cached slot list (and the arena
  // offsets in it) stays valid throughout.
  quantized_scratch_.resize(static_cast<std::size_t>(codec.width()));
  const std::span<float> quantized(quantized_scratch_);
  for (const kge::SparseGrad::SlotRef& slot : local.sorted_slots()) {
    auto row = local.row_at(slot.offset);
    const auto it = residual.find(slot.id);
    if (it != residual.end()) {
      for (std::size_t i = 0; i < row.size(); ++i) row[i] += it->second[i];
    }
    codec.quantized_values(row, quantized, codec_scratch_, rng);
    auto& stored = residual[slot.id];
    stored.resize(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      stored[i] = row[i] - quantized[i];
    }
  }
}

std::size_t GradExchange::exchange_matrix(
    kge::SparseGrad& local, kge::SparseGrad& merged, const RowCodec& codec,
    Transport transport, std::size_t dense_bytes,
    std::unordered_map<std::int32_t, std::vector<float>>* residual,
    util::Rng& rng) {
  if (transport != Transport::kAllReduce && residual != nullptr &&
      codec.mode() != QuantMode::kNone) {
    apply_error_feedback(local, *residual, codec, rng);
  }

  std::vector<std::byte>& encoded = encode_scratch_;
  {
    const obs::TraceSpan span(trace_, "quantize.encode", trace_tid_);
    codec.encode_grad(local, encoded, rng);
  }

  std::vector<std::byte>& gathered = gather_scratch_;
  std::vector<std::size_t>& counts = count_scratch_;
  // The in-process transport is always a gather of encoded rows; what
  // differs per mode is the *modeled* collective the clock is charged for:
  //  - all-gather: the real encoded volume, charged by the collective;
  //  - all-reduce: the dense matrix a ring all-reduce would carry;
  //  - parameter server: workers push rows to the server (gatherv — the
  //    server link carries every worker's volume, the bottleneck the
  //    paper's introduction describes), which merges and broadcasts the
  //    merged rows back.
  {
    const obs::TraceSpan span(trace_,
                              transport == Transport::kAllGather
                                  ? "exchange.allgather"
                              : transport == Transport::kAllReduce
                                  ? "exchange.allreduce"
                                  : "exchange.param_server",
                              trace_tid_);
    comm_.allgatherv_bytes(encoded, gathered, counts,
                           /*charge_cost=*/transport ==
                               Transport::kAllGather);
  }
  std::size_t total_encoded = 0;
  for (const std::size_t c : counts) total_encoded += c;
  {
    const obs::TraceSpan span(trace_, "quantize.decode", trace_tid_);
    codec.decode_accumulate(gathered, merged);
  }

  switch (transport) {
    case Transport::kAllGather:
      return encoded.size();
    case Transport::kAllReduce:
      comm_.charge(comm::CollectiveKind::kAllReduce, dense_bytes,
                   dense_bytes);
      return dense_bytes;
    case Transport::kParameterServer: {
      comm_.charge(comm::CollectiveKind::kGatherV, total_encoded,
                   encoded.size());
      const std::size_t merged_bytes =
          merged.num_rows() * codec.bytes_per_row();
      comm_.charge(comm::CollectiveKind::kBroadcast, merged_bytes,
                   merged_bytes);
      return encoded.size() + merged_bytes;
    }
  }
  return encoded.size();
}

ExchangeResult GradExchange::exchange(kge::ModelGrads& local,
                                      kge::ModelGrads& merged,
                                      const ExchangePlan& plan,
                                      util::Rng& rng) {
  ExchangeResult result;
  const double sim_before = comm_.sim_now();
  merged.clear();

  // On all-reduce epochs the values travel at full precision (a dense
  // ring all-reduce reduces in transit; quantized codes cannot be summed),
  // so quantization only takes effect on the row-based transports
  // (all-gather, parameter server) — which is why quantization shifts the
  // dynamic selector toward all-gather.
  const bool row_based = plan.transport != Transport::kAllReduce;
  const RowCodec& entity_codec =
      row_based ? entity_codec_ : raw_entity_codec_;
  const RowCodec& relation_codec =
      row_based ? relation_codec_ : raw_relation_codec_;

  result.entity_rows_sent = local.entity.num_rows();
  result.bytes_on_wire += exchange_matrix(
      local.entity, merged.entity, entity_codec, plan.transport,
      entity_dense_bytes_,
      strategy_.error_feedback ? &entity_residual_ : nullptr, rng);

  if (plan.exchange_relations) {
    result.bytes_on_wire += exchange_matrix(
        local.relation, merged.relation, relation_codec, plan.transport,
        relation_dense_bytes_,
        strategy_.error_feedback ? &relation_residual_ : nullptr, rng);
  }

  // Cluster average: divide the rank sum by P.
  const float inv_ranks = 1.0f / static_cast<float>(comm_.size());
  for (kge::SparseGrad* grad : {&merged.entity, &merged.relation}) {
    for (const std::int32_t id : grad->sorted_ids()) {
      for (float& v : grad->row(id)) v *= inv_ranks;
    }
  }

  result.entity_rows_merged = merged.entity.num_rows();
  result.comm_seconds = comm_.sim_now() - sim_before;
  return result;
}

}  // namespace dynkge::core
