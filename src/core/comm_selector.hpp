// Strategy 1 — dynamic selection of all-reduce vs all-gather (section 4.1).
//
// Training starts with all-reduce. Every k-th epoch one probe epoch is run
// with all-gather; if the probe's communication time beats the preceding
// all-reduce epoch's, the selector switches to all-gather for the rest of
// training, otherwise it stays on all-reduce and probes again k epochs
// later. Static modes (pure all-reduce / all-gather) pass through.
//
// All ranks feed the selector identical (allreduced) epoch times, so every
// replica takes the same decision without extra coordination.
#pragma once

#include "core/strategy_config.hpp"

namespace dynkge::core {

class CommModeSelector {
 public:
  /// Dynamic mode rejects probe_interval < 2: with interval 1 every epoch
  /// after 0 is a probe, so no all-reduce epoch would ever refresh the
  /// comparison baseline. Static modes ignore the interval.
  CommModeSelector(CommMode mode, int probe_interval);

  /// The transport the upcoming epoch (0-based) should use.
  Transport transport_for(int epoch) const;

  /// Should the upcoming epoch (0-based) use all-gather?
  bool use_allgather(int epoch) const {
    return transport_for(epoch) == Transport::kAllGather;
  }

  /// Will the upcoming epoch (0-based) run as a dynamic-mode probe? Query
  /// before record_epoch(), like transport_for(). Always false for static
  /// modes and after the permanent switch. Telemetry tags probe epochs in
  /// the event stream so offline analysis can replay the DRS decisions.
  bool is_probe(int epoch) const {
    return mode_ == CommMode::kDynamic && !switched_ && is_probe_epoch(epoch);
  }

  /// Report the finished epoch's communication seconds (cluster max).
  void record_epoch(int epoch, double comm_seconds);

  /// True once the dynamic selector has committed to all-gather.
  bool switched_to_allgather() const { return switched_; }

  /// Fraction of recorded epochs that ran all-reduce (the paper's "~60%
  /// fewer all-reduce communications" observation is read off this).
  double allreduce_fraction() const;

  CommMode mode() const { return mode_; }

  /// Mutable state for checkpoint/resume. The mode and probe interval come
  /// from the run's strategy flags; only the decision history persists.
  struct State {
    bool switched = false;
    double last_allreduce_time = -1.0;
    int epochs_recorded = 0;
    int allreduce_epochs = 0;
  };
  State state() const {
    return {switched_, last_allreduce_time_, epochs_recorded_,
            allreduce_epochs_};
  }
  void restore(const State& s) {
    switched_ = s.switched;
    last_allreduce_time_ = s.last_allreduce_time;
    epochs_recorded_ = s.epochs_recorded;
    allreduce_epochs_ = s.allreduce_epochs;
  }

 private:
  bool is_probe_epoch(int epoch) const;

  CommMode mode_;
  int probe_interval_;
  bool switched_ = false;
  double last_allreduce_time_ = -1.0;
  int epochs_recorded_ = 0;
  int allreduce_epochs_ = 0;
};

}  // namespace dynkge::core
