// Strategy 1 — dynamic selection of all-reduce vs all-gather (section 4.1).
//
// Training starts with all-reduce. Every k-th epoch one probe epoch is run
// with all-gather; if the probe's communication time beats the preceding
// all-reduce epoch's, the selector switches to all-gather for the rest of
// training, otherwise it stays on all-reduce and probes again k epochs
// later. Static modes (pure all-reduce / all-gather) pass through.
//
// All ranks feed the selector identical (allreduced) epoch times, so every
// replica takes the same decision without extra coordination.
#pragma once

#include "core/strategy_config.hpp"

namespace dynkge::core {

class CommModeSelector {
 public:
  /// Arms of the dynamic selector. Without the Top-K arm only the first
  /// two exist and the selector behaves exactly as before.
  enum Arm : int {
    kArmBase = 1,  ///< the strategy's base selection (RS) over all-gather
    kArmTopK = 2,  ///< entity-wise Top-K over all-gather
  };

  /// Dynamic mode rejects probe_interval < 2: with interval 1 every epoch
  /// after 0 is a probe, so no all-reduce epoch would ever refresh the
  /// comparison baseline. Static modes ignore the interval. With
  /// `topk_arm`, probe epochs alternate between the base arm (odd probe
  /// ordinals) and the Top-K arm (even ordinals); the switch commits to
  /// the fastest probed arm that beat the all-reduce baseline.
  CommModeSelector(CommMode mode, int probe_interval, bool topk_arm = false);

  /// The transport the upcoming epoch (0-based) should use.
  Transport transport_for(int epoch) const;

  /// Should the upcoming epoch (0-based) use all-gather?
  bool use_allgather(int epoch) const {
    return transport_for(epoch) == Transport::kAllGather;
  }

  /// Will the upcoming epoch (0-based) run as a dynamic-mode probe? Query
  /// before record_epoch(), like transport_for(). Always false for static
  /// modes and after the permanent switch. Telemetry tags probe epochs in
  /// the event stream so offline analysis can replay the DRS decisions.
  bool is_probe(int epoch) const {
    return mode_ == CommMode::kDynamic && !switched_ && is_probe_epoch(epoch);
  }

  /// The selection mode the upcoming epoch (0-based) should apply, given
  /// the strategy's base mode. Static modes and dynamic mode without the
  /// Top-K arm pass `base` through unchanged (the historical behavior:
  /// e.g. DRS applies RS on all-reduce epochs too). With the Top-K arm,
  /// all-reduce baseline epochs go dense (kNone), probe epochs run their
  /// scheduled arm, and post-switch epochs run the committed arm.
  SelectionMode selection_for(int epoch, SelectionMode base) const;

  /// Report the finished epoch's communication seconds (cluster max).
  void record_epoch(int epoch, double comm_seconds);

  /// True once the dynamic selector has committed to all-gather.
  bool switched_to_allgather() const { return switched_; }

  /// The arm the switch committed to (meaningful once switched).
  int committed_arm() const { return committed_arm_; }

  /// Fraction of recorded epochs that ran all-reduce (the paper's "~60%
  /// fewer all-reduce communications" observation is read off this).
  double allreduce_fraction() const;

  CommMode mode() const { return mode_; }

  /// Mutable state for checkpoint/resume. The mode and probe interval come
  /// from the run's strategy flags; only the decision history persists.
  struct State {
    bool switched = false;
    double last_allreduce_time = -1.0;
    int epochs_recorded = 0;
    int allreduce_epochs = 0;
    int committed_arm = kArmBase;
    double base_probe_time = -1.0;
    double topk_probe_time = -1.0;
  };
  State state() const {
    return {switched_,         last_allreduce_time_, epochs_recorded_,
            allreduce_epochs_, committed_arm_,       base_probe_time_,
            topk_probe_time_};
  }
  void restore(const State& s) {
    switched_ = s.switched;
    last_allreduce_time_ = s.last_allreduce_time;
    epochs_recorded_ = s.epochs_recorded;
    allreduce_epochs_ = s.allreduce_epochs;
    committed_arm_ = s.committed_arm;
    base_probe_time_ = s.base_probe_time;
    topk_probe_time_ = s.topk_probe_time;
  }

 private:
  bool is_probe_epoch(int epoch) const;
  int probe_arm(int epoch) const;

  CommMode mode_;
  int probe_interval_;
  bool topk_arm_;
  bool switched_ = false;
  double last_allreduce_time_ = -1.0;
  int epochs_recorded_ = 0;
  int allreduce_epochs_ = 0;
  int committed_arm_ = kArmBase;
  double base_probe_time_ = -1.0;
  double topk_probe_time_ = -1.0;
};

}  // namespace dynkge::core
