#include "core/hard_negatives.hpp"

#include <algorithm>
#include <stdexcept>

namespace dynkge::core {

int select_hard_negatives(const kge::KgeModel& model,
                          const kge::NegativeSampler& sampler,
                          const kge::Triple& positive, int sampled, int used,
                          util::Rng& rng, kge::TripleList& out) {
  if (sampled < 1 || used < 1) {
    throw std::invalid_argument("select_hard_negatives: counts must be >= 1");
  }
  if (used >= sampled) {
    sampler.corrupt_n(positive, sampled, rng, out);
    return 0;
  }

  std::vector<std::pair<double, kge::Triple>> scored;
  scored.reserve(sampled);
  for (int i = 0; i < sampled; ++i) {
    const kge::Triple negative = sampler.corrupt(positive, rng);
    scored.emplace_back(
        model.score(negative.head, negative.relation, negative.tail),
        negative);
  }
  // The hardest negatives are the highest scoring (the model is least sure
  // they are false). partial_sort keeps this O(n log m).
  std::partial_sort(scored.begin(), scored.begin() + used, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  for (int i = 0; i < used; ++i) out.push_back(scored[i].second);
  return sampled;
}

}  // namespace dynkge::core
