#include "core/hard_negatives.hpp"

#include <algorithm>
#include <stdexcept>

namespace dynkge::core {

int select_hard_negatives(const kge::KgeModel& model,
                          const kge::NegativeSampler& sampler,
                          const kge::Triple& positive, int sampled, int used,
                          util::Rng& rng, kge::TripleList& out) {
  if (sampled < 1 || used < 1) {
    throw std::invalid_argument("select_hard_negatives: counts must be >= 1");
  }
  if (used >= sampled) {
    sampler.corrupt_n(positive, sampled, rng, out);
    return 0;
  }

  std::vector<std::pair<double, kge::Triple>> scored;
  scored.reserve(sampled);
  for (int i = 0; i < sampled; ++i) {
    const kge::Triple negative = sampler.corrupt(positive, rng);
    scored.emplace_back(
        model.score(negative.head, negative.relation, negative.tail),
        negative);
  }
  // The hardest negatives are the highest scoring (the model is least sure
  // they are false). partial_sort keeps this O(n log m).
  std::partial_sort(scored.begin(), scored.begin() + used, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  for (int i = 0; i < used; ++i) out.push_back(scored[i].second);
  return sampled;
}

std::size_t select_hard_negatives_block(
    const kge::KgeModel& model, const kge::NegativeSampler& sampler,
    std::span<const kge::Triple> positives, int sampled, int used,
    util::Rng& rng, kge::TripleList& out, std::vector<std::size_t>& offsets,
    HardNegativeScratch& scratch) {
  if (sampled < 1 || used < 1) {
    throw std::invalid_argument(
        "select_hard_negatives_block: counts must be >= 1");
  }
  if (used >= sampled) {
    // Baseline behaviour: every corruption trains, no scoring pass. The
    // draws happen positive by positive, exactly like the scalar loop.
    for (const kge::Triple& positive : positives) {
      sampler.corrupt_n(positive, sampled, rng, out);
      offsets.push_back(out.size());
    }
    return 0;
  }

  // Draw every positive's candidates up front. Scoring consumes no RNG, so
  // grouping all draws first leaves the RNG stream identical to the scalar
  // interleaving (draw, score, draw, score, ...) — candidate j of positive
  // i is still the (i * sampled + j)-th corruption drawn.
  scratch.candidates.clear();
  for (const kge::Triple& positive : positives) {
    for (int i = 0; i < sampled; ++i) {
      scratch.candidates.push_back(sampler.corrupt(positive, rng));
    }
  }

  scratch.scores.resize(scratch.candidates.size());
  model.score_triples_block(scratch.candidates, scratch.scores);

  // Per positive: the same (score, triple) sequence the scalar path builds
  // and the same partial_sort call, so ties break identically.
  for (std::size_t p = 0; p < positives.size(); ++p) {
    scratch.scored.clear();
    const std::size_t base = p * static_cast<std::size_t>(sampled);
    for (int i = 0; i < sampled; ++i) {
      scratch.scored.emplace_back(scratch.scores[base + i],
                                  scratch.candidates[base + i]);
    }
    std::partial_sort(scratch.scored.begin(), scratch.scored.begin() + used,
                      scratch.scored.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    for (int i = 0; i < used; ++i) out.push_back(scratch.scored[i].second);
    offsets.push_back(out.size());
  }
  return scratch.candidates.size();
}

}  // namespace dynkge::core
