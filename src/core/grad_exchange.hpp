// The gradient synchronization engine: one call per optimizer step merges
// every rank's sparse gradients into the identical cluster-wide average
// that each replica then applies.
//
// Two transports, matching the paper's baseline pair:
//
//  * all-reduce  — semantically a dense all-reduce of the whole gradient
//    matrix (zeros included). In-process the data still moves as sparse
//    rows (the numerical result is identical), but the simulated clock and
//    statistics are charged for the full dense matrix, exactly what
//    Horovod's dense path would put on the wire. Quantization does not
//    apply: a dense ring all-reduce sums in transit, which a nonlinear
//    1-bit code cannot survive.
//
//  * all-gather  — each rank serializes its non-zero rows through a
//    RowCodec (raw, 1-bit or 2-bit), everyone gathers and merges. Cost is
//    charged for the actual encoded bytes, so random selection and
//    quantization directly shrink the modeled communication time.
//
// Relation gradients follow the same transport unless relation partition
// is active, in which case they are not exchanged at all (each rank is
// the sole owner of its relations).
//
// Error feedback (extension, Karimireddy et al. 2019): per-row residuals
// of the quantization error are added back into the next step's gradient
// before encoding.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "core/quantize.hpp"
#include "core/strategy_config.hpp"
#include "kge/model.hpp"
#include "obs/trace.hpp"

namespace dynkge::core {

/// Per-epoch decisions the trainer hands the exchange.
struct ExchangePlan {
  Transport transport = Transport::kAllReduce;  ///< this epoch's transport
  bool exchange_relations = true; ///< false when relation partition is on

  /// Convenience used by tests and the trainer.
  bool use_allgather() const { return transport == Transport::kAllGather; }
};

/// What one exchange call did (feeds the per-epoch records).
struct ExchangeResult {
  std::size_t entity_rows_sent = 0;    ///< rows this rank contributed
  std::size_t entity_rows_merged = 0;  ///< unique rows after the merge
  std::size_t bytes_on_wire = 0;       ///< this rank's modeled traffic
  double comm_seconds = 0.0;           ///< modeled time added by this call
};

class GradExchange {
 public:
  /// `trace` (optional) records quantize/collective/dequantize spans on
  /// track `trace_tid` (the trainer passes its rank).
  GradExchange(comm::Communicator& comm, const StrategyConfig& strategy,
               std::int32_t num_entities, std::int32_t entity_width,
               std::int32_t num_relations, std::int32_t relation_width,
               obs::TraceWriter* trace = nullptr, int trace_tid = 0);

  /// Merge `local` across all ranks into `merged` (cluster average).
  /// `local` may be mutated (error feedback folds residuals into it).
  ExchangeResult exchange(kge::ModelGrads& local, kge::ModelGrads& merged,
                          const ExchangePlan& plan, util::Rng& rng);

  /// Checkpoint access to the error-feedback residuals (quantization error
  /// parked for the next step — training state, like optimizer moments).
  const std::unordered_map<std::int32_t, std::vector<float>>&
  entity_residuals() const {
    return entity_residual_;
  }
  const std::unordered_map<std::int32_t, std::vector<float>>&
  relation_residuals() const {
    return relation_residual_;
  }
  void restore_residuals(
      std::unordered_map<std::int32_t, std::vector<float>> entity,
      std::unordered_map<std::int32_t, std::vector<float>> relation) {
    entity_residual_ = std::move(entity);
    relation_residual_ = std::move(relation);
  }

 private:
  /// One matrix worth of exchange. Returns this rank's modeled traffic.
  std::size_t exchange_matrix(kge::SparseGrad& local, kge::SparseGrad& merged,
                              const RowCodec& codec, Transport transport,
                              std::size_t dense_bytes,
                              std::unordered_map<std::int32_t,
                                                 std::vector<float>>* residual,
                              util::Rng& rng);

  void apply_error_feedback(
      kge::SparseGrad& local,
      std::unordered_map<std::int32_t, std::vector<float>>& residual,
      const RowCodec& codec, util::Rng& rng);

  comm::Communicator& comm_;
  StrategyConfig strategy_;
  obs::TraceWriter* trace_;
  int trace_tid_;
  RowCodec entity_codec_;
  RowCodec relation_codec_;
  RowCodec raw_entity_codec_;    ///< full-precision codec for all-reduce epochs
  RowCodec raw_relation_codec_;
  std::size_t entity_dense_bytes_;
  std::size_t relation_dense_bytes_;
  std::unordered_map<std::int32_t, std::vector<float>> entity_residual_;
  std::unordered_map<std::int32_t, std::vector<float>> relation_residual_;

  // Reused hot-path buffers: error feedback runs per gradient row per
  // step, and both the encoded wire buffers and the dequantized row are
  // steady-state sized, so after warm-up nothing here allocates.
  std::vector<float> quantized_scratch_;
  std::vector<std::byte> codec_scratch_;
  std::vector<std::byte> encode_scratch_;
  std::vector<std::byte> gather_scratch_;
  std::vector<std::size_t> count_scratch_;
};

}  // namespace dynkge::core
