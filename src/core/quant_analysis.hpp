// Quantitative analysis of the gradient codecs: compression ratio,
// reconstruction error (relative L2), bias, and cosine alignment between
// a row and its decoded form. Used by tests and the ablation benches to
// explain *why* the max-scale 1-bit quantizer needs the relation-partition
// assist (it is sign-faithful but magnitude-inflating) and why error
// feedback requires a contractive scale.
#pragma once

#include <cstddef>
#include <span>

#include "core/quantize.hpp"

namespace dynkge::core {

struct QuantizationQuality {
  double compression_ratio = 1.0;  ///< raw bytes / encoded bytes
  double relative_l2_error = 0.0;  ///< ||v - q(v)|| / ||v||
  double cosine_alignment = 1.0;   ///< <v, q(v)> / (||v|| ||q(v)||)
  double mean_bias = 0.0;          ///< mean(q(v) - v)
  bool contraction = false;        ///< ||v - q(v)|| < ||v|| (error feedback
                                   ///< converges only when this holds)
};

/// Measure the codec on one row. For the stochastic 2-bit codec the result
/// is averaged over `trials` encodings.
QuantizationQuality analyze_quantization(const RowCodec& codec,
                                         std::span<const float> row,
                                         util::Rng& rng, int trials = 1);

}  // namespace dynkge::core
