#include "core/comm_selector.hpp"

#include <stdexcept>

namespace dynkge::core {

CommModeSelector::CommModeSelector(CommMode mode, int probe_interval)
    : mode_(mode), probe_interval_(probe_interval) {
  // probe_interval == 1 would make every epoch after 0 a probe: no
  // all-reduce epoch ever runs again, so last_allreduce_time_ stays the
  // epoch-0 measurement and every probe compares against a stale baseline.
  // The smallest interval with a fresh baseline between probes is 2.
  if (mode == CommMode::kDynamic && probe_interval < 2) {
    throw std::invalid_argument(
        "CommModeSelector: dynamic mode requires probe_interval >= 2 "
        "(interval 1 leaves no all-reduce epochs to refresh the baseline)");
  }
}

bool CommModeSelector::is_probe_epoch(int epoch) const {
  return epoch > 0 && epoch % probe_interval_ == 0;
}

Transport CommModeSelector::transport_for(int epoch) const {
  switch (mode_) {
    case CommMode::kAllReduce:
      return Transport::kAllReduce;
    case CommMode::kAllGather:
      return Transport::kAllGather;
    case CommMode::kParameterServer:
      return Transport::kParameterServer;
    case CommMode::kDynamic:
      // The first epoch is all-reduce (paper); after the switch, always
      // all-gather; otherwise all-gather only on probe epochs.
      return (switched_ || is_probe_epoch(epoch)) ? Transport::kAllGather
                                                  : Transport::kAllReduce;
  }
  return Transport::kAllReduce;
}

void CommModeSelector::record_epoch(int epoch, double comm_seconds) {
  ++epochs_recorded_;
  if (transport_for(epoch) == Transport::kAllReduce) ++allreduce_epochs_;
  if (mode_ != CommMode::kDynamic || switched_) return;

  if (!use_allgather(epoch)) {
    last_allreduce_time_ = comm_seconds;
    return;
  }
  // This was a probe epoch: compare against the last all-reduce epoch.
  if (last_allreduce_time_ >= 0.0 && comm_seconds < last_allreduce_time_) {
    switched_ = true;
  }
}

double CommModeSelector::allreduce_fraction() const {
  // Empty history -> 0.0: no epochs means no all-reduce communications.
  // TrainReport::allreduce_fraction defaults to the same convention.
  if (epochs_recorded_ == 0) return 0.0;
  return static_cast<double>(allreduce_epochs_) /
         static_cast<double>(epochs_recorded_);
}

}  // namespace dynkge::core
