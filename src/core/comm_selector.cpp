#include "core/comm_selector.hpp"

#include <stdexcept>

namespace dynkge::core {

CommModeSelector::CommModeSelector(CommMode mode, int probe_interval,
                                   bool topk_arm)
    : mode_(mode),
      probe_interval_(probe_interval),
      topk_arm_(topk_arm && mode == CommMode::kDynamic) {
  // probe_interval == 1 would make every epoch after 0 a probe: no
  // all-reduce epoch ever runs again, so last_allreduce_time_ stays the
  // epoch-0 measurement and every probe compares against a stale baseline.
  // The smallest interval with a fresh baseline between probes is 2.
  if (mode == CommMode::kDynamic && probe_interval < 2) {
    throw std::invalid_argument(
        "CommModeSelector: dynamic mode requires probe_interval >= 2 "
        "(interval 1 leaves no all-reduce epochs to refresh the baseline)");
  }
}

bool CommModeSelector::is_probe_epoch(int epoch) const {
  return epoch > 0 && epoch % probe_interval_ == 0;
}

int CommModeSelector::probe_arm(int epoch) const {
  if (!topk_arm_) return kArmBase;
  // Probe ordinal 1, 3, 5, ... runs the base arm; 2, 4, 6, ... runs the
  // Top-K arm, so both arms keep getting measured until a probe wins.
  const int ordinal = epoch / probe_interval_;
  return ordinal % 2 == 1 ? kArmBase : kArmTopK;
}

SelectionMode CommModeSelector::selection_for(int epoch,
                                              SelectionMode base) const {
  if (mode_ != CommMode::kDynamic || !topk_arm_) return base;
  if (switched_) {
    return committed_arm_ == kArmTopK ? SelectionMode::kTopK : base;
  }
  if (is_probe_epoch(epoch)) {
    return probe_arm(epoch) == kArmTopK ? SelectionMode::kTopK : base;
  }
  // All-reduce baseline epoch: dense, so the baseline the probes compete
  // against is the genuine unsparsified all-reduce cost.
  return SelectionMode::kNone;
}

Transport CommModeSelector::transport_for(int epoch) const {
  switch (mode_) {
    case CommMode::kAllReduce:
      return Transport::kAllReduce;
    case CommMode::kAllGather:
      return Transport::kAllGather;
    case CommMode::kParameterServer:
      return Transport::kParameterServer;
    case CommMode::kDynamic:
      // The first epoch is all-reduce (paper); after the switch, always
      // all-gather; otherwise all-gather only on probe epochs.
      return (switched_ || is_probe_epoch(epoch)) ? Transport::kAllGather
                                                  : Transport::kAllReduce;
  }
  return Transport::kAllReduce;
}

void CommModeSelector::record_epoch(int epoch, double comm_seconds) {
  ++epochs_recorded_;
  if (transport_for(epoch) == Transport::kAllReduce) ++allreduce_epochs_;
  if (mode_ != CommMode::kDynamic || switched_) return;

  if (!use_allgather(epoch)) {
    last_allreduce_time_ = comm_seconds;
    return;
  }
  // This was a probe epoch: remember the arm's cost, then compare against
  // the last all-reduce epoch (the audit contract `dynkge analyze`
  // checks: a switch happens iff the triggering probe beat its baseline).
  const int arm = probe_arm(epoch);
  if (arm == kArmTopK) {
    topk_probe_time_ = comm_seconds;
  } else {
    base_probe_time_ = comm_seconds;
  }
  if (last_allreduce_time_ >= 0.0 && comm_seconds < last_allreduce_time_) {
    switched_ = true;
    // Commit to the fastest probed arm that beat the baseline. Ties (and
    // the no-Top-K-arm configuration) resolve to the base arm.
    committed_arm_ = kArmBase;
    if (topk_arm_ && topk_probe_time_ >= 0.0 &&
        topk_probe_time_ < last_allreduce_time_ &&
        (base_probe_time_ < 0.0 || topk_probe_time_ < base_probe_time_)) {
      committed_arm_ = kArmTopK;
    }
  }
}

double CommModeSelector::allreduce_fraction() const {
  // Empty history -> 0.0: no epochs means no all-reduce communications.
  // TrainReport::allreduce_fraction defaults to the same convention.
  if (epochs_recorded_ == 0) return 0.0;
  return static_cast<double>(allreduce_epochs_) /
         static_cast<double>(epochs_recorded_);
}

}  // namespace dynkge::core
