#include "core/strategy_config.hpp"

namespace dynkge::core {

const char* to_string(CommMode mode) {
  switch (mode) {
    case CommMode::kAllReduce:
      return "allreduce";
    case CommMode::kAllGather:
      return "allgather";
    case CommMode::kDynamic:
      return "dynamic";
    case CommMode::kParameterServer:
      return "param-server";
  }
  return "?";
}

const char* to_string(Transport transport) {
  switch (transport) {
    case Transport::kAllReduce:
      return "allreduce";
    case Transport::kAllGather:
      return "allgather";
    case Transport::kParameterServer:
      return "param-server";
  }
  return "?";
}

const char* to_string(SelectionMode mode) {
  switch (mode) {
    case SelectionMode::kNone:
      return "none";
    case SelectionMode::kAverageThreshold:
      return "average";
    case SelectionMode::kAverageTenth:
      return "averagex0.1";
    case SelectionMode::kBernoulli:
      return "random-selection";
    case SelectionMode::kTopK:
      return "topk";
  }
  return "?";
}

const char* to_string(QuantMode mode) {
  switch (mode) {
    case QuantMode::kNone:
      return "none";
    case QuantMode::kOneBit:
      return "1-bit";
    case QuantMode::kTwoBit:
      return "2-bit";
  }
  return "?";
}

const char* to_string(OneBitScale scale) {
  switch (scale) {
    case OneBitScale::kMax:
      return "max";
    case OneBitScale::kMean:
      return "avg";
    case OneBitScale::kNegMax:
      return "negmax";
    case OneBitScale::kPosMax:
      return "posmax";
    case OneBitScale::kNegMean:
      return "negavg";
    case OneBitScale::kPosMean:
      return "posavg";
  }
  return "?";
}

std::string StrategyConfig::label() const {
  std::string out;
  if (selection == SelectionMode::kBernoulli) {
    out = comm == CommMode::kDynamic ? "DRS" : "RS";
  } else if (selection == SelectionMode::kTopK) {
    out = comm == CommMode::kDynamic ? "DTopK" : "TopK";
  } else {
    out = to_string(comm);
  }
  if (dynamic_topk_arm) out += "+TopK-arm";
  if (quant == QuantMode::kOneBit) out += "+1-bit";
  if (quant == QuantMode::kTwoBit) out += "+2-bit";
  if (relation_partition) out += "+RP";
  if (sample_selection_active()) out += "+SS";
  return out;
}

StrategyConfig StrategyConfig::baseline_allreduce(int negatives) {
  StrategyConfig config;
  config.comm = CommMode::kAllReduce;
  config.negatives_sampled = negatives;
  config.negatives_used = negatives;
  return config;
}

StrategyConfig StrategyConfig::baseline_allgather(int negatives) {
  StrategyConfig config = baseline_allreduce(negatives);
  config.comm = CommMode::kAllGather;
  return config;
}

StrategyConfig StrategyConfig::baseline_parameter_server(int negatives) {
  StrategyConfig config = baseline_allreduce(negatives);
  config.comm = CommMode::kParameterServer;
  return config;
}

StrategyConfig StrategyConfig::rs(int negatives) {
  StrategyConfig config = baseline_allreduce(negatives);
  config.selection = SelectionMode::kBernoulli;
  // Selected (sparse) rows travel by all-gather; see grad_exchange.hpp.
  config.comm = CommMode::kAllGather;
  return config;
}

StrategyConfig StrategyConfig::drs(int negatives) {
  StrategyConfig config = rs(negatives);
  config.comm = CommMode::kDynamic;
  return config;
}

StrategyConfig StrategyConfig::rs_1bit(int negatives) {
  StrategyConfig config = rs(negatives);
  config.quant = QuantMode::kOneBit;
  return config;
}

StrategyConfig StrategyConfig::drs_1bit(int negatives) {
  StrategyConfig config = drs(negatives);
  config.quant = QuantMode::kOneBit;
  return config;
}

StrategyConfig StrategyConfig::rs_1bit_rp_ss(int sampled, int used) {
  StrategyConfig config = rs_1bit(sampled);
  config.relation_partition = true;
  config.negatives_sampled = sampled;
  config.negatives_used = used;
  return config;
}

StrategyConfig StrategyConfig::drs_1bit_rp_ss(int sampled, int used) {
  StrategyConfig config = drs_1bit(sampled);
  config.relation_partition = true;
  config.negatives_sampled = sampled;
  config.negatives_used = used;
  return config;
}

StrategyConfig StrategyConfig::topk(int k, int negatives) {
  StrategyConfig config = baseline_allreduce(negatives);
  config.selection = SelectionMode::kTopK;
  // Top-K is only meaningful with error feedback: without residuals the
  // dropped (num_rows - k) rows per step would simply be lost.
  config.selection_residual = true;
  config.topk_k = k;
  // Selected (sparse) rows travel by all-gather, like RS.
  config.comm = CommMode::kAllGather;
  return config;
}

StrategyConfig StrategyConfig::drs_topk(int k, int negatives) {
  StrategyConfig config = drs(negatives);
  // Residuals are shared between the RS and Top-K arms (one map per
  // selector), so both arms run with feedback for cross-arm consistency.
  config.selection_residual = true;
  config.topk_k = k;
  config.dynamic_topk_arm = true;
  return config;
}

}  // namespace dynkge::core
