#include "core/grad_select.hpp"

#include <vector>

#include "util/span_math.hpp"

namespace dynkge::core {

SelectionStats select_gradient_rows(kge::SparseGrad& grad, SelectionMode mode,
                                    util::Rng& rng) {
  SelectionStats stats;
  stats.rows_before = grad.num_rows();
  stats.rows_after = stats.rows_before;
  if (mode == SelectionMode::kNone || grad.empty()) return stats;

  // Snapshot ids first: erasing while iterating sorted_ids() would
  // invalidate the cached id list.
  const std::vector<std::int32_t> ids = grad.sorted_ids();
  std::vector<double> norms(ids.size());
  double mean_norm = 0.0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    norms[i] = util::nrm2(grad.row(ids[i]));
    mean_norm += norms[i];
  }
  mean_norm /= static_cast<double>(ids.size());
  if (mean_norm <= 0.0) return stats;  // all-zero gradient: nothing to rank

  std::size_t kept = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    bool keep = true;
    switch (mode) {
      case SelectionMode::kAverageThreshold:
        keep = norms[i] >= mean_norm;
        break;
      case SelectionMode::kAverageTenth:
        keep = norms[i] >= 0.1 * mean_norm;
        break;
      case SelectionMode::kBernoulli:
        keep = rng.next_bernoulli(norms[i] / mean_norm);
        break;
      case SelectionMode::kNone:
        break;
    }
    if (keep) {
      ++kept;
    } else {
      grad.erase(ids[i]);
    }
  }
  stats.rows_after = kept;
  return stats;
}

SelectionStats GradSelector::apply(kge::SparseGrad& grad, util::Rng& rng) {
  if (!accumulate_residuals_) {
    return select_gradient_rows(grad, mode_, rng);
  }

  // Fold parked residuals into the rows present this step. Rows whose
  // residual is parked but which are absent from this step's gradient
  // stay parked (they flow in whenever the row is next touched).
  for (const std::int32_t id : grad.sorted_ids()) {
    const auto it = residual_.find(id);
    if (it == residual_.end()) continue;
    auto row = grad.row(id);
    for (std::size_t i = 0; i < row.size(); ++i) row[i] += it->second[i];
    residual_.erase(it);
  }

  // Select on the residual-augmented norms, parking what gets dropped.
  SelectionStats stats;
  stats.rows_before = grad.num_rows();
  stats.rows_after = stats.rows_before;
  if (mode_ == SelectionMode::kNone || grad.empty()) return stats;

  const std::vector<std::int32_t> ids = grad.sorted_ids();
  std::vector<double> norms(ids.size());
  double mean_norm = 0.0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    norms[i] = util::nrm2(grad.row(ids[i]));
    mean_norm += norms[i];
  }
  mean_norm /= static_cast<double>(ids.size());
  if (mean_norm <= 0.0) return stats;

  std::size_t kept = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    bool keep = true;
    switch (mode_) {
      case SelectionMode::kAverageThreshold:
        keep = norms[i] >= mean_norm;
        break;
      case SelectionMode::kAverageTenth:
        keep = norms[i] >= 0.1 * mean_norm;
        break;
      case SelectionMode::kBernoulli:
        keep = rng.next_bernoulli(norms[i] / mean_norm);
        break;
      case SelectionMode::kNone:
        break;
    }
    if (keep) {
      ++kept;
      continue;
    }
    const auto row = grad.row(ids[i]);
    residual_[ids[i]].assign(row.begin(), row.end());
    grad.erase(ids[i]);
  }
  stats.rows_after = kept;
  return stats;
}

}  // namespace dynkge::core
