#include "core/grad_select.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/span_math.hpp"

namespace dynkge::core {
namespace {

// Decide keep/drop for every row. Returns the kept count and fills `keep`
// (1 = keep). `ids` must be ascending (SparseGrad::sorted_ids guarantees
// it), which makes the Top-K tie-break — equal norms go to the smaller
// entity id — independent of hash-map iteration order and therefore
// byte-stable across ranks and host-pool sizes.
std::size_t mark_kept_rows(const std::vector<std::int32_t>& ids,
                           const std::vector<double>& norms,
                           SelectionMode mode, std::size_t topk_k,
                           util::Rng& rng, std::vector<char>& keep) {
  keep.assign(ids.size(), 1);
  if (mode == SelectionMode::kNone) return ids.size();

  if (mode == SelectionMode::kTopK) {
    if (topk_k >= ids.size()) return ids.size();
    std::vector<std::size_t> order(ids.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (norms[a] != norms[b]) return norms[a] > norms[b];
      return ids[a] < ids[b];
    });
    std::fill(keep.begin(), keep.end(), 0);
    for (std::size_t i = 0; i < topk_k; ++i) keep[order[i]] = 1;
    return topk_k;
  }

  double mean_norm = 0.0;
  for (const double norm : norms) mean_norm += norm;
  mean_norm /= static_cast<double>(ids.size());
  if (mean_norm <= 0.0) return ids.size();  // all-zero gradient: keep all

  std::size_t kept = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    bool keep_row = true;
    switch (mode) {
      case SelectionMode::kAverageThreshold:
        keep_row = norms[i] >= mean_norm;
        break;
      case SelectionMode::kAverageTenth:
        keep_row = norms[i] >= 0.1 * mean_norm;
        break;
      case SelectionMode::kBernoulli:
        keep_row = rng.next_bernoulli(norms[i] / mean_norm);
        break;
      case SelectionMode::kNone:
      case SelectionMode::kTopK:
        break;  // handled above
    }
    keep[i] = keep_row ? 1 : 0;
    if (keep_row) ++kept;
  }
  return kept;
}

std::vector<double> row_norms(const kge::SparseGrad& grad,
                              const std::vector<std::int32_t>& ids) {
  std::vector<double> norms(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    norms[i] = util::nrm2(grad.row(ids[i]));
  }
  return norms;
}

}  // namespace

SelectionStats select_gradient_rows(kge::SparseGrad& grad, SelectionMode mode,
                                    util::Rng& rng, std::size_t topk_k) {
  SelectionStats stats;
  stats.rows_before = grad.num_rows();
  stats.rows_after = stats.rows_before;
  if (mode == SelectionMode::kNone || grad.empty()) return stats;

  // Snapshot ids first: erasing while iterating sorted_ids() would
  // invalidate the cached id list.
  const std::vector<std::int32_t> ids = grad.sorted_ids();
  const std::vector<double> norms = row_norms(grad, ids);

  std::vector<char> keep;
  stats.rows_after = mark_kept_rows(ids, norms, mode, topk_k, rng, keep);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!keep[i]) grad.erase(ids[i]);
  }
  return stats;
}

SelectionStats GradSelector::apply(kge::SparseGrad& grad, util::Rng& rng,
                                   SelectionMode mode) {
  if (!accumulate_residuals_) {
    return select_gradient_rows(grad, mode, rng, topk_k_);
  }

  // Fold parked residuals into the rows present this step. Rows whose
  // residual is parked but which are absent from this step's gradient
  // stay parked (they flow in whenever the row is next touched).
  for (const std::int32_t id : grad.sorted_ids()) {
    const auto it = residual_.find(id);
    if (it == residual_.end()) continue;
    auto row = grad.row(id);
    for (std::size_t i = 0; i < row.size(); ++i) row[i] += it->second[i];
    residual_.erase(it);
  }

  // Select on the residual-augmented norms, parking what gets dropped.
  SelectionStats stats;
  stats.rows_before = grad.num_rows();
  stats.rows_after = stats.rows_before;
  if (mode == SelectionMode::kNone || grad.empty()) return stats;

  const std::vector<std::int32_t> ids = grad.sorted_ids();
  const std::vector<double> norms = row_norms(grad, ids);

  std::vector<char> keep;
  stats.rows_after = mark_kept_rows(ids, norms, mode, topk_k_, rng, keep);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (keep[i]) continue;
    const auto row = grad.row(ids[i]);
    residual_[ids[i]].assign(row.begin(), row.end());
    grad.erase(ids[i]);
  }
  return stats;
}

SelectionStats GradSelector::apply(kge::SparseGrad& grad, util::Rng& rng) {
  return apply(grad, rng, mode_);
}

}  // namespace dynkge::core
