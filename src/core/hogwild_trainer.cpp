#include "core/hogwild_trainer.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "kge/loss.hpp"
#include "kge/model_factory.hpp"
#include "kge/negative_sampler.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_clock.hpp"

namespace dynkge::core {

using kge::Triple;
using util::Rng;

HogwildTrainer::HogwildTrainer(const kge::Dataset& dataset,
                               HogwildConfig config)
    : dataset_(dataset), config_(std::move(config)) {
  if (config_.num_threads < 1) {
    throw std::invalid_argument("HogwildConfig: num_threads must be >= 1");
  }
  if (config_.negatives < 1) {
    throw std::invalid_argument("HogwildConfig: negatives must be >= 1");
  }
  if (config_.max_epochs < 1) {
    throw std::invalid_argument("HogwildConfig: max_epochs must be >= 1");
  }
}

HogwildReport HogwildTrainer::train() {
  const util::Stopwatch wall;

  Rng init_rng(util::derive_seed(config_.seed, 0x1417u));
  auto model =
      kge::make_model(config_.model_name, dataset_.num_entities(),
                      dataset_.num_relations(), config_.embedding_rank);
  model->set_init_scale(config_.init_scale);
  model->init(init_rng);

  // Scheduler follows the same capped linear-scaling rule as the
  // distributed trainer: more threads, larger effective throughput.
  PlateauScheduler scheduler(config_.lr, config_.num_threads);
  const kge::NegativeSampler sampler(dataset_);
  const kge::Evaluator evaluator(dataset_);

  kge::TripleList triples(dataset_.train().begin(), dataset_.train().end());
  Rng shuffle_rng(util::derive_seed(config_.seed, 0x5u));

  HogwildReport report;
  report.model_name = config_.model_name;
  report.num_threads = config_.num_threads;

  const auto shuffle = [&] {
    for (std::size_t i = triples.size(); i > 1; --i) {
      std::swap(triples[i - 1], triples[shuffle_rng.next_below(i)]);
    }
  };

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    shuffle();
    const double lr = scheduler.lr();
    const auto learning_rate = static_cast<float>(lr);
    const auto decay = static_cast<float>(config_.weight_decay);

    std::atomic<double> loss_sum{0.0};
    std::atomic<double> cpu_sum{0.0};
    std::vector<std::thread> workers;
    workers.reserve(config_.num_threads);
    const std::size_t chunk =
        (triples.size() + config_.num_threads - 1) / config_.num_threads;

    for (int t = 0; t < config_.num_threads; ++t) {
      workers.emplace_back([&, t] {
        double cpu = 0.0;
        double local_loss = 0.0;
        {
          util::ThreadCpuTimer timer(cpu);
          Rng rng(util::derive_seed(config_.seed, t, epoch, 0x40Du));
          const std::size_t begin = std::min(t * chunk, triples.size());
          const std::size_t end = std::min(begin + chunk, triples.size());
          kge::ModelGrads grads = model->make_grads();

          const auto sgd_step = [&](const Triple& triple, int label) {
            const auto lg = kge::logistic_loss(
                model->score(triple.head, triple.relation, triple.tail),
                label);
            local_loss += lg.loss;
            grads.clear();
            model->accumulate_gradients(triple.head, triple.relation,
                                        triple.tail,
                                        static_cast<float>(lg.dscore), grads);
            // Lock-free apply: racy against sibling threads, benign for
            // sparse embedding gradients (Hogwild).
            for (const auto* grad :
                 {&grads.entity, &grads.relation}) {
              auto& matrix = grad == &grads.entity ? model->entities()
                                                   : model->relations();
              for (const std::int32_t id : grad->sorted_ids()) {
                auto row = matrix.row(id);
                const auto g = grad->row(id);
                for (std::size_t i = 0; i < row.size(); ++i) {
                  row[i] -= learning_rate * (g[i] + decay * row[i]);
                }
              }
            }
          };

          for (std::size_t i = begin; i < end; ++i) {
            sgd_step(triples[i], +1);
            for (int n = 0; n < config_.negatives; ++n) {
              sgd_step(sampler.corrupt(triples[i], rng), -1);
            }
          }
        }
        // Relaxed accumulate (atomic<double> has no fetch_add pre-C++20
        // on all libstdc++ versions; use CAS loop).
        for (double expected = loss_sum.load();
             !loss_sum.compare_exchange_weak(expected,
                                             expected + local_loss);) {
        }
        for (double expected = cpu_sum.load();
             !cpu_sum.compare_exchange_weak(expected, expected + cpu);) {
        }
      });
    }
    for (auto& worker : workers) worker.join();

    const double val_accuracy = evaluator.validation_accuracy(
        *model, util::derive_seed(config_.seed, epoch, 0xACCu),
        config_.valid_max_triples);
    scheduler.observe(val_accuracy);

    HogwildEpochRecord record;
    record.epoch = epoch;
    record.mean_loss =
        loss_sum.load() /
        std::max<std::size_t>(1, triples.size() * (1 + config_.negatives));
    record.val_accuracy = val_accuracy;
    record.lr = lr;
    record.cpu_seconds = cpu_sum.load();
    report.epoch_log.push_back(record);
    report.epochs = epoch + 1;
    report.final_val_accuracy = val_accuracy;
    report.total_cpu_seconds += record.cpu_seconds;

    if (scheduler.should_stop()) {
      report.converged = true;
      break;
    }
  }

  if (config_.compute_final_metrics) {
    report.tca = evaluator.triple_classification_accuracy(
        *model, util::derive_seed(config_.seed, 0x7CAu));
    kge::EvalOptions options;
    options.max_triples = config_.eval_max_triples;
    report.ranking =
        evaluator.link_prediction(*model, dataset_.test(), options);
  }
  report.model = std::move(model);
  report.wall_seconds = wall.seconds();
  return report;
}

}  // namespace dynkge::core
