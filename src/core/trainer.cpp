#include "core/trainer.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>

#include "comm/recovery.hpp"
#include "core/comm_selector.hpp"
#include "core/grad_exchange.hpp"
#include "core/grad_select.hpp"
#include "core/hard_negatives.hpp"
#include "core/relation_partition.hpp"
#include "kge/adam.hpp"
#include "kge/checkpoint_dir.hpp"
#include "kge/loss.hpp"
#include "kge/model_factory.hpp"
#include "kge/serialize.hpp"
#include "util/json_writer.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_clock.hpp"

namespace dynkge::core {
namespace {

using comm::Communicator;
using comm::ScalarOp;
using kge::Triple;
using kge::TripleList;
using util::Rng;
using util::ThreadCpuTimer;

/// Loss-gradient coefficients below this are treated as exactly zero, the
/// same saturation float32 frameworks exhibit (sigmoid(y*phi) rounds to 1
/// once y*phi > ~16, zeroing the example's gradient). This is what makes
/// the number of non-zero gradient rows *decrease* as training converges
/// (paper figure 2) and the all-gather volume shrink late in training.
constexpr double kCoeffUnderflow = 1e-7;

/// Deterministic Fisher-Yates shuffle.
void shuffle_triples(TripleList& triples, Rng& rng) {
  for (std::size_t i = triples.size(); i > 1; --i) {
    std::swap(triples[i - 1], triples[rng.next_below(i)]);
  }
}

// Residual blobs (the RESD section payload) are encoded by
// kge::encode_residual_maps: this trainer packs 4 maps per rank (entity
// selector, relation selector, exchange entity, exchange relation).
using kge::decode_residual_maps;
using kge::encode_residual_maps;
using kge::ResidualMap;

/// Copy every parameter of `source` into a freshly constructed model of
/// the same architecture (the checkpoint writer must not mutate the live
/// replica when overlaying gathered relation rows).
std::unique_ptr<kge::KgeModel> clone_model(const kge::KgeModel& source,
                                           const std::string& model_name,
                                           std::int32_t embedding_rank) {
  auto copy = kge::make_model(model_name, source.entities().rows(),
                              source.relations().rows(), embedding_rank);
  std::copy(source.entities().flat().begin(), source.entities().flat().end(),
            copy->entities().flat().begin());
  std::copy(source.relations().flat().begin(),
            source.relations().flat().end(),
            copy->relations().flat().begin());
  return copy;
}

void check_resume_field(const std::string& field, const std::string& expected,
                        const std::string& found) {
  if (expected != found) {
    throw std::invalid_argument(
        "TrainConfig::checkpoint.resume: snapshot was written by a "
        "different run (" +
        field + ": this run has '" + expected + "', snapshot has '" + found +
        "')");
  }
}

}  // namespace

DistributedTrainer::DistributedTrainer(const kge::Dataset& dataset,
                                       TrainConfig config)
    : dataset_(dataset), config_(std::move(config)) {
  if (config_.num_nodes < 1) {
    throw std::invalid_argument("TrainConfig: num_nodes must be >= 1");
  }
  if (config_.batch_size < 1) {
    throw std::invalid_argument("TrainConfig: batch_size must be >= 1");
  }
  if (config_.max_epochs < 1) {
    throw std::invalid_argument("TrainConfig: max_epochs must be >= 1");
  }
  if (config_.host_threads < 0) {
    throw std::invalid_argument(
        "TrainConfig: host_threads must be >= 0 (0 = hardware concurrency)");
  }
  if (config_.strategy.comm == CommMode::kDynamic &&
      config_.strategy.dynamic_probe_interval < 2) {
    // Surface the CommModeSelector contract at config time instead of from
    // inside a rank program (see comm_selector.cpp for the rationale).
    throw std::invalid_argument(
        "TrainConfig: dynamic comm mode requires dynamic_probe_interval >= 2");
  }
  const auto& s = config_.strategy;
  if (s.negatives_sampled < 1 || s.negatives_used < 1 ||
      s.negatives_used > s.negatives_sampled) {
    throw std::invalid_argument(
        "TrainConfig: require 1 <= negatives_used <= negatives_sampled");
  }
  if (config_.fault_retry_limit < 1) {
    throw std::invalid_argument(
        "TrainConfig: fault retry limit must be >= 1 (--fault-retry-limit)");
  }
  if (config_.fault_backoff_base <= 0.0) {
    throw std::invalid_argument(
        "TrainConfig: fault backoff base must be > 0 (--fault-backoff-base)");
  }
  if (config_.elastic.max_rank_failures < 0) {
    throw std::invalid_argument(
        "TrainConfig: max rank failures must be >= 0 (--max-rank-failures)");
  }
  if (config_.collective_deadline < 0.0) {
    throw std::invalid_argument(
        "TrainConfig: collective deadline must be >= 0 "
        "(--collective-deadline)");
  }
  if (config_.checkpoint.keep < 1) {
    throw std::invalid_argument(
        "TrainConfig: checkpoint keep must be >= 1 (--checkpoint-keep)");
  }
  const std::string& on_error = config_.checkpoint.on_error;
  if (on_error != "fail" && on_error != "skip" && on_error != "retry") {
    throw std::invalid_argument(
        "TrainConfig: checkpoint error policy must be fail, skip, or retry "
        "(--checkpoint-on-error), got '" + on_error + "'");
  }
  if (s.selection == SelectionMode::kTopK || s.dynamic_topk_arm) {
    if (s.topk_k < 1) {
      throw std::invalid_argument(
          "TrainConfig: Top-K selection requires topk_k >= 1 (--topk-k)");
    }
    if (s.topk_k > dataset_.num_entities()) {
      throw std::invalid_argument(
          "TrainConfig: topk_k " + std::to_string(s.topk_k) +
          " exceeds the entity count " +
          std::to_string(dataset_.num_entities()) + " (--topk-k)");
    }
  }
  if (s.dynamic_topk_arm && s.comm != CommMode::kDynamic) {
    throw std::invalid_argument(
        "TrainConfig: the Top-K probe arm requires the dynamic comm mode "
        "(--drs-topk-arm needs --strategy drs*)");
  }
}

TrainReport DistributedTrainer::train() {
  const util::Stopwatch wall;
  const obs::TelemetrySinks& tel = config_.telemetry;
  comm::ElasticPolicy policy;
  policy.enabled = config_.elastic.enabled;
  policy.max_rank_failures = config_.elastic.max_rank_failures;

  // ---- checkpoint / resume setup (host side, once per train()) ---------
  const TrainConfig::CheckpointConfig& ckpt = config_.checkpoint;
  std::unique_ptr<kge::TrainingSnapshot> resume_state;
  if (!ckpt.dir.empty()) {
    if (ckpt.every < 1) {
      throw std::invalid_argument(
          "TrainConfig::checkpoint: every must be >= 1");
    }
    ::mkdir(ckpt.dir.c_str(), 0755);  // EEXIST is fine
    if (ckpt.resume) {
      // Scan the directory newest-first, falling back past corrupt
      // candidates to the next-older valid snapshot (checkpoint_dir.hpp).
      kge::ResumeScan scan = kge::load_newest_valid_snapshot(ckpt.dir);
      for (const kge::RejectedSnapshot& r : scan.rejected) {
        DYNKGE_LOG_INFO("resume: skipping corrupt snapshot " << r.path
                                                             << ": "
                                                             << r.error);
      }
      if (scan.found) {
        resume_state = std::make_unique<kge::TrainingSnapshot>(
            std::move(scan.snapshot));
        validate_resume_snapshot(*resume_state, config_.num_nodes);
        DYNKGE_LOG_INFO("resuming from "
                        << scan.path << " at epoch "
                        << std::min(resume_state->trainer.next_epoch,
                                    config_.max_epochs));
      }
    }
  }

  // The rank programs execute concurrently on a host thread pool — shared
  // across train() calls when the config provides one, otherwise scoped to
  // this call and sized by host_threads; one pool serves every attempt of
  // the supervision loop below. Wall time scales with min(num_nodes,
  // cores); the simulated clock is unaffected.
  std::shared_ptr<util::ThreadPool> pool = config_.host_pool;
  if (pool == nullptr) {
    const std::size_t threads =
        config_.host_threads > 0
            ? static_cast<std::size_t>(config_.host_threads)
            : util::ThreadPool::hardware_threads();
    pool = std::make_shared<util::ThreadPool>(threads);
  }

  // ---- supervision loop ------------------------------------------------
  // Each iteration is one cluster attempt. A permanent rank failure
  // unwinds here as RankFailedError; within the elastic budget the world
  // shrinks to the survivors, state rolls back to the newest in-run
  // snapshot (per-epoch, in memory — no checkpoint dir needed), and the
  // poisoned epoch is replayed at the smaller world size. The replay is
  // byte-identical to a fresh run at the new world size resumed from the
  // same snapshot: every restored quantity is keyed on the new rank index
  // and the poisoned epoch's partial work is discarded entirely.
  comm::RecoveryObserver observer(tel);
  int world = config_.num_nodes;
  int rank_failures = 0;
  int recoveries = 0;
  double recovery_seconds = 0.0;
  for (;;) {
    std::string live_snapshot;
    try {
      TrainReport report =
          run_attempt(world, resume_state.get(), *pool,
                      policy.enabled ? &live_snapshot : nullptr);
      report.rank_failures = rank_failures;
      report.recoveries = recoveries;
      report.recovery_seconds = recovery_seconds;
      report.wall_seconds = wall.seconds();
      return report;
    } catch (const comm::RankFailedError& error) {
      const comm::RecoveryPlan plan =
          comm::plan_recovery(error, world, policy, rank_failures);
      observer.on_failure(plan);
      if (plan.action == comm::RecoveryAction::kFailFast) {
        DYNKGE_LOG_ERROR("unrecoverable rank failure: " << plan.describe());
        throw;
      }
      DYNKGE_LOG_WARN("recovering from rank failure: " << plan.describe());
      const util::Stopwatch rebuild;
      {
        const obs::TraceSpan span(tel.trace, "recovery.rebuild",
                                  config_.num_nodes);
        // Roll back to the newest epoch snapshot this attempt produced;
        // if the crash predated the first one, fall back to the attempt's
        // own starting state (disk snapshot or cold start).
        if (!live_snapshot.empty()) {
          resume_state = std::make_unique<kge::TrainingSnapshot>(
              kge::deserialize_snapshot(live_snapshot,
                                        "elastic recovery snapshot"));
        }
        rank_failures += static_cast<int>(plan.failed_ranks.size());
        recoveries += 1;
        world = plan.new_world;
        if (config_.elastic.test_kill_in_recovery >= 1 &&
            recoveries == config_.elastic.test_kill_in_recovery) {
          // Harness hook: the host dies mid-rebuild; --resume must then
          // recover from the last disk snapshot (tests/kill_restart.py).
          ::raise(SIGKILL);
        }
      }
      recovery_seconds += rebuild.seconds();
      const int resume_epoch =
          resume_state != nullptr ? resume_state->trainer.next_epoch : 0;
      observer.on_recovered(plan, rebuild.seconds(), resume_epoch);
      DYNKGE_LOG_INFO("recovered: replaying epoch "
                      << resume_epoch << " at world size " << world);
    }
  }
}

void DistributedTrainer::validate_resume_snapshot(
    const kge::TrainingSnapshot& snapshot, int world_size) const {
  const kge::TrainerSnapshot& t = snapshot.trainer;
  check_resume_field("model", config_.model_name, t.model_name);
  check_resume_field("strategy", config_.strategy.label(), t.strategy_label);
  check_resume_field("embedding_rank",
                     std::to_string(config_.embedding_rank),
                     std::to_string(t.embedding_rank));
  // World size must match exactly — except in elastic mode, where a
  // snapshot from a *larger* world is resumable by a shrunk one
  // (shrink-resume: restored state is keyed on the new, smaller rank
  // indices; see DESIGN.md section 8).
  if (!(config_.elastic.enabled && t.num_nodes > world_size)) {
    check_resume_field("num_nodes", std::to_string(world_size),
                       std::to_string(t.num_nodes));
  }
  check_resume_field("seed", std::to_string(config_.seed),
                     std::to_string(t.seed));
  check_resume_field("num_entities", std::to_string(dataset_.num_entities()),
                     std::to_string(snapshot.model->entities().rows()));
  check_resume_field("num_relations",
                     std::to_string(dataset_.num_relations()),
                     std::to_string(snapshot.model->relations().rows()));
  // The per-rank RNG streams are re-derived, not stored; the stored seeds
  // exist to verify the derivation contract still holds. Under
  // shrink-resume only the surviving rank indices matter.
  const int verify_ranks = std::min(world_size, t.num_nodes);
  for (int r = 0; r < verify_ranks; ++r) {
    const std::uint64_t expected =
        util::derive_seed(config_.seed, r, t.next_epoch, 0xE0u);
    if (snapshot.rank_rng_seeds[static_cast<std::size_t>(r)] != expected) {
      throw std::invalid_argument(
          "TrainConfig::checkpoint.resume: snapshot RNG stream for rank " +
          std::to_string(r) +
          " does not match this build's seed derivation");
    }
  }
}

TrainReport DistributedTrainer::run_attempt(int world_size,
                                            const kge::TrainingSnapshot* resume,
                                            util::ThreadPool& pool,
                                            std::string* live_snapshot) {
  const int num_nodes = world_size;
  const StrategyConfig& strategy = config_.strategy;
  const obs::TelemetrySinks& tel = config_.telemetry;

  // Track layout: tid = rank for the simulated ranks, tid = num_nodes for
  // host-side (pre-cluster) work.
  if (tel.trace != nullptr) {
    for (int r = 0; r < num_nodes; ++r) {
      tel.trace->set_thread_name(r, "rank " + std::to_string(r));
    }
    tel.trace->set_thread_name(num_nodes, "host");
  }

  // ---- Partition the training triples (host side, deterministic) ------
  TripleList train_triples(dataset_.train().begin(), dataset_.train().end());
  Rng shuffle_rng(util::derive_seed(config_.seed, 0x5u));
  shuffle_triples(train_triples, shuffle_rng);

  std::vector<TripleList> shards;
  RelationPartition relation_partition;
  if (strategy.relation_partition) {
    const obs::TraceSpan span(tel.trace, "relation_partition.setup",
                              num_nodes);
    relation_partition = partition_by_relation(
        train_triples, num_nodes, dataset_.num_relations());
    shards = relation_partition.shards;
  } else {
    shards = partition_uniform(train_triples, num_nodes);
  }

  std::size_t max_shard = 0;
  for (const auto& shard : shards) max_shard = std::max(max_shard, shard.size());
  // Every rank must run the same number of synchronized steps per epoch.
  const std::size_t steps_per_epoch =
      std::max<std::size_t>(1, (max_shard + config_.batch_size - 1) /
                                   config_.batch_size);

  // ---- checkpoint bookkeeping -----------------------------------------
  // Validation, mkdir, and the disk load all happened in train(); `resume`
  // arrives pre-validated (or null for a cold start).
  const TrainConfig::CheckpointConfig& ckpt = config_.checkpoint;
  const bool checkpoint_enabled = !ckpt.dir.empty();
  const std::string snapshot_file =
      checkpoint_enabled ? ckpt.dir + "/snapshot.dkgs" : std::string();
  const int start_epoch =
      resume != nullptr ? std::min(resume->trainer.next_epoch,
                                   config_.max_epochs)
                        : 0;

  TrainReport report;
  report.strategy_label = strategy.label();
  report.model_name = config_.model_name;
  report.num_nodes = num_nodes;
  report.start_epoch = start_epoch;
  if (resume != nullptr) {
    report.epochs = start_epoch;
    report.total_sim_seconds = resume->trainer.total_sim_seconds;
    report.final_val_accuracy = resume->trainer.final_val_accuracy;
    report.converged = resume->scheduler.stopped;
    if (tel.metrics != nullptr) tel.metrics->counter("train.resumes").add(1);
  }
  report.host_threads = static_cast<int>(pool.size());

  comm::Cluster cluster(num_nodes, config_.network);
  if (config_.fault_injector != nullptr) {
    if (tel.metrics != nullptr) {
      config_.fault_injector->set_metrics(tel.metrics);
    }
    cluster.set_fault_injector(config_.fault_injector);
  }

  cluster.run([&](Communicator& comm) {
    const int rank = comm.rank();
    if (config_.trace_communication && rank == 0) comm.enable_trace();
    // Per-rank accumulator slot for measured compute seconds; reduced in
    // fixed rank order after the final barrier (the value is a timing
    // measurement and varies run to run, but the reduction order never
    // does).
    double rank_compute_seconds = 0.0;
    const auto charge_compute = [&](double seconds) {
      comm.sim_add_compute(seconds);
      rank_compute_seconds += seconds;
    };
    Rng init_rng(util::derive_seed(config_.seed, 0x1417u));  // same all ranks
    auto model =
        kge::make_model(config_.model_name, dataset_.num_entities(),
                        dataset_.num_relations(), config_.embedding_rank);
    model->set_init_scale(config_.init_scale);
    model->init(init_rng);
    if (config_.warm_start != nullptr) {
      const auto& source = *config_.warm_start;
      if (source.entities().rows() != model->entities().rows() ||
          source.entities().width() != model->entities().width() ||
          source.relations().rows() != model->relations().rows() ||
          source.relations().width() != model->relations().width()) {
        throw std::invalid_argument(
            "TrainConfig::warm_start: parameter shapes do not match");
      }
      std::copy(source.entities().flat().begin(),
                source.entities().flat().end(),
                model->entities().flat().begin());
      std::copy(source.relations().flat().begin(),
                source.relations().flat().end(),
                model->relations().flat().begin());
    }

    kge::AdamConfig adam_config;
    adam_config.weight_decay = config_.weight_decay;
    kge::RowAdam entity_opt(dataset_.num_entities(),
                            model->entities().width(), adam_config);
    kge::RowAdam relation_opt(dataset_.num_relations(),
                              model->relations().width(), adam_config);

    GradExchange exchange(comm, strategy, dataset_.num_entities(),
                          model->entities().width(), dataset_.num_relations(),
                          model->relations().width(), tel.trace, rank);
    CommModeSelector selector(strategy.comm, strategy.dynamic_probe_interval,
                              strategy.dynamic_topk_arm);
    PlateauScheduler scheduler(config_.lr, num_nodes);
    const kge::NegativeSampler sampler(dataset_);
    const kge::Evaluator evaluator(dataset_);

    TripleList shard = shards[rank];
    kge::ModelGrads local = model->make_grads();
    kge::ModelGrads merged = model->make_grads();
    // Blocked-kernel batch scratch, reused across steps so the steady-state
    // hot path stops allocating. The scalar reference path ignores these.
    const bool blocked = config_.block_kernels;
    TripleList negatives;
    std::vector<std::size_t> negative_offsets;
    HardNegativeScratch hn_scratch;
    TripleList batch_triples;
    std::vector<double> batch_scores;
    std::vector<kge::GradWork> grad_work;
    std::vector<std::array<std::size_t, 3>> grad_offsets;
    const auto topk_k = static_cast<std::size_t>(strategy.topk_k);
    GradSelector entity_selector(strategy.selection,
                                 strategy.selection_residual, topk_k);
    GradSelector relation_selector(strategy.selection,
                                   strategy.selection_residual, topk_k);

    // ---- resume: restore every piece of state a fresh run would have ---
    if (resume != nullptr) {
      const kge::TrainingSnapshot& snap = *resume;
      std::copy(snap.model->entities().flat().begin(),
                snap.model->entities().flat().end(),
                model->entities().flat().begin());
      std::copy(snap.model->relations().flat().begin(),
                snap.model->relations().flat().end(),
                model->relations().flat().begin());
      entity_opt.restore(snap.entity_opt.step, snap.entity_opt.m,
                         snap.entity_opt.v);
      relation_opt.restore(snap.relation_opt.step, snap.relation_opt.m,
                           snap.relation_opt.v);
      scheduler.restore({snap.scheduler.lr, snap.scheduler.best_metric,
                         snap.scheduler.stale_epochs,
                         snap.scheduler.stopped});
      selector.restore({snap.comm_selector.switched,
                        snap.comm_selector.last_allreduce_time,
                        snap.comm_selector.epochs_recorded,
                        snap.comm_selector.allreduce_epochs,
                        snap.comm_selector.committed_arm,
                        snap.comm_selector.base_probe_time,
                        snap.comm_selector.topk_probe_time});
      auto residuals = decode_residual_maps(
          snap.rank_residuals[static_cast<std::size_t>(rank)], 4);
      entity_selector.restore_residuals(std::move(residuals[0]));
      relation_selector.restore_residuals(std::move(residuals[1]));
      exchange.restore_residuals(std::move(residuals[2]),
                                 std::move(residuals[3]));
      // The shard shuffle is cumulative (each epoch shuffles the previous
      // epoch's order in place), so replay the completed epochs' shuffles
      // to put the shard in the exact order the next epoch expects.
      for (int epoch = 0; epoch < start_epoch; ++epoch) {
        Rng replay_rng(util::derive_seed(config_.seed, rank, epoch, 0xE0u));
        shuffle_triples(shard, replay_rng);
      }
    }
    // Snapshots written by earlier runs count toward the persistent total.
    int checkpoints_total =
        resume != nullptr ? resume->trainer.checkpoints_written : 0;
    // Disk-fault budget (test hook) and last-good retention tracking; rank
    // 0 is the sole writer, so only its copies are ever consulted.
    int disk_faults_left =
        ckpt.test_disk_fault_at_epoch >= 0 ? ckpt.test_disk_fault_attempts : 0;
    std::string last_good_history;

    // Registry instruments are resolved once per rank (find-or-create
    // takes a mutex); recording through the cached pointers is a relaxed
    // atomic per event.
    obs::Counter* m_steps = nullptr;
    obs::Counter* m_bytes = nullptr;
    obs::Counter* m_rows_sent = nullptr;
    obs::Counter* m_ss_scored = nullptr;
    obs::Counter* m_ss_kept = nullptr;
    obs::LatencyHistogram* m_step_seconds = nullptr;
    if (tel.metrics != nullptr) {
      m_steps = &tel.metrics->counter("train.steps");
      m_bytes = &tel.metrics->counter("train.bytes_on_wire");
      m_rows_sent = &tel.metrics->counter("train.entity_rows_sent");
      m_ss_scored = &tel.metrics->counter("train.ss_candidates_scored");
      m_ss_kept = &tel.metrics->counter("train.ss_candidates_kept");
      m_step_seconds = &tel.metrics->histogram("train.step_compute_seconds");
    }

    for (int epoch = start_epoch; epoch < config_.max_epochs; ++epoch) {
      // Epoch-scoped fault addressing (kind@RANK@eEPOCH): tells the
      // injector which epoch this rank's upcoming collectives belong to.
      comm.set_fault_epoch(epoch);
      // A snapshot taken at the plateau stop restores as already-stopped;
      // running even one more epoch would diverge from the uninterrupted
      // run.
      if (scheduler.should_stop()) {
        if (rank == 0) report.converged = true;
        break;
      }
      const double sim_epoch_start = comm.sim_now();
      const double comm_epoch_start = comm.stats().total_modeled_seconds();
      const bool probe_epoch = selector.is_probe(epoch);
      const Transport transport = selector.transport_for(epoch);
      // With the Top-K arm the selection varies per epoch (dense on
      // baseline epochs, the scheduled arm on probes, the committed arm
      // after the switch); otherwise this is just strategy.selection.
      const SelectionMode epoch_selection =
          selector.selection_for(epoch, strategy.selection);
      const obs::TraceSpan epoch_span(tel.trace, "epoch", rank);

      Rng epoch_rng(util::derive_seed(config_.seed, rank, epoch, 0xE0u));
      shuffle_triples(shard, epoch_rng);

      double loss_sum = 0.0;
      std::size_t loss_count = 0;
      double rows_before_sum = 0.0, rows_sent_sum = 0.0, rows_merged_sum = 0.0;
      std::size_t epoch_bytes = 0;
      std::size_t ss_scored_sum = 0, ss_kept_sum = 0;

      const double lr = scheduler.lr();
      entity_opt.set_learning_rate(lr);
      relation_opt.set_learning_rate(lr);

      for (std::size_t step = 0; step < steps_per_epoch; ++step) {
        // ---- gradient computation (measured compute) ------------------
        double compute_seconds = 0.0;
        {
          ThreadCpuTimer timer(compute_seconds);
          local.clear();
          const std::size_t begin =
              std::min(step * config_.batch_size, shard.size());
          const std::size_t end =
              std::min(begin + config_.batch_size, shard.size());

          // Examples this rank trains on: positives + selected negatives.
          const std::size_t local_examples =
              (end - begin) *
              (1 + static_cast<std::size_t>(strategy.negatives_used));
          const float inv_examples =
              local_examples == 0 ? 0.0f
                                  : 1.0f / static_cast<float>(local_examples);

          // Strategy 5 first, for the whole batch: the model is static
          // during gradient accumulation (gradients go to `local`, not the
          // parameters) and scoring consumes no RNG, so selecting every
          // positive's negatives up front is bit-identical to interleaving
          // selection with the loss pass — and gives the trace one clean
          // hard-negative span per step.
          negatives.clear();
          negative_offsets.clear();
          negative_offsets.reserve(end - begin + 1);
          negative_offsets.push_back(0);
          {
            const obs::TraceSpan span(tel.trace, "hard_negatives", rank);
            if (blocked) {
              ss_scored_sum += select_hard_negatives_block(
                  *model, sampler,
                  std::span<const Triple>(shard).subspan(begin, end - begin),
                  strategy.negatives_sampled, strategy.negatives_used,
                  epoch_rng, negatives, negative_offsets, hn_scratch);
            } else {
              for (std::size_t i = begin; i < end; ++i) {
                ss_scored_sum +=
                    static_cast<std::size_t>(select_hard_negatives(
                        *model, sampler, shard[i], strategy.negatives_sampled,
                        strategy.negatives_used, epoch_rng, negatives));
                negative_offsets.push_back(negatives.size());
              }
            }
          }
          ss_kept_sum += negatives.size();

          {
            const obs::TraceSpan span(tel.trace, "forward_backward", rank);
            if (blocked) {
              // Gather the step's examples in the scalar loss order —
              // positive i, then its selected negatives — and score them
              // through one blocked forward pass.
              batch_triples.clear();
              for (std::size_t i = begin; i < end; ++i) {
                batch_triples.push_back(shard[i]);
                const std::size_t neg_end = negative_offsets[i - begin + 1];
                for (std::size_t n = negative_offsets[i - begin];
                     n < neg_end; ++n) {
                  batch_triples.push_back(negatives[n]);
                }
              }
              batch_scores.resize(batch_triples.size());
              model->score_triples_block(batch_triples, batch_scores);

              // Loss pass over the precomputed scores, in the scalar
              // accumulation order (loss_sum is order-sensitive).
              grad_work.clear();
              std::size_t idx = 0;
              for (std::size_t i = begin; i < end; ++i) {
                const Triple& positive = batch_triples[idx];
                const auto pos = kge::logistic_loss(batch_scores[idx], +1);
                ++idx;
                loss_sum += pos.loss;
                if (std::fabs(pos.dscore) >= kCoeffUnderflow) {
                  grad_work.push_back(
                      {positive.head, positive.relation, positive.tail,
                       static_cast<float>(pos.dscore) * inv_examples});
                }
                const std::size_t neg_end = negative_offsets[i - begin + 1];
                for (std::size_t n = negative_offsets[i - begin];
                     n < neg_end; ++n) {
                  const Triple& negative = batch_triples[idx];
                  const auto neg = kge::logistic_loss(batch_scores[idx], -1);
                  ++idx;
                  loss_sum += neg.loss;
                  if (std::fabs(neg.dscore) < kCoeffUnderflow) continue;
                  grad_work.push_back(
                      {negative.head, negative.relation, negative.tail,
                       static_cast<float>(neg.dscore) * inv_examples});
                }
              }

              // Create every gradient row in the scalar creation order
              // (h, t, r per item), recording arena offsets — offsets,
              // unlike spans, survive arena growth — then resolve stable
              // row pointers and run the block kernel over the batch.
              grad_offsets.resize(grad_work.size());
              for (std::size_t w = 0; w < grad_work.size(); ++w) {
                grad_offsets[w] = {
                    local.entity.accumulate_offset(grad_work[w].h),
                    local.entity.accumulate_offset(grad_work[w].t),
                    local.relation.accumulate_offset(grad_work[w].r)};
              }
              for (std::size_t w = 0; w < grad_work.size(); ++w) {
                grad_work[w].gh =
                    local.entity.row_at(grad_offsets[w][0]).data();
                grad_work[w].gt =
                    local.entity.row_at(grad_offsets[w][1]).data();
                grad_work[w].gr =
                    local.relation.row_at(grad_offsets[w][2]).data();
              }
              model->accumulate_gradients_block(grad_work, local);
            } else {
              for (std::size_t i = begin; i < end; ++i) {
                const Triple& positive = shard[i];
                const auto pos = kge::logistic_loss(
                    model->score(positive.head, positive.relation,
                                 positive.tail),
                    +1);
                loss_sum += pos.loss;
                if (std::fabs(pos.dscore) >= kCoeffUnderflow) {
                  model->accumulate_gradients(
                      positive.head, positive.relation, positive.tail,
                      static_cast<float>(pos.dscore) * inv_examples, local);
                }
                const std::size_t neg_end = negative_offsets[i - begin + 1];
                for (std::size_t n = negative_offsets[i - begin];
                     n < neg_end; ++n) {
                  const Triple& negative = negatives[n];
                  const auto neg = kge::logistic_loss(
                      model->score(negative.head, negative.relation,
                                   negative.tail),
                      -1);
                  loss_sum += neg.loss;
                  if (std::fabs(neg.dscore) < kCoeffUnderflow) continue;
                  model->accumulate_gradients(
                      negative.head, negative.relation, negative.tail,
                      static_cast<float>(neg.dscore) * inv_examples, local);
                }
              }
            }
          }
          loss_count += local_examples;

          // ---- strategy 2: gradient-row selection ----------------------
          rows_before_sum += static_cast<double>(local.entity.num_rows());
          if (epoch_selection != SelectionMode::kNone) {
            const obs::TraceSpan span(tel.trace, "grad_select", rank);
            entity_selector.apply(local.entity, epoch_rng, epoch_selection);
            if (!strategy.relation_partition) {
              relation_selector.apply(local.relation, epoch_rng,
                                      epoch_selection);
            }
          }
        }
        charge_compute(compute_seconds);

        // ---- strategies 1 & 3: synchronize gradients ------------------
        ExchangePlan plan;
        plan.transport = transport;
        plan.exchange_relations = !strategy.relation_partition;
        const ExchangeResult xresult =
            exchange.exchange(local, merged, plan, epoch_rng);
        rows_sent_sum += static_cast<double>(xresult.entity_rows_sent);
        rows_merged_sum += static_cast<double>(xresult.entity_rows_merged);
        epoch_bytes += xresult.bytes_on_wire;

        // ---- optimizer step (measured compute) ------------------------
        double update_seconds = 0.0;
        {
          ThreadCpuTimer timer(update_seconds);
          const obs::TraceSpan span(tel.trace, "adam_update", rank);
          entity_opt.begin_step();
          relation_opt.begin_step();
          if (blocked) {
            entity_opt.update_rows(merged.entity, model->entities());
            // Strategy 4: relation rows update from the local
            // full-precision gradient (this rank is their only writer),
            // scaled to match the merged-gradient averaging; otherwise
            // from the merged cluster average like entity rows.
            if (strategy.relation_partition) {
              relation_opt.update_rows_scaled(
                  local.relation, 1.0f / static_cast<float>(num_nodes),
                  model->relations());
            } else {
              relation_opt.update_rows(merged.relation, model->relations());
            }
          } else {
            for (const std::int32_t id : merged.entity.sorted_ids()) {
              entity_opt.update_row(id, merged.entity.row(id),
                                    model->entities());
            }
            // Strategy 4: relation rows update from the local
            // full-precision gradient (this rank is their only writer);
            // otherwise from the merged cluster average like entity rows.
            if (strategy.relation_partition) {
              const float inv_nodes = 1.0f / static_cast<float>(num_nodes);
              for (const std::int32_t id : local.relation.sorted_ids()) {
                auto row = local.relation.row(id);
                // Match the merged-gradient scaling so the effective step
                // size is the same with and without partition.
                for (float& v : row) v *= inv_nodes;
                relation_opt.update_row(id, row, model->relations());
              }
            } else {
              for (const std::int32_t id : merged.relation.sorted_ids()) {
                relation_opt.update_row(id, merged.relation.row(id),
                                        model->relations());
              }
            }
          }
        }
        charge_compute(update_seconds);

        if (m_steps != nullptr) {
          m_steps->add(1);
          m_bytes->add(xresult.bytes_on_wire);
          m_rows_sent->add(xresult.entity_rows_sent);
          m_step_seconds->record(compute_seconds + update_seconds);
        }
      }

      // ---- validation --------------------------------------------------
      // Without relation partition every replica is complete, so rank 0
      // validates and the result is shared. Under relation partition a
      // rank only holds fresh relation rows for the relations it owns, so
      // validation is *distributed*: each rank scores the validation
      // triples of its own relations and the accuracies are combined as a
      // pair-weighted average.
      double val_accuracy = 0.0;
      std::optional<obs::TraceSpan> val_span;
      val_span.emplace(tel.trace, "validation", rank);
      if (strategy.relation_partition) {
        double val_seconds = 0.0;
        double weighted = 0.0, pairs = 0.0;
        {
          ThreadCpuTimer timer(val_seconds);
          const auto valid = dataset_.valid();
          const std::size_t limit =
              config_.valid_max_triples == 0
                  ? valid.size()
                  : std::min(valid.size(), config_.valid_max_triples);
          const auto [lo, hi] = relation_partition.relation_range[rank];
          TripleList mine;
          for (std::size_t i = 0; i < limit; ++i) {
            if (valid[i].relation >= lo && valid[i].relation < hi) {
              mine.push_back(valid[i]);
            }
          }
          const auto [accuracy, count] = evaluator.validation_accuracy_subset(
              *model, mine, util::derive_seed(config_.seed, epoch, 0xACCu));
          weighted = accuracy * static_cast<double>(count);
          pairs = static_cast<double>(count);
        }
        charge_compute(val_seconds);
        const double weighted_sum =
            comm.allreduce_scalar(weighted, ScalarOp::kSum);
        const double pair_sum = comm.allreduce_scalar(pairs, ScalarOp::kSum);
        val_accuracy = pair_sum > 0.0 ? weighted_sum / pair_sum : 0.0;
      } else {
        if (rank == 0) {
          double val_seconds = 0.0;
          {
            ThreadCpuTimer timer(val_seconds);
            val_accuracy = evaluator.validation_accuracy(
                *model, util::derive_seed(config_.seed, epoch, 0xACCu),
                config_.valid_max_triples);
          }
          charge_compute(val_seconds);
        }
        val_accuracy = comm.allreduce_scalar(val_accuracy, ScalarOp::kMax);
      }
      val_span.reset();

      // ---- epoch accounting (cluster maxima) ---------------------------
      const double epoch_comm = comm.allreduce_scalar(
          comm.stats().total_modeled_seconds() - comm_epoch_start,
          ScalarOp::kMax);
      const double epoch_sim = comm.allreduce_scalar(
          comm.sim_now() - sim_epoch_start, ScalarOp::kMax);
      const double cluster_loss =
          comm.allreduce_scalar(loss_sum, ScalarOp::kSum) /
          std::max(1.0, comm.allreduce_scalar(
                            static_cast<double>(loss_count), ScalarOp::kSum));

      // The all-reduce baseline the selector will compare a probe against
      // — captured before record_epoch overwrites it, and logged so the
      // offline strategy audit (obs/analysis) can re-derive the decision
      // without replaying the selector. -1 until the first all-reduce
      // epoch is recorded.
      const double probe_baseline = selector.state().last_allreduce_time;
      selector.record_epoch(epoch, epoch_comm);
      scheduler.observe(val_accuracy);

      // ---- telemetry: one structured event per (epoch, rank) -----------
      // Emitted after record_epoch so `switched_to_allgather` reflects the
      // decision this epoch's probe produced. Loss/accuracy/times are the
      // allreduced cluster values, identical on every rank.
      if (tel.events != nullptr) {
        util::JsonWriter json;
        json.begin_object()
            .kv("epoch", epoch)
            .kv("rank", rank)
            .kv("comm_mode", to_string(strategy.comm))
            .kv("transport", to_string(transport))
            .kv("probe", probe_epoch)
            .kv("probe_baseline_seconds", probe_baseline)
            .kv("switched_to_allgather", selector.switched_to_allgather())
            .kv("selection", to_string(epoch_selection))
            .kv("keep_rate", rows_before_sum > 0.0
                                 ? rows_sent_sum / rows_before_sum
                                 : 1.0)
            .kv("quant", to_string(strategy.quant))
            .kv("bytes_on_wire", epoch_bytes)
            .kv("ss_candidates_scored", ss_scored_sum)
            .kv("ss_candidates_kept", ss_kept_sum)
            .kv("loss", cluster_loss)
            .kv("lr", lr)
            .kv("val_accuracy", val_accuracy)
            .kv("sim_seconds", epoch_sim)
            .kv("comm_seconds", epoch_comm)
            .end_object();
        tel.events->write_line(json.str());
      }
      if (m_ss_scored != nullptr) {
        m_ss_scored->add(ss_scored_sum);
        m_ss_kept->add(ss_kept_sum);
      }
      if (tel.metrics != nullptr && rank == 0) {
        tel.metrics->counter("train.epochs").add(1);
        tel.metrics->gauge("train.loss").set(cluster_loss);
        tel.metrics->gauge("train.val_accuracy").set(val_accuracy);
        tel.metrics->gauge("train.lr").set(lr);
        tel.metrics->histogram("train.epoch_sim_seconds").record(epoch_sim);
        tel.metrics->histogram("train.epoch_comm_seconds").record(epoch_comm);
      }

      if (rank == 0) {
        EpochRecord record;
        record.epoch = epoch;
        record.used_allgather = transport == Transport::kAllGather;
        record.sim_seconds = epoch_sim;
        record.comm_seconds = epoch_comm;
        record.val_accuracy = val_accuracy;
        record.mean_loss = cluster_loss;
        record.lr = lr;
        record.nonzero_entity_rows =
            rows_merged_sum / static_cast<double>(steps_per_epoch);
        record.rows_before_selection =
            rows_before_sum / static_cast<double>(steps_per_epoch);
        record.rows_sent =
            rows_sent_sum / static_cast<double>(steps_per_epoch);
        report.epoch_log.push_back(record);
        report.total_sim_seconds += epoch_sim;
        report.epochs = epoch + 1;
        report.final_val_accuracy = val_accuracy;
        DYNKGE_LOG_DEBUG("epoch " << epoch << " val=" << val_accuracy
                                  << " loss=" << cluster_loss
                                  << " lr=" << lr);
      }

      // ---- checkpoint (every N epochs, at convergence, and at the cap) --
      // All collectives here are charge-free and the clocks are already
      // aligned by the epoch-accounting allreduces above, so writing (or
      // not writing) snapshots leaves the simulated timeline — and hence
      // the DRS decisions and final embeddings — bit-identical. In elastic
      // mode a snapshot is built after *every* epoch; the sealed bytes go
      // to the host-side live buffer (rank 0 is the sole writer, and the
      // cohort join orders that write before the supervisor reads it).
      const bool live_due = live_snapshot != nullptr;
      const bool disk_due =
          checkpoint_enabled &&
          ((epoch + 1) % ckpt.every == 0 ||
           epoch + 1 == config_.max_epochs || scheduler.should_stop());
      if (disk_due || live_due) {
        const obs::TraceSpan ckpt_span(tel.trace, "checkpoint.write", rank);

        // Residual maps are rank-private; gather every rank's blob.
        const std::string local_blob = encode_residual_maps(
            {&entity_selector.residuals(), &relation_selector.residuals(),
             &exchange.entity_residuals(), &exchange.relation_residuals()});
        std::vector<std::byte> blob_bytes;
        std::vector<std::size_t> blob_counts;
        comm.allgatherv_bytes(
            std::as_bytes(std::span<const char>(local_blob.data(),
                                                local_blob.size())),
            blob_bytes, blob_counts, /*charge_cost=*/false);

        // Under relation partition rank 0's non-owned relation rows and
        // Adam moments are stale (each rank only updates the relations it
        // owns), so the owners contribute theirs.
        std::vector<float> rel_gathered;
        if (strategy.relation_partition) {
          const auto [lo, hi] = relation_partition.relation_range[rank];
          const std::size_t width =
              static_cast<std::size_t>(model->relations().width());
          std::vector<float> mine;
          mine.reserve(3 * static_cast<std::size_t>(hi - lo) * width);
          const kge::KgeModel& frozen = *model;
          for (const kge::EmbeddingMatrix* matrix :
               {&frozen.relations(), &relation_opt.moment1(),
                &relation_opt.moment2()}) {
            for (kge::RelationId r = lo; r < hi; ++r) {
              const auto row = matrix->row(r);
              mine.insert(mine.end(), row.begin(), row.end());
            }
          }
          std::vector<std::byte> raw;
          std::vector<std::size_t> counts;
          comm.allgatherv_bytes(
              std::as_bytes(std::span<const float>(mine)), raw, counts,
              /*charge_cost=*/false);
          rel_gathered.resize(raw.size() / sizeof(float));
          if (!raw.empty()) {
            std::memcpy(rel_gathered.data(), raw.data(), raw.size());
          }
        }

        if (disk_due) ++checkpoints_total;
        if (rank == 0) {
          kge::TrainingSnapshot snap;
          snap.model = clone_model(*model, config_.model_name,
                                   config_.embedding_rank);
          snap.entity_opt = {entity_opt.step(), entity_opt.moment1(),
                             entity_opt.moment2()};
          snap.relation_opt = {relation_opt.step(), relation_opt.moment1(),
                               relation_opt.moment2()};
          if (strategy.relation_partition) {
            // Overlay each owner's fresh rows into the snapshot copies.
            const std::size_t width =
                static_cast<std::size_t>(model->relations().width());
            std::size_t offset = 0;
            for (int r = 0; r < num_nodes; ++r) {
              const auto [lo, hi] = relation_partition.relation_range[r];
              for (kge::EmbeddingMatrix* matrix :
                   {&snap.model->relations(), &snap.relation_opt.m,
                    &snap.relation_opt.v}) {
                for (kge::RelationId rel = lo; rel < hi; ++rel) {
                  std::copy_n(rel_gathered.begin() +
                                  static_cast<std::ptrdiff_t>(offset),
                              width, matrix->row(rel).begin());
                  offset += width;
                }
              }
            }
          }
          snap.trainer.next_epoch = epoch + 1;
          snap.trainer.num_nodes = num_nodes;
          snap.trainer.seed = config_.seed;
          snap.trainer.model_name = config_.model_name;
          snap.trainer.embedding_rank = config_.embedding_rank;
          snap.trainer.strategy_label = strategy.label();
          snap.trainer.total_sim_seconds = report.total_sim_seconds;
          snap.trainer.final_val_accuracy = report.final_val_accuracy;
          snap.trainer.checkpoints_written = checkpoints_total;
          const auto scheduler_state = scheduler.state();
          snap.scheduler = {scheduler_state.lr, scheduler_state.best_metric,
                            scheduler_state.stale_epochs,
                            scheduler_state.stopped};
          const auto selector_state = selector.state();
          snap.comm_selector = {selector_state.switched,
                                selector_state.last_allreduce_time,
                                selector_state.epochs_recorded,
                                selector_state.allreduce_epochs,
                                selector_state.committed_arm,
                                selector_state.base_probe_time,
                                selector_state.topk_probe_time};
          snap.rank_rng_seeds.reserve(num_nodes);
          for (int r = 0; r < num_nodes; ++r) {
            snap.rank_rng_seeds.push_back(
                util::derive_seed(config_.seed, r, epoch + 1, 0xE0u));
          }
          std::size_t blob_offset = 0;
          for (int r = 0; r < num_nodes; ++r) {
            snap.rank_residuals.emplace_back(
                reinterpret_cast<const char*>(blob_bytes.data()) +
                    blob_offset,
                blob_counts[r]);
            blob_offset += blob_counts[r];
          }

          const std::string sealed = kge::serialize_snapshot(snap);
          if (live_due) *live_snapshot = sealed;
          if (disk_due) {
            kge::SnapshotWriteOptions write_options;
            if (epoch == ckpt.test_kill_at_epoch) {
              write_options.test_kill_after_bytes = ckpt.test_kill_mid_write;
            }
            // Degradation policy (--checkpoint-on-error): "fail" rethrows,
            // "retry" gets fault_retry_limit attempts with a fresh temp
            // file each time, and "skip" (or retry exhaustion) logs the
            // error, keeps the previous snapshot as the resume point, and
            // lets training continue. The write is host-side and
            // charge-free either way, so the simulated timeline — and the
            // final embeddings — are untouched by a failing disk.
            const int max_attempts =
                ckpt.on_error == "retry" ? config_.fault_retry_limit : 1;
            bool written = false;
            std::string write_error;
            for (int attempt = 0; attempt < max_attempts && !written;
                 ++attempt) {
              write_options.test_write_errno =
                  (disk_faults_left > 0 &&
                   ckpt.test_disk_fault_at_epoch >= 0 &&
                   epoch >= ckpt.test_disk_fault_at_epoch)
                      ? ENOSPC
                      : 0;
              if (write_options.test_write_errno != 0) --disk_faults_left;
              try {
                kge::write_snapshot_bytes(sealed, snapshot_file,
                                          write_options);
                written = true;
              } catch (const std::exception& error) {
                write_error = error.what();
                if (ckpt.on_error == "fail") throw;
              }
            }
            if (written) {
              report.checkpoints_written += 1;
              if (tel.metrics != nullptr) {
                tel.metrics->counter("train.checkpoints_written").add(1);
              }
              if (ckpt.keep > 1) {
                // History copy of the same sealed bytes, then prune the
                // oldest copies beyond the budget — never the last good.
                const std::string history_file =
                    ckpt.dir + "/snapshot-e" + std::to_string(epoch) +
                    ".dkgs";
                kge::write_snapshot_bytes(sealed, history_file);
                last_good_history = history_file;
                kge::prune_snapshots(ckpt.dir, ckpt.keep, last_good_history);
              }
            } else {
              // Degraded: the run keeps training; the previous snapshot
              // stays the resume point.
              checkpoints_total -= 1;
              DYNKGE_LOG_INFO("checkpoint write failed at epoch "
                              << epoch << " (" << ckpt.on_error
                              << "): " << write_error);
              if (tel.metrics != nullptr) {
                tel.metrics->counter("train.checkpoint_write_failures")
                    .add(1);
              }
              if (tel.events != nullptr) {
                util::JsonWriter json;
                json.begin_object()
                    .kv("event", "checkpoint_error")
                    .kv("epoch", epoch)
                    .kv("policy", ckpt.on_error)
                    .kv("error", write_error)
                    .end_object();
                tel.events->write_line(json.str());
              }
            }
            if (written && epoch == ckpt.test_kill_at_epoch) {
              // Harness hook: die *after* the snapshot is durable (the
              // mid-write variant never reaches this point).
              ::raise(SIGKILL);
            }
          }
        }
        if (live_due) {
          // Publication barrier: without it a sibling could crash in epoch
          // e+1 and abort rank 0 while it is still sealing epoch e's
          // snapshot, making the state recovery rolls back to depend on
          // host thread timing. Charge-free, so the simulated timeline is
          // untouched; only the collective count differs from a
          // non-elastic run (relevant solely to index-addressed fault
          // specs — epoch addressing is unaffected).
          std::vector<std::byte> sync;
          std::vector<std::size_t> sync_counts;
          const char token = 0;
          comm.allgatherv_bytes(
              std::as_bytes(std::span<const char>(&token, 1)), sync,
              sync_counts, /*charge_cost=*/false);
        }
      }

      if (scheduler.should_stop()) {
        if (rank == 0) report.converged = true;
        break;
      }
    }
    comm.set_fault_epoch(-1);

    // ---- verify the replica-consistency invariant ----------------------
    {
      // FNV-1a over the entity matrix bytes; identical replicas produce
      // identical hashes, so cluster-min == cluster-max.
      const auto flat = model->entities().flat();
      const auto* bytes = reinterpret_cast<const unsigned char*>(flat.data());
      std::uint64_t hash = 0xcbf29ce484222325ULL;
      for (std::size_t i = 0; i < flat.size_bytes(); ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
      }
      const auto as_double = static_cast<double>(hash >> 11);
      const double lo = comm.allreduce_scalar(as_double, ScalarOp::kMin);
      const double hi = comm.allreduce_scalar(as_double, ScalarOp::kMax);
      if (rank == 0) report.replicas_consistent = (lo == hi);
    }

    // ---- reduce the per-rank compute slots (fixed rank order) ----------
    {
      const double cluster_compute =
          comm.allreduce_scalar(rank_compute_seconds, ScalarOp::kSum);
      if (rank == 0) report.compute_cpu_seconds = cluster_compute;
    }

    // ---- reassemble relation rows under relation partition ------------
    if (strategy.relation_partition) {
      const auto [lo, hi] = relation_partition.relation_range[rank];
      const std::size_t width = model->relations().width();
      std::vector<float> mine;
      mine.reserve(static_cast<std::size_t>(hi - lo) * width);
      for (kge::RelationId r = lo; r < hi; ++r) {
        const auto row = model->relations().row(r);
        mine.insert(mine.end(), row.begin(), row.end());
      }
      std::vector<float> gathered;
      std::vector<std::size_t> counts;
      comm.allgatherv(std::span<const float>(mine), gathered, counts);
      // Ranges are contiguous ascending, so the rank-ordered concatenation
      // is the full relation matrix.
      if (gathered.size() == model->relations().flat().size()) {
        std::copy(gathered.begin(), gathered.end(),
                  model->relations().flat().begin());
      }
    }

    if (rank == 0) {
      report.allreduce_fraction = selector.allreduce_fraction();
      report.comm_stats = comm.stats();
      if (config_.trace_communication) report.comm_trace = comm.trace();
      if (config_.compute_final_metrics) {
        report.tca = evaluator.triple_classification_accuracy(
            *model, util::derive_seed(config_.seed, 0x7CAu));
        kge::EvalOptions eval_options;
        eval_options.filtered = true;
        eval_options.max_triples = config_.eval_max_triples;
        report.ranking =
            evaluator.link_prediction(*model, dataset_.test(), eval_options);
      }
      report.model = std::move(model);
    }
  }, pool);

  return report;
}

}  // namespace dynkge::core
