// Shared-memory lock-free KGE training (Hogwild-style).
//
// The paper's related work (section 2) cites Zhang et al. 2017 and Niu &
// Li's ParaGraphE: multi-threaded training of one shared embedding table
// with lock-free updates. This module implements that baseline so the
// distributed strategies can be compared against the shared-memory
// approach they superseded at scale.
//
// Updates are plain SGD (racy, "benign" in the Hogwild sense: embedding
// gradients are sparse, so collisions are rare); the learning-rate
// schedule is the same plateau scheduler the distributed trainer uses.
// Unlike the distributed trainer, results are NOT bit-deterministic —
// thread interleaving changes float summation orders — which is itself
// one of the trade-offs the synchronous approach removes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/lr_scheduler.hpp"
#include "kge/dataset.hpp"
#include "kge/evaluator.hpp"

namespace dynkge::core {

struct HogwildConfig {
  std::string model_name = "complex";
  std::int32_t embedding_rank = 32;
  float init_scale = 0.1f;

  int num_threads = 4;
  int negatives = 1;            ///< uniform corruptions per positive
  double weight_decay = 1e-6;

  PlateauConfig lr;
  int max_epochs = 200;

  std::uint64_t seed = 1234;
  std::size_t valid_max_triples = 500;
  std::size_t eval_max_triples = 250;
  bool compute_final_metrics = true;
};

struct HogwildEpochRecord {
  int epoch = 0;
  double mean_loss = 0.0;
  double val_accuracy = 0.0;
  double lr = 0.0;
  double cpu_seconds = 0.0;  ///< summed thread-CPU time of the epoch
};

struct HogwildReport {
  std::string model_name;
  int num_threads = 1;
  int epochs = 0;
  bool converged = false;
  double wall_seconds = 0.0;
  double total_cpu_seconds = 0.0;
  double final_val_accuracy = 0.0;
  double tca = 0.0;
  kge::RankingMetrics ranking;
  std::vector<HogwildEpochRecord> epoch_log;
  std::shared_ptr<kge::KgeModel> model;
};

class HogwildTrainer {
 public:
  HogwildTrainer(const kge::Dataset& dataset, HogwildConfig config);

  HogwildReport train();

 private:
  const kge::Dataset& dataset_;
  HogwildConfig config_;
};

}  // namespace dynkge::core
