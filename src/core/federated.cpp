#include "core/federated.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>

#include "comm/recovery.hpp"
#include "core/grad_exchange.hpp"
#include "core/grad_select.hpp"
#include "core/relation_partition.hpp"
#include "kge/loss.hpp"
#include "kge/model_factory.hpp"
#include "kge/negative_sampler.hpp"
#include "kge/serialize.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace dynkge::core {
namespace {

using comm::Communicator;
using comm::ScalarOp;
using kge::Triple;
using kge::TripleList;
using util::Rng;

void shuffle_triples(TripleList& triples, Rng& rng) {
  for (std::size_t i = triples.size(); i > 1; --i) {
    std::swap(triples[i - 1], triples[rng.next_below(i)]);
  }
}

/// FNV-1a over a float span (the replica-consistency fingerprint).
std::uint64_t fnv1a(std::span<const float> data, std::uint64_t hash) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  for (std::size_t i = 0; i < data.size_bytes(); ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

FederatedTrainer::FederatedTrainer(const kge::Dataset& dataset,
                                   FederatedConfig config)
    : dataset_(dataset), config_(std::move(config)) {
  comm::validate_federated_policy(config_.policy);
  if (config_.negatives < 1) {
    throw std::invalid_argument(
        "FederatedConfig: negatives must be >= 1 (--negatives)");
  }
  const StrategyConfig& s = config_.strategy;
  if (s.dynamic_topk_arm) {
    throw std::invalid_argument(
        "FederatedConfig: the dynamic Top-K arm belongs to the distributed "
        "trainer (--drs-topk-arm); federated runs pick one selection");
  }
  if (s.selection == SelectionMode::kTopK) {
    if (s.topk_k < 1) {
      throw std::invalid_argument(
          "FederatedConfig: Top-K selection requires topk_k >= 1 (--topk-k)");
    }
    if (s.topk_k > dataset_.num_entities()) {
      throw std::invalid_argument(
          "FederatedConfig: topk_k (" + std::to_string(s.topk_k) +
          ") exceeds the entity count (" +
          std::to_string(dataset_.num_entities()) + ") (--topk-k)");
    }
  }
  if (!config_.active_clients.empty()) {
    const auto& roster = config_.active_clients;
    for (std::size_t i = 0; i < roster.size(); ++i) {
      if (roster[i] < 0 || roster[i] >= config_.policy.num_clients) {
        throw std::invalid_argument(
            "FederatedConfig: active client id " + std::to_string(roster[i]) +
            " is outside [0, " + std::to_string(config_.policy.num_clients) +
            ")");
      }
      if (i > 0 && roster[i] <= roster[i - 1]) {
        throw std::invalid_argument(
            "FederatedConfig: active_clients must be strictly ascending");
      }
    }
  }
}

void FederatedTrainer::validate_resume(const FederatedSnapshot& snapshot,
                                       const std::vector<int>& active) const {
  if (snapshot.clients.size() != snapshot.client_residuals.size()) {
    throw std::invalid_argument(
        "FederatedSnapshot: clients/client_residuals size mismatch");
  }
  // Survivors of a crash (and explicit shrunk rosters) must all have state
  // in the snapshot; a client the snapshot never saw cannot resume.
  for (const int client : active) {
    if (!std::binary_search(snapshot.clients.begin(), snapshot.clients.end(),
                            client)) {
      throw std::invalid_argument(
          "FederatedSnapshot: active client " + std::to_string(client) +
          " has no state in the resume snapshot");
    }
  }
  const auto probe =
      kge::make_model(config_.model_name, dataset_.num_entities(),
                      dataset_.num_relations(), config_.embedding_rank);
  if (snapshot.entity_params.size() != probe->entities().flat().size() ||
      snapshot.relation_params.size() != probe->relations().flat().size()) {
    throw std::invalid_argument(
        "FederatedSnapshot: parameter shapes do not match this model");
  }
}

FederatedReport FederatedTrainer::train() {
  const util::Stopwatch wall;
  const comm::ElasticPolicy& elastic = config_.policy.elastic;

  std::vector<int> active = config_.active_clients;
  if (active.empty()) {
    active.resize(static_cast<std::size_t>(config_.policy.num_clients));
    for (std::size_t i = 0; i < active.size(); ++i) {
      active[i] = static_cast<int>(i);
    }
  }

  std::shared_ptr<const FederatedSnapshot> resume_state = config_.resume;

  std::shared_ptr<util::ThreadPool> pool = config_.host_pool;
  if (pool == nullptr) {
    const std::size_t threads =
        config_.host_threads > 0
            ? static_cast<std::size_t>(config_.host_threads)
            : util::ThreadPool::hardware_threads();
    pool = std::make_shared<util::ThreadPool>(threads);
  }

  // ---- supervision loop (the distributed trainer's, roster-keyed) ------
  // A client death unwinds as RankFailedError; within the elastic budget
  // the roster shrinks to the survivors (original client ids — shard
  // ownership and RNG streams follow the id, not the rank) and the
  // poisoned round replays from the newest round snapshot.
  comm::RecoveryObserver observer(config_.telemetry);
  int client_failures = 0;
  int recoveries = 0;
  double recovery_seconds = 0.0;
  for (;;) {
    std::shared_ptr<FederatedSnapshot> live;
    try {
      FederatedReport report =
          run_attempt(active, resume_state.get(), *pool, &live);
      report.client_failures = client_failures;
      report.recoveries = recoveries;
      report.recovery_seconds = recovery_seconds;
      report.wall_seconds = wall.seconds();
      return report;
    } catch (const comm::RankFailedError& error) {
      const comm::RecoveryPlan plan = comm::plan_recovery(
          error, static_cast<int>(active.size()), elastic, client_failures);
      observer.on_failure(plan);
      if (plan.action == comm::RecoveryAction::kFailFast) {
        DYNKGE_LOG_ERROR("unrecoverable client failure: " << plan.describe());
        throw;
      }
      DYNKGE_LOG_WARN("recovering from client failure: " << plan.describe());
      const util::Stopwatch rebuild;
      if (live != nullptr) resume_state = live;
      client_failures += static_cast<int>(plan.failed_ranks.size());
      recoveries += 1;
      active = comm::apply_failures(active, plan.failed_ranks);
      recovery_seconds += rebuild.seconds();
      const int resume_round =
          resume_state != nullptr ? resume_state->next_round : 0;
      observer.on_recovered(plan, rebuild.seconds(), resume_round);
      DYNKGE_LOG_INFO("recovered: replaying round "
                      << resume_round << " with " << active.size()
                      << " clients");
    }
  }
}

FederatedReport FederatedTrainer::run_attempt(
    const std::vector<int>& active, const FederatedSnapshot* resume,
    util::ThreadPool& pool, std::shared_ptr<FederatedSnapshot>* live) {
  const StrategyConfig& strategy = config_.strategy;
  const comm::FederatedPolicy& policy = config_.policy;
  const obs::TelemetrySinks& tel = config_.telemetry;
  const int world = static_cast<int>(active.size());

  if (resume != nullptr) validate_resume(*resume, active);

  // ---- shard the private client data (host side, deterministic) --------
  // Partitioned once for the ORIGINAL client count, so client c's shard is
  // the same triples whether or not other clients have since died — a
  // dead client's data simply drops out (it is private to that client).
  TripleList train_triples(dataset_.train().begin(), dataset_.train().end());
  Rng shuffle_rng(util::derive_seed(config_.seed, 0x5u));
  shuffle_triples(train_triples, shuffle_rng);
  const std::vector<TripleList> shards =
      partition_uniform(train_triples, policy.num_clients);

  const int start_round =
      resume != nullptr ? std::min(resume->next_round, policy.rounds) : 0;

  FederatedReport report;
  report.strategy_label = strategy.label();
  report.model_name = config_.model_name;
  report.num_clients = policy.num_clients;
  report.active_clients = world;
  report.rounds = start_round;
  if (resume != nullptr) {
    report.converged = resume->scheduler_stopped;
    if (tel.metrics != nullptr) {
      tel.metrics->counter("federated.resumes").add(1);
    }
  }

  comm::Cluster cluster(world, config_.network);
  if (config_.fault_injector != nullptr) {
    if (tel.metrics != nullptr) {
      config_.fault_injector->set_metrics(tel.metrics);
    }
    cluster.set_fault_injector(config_.fault_injector);
  }

  comm::FederatedObserver round_observer(tel);
  std::shared_ptr<FederatedSnapshot> newest;  // rank 0 writes, post-join read

  cluster.run([&](Communicator& comm) {
    const int rank = comm.rank();
    const int client = active[static_cast<std::size_t>(rank)];

    // Global model — identical on every client, by construction and then
    // by induction (every round applies the same merged average delta).
    Rng init_rng(util::derive_seed(config_.seed, 0x1417u));
    auto model =
        kge::make_model(config_.model_name, dataset_.num_entities(),
                        dataset_.num_relations(), config_.embedding_rank);
    model->set_init_scale(config_.init_scale);
    model->init(init_rng);
    // Scratch model holding this client's local view during a round.
    auto local_model =
        kge::make_model(config_.model_name, dataset_.num_entities(),
                        dataset_.num_relations(), config_.embedding_rank);

    GradExchange exchange(comm, strategy, dataset_.num_entities(),
                          model->entities().width(),
                          dataset_.num_relations(),
                          model->relations().width(), tel.trace, rank);
    PlateauScheduler scheduler(config_.lr, world);
    const kge::NegativeSampler sampler(dataset_);
    const kge::Evaluator evaluator(dataset_);
    const auto topk_k = static_cast<std::size_t>(strategy.topk_k);
    GradSelector entity_selector(strategy.selection,
                                 strategy.selection_residual, topk_k);
    GradSelector relation_selector(strategy.selection,
                                   strategy.selection_residual, topk_k);

    if (resume != nullptr) {
      std::copy(resume->entity_params.begin(), resume->entity_params.end(),
                model->entities().flat().begin());
      std::copy(resume->relation_params.begin(),
                resume->relation_params.end(),
                model->relations().flat().begin());
      scheduler.restore({resume->scheduler_lr, resume->scheduler_best_metric,
                         resume->scheduler_stale_epochs,
                         resume->scheduler_stopped});
      // Residuals are keyed on the ORIGINAL client id, so a survivor picks
      // up exactly the residual mass it parked before the crash.
      const auto it = std::lower_bound(resume->clients.begin(),
                                       resume->clients.end(), client);
      const auto slot =
          static_cast<std::size_t>(it - resume->clients.begin());
      auto residuals =
          kge::decode_residual_maps(resume->client_residuals[slot], 4);
      entity_selector.restore_residuals(std::move(residuals[0]));
      relation_selector.restore_residuals(std::move(residuals[1]));
      exchange.restore_residuals(std::move(residuals[2]),
                                 std::move(residuals[3]));
    }

    kge::ModelGrads delta = model->make_grads();
    kge::ModelGrads merged = model->make_grads();
    std::vector<std::int32_t> touched_entities;
    std::vector<std::int32_t> touched_relations;
    std::vector<std::uint8_t> entity_touched(
        static_cast<std::size_t>(dataset_.num_entities()), 0);
    std::vector<std::uint8_t> relation_touched(
        static_cast<std::size_t>(dataset_.num_relations()), 0);

    for (int round = start_round; round < policy.rounds; ++round) {
      comm.set_fault_epoch(round);
      // A snapshot taken at the plateau stop restores as already-stopped.
      if (scheduler.should_stop()) {
        if (rank == 0) report.converged = true;
        break;
      }
      const double sim_round_start = comm.sim_now();
      const double comm_round_start = comm.stats().total_modeled_seconds();

      // ---- E local epochs of plain SGD on the private shard ------------
      // The shard is reset to its canonical (partition-time) order every
      // round and every shuffle stream is keyed on (seed, client, round,
      // epoch), so no state leaks between rounds — a resumed round replays
      // byte-identically.
      std::copy(model->entities().flat().begin(),
                model->entities().flat().end(),
                local_model->entities().flat().begin());
      std::copy(model->relations().flat().begin(),
                model->relations().flat().end(),
                local_model->relations().flat().begin());
      touched_entities.clear();
      touched_relations.clear();

      const auto learning_rate = static_cast<float>(scheduler.lr());
      const auto decay = static_cast<float>(config_.weight_decay);
      double loss_sum = 0.0;
      kge::ModelGrads step_grads = model->make_grads();
      TripleList shard = shards[static_cast<std::size_t>(client)];
      const util::Stopwatch local_clock;

      const auto sgd_step = [&](const Triple& triple, int label) {
        const auto lg = kge::logistic_loss(
            local_model->score(triple.head, triple.relation, triple.tail),
            label);
        loss_sum += lg.loss;
        step_grads.clear();
        local_model->accumulate_gradients(triple.head, triple.relation,
                                          triple.tail,
                                          static_cast<float>(lg.dscore),
                                          step_grads);
        for (const std::int32_t id : step_grads.entity.sorted_ids()) {
          auto row = local_model->entities().row(id);
          const auto g = step_grads.entity.row(id);
          for (std::size_t i = 0; i < row.size(); ++i) {
            row[i] -= learning_rate * (g[i] + decay * row[i]);
          }
          if (!entity_touched[static_cast<std::size_t>(id)]) {
            entity_touched[static_cast<std::size_t>(id)] = 1;
            touched_entities.push_back(id);
          }
        }
        for (const std::int32_t id : step_grads.relation.sorted_ids()) {
          auto row = local_model->relations().row(id);
          const auto g = step_grads.relation.row(id);
          for (std::size_t i = 0; i < row.size(); ++i) {
            row[i] -= learning_rate * (g[i] + decay * row[i]);
          }
          if (!relation_touched[static_cast<std::size_t>(id)]) {
            relation_touched[static_cast<std::size_t>(id)] = 1;
            touched_relations.push_back(id);
          }
        }
      };

      for (int epoch = 0; epoch < policy.local_epochs; ++epoch) {
        Rng epoch_rng(
            util::derive_seed(config_.seed, client, round, epoch, 0xFEDu));
        shuffle_triples(shard, epoch_rng);
        for (const Triple& triple : shard) {
          sgd_step(triple, +1);
          for (int n = 0; n < config_.negatives; ++n) {
            sgd_step(sampler.corrupt(triple, epoch_rng), -1);
          }
        }
      }
      comm.sim_add_compute(local_clock.seconds());

      // ---- delta = local - global for every touched row ----------------
      delta.clear();
      for (const std::int32_t id : touched_entities) {
        auto out = delta.entity.accumulate(id);
        const auto local_row = local_model->entities().row(id);
        const auto global_row = model->entities().row(id);
        for (std::size_t i = 0; i < out.size(); ++i) {
          out[i] = local_row[i] - global_row[i];
        }
        entity_touched[static_cast<std::size_t>(id)] = 0;
      }
      for (const std::int32_t id : touched_relations) {
        auto out = delta.relation.accumulate(id);
        const auto local_row = local_model->relations().row(id);
        const auto global_row = model->relations().row(id);
        for (std::size_t i = 0; i < out.size(); ++i) {
          out[i] = local_row[i] - global_row[i];
        }
        relation_touched[static_cast<std::size_t>(id)] = 0;
      }

      // ---- sparsify (with error feedback) and aggregate ----------------
      const std::size_t rows_before =
          delta.entity.num_rows() + delta.relation.num_rows();
      Rng select_rng(util::derive_seed(config_.seed, client, round, 0x5E1u));
      entity_selector.apply(delta.entity, select_rng);
      relation_selector.apply(delta.relation, select_rng);
      const std::size_t rows_kept =
          delta.entity.num_rows() + delta.relation.num_rows();

      ExchangePlan plan;
      plan.transport = Transport::kParameterServer;
      plan.exchange_relations = true;
      Rng exchange_rng(
          util::derive_seed(config_.seed, client, round, 0xE7u));
      const ExchangeResult result =
          exchange.exchange(delta, merged, plan, exchange_rng);

      // Everyone applies the same merged average delta (FedAvg with equal
      // client weights — the uniform partition keeps shards near-equal).
      for (const std::int32_t id : merged.entity.sorted_ids()) {
        auto row = model->entities().row(id);
        const auto d = merged.entity.row(id);
        for (std::size_t i = 0; i < row.size(); ++i) row[i] += d[i];
      }
      for (const std::int32_t id : merged.relation.sorted_ids()) {
        auto row = model->relations().row(id);
        const auto d = merged.relation.row(id);
        for (std::size_t i = 0; i < row.size(); ++i) row[i] += d[i];
      }

      // ---- round accounting (fixed rank order, identical everywhere) ---
      double val_accuracy = 0.0;
      if (rank == 0) {
        val_accuracy = evaluator.validation_accuracy(
            *model, util::derive_seed(config_.seed, round, 0xACCu),
            config_.valid_max_triples);
      }
      val_accuracy = comm.allreduce_scalar(val_accuracy, ScalarOp::kMax);
      const double round_comm = comm.allreduce_scalar(
          comm.stats().total_modeled_seconds() - comm_round_start,
          ScalarOp::kMax);
      const double round_sim = comm.allreduce_scalar(
          comm.sim_now() - sim_round_start, ScalarOp::kMax);
      const std::size_t steps =
          shard.size() * static_cast<std::size_t>(1 + config_.negatives) *
          static_cast<std::size_t>(policy.local_epochs);
      const double mean_loss =
          comm.allreduce_scalar(loss_sum, ScalarOp::kSum) /
          std::max(1.0, comm.allreduce_scalar(static_cast<double>(steps),
                                              ScalarOp::kSum));
      const double round_lr = scheduler.lr();
      scheduler.observe(val_accuracy);

      comm::FederatedRoundStats stats;
      stats.round = round;
      stats.client = client;
      stats.root = rank == 0;
      stats.active_clients = world;
      stats.local_epochs = policy.local_epochs;
      stats.selection = to_string(strategy.selection);
      stats.keep_rate = rows_before == 0
                            ? 1.0
                            : static_cast<double>(rows_kept) /
                                  static_cast<double>(rows_before);
      stats.bytes_on_wire = result.bytes_on_wire;
      stats.mean_loss = mean_loss;
      stats.lr = round_lr;
      stats.val_accuracy = val_accuracy;
      stats.sim_seconds = round_sim;
      stats.comm_seconds = round_comm;
      round_observer.on_round(stats);

      if (rank == 0) {
        FederatedRoundRecord record;
        record.round = round;
        record.active_clients = world;
        record.mean_loss = mean_loss;
        record.val_accuracy = val_accuracy;
        record.lr = round_lr;
        record.selection = stats.selection;
        record.keep_rate = stats.keep_rate;
        record.bytes_on_wire = result.bytes_on_wire;
        record.sim_seconds = round_sim;
        record.comm_seconds = round_comm;
        report.round_log.push_back(record);
        report.rounds = round + 1;
        report.final_val_accuracy = val_accuracy;
        report.total_sim_seconds += round_sim;
      }

      // ---- round snapshot (charge-free) --------------------------------
      // Residual maps are client-private; gather every client's blob so a
      // survivor of the NEXT round's crash can restore its own. Built
      // every round regardless of elastic mode: the collective count stays
      // uniform and the final snapshot doubles as the report's final_state.
      const std::string local_blob = kge::encode_residual_maps(
          {&entity_selector.residuals(), &relation_selector.residuals(),
           &exchange.entity_residuals(), &exchange.relation_residuals()});
      std::vector<std::byte> blob_bytes;
      std::vector<std::size_t> blob_counts;
      comm.allgatherv_bytes(
          std::as_bytes(
              std::span<const char>(local_blob.data(), local_blob.size())),
          blob_bytes, blob_counts, /*charge_cost=*/false);
      if (rank == 0) {
        auto snap = std::make_shared<FederatedSnapshot>();
        snap->next_round = round + 1;
        snap->entity_params.assign(model->entities().flat().begin(),
                                   model->entities().flat().end());
        snap->relation_params.assign(model->relations().flat().begin(),
                                     model->relations().flat().end());
        const auto scheduler_state = scheduler.state();
        snap->scheduler_lr = scheduler_state.lr;
        snap->scheduler_best_metric = scheduler_state.best_metric;
        snap->scheduler_stale_epochs = scheduler_state.stale_epochs;
        snap->scheduler_stopped = scheduler_state.stopped;
        snap->clients = active;
        std::size_t blob_offset = 0;
        for (int r = 0; r < world; ++r) {
          snap->client_residuals.emplace_back(
              reinterpret_cast<const char*>(blob_bytes.data()) + blob_offset,
              blob_counts[static_cast<std::size_t>(r)]);
          blob_offset += blob_counts[static_cast<std::size_t>(r)];
        }
        // Rank 0 only throws from collectives, so both writes complete
        // before any crash can unwind this frame; the cohort join orders
        // them before the supervisor (or the caller) reads.
        newest = snap;
        if (live != nullptr) *live = snap;
      }

      if (scheduler.should_stop()) {
        if (rank == 0) report.converged = true;
        break;
      }
    }
    comm.set_fault_epoch(-1);

    // ---- verify the replica-consistency invariant ----------------------
    {
      std::uint64_t hash = fnv1a(model->entities().flat(),
                                 0xcbf29ce484222325ULL);
      hash = fnv1a(model->relations().flat(), hash);
      const auto as_double = static_cast<double>(hash >> 11);
      const double lo = comm.allreduce_scalar(as_double, ScalarOp::kMin);
      const double hi = comm.allreduce_scalar(as_double, ScalarOp::kMax);
      if (rank == 0) report.replicas_consistent = (lo == hi);
    }

    if (rank == 0) {
      if (config_.compute_final_metrics) {
        report.tca = evaluator.triple_classification_accuracy(
            *model, util::derive_seed(config_.seed, 0x7CAu));
        kge::EvalOptions options;
        options.max_triples = config_.eval_max_triples;
        report.ranking =
            evaluator.link_prediction(*model, dataset_.test(), options);
      }
      report.model = std::move(model);
    }
  }, pool);

  report.final_state = newest;
  return report;
}

}  // namespace dynkge::core
