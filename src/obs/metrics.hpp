// MetricsRegistry — named counters, gauges and log-bucketed histograms
// shared by training and serving.
//
// Registration (counter()/gauge()/histogram()) takes a mutex once; callers
// cache the returned reference and the hot path is then a single relaxed
// atomic per record. References stay valid for the registry's lifetime
// (instruments are heap-allocated nodes, never moved).
//
// Snapshots export the whole registry as JSON (to_json) or as the
// Prometheus text exposition format (to_prometheus); write_metrics picks
// the format from the file extension (.prom -> Prometheus, else JSON).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/histogram.hpp"

namespace dynkge::obs {

/// Monotonically increasing event count. Thread-safe, wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value. Thread-safe.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. The returned reference is stable for the
  /// registry's lifetime. A name identifies one instrument kind: asking
  /// for an existing name with a different kind throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,...}}}
  /// Names iterate in sorted order, so the output is deterministic for a
  /// given set of values.
  std::string to_json() const;

  /// Prometheus text exposition format. Metric names are prefixed with
  /// "dynkge_" and sanitized ('.'/'-' -> '_'); histograms emit cumulative
  /// _bucket{le=...} series plus _sum and _count.
  std::string to_prometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void check_kind(const std::string& name, Kind kind) const;

  mutable std::mutex mu_;
  std::map<std::string, Kind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// Write a snapshot to `path`: Prometheus text when the extension is
/// ".prom", JSON otherwise. Throws on I/O failure.
void write_metrics(const MetricsRegistry& registry, const std::string& path);

}  // namespace dynkge::obs
