// Offline analysis of a training run's telemetry: joins the per-rank
// Chrome trace spans (--trace-out) with the per-epoch JSONL event stream
// (--events-out) to answer the two questions the dashboards cannot:
//
//   1. Critical path — which rank bounded each epoch (the straggler whose
//      "epoch" span ran longest), which collective it spent that time in,
//      the comm-vs-compute fraction per rank, and the straggler skew
//      (slowest / mean epoch time across ranks).
//
//   2. Strategy audit — replay every CommModeSelector probe: the event
//      stream carries the modeled all-gather cost the probe measured and
//      the all-reduce baseline it was compared against
//      (probe_baseline_seconds), so each switch/stay decision can be
//      re-derived and flagged when it contradicts the recorded numbers.
//      The trace adds a wall-clock cross-check: measured
//      exchange.allgather vs exchange.allreduce span time around the
//      probe.
//
// Everything is deterministic in its inputs: the same trace + events pair
// produces byte-identical to_json() output (golden-tested), so reports
// can be diffed across runs. Exposed through `dynkge analyze`.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dynkge::obs {

/// One complete ("X") span from the trace file. Times are microseconds on
/// the trace's own monotonic timebase.
struct SpanRecord {
  std::string name;
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

/// One parsed line of the JSONL event stream (one per epoch per rank).
/// Fields missing from older logs default to the sentinel -1.0.
struct EpochEvent {
  int epoch = 0;
  int rank = 0;
  std::string comm_mode;
  std::string transport;
  bool probe = false;
  bool switched_to_allgather = false;
  double comm_seconds = 0.0;
  double sim_seconds = 0.0;
  double probe_baseline_seconds = -1.0;
};

/// Per-rank trace profile of one epoch (all from span wall time).
struct RankEpochProfile {
  int rank = 0;
  double epoch_seconds = 0.0;     ///< duration of the rank's "epoch" span
  double comm_seconds = 0.0;      ///< union of its exchange.* intervals
  double comm_fraction = 0.0;     ///< comm_seconds / epoch_seconds
  std::string top_collective;     ///< busiest exchange.* name, "" if none
  double top_collective_seconds = 0.0;
  /// Union seconds per collective name (exchange.allreduce, ...).
  std::map<std::string, double> collective_seconds;
};

struct EpochAnalysis {
  int epoch = 0;
  int critical_rank = 0;            ///< rank with the longest epoch span
  double critical_seconds = 0.0;
  std::string blocking_collective;  ///< its busiest collective, "" if none
  double blocking_seconds = 0.0;
  double straggler_skew = 1.0;      ///< max / mean epoch span duration
  double comm_fraction_mean = 0.0;  ///< mean over ranks
  std::vector<RankEpochProfile> ranks;
};

/// One CommModeSelector probe decision, re-derived from the recorded
/// numbers. `contradicted` means the decision in the log disagrees with
/// the comparison of the logged costs — a selector bug or corrupt log.
struct ProbeAudit {
  int epoch = 0;
  double probe_comm_seconds = 0.0;     ///< modeled all-gather cost (event)
  double baseline_comm_seconds = -1.0; ///< modeled all-reduce baseline
  bool switched = false;               ///< decision recorded in the log
  bool expected_switch = false;        ///< what the costs say it should be
  bool contradicted = false;
  double trace_allgather_seconds = -1.0;  ///< wall clock, -1 without trace
  double trace_allreduce_seconds = -1.0;
  bool wall_clock_agrees = true;  ///< wall-clock ordering matches modeled
};

struct AnalysisReport {
  int num_ranks = 0;
  int num_epochs = 0;
  std::string comm_mode;
  std::vector<EpochAnalysis> epochs;
  std::vector<ProbeAudit> audit;
  int contradicted_decisions = 0;

  /// Deterministic machine-readable report (byte-stable per input pair).
  std::string to_json() const;
  /// Human-readable tables (same numbers, fixed-width columns).
  std::string to_table() const;
};

/// Total length of the union of `intervals` clipped to [lo, hi] — the
/// span-interval primitive the per-epoch comm accounting is built on.
/// Overlapping and nested intervals count once; empty input is 0.
double interval_union(std::vector<std::pair<double, double>> intervals,
                      double lo, double hi);

/// Parse a TraceWriter JSON file. Throws std::runtime_error on malformed
/// input or an unknown schema_version.
std::vector<SpanRecord> load_trace_spans(const std::string& path);

/// Parse an EventLog JSONL file. Throws std::runtime_error on malformed
/// lines, missing required fields, or an unknown schema_version.
std::vector<EpochEvent> load_events(const std::string& path);

/// Join spans and events into the full report. Epoch numbering comes from
/// the events; the i-th "epoch" span on a rank's track is paired with the
/// rank's i-th event. Epochs missing a span on any rank (e.g. truncated
/// traces) are left out of `epochs` — the strategy audit, which needs
/// only the events, still covers them.
AnalysisReport analyze(const std::vector<SpanRecord>& spans,
                       const std::vector<EpochEvent>& events);

}  // namespace dynkge::obs
