// Chrome trace-event recording: TraceWriter collects complete ("X") events
// on a shared monotonic timebase, TraceSpan is the RAII timer that feeds
// it. The JSON output loads directly in Perfetto / chrome://tracing.
//
// Track layout: one pid (0, the process), one tid per logical track —
// the trainer uses tid = rank for the simulated ranks and tid = num_nodes
// for host-side work, the serving layer tid 0. set_thread_name() attaches
// the human-readable track labels via "M" metadata events.
//
// Disabled cost: a TraceSpan constructed with a null writer performs no
// clock read and no allocation — the disabled hot path is two pointer
// checks. Enabled spans take one steady_clock read at each end and a
// short mutex-guarded push.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dynkge::obs {

class TraceWriter {
 public:
  TraceWriter() : epoch_(std::chrono::steady_clock::now()) {}
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Microseconds since this writer was constructed (the trace timebase).
  double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Record one complete event. Thread-safe.
  void add_complete_event(std::string_view name, int tid, double ts_us,
                          double dur_us);

  /// Label a track ("rank 0", "host", ...). Thread-safe.
  void set_thread_name(int tid, const std::string& name);

  std::size_t size() const;

  /// {"traceEvents":[...]} — loadable by Perfetto / chrome://tracing.
  std::string to_json() const;

  /// Write to_json() to `path`. Throws on I/O failure.
  void write(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    int tid = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;
  };

  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<int, std::string> thread_names_;
};

/// Scoped timer: measures construction-to-destruction on the writer's
/// timebase and appends one complete event. A null writer disables the
/// span entirely (no clock reads).
class TraceSpan {
 public:
  TraceSpan(TraceWriter* writer, std::string_view name, int tid)
      : writer_(writer) {
    if (writer_ != nullptr) {
      name_ = name;
      tid_ = tid;
      start_us_ = writer_->now_us();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (writer_ != nullptr) {
      writer_->add_complete_event(name_, tid_, start_us_,
                                  writer_->now_us() - start_us_);
    }
  }

 private:
  TraceWriter* writer_;
  std::string_view name_;
  int tid_ = 0;
  double start_us_ = 0.0;
};

}  // namespace dynkge::obs
