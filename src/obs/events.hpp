// EventLog — append-only JSONL stream for structured run events.
//
// One line per event, each a self-contained JSON object, so a whole
// training run can be replayed and plotted offline (`jq`, pandas,
// `tools/check_telemetry.py`). Writers are cold-path (once per epoch per
// rank); a mutex serializes lines so concurrent ranks never interleave
// bytes within a line.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

namespace dynkge::obs {

/// Version stamped into every telemetry artifact this build writes: each
/// JSONL event line and the trace file's top-level metadata. Consumers
/// (tools/check_telemetry.py, obs/analysis) reject versions they do not
/// understand instead of misreading renamed fields. Bump when an existing
/// field changes meaning; adding fields is backward-compatible.
inline constexpr int kTelemetrySchemaVersion = 1;

class EventLog {
 public:
  /// Open (truncate) `path` for writing. Throws if it cannot be opened.
  explicit EventLog(const std::string& path);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Append one JSON object as its own line, stamping
  /// `"schema_version":N` as its first field. `json` must be a complete
  /// serialized object without a trailing newline. Thread-safe.
  void write_line(const std::string& json);

  std::uint64_t lines_written() const;

  /// Flush buffered lines to disk (also happens on destruction).
  void flush();

 private:
  mutable std::mutex mu_;
  std::ofstream out_;
  std::uint64_t lines_ = 0;
};

}  // namespace dynkge::obs
