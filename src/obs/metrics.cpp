#include "obs/metrics.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/json_writer.hpp"

namespace dynkge::obs {
namespace {

std::string prometheus_name(const std::string& name) {
  std::string out = "dynkge_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string format_double(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

void MetricsRegistry::check_kind(const std::string& name, Kind kind) const {
  const auto it = kinds_.find(name);
  if (it != kinds_.end() && it->second != kind) {
    throw std::invalid_argument(
        "MetricsRegistry: '" + name +
        "' already registered as a different instrument kind");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  check_kind(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    kinds_[name] = Kind::kCounter;
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  check_kind(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    kinds_[name] = Kind::kGauge;
  }
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  check_kind(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<LatencyHistogram>();
    kinds_[name] = Kind::kHistogram;
  }
  return *slot;
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  util::JsonWriter json;
  json.begin_object();

  json.key("counters").begin_object();
  for (const auto& [name, counter] : counters_) {
    json.kv(name, static_cast<std::int64_t>(counter->value()));
  }
  json.end_object();

  json.key("gauges").begin_object();
  for (const auto& [name, gauge] : gauges_) {
    json.kv(name, gauge->value());
  }
  json.end_object();

  json.key("histograms").begin_object();
  for (const auto& [name, histogram] : histograms_) {
    json.key(name).begin_object();
    json.kv("count", static_cast<std::int64_t>(histogram->count()));
    json.kv("total_seconds", histogram->total_seconds());
    json.kv("mean_seconds", histogram->mean_seconds());
    json.kv("p50_seconds", histogram->quantile_seconds(0.50));
    json.kv("p95_seconds", histogram->quantile_seconds(0.95));
    json.kv("p99_seconds", histogram->quantile_seconds(0.99));
    json.key("buckets").begin_array();
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      const std::uint64_t count = histogram->bucket_count(b);
      if (count == 0) continue;
      json.begin_object();
      json.kv("floor_seconds", LatencyHistogram::bucket_floor_seconds(b));
      json.kv("count", static_cast<std::int64_t>(count));
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();

  json.end_object();
  return json.str();
}

std::string MetricsRegistry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + format_double(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      cumulative += histogram->bucket_count(b);
      const double upper = LatencyHistogram::bucket_upper_seconds(b);
      const std::string le =
          b + 1 >= LatencyHistogram::kBuckets ? "+Inf" : format_double(upper);
      out += p + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) +
             "\n";
    }
    out += p + "_sum " + format_double(histogram->total_seconds()) + "\n";
    out += p + "_count " + std::to_string(histogram->count()) + "\n";
  }
  return out;
}

void write_metrics(const MetricsRegistry& registry, const std::string& path) {
  const bool prometheus =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_metrics: cannot open " + path);
  }
  out << (prometheus ? registry.to_prometheus() : registry.to_json() + "\n");
  if (!out) {
    throw std::runtime_error("write_metrics: write failed for " + path);
  }
}

}  // namespace dynkge::obs
