#include "obs/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/events.hpp"
#include "util/json.hpp"
#include "util/json_writer.hpp"

namespace dynkge::obs {
namespace {

constexpr double kUsPerSecond = 1e6;

/// Collectives are the spans the gradient exchange wraps around the
/// modeled transport (grad_exchange.cpp); everything else inside an epoch
/// span is compute or encode/decode work local to the rank.
bool is_collective(const std::string& name) {
  return name.rfind("exchange.", 0) == 0;
}

[[noreturn]] void malformed(const std::string& path, const std::string& why) {
  throw std::runtime_error("analyze: " + path + ": " + why);
}

void check_schema_version(const util::JsonValue& object,
                          const std::string& path) {
  if (!object.has("schema_version")) return;  // pre-versioning artifact
  const double version = object.at("schema_version").number;
  if (static_cast<int>(version) != kTelemetrySchemaVersion) {
    malformed(path, "unsupported schema_version " +
                        std::to_string(static_cast<int>(version)) +
                        " (this build understands " +
                        std::to_string(kTelemetrySchemaVersion) + ")");
  }
}

double number_or(const util::JsonValue& object, const std::string& key,
                 double fallback) {
  return object.has(key) ? object.at(key).number : fallback;
}

}  // namespace

double interval_union(std::vector<std::pair<double, double>> intervals,
                      double lo, double hi) {
  for (auto& [begin, end] : intervals) {
    begin = std::max(begin, lo);
    end = std::min(end, hi);
  }
  std::sort(intervals.begin(), intervals.end());
  double total = 0.0;
  double open_end = lo;  // everything before `lo` is already accounted
  for (const auto& [begin, end] : intervals) {
    if (end <= begin) continue;  // clipped away or empty
    if (begin > open_end) {
      total += end - begin;
      open_end = end;
    } else if (end > open_end) {
      total += end - open_end;
      open_end = end;
    }
  }
  return total;
}

std::vector<SpanRecord> load_trace_spans(const std::string& path) {
  std::ifstream in(path);
  if (!in) malformed(path, "cannot open");
  std::stringstream buffer;
  buffer << in.rdbuf();
  util::JsonValue trace;
  try {
    trace = util::parse_json(buffer.str());
  } catch (const std::exception& error) {
    malformed(path, error.what());
  }
  if (!trace.is_object() || !trace.has("traceEvents") ||
      !trace.at("traceEvents").is_array()) {
    malformed(path, "not a Chrome trace (no traceEvents array)");
  }
  check_schema_version(trace, path);

  std::vector<SpanRecord> spans;
  for (const util::JsonValue& event : trace.at("traceEvents").array) {
    if (!event.is_object() || !event.has("ph")) {
      malformed(path, "trace event without ph");
    }
    const std::string& phase = event.at("ph").string;
    if (phase == "M") continue;  // thread_name metadata
    if (phase != "X") malformed(path, "unexpected event phase " + phase);
    SpanRecord span;
    span.name = event.at("name").string;
    span.tid = static_cast<int>(event.at("tid").number);
    span.ts_us = event.at("ts").number;
    span.dur_us = event.at("dur").number;
    spans.push_back(std::move(span));
  }
  return spans;
}

std::vector<EpochEvent> load_events(const std::string& path) {
  std::ifstream in(path);
  if (!in) malformed(path, "cannot open");
  std::vector<EpochEvent> events;
  std::string line;
  std::size_t number = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.empty()) continue;
    util::JsonValue record;
    try {
      record = util::parse_json(line);
    } catch (const std::exception& error) {
      malformed(path, "line " + std::to_string(number) + ": " +
                          error.what());
    }
    check_schema_version(record, path);
    for (const char* key :
         {"epoch", "rank", "comm_mode", "transport", "probe",
          "switched_to_allgather", "comm_seconds", "sim_seconds"}) {
      if (!record.has(key)) {
        malformed(path, "line " + std::to_string(number) +
                            ": missing key " + key);
      }
    }
    EpochEvent event;
    event.epoch = static_cast<int>(record.at("epoch").number);
    event.rank = static_cast<int>(record.at("rank").number);
    event.comm_mode = record.at("comm_mode").string;
    event.transport = record.at("transport").string;
    event.probe = record.at("probe").boolean;
    event.switched_to_allgather =
        record.at("switched_to_allgather").boolean;
    event.comm_seconds = record.at("comm_seconds").number;
    event.sim_seconds = record.at("sim_seconds").number;
    event.probe_baseline_seconds =
        number_or(record, "probe_baseline_seconds", -1.0);
    events.push_back(std::move(event));
  }
  if (events.empty()) malformed(path, "no events");
  return events;
}

AnalysisReport analyze(const std::vector<SpanRecord>& spans,
                       const std::vector<EpochEvent>& events) {
  AnalysisReport report;

  // Events are authoritative for epoch numbering and rank count.
  std::map<int, std::map<int, const EpochEvent*>> by_epoch;  // epoch->rank
  int max_rank = -1;
  for (const EpochEvent& event : events) {
    by_epoch[event.epoch][event.rank] = &event;
    max_rank = std::max(max_rank, event.rank);
  }
  report.num_ranks = max_rank + 1;
  report.num_epochs = static_cast<int>(by_epoch.size());
  report.comm_mode = events.front().comm_mode;

  // Pair each rank's i-th "epoch" span (by start time) with the rank's
  // i-th event (by epoch number); collectives attribute to the enclosing
  // epoch span by interval overlap.
  std::map<int, std::vector<const SpanRecord*>> epoch_spans;   // by tid
  std::map<int, std::vector<const SpanRecord*>> comm_spans;    // by tid
  for (const SpanRecord& span : spans) {
    if (span.name == "epoch") epoch_spans[span.tid].push_back(&span);
    if (is_collective(span.name)) comm_spans[span.tid].push_back(&span);
  }
  for (auto& [tid, list] : epoch_spans) {
    std::stable_sort(list.begin(), list.end(),
                     [](const SpanRecord* a, const SpanRecord* b) {
                       return a->ts_us < b->ts_us;
                     });
  }

  std::map<int, std::vector<int>> epochs_of_rank;  // sorted epoch numbers
  for (const auto& [epoch, ranks] : by_epoch) {
    for (const auto& [rank, event] : ranks) {
      epochs_of_rank[rank].push_back(epoch);
    }
  }

  for (const auto& [epoch, ranks] : by_epoch) {
    EpochAnalysis analysis;
    analysis.epoch = epoch;
    bool complete = static_cast<int>(ranks.size()) == report.num_ranks;
    double dur_sum = 0.0, dur_max = -1.0, comm_fraction_sum = 0.0;
    for (const auto& [rank, event] : ranks) {
      const auto& order = epochs_of_rank[rank];
      const auto position =
          std::lower_bound(order.begin(), order.end(), epoch) -
          order.begin();
      const auto track = epoch_spans.find(rank);
      if (track == epoch_spans.end() ||
          position >= static_cast<std::ptrdiff_t>(track->second.size())) {
        complete = false;
        break;
      }
      const SpanRecord& span = *track->second[position];
      RankEpochProfile profile;
      profile.rank = rank;
      profile.epoch_seconds = span.dur_us / kUsPerSecond;
      const double begin = span.ts_us;
      const double end = span.ts_us + span.dur_us;

      // Union per collective name, then overall: nested/overlapping
      // spans must count once.
      std::map<std::string, std::vector<std::pair<double, double>>>
          by_name;
      std::vector<std::pair<double, double>> all;
      const auto comm_track = comm_spans.find(rank);
      if (comm_track != comm_spans.end()) {
        for (const SpanRecord* comm : comm_track->second) {
          const double c_end = comm->ts_us + comm->dur_us;
          if (c_end <= begin || comm->ts_us >= end) continue;
          by_name[comm->name].emplace_back(comm->ts_us, c_end);
          all.emplace_back(comm->ts_us, c_end);
        }
      }
      profile.comm_seconds =
          interval_union(std::move(all), begin, end) / kUsPerSecond;
      profile.comm_fraction =
          span.dur_us > 0.0 ? profile.comm_seconds / profile.epoch_seconds
                            : 0.0;
      for (auto& [name, intervals] : by_name) {
        const double seconds =
            interval_union(std::move(intervals), begin, end) / kUsPerSecond;
        profile.collective_seconds[name] = seconds;
        if (seconds > profile.top_collective_seconds) {
          profile.top_collective_seconds = seconds;
          profile.top_collective = name;
        }
      }
      dur_sum += profile.epoch_seconds;
      comm_fraction_sum += profile.comm_fraction;
      if (profile.epoch_seconds > dur_max) {
        dur_max = profile.epoch_seconds;
        analysis.critical_rank = rank;
        analysis.critical_seconds = profile.epoch_seconds;
        analysis.blocking_collective = profile.top_collective;
        analysis.blocking_seconds = profile.top_collective_seconds;
      }
      analysis.ranks.push_back(std::move(profile));
    }
    if (!complete) continue;  // truncated trace: skip, audit still covers
    const double n = static_cast<double>(analysis.ranks.size());
    const double mean = dur_sum / n;
    analysis.straggler_skew = mean > 0.0 ? dur_max / mean : 1.0;
    analysis.comm_fraction_mean = comm_fraction_sum / n;
    report.epochs.push_back(std::move(analysis));
  }

  // Strategy audit over rank 0's records (the costs are allreduced, so
  // every rank logged identical numbers).
  std::vector<const EpochEvent*> rank0;
  for (const auto& [epoch, ranks] : by_epoch) {
    const auto it = ranks.find(0);
    if (it != ranks.end()) rank0.push_back(it->second);
  }
  const auto trace_collective_max =
      [&](int epoch, const std::string& name) {
        // Cluster cost of `name` during `epoch`: the slowest rank's union
        // (the blocking view, matching the allreduced modeled max).
        double worst = -1.0;
        for (const EpochAnalysis& analysis : report.epochs) {
          if (analysis.epoch != epoch) continue;
          for (const RankEpochProfile& profile : analysis.ranks) {
            const auto it = profile.collective_seconds.find(name);
            if (it != profile.collective_seconds.end()) {
              worst = std::max(worst, it->second);
            }
          }
        }
        return worst;
      };
  for (std::size_t i = 0; i < rank0.size(); ++i) {
    const EpochEvent& event = *rank0[i];
    if (!event.probe) continue;
    ProbeAudit audit;
    audit.epoch = event.epoch;
    audit.probe_comm_seconds = event.comm_seconds;
    audit.baseline_comm_seconds = event.probe_baseline_seconds;
    if (audit.baseline_comm_seconds < 0.0) {
      // Older logs lack the field: recover the baseline the selector saw
      // from the most recent all-reduce epoch before the probe.
      for (std::size_t back = i; back-- > 0;) {
        if (rank0[back]->transport == "allreduce") {
          audit.baseline_comm_seconds = rank0[back]->comm_seconds;
          break;
        }
      }
    }
    audit.switched = event.switched_to_allgather;
    audit.expected_switch =
        audit.baseline_comm_seconds >= 0.0 &&
        audit.probe_comm_seconds < audit.baseline_comm_seconds;
    audit.contradicted = audit.switched != audit.expected_switch;
    if (audit.contradicted) ++report.contradicted_decisions;

    audit.trace_allgather_seconds =
        trace_collective_max(event.epoch, "exchange.allgather");
    for (std::size_t back = i; back-- > 0;) {
      if (rank0[back]->transport == "allreduce") {
        audit.trace_allreduce_seconds =
            trace_collective_max(rank0[back]->epoch, "exchange.allreduce");
        break;
      }
    }
    if (audit.trace_allgather_seconds >= 0.0 &&
        audit.trace_allreduce_seconds >= 0.0) {
      const bool wall_prefers_allgather = audit.trace_allgather_seconds <
                                          audit.trace_allreduce_seconds;
      audit.wall_clock_agrees =
          wall_prefers_allgather == audit.expected_switch;
    }
    report.audit.push_back(std::move(audit));
  }

  return report;
}

std::string AnalysisReport::to_json() const {
  util::JsonWriter json;
  json.begin_object();
  json.kv("schema_version", kTelemetrySchemaVersion);
  json.kv("num_ranks", num_ranks);
  json.kv("num_epochs", num_epochs);
  json.kv("comm_mode", comm_mode);
  json.key("epochs").begin_array();
  for (const EpochAnalysis& epoch : epochs) {
    json.begin_object();
    json.kv("epoch", epoch.epoch);
    json.kv("critical_rank", epoch.critical_rank);
    json.kv("critical_seconds", epoch.critical_seconds);
    json.kv("blocking_collective", epoch.blocking_collective);
    json.kv("blocking_seconds", epoch.blocking_seconds);
    json.kv("straggler_skew", epoch.straggler_skew);
    json.kv("comm_fraction_mean", epoch.comm_fraction_mean);
    json.key("ranks").begin_array();
    for (const RankEpochProfile& rank : epoch.ranks) {
      json.begin_object();
      json.kv("rank", rank.rank);
      json.kv("epoch_seconds", rank.epoch_seconds);
      json.kv("comm_seconds", rank.comm_seconds);
      json.kv("comm_fraction", rank.comm_fraction);
      json.kv("top_collective", rank.top_collective);
      json.kv("top_collective_seconds", rank.top_collective_seconds);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.key("strategy_audit").begin_object();
  json.key("probes").begin_array();
  for (const ProbeAudit& probe : audit) {
    json.begin_object();
    json.kv("epoch", probe.epoch);
    json.kv("probe_comm_seconds", probe.probe_comm_seconds);
    json.kv("baseline_comm_seconds", probe.baseline_comm_seconds);
    json.kv("switched", probe.switched);
    json.kv("expected_switch", probe.expected_switch);
    json.kv("contradicted", probe.contradicted);
    json.kv("trace_allgather_seconds", probe.trace_allgather_seconds);
    json.kv("trace_allreduce_seconds", probe.trace_allreduce_seconds);
    json.kv("wall_clock_agrees", probe.wall_clock_agrees);
    json.end_object();
  }
  json.end_array();
  json.kv("contradicted_decisions", contradicted_decisions);
  json.end_object();
  json.end_object();
  return json.str();
}

std::string AnalysisReport::to_table() const {
  std::ostringstream out;
  char line[256];
  out << "critical path (" << num_ranks << " ranks, " << num_epochs
      << " epochs, comm mode " << comm_mode << ")\n";
  out << "epoch  crit-rank  crit-ms   blocking collective     comm%  "
         "skew\n";
  for (const EpochAnalysis& epoch : epochs) {
    std::snprintf(
        line, sizeof(line), "%5d  %9d  %7.3f   %-20s  %5.1f  %.3f\n",
        epoch.epoch, epoch.critical_rank, epoch.critical_seconds * 1e3,
        epoch.blocking_collective.empty() ? "-"
                                          : epoch.blocking_collective.c_str(),
        epoch.comm_fraction_mean * 100.0, epoch.straggler_skew);
    out << line;
  }
  out << "\nstrategy audit (" << audit.size() << " probes, "
      << contradicted_decisions << " contradicted)\n";
  if (!audit.empty()) {
    out << "epoch  probe-comm-s  baseline-s  decision  expected  verdict  "
           "wall-clock\n";
    for (const ProbeAudit& probe : audit) {
      std::snprintf(line, sizeof(line),
                    "%5d  %12.6f  %10.6f  %-8s  %-8s  %-7s  %s\n",
                    probe.epoch, probe.probe_comm_seconds,
                    probe.baseline_comm_seconds,
                    probe.switched ? "switch" : "stay",
                    probe.expected_switch ? "switch" : "stay",
                    probe.contradicted ? "FLAG" : "ok",
                    probe.wall_clock_agrees ? "agrees" : "disagrees");
      out << line;
    }
  }
  return out.str();
}

}  // namespace dynkge::obs
