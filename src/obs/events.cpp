#include "obs/events.hpp"

#include <stdexcept>

namespace dynkge::obs {

EventLog::EventLog(const std::string& path) : out_(path, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("EventLog: cannot open " + path);
  }
}

void EventLog::write_line(const std::string& json) {
  const std::lock_guard<std::mutex> lock(mu_);
  out_ << json << '\n';
  ++lines_;
}

std::uint64_t EventLog::lines_written() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

void EventLog::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  out_.flush();
}

}  // namespace dynkge::obs
