#include "obs/events.hpp"

#include <stdexcept>

namespace dynkge::obs {

EventLog::EventLog(const std::string& path) : out_(path, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("EventLog: cannot open " + path);
  }
}

void EventLog::write_line(const std::string& json) {
  const std::lock_guard<std::mutex> lock(mu_);
  // Stamp the schema version as the first field so every writer (trainer,
  // serving, streaming) emits versioned records without carrying the key
  // itself. Non-object lines pass through untouched.
  if (json.size() >= 2 && json.front() == '{') {
    out_ << "{\"schema_version\":" << kTelemetrySchemaVersion;
    if (json[1] != '}') out_ << ',';
    out_.write(json.data() + 1, static_cast<std::streamsize>(json.size() - 1));
    out_ << '\n';
  } else {
    out_ << json << '\n';
  }
  ++lines_;
}

std::uint64_t EventLog::lines_written() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

void EventLog::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  out_.flush();
}

}  // namespace dynkge::obs
