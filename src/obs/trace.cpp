#include "obs/trace.hpp"

#include <fstream>
#include <stdexcept>

#include "obs/events.hpp"
#include "util/json_writer.hpp"

namespace dynkge::obs {

void TraceWriter::add_complete_event(std::string_view name, int tid,
                                     double ts_us, double dur_us) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::string(name), tid, ts_us, dur_us});
}

void TraceWriter::set_thread_name(int tid, const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  thread_names_[tid] = name;
}

std::size_t TraceWriter::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceWriter::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  util::JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();
  for (const auto& [tid, name] : thread_names_) {
    json.begin_object();
    json.kv("name", "thread_name");
    json.kv("ph", "M");
    json.kv("pid", 0);
    json.kv("tid", tid);
    json.key("args").begin_object();
    json.kv("name", name);
    json.end_object();
    json.end_object();
  }
  for (const Event& event : events_) {
    json.begin_object();
    json.kv("name", event.name);
    json.kv("cat", "dynkge");
    json.kv("ph", "X");
    json.kv("pid", 0);
    json.kv("tid", event.tid);
    json.kv("ts", event.ts_us);
    json.kv("dur", event.dur_us);
    json.end_object();
  }
  json.end_array();
  json.kv("displayTimeUnit", "ms");
  // Extra top-level keys are metadata in the Chrome trace format; viewers
  // ignore them, our own consumers use them to reject incompatible files.
  json.kv("schema_version", kTelemetrySchemaVersion);
  json.end_object();
  return json.str();
}

void TraceWriter::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("TraceWriter::write: cannot open " + path);
  }
  out << to_json() << '\n';
  if (!out) {
    throw std::runtime_error("TraceWriter::write: write failed for " + path);
  }
}

}  // namespace dynkge::obs
