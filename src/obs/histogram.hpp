// Log-bucketed duration histogram cheap enough to sit on any hot path.
//
// Buckets are log-spaced (powers of two in microseconds, 1us .. ~8.6s) so
// one array of atomics covers sub-microsecond cache hits and multi-second
// cold scans with bounded relative error. record() is a single relaxed
// fetch_add; percentiles are computed on read by walking the cumulative
// counts and interpolating inside the winning bucket.
//
// Promoted out of serve/ so the MetricsRegistry can own named histograms
// shared by training and serving; serve::LatencyHistogram remains as an
// alias (serve/metrics.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

namespace dynkge::obs {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 24;

  /// Record one observation, in seconds. Thread-safe, wait-free.
  void record(double seconds) {
    buckets_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Sum in nanoseconds so a plain integer atomic suffices.
    total_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                        std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  double total_seconds() const {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  double mean_seconds() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : total_seconds() / static_cast<double>(n);
  }

  /// Observations recorded into bucket `b` so far.
  std::uint64_t bucket_count(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Bucket b covers [floor(b), floor(b+1)) seconds (2^b microseconds);
  /// bucket 0 also absorbs everything below 1us, the last bucket
  /// everything above ~8.6s.
  static double bucket_floor_seconds(std::size_t b) {
    return std::ldexp(1.0, static_cast<int>(b)) * 1e-6;  // 2^b microseconds
  }

  /// Upper edge of bucket b (the Prometheus `le` label); +inf for the
  /// overflow bucket.
  static double bucket_upper_seconds(std::size_t b) {
    if (b + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
    return bucket_floor_seconds(b + 1);
  }

  /// Latency at quantile q in [0, 1], linearly interpolated inside the
  /// winning bucket. Concurrent record() calls make the answer approximate
  /// (as with any live histogram); 0 when empty.
  double quantile_seconds(double q) const {
    std::array<std::uint64_t, kBuckets> snapshot;
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snapshot[b] = buckets_[b].load(std::memory_order_relaxed);
      total += snapshot[b];
    }
    if (total == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double target = q * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (snapshot[b] == 0) continue;
      const double before = static_cast<double>(cumulative);
      cumulative += snapshot[b];
      if (static_cast<double>(cumulative) >= target) {
        const double fraction =
            (target - before) / static_cast<double>(snapshot[b]);
        const double lo = bucket_floor_seconds(b);
        const double hi = bucket_floor_seconds(b + 1);
        return lo + (hi - lo) * fraction;
      }
    }
    return bucket_floor_seconds(kBuckets);
  }

  /// "p50 12.3us  p95 1.2ms  p99 3.4ms" — the standard serving triple.
  std::string percentile_summary() const {
    return "p50 " + format_seconds(quantile_seconds(0.50)) + "  p95 " +
           format_seconds(quantile_seconds(0.95)) + "  p99 " +
           format_seconds(quantile_seconds(0.99));
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
  }

  static std::string format_seconds(double seconds) {
    char buffer[32];
    if (seconds < 1e-3) {
      std::snprintf(buffer, sizeof(buffer), "%.1fus", seconds * 1e6);
    } else if (seconds < 1.0) {
      std::snprintf(buffer, sizeof(buffer), "%.2fms", seconds * 1e3);
    } else {
      std::snprintf(buffer, sizeof(buffer), "%.2fs", seconds);
    }
    return buffer;
  }

 private:
  static std::size_t bucket_index(double seconds) {
    const double us = seconds * 1e6;
    if (us < 1.0) return 0;
    const auto b = static_cast<std::size_t>(std::log2(us));
    return b >= kBuckets ? kBuckets - 1 : b;
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
};

}  // namespace dynkge::obs
