// TelemetrySinks — the bundle of optional observability outputs a
// subsystem accepts (all non-owning, all default-off).
//
// Null members are disabled: every instrumentation site guards on the
// pointer, so a default-constructed TelemetrySinks costs a handful of
// pointer checks per step and nothing else. Telemetry only *reads*
// training state — it never touches RNG streams or numerics — so enabling
// any sink leaves results bit-identical (asserted by tests).
#pragma once

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dynkge::obs {

struct TelemetrySinks {
  MetricsRegistry* metrics = nullptr;  ///< counters / gauges / histograms
  TraceWriter* trace = nullptr;        ///< Chrome trace-event spans
  EventLog* events = nullptr;          ///< per-epoch JSONL stream

  bool enabled() const {
    return metrics != nullptr || trace != nullptr || events != nullptr;
  }
};

}  // namespace dynkge::obs
