#include "serve/query_cache.hpp"

#include <algorithm>

namespace dynkge::serve {

QueryCache::QueryCache(std::size_t capacity, std::size_t num_shards)
    : capacity_(capacity) {
  const std::size_t shards =
      std::max<std::size_t>(1, std::min(num_shards, std::max<std::size_t>(
                                                        1, capacity)));
  per_shard_capacity_ =
      capacity == 0 ? 0 : std::max<std::size_t>(1, capacity / shards);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

QueryCache::ResultPtr QueryCache::get(const TopKQuery& query) {
  const std::uint64_t key = pack_query(query);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->result;
}

void QueryCache::put(const TopKQuery& query, ResultPtr result) {
  if (per_shard_capacity_ == 0) return;
  const std::uint64_t key = pack_query(query);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->result = std::move(result);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{key, std::move(result)});
  shard.index.emplace(key, shard.lru.begin());
}

void QueryCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

CacheStats QueryCache::stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    stats.hits += shard->hits.load(std::memory_order_relaxed);
    stats.misses += shard->misses.load(std::memory_order_relaxed);
    stats.evictions += shard->evictions.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace dynkge::serve
