#include "serve/query_cache.hpp"

#include <algorithm>
#include <unordered_set>

namespace dynkge::serve {

QueryCache::QueryCache(std::size_t capacity, std::size_t num_shards)
    : capacity_(capacity) {
  const std::size_t shards =
      std::max<std::size_t>(1, std::min(num_shards, std::max<std::size_t>(
                                                        1, capacity)));
  per_shard_capacity_ =
      capacity == 0 ? 0 : std::max<std::size_t>(1, capacity / shards);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

QueryCache::ResultPtr QueryCache::get(const TopKQuery& query,
                                      std::uint64_t current_version) {
  const std::uint64_t key = pack_query(query);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (max_version_lag_ != 0 &&
      it->second->version + max_version_lag_ < current_version) {
    // Aged past the staleness bound: the entry survived entity-keyed
    // invalidation for too many publishes; force a rescore.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->result;
}

void QueryCache::put(const TopKQuery& query, ResultPtr result,
                     std::uint64_t version) {
  if (per_shard_capacity_ == 0) return;
  const std::uint64_t key = pack_query(query);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->result = std::move(result);
    it->second->version = version;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{key, std::move(result), version});
  shard.index.emplace(key, shard.lru.begin());
}

std::uint64_t QueryCache::clear() {
  std::uint64_t dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    dropped += shard->lru.size();
    shard->lru.clear();
    shard->index.clear();
  }
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  invalidated_entries_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

std::uint64_t QueryCache::invalidate_entities(
    std::span<const kge::EntityId> touched) {
  const std::unordered_set<kge::EntityId> set(touched.begin(), touched.end());
  const auto depends_on_touched = [&set](const Entry& entry) {
    if (set.count(query_entity_of(entry.key)) != 0) return true;
    for (const ScoredEntity& scored : *entry.result) {
      if (set.count(scored.entity) != 0) return true;
    }
    return false;
  };

  std::uint64_t dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (depends_on_touched(*it)) {
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  invalidated_entries_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

CacheStats QueryCache::stats() const {
  CacheStats stats;
  for (const auto& shard : shards_) {
    stats.hits += shard->hits.load(std::memory_order_relaxed);
    stats.misses += shard->misses.load(std::memory_order_relaxed);
    stats.evictions += shard->evictions.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.entries += shard->lru.size();
  }
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.invalidated_entries =
      invalidated_entries_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace dynkge::serve
