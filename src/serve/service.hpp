// InferenceService — the serving front door.
//
// Owns a versioned snapshot store, a thread pool, a TopKScorer and a
// QueryCache, and answers top-k link-prediction queries:
//
//   * topk(query)        — single query: cache lookup, then a parallel
//                          blocked scan across the whole pool on a miss.
//   * topk_batch(batch)  — micro-batching: deduplicates identical queries
//                          inside the batch (skewed traffic makes this
//                          common), answers the distinct misses by fanning
//                          them out across the pool one query per task
//                          (better throughput than sequentially
//                          parallelizing each), then fills every slot.
//
// Streaming updates. The model lives in a stream::SnapshotStore: every
// query (or batch) pins the current version lock-free, scores entirely
// against that immutable snapshot, and tags its cache entries with the
// version. The ONLY mutation routes are swap_model() / reload_checkpoint()
// (full swap) and a stream::DeltaIngestor publishing into store() (delta
// refresh) — both go through SnapshotStore::publish, so a swap can never
// race in-flight scoring: readers finish on the version they pinned. A
// publish observer registered here invalidates the cache (full clear for a
// swap, entity-keyed for a delta) and feeds the serve.cache.invalidations
// / serve.cache.invalidated_entries counters.
//
// Admission control: with ServiceConfig::max_inflight set, reads beyond
// the in-flight limit are shed immediately — topk() returns nullptr,
// topk_batch() nullptr slots — instead of queueing into a latency cliff.
//
// Every answered query is timed into a fixed-bucket log histogram;
// snapshot() returns latency percentiles, throughput, cache and shed
// counters plus the serving version. Thread-safe: any number of client
// threads may call topk()/topk_batch() concurrently with swaps/publishes.
//
// Telemetry: ServiceConfig::metrics moves the latency histogram into a
// shared obs::MetricsRegistry ("serve.latency_seconds", plus query/batch/
// shed/invalidation counters); ServiceConfig::trace records one
// "serve.batch" span per topk_batch call. Both are optional and
// default-off.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kge/dataset.hpp"
#include "kge/model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/metrics.hpp"
#include "serve/query_cache.hpp"
#include "serve/scorer.hpp"
#include "serve/thread_pool.hpp"
#include "stream/admission.hpp"
#include "stream/snapshot_store.hpp"

namespace dynkge::serve {

struct ServiceConfig {
  int num_threads = 4;             ///< worker pool size (>= 1)
  std::size_t cache_capacity = 4096;  ///< total cached results; 0 disables
  std::size_t cache_shards = 8;
  std::size_t block_size = 4096;   ///< entities per scoring block

  /// Reads allowed in flight at once; beyond this, queries are shed
  /// (topk returns nullptr). 0 = unlimited, never shed.
  std::size_t max_inflight = 0;
  /// Delta publishes yield while read depth exceeds this (see
  /// stream::AdmissionConfig). 0 = never defer.
  std::size_t defer_updates_above = 0;
  /// Cache entries older than this many publishes are treated as misses
  /// (bounds staleness from the entity-keyed invalidation gap; see
  /// QueryCache). 0 = unbounded.
  std::uint64_t cache_max_version_lag = 0;

  /// Optional shared metrics registry: latency is recorded into its
  /// "serve.latency_seconds" histogram (with serve.queries/serve.batches/
  /// serve.shed/serve.cache.invalidations counters) instead of a
  /// service-private histogram. Must outlive the service.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional trace writer: topk_batch emits "serve.batch" spans.
  obs::TraceWriter* trace = nullptr;
};

struct ServiceSnapshot {
  std::uint64_t queries = 0;       ///< total queries answered
  std::uint64_t shed = 0;          ///< queries rejected by admission
  std::uint64_t model_version = 0; ///< snapshot version currently served
  std::uint64_t publishes = 0;     ///< swaps + delta refreshes accepted
  double mean_latency_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  CacheStats cache;

  std::string summary() const;
};

class InferenceService {
 public:
  /// Serve `model` as snapshot version 1. `dataset` (optional) enables
  /// known-triple filtering; both must outlive the service unless
  /// ownership is transferred via the unique_ptr overload /
  /// from_checkpoint. NOTE: with the non-owning overload the caller must
  /// not mutate the model afterwards — publish a copy via swap_model()
  /// instead.
  InferenceService(const kge::KgeModel& model, const kge::Dataset* dataset,
                   const ServiceConfig& config = {});

  /// Owning variant: the service keeps the model alive (until it is
  /// rotated out of the snapshot ring by later publishes).
  InferenceService(std::unique_ptr<kge::KgeModel> model,
                   const kge::Dataset* dataset,
                   const ServiceConfig& config = {});

  /// Load a checkpoint written by kge::save_model and serve it.
  static std::unique_ptr<InferenceService> from_checkpoint(
      const std::string& path, const kge::Dataset* dataset = nullptr,
      const ServiceConfig& config = {});

  /// Answer one query (cache, then parallel scan on a miss). The returned
  /// pointer is immutable and stays valid after eviction, invalidation or
  /// any number of swaps. Returns nullptr iff the query was shed by
  /// admission control.
  QueryCache::ResultPtr topk(const TopKQuery& query);

  /// Answer a batch; results[i] corresponds to queries[i]. Duplicate
  /// queries are scored once; the whole batch is answered from one pinned
  /// snapshot version. If admission sheds the batch, every slot is
  /// nullptr.
  std::vector<QueryCache::ResultPtr> topk_batch(
      std::span<const TopKQuery> queries);

  /// Atomically replace the served model (zero-downtime: in-flight reads
  /// finish on the version they pinned). Clears the query cache via the
  /// publish observer. Returns the new version number.
  std::uint64_t swap_model(std::unique_ptr<kge::KgeModel> model);

  /// swap_model() from a checkpoint written by kge::save_model.
  std::uint64_t reload_checkpoint(const std::string& path);

  /// Version currently being served.
  std::uint64_t current_version() const { return store_.current_version(); }

  /// The snapshot store — wire a stream::DeltaIngestor to it for
  /// incremental refreshes; its publishes flow through the same observer
  /// (entity-keyed invalidation) as swap_model().
  stream::SnapshotStore& store() { return store_; }
  const stream::SnapshotStore& store() const { return store_; }

  stream::AdmissionController& admission() { return admission_; }

  /// Latency / throughput / cache counters since construction (or the
  /// last reset_metrics()).
  ServiceSnapshot snapshot() const;
  void reset_metrics();

  /// The current snapshot's model. Only safe for inspection while no
  /// concurrent publishes run; request paths pin via store().acquire()
  /// instead.
  const kge::KgeModel& model() const { return *store_.acquire().model; }
  int num_threads() const { return static_cast<int>(pool_.size()); }

 private:
  QueryCache::ResultPtr scored_or_cached(const TopKQuery& query,
                                         const stream::PinnedModel& pin,
                                         bool parallel);
  void on_publish(std::uint64_t version,
                  const std::vector<kge::EntityId>& touched);
  void record_latency(double seconds, std::size_t queries);
  void wire(const ServiceConfig& config);

  stream::SnapshotStore store_;
  stream::AdmissionController admission_;
  ThreadPool pool_;
  TopKScorer scorer_;
  QueryCache cache_;
  LatencyHistogram own_latency_;
  /// Points at own_latency_, or at the registry-owned histogram when
  /// ServiceConfig::metrics was given (the migrated serve histogram).
  LatencyHistogram* latency_;
  obs::Counter* query_counter_ = nullptr;
  obs::Counter* batch_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* invalidation_counter_ = nullptr;
  obs::Counter* invalidated_entries_counter_ = nullptr;
  obs::TraceWriter* trace_ = nullptr;
};

}  // namespace dynkge::serve
