// InferenceService — the serving front door.
//
// Owns a loaded model, a thread pool, a TopKScorer and a QueryCache, and
// answers top-k link-prediction queries:
//
//   * topk(query)        — single query: cache lookup, then a parallel
//                          blocked scan across the whole pool on a miss.
//   * topk_batch(batch)  — micro-batching: deduplicates identical queries
//                          inside the batch (skewed traffic makes this
//                          common), answers the distinct misses by fanning
//                          them out across the pool one query per task
//                          (better throughput than sequentially
//                          parallelizing each), then fills every slot.
//
// Every query is timed into a fixed-bucket log histogram; snapshot()
// returns latency percentiles, throughput and cache counters. Thread-safe:
// any number of client threads may call topk()/topk_batch() concurrently.
//
// Telemetry: ServiceConfig::metrics moves the latency histogram into a
// shared obs::MetricsRegistry ("serve.latency_seconds", plus query/batch
// counters); ServiceConfig::trace records one "serve.batch" span per
// topk_batch call. Both are optional and default-off.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kge/dataset.hpp"
#include "kge/model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/metrics.hpp"
#include "serve/query_cache.hpp"
#include "serve/scorer.hpp"
#include "serve/thread_pool.hpp"

namespace dynkge::serve {

struct ServiceConfig {
  int num_threads = 4;             ///< worker pool size (>= 1)
  std::size_t cache_capacity = 4096;  ///< total cached results; 0 disables
  std::size_t cache_shards = 8;
  std::size_t block_size = 4096;   ///< entities per scoring block

  /// Optional shared metrics registry: latency is recorded into its
  /// "serve.latency_seconds" histogram (with serve.queries/serve.batches
  /// counters) instead of a service-private histogram. Must outlive the
  /// service.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional trace writer: topk_batch emits "serve.batch" spans.
  obs::TraceWriter* trace = nullptr;
};

struct ServiceSnapshot {
  std::uint64_t queries = 0;       ///< total queries answered
  double mean_latency_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  CacheStats cache;

  std::string summary() const;
};

class InferenceService {
 public:
  /// Serve `model`. `dataset` (optional) enables known-triple filtering;
  /// both must outlive the service unless ownership is transferred via
  /// the unique_ptr overload / from_checkpoint.
  InferenceService(const kge::KgeModel& model, const kge::Dataset* dataset,
                   const ServiceConfig& config = {});

  /// Owning variant: the service keeps the model alive.
  InferenceService(std::unique_ptr<kge::KgeModel> model,
                   const kge::Dataset* dataset,
                   const ServiceConfig& config = {});

  /// Load a checkpoint written by kge::save_model and serve it.
  static std::unique_ptr<InferenceService> from_checkpoint(
      const std::string& path, const kge::Dataset* dataset = nullptr,
      const ServiceConfig& config = {});

  /// Answer one query (cache, then parallel scan on a miss). The returned
  /// pointer is immutable and stays valid after eviction or clear().
  QueryCache::ResultPtr topk(const TopKQuery& query);

  /// Answer a batch; results[i] corresponds to queries[i]. Duplicate
  /// queries are scored once.
  std::vector<QueryCache::ResultPtr> topk_batch(
      std::span<const TopKQuery> queries);

  /// Latency / throughput / cache counters since construction (or the
  /// last reset_metrics()).
  ServiceSnapshot snapshot() const;
  void reset_metrics();

  /// Drop cached results (call after mutating the model's embeddings).
  void invalidate_cache() { cache_.clear(); }

  const kge::KgeModel& model() const { return *model_; }
  int num_threads() const { return static_cast<int>(pool_.size()); }

 private:
  QueryCache::ResultPtr scored_or_cached(const TopKQuery& query,
                                         bool parallel);
  void record_latency(double seconds, std::size_t queries);

  std::unique_ptr<kge::KgeModel> owned_model_;
  const kge::KgeModel* model_;
  ThreadPool pool_;
  TopKScorer scorer_;
  QueryCache cache_;
  LatencyHistogram own_latency_;
  /// Points at own_latency_, or at the registry-owned histogram when
  /// ServiceConfig::metrics was given (the migrated serve histogram).
  LatencyHistogram* latency_;
  obs::Counter* query_counter_ = nullptr;
  obs::Counter* batch_counter_ = nullptr;
  obs::TraceWriter* trace_ = nullptr;
};

}  // namespace dynkge::serve
