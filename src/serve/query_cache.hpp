// Sharded LRU cache for top-k query results.
//
// Production link-prediction traffic is heavily skewed — a few (entity,
// relation) pairs dominate (popular pages, trending items) — so a small
// LRU in front of the scorer absorbs most of the scans. The cache is
// sharded by key hash: each shard has its own mutex, hash map and
// intrusive LRU list, so concurrent lookups from the service's worker
// threads contend only when they hash to the same shard. Values are
// shared_ptr<const TopKResult>: a hit hands out a reference without
// copying the result vector, and eviction never invalidates a result a
// client still holds.
//
// Staleness under streaming updates. Every entry records the snapshot
// version it was computed from. Three mechanisms keep entries honest:
//
//  * clear() — full drop, for model swaps where everything changed.
//  * invalidate_entities(touched) — entity-keyed drop, for delta
//    refreshes: an entry is removed when its query-side entity or any
//    entity in its result list was touched. This is exact for every
//    cached score; the one conservative gap is a touched entity that was
//    *outside* a cached top-k and would now enter it, which is why
//    streaming deployments also set a version lag bound.
//  * set_max_version_lag(n) — get() treats entries older than n publishes
//    as misses (and erases them), bounding how long the gap above can
//    persist. 0 disables the bound (static serving).
//
// Counters (hits, misses, evictions, invalidations, invalidated entries,
// size) are relaxed atomics aggregated across shards.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "serve/scorer.hpp"

namespace dynkge::serve {

/// Pack the query identity into one 64-bit key. Field widths follow
/// kge::pack_triple: 21 bits for entity and relation ids (enough for
/// FB250K-scale graphs with huge headroom), 16 for k, 1 for direction,
/// 1 for the filter flag.
constexpr std::uint64_t pack_query(const TopKQuery& q) noexcept {
  constexpr std::uint64_t kIdMask = (1ULL << 21) - 1;
  return (static_cast<std::uint64_t>(q.entity) & kIdMask) |
         ((static_cast<std::uint64_t>(q.relation) & kIdMask) << 21) |
         ((static_cast<std::uint64_t>(q.k) & 0xFFFF) << 42) |
         (static_cast<std::uint64_t>(q.direction == Direction::kHead) << 58) |
         (static_cast<std::uint64_t>(q.filter_known) << 59);
}

/// The fixed (query-side) entity a packed key was built from.
constexpr kge::EntityId query_entity_of(std::uint64_t key) noexcept {
  return static_cast<kge::EntityId>(key & ((1ULL << 21) - 1));
}

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t invalidations = 0;        ///< clear() + invalidate_entities()
  std::uint64_t invalidated_entries = 0;  ///< entries those calls dropped

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class QueryCache {
 public:
  using ResultPtr = std::shared_ptr<const TopKResult>;

  /// `capacity` is the total entry budget, split evenly across
  /// `num_shards` (each shard gets at least one slot). capacity == 0
  /// disables the cache: get() always misses, put() is a no-op.
  explicit QueryCache(std::size_t capacity, std::size_t num_shards = 8);

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// nullptr on miss; on hit the entry moves to most-recently-used.
  /// `current_version` is the snapshot version the caller serves from:
  /// with a version-lag bound set, entries computed too many publishes
  /// ago are dropped and reported as misses. Pass 0 (default) when not
  /// serving versioned snapshots.
  ResultPtr get(const TopKQuery& query, std::uint64_t current_version = 0);

  /// Insert or refresh, recording the snapshot `version` the result was
  /// computed from. Evicts the least-recently-used entry of the target
  /// shard when that shard is full.
  void put(const TopKQuery& query, ResultPtr result,
           std::uint64_t version = 0);

  /// Drop all entries (model swap). Counts one invalidation plus every
  /// dropped entry; returns the number dropped. Hit/miss counters are
  /// kept.
  std::uint64_t clear();

  /// Entity-keyed invalidation (delta refresh): drop entries whose
  /// query-side entity or any result entity is in `touched`. Returns the
  /// number of entries dropped.
  std::uint64_t invalidate_entities(std::span<const kge::EntityId> touched);

  /// Bound entry age to `lag` publishes (0 = unbounded). Not thread-safe
  /// against concurrent get(): set during wiring.
  void set_max_version_lag(std::uint64_t lag) { max_version_lag_ = lag; }
  std::uint64_t max_version_lag() const { return max_version_lag_; }

  CacheStats stats() const;

  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::uint64_t key;
    ResultPtr result;
    std::uint64_t version;
  };

  struct Shard {
    std::mutex mutex;
    // LRU list, most-recent at front; map points into the list.
    std::list<Entry> lru;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
  };

  Shard& shard_for(std::uint64_t key) {
    // splitmix-style finalizer: pack_query keys differ in low bits only
    // for nearby ids, so mix before taking the shard index.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return *shards_[(z ^ (z >> 31)) % shards_.size()];
  }

  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::uint64_t max_version_lag_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> invalidated_entries_{0};
};

}  // namespace dynkge::serve
