// Serving alias for the shared observability histogram.
//
// The latency histogram that used to live here was promoted to
// obs::LatencyHistogram (src/obs/histogram.hpp) so the unified
// MetricsRegistry can own named histograms shared by training and
// serving; the serving layer keeps this alias for source compatibility.
// When ServiceConfig::metrics is set, InferenceService records into a
// registry-owned histogram ("serve.latency_seconds") instead of a
// private instance — see obs/metrics.hpp for the snapshot formats.
#pragma once

#include "obs/histogram.hpp"

namespace dynkge::serve {

using LatencyHistogram = obs::LatencyHistogram;

}  // namespace dynkge::serve
