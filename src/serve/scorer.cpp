#include "serve/scorer.hpp"

#include <algorithm>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

namespace dynkge::serve {
namespace {

/// Rank order: a is weaker than b if it scores lower, ties resolved so
/// that the larger id loses (rank order prefers smaller ids on equal
/// score).
bool weaker(const ScoredEntity& a, const ScoredEntity& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.entity > b.entity;
}

/// Heap comparator for std::{push,pop}_heap, which keep the *greatest*
/// element (under the comparator) at front: inverting `weaker` makes the
/// front the weakest candidate — the one a bounded top-k heap evicts.
bool stronger(const ScoredEntity& a, const ScoredEntity& b) {
  return weaker(b, a);
}

void validate(const TopKQuery& query, const kge::KgeModel& model) {
  if (query.k <= 0) throw std::invalid_argument("TopKScorer: k <= 0");
  if (query.entity < 0 || query.entity >= model.num_entities() ||
      query.relation < 0 || query.relation >= model.num_relations()) {
    throw std::out_of_range("TopKScorer: entity/relation out of range");
  }
}

}  // namespace

void TopKScorer::scan_range(const TopKQuery& query, const kge::KgeModel& model,
                            kge::EntityId begin, kge::EntityId end,
                            TopKResult& out) const {
  if (begin >= end) return;
  const bool filter =
      query.filter_known && dataset_ != nullptr;
  const auto k = static_cast<std::size_t>(query.k);

  // `heap` holds the best <= k candidates seen so far, weakest at front.
  TopKResult heap;
  heap.reserve(k + 1);
  const auto gt_weakest = [&](const ScoredEntity& c) {
    return heap.size() < k || weaker(heap.front(), c);
  };

  std::vector<double> scores(block_size_);
  for (kge::EntityId block = begin; block < end;
       block += static_cast<kge::EntityId>(block_size_)) {
    const auto count = static_cast<std::size_t>(
        std::min<std::int64_t>(static_cast<std::int64_t>(block_size_),
                               end - block));
    const std::span<double> block_scores(scores.data(), count);
    if (query.direction == Direction::kTail) {
      model.score_tails_block(query.entity, query.relation, block,
                              block_scores);
    } else {
      model.score_heads_block(query.relation, query.entity, block,
                              block_scores);
    }
    for (std::size_t i = 0; i < count; ++i) {
      const auto candidate =
          static_cast<kge::EntityId>(block + static_cast<kge::EntityId>(i));
      const ScoredEntity scored{candidate, block_scores[i]};
      if (!gt_weakest(scored)) continue;
      if (filter) {
        const bool known =
            query.direction == Direction::kTail
                ? dataset_->contains(query.entity, query.relation, candidate)
                : dataset_->contains(candidate, query.relation, query.entity);
        if (known) continue;
      }
      heap.push_back(scored);
      std::push_heap(heap.begin(), heap.end(), stronger);
      if (heap.size() > k) {
        std::pop_heap(heap.begin(), heap.end(), stronger);
        heap.pop_back();
      }
    }
  }
  out.insert(out.end(), heap.begin(), heap.end());
}

void TopKScorer::finalize(TopKResult& candidates, std::int32_t k) {
  std::sort(candidates.begin(), candidates.end(),
            [](const ScoredEntity& a, const ScoredEntity& b) {
              return weaker(b, a);  // score desc, id asc
            });
  if (candidates.size() > static_cast<std::size_t>(k)) {
    candidates.resize(static_cast<std::size_t>(k));
  }
}

TopKResult TopKScorer::topk(const TopKQuery& query,
                            const kge::KgeModel& model) const {
  validate(query, model);
  TopKResult result;
  scan_range(query, model, 0, model.num_entities(), result);
  finalize(result, query.k);
  return result;
}

TopKResult TopKScorer::topk(const TopKQuery& query, const kge::KgeModel& model,
                            ThreadPool& pool) const {
  validate(query, model);
  TopKResult merged;
  std::mutex merge_mutex;
  pool.parallel_for(
      static_cast<std::size_t>(model.num_entities()),
      [&](std::size_t begin, std::size_t end) {
        TopKResult local;
        scan_range(query, model, static_cast<kge::EntityId>(begin),
                   static_cast<kge::EntityId>(end), local);
        std::lock_guard<std::mutex> lock(merge_mutex);
        merged.insert(merged.end(), local.begin(), local.end());
      });
  finalize(merged, query.k);
  return merged;
}

}  // namespace dynkge::serve
