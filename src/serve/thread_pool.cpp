#include "serve/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace dynkge::serve {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wakeup_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wakeup_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t total,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (total == 0) return;
  const std::size_t chunks = std::min(total, size());
  const std::size_t base = total / chunks;
  const std::size_t extra = total % chunks;

  // The last chunk runs inline on the calling thread: one less queue
  // round-trip, and a saturated pool still makes progress.
  std::vector<std::future<void>> pending;
  pending.reserve(chunks - 1);
  std::size_t begin = 0;
  for (std::size_t c = 0; c + 1 < chunks; ++c) {
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    pending.push_back(submit([&fn, begin, end] { fn(begin, end); }));
    begin = end;
  }
  // Every chunk must finish before returning — the submitted lambdas
  // reference `fn` and the caller's captures — so collect errors instead
  // of letting the first one unwind past live tasks.
  std::exception_ptr error;
  try {
    fn(begin, total);
  } catch (...) {
    error = std::current_exception();
  }
  for (auto& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace dynkge::serve
