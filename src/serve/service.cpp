#include "serve/service.hpp"

#include <algorithm>
#include <future>
#include <unordered_map>
#include <utility>

#include "kge/serialize.hpp"
#include "util/stopwatch.hpp"

namespace dynkge::serve {

std::string ServiceSnapshot::summary() const {
  std::string out = "queries " + std::to_string(queries) + "  mean " +
                    LatencyHistogram::format_seconds(mean_latency_seconds) +
                    "  p50 " + LatencyHistogram::format_seconds(p50_seconds) +
                    "  p95 " + LatencyHistogram::format_seconds(p95_seconds) +
                    "  p99 " + LatencyHistogram::format_seconds(p99_seconds);
  out += "  cache " + std::to_string(cache.hits) + "/" +
         std::to_string(cache.hits + cache.misses) + " hits (" +
         std::to_string(static_cast<int>(100.0 * cache.hit_rate() + 0.5)) +
         "%), " + std::to_string(cache.evictions) + " evictions";
  return out;
}

InferenceService::InferenceService(const kge::KgeModel& model,
                                   const kge::Dataset* dataset,
                                   const ServiceConfig& config)
    : model_(&model),
      pool_(static_cast<std::size_t>(std::max(1, config.num_threads))),
      scorer_(model, dataset, config.block_size),
      cache_(config.cache_capacity, config.cache_shards),
      latency_(config.metrics != nullptr
                   ? &config.metrics->histogram("serve.latency_seconds")
                   : &own_latency_),
      query_counter_(config.metrics != nullptr
                         ? &config.metrics->counter("serve.queries")
                         : nullptr),
      batch_counter_(config.metrics != nullptr
                         ? &config.metrics->counter("serve.batches")
                         : nullptr),
      trace_(config.trace) {}

InferenceService::InferenceService(std::unique_ptr<kge::KgeModel> model,
                                   const kge::Dataset* dataset,
                                   const ServiceConfig& config)
    : owned_model_(std::move(model)),
      model_(owned_model_.get()),
      pool_(static_cast<std::size_t>(std::max(1, config.num_threads))),
      scorer_(*model_, dataset, config.block_size),
      cache_(config.cache_capacity, config.cache_shards),
      latency_(config.metrics != nullptr
                   ? &config.metrics->histogram("serve.latency_seconds")
                   : &own_latency_),
      query_counter_(config.metrics != nullptr
                         ? &config.metrics->counter("serve.queries")
                         : nullptr),
      batch_counter_(config.metrics != nullptr
                         ? &config.metrics->counter("serve.batches")
                         : nullptr),
      trace_(config.trace) {}

void InferenceService::record_latency(double seconds, std::size_t queries) {
  for (std::size_t i = 0; i < queries; ++i) latency_->record(seconds);
  if (query_counter_ != nullptr) query_counter_->add(queries);
}

std::unique_ptr<InferenceService> InferenceService::from_checkpoint(
    const std::string& path, const kge::Dataset* dataset,
    const ServiceConfig& config) {
  return std::make_unique<InferenceService>(kge::load_model(path), dataset,
                                            config);
}

QueryCache::ResultPtr InferenceService::scored_or_cached(
    const TopKQuery& query, bool parallel) {
  if (auto cached = cache_.get(query)) return cached;
  auto result = std::make_shared<const TopKResult>(
      parallel ? scorer_.topk(query, pool_) : scorer_.topk(query));
  cache_.put(query, result);
  return result;
}

QueryCache::ResultPtr InferenceService::topk(const TopKQuery& query) {
  const util::Stopwatch clock;
  auto result = scored_or_cached(query, /*parallel=*/true);
  record_latency(clock.seconds(), 1);
  return result;
}

std::vector<QueryCache::ResultPtr> InferenceService::topk_batch(
    std::span<const TopKQuery> queries) {
  const obs::TraceSpan span(trace_, "serve.batch", 0);
  const util::Stopwatch clock;

  // Deduplicate: slot -> index into `distinct`.
  std::vector<TopKQuery> distinct;
  std::vector<std::size_t> slot_of;
  slot_of.reserve(queries.size());
  std::unordered_map<std::uint64_t, std::size_t> seen;
  seen.reserve(queries.size());
  for (const TopKQuery& q : queries) {
    const auto [it, inserted] = seen.try_emplace(pack_query(q),
                                                 distinct.size());
    if (inserted) distinct.push_back(q);
    slot_of.push_back(it->second);
  }

  // One pool task per distinct query; each task does a serial blocked
  // scan. With many in-flight queries, across-query parallelism beats
  // splitting each query across the pool (no merge step, no idle tails).
  std::vector<QueryCache::ResultPtr> answers(distinct.size());
  std::vector<std::future<void>> pending;
  pending.reserve(distinct.size());
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    pending.push_back(pool_.submit([this, &answers, &distinct, i] {
      answers[i] = scored_or_cached(distinct[i], /*parallel=*/false);
    }));
  }
  for (auto& future : pending) future.get();

  std::vector<QueryCache::ResultPtr> results;
  results.reserve(queries.size());
  for (const std::size_t slot : slot_of) results.push_back(answers[slot]);

  // Batch latency is attributed per query: every query in the batch
  // completed within the batch's wall time.
  record_latency(clock.seconds(), queries.size());
  if (batch_counter_ != nullptr) batch_counter_->add(1);
  return results;
}

ServiceSnapshot InferenceService::snapshot() const {
  ServiceSnapshot snapshot;
  snapshot.queries = latency_->count();
  snapshot.mean_latency_seconds = latency_->mean_seconds();
  snapshot.p50_seconds = latency_->quantile_seconds(0.50);
  snapshot.p95_seconds = latency_->quantile_seconds(0.95);
  snapshot.p99_seconds = latency_->quantile_seconds(0.99);
  snapshot.cache = cache_.stats();
  return snapshot;
}

void InferenceService::reset_metrics() { latency_->reset(); }

}  // namespace dynkge::serve
