#include "serve/service.hpp"

#include <algorithm>
#include <future>
#include <unordered_map>
#include <utility>

#include "kge/serialize.hpp"
#include "util/stopwatch.hpp"

namespace dynkge::serve {

std::string ServiceSnapshot::summary() const {
  std::string out = "v" + std::to_string(model_version) + "  queries " +
                    std::to_string(queries) + "  mean " +
                    LatencyHistogram::format_seconds(mean_latency_seconds) +
                    "  p50 " + LatencyHistogram::format_seconds(p50_seconds) +
                    "  p95 " + LatencyHistogram::format_seconds(p95_seconds) +
                    "  p99 " + LatencyHistogram::format_seconds(p99_seconds);
  out += "  cache " + std::to_string(cache.hits) + "/" +
         std::to_string(cache.hits + cache.misses) + " hits (" +
         std::to_string(static_cast<int>(100.0 * cache.hit_rate() + 0.5)) +
         "%), " + std::to_string(cache.evictions) + " evictions";
  if (shed != 0) out += "  shed " + std::to_string(shed);
  return out;
}

namespace {

stream::AdmissionConfig admission_config(const ServiceConfig& config) {
  stream::AdmissionConfig out;
  out.max_read_inflight = config.max_inflight;
  out.defer_updates_above = config.defer_updates_above;
  return out;
}

}  // namespace

InferenceService::InferenceService(const kge::KgeModel& model,
                                   const kge::Dataset* dataset,
                                   const ServiceConfig& config)
    : admission_(admission_config(config)),
      pool_(static_cast<std::size_t>(std::max(1, config.num_threads))),
      scorer_(dataset, config.block_size),
      cache_(config.cache_capacity, config.cache_shards),
      latency_(config.metrics != nullptr
                   ? &config.metrics->histogram("serve.latency_seconds")
                   : &own_latency_) {
  store_.init(model);
  wire(config);
}

InferenceService::InferenceService(std::unique_ptr<kge::KgeModel> model,
                                   const kge::Dataset* dataset,
                                   const ServiceConfig& config)
    : admission_(admission_config(config)),
      pool_(static_cast<std::size_t>(std::max(1, config.num_threads))),
      scorer_(dataset, config.block_size),
      cache_(config.cache_capacity, config.cache_shards),
      latency_(config.metrics != nullptr
                   ? &config.metrics->histogram("serve.latency_seconds")
                   : &own_latency_) {
  store_.init(std::shared_ptr<const kge::KgeModel>(std::move(model)));
  wire(config);
}

void InferenceService::wire(const ServiceConfig& config) {
  if (config.metrics != nullptr) {
    query_counter_ = &config.metrics->counter("serve.queries");
    batch_counter_ = &config.metrics->counter("serve.batches");
    shed_counter_ = &config.metrics->counter("serve.shed");
    invalidation_counter_ =
        &config.metrics->counter("serve.cache.invalidations");
    invalidated_entries_counter_ =
        &config.metrics->counter("serve.cache.invalidated_entries");
  }
  trace_ = config.trace;
  cache_.set_max_version_lag(config.cache_max_version_lag);
  store_.add_publish_observer(
      [this](std::uint64_t version,
             const std::vector<kge::EntityId>& touched) {
        on_publish(version, touched);
      });
}

void InferenceService::on_publish(std::uint64_t /*version*/,
                                  const std::vector<kge::EntityId>& touched) {
  // Empty touched set means "everything may have changed" (full swap):
  // drop the whole cache. A delta refresh names its touched entities and
  // gets the keyed path.
  const std::uint64_t dropped =
      touched.empty() ? cache_.clear() : cache_.invalidate_entities(touched);
  if (invalidation_counter_ != nullptr) invalidation_counter_->add(1);
  if (invalidated_entries_counter_ != nullptr) {
    invalidated_entries_counter_->add(dropped);
  }
}

void InferenceService::record_latency(double seconds, std::size_t queries) {
  for (std::size_t i = 0; i < queries; ++i) latency_->record(seconds);
  if (query_counter_ != nullptr) query_counter_->add(queries);
}

std::unique_ptr<InferenceService> InferenceService::from_checkpoint(
    const std::string& path, const kge::Dataset* dataset,
    const ServiceConfig& config) {
  return std::make_unique<InferenceService>(kge::load_model(path), dataset,
                                            config);
}

std::uint64_t InferenceService::swap_model(
    std::unique_ptr<kge::KgeModel> model) {
  return store_.publish(std::move(model));
}

std::uint64_t InferenceService::reload_checkpoint(const std::string& path) {
  return swap_model(kge::load_model(path));
}

QueryCache::ResultPtr InferenceService::scored_or_cached(
    const TopKQuery& query, const stream::PinnedModel& pin, bool parallel) {
  if (auto cached = cache_.get(query, pin.version)) return cached;
  auto result = std::make_shared<const TopKResult>(
      parallel ? scorer_.topk(query, *pin.model, pool_)
               : scorer_.topk(query, *pin.model));
  cache_.put(query, result, pin.version);
  return result;
}

QueryCache::ResultPtr InferenceService::topk(const TopKQuery& query) {
  const stream::ReadTicket ticket(&admission_, 1);
  if (!ticket.admitted()) {
    if (shed_counter_ != nullptr) shed_counter_->add(1);
    return nullptr;
  }
  const util::Stopwatch clock;
  const stream::PinnedModel pin = store_.acquire();
  auto result = scored_or_cached(query, pin, /*parallel=*/true);
  record_latency(clock.seconds(), 1);
  return result;
}

std::vector<QueryCache::ResultPtr> InferenceService::topk_batch(
    std::span<const TopKQuery> queries) {
  if (queries.empty()) return {};
  const stream::ReadTicket ticket(&admission_, queries.size());
  if (!ticket.admitted()) {
    if (shed_counter_ != nullptr) shed_counter_->add(queries.size());
    return std::vector<QueryCache::ResultPtr>(queries.size());
  }

  const obs::TraceSpan span(trace_, "serve.batch", 0);
  const util::Stopwatch clock;

  // One pin for the whole batch: every query in it is answered from the
  // same snapshot version, even if a publish lands mid-batch.
  const stream::PinnedModel pin = store_.acquire();

  // Deduplicate: slot -> index into `distinct`.
  std::vector<TopKQuery> distinct;
  std::vector<std::size_t> slot_of;
  slot_of.reserve(queries.size());
  std::unordered_map<std::uint64_t, std::size_t> seen;
  seen.reserve(queries.size());
  for (const TopKQuery& q : queries) {
    const auto [it, inserted] = seen.try_emplace(pack_query(q),
                                                 distinct.size());
    if (inserted) distinct.push_back(q);
    slot_of.push_back(it->second);
  }

  // One pool task per distinct query; each task does a serial blocked
  // scan. With many in-flight queries, across-query parallelism beats
  // splitting each query across the pool (no merge step, no idle tails).
  std::vector<QueryCache::ResultPtr> answers(distinct.size());
  std::vector<std::future<void>> pending;
  pending.reserve(distinct.size());
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    pending.push_back(pool_.submit([this, &answers, &distinct, &pin, i] {
      answers[i] = scored_or_cached(distinct[i], pin, /*parallel=*/false);
    }));
  }
  for (auto& future : pending) future.get();

  std::vector<QueryCache::ResultPtr> results;
  results.reserve(queries.size());
  for (const std::size_t slot : slot_of) results.push_back(answers[slot]);

  // Batch latency is attributed per query: every query in the batch
  // completed within the batch's wall time.
  record_latency(clock.seconds(), queries.size());
  if (batch_counter_ != nullptr) batch_counter_->add(1);
  return results;
}

ServiceSnapshot InferenceService::snapshot() const {
  ServiceSnapshot snapshot;
  snapshot.queries = latency_->count();
  snapshot.shed = admission_.shed_reads();
  snapshot.model_version = store_.current_version();
  snapshot.publishes = store_.publishes();
  snapshot.mean_latency_seconds = latency_->mean_seconds();
  snapshot.p50_seconds = latency_->quantile_seconds(0.50);
  snapshot.p95_seconds = latency_->quantile_seconds(0.95);
  snapshot.p99_seconds = latency_->quantile_seconds(0.99);
  snapshot.cache = cache_.stats();
  return snapshot;
}

void InferenceService::reset_metrics() { latency_->reset(); }

}  // namespace dynkge::serve
