// Top-k link-prediction scoring.
//
// A query fixes one side of a triple and a relation — (h, r, ?) for tail
// prediction or (?, r, t) for head prediction — and asks for the k
// highest-scoring entities on the open side. The scorer scans the entity
// table in contiguous blocks (via KgeModel::score_{tails,heads}_block, so
// each model's h∘r precomposition is reused within a block) keeping a
// bounded size-k min-heap per block range; block results are merged at the
// end. Blocks are independent, so a thread pool turns one query into an
// embarrassingly parallel scan.
//
// The scorer holds no model: the model to score against is a per-call
// argument, because under streaming updates the serving layer answers
// each query from whichever immutable snapshot version it pinned
// (stream/SnapshotStore) — there is no longer a single model for the
// scorer to bind to.
//
// Ranking semantics match Evaluator::link_prediction: descending score,
// ties broken by ascending entity id (the evaluator counts only strictly
// greater scores, so any tie order is rank-compatible); with filtering on,
// entities forming a known-true triple in any dataset split are excluded —
// the "filtered" setting of KGE evaluation, and what a recommender wants
// ("predict new links, not facts we already store").
#pragma once

#include <cstdint>
#include <vector>

#include "kge/dataset.hpp"
#include "kge/model.hpp"
#include "serve/thread_pool.hpp"

namespace dynkge::serve {

/// Which side of the triple is open.
enum class Direction : std::uint8_t {
  kTail,  ///< (h, r, ?) — `entity` is the head
  kHead,  ///< (?, r, t) — `entity` is the tail
};

struct TopKQuery {
  Direction direction = Direction::kTail;
  kge::EntityId entity = 0;       ///< the fixed entity (head or tail)
  kge::RelationId relation = 0;
  std::int32_t k = 10;
  bool filter_known = false;      ///< drop candidates that are known facts

  friend bool operator==(const TopKQuery&, const TopKQuery&) = default;
};

struct ScoredEntity {
  kge::EntityId entity = 0;
  double score = 0.0;

  friend bool operator==(const ScoredEntity&, const ScoredEntity&) = default;
};

using TopKResult = std::vector<ScoredEntity>;

class TopKScorer {
 public:
  /// `dataset` supplies the known-triple filter; nullptr disables
  /// `filter_known` (queries then return unfiltered results). The dataset
  /// must outlive the scorer.
  explicit TopKScorer(const kge::Dataset* dataset = nullptr,
                      std::size_t block_size = 4096)
      : dataset_(dataset), block_size_(block_size) {}

  /// Serial scan of `model`: one thread, still blocked for precomposition
  /// reuse.
  TopKResult topk(const TopKQuery& query, const kge::KgeModel& model) const;

  /// Parallel scan: entity blocks fan out across `pool`, partial top-k
  /// heaps merge at the end. Identical results to the serial overload.
  TopKResult topk(const TopKQuery& query, const kge::KgeModel& model,
                  ThreadPool& pool) const;

 private:
  /// Top-k over entities [begin, end), appended to `out` (unsorted).
  void scan_range(const TopKQuery& query, const kge::KgeModel& model,
                  kge::EntityId begin, kge::EntityId end,
                  TopKResult& out) const;

  /// Sort candidates by (score desc, id asc) and truncate to k.
  static void finalize(TopKResult& candidates, std::int32_t k);

  const kge::Dataset* dataset_;
  std::size_t block_size_;
};

}  // namespace dynkge::serve
