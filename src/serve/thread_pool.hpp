// Fixed-size worker pool for the serving layer.
//
// Training parallelism in this repo is structured (threads-as-ranks in
// comm/, epoch-scoped workers in core/hogwild_trainer); serving needs the
// opposite shape — long-lived workers draining an unbounded stream of
// small, independent tasks. This pool is deliberately minimal: one shared
// FIFO queue, condition-variable wakeup, futures for completion. Both
// uses in serve/ are coarse tasks (an entity block or a whole query), so
// a lock around the queue is nowhere near the bottleneck.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace dynkge::serve {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains nothing: outstanding tasks are completed, queued tasks are
  /// still executed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue `fn` and get a future for its result. Safe from any thread,
  /// including from inside a task (the queue never blocks on submit).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace([task] { (*task)(); });
    }
    wakeup_.notify_one();
    return future;
  }

  /// Split [0, total) into roughly even contiguous chunks (at most one per
  /// worker), run `fn(begin, end)` on the pool, and wait for all chunks.
  /// One chunk runs inline on the calling thread. Exceptions from `fn`
  /// propagate to the caller (first one wins). Must not be called from a
  /// pool worker: the inline chunk makes progress but the submitted chunks
  /// can deadlock a fully occupied pool.
  void parallel_for(std::size_t total,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wakeup_;
  bool stopping_ = false;
};

}  // namespace dynkge::serve
