// The worker pool now lives in util/ (util::ThreadPool) so training and
// serving share one pool implementation: serving drains streams of small
// independent tasks through submit()/parallel_for(), while comm/Cluster
// co-schedules its barrier-synchronized rank programs with run_cohort().
// This header remains so serve/ code and its users keep spelling the type
// serve::ThreadPool.
#pragma once

#include "util/thread_pool.hpp"

namespace dynkge::serve {

using ThreadPool = util::ThreadPool;

}  // namespace dynkge::serve
