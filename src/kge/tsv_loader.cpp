#include "kge/tsv_loader.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace dynkge::kge {
namespace {

std::int32_t read_count_file_header(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::int32_t count = 0;
  if (!(in >> count) || count < 0) {
    throw std::runtime_error("malformed count header in " + path);
  }
  return count;
}

TripleList load_openke_split(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::size_t count = 0;
  if (!(in >> count)) {
    throw std::runtime_error("malformed count header in " + path);
  }
  TripleList triples;
  triples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Triple t{};
    // OpenKE order is head tail relation.
    if (!(in >> t.head >> t.tail >> t.relation)) {
      throw std::runtime_error("truncated triple file " + path);
    }
    triples.push_back(t);
  }
  return triples;
}

}  // namespace

Dataset load_openke(const std::string& dir) {
  const std::int32_t num_entities =
      read_count_file_header(dir + "/entity2id.txt");
  const std::int32_t num_relations =
      read_count_file_header(dir + "/relation2id.txt");
  TripleList train = load_openke_split(dir + "/train2id.txt");
  TripleList valid = load_openke_split(dir + "/valid2id.txt");
  TripleList test = load_openke_split(dir + "/test2id.txt");
  return Dataset(num_entities, num_relations, std::move(train),
                 std::move(valid), std::move(test));
}

Dataset load_tsv(const std::string& dir) {
  std::unordered_map<std::string, EntityId> entity_ids;
  std::unordered_map<std::string, RelationId> relation_ids;

  const auto entity_id = [&](const std::string& name) {
    const auto [it, inserted] =
        entity_ids.emplace(name, static_cast<EntityId>(entity_ids.size()));
    (void)inserted;
    return it->second;
  };
  const auto relation_id = [&](const std::string& name) {
    const auto [it, inserted] = relation_ids.emplace(
        name, static_cast<RelationId>(relation_ids.size()));
    (void)inserted;
    return it->second;
  };

  const auto load_split = [&](const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    TripleList triples;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string h, r, t;
      if (!std::getline(ls, h, '\t') || !std::getline(ls, r, '\t') ||
          !std::getline(ls, t, '\t')) {
        throw std::runtime_error("malformed TSV line in " + path + ": " +
                                 line);
      }
      triples.push_back(Triple{entity_id(h), relation_id(r), entity_id(t)});
    }
    return triples;
  };

  TripleList train = load_split(dir + "/train.txt");
  TripleList valid = load_split(dir + "/valid.txt");
  TripleList test = load_split(dir + "/test.txt");
  return Dataset(static_cast<std::int32_t>(entity_ids.size()),
                 static_cast<std::int32_t>(relation_ids.size()),
                 std::move(train), std::move(valid), std::move(test));
}

Dataset load_dataset(const std::string& dir) {
  if (std::filesystem::exists(dir + "/train2id.txt")) return load_openke(dir);
  if (std::filesystem::exists(dir + "/train.txt")) return load_tsv(dir);
  throw std::runtime_error("no recognizable dataset files under " + dir);
}

void save_openke(const Dataset& dataset, const std::string& dir) {
  std::filesystem::create_directories(dir);
  const auto open = [&](const std::string& name) {
    std::ofstream out(dir + "/" + name, std::ios::trunc);
    if (!out) throw std::runtime_error("save_openke: cannot open " + name);
    return out;
  };

  {
    auto out = open("entity2id.txt");
    out << dataset.num_entities() << "\n";
    for (std::int32_t e = 0; e < dataset.num_entities(); ++e) {
      out << "e" << e << "\t" << e << "\n";
    }
  }
  {
    auto out = open("relation2id.txt");
    out << dataset.num_relations() << "\n";
    for (std::int32_t r = 0; r < dataset.num_relations(); ++r) {
      out << "r" << r << "\t" << r << "\n";
    }
  }
  const auto write_split = [&](const std::string& name,
                               std::span<const Triple> triples) {
    auto out = open(name);
    out << triples.size() << "\n";
    // OpenKE triple order is head tail relation.
    for (const Triple& t : triples) {
      out << t.head << " " << t.tail << " " << t.relation << "\n";
    }
    if (!out) throw std::runtime_error("save_openke: write failed " + name);
  };
  write_split("train2id.txt", dataset.train());
  write_split("valid2id.txt", dataset.valid());
  write_split("test2id.txt", dataset.test());
}

}  // namespace dynkge::kge
