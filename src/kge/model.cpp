#include "kge/model.hpp"

namespace dynkge::kge {

void KgeModel::score_tails_block(EntityId h, RelationId r, EntityId begin,
                                 std::span<double> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = score(h, r, begin + static_cast<EntityId>(i));
  }
}

void KgeModel::score_heads_block(RelationId r, EntityId t, EntityId begin,
                                 std::span<double> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = score(begin + static_cast<EntityId>(i), r, t);
  }
}

}  // namespace dynkge::kge
