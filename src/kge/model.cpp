#include "kge/model.hpp"

namespace dynkge::kge {

void KgeModel::score_all_tails(EntityId h, RelationId r,
                               std::span<double> out) const {
  for (EntityId e = 0; e < num_entities(); ++e) out[e] = score(h, r, e);
}

void KgeModel::score_all_heads(RelationId r, EntityId t,
                               std::span<double> out) const {
  for (EntityId e = 0; e < num_entities(); ++e) out[e] = score(e, r, t);
}

}  // namespace dynkge::kge
