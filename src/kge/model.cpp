#include "kge/model.hpp"

namespace dynkge::kge {

void KgeModel::score_triples_block(std::span<const Triple> triples,
                                   std::span<double> out) const {
  for (std::size_t i = 0; i < triples.size(); ++i) {
    out[i] = score(triples[i].head, triples[i].relation, triples[i].tail);
  }
}

void KgeModel::accumulate_gradients_block(std::span<const GradWork> work,
                                          ModelGrads& grads) const {
  // Reference path: the rows already exist, so accumulate_gradients only
  // re-resolves them; arithmetic and order are the scalar path's.
  for (const GradWork& w : work) {
    accumulate_gradients(w.h, w.r, w.t, w.coeff, grads);
  }
}

void KgeModel::score_tails_block(EntityId h, RelationId r, EntityId begin,
                                 std::span<double> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = score(h, r, begin + static_cast<EntityId>(i));
  }
}

void KgeModel::score_heads_block(RelationId r, EntityId t, EntityId begin,
                                 std::span<double> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = score(begin + static_cast<EntityId>(i), r, t);
  }
}

}  // namespace dynkge::kge
