#include "kge/transe_model.hpp"

#include <cmath>

namespace dynkge::kge {

void TransEModel::init(util::Rng& rng) {
  const float scale = init_scale_ * gamma_ / static_cast<float>(rank_) * 2.0f;
  entities_.init_uniform(rng, scale);
  relations_.init_uniform(rng, scale);
}

double TransEModel::score(EntityId h, RelationId r, EntityId t) const {
  const auto eh = entities_.row(h);
  const auto er = relations_.row(r);
  const auto et = entities_.row(t);
  double l1 = 0.0;
  for (std::int32_t i = 0; i < rank_; ++i) {
    l1 += std::fabs(static_cast<double>(eh[i]) + er[i] - et[i]);
  }
  return gamma_ - l1;
}

void TransEModel::accumulate_gradients(EntityId h, RelationId r, EntityId t,
                                       float coeff, ModelGrads& grads) const {
  const auto eh = entities_.row(h);
  const auto er = relations_.row(r);
  const auto et = entities_.row(t);
  grads.entity.accumulate(h);
  grads.entity.accumulate(t);
  grads.relation.accumulate(r);
  const auto gh = grads.entity.row(h);
  const auto gr = grads.relation.row(r);
  const auto gt = grads.entity.row(t);
  for (std::int32_t i = 0; i < rank_; ++i) {
    const float d = eh[i] + er[i] - et[i];
    // d phi / d d_i = -sign(d_i); sign(0) treated as 0 (subgradient).
    const float s = d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f);
    gh[i] += coeff * -s;
    gr[i] += coeff * -s;
    gt[i] += coeff * s;
  }
}

}  // namespace dynkge::kge
