// RotatE (Sun et al., ICLR 2019): relations as rotations in the complex
// plane. Included as a future-work model ("explore our methods with other
// KGE models") and as the stress test for mixed parameter shapes: entity
// rows store `rank` complex numbers (width 2*rank) while relation rows
// store only `rank` phase angles (width rank) — the relation gradient
// matrix relation partition protects is genuinely different here.
//
//   phi(h,r,t) = gamma - sum_k | h_k * e^{i theta_{r,k}} - t_k |
//
// with |.| the complex modulus (an L1 norm over rotated differences).
#pragma once

#include "kge/model.hpp"

namespace dynkge::kge {

class RotatEModel final : public KgeModel {
 public:
  RotatEModel(std::int32_t num_entities, std::int32_t num_relations,
              std::int32_t rank, float gamma = 12.0f)
      : KgeModel(num_entities, num_relations, 2 * rank, rank),
        rank_(rank),
        gamma_(gamma) {}

  std::string name() const override { return "RotatE"; }
  std::int32_t rank() const { return rank_; }
  float gamma() const { return gamma_; }

  /// Keeps the modulus gradient finite at zero distance. Shared by the
  /// scalar path and the blocked kernels — the distance arithmetic must be
  /// bit-identical between them.
  static constexpr double kEpsilon = 1e-12;

  void init(util::Rng& rng) override;

  double score(EntityId h, RelationId r, EntityId t) const override;

  void accumulate_gradients(EntityId h, RelationId r, EntityId t, float coeff,
                            ModelGrads& grads) const override;

  // Blocked training kernels (src/kge/block_kernels.cpp). Batching lets
  // the relation phases' cos/sin pairs be computed once per unique
  // relation per block instead of once per triple.
  void score_triples_block(std::span<const Triple> triples,
                           std::span<double> out) const override;
  void accumulate_gradients_block(std::span<const GradWork> work,
                                  ModelGrads& grads) const override;
  bool has_block_kernels() const override { return true; }

  void score_tails_block(EntityId h, RelationId r, EntityId begin,
                         std::span<double> out) const override;

 private:
  std::int32_t rank_;
  float gamma_;
};

}  // namespace dynkge::kge
