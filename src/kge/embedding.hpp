// Embedding storage and sparse gradient accumulation.
//
// An EmbeddingMatrix is a dense row-major [rows x width] float matrix: one
// row per entity or relation. A SparseGrad holds the gradient rows touched
// by one batch — for KGE training only a tiny fraction of rows is non-zero
// per step, which is precisely the structure the paper's communication
// strategies exploit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace dynkge::kge {

class EmbeddingMatrix {
 public:
  EmbeddingMatrix() = default;
  EmbeddingMatrix(std::int32_t rows, std::int32_t width)
      : rows_(rows), width_(width) {
    if (rows <= 0 || width <= 0) {
      throw std::invalid_argument("EmbeddingMatrix: non-positive shape");
    }
    data_.assign(static_cast<std::size_t>(rows) * width, 0.0f);
  }

  std::int32_t rows() const { return rows_; }
  std::int32_t width() const { return width_; }
  std::size_t size_bytes() const { return data_.size() * sizeof(float); }

  std::span<float> row(std::int32_t r) {
    return {data_.data() + static_cast<std::size_t>(r) * width_,
            static_cast<std::size_t>(width_)};
  }
  std::span<const float> row(std::int32_t r) const {
    return {data_.data() + static_cast<std::size_t>(r) * width_,
            static_cast<std::size_t>(width_)};
  }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  /// Uniform init in [-scale, scale] — ComplEx's standard initialization
  /// scheme (scaled by 1/sqrt(width) by the caller).
  void init_uniform(util::Rng& rng, float scale) {
    for (auto& v : data_) {
      v = static_cast<float>(rng.next_double(-scale, scale));
    }
  }

  /// Gaussian init with standard deviation sigma.
  void init_normal(util::Rng& rng, float sigma) {
    for (auto& v : data_) {
      v = static_cast<float>(rng.next_normal(0.0, sigma));
    }
  }

 private:
  std::int32_t rows_ = 0;
  std::int32_t width_ = 0;
  std::vector<float> data_;
};

/// Accumulates gradient rows for one optimizer step. Rows are created on
/// first touch; iteration order is made deterministic by sorting ids.
class SparseGrad {
 public:
  SparseGrad() = default;
  explicit SparseGrad(std::int32_t width) : width_(width) {
    if (width <= 0) {
      throw std::invalid_argument("SparseGrad: non-positive width");
    }
  }

  std::int32_t width() const { return width_; }
  std::size_t num_rows() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }

  bool has(std::int32_t id) const { return slots_.count(id) != 0; }

  /// Row for `id`, created zero-filled on first touch.
  std::span<float> accumulate(std::int32_t id) {
    const auto [it, inserted] = slots_.try_emplace(id, arena_.size());
    if (inserted) {
      arena_.resize(arena_.size() + width_, 0.0f);
      ids_dirty_ = true;
    }
    return {arena_.data() + it->second, static_cast<std::size_t>(width_)};
  }

  /// Arena offset of the row for `id`, created zero-filled on first touch.
  /// Offsets — unlike the spans accumulate() returns — stay valid across
  /// later row creations, so the blocked gradient path records offsets
  /// while the arena is still growing and resolves pointers once per
  /// batch afterwards.
  std::size_t accumulate_offset(std::int32_t id) {
    const auto [it, inserted] = slots_.try_emplace(id, arena_.size());
    if (inserted) {
      arena_.resize(arena_.size() + width_, 0.0f);
      ids_dirty_ = true;
    }
    return it->second;
  }

  /// Existing row for `id`; throws if absent.
  std::span<const float> row(std::int32_t id) const {
    const auto it = slots_.find(id);
    if (it == slots_.end()) {
      throw std::out_of_range("SparseGrad: row absent");
    }
    return {arena_.data() + it->second, static_cast<std::size_t>(width_)};
  }
  std::span<float> row(std::int32_t id) {
    const auto it = slots_.find(id);
    if (it == slots_.end()) {
      throw std::out_of_range("SparseGrad: row absent");
    }
    return {arena_.data() + it->second, static_cast<std::size_t>(width_)};
  }

  /// (id, arena offset) of a live row; see sorted_slots().
  struct SlotRef {
    std::int32_t id;
    std::size_t offset;
  };

  /// Rows in ascending id order with their arena offsets (cached;
  /// invalidated by new rows and erases). The blocked kernels iterate this
  /// instead of sorted_ids() + row(id), replacing one hash lookup per row
  /// with a direct arena access.
  const std::vector<SlotRef>& sorted_slots() const {
    refresh_caches();
    return sorted_slots_;
  }

  /// Row at an arena offset taken from sorted_slots(). Valid until the
  /// next accumulate() that grows the arena, or clear().
  std::span<const float> row_at(std::size_t offset) const {
    return {arena_.data() + offset, static_cast<std::size_t>(width_)};
  }
  std::span<float> row_at(std::size_t offset) {
    return {arena_.data() + offset, static_cast<std::size_t>(width_)};
  }

  /// Row ids in ascending order (cached; invalidated by new rows).
  const std::vector<std::int32_t>& sorted_ids() const {
    refresh_caches();
    return sorted_ids_;
  }

  /// Drop all rows but keep allocations for reuse across batches.
  void clear() {
    slots_.clear();
    arena_.clear();
    sorted_ids_.clear();
    sorted_slots_.clear();
    ids_dirty_ = false;
  }

  /// Remove a row (used by the random-selection strategy when a gradient
  /// vector is dropped from communication).
  void erase(std::int32_t id) {
    const auto it = slots_.find(id);
    if (it == slots_.end()) return;
    // The arena slot is abandoned, not compacted; clear() reclaims it. The
    // row count and iteration exclude it immediately.
    slots_.erase(it);
    ids_dirty_ = true;
  }

 private:
  void refresh_caches() const {
    if (!ids_dirty_) return;
    sorted_slots_.clear();
    sorted_slots_.reserve(slots_.size());
    for (const auto& [id, offset] : slots_) {
      sorted_slots_.push_back({id, offset});
    }
    std::sort(sorted_slots_.begin(), sorted_slots_.end(),
              [](const SlotRef& a, const SlotRef& b) { return a.id < b.id; });
    sorted_ids_.clear();
    sorted_ids_.reserve(sorted_slots_.size());
    for (const SlotRef& slot : sorted_slots_) sorted_ids_.push_back(slot.id);
    ids_dirty_ = false;
  }

  std::int32_t width_ = 0;
  std::unordered_map<std::int32_t, std::size_t> slots_;
  std::vector<float> arena_;
  mutable std::vector<std::int32_t> sorted_ids_;
  mutable std::vector<SlotRef> sorted_slots_;
  mutable bool ids_dirty_ = false;
};

}  // namespace dynkge::kge
