// KGE model interface.
//
// A model owns two embedding matrices (entities, relations), defines the
// triple scoring function phi(h, r, t), and knows how to accumulate the
// analytic gradient of phi with respect to the three touched rows. Loss
// composition (logistic loss over positive/negative labels) lives in
// loss.hpp; optimization in adam.hpp; distribution in core/.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "kge/embedding.hpp"
#include "kge/triple.hpp"
#include "util/rng.hpp"

namespace dynkge::kge {

/// Gradient rows for both parameter matrices, accumulated over a batch.
struct ModelGrads {
  SparseGrad entity;
  SparseGrad relation;

  ModelGrads() = default;
  ModelGrads(std::int32_t entity_width, std::int32_t relation_width)
      : entity(entity_width), relation(relation_width) {}

  void clear() {
    entity.clear();
    relation.clear();
  }
};

/// One gradient-accumulation work item of a blocked batch: the triple, the
/// upstream loss derivative, and the three *pre-resolved* gradient rows
/// (direct arena pointers, so the per-example hash lookups of the scalar
/// path disappear). The rows must already exist and stay stable for the
/// duration of the block call; gh and gt alias when h == t.
struct GradWork {
  EntityId h = 0;
  RelationId r = 0;
  EntityId t = 0;
  float coeff = 0.0f;  ///< dLoss/dphi, already averaged over the batch
  float* gh = nullptr;
  float* gr = nullptr;
  float* gt = nullptr;
};

class KgeModel {
 public:
  KgeModel(std::int32_t num_entities, std::int32_t num_relations,
           std::int32_t entity_width, std::int32_t relation_width)
      : entities_(num_entities, entity_width),
        relations_(num_relations, relation_width) {}
  virtual ~KgeModel() = default;

  KgeModel(const KgeModel&) = delete;
  KgeModel& operator=(const KgeModel&) = delete;

  virtual std::string name() const = 0;

  /// Initialize both matrices from the given stream (deterministic).
  virtual void init(util::Rng& rng) = 0;

  /// phi(h, r, t): higher means "more plausible".
  virtual double score(EntityId h, RelationId r, EntityId t) const = 0;

  /// grads += coeff * d phi / d {E[h], R[r], E[t]}.
  /// `coeff` is the upstream derivative dLoss/dphi.
  virtual void accumulate_gradients(EntityId h, RelationId r, EntityId t,
                                    float coeff, ModelGrads& grads) const = 0;

  /// out[i] = phi(triples[i]) — the training-side blocked scoring kernel.
  /// The default loops over score(); the built-in models override with
  /// ILP forms (four independent accumulation chains) that are
  /// bit-identical per triple to score(). Scoring is side-effect free and
  /// consumes no RNG, so callers may batch freely without changing the
  /// determinism contract.
  virtual void score_triples_block(std::span<const Triple> triples,
                                   std::span<double> out) const;

  /// Accumulate gradients for a block of work items, processed strictly in
  /// order (items may share rows). Overrides must keep each item's
  /// per-element arithmetic and per-memory-location accumulation order
  /// identical to accumulate_gradients; when w.gh == w.gt (h == t) the
  /// scalar statement interleaving must be preserved exactly. `grads` is
  /// the accumulator the work rows point into (used by the default, which
  /// falls back to accumulate_gradients per item).
  virtual void accumulate_gradients_block(std::span<const GradWork> work,
                                          ModelGrads& grads) const;

  /// True when score_triples_block / accumulate_gradients_block are real
  /// blocked kernels rather than the scalar-loop defaults.
  virtual bool has_block_kernels() const { return false; }

  /// out[i] = phi(h, r, begin + i) for i in [0, out.size()); requires
  /// begin + out.size() <= num_entities(). The blocked form is the virtual
  /// hook so implementations can precompose h*r once per call (making the
  /// per-candidate cost one dot product) while callers choose the range —
  /// ranking evaluation scans all entities, the serving layer hands
  /// disjoint blocks to worker threads.
  virtual void score_tails_block(EntityId h, RelationId r, EntityId begin,
                                 std::span<double> out) const;

  /// out[i] = phi(begin + i, r, t) for i in [0, out.size()).
  virtual void score_heads_block(RelationId r, EntityId t, EntityId begin,
                                 std::span<double> out) const;

  /// out[e] = phi(h, r, e) for every entity e.
  void score_all_tails(EntityId h, RelationId r, std::span<double> out) const {
    score_tails_block(h, r, 0, out);
  }

  /// out[e] = phi(e, r, t) for every entity e.
  void score_all_heads(RelationId r, EntityId t, std::span<double> out) const {
    score_heads_block(r, t, 0, out);
  }

  EmbeddingMatrix& entities() { return entities_; }
  const EmbeddingMatrix& entities() const { return entities_; }
  EmbeddingMatrix& relations() { return relations_; }
  const EmbeddingMatrix& relations() const { return relations_; }

  std::int32_t num_entities() const { return entities_.rows(); }
  std::int32_t num_relations() const { return relations_.rows(); }

  /// Fresh gradient accumulator with matching row widths.
  ModelGrads make_grads() const {
    return ModelGrads(entities_.width(), relations_.width());
  }

  /// Multiplier on each model's default initialization scale. Values < 1
  /// start embeddings (and hence scores) closer to zero, which avoids the
  /// crush-then-rebuild transient that hard-negative mining provokes when
  /// initial scores are large. Call before init().
  void set_init_scale(float multiplier) { init_scale_ = multiplier; }
  float init_scale() const { return init_scale_; }

 protected:
  EmbeddingMatrix entities_;
  EmbeddingMatrix relations_;
  float init_scale_ = 1.0f;
};

}  // namespace dynkge::kge
