// Runtime ISA dispatch for the blocked training kernels.
//
// DYNKGE_KERNEL_CLONES marks a kernel for GCC function multiversioning:
// the compiler emits a baseline x86-64 body plus an AVX2 body and picks
// one per process at load time (ifunc), so a single binary runs the wide
// version on CI runners and laptops and the baseline elsewhere.
//
// Byte-determinism across ISAs: every operation in the kernels is a
// single IEEE-754 add/mul/div/sqrt, and packed SSE/AVX arithmetic is
// IEEE-exact per lane — widening the vectors never changes a result bit.
// The one ISA feature that would change results is fused multiply-add
// (one rounding instead of two), so the clone list deliberately stops at
// "avx2": GCC cannot contract a*b+c unless the target has FMA, and the
// kernel translation units additionally pin -ffp-contract=off (see
// src/kge/CMakeLists.txt) so a future toolchain or clone-list change
// cannot silently reintroduce contraction.
//
// Clang and non-x86 builds compile the plain baseline body — same bytes,
// narrower vectors.
#pragma once

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define DYNKGE_KERNEL_CLONES \
  __attribute__((target_clones("default", "avx2")))
#else
#define DYNKGE_KERNEL_CLONES
#endif
