// Dataset statistics: the structural properties the paper's strategies
// depend on (relation skew drives relation-partition balance, entity
// degree skew drives gradient-row sparsity) plus the standard TransE-style
// relation cardinality classification (1-1 / 1-N / N-1 / N-N).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "kge/dataset.hpp"

namespace dynkge::kge {

enum class RelationCardinality : int {
  kOneToOne = 0,
  kOneToMany,
  kManyToOne,
  kManyToMany,
};

const char* to_string(RelationCardinality cardinality);

struct DatasetStats {
  std::size_t train_triples = 0;
  std::size_t valid_triples = 0;
  std::size_t test_triples = 0;

  std::size_t entities_used = 0;   ///< entities appearing in >= 1 triple
  std::size_t relations_used = 0;

  double mean_entity_degree = 0.0;
  std::size_t max_entity_degree = 0;
  double mean_relation_count = 0.0;
  std::size_t max_relation_count = 0;

  /// Gini coefficient of the per-relation triple counts — 0 is uniform,
  /// towards 1 is Zipf-skewed (FB15K's relations are heavily skewed).
  double relation_gini = 0.0;
  /// Gini coefficient of entity degrees.
  double entity_gini = 0.0;

  /// Relations per cardinality class (Bordes et al. 1.5 thresholds on the
  /// average tails-per-head and heads-per-tail).
  std::array<std::size_t, 4> cardinality_counts{};

  /// Multi-line human-readable rendering.
  std::string summary() const;
};

/// Compute statistics over the train split (the split training sees).
DatasetStats compute_statistics(const Dataset& dataset);

}  // namespace dynkge::kge
