#include "kge/checkpoint_dir.hpp"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace dynkge::kge {
namespace {

constexpr const char* kPrimaryName = "snapshot.dkgs";

/// Parse "snapshot-e<epoch>.dkgs" -> epoch, or -1 if `name` is not a
/// history-copy file name (strict: every character between the prefix and
/// suffix must be a digit, so stray files never join the resume order).
int history_epoch(const std::string& name) {
  const std::string prefix = "snapshot-e";
  const std::string suffix = ".dkgs";
  if (name.size() <= prefix.size() + suffix.size()) return -1;
  if (name.compare(0, prefix.size(), prefix) != 0) return -1;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return -1;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  int epoch = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return -1;
    epoch = epoch * 10 + (c - '0');
  }
  return epoch;
}

/// History files in `dir` as (epoch, filename), unsorted.
std::vector<std::pair<int, std::string>> history_files(const std::string& dir) {
  std::vector<std::pair<int, std::string>> files;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return files;
  while (const dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    const int epoch = history_epoch(name);
    if (epoch >= 0) files.emplace_back(epoch, name);
  }
  ::closedir(handle);
  return files;
}

std::string join(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

}  // namespace

std::vector<std::string> list_snapshot_candidates(const std::string& dir) {
  std::vector<std::string> candidates;
  const std::string primary = join(dir, kPrimaryName);
  if (::access(primary.c_str(), F_OK) == 0) candidates.push_back(primary);

  auto history = history_files(dir);
  std::sort(history.begin(), history.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [epoch, name] : history) {
    candidates.push_back(join(dir, name));
  }
  return candidates;
}

ResumeScan load_newest_valid_snapshot(const std::string& dir) {
  ResumeScan scan;
  const std::vector<std::string> candidates = list_snapshot_candidates(dir);
  for (const std::string& candidate : candidates) {
    try {
      scan.snapshot = load_snapshot(candidate);
      scan.found = true;
      scan.path = candidate;
      return scan;
    } catch (const std::exception& error) {
      scan.rejected.push_back({candidate, error.what()});
    }
  }
  if (!candidates.empty()) {
    // Every candidate is damaged: fail loudly rather than cold-starting
    // over state the user asked to resume from.
    std::string message =
        "resume: no valid snapshot in " + dir + " — every candidate failed:";
    for (const RejectedSnapshot& r : scan.rejected) {
      message += "\n  " + r.path + ": " + r.error;
    }
    throw std::runtime_error(message);
  }
  return scan;  // found=false: cold start
}

void prune_snapshots(const std::string& dir, int keep,
                     const std::string& protect) {
  if (keep < 1) {
    throw std::invalid_argument(
        "prune_snapshots: keep must be >= 1 (--checkpoint-keep)");
  }
  auto history = history_files(dir);
  // Oldest first, so the survivors are the newest copies.
  std::sort(history.begin(), history.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // The primary counts toward the budget, leaving keep-1 history slots.
  const int primary_present =
      ::access(join(dir, kPrimaryName).c_str(), F_OK) == 0 ? 1 : 0;
  int excess = static_cast<int>(history.size()) - (keep - primary_present);
  for (const auto& [epoch, name] : history) {
    if (excess <= 0) break;
    const std::string path = join(dir, name);
    if (path == protect) continue;  // last verified-good: never deleted
    std::remove(path.c_str());
    --excess;
  }
}

}  // namespace dynkge::kge
