// Checkpoint-directory management: retention and fault-tolerant resume.
//
// A checkpoint directory holds one primary snapshot (`snapshot.dkgs`,
// always the newest state) plus, when `--checkpoint-keep N` asks for
// history, epoch-stamped copies (`snapshot-e<epoch>.dkgs`) of the same
// sealed bytes. This module owns the policies around that layout:
//
//  * enumeration — candidates in newest-first order (primary first, then
//    history copies by descending epoch), so resume always prefers the
//    most recent state;
//  * fault-tolerant resume — try each candidate in order, verifying the
//    whole-file FNV-1a checksum (load path) before trusting it, and fall
//    back to the next-older snapshot when the newest one is torn or
//    bit-flipped. Only when *every* candidate is corrupt does resume fail,
//    and then loudly, naming each rejected file and why;
//  * retention — prune the oldest history copies beyond the keep budget,
//    never deleting the primary or the last snapshot that verified good.
#pragma once

#include <string>
#include <vector>

#include "kge/serialize.hpp"

namespace dynkge::kge {

/// One resume candidate that failed verification, and the loader's error.
struct RejectedSnapshot {
  std::string path;
  std::string error;
};

/// Result of scanning a checkpoint directory for a resumable snapshot.
struct ResumeScan {
  bool found = false;            ///< false = no snapshot files at all
  TrainingSnapshot snapshot;     ///< valid only when found
  std::string path;              ///< the file that loaded cleanly
  std::vector<RejectedSnapshot> rejected;  ///< newer candidates skipped
};

/// Enumerate resume candidates in `dir`, newest first: `snapshot.dkgs`
/// (the primary) if present, then `snapshot-e<epoch>.dkgs` history copies
/// in descending epoch order. Files that merely match the name pattern
/// are listed without being opened.
std::vector<std::string> list_snapshot_candidates(const std::string& dir);

/// Load the newest snapshot in `dir` that passes full verification
/// (magic, version, per-section parse, trailing checksum). Corrupt
/// candidates are recorded in `rejected` and the scan falls back to the
/// next-older one. Returns found=false when the directory holds no
/// snapshot files (cold start). Throws std::runtime_error when every
/// candidate is corrupt, naming each file and its error — resume must
/// never silently cold-start over damaged state.
ResumeScan load_newest_valid_snapshot(const std::string& dir);

/// Delete the oldest history copies (`snapshot-e*.dkgs`) in `dir` beyond
/// `keep` total retained snapshots (the primary counts toward the
/// budget). `protect` is never deleted regardless of age — the trainer
/// passes the last snapshot known to have been written successfully, so
/// a later failed write can always fall back to it. The primary
/// `snapshot.dkgs` is never deleted either.
void prune_snapshots(const std::string& dir, int keep,
                     const std::string& protect = "");

}  // namespace dynkge::kge
