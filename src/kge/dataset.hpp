// A knowledge-graph dataset: train/valid/test triple splits plus the
// "filter" index of all known-true triples used by filtered MRR evaluation
// and by negative samplers that must avoid accidentally sampling a true
// triple.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>

#include "kge/triple.hpp"

namespace dynkge::kge {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::int32_t num_entities, std::int32_t num_relations,
          TripleList train, TripleList valid, TripleList test);

  std::int32_t num_entities() const { return num_entities_; }
  std::int32_t num_relations() const { return num_relations_; }

  std::span<const Triple> train() const { return train_; }
  std::span<const Triple> valid() const { return valid_; }
  std::span<const Triple> test() const { return test_; }

  std::size_t num_facts() const {
    return train_.size() + valid_.size() + test_.size();
  }

  /// True if {h, r, t} appears in any split (the filtered-evaluation test).
  bool contains(EntityId head, RelationId relation, EntityId tail) const {
    return known_.count(pack_triple(head, relation, tail)) != 0;
  }
  bool contains(const Triple& t) const {
    return contains(t.head, t.relation, t.tail);
  }

  /// Human-readable one-line summary used by examples and logs.
  std::string summary(const std::string& name) const;

 private:
  std::int32_t num_entities_ = 0;
  std::int32_t num_relations_ = 0;
  TripleList train_;
  TripleList valid_;
  TripleList test_;
  std::unordered_set<std::uint64_t> known_;
};

}  // namespace dynkge::kge
