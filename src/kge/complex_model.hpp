// ComplEx (Trouillon et al., ICML 2016) — the model the paper trains.
//
// Entities and relations are complex vectors of `rank` components; the
// score is the real part of the trilinear product <E_h, E_r, conj(E_t)>:
//
//   phi(h,r,t) = < Re(r), Re(h), Re(t) >
//              + < Re(r), Im(h), Im(t) >
//              + < Im(r), Re(h), Im(t) >
//              - < Im(r), Im(h), Re(t) >      (paper eq. 1)
//
// Storage: each row holds [re_0..re_{rank-1}, im_0..im_{rank-1}], i.e.
// width = 2 * rank floats.
#pragma once

#include "kge/model.hpp"

namespace dynkge::kge {

class ComplExModel final : public KgeModel {
 public:
  ComplExModel(std::int32_t num_entities, std::int32_t num_relations,
               std::int32_t rank)
      : KgeModel(num_entities, num_relations, 2 * rank, 2 * rank),
        rank_(rank) {}

  std::string name() const override { return "ComplEx"; }
  std::int32_t rank() const { return rank_; }

  void init(util::Rng& rng) override;

  double score(EntityId h, RelationId r, EntityId t) const override;

  void accumulate_gradients(EntityId h, RelationId r, EntityId t, float coeff,
                            ModelGrads& grads) const override;

  // Blocked training kernels (src/kge/block_kernels.cpp): bit-identical
  // to the scalar path, vectorizable loop shapes.
  void score_triples_block(std::span<const Triple> triples,
                           std::span<double> out) const override;
  void accumulate_gradients_block(std::span<const GradWork> work,
                                  ModelGrads& grads) const override;
  bool has_block_kernels() const override { return true; }

  void score_tails_block(EntityId h, RelationId r, EntityId begin,
                         std::span<double> out) const override;
  void score_heads_block(RelationId r, EntityId t, EntityId begin,
                         std::span<double> out) const override;

 private:
  std::int32_t rank_;
};

}  // namespace dynkge::kge
