// Model checkpointing: save/load trained embeddings to a versioned binary
// file with an integrity checksum.
//
// Format (little-endian):
//   magic   "DKGE"            4 bytes
//   version u32               currently 1
//   model   u32 name length + bytes
//           ("complex" | "distmult" | "transe" | "rotate")
//   rank    i32               model rank (complex components)
//   gamma   f32               TransE/RotatE margin (0 for other models)
//   shape   i32 x4            num_entities, entity_width,
//                             num_relations, relation_width
//   data    f32[...]          entity matrix then relation matrix, row-major
//   hash    u64               FNV-1a over everything above
#pragma once

#include <memory>
#include <string>

#include "kge/model.hpp"

namespace dynkge::kge {

/// Write `model` to `path`. Throws std::runtime_error on I/O failure.
void save_model(const KgeModel& model, const std::string& path);

/// Read a model back. Throws std::runtime_error on missing file, magic or
/// checksum mismatch, or an unknown model name.
std::unique_ptr<KgeModel> load_model(const std::string& path);

}  // namespace dynkge::kge
