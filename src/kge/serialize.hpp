// Checkpointing: versioned binary formats with integrity checksums.
//
// Two file kinds share one codec layer:
//
//  * Model file ("DKGE", format version 1) — just the trained embeddings,
//    written by save_model / read by load_model. What serving and `dynkge
//    eval/predict` consume.
//
//  * Training snapshot ("DKGS", format version 3) — the full state needed
//    to resume training bit-identically: model parameters, Adam moments
//    and step counts, epoch counter, LR-scheduler state, CommModeSelector
//    (DRS) state, per-rank RNG stream seeds, and per-rank residual blobs
//    (gradient-selection and error-feedback residuals). Laid out as tagged
//    sections so corruption is reported by section name.
//
// Model file layout (little-endian):
//   magic   "DKGE"            4 bytes
//   version u32               currently 1
//   model   u32 name length + bytes
//           ("complex" | "distmult" | "transe" | "rotate")
//   rank    i32               model rank (complex components)
//   gamma   f32               TransE/RotatE margin (0 for other models)
//   shape   i32 x4            num_entities, entity_width,
//                             num_relations, relation_width
//   data    f32[...]          entity matrix then relation matrix, row-major
//   hash    u64               FNV-1a over everything above
//
// Snapshot layout (little-endian):
//   magic   "DKGS"            4 bytes
//   version u32               currently 3
//   8 sections, each: tag (4 bytes) + u64 payload length + payload,
//   in fixed order MODL OPTE OPTR TRNR SCHD SELC RNGS RESD
//   hash    u64               FNV-1a over everything above
// (see DESIGN.md for the per-section field tables)
//
// Both writers are crash-consistent: the bytes are staged to a temp file in
// the destination directory, fsynced, and atomically renamed over the
// target, so a process killed at any byte boundary leaves either the old
// file or the new one — never a torn mix.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kge/embedding.hpp"
#include "kge/model.hpp"

namespace dynkge::kge {

/// Write `model` to `path` (atomically). Throws std::runtime_error on I/O
/// failure.
void save_model(const KgeModel& model, const std::string& path);

/// Read a model back. Throws std::runtime_error on missing file, magic,
/// version or checksum mismatch, truncation, or an unknown model name;
/// every message names the file, the failing section, and (for version
/// mismatches) the expected vs. found version.
std::unique_ptr<KgeModel> load_model(const std::string& path);

// ---------------------------------------------------------------------
// Training snapshots.

/// One RowAdam's persistent state: global step count + moment matrices.
struct OptimizerSnapshot {
  std::int64_t step = 0;
  EmbeddingMatrix m;  ///< first-moment estimates
  EmbeddingMatrix v;  ///< second-moment estimates
};

/// PlateauScheduler state (core/lr_scheduler.hpp).
struct SchedulerSnapshot {
  double lr = 0.0;
  double best_metric = -1e300;
  std::int32_t stale_epochs = 0;
  bool stopped = false;
};

/// CommModeSelector (DRS) state (core/comm_selector.hpp). The last three
/// fields track the Top-K third arm (format version 3); they sit at their
/// defaults for two-arm runs.
struct CommSelectorSnapshot {
  bool switched = false;
  double last_allreduce_time = -1.0;
  std::int32_t epochs_recorded = 0;
  std::int32_t allreduce_epochs = 0;
  std::int32_t committed_arm = 1;
  double base_probe_time = -1.0;
  double topk_probe_time = -1.0;
};

/// Run identity + progress. The identity fields are validated on resume so
/// a snapshot cannot silently continue a different experiment.
struct TrainerSnapshot {
  std::int32_t next_epoch = 0;   ///< first epoch the resumed run executes
  std::int32_t num_nodes = 1;
  std::uint64_t seed = 0;
  std::string model_name;
  std::int32_t embedding_rank = 0;
  std::string strategy_label;    ///< StrategyConfig::label() of the run
  double total_sim_seconds = 0.0;
  double final_val_accuracy = 0.0;
  std::int32_t checkpoints_written = 0;  ///< snapshots this run has written
};

/// Everything `dynkge train --resume` needs for a bit-identical
/// continuation. `rank_residuals[r]` is an opaque blob owned by the
/// trainer (rank r's gradient-selection + error-feedback residual maps);
/// `rank_rng_seeds[r]` is the derived seed of rank r's next-epoch RNG
/// stream, stored so resume can verify the stream derivation contract.
struct TrainingSnapshot {
  std::unique_ptr<KgeModel> model;
  OptimizerSnapshot entity_opt;
  OptimizerSnapshot relation_opt;
  TrainerSnapshot trainer;
  SchedulerSnapshot scheduler;
  CommSelectorSnapshot comm_selector;
  std::vector<std::uint64_t> rank_rng_seeds;
  std::vector<std::string> rank_residuals;
};

struct SnapshotWriteOptions {
  /// Test hook for the crash-consistency harness: raise SIGKILL after this
  /// many bytes of the temp file have been written and flushed (the rename
  /// never happens, so the previous snapshot must survive intact).
  /// Negative = disabled.
  std::int64_t test_kill_after_bytes = -1;
  /// Disk-fault hook for the degradation harness: fail the first write(2)
  /// of the temp file with this errno (ENOSPC, EIO, ...). 0 = disabled.
  /// The torn temp file is unlinked before the error is thrown, so the
  /// previous snapshot is never shadowed by a half-written one.
  int test_write_errno = 0;
};

/// Global write-syscall interposition hook for disk-fault unit tests: when
/// set, every write(2) issued by the atomic snapshot/model writer goes
/// through it instead. Semantics match write(2): return the byte count
/// written (short counts are honored and retried, like a nearly-full
/// disk), or -1 with errno set to fail the write. `path` is the temp file
/// being written, so a hook can target specific files. Pass nullptr to
/// restore the real syscall. Not thread safe — set it only from
/// single-threaded test setup; rank 0 is the sole snapshot writer.
using WriteSyscallHook = ssize_t (*)(const std::string& path, int fd,
                                     const void* buf, std::size_t count);
void set_write_syscall_hook_for_testing(WriteSyscallHook hook);

/// Write a full training snapshot to `path`, atomically (temp + fsync +
/// rename). Throws std::runtime_error on I/O failure.
void save_snapshot(const TrainingSnapshot& snapshot, const std::string& path,
                   const SnapshotWriteOptions& options = {});

/// Read a training snapshot back. Fails loudly (std::runtime_error naming
/// the file, section, and expected vs. found version) on any corruption:
/// truncation, bit flips, bad magic, wrong version, or checksum mismatch.
TrainingSnapshot load_snapshot(const std::string& path);

/// Serialize a snapshot to the exact sealed DKGS byte stream save_snapshot
/// writes (magic + version + sections + checksum), without touching disk.
/// Elastic recovery keeps one of these per epoch in memory so a rank
/// failure can be recovered without a --checkpoint-dir.
std::string serialize_snapshot(const TrainingSnapshot& snapshot);

/// Parse a sealed DKGS byte stream (the inverse of serialize_snapshot,
/// and exactly what load_snapshot does after reading the file). `source`
/// names the origin in error messages — a file path or e.g. "elastic
/// recovery snapshot".
TrainingSnapshot deserialize_snapshot(std::string_view bytes,
                                      const std::string& source);

/// Atomically write already-sealed snapshot bytes (from
/// serialize_snapshot) to `path` — lets a caller serialize once and both
/// keep the buffer and persist it.
void write_snapshot_bytes(const std::string& sealed, const std::string& path,
                          const SnapshotWriteOptions& options = {});

// ---------------------------------------------------------------------
// Residual blobs (the RESD section payload, shared by the distributed and
// federated trainers).

/// A gradient-selection / error-feedback residual map: row id -> parked
/// row values.
using ResidualMap = std::unordered_map<std::int32_t, std::vector<float>>;

/// Pack residual maps into one opaque blob: each map as a u32 row count
/// followed by (i32 id, u32 width, float values) entries in ascending id
/// order, so identical state always produces identical bytes.
std::string encode_residual_maps(
    std::initializer_list<const ResidualMap*> maps);

/// Unpack a blob produced by encode_residual_maps into exactly `num_maps`
/// maps; throws std::runtime_error on truncation, trailing bytes, or an
/// implausible row width.
std::vector<ResidualMap> decode_residual_maps(const std::string& blob,
                                              std::size_t num_maps);

}  // namespace dynkge::kge
