#include "kge/complex_model.hpp"

#include <cmath>
#include <vector>

namespace dynkge::kge {

void ComplExModel::init(util::Rng& rng) {
  // Xavier-style uniform: keeps initial scores O(1) for any rank.
  const float scale =
      init_scale_ * 6.0f / std::sqrt(static_cast<float>(2 * rank_));
  entities_.init_uniform(rng, scale);
  relations_.init_uniform(rng, scale);
}

double ComplExModel::score(EntityId h, RelationId r, EntityId t) const {
  const auto eh = entities_.row(h);
  const auto er = relations_.row(r);
  const auto et = entities_.row(t);
  const std::int32_t k = rank_;
  double acc = 0.0;
  for (std::int32_t i = 0; i < k; ++i) {
    const double h_re = eh[i], h_im = eh[k + i];
    const double r_re = er[i], r_im = er[k + i];
    const double t_re = et[i], t_im = et[k + i];
    acc += h_re * r_re * t_re + h_im * r_re * t_im + h_re * r_im * t_im -
           h_im * r_im * t_re;
  }
  return acc;
}

void ComplExModel::accumulate_gradients(EntityId h, RelationId r, EntityId t,
                                        float coeff,
                                        ModelGrads& grads) const {
  const auto eh = entities_.row(h);
  const auto er = relations_.row(r);
  const auto et = entities_.row(t);
  // Create all rows first: `accumulate` may grow the arena and invalidate
  // previously returned spans, so fetch stable spans via row() afterwards.
  grads.entity.accumulate(h);
  grads.entity.accumulate(t);
  grads.relation.accumulate(r);
  const auto gh = grads.entity.row(h);
  const auto gr = grads.relation.row(r);
  const auto gt = grads.entity.row(t);

  const std::int32_t k = rank_;
  const float c = coeff;
  for (std::int32_t i = 0; i < k; ++i) {
    const float h_re = eh[i], h_im = eh[k + i];
    const float r_re = er[i], r_im = er[k + i];
    const float t_re = et[i], t_im = et[k + i];

    gh[i] += c * (r_re * t_re + r_im * t_im);
    gh[k + i] += c * (r_re * t_im - r_im * t_re);

    gr[i] += c * (h_re * t_re + h_im * t_im);
    gr[k + i] += c * (h_re * t_im - h_im * t_re);

    gt[i] += c * (h_re * r_re - h_im * r_im);
    gt[k + i] += c * (h_im * r_re + h_re * r_im);
  }
}

void ComplExModel::score_tails_block(EntityId h, RelationId r, EntityId begin,
                                     std::span<double> out) const {
  const auto eh = entities_.row(h);
  const auto er = relations_.row(r);
  const std::int32_t k = rank_;
  // Compose c = E_h * E_r (complex product); then phi(t) = Re(<c, conj(t)>).
  std::vector<float> c_re(k), c_im(k);
  for (std::int32_t i = 0; i < k; ++i) {
    c_re[i] = eh[i] * er[i] - eh[k + i] * er[k + i];
    c_im[i] = eh[k + i] * er[i] + eh[i] * er[k + i];
  }
  for (std::size_t j = 0; j < out.size(); ++j) {
    const auto et = entities_.row(begin + static_cast<EntityId>(j));
    double acc = 0.0;
    for (std::int32_t i = 0; i < k; ++i) {
      acc += static_cast<double>(c_re[i]) * et[i] +
             static_cast<double>(c_im[i]) * et[k + i];
    }
    out[j] = acc;
  }
}

void ComplExModel::score_heads_block(RelationId r, EntityId t, EntityId begin,
                                     std::span<double> out) const {
  const auto er = relations_.row(r);
  const auto et = entities_.row(t);
  const std::int32_t k = rank_;
  // phi as a function of h is linear: phi = <d_re, h_re> + <d_im, h_im>.
  std::vector<float> d_re(k), d_im(k);
  for (std::int32_t i = 0; i < k; ++i) {
    d_re[i] = er[i] * et[i] + er[k + i] * et[k + i];
    d_im[i] = er[i] * et[k + i] - er[k + i] * et[i];
  }
  for (std::size_t j = 0; j < out.size(); ++j) {
    const auto eh = entities_.row(begin + static_cast<EntityId>(j));
    double acc = 0.0;
    for (std::int32_t i = 0; i < k; ++i) {
      acc += static_cast<double>(d_re[i]) * eh[i] +
             static_cast<double>(d_im[i]) * eh[k + i];
    }
    out[j] = acc;
  }
}

}  // namespace dynkge::kge
