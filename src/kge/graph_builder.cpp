#include "kge/graph_builder.hpp"

#include <stdexcept>

namespace dynkge::kge {

Dataset GraphBuilder::dataset_with_tail_holdout(std::size_t holdout) const {
  if (holdout >= facts_.size()) {
    throw std::invalid_argument(
        "GraphBuilder: holdout must be smaller than the fact count");
  }
  TripleList train(facts_.begin(), facts_.end() - holdout);
  TripleList test(facts_.end() - holdout, facts_.end());
  TripleList valid = test;
  return Dataset(static_cast<std::int32_t>(entities_.size()),
                 static_cast<std::int32_t>(relations_.size()),
                 std::move(train), std::move(valid), std::move(test));
}

Dataset GraphBuilder::dataset_with_random_split(double valid_fraction,
                                                double test_fraction,
                                                std::uint64_t seed) const {
  if (facts_.empty()) {
    throw std::invalid_argument("GraphBuilder: no facts recorded");
  }
  TripleList shuffled = facts_;
  util::Rng rng(util::derive_seed(seed, 0x6B));
  for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
    std::swap(shuffled[i], shuffled[rng.next_below(i + 1)]);
  }

  TripleList train, valid, test;
  std::vector<bool> entity_seen(entities_.size(), false);
  std::vector<bool> relation_seen(relations_.size(), false);
  for (const Triple& t : shuffled) {
    const bool fresh = !entity_seen[t.head] || !entity_seen[t.tail] ||
                       !relation_seen[t.relation];
    entity_seen[t.head] = true;
    entity_seen[t.tail] = true;
    relation_seen[t.relation] = true;
    if (fresh) {
      train.push_back(t);
      continue;
    }
    const double u = rng.next_double();
    if (u < valid_fraction) {
      valid.push_back(t);
    } else if (u < valid_fraction + test_fraction) {
      test.push_back(t);
    } else {
      train.push_back(t);
    }
  }
  if (valid.empty()) valid = test;
  return Dataset(static_cast<std::int32_t>(entities_.size()),
                 static_cast<std::int32_t>(relations_.size()),
                 std::move(train), std::move(valid), std::move(test));
}

}  // namespace dynkge::kge
