#include "kge/evaluator.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace dynkge::kge {
namespace {

/// Best achievable accuracy threshold over (score, is_positive) pairs:
/// classify score >= threshold as positive. Returns the threshold.
double fit_threshold(std::vector<std::pair<double, bool>>& pairs) {
  // Sort descending by score; sweep the threshold between positions.
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const std::size_t total = pairs.size();
  std::size_t positives_total = 0;
  for (const auto& [score, positive] : pairs) positives_total += positive;

  // Threshold above everything: all classified negative.
  auto correct = static_cast<long long>(total - positives_total);
  long long best_correct = correct;
  double best_threshold =
      pairs.empty() ? 0.0 : pairs.front().first + 1.0;
  for (std::size_t i = 0; i < total; ++i) {
    // Move the threshold just below pairs[i].first: item i (and ties
    // handled by the loop) flips to "classified positive".
    correct += pairs[i].second ? 1 : -1;
    if (correct > best_correct &&
        (i + 1 == total || pairs[i + 1].first < pairs[i].first)) {
      best_correct = correct;
      best_threshold = (i + 1 == total)
                           ? pairs[i].first - 1.0
                           : 0.5 * (pairs[i].first + pairs[i + 1].first);
    }
  }
  return best_threshold;
}

}  // namespace

RankingMetrics Evaluator::link_prediction(const KgeModel& model,
                                          std::span<const Triple> triples,
                                          const EvalOptions& options) const {
  RankingMetrics metrics;
  const std::size_t stride =
      (options.max_triples != 0 && triples.size() > options.max_triples)
          ? (triples.size() + options.max_triples - 1) / options.max_triples
          : 1;

  std::vector<double> scores(model.num_entities());
  double mrr_sum = 0.0, rank_sum = 0.0;
  double mrr_head_sum = 0.0, mrr_tail_sum = 0.0;
  std::size_t hits1 = 0, hits3 = 0, hits10 = 0, evaluated = 0;

  const auto rank_side = [&](const Triple& t, bool corrupt_head) {
    if (corrupt_head) {
      model.score_all_heads(t.relation, t.tail, scores);
    } else {
      model.score_all_tails(t.head, t.relation, scores);
    }
    const EntityId true_entity = corrupt_head ? t.head : t.tail;
    const double true_score = scores[true_entity];
    std::size_t rank = 1;
    for (EntityId e = 0; e < model.num_entities(); ++e) {
      if (e == true_entity || scores[e] <= true_score) continue;
      if (options.filtered) {
        const bool known = corrupt_head
                               ? dataset_->contains(e, t.relation, t.tail)
                               : dataset_->contains(t.head, t.relation, e);
        if (known) continue;
      }
      ++rank;
    }
    const double reciprocal = 1.0 / static_cast<double>(rank);
    mrr_sum += reciprocal;
    (corrupt_head ? mrr_head_sum : mrr_tail_sum) += reciprocal;
    rank_sum += static_cast<double>(rank);
    hits1 += rank <= 1;
    hits3 += rank <= 3;
    hits10 += rank <= 10;
    ++evaluated;
  };

  for (std::size_t i = 0; i < triples.size(); i += stride) {
    rank_side(triples[i], /*corrupt_head=*/true);
    rank_side(triples[i], /*corrupt_head=*/false);
  }

  if (evaluated != 0) {
    metrics.mrr = mrr_sum / static_cast<double>(evaluated);
    metrics.mean_rank = rank_sum / static_cast<double>(evaluated);
    metrics.hits1 = static_cast<double>(hits1) / evaluated;
    metrics.hits3 = static_cast<double>(hits3) / evaluated;
    metrics.hits10 = static_cast<double>(hits10) / evaluated;
    // Each side ranks exactly half of `evaluated`.
    metrics.mrr_head_side = mrr_head_sum / (evaluated / 2.0);
    metrics.mrr_tail_side = mrr_tail_sum / (evaluated / 2.0);
  }
  metrics.evaluated = evaluated;
  return metrics;
}

double Evaluator::classification_accuracy(const KgeModel& model,
                                          std::span<const Triple> fit_split,
                                          std::span<const Triple> eval_split,
                                          std::uint64_t seed) const {
  if (fit_split.empty() || eval_split.empty()) return 0.0;
  util::Rng fit_rng(util::derive_seed(seed, 0x7CA));
  util::Rng eval_rng(util::derive_seed(seed, 0x7CB));

  // Fit per-relation thresholds on the fit split.
  std::unordered_map<RelationId, std::vector<std::pair<double, bool>>>
      by_relation;
  std::vector<std::pair<double, bool>> all_pairs;
  for (const Triple& pos : fit_split) {
    const Triple neg = sampler_.corrupt(pos, fit_rng);
    const double pos_score = model.score(pos.head, pos.relation, pos.tail);
    const double neg_score = model.score(neg.head, neg.relation, neg.tail);
    by_relation[pos.relation].emplace_back(pos_score, true);
    by_relation[pos.relation].emplace_back(neg_score, false);
    all_pairs.emplace_back(pos_score, true);
    all_pairs.emplace_back(neg_score, false);
  }
  std::unordered_map<RelationId, double> thresholds;
  thresholds.reserve(by_relation.size());
  for (auto& [relation, pairs] : by_relation) {
    thresholds[relation] = fit_threshold(pairs);
  }
  const double global_threshold = fit_threshold(all_pairs);

  // Classify the eval split (positives + fresh negatives).
  std::size_t correct = 0, total = 0;
  for (const Triple& pos : eval_split) {
    const Triple neg = sampler_.corrupt(pos, eval_rng);
    const auto it = thresholds.find(pos.relation);
    const double threshold =
        it != thresholds.end() ? it->second : global_threshold;
    correct += model.score(pos.head, pos.relation, pos.tail) >= threshold;
    correct += model.score(neg.head, neg.relation, neg.tail) < threshold;
    total += 2;
  }
  return 100.0 * static_cast<double>(correct) / static_cast<double>(total);
}

namespace {

std::span<const Triple> capped(std::span<const Triple> split,
                               std::size_t max_triples) {
  if (max_triples == 0 || split.size() <= max_triples) return split;
  return split.subspan(0, max_triples);
}

}  // namespace

double Evaluator::triple_classification_accuracy(
    const KgeModel& model, std::uint64_t seed, std::size_t max_triples) const {
  return classification_accuracy(model, capped(dataset_->valid(), max_triples),
                                 capped(dataset_->test(), max_triples), seed);
}

double Evaluator::validation_accuracy(const KgeModel& model,
                                      std::uint64_t seed,
                                      std::size_t max_triples) const {
  const auto split = capped(dataset_->valid(), max_triples);
  return classification_accuracy(model, split, split, seed);
}

std::pair<double, std::size_t> Evaluator::validation_accuracy_subset(
    const KgeModel& model, std::span<const Triple> subset,
    std::uint64_t seed) const {
  if (subset.empty()) return {0.0, 0};
  return {classification_accuracy(model, subset, subset, seed),
          2 * subset.size()};
}

}  // namespace dynkge::kge
