// TransE (Bordes et al., 2013) with the DGL-KE-style shifted score so it
// trains under the same logistic loss as ComplEx:
//
//   phi(h,r,t) = gamma - || E_h + R_r - E_t ||_1
//
// The margin constant gamma keeps true triples at positive scores; the
// original max-margin formulation is recovered by pairing positive and
// negative logistic terms. Included as a future-work model (the paper's
// predecessor work, Gupta & Vadhiyar 2019, trained TransE at scale).
#pragma once

#include "kge/model.hpp"

namespace dynkge::kge {

class TransEModel final : public KgeModel {
 public:
  TransEModel(std::int32_t num_entities, std::int32_t num_relations,
              std::int32_t rank, float gamma = 12.0f)
      : KgeModel(num_entities, num_relations, rank, rank),
        rank_(rank),
        gamma_(gamma) {}

  std::string name() const override { return "TransE"; }
  std::int32_t rank() const { return rank_; }
  float gamma() const { return gamma_; }

  void init(util::Rng& rng) override;

  double score(EntityId h, RelationId r, EntityId t) const override;

  void accumulate_gradients(EntityId h, RelationId r, EntityId t, float coeff,
                            ModelGrads& grads) const override;

  // Blocked training kernels (src/kge/block_kernels.cpp).
  void score_triples_block(std::span<const Triple> triples,
                           std::span<double> out) const override;
  void accumulate_gradients_block(std::span<const GradWork> work,
                                  ModelGrads& grads) const override;
  bool has_block_kernels() const override { return true; }

 private:
  std::int32_t rank_;
  float gamma_;
};

}  // namespace dynkge::kge
