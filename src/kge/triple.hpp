// The fundamental knowledge-graph record: {head entity, relation, tail
// entity}, e.g. {New Delhi, capital of, India}.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace dynkge::kge {

using EntityId = std::int32_t;
using RelationId = std::int32_t;

struct Triple {
  EntityId head = 0;
  RelationId relation = 0;
  EntityId tail = 0;

  friend bool operator==(const Triple&, const Triple&) = default;
};

using TripleList = std::vector<Triple>;

/// Pack a triple into one 64-bit key (21 bits per field — supports up to
/// two million entities/relations, comfortably beyond FB250K's 240K/9.3K).
constexpr std::uint64_t pack_triple(EntityId head, RelationId relation,
                                    EntityId tail) noexcept {
  constexpr std::uint64_t kMask = (1ULL << 21) - 1;
  return ((static_cast<std::uint64_t>(head) & kMask) << 42) |
         ((static_cast<std::uint64_t>(relation) & kMask) << 21) |
         (static_cast<std::uint64_t>(tail) & kMask);
}

constexpr std::uint64_t pack_triple(const Triple& t) noexcept {
  return pack_triple(t.head, t.relation, t.tail);
}

struct TripleHash {
  std::size_t operator()(const Triple& t) const noexcept {
    return std::hash<std::uint64_t>{}(pack_triple(t));
  }
};

}  // namespace dynkge::kge
