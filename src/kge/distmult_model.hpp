// DistMult (Yang et al., 2015): the real-valued special case of ComplEx.
//
//   phi(h,r,t) = sum_k E_h[k] * R_r[k] * E_t[k]
//
// Included as one of the paper's future-work targets ("explore our methods
// with other KGE models"); all five strategies except none are model
// specific, so DistMult runs through the identical trainer.
#pragma once

#include "kge/model.hpp"

namespace dynkge::kge {

class DistMultModel final : public KgeModel {
 public:
  DistMultModel(std::int32_t num_entities, std::int32_t num_relations,
                std::int32_t rank)
      : KgeModel(num_entities, num_relations, rank, rank), rank_(rank) {}

  std::string name() const override { return "DistMult"; }
  std::int32_t rank() const { return rank_; }

  void init(util::Rng& rng) override;

  double score(EntityId h, RelationId r, EntityId t) const override;

  void accumulate_gradients(EntityId h, RelationId r, EntityId t, float coeff,
                            ModelGrads& grads) const override;

  // Blocked training kernels (src/kge/block_kernels.cpp).
  void score_triples_block(std::span<const Triple> triples,
                           std::span<double> out) const override;
  void accumulate_gradients_block(std::span<const GradWork> work,
                                  ModelGrads& grads) const override;
  bool has_block_kernels() const override { return true; }

  void score_tails_block(EntityId h, RelationId r, EntityId begin,
                         std::span<double> out) const override;
  void score_heads_block(RelationId r, EntityId t, EntityId begin,
                         std::span<double> out) const override;

 private:
  std::int32_t rank_;
};

}  // namespace dynkge::kge
