// Incremental construction of a named knowledge graph.
//
// The numeric Dataset API wants dense integer ids; applications have
// strings. GraphBuilder interns entity/relation names, accumulates facts,
// and produces a Dataset with a chosen holdout split — the ergonomic path
// from "my domain facts" to "trainable KG".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kge/dataset.hpp"
#include "util/rng.hpp"

namespace dynkge::kge {

class GraphBuilder {
 public:
  /// Record one fact; unseen entity/relation names are interned.
  void fact(const std::string& head, const std::string& relation,
            const std::string& tail) {
    facts_.push_back(
        Triple{entity(head), this->relation(relation), entity(tail)});
  }

  /// Id for a name (interning it if new).
  EntityId entity(const std::string& name) {
    const auto [it, inserted] =
        entity_ids_.emplace(name, static_cast<EntityId>(entities_.size()));
    if (inserted) entities_.push_back(name);
    return it->second;
  }
  RelationId relation(const std::string& name) {
    const auto [it, inserted] = relation_ids_.emplace(
        name, static_cast<RelationId>(relations_.size()));
    if (inserted) relations_.push_back(name);
    return it->second;
  }

  const std::string& entity_name(EntityId id) const { return entities_[id]; }
  const std::string& relation_name(RelationId id) const {
    return relations_[id];
  }

  std::size_t num_entities() const { return entities_.size(); }
  std::size_t num_relations() const { return relations_.size(); }
  std::size_t num_facts() const { return facts_.size(); }

  /// Build a Dataset whose test (and, reused, validation) split is the
  /// last `holdout` recorded facts. Throws if holdout >= facts.
  Dataset dataset_with_tail_holdout(std::size_t holdout) const;

  /// Build a Dataset with a seeded random split by fractions. Facts whose
  /// entities/relations would otherwise be absent from train are forced
  /// into train.
  Dataset dataset_with_random_split(double valid_fraction,
                                    double test_fraction,
                                    std::uint64_t seed) const;

 private:
  std::map<std::string, EntityId> entity_ids_;
  std::map<std::string, RelationId> relation_ids_;
  std::vector<std::string> entities_;
  std::vector<std::string> relations_;
  TripleList facts_;
};

}  // namespace dynkge::kge
