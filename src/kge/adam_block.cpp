// Blocked Adam application: one call retires every row of a SparseGrad.
//
// This translation unit is compiled with -fno-math-errno (value-safe: only
// libm's errno side effect is dropped) so the per-element loop — which
// carries a double sqrt — vectorizes. The scalar reference path
// (RowAdam::update_row in adam.cpp) keeps the default flags; the kernel
// benchmark compares against its pre-overhaul codegen.
//
// Determinism contract (DESIGN.md "Blocked training kernels"): rows are
// visited in ascending id order — exactly the order the scalar trainer
// loop visits sorted_ids() — and the per-element arithmetic is copied
// verbatim from update_row, so parameters, moments, and their bytes are
// identical between the two paths. The only differences are mechanical:
// sorted_slots() replaces one hash lookup per row with a direct arena
// access, and the step-state checks and config loads are hoisted out of
// the row loop.

#include <cmath>
#include <stdexcept>

#include "kge/adam.hpp"
#include "kge/kernel_dispatch.hpp"

namespace dynkge::kge {
namespace {

DYNKGE_KERNEL_CLONES
void adam_row(const float* __restrict g, float* __restrict p,
              float* __restrict m, float* __restrict v, std::size_t n,
              float b1, float b2, float wd, double lr, double bias1,
              double bias2, double epsilon) {
  for (std::size_t i = 0; i < n; ++i) {
    const float gi = g[i] + wd * p[i];
    m[i] = b1 * m[i] + (1.0f - b1) * gi;
    v[i] = b2 * v[i] + (1.0f - b2) * gi * gi;
    const double m_hat = m[i] / bias1;
    const double v_hat = v[i] / bias2;
    p[i] -= static_cast<float>(lr * m_hat / (std::sqrt(v_hat) + epsilon));
  }
}

}  // namespace

void RowAdam::update_rows(const SparseGrad& grads, EmbeddingMatrix& params) {
  if (step_ == 0) {
    throw std::logic_error("RowAdam::update_rows before begin_step");
  }
  if (grads.width() != params.width()) {
    throw std::invalid_argument("RowAdam: gradient width mismatch");
  }
  const auto n = static_cast<std::size_t>(params.width());
  const auto b1 = static_cast<float>(config_.beta1);
  const auto b2 = static_cast<float>(config_.beta2);
  const auto wd = static_cast<float>(config_.weight_decay);
  const double lr = config_.learning_rate;
  for (const SparseGrad::SlotRef& slot : grads.sorted_slots()) {
    adam_row(grads.row_at(slot.offset).data(), params.row(slot.id).data(),
             m_.row(slot.id).data(), v_.row(slot.id).data(), n, b1, b2, wd,
             lr, bias1_, bias2_, config_.epsilon);
  }
}

void RowAdam::update_rows_scaled(SparseGrad& grads, float scale,
                                 EmbeddingMatrix& params) {
  if (step_ == 0) {
    throw std::logic_error("RowAdam::update_rows_scaled before begin_step");
  }
  if (grads.width() != params.width()) {
    throw std::invalid_argument("RowAdam: gradient width mismatch");
  }
  const auto n = static_cast<std::size_t>(params.width());
  const auto b1 = static_cast<float>(config_.beta1);
  const auto b2 = static_cast<float>(config_.beta2);
  const auto wd = static_cast<float>(config_.weight_decay);
  const double lr = config_.learning_rate;
  for (const SparseGrad::SlotRef& slot : grads.sorted_slots()) {
    const auto row = grads.row_at(slot.offset);
    // Scale in place first — the same two-statement shape as the scalar
    // relation-partition path (scale loop, then update), so the float
    // rounding sequence is identical.
    for (float& x : row) x *= scale;
    adam_row(row.data(), params.row(slot.id).data(), m_.row(slot.id).data(),
             v_.row(slot.id).data(), n, b1, b2, wd, lr, bias1_, bias2_,
             config_.epsilon);
  }
}

}  // namespace dynkge::kge
