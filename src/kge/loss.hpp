// The paper's training loss (section 3.1):
//
//   min_theta  sum_{h,r,t} log(1 + exp(-Y_{hrt} * phi_{hrt})) + lambda ||theta||^2
//
// with Y = +1 for true triples and -1 for corrupted ones. The L2 term is
// applied as weight decay on the touched rows inside the optimizer (see
// adam.hpp), which is the sparse-update equivalent of the dense penalty.
#pragma once

#include "util/span_math.hpp"

namespace dynkge::kge {

struct LossGrad {
  double loss = 0.0;    ///< log(1 + exp(-y * phi))
  double dscore = 0.0;  ///< d loss / d phi = -y * sigmoid(-y * phi)
};

/// Logistic loss of one scored triple with label y in {+1, -1}.
inline LossGrad logistic_loss(double score, int label) noexcept {
  const double y = static_cast<double>(label);
  const double z = -y * score;
  LossGrad out;
  out.loss = util::softplus(z);
  out.dscore = -y * util::sigmoid(z);
  return out;
}

}  // namespace dynkge::kge
