#include "kge/negative_sampler.hpp"

namespace dynkge::kge {

Triple NegativeSampler::corrupt(const Triple& positive,
                                util::Rng& rng) const {
  const auto num_entities =
      static_cast<std::uint64_t>(dataset_->num_entities());
  // Bounded retries: on a pathological graph where nearly every corruption
  // is a true triple, fall back to returning the last candidate rather
  // than looping forever.
  for (int attempt = 0; attempt < 16; ++attempt) {
    Triple candidate = positive;
    const auto replacement = static_cast<EntityId>(rng.next_below(num_entities));
    if (rng.next_bernoulli(0.5)) {
      candidate.head = replacement;
    } else {
      candidate.tail = replacement;
    }
    if (candidate == positive) continue;
    if (filter_known_ && dataset_->contains(candidate)) continue;
    return candidate;
  }
  Triple fallback = positive;
  fallback.tail = static_cast<EntityId>(rng.next_below(num_entities));
  return fallback;
}

void NegativeSampler::corrupt_n(const Triple& positive, int n, util::Rng& rng,
                                TripleList& out) const {
  for (int i = 0; i < n; ++i) out.push_back(corrupt(positive, rng));
}

}  // namespace dynkge::kge
