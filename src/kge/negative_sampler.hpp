// Negative triple generation by uniform corruption (the standard scheme the
// paper starts from): replace either the head or the tail of a true triple
// with a uniformly random entity, optionally rejecting corruptions that
// happen to be known-true triples ("filtered" sampling).
//
// The paper's strategy 5 (hard negative selection) builds on top of this:
// it draws n candidates from here and keeps the ones the model scores
// highest (core/hard_negatives.hpp).
#pragma once

#include "kge/dataset.hpp"
#include "util/rng.hpp"

namespace dynkge::kge {

class NegativeSampler {
 public:
  /// `filter_known` rejects corruptions present in any dataset split (the
  /// dataset must outlive the sampler).
  explicit NegativeSampler(const Dataset& dataset, bool filter_known = true)
      : dataset_(&dataset), filter_known_(filter_known) {}

  /// One corrupted copy of `positive` (head or tail replaced, 50/50).
  Triple corrupt(const Triple& positive, util::Rng& rng) const;

  /// Append `n` corrupted copies of `positive` to `out`.
  void corrupt_n(const Triple& positive, int n, util::Rng& rng,
                 TripleList& out) const;

  bool filters_known() const { return filter_known_; }

 private:
  const Dataset* dataset_;
  bool filter_known_;
};

}  // namespace dynkge::kge
