// Synthetic Freebase-like knowledge-graph generator.
//
// The paper evaluates on FB15K and FB250K, which are not redistributable
// here (DESIGN.md section 2). This generator produces graphs with the same
// statistical structure the paper's strategies depend on:
//
//  * Zipfian relation frequencies — a few relations carry most triples,
//    which is what makes relation partitioning balance non-trivial and
//    gradient-row sparsity per batch skewed.
//  * Power-law entity popularity — hub entities get dense gradient rows
//    every batch, tail entities rarely, driving the all-gather sparsity
//    the dynamic communication selection exploits.
//  * A closed-world cluster-pair ground truth — each relation r selects a
//    head set H_r and a tail set T_r (popularity-biased subsets of two
//    latent entity types) and *every* pair H_r x T_r is a fact in the
//    dataset. This makes the graph learnable (the bilinear cluster
//    structure is exactly what ComplEx represents), and — critically for
//    strategy 5 — closed-world: a filtered corruption sampler can never
//    produce a plausible-but-unrecorded triple, so the "hardest" negatives
//    are genuinely false, the same property that makes hard-negative
//    mining effective on FB15K.
//
// Splits mimic the originals: every entity and relation that occurs in
// valid/test also occurs in train.
#pragma once

#include <cstdint>

#include "kge/dataset.hpp"

namespace dynkge::kge {

struct SyntheticSpec {
  std::int32_t num_entities = 2000;
  std::int32_t num_relations = 160;
  std::size_t num_triples = 40000;  ///< target total facts (pre-dedup cap)

  int num_latent_types = 16;        ///< hidden entity types
  double noise_fraction = 0.05;     ///< triples ignoring the type model
  double entity_exponent = 0.8;     ///< popularity skew within a type
  double relation_exponent = 1.05;  ///< Zipf exponent over relations

  double valid_fraction = 0.02;
  double test_fraction = 0.02;

  std::uint64_t seed = 1;

  /// Default experiment scale standing in for FB15K (14951 entities, 1345
  /// relations, ~600K triples): same shape, ~15x smaller.
  static SyntheticSpec fb15k_mini();
  /// Paper-sized FB15K-like graph (use --scale full in the benches).
  static SyntheticSpec fb15k_full();
  /// Default experiment scale standing in for FB250K (240K entities, 9280
  /// relations, ~16M facts): same shape, ~80x smaller.
  static SyntheticSpec fb250k_mini();
  /// Paper-sized FB250K-like graph. Heavy: ~16M triples.
  static SyntheticSpec fb250k_full();
};

/// Deterministically generate a dataset from the spec (same spec + seed ->
/// identical dataset, independent of platform).
Dataset generate_synthetic(const SyntheticSpec& spec);

}  // namespace dynkge::kge
