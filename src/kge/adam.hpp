// Sparse-row Adam (Kingma & Ba, 2014), the paper's optimizer.
//
// KGE gradients touch only a handful of embedding rows per step, so moment
// estimates are updated lazily per touched row while the bias-correction
// step count t is global — the "sparse Adam" semantics of the TensorFlow
// setup the paper used. The paper's L2 regularization term lambda||theta||^2
// is applied as per-row weight decay (gradient += 2*lambda*theta_row).
//
// Determinism note: in distributed training every replica applies identical
// updates to identical rows in identical (sorted) order, so replicas stay
// bit-identical — an invariant the tests assert.
#pragma once

#include <cstdint>
#include <vector>

#include "kge/embedding.hpp"

namespace dynkge::kge {

struct AdamConfig {
  double learning_rate = 0.001;  ///< paper's initial LR (before node scaling)
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;  ///< 2*lambda of the paper's L2 penalty
};

class RowAdam {
 public:
  RowAdam(std::int32_t rows, std::int32_t width, AdamConfig config = {});

  /// Advance the global step and precompute the bias corrections. Call once
  /// per optimizer step, before any update_row of that step.
  void begin_step();

  /// Apply one Adam update to `params.row(row)` with gradient `grad`.
  void update_row(std::int32_t row, std::span<const float> grad,
                  EmbeddingMatrix& params);

  /// Blocked form (adam_block.cpp): apply one Adam update per row of
  /// `grads`, in ascending id order — byte-identical to calling update_row
  /// for each sorted id, but without the per-row hash lookups and with a
  /// vectorizable inner loop (the TU drops libm errno).
  void update_rows(const SparseGrad& grads, EmbeddingMatrix& params);

  /// update_rows after scaling every gradient row by `scale` in place
  /// (the relation-partition path divides the local gradient by the node
  /// count before the update; scaling mutates `grads` exactly like the
  /// scalar path does).
  void update_rows_scaled(SparseGrad& grads, float scale,
                          EmbeddingMatrix& params);

  double learning_rate() const { return config_.learning_rate; }
  void set_learning_rate(double lr) { config_.learning_rate = lr; }
  const AdamConfig& config() const { return config_; }
  std::int64_t step() const { return step_; }

  /// Snapshot accessors: the persistent state is (step, m, v). The bias
  /// corrections are derived from step by the next begin_step().
  const EmbeddingMatrix& moment1() const { return m_; }
  const EmbeddingMatrix& moment2() const { return v_; }

  /// Restore the persistent state from a checkpoint. Throws
  /// std::invalid_argument if the moment shapes do not match this
  /// optimizer's shape or `step` is negative.
  void restore(std::int64_t step, EmbeddingMatrix m, EmbeddingMatrix v);

 private:
  AdamConfig config_;
  std::int64_t step_ = 0;
  double bias1_ = 1.0;  ///< 1 - beta1^t
  double bias2_ = 1.0;  ///< 1 - beta2^t
  EmbeddingMatrix m_;   ///< first-moment estimates
  EmbeddingMatrix v_;   ///< second-moment estimates
};

}  // namespace dynkge::kge
