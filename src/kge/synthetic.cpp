#include "kge/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.hpp"

namespace dynkge::kge {

using util::Rng;
using util::ZipfSampler;

SyntheticSpec SyntheticSpec::fb15k_mini() {
  SyntheticSpec spec;
  spec.num_entities = 2000;
  spec.num_relations = 160;
  spec.num_triples = 40000;
  spec.num_latent_types = 16;
  spec.seed = 151;
  return spec;
}

SyntheticSpec SyntheticSpec::fb15k_full() {
  SyntheticSpec spec;
  spec.num_entities = 14951;
  spec.num_relations = 1345;
  spec.num_triples = 600000;
  spec.num_latent_types = 40;
  spec.seed = 151;
  return spec;
}

SyntheticSpec SyntheticSpec::fb250k_mini() {
  SyntheticSpec spec;
  spec.num_entities = 12000;
  spec.num_relations = 640;
  spec.num_triples = 200000;
  spec.num_latent_types = 32;
  spec.seed = 251;
  return spec;
}

SyntheticSpec SyntheticSpec::fb250k_full() {
  SyntheticSpec spec;
  spec.num_entities = 240000;
  spec.num_relations = 9280;
  spec.num_triples = 16000000;
  spec.num_latent_types = 64;
  spec.seed = 251;
  return spec;
}

Dataset generate_synthetic(const SyntheticSpec& spec) {
  if (spec.num_entities <= 0 || spec.num_relations <= 0 ||
      spec.num_triples == 0) {
    throw std::invalid_argument("generate_synthetic: empty spec");
  }
  if (spec.num_latent_types <= 0 ||
      spec.num_latent_types > spec.num_entities) {
    throw std::invalid_argument("generate_synthetic: bad num_latent_types");
  }

  Rng rng(util::derive_seed(spec.seed, 0xFACADE));

  const auto num_entities = static_cast<std::size_t>(spec.num_entities);
  const auto num_types = static_cast<std::size_t>(spec.num_latent_types);

  // Popularity-ordered random permutation of entities: position in `perm`
  // is the entity's global popularity rank.
  std::vector<EntityId> perm(num_entities);
  for (std::size_t i = 0; i < num_entities; ++i) {
    perm[i] = static_cast<EntityId>(i);
  }
  for (std::size_t i = num_entities - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.next_below(i + 1)]);
  }

  // Round-robin over the popularity order so every type gets a mix of hot
  // and cold entities; each type's list stays sorted by popularity.
  std::vector<std::vector<EntityId>> entities_of_type(num_types);
  for (std::size_t i = 0; i < num_entities; ++i) {
    entities_of_type[i % num_types].push_back(perm[i]);
  }
  std::vector<ZipfSampler> type_sampler;
  type_sampler.reserve(num_types);
  for (const auto& group : entities_of_type) {
    type_sampler.emplace_back(group.size(), spec.entity_exponent);
  }

  // Zipfian fact budget per relation.
  std::vector<double> weight(spec.num_relations);
  double weight_sum = 0.0;
  for (std::int32_t r = 0; r < spec.num_relations; ++r) {
    weight[r] = 1.0 / std::pow(static_cast<double>(r + 1),
                               spec.relation_exponent);
    weight_sum += weight[r];
  }

  // Popularity-biased sample of `count` distinct entities from one type.
  const auto sample_subset = [&](std::size_t type, std::size_t count) {
    const auto& group = entities_of_type[type];
    count = std::min(count, group.size());
    std::unordered_set<EntityId> chosen;
    std::vector<EntityId> subset;
    subset.reserve(count);
    std::size_t attempts = 0;
    while (subset.size() < count && attempts < count * 64) {
      ++attempts;
      const EntityId e = group[type_sampler[type].sample(rng)];
      if (chosen.insert(e).second) subset.push_back(e);
    }
    // Fill any shortfall deterministically from the popularity order.
    for (std::size_t i = 0; subset.size() < count && i < group.size(); ++i) {
      if (chosen.insert(group[i]).second) subset.push_back(group[i]);
    }
    return subset;
  };

  // Closed-world construction: relation r is the complete bipartite fact
  // set H_r x T_r. Every generated pair goes into the dataset, so the
  // known-triple filter covers the entire ground truth.
  TripleList triples;
  triples.reserve(spec.num_triples + spec.num_triples / 8);
  const double noise_budget =
      static_cast<double>(spec.num_triples) * spec.noise_fraction;
  const double fact_budget =
      static_cast<double>(spec.num_triples) - noise_budget;

  for (std::int32_t r = 0; r < spec.num_relations; ++r) {
    const double target = fact_budget * weight[r] / weight_sum;
    // Split the pair budget into |H_r| x |T_r| with a random aspect ratio
    // so some relations are one-to-many and others many-to-many.
    const double side = std::sqrt(std::max(1.0, target));
    const double skew = std::exp(rng.next_double(-0.7, 0.7));
    const auto heads_count = static_cast<std::size_t>(
        std::max(1.0, std::round(side * skew)));
    const auto tails_count = static_cast<std::size_t>(
        std::max(1.0, std::round(target / std::max(1.0, side * skew))));

    const std::size_t src_type = rng.next_below(num_types);
    const std::size_t dst_type = rng.next_below(num_types);
    const auto heads = sample_subset(src_type, heads_count);
    const auto tails = sample_subset(dst_type, tails_count);
    for (const EntityId h : heads) {
      for (const EntityId t : tails) {
        triples.push_back(Triple{h, r, t});
      }
    }
  }

  // A sprinkle of idiosyncratic facts (also part of the closed world).
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(triples.size() * 2);
  for (const Triple& t : triples) seen.insert(pack_triple(t));
  const auto noise_triples = static_cast<std::size_t>(noise_budget);
  for (std::size_t i = 0; i < noise_triples; ++i) {
    const auto r =
        static_cast<RelationId>(rng.next_below(spec.num_relations));
    const auto h = static_cast<EntityId>(rng.next_below(num_entities));
    const auto t = static_cast<EntityId>(rng.next_below(num_entities));
    if (seen.insert(pack_triple(h, r, t)).second) {
      triples.push_back(Triple{h, r, t});
    }
  }

  // Shuffle so split assignment is independent of generation order.
  for (std::size_t i = triples.size() - 1; i > 0; --i) {
    std::swap(triples[i], triples[rng.next_below(i + 1)]);
  }

  // Split. A triple introducing an unseen entity or relation must go to
  // train so that valid/test never reference untrained embeddings — the
  // same property the original FB15K/FB250K splits have.
  TripleList train, valid, test;
  std::vector<bool> entity_seen(num_entities, false);
  std::vector<bool> relation_seen(spec.num_relations, false);
  for (const Triple& t : triples) {
    const bool fresh = !entity_seen[t.head] || !entity_seen[t.tail] ||
                       !relation_seen[t.relation];
    entity_seen[t.head] = true;
    entity_seen[t.tail] = true;
    relation_seen[t.relation] = true;
    if (fresh) {
      train.push_back(t);
      continue;
    }
    const double u = rng.next_double();
    if (u < spec.valid_fraction) {
      valid.push_back(t);
    } else if (u < spec.valid_fraction + spec.test_fraction) {
      test.push_back(t);
    } else {
      train.push_back(t);
    }
  }

  return Dataset(spec.num_entities, spec.num_relations, std::move(train),
                 std::move(valid), std::move(test));
}

}  // namespace dynkge::kge
