// Loaders for on-disk knowledge-graph datasets.
//
// Two formats are supported:
//
//  * OpenKE layout (what the paper's evaluation pipeline consumes):
//    train2id.txt / valid2id.txt / test2id.txt, each starting with a count
//    line followed by `head tail relation` integer lines, plus
//    entity2id.txt / relation2id.txt whose first line is the vocabulary
//    size.
//
//  * Plain TSV: one `head<TAB>relation<TAB>tail` string triple per line in
//    train.txt / valid.txt / test.txt; vocabularies are built on the fly.
//
// If the real FB15K/FB250K files are placed under a directory, the bench
// harness can run on them via --data <dir>; otherwise it falls back to the
// synthetic generator (see synthetic.hpp).
#pragma once

#include <string>

#include "kge/dataset.hpp"

namespace dynkge::kge {

/// Load an OpenKE-format dataset from `dir`. Throws std::runtime_error on
/// missing files or malformed content.
Dataset load_openke(const std::string& dir);

/// Load a plain TSV dataset (train.txt/valid.txt/test.txt) from `dir`.
Dataset load_tsv(const std::string& dir);

/// Try OpenKE first, then TSV.
Dataset load_dataset(const std::string& dir);

/// Write `dataset` to `dir` in the OpenKE layout (entity2id.txt,
/// relation2id.txt, {train,valid,test}2id.txt). Entities and relations get
/// synthetic names ("e<i>", "r<i>"). Creates the directory if needed.
void save_openke(const Dataset& dataset, const std::string& dir);

}  // namespace dynkge::kge
