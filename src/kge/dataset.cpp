#include "kge/dataset.hpp"

#include <sstream>
#include <stdexcept>

namespace dynkge::kge {
namespace {

void validate_split(std::span<const Triple> triples, std::int32_t num_entities,
                    std::int32_t num_relations, const char* split) {
  for (const Triple& t : triples) {
    if (t.head < 0 || t.head >= num_entities || t.tail < 0 ||
        t.tail >= num_entities) {
      throw std::invalid_argument(std::string("Dataset: entity id out of "
                                              "range in split ") +
                                  split);
    }
    if (t.relation < 0 || t.relation >= num_relations) {
      throw std::invalid_argument(std::string("Dataset: relation id out of "
                                              "range in split ") +
                                  split);
    }
  }
}

}  // namespace

Dataset::Dataset(std::int32_t num_entities, std::int32_t num_relations,
                 TripleList train, TripleList valid, TripleList test)
    : num_entities_(num_entities),
      num_relations_(num_relations),
      train_(std::move(train)),
      valid_(std::move(valid)),
      test_(std::move(test)) {
  if (num_entities <= 0 || num_relations <= 0) {
    throw std::invalid_argument("Dataset: entity/relation counts must be > 0");
  }
  if (num_entities_ >= (1 << 21) || num_relations_ >= (1 << 21)) {
    throw std::invalid_argument("Dataset: id space exceeds 21-bit packing");
  }
  validate_split(train_, num_entities_, num_relations_, "train");
  validate_split(valid_, num_entities_, num_relations_, "valid");
  validate_split(test_, num_entities_, num_relations_, "test");

  known_.reserve(num_facts() * 2);
  for (const auto* split : {&train_, &valid_, &test_}) {
    for (const Triple& t : *split) known_.insert(pack_triple(t));
  }
}

std::string Dataset::summary(const std::string& name) const {
  std::ostringstream os;
  os << name << ": " << num_entities_ << " entities, " << num_relations_
     << " relations, " << train_.size() << " train / " << valid_.size()
     << " valid / " << test_.size() << " test triples";
  return os.str();
}

}  // namespace dynkge::kge
