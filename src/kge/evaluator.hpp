// Standard KGE evaluation (paper section 3.2, following ComplEx/OpenKE):
//
//  * Link prediction: for every test triple, replace the head with every
//    entity, rank the true triple by score, take the reciprocal rank; same
//    with the tail; average. "Filtered" skips candidate corruptions that
//    are themselves known-true triples in any split.
//
//  * Triple classification accuracy (TCA): per-relation score thresholds
//    are fitted on the validation split (positives + sampled negatives)
//    and applied to the test split with fresh negatives; accuracy is the
//    fraction of correctly classified triples.
#pragma once

#include <cstdint>
#include <span>

#include "kge/dataset.hpp"
#include "kge/model.hpp"
#include "kge/negative_sampler.hpp"

namespace dynkge::kge {

struct EvalOptions {
  bool filtered = true;        ///< filtered-MRR as reported in the paper
  std::size_t max_triples = 0; ///< 0 = evaluate all; else a deterministic
                               ///< stride subsample (keeps benches fast)
};

struct RankingMetrics {
  double mrr = 0.0;
  double mean_rank = 0.0;
  double hits1 = 0.0;
  double hits3 = 0.0;
  double hits10 = 0.0;
  std::size_t evaluated = 0;  ///< number of (triple, side) rankings

  /// Side breakdown (standard KGE reporting): ranking with the head
  /// replaced vs with the tail replaced. For 1-N relations predicting
  /// the "1" side is much easier than the "N" side.
  double mrr_head_side = 0.0;  ///< head replaced by every entity
  double mrr_tail_side = 0.0;  ///< tail replaced by every entity
};

class Evaluator {
 public:
  explicit Evaluator(const Dataset& dataset)
      : dataset_(&dataset), sampler_(dataset, /*filter_known=*/true) {}

  /// Rank-based metrics over `triples` (usually dataset.test()).
  RankingMetrics link_prediction(const KgeModel& model,
                                 std::span<const Triple> triples,
                                 const EvalOptions& options = {}) const;

  /// TCA in percent: thresholds fitted on valid, measured on test.
  /// `max_triples` != 0 caps both splits (prefix subsample) for speed.
  double triple_classification_accuracy(const KgeModel& model,
                                        std::uint64_t seed = 7,
                                        std::size_t max_triples = 0) const;

  /// Validation-split accuracy in percent (thresholds and measurement both
  /// on valid) — the quantity the paper's plateau LR scheduler watches.
  double validation_accuracy(const KgeModel& model, std::uint64_t seed = 7,
                             std::size_t max_triples = 0) const;

  /// Accuracy over an arbitrary triple subset (thresholds fit on the same
  /// subset). Returns {accuracy percent, classified pairs}; {0, 0} for an
  /// empty subset. Used for distributed validation under relation
  /// partition, where each rank can only score the relations it owns.
  std::pair<double, std::size_t> validation_accuracy_subset(
      const KgeModel& model, std::span<const Triple> subset,
      std::uint64_t seed = 7) const;

 private:
  double classification_accuracy(const KgeModel& model,
                                 std::span<const Triple> fit_split,
                                 std::span<const Triple> eval_split,
                                 std::uint64_t seed) const;

  const Dataset* dataset_;
  NegativeSampler sampler_;
};

}  // namespace dynkge::kge
