#include "kge/adam.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace dynkge::kge {

RowAdam::RowAdam(std::int32_t rows, std::int32_t width, AdamConfig config)
    : config_(config), m_(rows, width), v_(rows, width) {}

void RowAdam::begin_step() {
  ++step_;
  bias1_ = 1.0 - std::pow(config_.beta1, static_cast<double>(step_));
  bias2_ = 1.0 - std::pow(config_.beta2, static_cast<double>(step_));
}

void RowAdam::restore(std::int64_t step, EmbeddingMatrix m,
                      EmbeddingMatrix v) {
  if (step < 0) {
    throw std::invalid_argument("RowAdam::restore: negative step");
  }
  if (m.rows() != m_.rows() || m.width() != m_.width() ||
      v.rows() != v_.rows() || v.width() != v_.width()) {
    throw std::invalid_argument(
        "RowAdam::restore: moment shape mismatch (optimizer is " +
        std::to_string(m_.rows()) + "x" + std::to_string(m_.width()) +
        ", checkpoint has " + std::to_string(m.rows()) + "x" +
        std::to_string(m.width()) + ")");
  }
  step_ = step;
  bias1_ = 1.0 - std::pow(config_.beta1, static_cast<double>(step_));
  bias2_ = 1.0 - std::pow(config_.beta2, static_cast<double>(step_));
  m_ = std::move(m);
  v_ = std::move(v);
}

void RowAdam::update_row(std::int32_t row, std::span<const float> grad,
                         EmbeddingMatrix& params) {
  if (step_ == 0) {
    throw std::logic_error("RowAdam::update_row before begin_step");
  }
  auto p = params.row(row);
  auto m = m_.row(row);
  auto v = v_.row(row);
  if (grad.size() != p.size()) {
    throw std::invalid_argument("RowAdam: gradient width mismatch");
  }
  const auto b1 = static_cast<float>(config_.beta1);
  const auto b2 = static_cast<float>(config_.beta2);
  const auto wd = static_cast<float>(config_.weight_decay);
  const double lr = config_.learning_rate;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float g = grad[i] + wd * p[i];
    m[i] = b1 * m[i] + (1.0f - b1) * g;
    v[i] = b2 * v[i] + (1.0f - b2) * g * g;
    const double m_hat = m[i] / bias1_;
    const double v_hat = v[i] / bias2_;
    p[i] -= static_cast<float>(lr * m_hat /
                               (std::sqrt(v_hat) + config_.epsilon));
  }
}

}  // namespace dynkge::kge
