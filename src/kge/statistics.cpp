#include "kge/statistics.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace dynkge::kge {
namespace {

double gini(std::vector<std::size_t> counts) {
  // Standard formula over the sorted distribution; 0 for empty/uniform.
  counts.erase(std::remove(counts.begin(), counts.end(), 0u), counts.end());
  if (counts.size() < 2) return 0.0;
  std::sort(counts.begin(), counts.end());
  double weighted = 0.0, total = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(counts[i]);
    total += static_cast<double>(counts[i]);
  }
  const double n = static_cast<double>(counts.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

}  // namespace

const char* to_string(RelationCardinality cardinality) {
  switch (cardinality) {
    case RelationCardinality::kOneToOne:
      return "1-1";
    case RelationCardinality::kOneToMany:
      return "1-N";
    case RelationCardinality::kManyToOne:
      return "N-1";
    case RelationCardinality::kManyToMany:
      return "N-N";
  }
  return "?";
}

DatasetStats compute_statistics(const Dataset& dataset) {
  DatasetStats stats;
  stats.train_triples = dataset.train().size();
  stats.valid_triples = dataset.valid().size();
  stats.test_triples = dataset.test().size();

  std::vector<std::size_t> entity_degree(dataset.num_entities(), 0);
  std::vector<std::size_t> relation_count(dataset.num_relations(), 0);
  // Per relation: distinct heads, distinct tails (for cardinality).
  std::vector<std::set<EntityId>> heads_of(dataset.num_relations());
  std::vector<std::set<EntityId>> tails_of(dataset.num_relations());

  for (const Triple& t : dataset.train()) {
    ++entity_degree[t.head];
    ++entity_degree[t.tail];
    ++relation_count[t.relation];
    heads_of[t.relation].insert(t.head);
    tails_of[t.relation].insert(t.tail);
  }

  std::size_t degree_sum = 0;
  for (const std::size_t d : entity_degree) {
    if (d > 0) ++stats.entities_used;
    degree_sum += d;
    stats.max_entity_degree = std::max(stats.max_entity_degree, d);
  }
  stats.mean_entity_degree =
      stats.entities_used == 0
          ? 0.0
          : static_cast<double>(degree_sum) /
                static_cast<double>(stats.entities_used);

  std::size_t relation_sum = 0;
  for (RelationId r = 0; r < dataset.num_relations(); ++r) {
    const std::size_t count = relation_count[r];
    if (count == 0) continue;
    ++stats.relations_used;
    relation_sum += count;
    stats.max_relation_count = std::max(stats.max_relation_count, count);

    const double tails_per_head =
        static_cast<double>(count) /
        static_cast<double>(heads_of[r].size());
    const double heads_per_tail =
        static_cast<double>(count) /
        static_cast<double>(tails_of[r].size());
    RelationCardinality cardinality;
    if (tails_per_head < 1.5 && heads_per_tail < 1.5) {
      cardinality = RelationCardinality::kOneToOne;
    } else if (tails_per_head >= 1.5 && heads_per_tail < 1.5) {
      cardinality = RelationCardinality::kOneToMany;
    } else if (tails_per_head < 1.5) {
      cardinality = RelationCardinality::kManyToOne;
    } else {
      cardinality = RelationCardinality::kManyToMany;
    }
    ++stats.cardinality_counts[static_cast<int>(cardinality)];
  }
  stats.mean_relation_count =
      stats.relations_used == 0
          ? 0.0
          : static_cast<double>(relation_sum) /
                static_cast<double>(stats.relations_used);

  stats.relation_gini = gini(relation_count);
  stats.entity_gini = gini(entity_degree);
  return stats;
}

std::string DatasetStats::summary() const {
  std::ostringstream os;
  os << "triples: " << train_triples << " train / " << valid_triples
     << " valid / " << test_triples << " test\n"
     << "entities used: " << entities_used
     << " (mean degree " << mean_entity_degree << ", max "
     << max_entity_degree << ", gini " << entity_gini << ")\n"
     << "relations used: " << relations_used << " (mean count "
     << mean_relation_count << ", max " << max_relation_count << ", gini "
     << relation_gini << ")\n"
     << "relation cardinality: ";
  for (int c = 0; c < 4; ++c) {
    os << to_string(static_cast<RelationCardinality>(c)) << "="
       << cardinality_counts[c] << (c < 3 ? "  " : "");
  }
  return os.str();
}

}  // namespace dynkge::kge
