// Construction of KGE models by name — used by examples and the bench
// harness so the model is a command-line choice.
#pragma once

#include <memory>
#include <string>

#include "kge/model.hpp"

namespace dynkge::kge {

/// Create a model by name: "complex" (default in the paper), "distmult",
/// "transe", or "rotate". `rank` is the number of (complex or real)
/// components. Throws std::invalid_argument for unknown names.
std::unique_ptr<KgeModel> make_model(const std::string& name,
                                     std::int32_t num_entities,
                                     std::int32_t num_relations,
                                     std::int32_t rank);

}  // namespace dynkge::kge
