// Construction of KGE models by name — used by examples and the bench
// harness so the model is a command-line choice.
#pragma once

#include <memory>
#include <string>

#include "kge/model.hpp"

namespace dynkge::kge {

/// Create a model by name: "complex" (default in the paper), "distmult",
/// "transe", or "rotate". `rank` is the number of (complex or real)
/// components. Throws std::invalid_argument for unknown names.
std::unique_ptr<KgeModel> make_model(const std::string& name,
                                     std::int32_t num_entities,
                                     std::int32_t num_relations,
                                     std::int32_t rank);

/// Deep copy of a model: same concrete type, shape, hyper-parameters and
/// parameter bytes. The streaming delta-refresh path clones the current
/// serving snapshot, nudges only the touched rows, and publishes the copy
/// as a new immutable version. Throws std::invalid_argument for model
/// types the factory does not know.
std::unique_ptr<KgeModel> clone_model(const KgeModel& model);

}  // namespace dynkge::kge
