#include "kge/serialize.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <type_traits>

#include "kge/complex_model.hpp"
#include "kge/distmult_model.hpp"
#include "kge/rotate_model.hpp"
#include "kge/transe_model.hpp"

namespace dynkge::kge {
namespace {

constexpr char kModelMagic[4] = {'D', 'K', 'G', 'E'};
constexpr char kSnapshotMagic[4] = {'D', 'K', 'G', 'S'};
constexpr std::uint32_t kModelVersion = 1;
constexpr std::uint32_t kSnapshotVersion = 3;

/// Snapshot sections, in file order. The tags exist so corruption reports
/// name the section a reader was in.
constexpr const char* kSectionTags[] = {"MODL", "OPTE", "OPTR", "TRNR",
                                        "SCHD", "SELC", "RNGS", "RESD"};

std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Canonical lowercase name understood by the loader.
std::string factory_name(const KgeModel& model) {
  const std::string name = model.name();
  if (name == "ComplEx") return "complex";
  if (name == "DistMult") return "distmult";
  if (name == "TransE") return "transe";
  if (name == "RotatE") return "rotate";
  throw std::runtime_error("save_model: unknown model type " + name);
}

// --- buffer-based codec ------------------------------------------------
// Files are built in memory and written atomically, and read back in one
// gulp with the checksum verified before any field is parsed — so a bit
// flip anywhere in the payload can never be interpreted as data.

class ByteWriter {
 public:
  template <typename T>
  void pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    buf_.append(reinterpret_cast<const char*>(&value), sizeof(T));
  }
  void bytes(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }
  void str(const std::string& s) {
    pod(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }
  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  ByteReader(std::string_view data, std::string context)
      : data_(data), context_(std::move(context)) {}

  template <typename T>
  T pod(const char* field) {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    std::memcpy(&value, need(sizeof(T), field), sizeof(T));
    return value;
  }
  std::string str(const char* field, std::uint32_t max_size) {
    const auto size = pod<std::uint32_t>(field);
    if (size > max_size) {
      throw std::runtime_error(context_ + ": " + field + " length " +
                               std::to_string(size) + " exceeds limit " +
                               std::to_string(max_size));
    }
    return std::string(need(size, field), size);
  }
  const char* need(std::size_t size, const char* field) {
    if (size > data_.size() - pos_) {
      throw std::runtime_error(context_ + ": truncated while reading " +
                               field + " (need " + std::to_string(size) +
                               " bytes, have " +
                               std::to_string(data_.size() - pos_) + ")");
    }
    const char* p = data_.data() + pos_;
    pos_ += size;
    return p;
  }
  std::size_t remaining() const { return data_.size() - pos_; }
  void expect_exhausted() const {
    if (pos_ != data_.size()) {
      throw std::runtime_error(context_ + ": " +
                               std::to_string(data_.size() - pos_) +
                               " unread trailing bytes");
    }
  }
  const std::string& context() const { return context_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  std::string context_;
};

void write_matrix(ByteWriter& out, const EmbeddingMatrix& matrix) {
  out.pod(matrix.rows());
  out.pod(matrix.width());
  const auto flat = matrix.flat();
  out.bytes(flat.data(), flat.size_bytes());
}

EmbeddingMatrix read_matrix(ByteReader& in, const char* field) {
  const auto rows = in.pod<std::int32_t>(field);
  const auto width = in.pod<std::int32_t>(field);
  if (rows <= 0 || width <= 0) {
    throw std::runtime_error(in.context() + ": " + field +
                             " has non-positive shape " +
                             std::to_string(rows) + "x" +
                             std::to_string(width));
  }
  const std::size_t bytes =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(width) *
      sizeof(float);
  if (bytes > in.remaining()) {
    throw std::runtime_error(in.context() + ": " + field + " shape " +
                             std::to_string(rows) + "x" +
                             std::to_string(width) +
                             " exceeds the section payload");
  }
  EmbeddingMatrix matrix(rows, width);
  std::memcpy(matrix.flat().data(), in.need(bytes, field), bytes);
  return matrix;
}

/// Model body shared by the model file (whole payload) and the snapshot's
/// MODL section: name, rank, gamma, shapes, entity + relation data.
void write_model_body(ByteWriter& out, const KgeModel& model) {
  out.str(factory_name(model));

  std::int32_t rank = 0;
  float gamma = 0.0f;
  if (const auto* complex_model =
          dynamic_cast<const ComplExModel*>(&model)) {
    rank = complex_model->rank();
  } else if (const auto* distmult =
                 dynamic_cast<const DistMultModel*>(&model)) {
    rank = distmult->rank();
  } else if (const auto* transe = dynamic_cast<const TransEModel*>(&model)) {
    rank = transe->rank();
    gamma = transe->gamma();
  } else if (const auto* rotate = dynamic_cast<const RotatEModel*>(&model)) {
    rank = rotate->rank();
    gamma = rotate->gamma();
  }
  out.pod(rank);
  out.pod(gamma);

  out.pod(model.entities().rows());
  out.pod(model.entities().width());
  out.pod(model.relations().rows());
  out.pod(model.relations().width());
  for (const auto* matrix : {&model.entities(), &model.relations()}) {
    const auto flat = matrix->flat();
    out.bytes(flat.data(), flat.size_bytes());
  }
}

std::unique_ptr<KgeModel> read_model_body(ByteReader& in) {
  const std::string name = in.str("model name", 64);
  const auto rank = in.pod<std::int32_t>("model rank");
  const auto gamma = in.pod<float>("model gamma");
  const auto num_entities = in.pod<std::int32_t>("num_entities");
  const auto entity_width = in.pod<std::int32_t>("entity_width");
  const auto num_relations = in.pod<std::int32_t>("num_relations");
  const auto relation_width = in.pod<std::int32_t>("relation_width");

  std::unique_ptr<KgeModel> model;
  if (name == "complex") {
    model = std::make_unique<ComplExModel>(num_entities, num_relations, rank);
  } else if (name == "distmult") {
    model =
        std::make_unique<DistMultModel>(num_entities, num_relations, rank);
  } else if (name == "transe") {
    model = std::make_unique<TransEModel>(num_entities, num_relations, rank,
                                          gamma);
  } else if (name == "rotate") {
    model = std::make_unique<RotatEModel>(num_entities, num_relations, rank,
                                          gamma);
  } else {
    throw std::runtime_error(in.context() + ": unknown model name '" + name +
                             "'");
  }
  if (model->entities().width() != entity_width ||
      model->relations().width() != relation_width) {
    throw std::runtime_error(
        in.context() + ": shape mismatch (file says widths " +
        std::to_string(entity_width) + "/" + std::to_string(relation_width) +
        ", model '" + name + "' rank " + std::to_string(rank) + " implies " +
        std::to_string(model->entities().width()) + "/" +
        std::to_string(model->relations().width()) + ")");
  }
  for (auto* matrix : {&model->entities(), &model->relations()}) {
    auto flat = matrix->flat();
    std::memcpy(flat.data(), in.need(flat.size_bytes(), "embedding data"),
                flat.size_bytes());
  }
  return model;
}

// --- crash-consistent file I/O -----------------------------------------

void throw_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

/// Test-only write(2) interposition (set_write_syscall_hook_for_testing).
WriteSyscallHook g_write_hook = nullptr;

ssize_t checked_write(const std::string& tmp, int fd, const void* buf,
                      std::size_t count) {
  if (g_write_hook != nullptr) return g_write_hook(tmp, fd, buf, count);
  return ::write(fd, buf, count);
}

/// Write `bytes` to `path` so that a kill at any byte boundary leaves
/// either the previous file or the complete new one: stage to a temp file
/// in the same directory, fsync, rename over the target, fsync the
/// directory. `test_kill_after_bytes` (see SnapshotWriteOptions) stops
/// after a prefix and raises SIGKILL — the crash-consistency tests use it
/// to prove the rename never exposes a torn file. `test_write_errno`
/// simulates a failing disk (ENOSPC, EIO) on the first write. Any write
/// failure unlinks the torn temp file before throwing, so the previous
/// snapshot is never shadowed.
void write_file_atomic(const std::string& path, const std::string& bytes,
                       std::int64_t test_kill_after_bytes = -1,
                       int test_write_errno = 0) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("cannot create", tmp);

  if (test_write_errno != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = test_write_errno;
    throw_errno("write failed for", tmp);
  }
  std::size_t limit = bytes.size();
  if (test_kill_after_bytes >= 0) {
    limit = std::min(limit, static_cast<std::size_t>(test_kill_after_bytes));
  }
  std::size_t written = 0;
  while (written < limit) {
    const ssize_t n =
        checked_write(tmp, fd, bytes.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_errno("write failed for", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (test_kill_after_bytes >= 0) {
    // The torn prefix reaches the disk, the rename never happens.
    ::fsync(fd);
    ::raise(SIGKILL);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync failed for", tmp);
  }
  if (::close(fd) != 0) throw_errno("close failed for", tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_errno("rename failed for", tmp);
  }
  // Persist the rename itself.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

/// Verify magic, version, and the trailing FNV-1a checksum of a sealed
/// byte stream and return the payload (the bytes between the version and
/// the hash). `source` names the origin (file path or in-memory buffer)
/// in failure messages, which carry `what` + source + the expected vs.
/// found values.
std::string verify_payload(std::string_view data, const std::string& what,
                           const std::string& source,
                           const char expected_magic[4],
                           std::uint32_t expected_version) {
  const std::string& path = source;  // keeps the message wording below
  const std::size_t header = sizeof(kModelMagic) + sizeof(std::uint32_t);
  if (data.size() < header + sizeof(std::uint64_t)) {
    throw std::runtime_error(what + ": " + path + ": truncated file (" +
                             std::to_string(data.size()) +
                             " bytes is smaller than any valid header)");
  }
  if (std::memcmp(data.data(), expected_magic, 4) != 0) {
    throw std::runtime_error(
        what + ": " + path + ": bad magic (expected '" +
        std::string(expected_magic, 4) + "', found '" +
        std::string(data.data(), 4) + "')");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, data.data() + 4, sizeof(version));
  if (version != expected_version) {
    throw std::runtime_error(
        what + ": " + path + ": unsupported format version (expected " +
        std::to_string(expected_version) + ", found " +
        std::to_string(version) + ")");
  }

  std::uint64_t stored_hash = 0;
  std::memcpy(&stored_hash, data.data() + data.size() - sizeof(stored_hash),
              sizeof(stored_hash));
  const std::uint64_t hash =
      fnv1a(data.data(), data.size() - sizeof(stored_hash));
  if (hash != stored_hash) {
    throw std::runtime_error(
        what + ": " + path +
        ": checksum mismatch — the file is truncated or corrupted (format "
        "version " +
        std::to_string(version) + ")");
  }
  return std::string(
      data.substr(header, data.size() - header - sizeof(stored_hash)));
}

/// Slurp `path` (binary); failure messages carry `what`.
std::string read_file(const std::string& path, const std::string& what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(what + ": cannot open " + path);
  }
  std::ostringstream content;
  content << in.rdbuf();
  return std::move(content).str();
}

/// read_file + verify_payload in one step, for the file-based loaders.
std::string read_verified_payload(const std::string& path,
                                  const std::string& what,
                                  const char expected_magic[4],
                                  std::uint32_t expected_version) {
  return verify_payload(read_file(path, what), what, path, expected_magic,
                        expected_version);
}

/// Assemble magic + version + payload + trailing hash.
std::string seal(const char magic[4], std::uint32_t version,
                 const std::string& payload) {
  std::string file;
  file.reserve(payload.size() + 16);
  file.append(magic, 4);
  file.append(reinterpret_cast<const char*>(&version), sizeof(version));
  file.append(payload);
  const std::uint64_t hash = fnv1a(file.data(), file.size());
  file.append(reinterpret_cast<const char*>(&hash), sizeof(hash));
  return file;
}

void write_optimizer_section(ByteWriter& out,
                             const OptimizerSnapshot& optimizer) {
  out.pod(optimizer.step);
  write_matrix(out, optimizer.m);
  write_matrix(out, optimizer.v);
}

OptimizerSnapshot read_optimizer_section(ByteReader& in) {
  OptimizerSnapshot optimizer;
  optimizer.step = in.pod<std::int64_t>("optimizer step");
  if (optimizer.step < 0) {
    throw std::runtime_error(in.context() + ": negative optimizer step " +
                             std::to_string(optimizer.step));
  }
  optimizer.m = read_matrix(in, "first moments");
  optimizer.v = read_matrix(in, "second moments");
  if (optimizer.m.rows() != optimizer.v.rows() ||
      optimizer.m.width() != optimizer.v.width()) {
    throw std::runtime_error(in.context() +
                             ": moment matrices disagree on shape");
  }
  return optimizer;
}

}  // namespace

void save_model(const KgeModel& model, const std::string& path) {
  ByteWriter body;
  write_model_body(body, model);
  write_file_atomic(path, seal(kModelMagic, kModelVersion, body.buffer()));
}

std::unique_ptr<KgeModel> load_model(const std::string& path) {
  const std::string payload =
      read_verified_payload(path, "load_model", kModelMagic, kModelVersion);
  ByteReader in(payload, "load_model: " + path);
  auto model = read_model_body(in);
  in.expect_exhausted();
  return model;
}

std::string serialize_snapshot(const TrainingSnapshot& snapshot) {
  if (snapshot.model == nullptr) {
    throw std::runtime_error("save_snapshot: snapshot has no model");
  }
  if (snapshot.rank_rng_seeds.size() != snapshot.rank_residuals.size()) {
    throw std::runtime_error(
        "save_snapshot: rank_rng_seeds and rank_residuals disagree on the "
        "number of ranks");
  }

  std::string sections[8];
  {
    ByteWriter out;
    write_model_body(out, *snapshot.model);
    sections[0] = out.take();
  }
  {
    ByteWriter out;
    write_optimizer_section(out, snapshot.entity_opt);
    sections[1] = out.take();
  }
  {
    ByteWriter out;
    write_optimizer_section(out, snapshot.relation_opt);
    sections[2] = out.take();
  }
  {
    ByteWriter out;
    const TrainerSnapshot& t = snapshot.trainer;
    out.pod(t.next_epoch);
    out.pod(t.num_nodes);
    out.pod(t.seed);
    out.str(t.model_name);
    out.pod(t.embedding_rank);
    out.str(t.strategy_label);
    out.pod(t.total_sim_seconds);
    out.pod(t.final_val_accuracy);
    out.pod(t.checkpoints_written);
    sections[3] = out.take();
  }
  {
    ByteWriter out;
    const SchedulerSnapshot& s = snapshot.scheduler;
    out.pod(s.lr);
    out.pod(s.best_metric);
    out.pod(s.stale_epochs);
    out.pod(static_cast<std::uint8_t>(s.stopped));
    sections[4] = out.take();
  }
  {
    ByteWriter out;
    const CommSelectorSnapshot& s = snapshot.comm_selector;
    out.pod(static_cast<std::uint8_t>(s.switched));
    out.pod(s.last_allreduce_time);
    out.pod(s.epochs_recorded);
    out.pod(s.allreduce_epochs);
    out.pod(s.committed_arm);
    out.pod(s.base_probe_time);
    out.pod(s.topk_probe_time);
    sections[5] = out.take();
  }
  {
    ByteWriter out;
    out.pod(static_cast<std::uint32_t>(snapshot.rank_rng_seeds.size()));
    for (const std::uint64_t seed : snapshot.rank_rng_seeds) out.pod(seed);
    sections[6] = out.take();
  }
  {
    ByteWriter out;
    out.pod(static_cast<std::uint32_t>(snapshot.rank_residuals.size()));
    for (const std::string& blob : snapshot.rank_residuals) {
      out.pod(static_cast<std::uint64_t>(blob.size()));
      out.bytes(blob.data(), blob.size());
    }
    sections[7] = out.take();
  }

  ByteWriter payload;
  for (std::size_t i = 0; i < 8; ++i) {
    payload.bytes(kSectionTags[i], 4);
    payload.pod(static_cast<std::uint64_t>(sections[i].size()));
    payload.bytes(sections[i].data(), sections[i].size());
  }
  return seal(kSnapshotMagic, kSnapshotVersion, payload.buffer());
}

void write_snapshot_bytes(const std::string& sealed, const std::string& path,
                          const SnapshotWriteOptions& options) {
  write_file_atomic(path, sealed, options.test_kill_after_bytes,
                    options.test_write_errno);
}

void set_write_syscall_hook_for_testing(WriteSyscallHook hook) {
  g_write_hook = hook;
}

void save_snapshot(const TrainingSnapshot& snapshot, const std::string& path,
                   const SnapshotWriteOptions& options) {
  write_snapshot_bytes(serialize_snapshot(snapshot), path, options);
}

TrainingSnapshot deserialize_snapshot(std::string_view bytes,
                                      const std::string& source) {
  const std::string path = source;  // keeps the message wording below
  const std::string payload = verify_payload(
      bytes, "load_snapshot", source, kSnapshotMagic, kSnapshotVersion);

  // Split the payload into the 8 tagged sections.
  std::string_view sections[8];
  {
    ByteReader in(payload, "load_snapshot: " + path);
    for (std::size_t i = 0; i < 8; ++i) {
      const std::string tag(in.need(4, "section tag"), 4);
      if (tag != kSectionTags[i]) {
        throw std::runtime_error("load_snapshot: " + path + ": section " +
                                 std::to_string(i) + ": expected tag '" +
                                 kSectionTags[i] + "', found '" + tag + "'");
      }
      const auto size = in.pod<std::uint64_t>("section length");
      if (size > in.remaining()) {
        throw std::runtime_error(
            "load_snapshot: " + path + ": section '" + kSectionTags[i] +
            "' declares " + std::to_string(size) + " bytes but only " +
            std::to_string(in.remaining()) + " remain");
      }
      sections[i] = std::string_view(
          in.need(static_cast<std::size_t>(size), kSectionTags[i]),
          static_cast<std::size_t>(size));
    }
    in.expect_exhausted();
  }
  const auto section_reader = [&](std::size_t i) {
    return ByteReader(sections[i], "load_snapshot: " + path + ": section '" +
                                       kSectionTags[i] + "'");
  };

  TrainingSnapshot snapshot;
  {
    ByteReader in = section_reader(0);
    snapshot.model = read_model_body(in);
    in.expect_exhausted();
  }
  {
    ByteReader in = section_reader(1);
    snapshot.entity_opt = read_optimizer_section(in);
    in.expect_exhausted();
  }
  {
    ByteReader in = section_reader(2);
    snapshot.relation_opt = read_optimizer_section(in);
    in.expect_exhausted();
  }
  {
    ByteReader in = section_reader(3);
    TrainerSnapshot& t = snapshot.trainer;
    t.next_epoch = in.pod<std::int32_t>("next_epoch");
    t.num_nodes = in.pod<std::int32_t>("num_nodes");
    t.seed = in.pod<std::uint64_t>("seed");
    t.model_name = in.str("model_name", 64);
    t.embedding_rank = in.pod<std::int32_t>("embedding_rank");
    t.strategy_label = in.str("strategy_label", 256);
    t.total_sim_seconds = in.pod<double>("total_sim_seconds");
    t.final_val_accuracy = in.pod<double>("final_val_accuracy");
    t.checkpoints_written = in.pod<std::int32_t>("checkpoints_written");
    if (t.next_epoch < 0 || t.num_nodes < 1) {
      throw std::runtime_error(in.context() +
                               ": invalid progress fields (next_epoch " +
                               std::to_string(t.next_epoch) + ", num_nodes " +
                               std::to_string(t.num_nodes) + ")");
    }
    in.expect_exhausted();
  }
  {
    ByteReader in = section_reader(4);
    SchedulerSnapshot& s = snapshot.scheduler;
    s.lr = in.pod<double>("lr");
    s.best_metric = in.pod<double>("best_metric");
    s.stale_epochs = in.pod<std::int32_t>("stale_epochs");
    s.stopped = in.pod<std::uint8_t>("stopped") != 0;
    in.expect_exhausted();
  }
  {
    ByteReader in = section_reader(5);
    CommSelectorSnapshot& s = snapshot.comm_selector;
    s.switched = in.pod<std::uint8_t>("switched") != 0;
    s.last_allreduce_time = in.pod<double>("last_allreduce_time");
    s.epochs_recorded = in.pod<std::int32_t>("epochs_recorded");
    s.allreduce_epochs = in.pod<std::int32_t>("allreduce_epochs");
    s.committed_arm = in.pod<std::int32_t>("committed_arm");
    s.base_probe_time = in.pod<double>("base_probe_time");
    s.topk_probe_time = in.pod<double>("topk_probe_time");
    in.expect_exhausted();
  }
  {
    ByteReader in = section_reader(6);
    const auto count = in.pod<std::uint32_t>("rng stream count");
    snapshot.rank_rng_seeds.resize(count);
    for (auto& seed : snapshot.rank_rng_seeds) {
      seed = in.pod<std::uint64_t>("rng stream seed");
    }
    in.expect_exhausted();
  }
  {
    ByteReader in = section_reader(7);
    const auto count = in.pod<std::uint32_t>("residual blob count");
    snapshot.rank_residuals.resize(count);
    for (auto& blob : snapshot.rank_residuals) {
      const auto size = in.pod<std::uint64_t>("residual blob length");
      if (size > in.remaining()) {
        throw std::runtime_error(in.context() + ": residual blob of " +
                                 std::to_string(size) +
                                 " bytes exceeds the section payload");
      }
      blob.assign(in.need(static_cast<std::size_t>(size), "residual blob"),
                  static_cast<std::size_t>(size));
    }
    in.expect_exhausted();
  }
  if (snapshot.rank_rng_seeds.size() != snapshot.rank_residuals.size() ||
      static_cast<std::int32_t>(snapshot.rank_rng_seeds.size()) !=
          snapshot.trainer.num_nodes) {
    throw std::runtime_error(
        "load_snapshot: " + path +
        ": per-rank sections disagree with num_nodes (" +
        std::to_string(snapshot.rank_rng_seeds.size()) + " RNG streams, " +
        std::to_string(snapshot.rank_residuals.size()) +
        " residual blobs, num_nodes " +
        std::to_string(snapshot.trainer.num_nodes) + ")");
  }
  return snapshot;
}

TrainingSnapshot load_snapshot(const std::string& path) {
  return deserialize_snapshot(read_file(path, "load_snapshot"), path);
}

std::string encode_residual_maps(
    std::initializer_list<const ResidualMap*> maps) {
  const auto append = [](std::string& blob, const auto& value) {
    blob.append(reinterpret_cast<const char*>(&value), sizeof(value));
  };
  std::string blob;
  for (const ResidualMap* map : maps) {
    std::vector<std::int32_t> ids;
    ids.reserve(map->size());
    for (const auto& [id, values] : *map) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    append(blob, static_cast<std::uint32_t>(ids.size()));
    for (const std::int32_t id : ids) {
      const std::vector<float>& values = map->at(id);
      append(blob, id);
      append(blob, static_cast<std::uint32_t>(values.size()));
      blob.append(reinterpret_cast<const char*>(values.data()),
                  values.size() * sizeof(float));
    }
  }
  return blob;
}

std::vector<ResidualMap> decode_residual_maps(const std::string& blob,
                                              std::size_t num_maps) {
  std::vector<ResidualMap> maps(num_maps);
  std::size_t pos = 0;
  const auto read = [&](void* out, std::size_t size) {
    if (size > blob.size() - pos) {
      throw std::runtime_error(
          "resume: residual blob truncated (snapshot RESD section)");
    }
    std::memcpy(out, blob.data() + pos, size);
    pos += size;
  };
  for (ResidualMap& map : maps) {
    std::uint32_t count = 0;
    read(&count, sizeof(count));
    for (std::uint32_t i = 0; i < count; ++i) {
      std::int32_t id = 0;
      std::uint32_t width = 0;
      read(&id, sizeof(id));
      read(&width, sizeof(width));
      if (width > (1u << 20)) {
        throw std::runtime_error(
            "resume: residual row width " + std::to_string(width) +
            " is implausible (snapshot RESD section corrupted)");
      }
      std::vector<float> values(width);
      read(values.data(), width * sizeof(float));
      map.emplace(id, std::move(values));
    }
  }
  if (pos != blob.size()) {
    throw std::runtime_error(
        "resume: residual blob has trailing bytes (snapshot RESD section)");
  }
  return maps;
}

}  // namespace dynkge::kge
