#include "kge/serialize.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "kge/complex_model.hpp"
#include "kge/distmult_model.hpp"
#include "kge/rotate_model.hpp"
#include "kge/transe_model.hpp"

namespace dynkge::kge {
namespace {

constexpr char kMagic[4] = {'D', 'K', 'G', 'E'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t fnv1a(const void* data, std::size_t size,
                    std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Canonical lowercase name understood by the loader.
std::string factory_name(const KgeModel& model) {
  const std::string name = model.name();
  if (name == "ComplEx") return "complex";
  if (name == "DistMult") return "distmult";
  if (name == "TransE") return "transe";
  if (name == "RotatE") return "rotate";
  throw std::runtime_error("save_model: unknown model type " + name);
}

template <typename T>
void write_pod(std::ofstream& out, const T& value, std::uint64_t& hash) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  hash = fnv1a(&value, sizeof(T), hash);
}

template <typename T>
T read_pod(std::ifstream& in, std::uint64_t& hash) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_model: truncated file");
  hash = fnv1a(&value, sizeof(T), hash);
  return value;
}

}  // namespace

void save_model(const KgeModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_model: cannot open " + path);

  std::uint64_t hash = 0xcbf29ce484222325ULL;
  out.write(kMagic, sizeof(kMagic));
  hash = fnv1a(kMagic, sizeof(kMagic), hash);
  write_pod(out, kVersion, hash);

  const std::string name = factory_name(model);
  write_pod(out, static_cast<std::uint32_t>(name.size()), hash);
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
  hash = fnv1a(name.data(), name.size(), hash);

  std::int32_t rank = 0;
  float gamma = 0.0f;
  if (const auto* complex_model =
          dynamic_cast<const ComplExModel*>(&model)) {
    rank = complex_model->rank();
  } else if (const auto* distmult =
                 dynamic_cast<const DistMultModel*>(&model)) {
    rank = distmult->rank();
  } else if (const auto* transe = dynamic_cast<const TransEModel*>(&model)) {
    rank = transe->rank();
    gamma = transe->gamma();
  } else if (const auto* rotate = dynamic_cast<const RotatEModel*>(&model)) {
    rank = rotate->rank();
    gamma = rotate->gamma();
  }
  write_pod(out, rank, hash);
  write_pod(out, gamma, hash);

  write_pod(out, model.entities().rows(), hash);
  write_pod(out, model.entities().width(), hash);
  write_pod(out, model.relations().rows(), hash);
  write_pod(out, model.relations().width(), hash);

  for (const auto* matrix : {&model.entities(), &model.relations()}) {
    const auto flat = matrix->flat();
    out.write(reinterpret_cast<const char*>(flat.data()),
              static_cast<std::streamsize>(flat.size_bytes()));
    hash = fnv1a(flat.data(), flat.size_bytes(), hash);
  }

  out.write(reinterpret_cast<const char*>(&hash), sizeof(hash));
  if (!out) throw std::runtime_error("save_model: write failed for " + path);
}

std::unique_ptr<KgeModel> load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_model: cannot open " + path);

  std::uint64_t hash = 0xcbf29ce484222325ULL;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_model: bad magic in " + path);
  }
  hash = fnv1a(magic, sizeof(magic), hash);

  const auto version = read_pod<std::uint32_t>(in, hash);
  if (version != kVersion) {
    throw std::runtime_error("load_model: unsupported version " +
                             std::to_string(version));
  }

  const auto name_size = read_pod<std::uint32_t>(in, hash);
  if (name_size > 64) throw std::runtime_error("load_model: bad name size");
  std::string name(name_size, '\0');
  in.read(name.data(), name_size);
  if (!in) throw std::runtime_error("load_model: truncated file");
  hash = fnv1a(name.data(), name.size(), hash);

  const auto rank = read_pod<std::int32_t>(in, hash);
  const auto gamma = read_pod<float>(in, hash);
  const auto num_entities = read_pod<std::int32_t>(in, hash);
  const auto entity_width = read_pod<std::int32_t>(in, hash);
  const auto num_relations = read_pod<std::int32_t>(in, hash);
  const auto relation_width = read_pod<std::int32_t>(in, hash);

  std::unique_ptr<KgeModel> model;
  if (name == "complex") {
    model = std::make_unique<ComplExModel>(num_entities, num_relations, rank);
  } else if (name == "distmult") {
    model =
        std::make_unique<DistMultModel>(num_entities, num_relations, rank);
  } else if (name == "transe") {
    model = std::make_unique<TransEModel>(num_entities, num_relations, rank,
                                          gamma);
  } else if (name == "rotate") {
    model = std::make_unique<RotatEModel>(num_entities, num_relations, rank,
                                          gamma);
  } else {
    throw std::runtime_error("load_model: unknown model name " + name);
  }
  if (model->entities().width() != entity_width ||
      model->relations().width() != relation_width) {
    throw std::runtime_error("load_model: shape mismatch in " + path);
  }

  for (auto* matrix : {&model->entities(), &model->relations()}) {
    auto flat = matrix->flat();
    in.read(reinterpret_cast<char*>(flat.data()),
            static_cast<std::streamsize>(flat.size_bytes()));
    if (!in) throw std::runtime_error("load_model: truncated data");
    hash = fnv1a(flat.data(), flat.size_bytes(), hash);
  }

  std::uint64_t stored_hash = 0;
  in.read(reinterpret_cast<char*>(&stored_hash), sizeof(stored_hash));
  if (!in || stored_hash != hash) {
    throw std::runtime_error("load_model: checksum mismatch in " + path);
  }
  return model;
}

}  // namespace dynkge::kge
