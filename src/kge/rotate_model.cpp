#include "kge/rotate_model.hpp"

#include <cmath>
#include <vector>

namespace dynkge::kge {
namespace {

constexpr float kPi = 3.14159265358979323846f;
constexpr double kEpsilon = RotatEModel::kEpsilon;

}  // namespace

void RotatEModel::init(util::Rng& rng) {
  const float scale =
      init_scale_ * gamma_ / static_cast<float>(2 * rank_) * 4.0f;
  entities_.init_uniform(rng, scale);
  // Phases cover the full circle regardless of the entity init scale.
  for (auto& theta : relations_.flat()) {
    theta = static_cast<float>(rng.next_double(-kPi, kPi));
  }
}

double RotatEModel::score(EntityId h, RelationId r, EntityId t) const {
  const auto eh = entities_.row(h);
  const auto phases = relations_.row(r);
  const auto et = entities_.row(t);
  const std::int32_t k = rank_;
  double distance = 0.0;
  for (std::int32_t i = 0; i < k; ++i) {
    const double c = std::cos(phases[i]);
    const double s = std::sin(phases[i]);
    const double d_re = eh[i] * c - eh[k + i] * s - et[i];
    const double d_im = eh[i] * s + eh[k + i] * c - et[k + i];
    distance += std::sqrt(d_re * d_re + d_im * d_im + kEpsilon);
  }
  return gamma_ - distance;
}

void RotatEModel::accumulate_gradients(EntityId h, RelationId r, EntityId t,
                                       float coeff, ModelGrads& grads) const {
  const auto eh = entities_.row(h);
  const auto phases = relations_.row(r);
  const auto et = entities_.row(t);
  grads.entity.accumulate(h);
  grads.entity.accumulate(t);
  grads.relation.accumulate(r);
  const auto gh = grads.entity.row(h);
  const auto gr = grads.relation.row(r);
  const auto gt = grads.entity.row(t);

  const std::int32_t k = rank_;
  for (std::int32_t i = 0; i < k; ++i) {
    const double c = std::cos(phases[i]);
    const double s = std::sin(phases[i]);
    const double h_re = eh[i], h_im = eh[k + i];
    const double d_re = h_re * c - h_im * s - et[i];
    const double d_im = h_re * s + h_im * c - et[k + i];
    const double m = std::sqrt(d_re * d_re + d_im * d_im + kEpsilon);
    // phi = gamma - sum m_i: d phi / d d = -d / m.
    const double gd_re = -d_re / m * coeff;
    const double gd_im = -d_im / m * coeff;

    gh[i] += static_cast<float>(gd_re * c + gd_im * s);
    gh[k + i] += static_cast<float>(-gd_re * s + gd_im * c);
    gt[i] += static_cast<float>(-gd_re);
    gt[k + i] += static_cast<float>(-gd_im);
    // d d_re/d theta = -h_re s - h_im c;  d d_im/d theta = h_re c - h_im s.
    gr[i] += static_cast<float>(gd_re * (-h_re * s - h_im * c) +
                                gd_im * (h_re * c - h_im * s));
  }
}

void RotatEModel::score_tails_block(EntityId h, RelationId r, EntityId begin,
                                    std::span<double> out) const {
  const auto eh = entities_.row(h);
  const auto phases = relations_.row(r);
  const std::int32_t k = rank_;
  // Rotate the head once; each candidate then costs one pass.
  std::vector<float> rotated(2 * k);
  for (std::int32_t i = 0; i < k; ++i) {
    const float c = std::cos(phases[i]);
    const float s = std::sin(phases[i]);
    rotated[i] = eh[i] * c - eh[k + i] * s;
    rotated[k + i] = eh[i] * s + eh[k + i] * c;
  }
  for (std::size_t j = 0; j < out.size(); ++j) {
    const auto et = entities_.row(begin + static_cast<EntityId>(j));
    double distance = 0.0;
    for (std::int32_t i = 0; i < k; ++i) {
      const double d_re = rotated[i] - et[i];
      const double d_im = rotated[k + i] - et[k + i];
      distance += std::sqrt(d_re * d_re + d_im * d_im + kEpsilon);
    }
    out[j] = gamma_ - distance;
  }
}

}  // namespace dynkge::kge
