#include "kge/distmult_model.hpp"

#include <cmath>
#include <vector>

namespace dynkge::kge {

void DistMultModel::init(util::Rng& rng) {
  const float scale =
      init_scale_ * 6.0f / std::sqrt(static_cast<float>(rank_));
  entities_.init_uniform(rng, scale);
  relations_.init_uniform(rng, scale);
}

double DistMultModel::score(EntityId h, RelationId r, EntityId t) const {
  const auto eh = entities_.row(h);
  const auto er = relations_.row(r);
  const auto et = entities_.row(t);
  double acc = 0.0;
  for (std::int32_t i = 0; i < rank_; ++i) {
    acc += static_cast<double>(eh[i]) * er[i] * et[i];
  }
  return acc;
}

void DistMultModel::accumulate_gradients(EntityId h, RelationId r, EntityId t,
                                         float coeff,
                                         ModelGrads& grads) const {
  const auto eh = entities_.row(h);
  const auto er = relations_.row(r);
  const auto et = entities_.row(t);
  grads.entity.accumulate(h);
  grads.entity.accumulate(t);
  grads.relation.accumulate(r);
  const auto gh = grads.entity.row(h);
  const auto gr = grads.relation.row(r);
  const auto gt = grads.entity.row(t);
  for (std::int32_t i = 0; i < rank_; ++i) {
    gh[i] += coeff * er[i] * et[i];
    gr[i] += coeff * eh[i] * et[i];
    gt[i] += coeff * eh[i] * er[i];
  }
}

void DistMultModel::score_tails_block(EntityId h, RelationId r, EntityId begin,
                                      std::span<double> out) const {
  const auto eh = entities_.row(h);
  const auto er = relations_.row(r);
  std::vector<float> composed(rank_);
  for (std::int32_t i = 0; i < rank_; ++i) composed[i] = eh[i] * er[i];
  for (std::size_t j = 0; j < out.size(); ++j) {
    const auto et = entities_.row(begin + static_cast<EntityId>(j));
    double acc = 0.0;
    for (std::int32_t i = 0; i < rank_; ++i) {
      acc += static_cast<double>(composed[i]) * et[i];
    }
    out[j] = acc;
  }
}

void DistMultModel::score_heads_block(RelationId r, EntityId t, EntityId begin,
                                      std::span<double> out) const {
  // DistMult is symmetric in h and t.
  score_tails_block(t, r, begin, out);
}

}  // namespace dynkge::kge
